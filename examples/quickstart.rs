//! Quickstart: build a small directed graph, run one masked frontier
//! expansion by hand, then a full BFS from the algorithm layer.
//!
//! Run with: `cargo run --release --example quickstart`

use graphblas::operations::vxm;
use graphblas::{
    init, no_mask_v, BinaryOp, Descriptor, Matrix, Mode, Semiring, Vector, WaitMode,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // GrB_init: establish the top-level (blocking) context.
    init(Mode::Blocking);

    // A 7-vertex directed graph as a boolean adjacency matrix:
    //      0 → 1 → 2 → 3
    //      0 → 4 → 5 → 6 → 3
    let n = 7;
    let a = Matrix::<bool>::new(n, n)?;
    let edges = [(0, 1), (1, 2), (2, 3), (0, 4), (4, 5), (5, 6), (6, 3)];
    a.build(
        &edges.iter().map(|e| e.0).collect::<Vec<_>>(),
        &edges.iter().map(|e| e.1).collect::<Vec<_>>(),
        &vec![true; edges.len()],
        Some(&BinaryOp::lor()),
    )?;
    println!("adjacency matrix ({} edges):\n", a.nvals()?);

    // One step of frontier expansion from vertex 0 over the LOR.LAND
    // (boolean reachability) semiring: next = frontier ∨.∧ A.
    let frontier = Vector::<bool>::new(n)?;
    frontier.set_element(true, 0)?;
    let next = Vector::<bool>::new(n)?;
    vxm(
        &next,
        no_mask_v(),
        None,
        &Semiring::lor_land(),
        &frontier,
        &a,
        &Descriptor::default(),
    )?;
    next.wait(WaitMode::Materialize)?;
    let (reached, _) = next.extract_tuples()?;
    println!("one hop from vertex 0 reaches: {reached:?}");

    // Full BFS via the algorithm layer (the LAGraph role).
    let levels = graphblas::algo::bfs_levels(&a, 0)?;
    let (vertices, depths) = levels.extract_tuples()?;
    println!("BFS levels from vertex 0:");
    for (v, d) in vertices.iter().zip(&depths) {
        println!("  vertex {v}: level {d}");
    }

    // Vertex 3 is reachable two ways; BFS must report the shorter (3 hops).
    assert_eq!(levels.extract_element(3)?, Some(3));
    println!("\nquickstart OK");
    Ok(())
}
