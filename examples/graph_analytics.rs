//! Graph analytics on a synthetic power-law graph: the LAGraph-style
//! workload layer running end-to-end on the GraphBLAS 2.0 API.
//!
//! Generates an RMAT graph, symmetrizes it, and runs BFS, connected
//! components, PageRank, triangle counting, k-core, and a maximal
//! independent set — printing summary statistics for each.
//!
//! Run with: `cargo run --release --example graph_analytics`

use graphblas::algo::{
    betweenness_centrality, bfs_levels, connected_components, k_core,
    maximal_independent_set, pagerank, triangle_count,
};
use graphblas::io::rmat;
use graphblas::{Matrix, Vector};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = 10u32;
    let edge_factor = 8;
    println!("generating RMAT graph: scale {scale} (n = {}), {}x edges", 1 << scale, edge_factor);

    let edges = rmat(scale, edge_factor, 42)
        .without_self_loops()
        .undirected();
    let a: Matrix<bool> = edges.to_bool_matrix()?;
    let n = a.nrows();
    println!("adjacency: {} vertices, {} stored edges\n", n, a.nvals()?);

    // BFS from the highest-degree-ish vertex 0.
    let levels: Vector<i64> = bfs_levels(&a, 0)?;
    let reached = levels.nvals()?;
    let max_level = (0..n)
        .filter_map(|i| levels.extract_element(i).ok().flatten())
        .max()
        .unwrap_or(0);
    println!("BFS from 0: reached {reached}/{n} vertices, eccentricity {max_level}");

    // Connected components.
    let comps = connected_components(&a)?;
    let mut labels: Vec<u64> = (0..n)
        .map(|i| comps.extract_element(i).unwrap().unwrap())
        .collect();
    labels.sort_unstable();
    labels.dedup();
    println!("connected components: {}", labels.len());

    // PageRank.
    let ranks = pagerank(&a, 0.85, 1e-8, 100)?;
    let mut top: Vec<(usize, f64)> = (0..n)
        .map(|i| (i, ranks.extract_element(i).unwrap().unwrap_or(0.0)))
        .collect();
    top.sort_by(|x, y| y.1.total_cmp(&x.1));
    println!("PageRank top 5:");
    for (v, r) in top.iter().take(5) {
        println!("  vertex {v:5}: {r:.6}");
    }

    // Triangles.
    let triangles = triangle_count(&a)?;
    println!("triangles: {triangles}");

    // k-core.
    for k in [2u64, 4, 8] {
        let core = k_core(&a, k)?;
        println!("{k}-core size: {}", core.nvals()?);
    }

    // Maximal independent set (verified independent below).
    let mis = maximal_independent_set(&a, 7)?;
    let mis_size = mis.nvals()?;
    let (members, _) = mis.extract_tuples()?;
    for w in members.windows(2) {
        // Cheap spot-check of independence between consecutive members.
        assert_eq!(a.extract_element(w[0], w[1])?, None);
    }
    println!("maximal independent set: {mis_size} vertices");

    // Betweenness centrality from a handful of sampled sources.
    let bc = betweenness_centrality(&a, &[0, 1, 2, 3])?;
    let mut central: Vec<(usize, f64)> = (0..n)
        .filter_map(|v| bc.extract_element(v).ok().flatten().map(|x| (v, x)))
        .collect();
    central.sort_by(|x, y| y.1.total_cmp(&x.1));
    println!("betweenness (4 sampled sources) top 3:");
    for (v, score) in central.iter().take(3) {
        println!("  vertex {v:5}: {score:.1}");
    }

    println!("\ngraph analytics OK");
    // GrB_finalize: also flushes the GRB_TRACE timeline, if requested.
    graphblas::finalize();
    Ok(())
}
