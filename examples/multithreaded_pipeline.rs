//! The paper's Fig. 1, in Rust: two threads share a matrix `Esh`.
//!
//! Thread 0 computes `C = A·B`, then `Esh = D·C`, forces `Esh` into the
//! complete state with `GrB_wait(COMPLETE)`, and *releases* a flag.
//! Thread 1 does local work, spins on the flag with *acquire* ordering,
//! then uses `Esh` in `Hres = G·Esh`. The acquire/release pair plus the
//! completing wait establish exactly the happens-before edge §III
//! prescribes; Rust's atomics implement the same C/C++11 memory model the
//! paper builds on.
//!
//! Run with: `cargo run --release --example multithreaded_pipeline`

use std::sync::atomic::{AtomicBool, Ordering};

use graphblas::operations::mxm;
use graphblas::{
    global_context, no_mask, Context, ContextOptions, Descriptor, Matrix, Mode, Semiring,
    WaitMode,
};
use graphblas_io::erdos_renyi;

fn random_matrix(n: usize, nnz: usize, seed: u64) -> Matrix<f64> {
    erdos_renyi(n, nnz, seed)
        .to_weighted_matrix(seed)
        .expect("generator produces valid matrices")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // GrB_init(GrB_NONBLOCKING): operations may be deferred, making the
    // completing wait before the flag store *load-bearing*.
    let ctx = Context::new(
        &global_context(),
        Mode::NonBlocking,
        ContextOptions::default(),
    );

    let n = 256;
    let plus_times = Semiring::<f64, f64, f64>::plus_times();
    let desc = Descriptor::default();

    // Shared objects (the C code's Esh, Dres, Hres).
    let esh = Matrix::<f64>::new_in(&ctx, n, n)?;
    let dres = Matrix::<f64>::new_in(&ctx, n, n)?;
    let hres = Matrix::<f64>::new_in(&ctx, n, n)?;
    let flag = AtomicBool::new(false);

    std::thread::scope(|scope| {
        // ---- Thread 0 -----------------------------------------------
        let esh0 = esh.clone();
        let dres0 = dres.clone();
        let ctx0 = ctx.clone();
        let flag0 = &flag;
        let sr0 = plus_times.clone();
        scope.spawn(move || {
            let a = random_matrix(n, 4 * n, 1);
            let b = random_matrix(n, 4 * n, 2);
            let c = Matrix::<f64>::new_in(&ctx0, n, n).unwrap();
            let d = random_matrix(n, 4 * n, 3);
            d.switch_context(&ctx0).unwrap();
            a.switch_context(&ctx0).unwrap();
            b.switch_context(&ctx0).unwrap();

            mxm(&c, no_mask(), None, &sr0, &a, &b, &desc).unwrap();
            mxm(&esh0, no_mask(), None, &sr0, &d, &c, &desc).unwrap();

            // GrB_wait(Esh, GrB_COMPLETE): finish the sequence and leave
            // the internal structures shareable…
            esh0.wait(WaitMode::Complete).unwrap();
            // …then publish with release ordering.
            flag0.store(true, Ordering::Release);

            mxm(&dres0, no_mask(), None, &sr0, &a, &esh0, &desc).unwrap();
            dres0.wait(WaitMode::Complete).unwrap();
        });

        // ---- Thread 1 -----------------------------------------------
        let esh1 = esh.clone();
        let hres1 = hres.clone();
        let ctx1 = ctx.clone();
        let flag1 = &flag;
        let sr1 = plus_times.clone();
        scope.spawn(move || {
            let e = random_matrix(n, 4 * n, 4);
            let f = random_matrix(n, 4 * n, 5);
            e.switch_context(&ctx1).unwrap();
            f.switch_context(&ctx1).unwrap();
            let g = Matrix::<f64>::new_in(&ctx1, n, n).unwrap();
            mxm(&g, no_mask(), None, &sr1, &e, &f, &desc).unwrap();

            // Spin with acquire ordering until Esh is published.
            while !flag1.load(Ordering::Acquire) {
                std::hint::spin_loop();
            }
            mxm(&hres1, no_mask(), None, &sr1, &g, &esh1, &desc).unwrap();
            hres1.wait(WaitMode::Complete).unwrap();
        });
    }); // implied barrier, as in the OpenMP parallel region

    // Dres and Hres are available here, per the paper's closing comment.
    println!("Esh:  {} stored elements", esh.nvals()?);
    println!("Dres: {} stored elements", dres.nvals()?);
    println!("Hres: {} stored elements", hres.nvals()?);
    assert!(dres.nvals()? > 0 && hres.nvals()? > 0);
    println!("\nFig. 1 pipeline OK (properly synchronized, race-free)");
    Ok(())
}
