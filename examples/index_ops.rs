//! The paper's Fig. 3: index-unary operators driving `select` and
//! `apply` on a small weighted digraph.
//!
//! * `select` with a user-defined operator keeps upper-triangular entries
//!   greater than a threshold `s` (the paper's `my_triu_eq_INT32`-style
//!   example, §VIII.A);
//! * `apply` with the predefined `GrB_COLINDEX` operator replaces every
//!   stored weight with its destination-vertex index plus 1 (§VIII.B).
//!
//! Run with: `cargo run --release --example index_ops`

use graphblas::operations::{apply_indexop, select};
use graphblas::{no_mask, Descriptor, IndexUnaryOp, Matrix};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 5-vertex weighted digraph (positive and negative weights).
    let n = 5;
    let a = Matrix::<i64>::new(n, n)?;
    let tuples = [
        (0usize, 1usize, 4i64),
        (0, 3, -2),
        (1, 2, 7),
        (1, 4, 1),
        (2, 0, 3),
        (3, 2, 9),
        (3, 4, -5),
        (4, 1, 6),
    ];
    a.build(
        &tuples.iter().map(|t| t.0).collect::<Vec<_>>(),
        &tuples.iter().map(|t| t.1).collect::<Vec<_>>(),
        &tuples.iter().map(|t| t.2).collect::<Vec<_>>(),
        None,
    )?;
    println!("original adjacency matrix A:\n{}", a.to_display_string()?);

    // --- select: the paper's user-defined upper-triangular threshold ----
    // keep a_ij where j > i and a_ij > s   (s = 0)
    let my_triu_gt = IndexUnaryOp::<i64, i64, bool>::new("my_triu_gt", |v, idx, s| {
        assert_eq!(idx.len(), 2, "matrix operator sees [i, j]");
        idx[1] > idx[0] && v > s
    });
    let selected = Matrix::<i64>::new(n, n)?;
    select(
        &selected,
        no_mask(),
        None,
        &my_triu_gt,
        &a,
        0i64,
        &Descriptor::default(),
    )?;
    println!(
        "select(my_triu_gt, s = 0) — upper triangle, positive weights:\n{}",
        selected.to_display_string()?
    );

    // --- apply: predefined COLINDEX, the paper's exact call -------------
    // GrB_apply(C, GrB_NULL, GrB_NULL, GrB_COLINDEX_UINT64T, A, 1UL, ...)
    let applied = Matrix::<i64>::new(n, n)?;
    apply_indexop(
        &applied,
        no_mask(),
        None,
        &IndexUnaryOp::colindex(),
        &a,
        1i64,
        &Descriptor::default(),
    )?;
    println!(
        "apply(GrB_COLINDEX, s = 1) — weights replaced by destination+1:\n{}",
        applied.to_display_string()?
    );

    // Structure is preserved by apply; only values changed.
    assert_eq!(applied.nvals()?, a.nvals()?);
    for &(i, j, _) in &tuples {
        assert_eq!(applied.extract_element(i, j)?, Some(j as i64 + 1));
    }
    // Select kept exactly the positive strictly-upper entries:
    // (0,1)=4, (1,2)=7, (1,4)=1.
    assert_eq!(selected.nvals()?, 3);
    println!("Fig. 3 reproduction OK");
    Ok(())
}
