//! Data transfer (paper §VII): the Table III import/export formats, the
//! two-step `exportSize` → `export` protocol, `exportHint`, and the
//! opaque serialize/deserialize API.
//!
//! Run with: `cargo run --release --example import_export`

use graphblas::{Format, Index, Matrix, Vector, VectorFormat};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Import a matrix from CSR arrays (Table III: GrB_CSR_MATRIX).
    let m = Matrix::<f64>::import(
        3,
        3,
        Format::Csr,
        Some(vec![0, 2, 3, 5]),
        Some(vec![0, 2, 1, 0, 2]),
        vec![1.0, 2.0, 3.0, 4.0, 5.0],
    )?;
    println!("imported CSR matrix:\n{}", m.to_display_string()?);
    println!("export hint (current internal format): {:?}", m.export_hint());

    // Export through every matrix format.
    for fmt in [Format::Csr, Format::Csc, Format::Coo] {
        let (indptr, indices, values) = m.export(fmt)?;
        println!(
            "{fmt:?}: indptr {indptr:?}\n       indices {indices:?}\n       values {values:?}"
        );
    }

    // The two-step protocol: size first, then caller-allocated buffers
    // (a memory-mapped file would work the same way).
    let (np, ni, nv) = m.export_size(Format::Csr)?;
    let mut indptr: Vec<Index> = Vec::with_capacity(np);
    let mut indices: Vec<Index> = Vec::with_capacity(ni);
    let mut values: Vec<f64> = Vec::with_capacity(nv);
    m.export_into(Format::Csr, &mut indptr, &mut indices, &mut values)?;
    println!("\ntwo-step export sizes: indptr {np}, indices {ni}, values {nv}");

    // Round-trip through the opaque serialization API (§VII.B).
    let bytes = m.serialize()?;
    println!(
        "serialized into {} bytes (bound was {})",
        bytes.len(),
        m.serialize_size()?
    );
    let back = Matrix::<f64>::deserialize(&bytes)?;
    assert_eq!(back.extract_tuples()?, m.extract_tuples()?);
    println!("deserialized matrix matches the original");

    // Vectors: dense import, sparse export.
    let v = Vector::<i32>::import(4, VectorFormat::Dense, None, vec![10, 20, 30, 40])?;
    println!("\ndense vector hint: {:?}", v.export_hint());
    let (vi, vv) = v.export(VectorFormat::Sparse)?;
    println!("as sparse: indices {vi:?}, values {vv:?}");
    let vbytes = v.serialize()?;
    let vback = Vector::<i32>::deserialize(&vbytes)?;
    assert_eq!(vback.extract_tuples()?, v.extract_tuples()?);

    println!("\nimport/export OK");
    Ok(())
}
