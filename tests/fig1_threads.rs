//! Paper Fig. 1: a properly synchronized two-thread GraphBLAS program.
//!
//! Thread 0 computes and publishes a shared matrix `Esh` (completing wait
//! + release store); thread 1 spins (acquire load) and consumes it. The
//!   test asserts the concurrent run produces byte-identical results to a
//!   sequential execution — the §III thread-safety contract.

use std::sync::atomic::{AtomicBool, Ordering};

use graphblas::operations::mxm;
use graphblas::{
    global_context, no_mask, Context, ContextOptions, Descriptor, Index, Matrix, Mode,
    Semiring, WaitMode,
};

fn deterministic_matrix(n: usize, seed: u64) -> Matrix<i64> {
    // Simple LCG-driven sparse matrix; deterministic across runs/threads.
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    let mut rows: Vec<Index> = Vec::new();
    let mut cols: Vec<Index> = Vec::new();
    let mut vals: Vec<i64> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for _ in 0..n * 4 {
        let i = next() % n;
        let j = next() % n;
        if seen.insert((i, j)) {
            rows.push(i);
            cols.push(j);
            vals.push((next() % 17) as i64 - 8);
        }
    }
    let m = Matrix::<i64>::new(n, n).unwrap();
    m.build(&rows, &cols, &vals, None).unwrap();
    m
}

type Tuples = Vec<(Index, Index, i64)>;

fn run_pipeline(ctx: &Context, n: usize) -> (Tuples, Tuples) {
    let sr = Semiring::<i64, i64, i64>::plus_times();
    let desc = Descriptor::default();

    let esh = Matrix::<i64>::new_in(ctx, n, n).unwrap();
    let dres = Matrix::<i64>::new_in(ctx, n, n).unwrap();
    let hres = Matrix::<i64>::new_in(ctx, n, n).unwrap();
    let flag = AtomicBool::new(false);

    std::thread::scope(|scope| {
        {
            let (esh, dres, ctx, sr) = (esh.clone(), dres.clone(), ctx.clone(), sr.clone());
            let flag = &flag;
            scope.spawn(move || {
                let a = deterministic_matrix(n, 1);
                let b = deterministic_matrix(n, 2);
                let d = deterministic_matrix(n, 3);
                for m in [&a, &b, &d] {
                    m.switch_context(&ctx).unwrap();
                }
                let c = Matrix::<i64>::new_in(&ctx, n, n).unwrap();
                mxm(&c, no_mask(), None, &sr, &a, &b, &desc).unwrap();
                mxm(&esh, no_mask(), None, &sr, &d, &c, &desc).unwrap();
                esh.wait(WaitMode::Complete).unwrap();
                flag.store(true, Ordering::Release);
                mxm(&dres, no_mask(), None, &sr, &a, &esh, &desc).unwrap();
                dres.wait(WaitMode::Complete).unwrap();
            });
        }
        {
            let (esh, hres, ctx, sr) = (esh.clone(), hres.clone(), ctx.clone(), sr.clone());
            let flag = &flag;
            scope.spawn(move || {
                let e = deterministic_matrix(n, 4);
                let f = deterministic_matrix(n, 5);
                for m in [&e, &f] {
                    m.switch_context(&ctx).unwrap();
                }
                let g = Matrix::<i64>::new_in(&ctx, n, n).unwrap();
                mxm(&g, no_mask(), None, &sr, &e, &f, &desc).unwrap();
                while !flag.load(Ordering::Acquire) {
                    std::hint::spin_loop();
                }
                mxm(&hres, no_mask(), None, &sr, &g, &esh, &desc).unwrap();
                hres.wait(WaitMode::Complete).unwrap();
            });
        }
    });

    let tup = |m: &Matrix<i64>| {
        let (r, c, v) = m.extract_tuples().unwrap();
        r.into_iter().zip(c).zip(v).map(|((i, j), x)| (i, j, x)).collect()
    };
    (tup(&dres), tup(&hres))
}

fn run_sequential(n: usize) -> (Tuples, Tuples) {
    let sr = Semiring::<i64, i64, i64>::plus_times();
    let desc = Descriptor::default();
    let a = deterministic_matrix(n, 1);
    let b = deterministic_matrix(n, 2);
    let d = deterministic_matrix(n, 3);
    let e = deterministic_matrix(n, 4);
    let f = deterministic_matrix(n, 5);
    let c = Matrix::<i64>::new(n, n).unwrap();
    let esh = Matrix::<i64>::new(n, n).unwrap();
    let dres = Matrix::<i64>::new(n, n).unwrap();
    let g = Matrix::<i64>::new(n, n).unwrap();
    let hres = Matrix::<i64>::new(n, n).unwrap();
    mxm(&c, no_mask(), None, &sr, &a, &b, &desc).unwrap();
    mxm(&esh, no_mask(), None, &sr, &d, &c, &desc).unwrap();
    mxm(&dres, no_mask(), None, &sr, &a, &esh, &desc).unwrap();
    mxm(&g, no_mask(), None, &sr, &e, &f, &desc).unwrap();
    mxm(&hres, no_mask(), None, &sr, &g, &esh, &desc).unwrap();
    let tup = |m: &Matrix<i64>| {
        let (r, c, v) = m.extract_tuples().unwrap();
        r.into_iter().zip(c).zip(v).map(|((i, j), x)| (i, j, x)).collect()
    };
    (tup(&dres), tup(&hres))
}

#[test]
fn fig1_nonblocking_concurrent_matches_sequential() {
    let n = 64;
    let ctx = Context::new(
        &global_context(),
        Mode::NonBlocking,
        ContextOptions::default(),
    );
    let expected = run_sequential(n);
    for _ in 0..5 {
        let got = run_pipeline(&ctx, n);
        assert_eq!(got, expected);
    }
}

#[test]
fn fig1_blocking_concurrent_matches_sequential() {
    let n = 48;
    let ctx = Context::new(&global_context(), Mode::Blocking, ContextOptions::default());
    let expected = run_sequential(n);
    let got = run_pipeline(&ctx, n);
    assert_eq!(got, expected);
}

#[test]
fn independent_objects_from_many_threads() {
    // §III thread safety: independent method calls from many threads.
    let handles: Vec<_> = (0..8)
        .map(|t| {
            std::thread::spawn(move || {
                let a = deterministic_matrix(40, t);
                let b = deterministic_matrix(40, t + 100);
                let c = Matrix::<i64>::new(40, 40).unwrap();
                mxm(
                    &c,
                    no_mask(),
                    None,
                    &Semiring::plus_times(),
                    &a,
                    &b,
                    &Descriptor::default(),
                )
                .unwrap();
                c.nvals().unwrap()
            })
        })
        .collect();
    for h in handles {
        assert!(h.join().unwrap() > 0);
    }
}

#[test]
fn shared_object_concurrent_reads_after_completion() {
    let a = deterministic_matrix(64, 9);
    a.wait(WaitMode::Materialize).unwrap();
    let expected = a.nvals().unwrap();
    std::thread::scope(|s| {
        for _ in 0..8 {
            let a = a.clone();
            s.spawn(move || {
                for _ in 0..50 {
                    assert_eq!(a.nvals().unwrap(), expected);
                    assert!(a.extract_element(0, 0).is_ok());
                }
            });
        }
    });
}
