//! End-to-end cross-validation of the algorithm layer on generated
//! graphs: different algorithms constrain each other (BFS vs unit-weight
//! SSSP, components vs BFS floods, triangles vs clustering coefficients).

use graphblas::algo::{
    bfs_levels, bfs_parents, connected_components, k_core, maximal_independent_set,
    sssp_bellman_ford, triangle_count,
};
use graphblas::io::{erdos_renyi, grid, rmat};
use graphblas::operations::apply;
use graphblas::{no_mask, Descriptor, Matrix, UnaryOp};

fn symmetric_rmat(scale: u32, seed: u64) -> Matrix<bool> {
    rmat(scale, 6, seed)
        .without_self_loops()
        .undirected()
        .to_bool_matrix()
        .unwrap()
}

#[test]
fn bfs_levels_equal_unit_weight_sssp() {
    let a = symmetric_rmat(7, 11);
    let w = Matrix::<f64>::new(a.nrows(), a.ncols()).unwrap();
    apply(
        &w,
        no_mask(),
        None,
        &UnaryOp::<bool, f64>::new("unit", |_| 1.0),
        &a,
        &Descriptor::default(),
    )
    .unwrap();
    let levels = bfs_levels(&a, 0).unwrap();
    let dist = sssp_bellman_ford(&w, 0).unwrap();
    assert_eq!(levels.nvals().unwrap(), dist.nvals().unwrap());
    for v in 0..a.nrows() {
        let l = levels.extract_element(v).unwrap();
        let d = dist.extract_element(v).unwrap();
        match (l, d) {
            (Some(l), Some(d)) => assert_eq!(l as f64, d, "vertex {v}"),
            (None, None) => {}
            other => panic!("vertex {v} reachability disagrees: {other:?}"),
        }
    }
}

#[test]
fn bfs_flood_size_matches_component_size() {
    let a = erdos_renyi(120, 150, 5)
        .without_self_loops()
        .undirected()
        .to_bool_matrix()
        .unwrap();
    let comp = connected_components(&a).unwrap();
    let label0 = comp.extract_element(0).unwrap().unwrap();
    let component_size = (0..120)
        .filter(|&v| comp.extract_element(v).unwrap().unwrap() == label0)
        .count();
    let levels = bfs_levels(&a, 0).unwrap();
    assert_eq!(levels.nvals().unwrap(), component_size);
}

#[test]
fn parents_and_levels_are_consistent_on_rmat() {
    let a = symmetric_rmat(6, 3);
    let levels = bfs_levels(&a, 1).unwrap();
    let parents = bfs_parents(&a, 1).unwrap();
    assert_eq!(levels.nvals().unwrap(), parents.nvals().unwrap());
    for v in 0..a.nrows() {
        if v == 1 {
            continue;
        }
        if let Some(p) = parents.extract_element(v).unwrap() {
            let lv = levels.extract_element(v).unwrap().unwrap();
            let lp = levels.extract_element(p as usize).unwrap().unwrap();
            assert_eq!(lv, lp + 1, "vertex {v}: parent edge must drop one level");
            assert!(a.extract_element(p as usize, v).unwrap().is_some());
        }
    }
}

#[test]
fn grid_has_no_triangles_and_known_structure() {
    let g = grid(6, 7).to_bool_matrix().unwrap();
    assert_eq!(triangle_count(&g).unwrap(), 0);
    // A grid is connected: one component.
    let comp = connected_components(&g).unwrap();
    for v in 0..g.nrows() {
        assert_eq!(comp.extract_element(v).unwrap(), Some(0));
    }
    // Interior of a grid is a 2-core; the whole grid survives k = 2.
    let core2 = k_core(&g, 2).unwrap();
    assert_eq!(core2.nvals().unwrap(), g.nrows());
    // Nothing survives k = 3 in a grid (corners peel, then everything).
    let core3 = k_core(&g, 3).unwrap();
    assert_eq!(core3.nvals().unwrap(), 0);
}

#[test]
fn mis_is_independent_and_maximal_on_rmat() {
    let a = symmetric_rmat(6, 21);
    let n = a.nrows();
    let mis = maximal_independent_set(&a, 123).unwrap();
    let member: Vec<bool> = (0..n)
        .map(|i| mis.extract_element(i).unwrap().unwrap_or(false))
        .collect();
    for i in 0..n {
        for j in 0..n {
            if member[i] && member[j] {
                assert!(
                    a.extract_element(i, j).unwrap().is_none(),
                    "MIS members {i},{j} adjacent"
                );
            }
        }
    }
    for v in 0..n {
        if !member[v] {
            let covered =
                (0..n).any(|u| member[u] && a.extract_element(v, u).unwrap().is_some());
            assert!(covered, "vertex {v} uncovered — MIS not maximal");
        }
    }
}

#[test]
fn triangle_count_scales_with_known_construction() {
    // Two K4 blocks joined by one edge: 2 · C(4,3) = 8 triangles.
    let mut edges = Vec::new();
    for base in [0usize, 4] {
        for i in 0..4 {
            for j in (i + 1)..4 {
                edges.push((base + i, base + j));
            }
        }
    }
    edges.push((3, 4));
    let a = Matrix::<bool>::new(8, 8).unwrap();
    let mut rows = Vec::new();
    let mut cols = Vec::new();
    for &(u, v) in &edges {
        rows.push(u);
        cols.push(v);
        rows.push(v);
        cols.push(u);
    }
    a.build(
        &rows,
        &cols,
        &vec![true; rows.len()],
        Some(&graphblas::BinaryOp::lor()),
    )
    .unwrap();
    assert_eq!(triangle_count(&a).unwrap(), 8);
}

#[test]
fn algorithms_run_inside_thread_limited_context() {
    use graphblas::{global_context, Context, ContextOptions, Mode};
    let ctx = Context::new(
        &global_context(),
        Mode::Blocking,
        ContextOptions {
            nthreads: Some(1),
            ..Default::default()
        },
    );
    let a = symmetric_rmat(6, 2);
    a.switch_context(&ctx).unwrap();
    // The whole pipeline must work single-threaded with identical results.
    let t1 = triangle_count(&a).unwrap();
    a.switch_context(&global_context()).unwrap();
    let t2 = triangle_count(&a).unwrap();
    assert_eq!(t1, t2);
}
