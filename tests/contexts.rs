//! Paper Fig. 2 / §IV: hierarchical execution contexts — creation with a
//! parent, context-aware constructors, the shared-context requirement,
//! and `GrB_Context_switch`.

use graphblas::operations::{ewise_add, mxm};
use graphblas::{
    global_context, no_mask, BinaryOp, Context, ContextOptions, Descriptor, Matrix, Mode,
    Semiring, Vector,
};

fn ctx(parent: &Context, mode: Mode, nthreads: Option<usize>) -> Context {
    Context::new(
        parent,
        mode,
        ContextOptions {
            nthreads,
            ..Default::default()
        },
    )
}

#[test]
fn nested_contexts_clamp_resources() {
    let root = global_context();
    let outer = ctx(&root, Mode::Blocking, Some(4));
    let inner = ctx(&outer, Mode::Blocking, Some(16));
    // A child can never exceed its parent's budget (§IV hierarchy).
    assert!(inner.effective_threads() <= outer.effective_threads());
    assert!(inner.is_within(&outer));
    assert!(inner.is_within(&root));
    assert!(!outer.is_within(&inner));
}

#[test]
fn results_identical_across_thread_budgets() {
    // The context controls resources, never results.
    let root = global_context();
    let a = Matrix::<i64>::new(64, 64).unwrap();
    let rows: Vec<usize> = (0..64).collect();
    let vals: Vec<i64> = (0..64).map(|i| i as i64 + 1).collect();
    a.build(&rows, &rows, &vals, None).unwrap();

    let mut reference: Option<Vec<(usize, usize, i64)>> = None;
    for threads in [1usize, 2, 8] {
        let c = ctx(&root, Mode::Blocking, Some(threads));
        let a2 = a.dup().unwrap();
        a2.switch_context(&c).unwrap();
        let out = Matrix::<i64>::new_in(&c, 64, 64).unwrap();
        mxm(
            &out,
            no_mask(),
            None,
            &Semiring::plus_times(),
            &a2,
            &a2,
            &Descriptor::default(),
        )
        .unwrap();
        let (r, cc, v) = out.extract_tuples().unwrap();
        let tuples: Vec<_> = r.into_iter().zip(cc).zip(v).map(|((i, j), x)| (i, j, x)).collect();
        match &reference {
            None => reference = Some(tuples),
            Some(expect) => assert_eq!(&tuples, expect, "budget {threads} diverged"),
        }
    }
}

#[test]
fn mixed_contexts_are_rejected() {
    let root = global_context();
    let c1 = ctx(&root, Mode::Blocking, Some(2));
    let c2 = ctx(&root, Mode::Blocking, Some(2));
    let a = Matrix::<i64>::new_in(&c1, 4, 4).unwrap();
    let b = Matrix::<i64>::new_in(&c2, 4, 4).unwrap();
    let out = Matrix::<i64>::new_in(&c1, 4, 4).unwrap();
    let err = mxm(
        &out,
        no_mask(),
        None,
        &Semiring::plus_times(),
        &a,
        &b,
        &Descriptor::default(),
    )
    .unwrap_err();
    assert!(err.is_api());
    assert_eq!(err.code(), -9); // ContextMismatch extension code
}

#[test]
fn context_switch_heals_the_mismatch() {
    let root = global_context();
    let c1 = ctx(&root, Mode::Blocking, Some(2));
    let c2 = ctx(&root, Mode::Blocking, Some(2));
    let a = Matrix::<i64>::new_in(&c1, 2, 2).unwrap();
    a.set_element(3, 0, 0).unwrap();
    let b = Matrix::<i64>::new_in(&c2, 2, 2).unwrap();
    b.set_element(4, 0, 0).unwrap();
    let out = Matrix::<i64>::new_in(&c1, 2, 2).unwrap();
    // GrB_Context_switch(B, c1)
    b.switch_context(&c1).unwrap();
    assert!(b.context().same(&c1));
    ewise_add(
        &out,
        no_mask(),
        None,
        &BinaryOp::plus(),
        &a,
        &b,
        &Descriptor::default(),
    )
    .unwrap();
    assert_eq!(out.extract_element(0, 0).unwrap(), Some(7));
}

#[test]
fn vectors_and_scalars_carry_contexts_too() {
    let root = global_context();
    let c1 = ctx(&root, Mode::NonBlocking, None);
    let v = Vector::<f64>::new_in(&c1, 8).unwrap();
    assert!(v.context().same(&c1));
    let s = graphblas::Scalar::<f64>::new_in(&c1).unwrap();
    assert!(s.context().same(&c1));
    // Default constructors land in the global context.
    let w = Vector::<f64>::new(8).unwrap();
    assert!(w.context().same(&root));
}

#[test]
fn nonblocking_context_defers_blocking_context_does_not() {
    let root = global_context();
    let nb = ctx(&root, Mode::NonBlocking, None);
    let bl = ctx(&root, Mode::Blocking, None);

    let m_nb = Matrix::<i64>::new_in(&nb, 4, 4).unwrap();
    m_nb.build(&[0], &[0], &[1], None).unwrap();
    assert!(m_nb.pending_len() > 0, "nonblocking build should defer");

    let m_bl = Matrix::<i64>::new_in(&bl, 4, 4).unwrap();
    m_bl.build(&[0], &[0], &[1], None).unwrap();
    assert_eq!(m_bl.pending_len(), 0, "blocking build must execute now");
}

#[test]
fn contexts_report_identity_and_mode() {
    let root = global_context();
    let a = ctx(&root, Mode::NonBlocking, Some(3));
    assert_eq!(a.mode(), Mode::NonBlocking);
    assert!(a.parent().unwrap().same(&root));
    let b = a.clone();
    assert!(a.same(&b));
    assert_ne!(a.id(), root.id());
}
