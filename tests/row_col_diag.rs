//! Coverage for the remaining C-API method families: `GrB_Row_assign`,
//! `GrB_Col_assign`, `GrB_Matrix_diag`, and the vector forms of the
//! bound-binary `apply` variants (Table II).

use graphblas::operations::{
    all_indices, apply_binop1st_v, apply_binop1st_v_scalar, apply_binop2nd_v,
    apply_binop2nd_v_scalar, assign_col, assign_row,
};
use graphblas::{
    no_mask_v, BinaryOp, Descriptor, Index, Matrix, Scalar, Vector,
};

fn matrix(shape: (usize, usize), t: &[(usize, usize, i64)]) -> Matrix<i64> {
    let m = Matrix::<i64>::new(shape.0, shape.1).unwrap();
    m.build(
        &t.iter().map(|x| x.0).collect::<Vec<_>>(),
        &t.iter().map(|x| x.1).collect::<Vec<_>>(),
        &t.iter().map(|x| x.2).collect::<Vec<_>>(),
        None,
    )
    .unwrap();
    m
}

fn tuples(m: &Matrix<i64>) -> Vec<(Index, Index, i64)> {
    let (r, c, v) = m.extract_tuples().unwrap();
    r.into_iter().zip(c).zip(v).map(|((i, j), x)| (i, j, x)).collect()
}

#[test]
fn row_assign_replaces_the_row_segment() {
    let c = matrix((3, 3), &[(1, 0, 1), (1, 2, 2), (0, 0, 9)]);
    let u = Vector::<i64>::new(3).unwrap();
    u.build(&[1], &[50], None).unwrap();
    // Row 1, all columns: u has only index 1 → (1,0) and (1,2) deleted,
    // (1,1) becomes 50. Row 0 untouched.
    assign_row(&c, no_mask_v(), None, &u, 1, &all_indices(3), &Descriptor::default()).unwrap();
    assert_eq!(tuples(&c), vec![(0, 0, 9), (1, 1, 50)]);
}

#[test]
fn row_assign_with_accum_and_column_subset() {
    let c = matrix((2, 4), &[(0, 1, 10), (0, 3, 30)]);
    let u = Vector::<i64>::new(2).unwrap();
    u.build(&[0, 1], &[1, 3], None).unwrap();
    // Columns {1, 3} of row 0, accumulated.
    assign_row(
        &c,
        no_mask_v(),
        Some(&BinaryOp::plus()),
        &u,
        0,
        &[1, 3],
        &Descriptor::default(),
    )
    .unwrap();
    assert_eq!(tuples(&c), vec![(0, 1, 11), (0, 3, 33)]);
}

#[test]
fn row_assign_masked_only_touches_masked_columns() {
    let c = matrix((2, 3), &[(0, 0, 1), (0, 1, 2), (1, 1, 7)]);
    let u = Vector::<i64>::new(3).unwrap();
    u.build(&[0, 1, 2], &[100, 200, 300], None).unwrap();
    let mask = Vector::<bool>::new(3).unwrap();
    mask.set_element(true, 1).unwrap();
    assign_row(
        &c,
        Some(&mask),
        None,
        &u,
        0,
        &all_indices(3),
        &Descriptor::default(),
    )
    .unwrap();
    // Only column 1 of row 0 writable; column 0 keeps old; other rows
    // untouched.
    assert_eq!(tuples(&c), vec![(0, 0, 1), (0, 1, 200), (1, 1, 7)]);
}

#[test]
fn col_assign_mirrors_row_assign() {
    let c = matrix((3, 3), &[(0, 1, 1), (2, 1, 3), (0, 0, 9)]);
    let u = Vector::<i64>::new(3).unwrap();
    u.build(&[2], &[70], None).unwrap();
    assign_col(&c, no_mask_v(), None, &u, &all_indices(3), 1, &Descriptor::default()).unwrap();
    assert_eq!(tuples(&c), vec![(0, 0, 9), (2, 1, 70)]);
}

#[test]
fn col_assign_bounds_and_shape_checks() {
    let c = Matrix::<i64>::new(2, 2).unwrap();
    let u = Vector::<i64>::new(2).unwrap();
    assert!(assign_col(&c, no_mask_v(), None, &u, &[0, 1], 5, &Descriptor::default()).is_err());
    let short = Vector::<i64>::new(1).unwrap();
    assert!(
        assign_col(&c, no_mask_v(), None, &short, &[0, 1], 0, &Descriptor::default()).is_err()
    );
    assert!(assign_row(&c, no_mask_v(), None, &u, 9, &[0, 1], &Descriptor::default()).is_err());
}

#[test]
fn diag_constructs_shifted_diagonals() {
    let v = Vector::<i64>::new(3).unwrap();
    v.build(&[0, 2], &[5, 7], None).unwrap();
    let main = Matrix::diag(&v, 0).unwrap();
    assert_eq!((main.nrows(), main.ncols()), (3, 3));
    assert_eq!(tuples(&main), vec![(0, 0, 5), (2, 2, 7)]);
    let upper = Matrix::diag(&v, 2).unwrap();
    assert_eq!((upper.nrows(), upper.ncols()), (5, 5));
    assert_eq!(tuples(&upper), vec![(0, 2, 5), (2, 4, 7)]);
    let lower = Matrix::diag(&v, -1).unwrap();
    assert_eq!((lower.nrows(), lower.ncols()), (4, 4));
    assert_eq!(tuples(&lower), vec![(1, 0, 5), (3, 2, 7)]);
}

#[test]
fn vector_bound_binop_apply_variants() {
    let u = Vector::<i64>::new(3).unwrap();
    u.build(&[0, 2], &[10, 20], None).unwrap();
    let w = Vector::<i64>::new(3).unwrap();
    apply_binop1st_v(&w, no_mask_v(), None, &BinaryOp::minus(), 100, &u, &Descriptor::default())
        .unwrap();
    let (idx, vals) = w.extract_tuples().unwrap();
    assert_eq!((idx, vals), (vec![0, 2], vec![90, 80]));
    apply_binop2nd_v(&w, no_mask_v(), None, &BinaryOp::minus(), &u, 1, &Descriptor::default())
        .unwrap();
    let (_, vals) = w.extract_tuples().unwrap();
    assert_eq!(vals, vec![9, 19]);
    // Scalar variants, including the empty-scalar error.
    let s = Scalar::<i64>::new().unwrap();
    assert_eq!(
        apply_binop1st_v_scalar(
            &w,
            no_mask_v(),
            None,
            &BinaryOp::plus(),
            &s,
            &u,
            &Descriptor::default()
        )
        .unwrap_err()
        .code(),
        -106
    );
    s.set_element(3).unwrap();
    apply_binop1st_v_scalar(&w, no_mask_v(), None, &BinaryOp::plus(), &s, &u, &Descriptor::default())
        .unwrap();
    let (_, vals) = w.extract_tuples().unwrap();
    assert_eq!(vals, vec![13, 23]);
    apply_binop2nd_v_scalar(&w, no_mask_v(), None, &BinaryOp::times(), &u, &s, &Descriptor::default())
        .unwrap();
    let (_, vals) = w.extract_tuples().unwrap();
    assert_eq!(vals, vec![30, 60]);
}
