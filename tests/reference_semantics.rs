//! Randomized cross-validation: GraphBLAS operations against naive
//! reference implementations over `BTreeMap`, through the public API
//! only. These are the "does the algebra hold" tests; inputs come from
//! the deterministic `graphblas_exec::rng` generator.

use std::collections::BTreeMap;

use graphblas::operations::{ewise_add, ewise_mult, mxm, mxv, reduce_to_value, transpose};
use graphblas::{
    no_mask, no_mask_v, BinaryOp, Descriptor, Index, Matrix, Monoid, Semiring, Vector,
};
use graphblas_exec::rng::prelude::*;

const CASES: usize = 48;

type Entries = BTreeMap<(Index, Index), i64>;

fn to_matrix(shape: (usize, usize), entries: &Entries) -> Matrix<i64> {
    let m = Matrix::<i64>::new(shape.0, shape.1).unwrap();
    let rows: Vec<_> = entries.keys().map(|k| k.0).collect();
    let cols: Vec<_> = entries.keys().map(|k| k.1).collect();
    let vals: Vec<_> = entries.values().copied().collect();
    m.build(&rows, &cols, &vals, None).unwrap();
    m
}

fn to_entries(m: &Matrix<i64>) -> Entries {
    let (r, c, v) = m.extract_tuples().unwrap();
    r.into_iter().zip(c).zip(v).collect()
}

fn random_entries(rng: &mut StdRng, rows: usize, cols: usize) -> Entries {
    (0..rng.gen_range(0..40usize))
        .map(|_| {
            (
                (rng.gen_range(0..rows), rng.gen_range(0..cols)),
                rng.gen_range(-50..50i64),
            )
        })
        .collect()
}

#[test]
fn mxm_matches_reference() {
    let mut rng = StdRng::seed_from_u64(0x3A71);
    for _ in 0..CASES {
        let a = random_entries(&mut rng, 12, 9);
        let b = random_entries(&mut rng, 9, 11);
        let am = to_matrix((12, 9), &a);
        let bm = to_matrix((9, 11), &b);
        let cm = Matrix::<i64>::new(12, 11).unwrap();
        mxm(
            &cm,
            no_mask(),
            None,
            &Semiring::plus_times(),
            &am,
            &bm,
            &Descriptor::default(),
        )
        .unwrap();
        let mut expect: Entries = BTreeMap::new();
        for (&(i, k), &av) in &a {
            for (&(k2, j), &bv) in &b {
                if k == k2 {
                    *expect.entry((i, j)).or_insert(0) += av * bv;
                }
            }
        }
        assert_eq!(to_entries(&cm), expect);
    }
}

#[test]
fn mxm_transpose_flags_match_explicit_transpose() {
    let mut rng = StdRng::seed_from_u64(0x7F1A);
    for _ in 0..CASES {
        let a = random_entries(&mut rng, 8, 8);
        let b = random_entries(&mut rng, 8, 8);
        let am = to_matrix((8, 8), &a);
        let bm = to_matrix((8, 8), &b);
        // C1 = Aᵀ·B via descriptor.
        let c1 = Matrix::<i64>::new(8, 8).unwrap();
        mxm(
            &c1,
            no_mask(),
            None,
            &Semiring::plus_times(),
            &am,
            &bm,
            &Descriptor::new().transpose_a(),
        )
        .unwrap();
        // C2 = T·B with T = transpose(A) materialized.
        let t = Matrix::<i64>::new(8, 8).unwrap();
        transpose(&t, no_mask(), None, &am, &Descriptor::default()).unwrap();
        let c2 = Matrix::<i64>::new(8, 8).unwrap();
        mxm(
            &c2,
            no_mask(),
            None,
            &Semiring::plus_times(),
            &t,
            &bm,
            &Descriptor::default(),
        )
        .unwrap();
        assert_eq!(to_entries(&c1), to_entries(&c2));
    }
}

#[test]
fn ewise_add_is_union_with_op_on_overlap() {
    let mut rng = StdRng::seed_from_u64(0xEA0D);
    for _ in 0..CASES {
        let a = random_entries(&mut rng, 10, 10);
        let b = random_entries(&mut rng, 10, 10);
        let am = to_matrix((10, 10), &a);
        let bm = to_matrix((10, 10), &b);
        let cm = Matrix::<i64>::new(10, 10).unwrap();
        ewise_add(
            &cm,
            no_mask(),
            None,
            &BinaryOp::plus(),
            &am,
            &bm,
            &Descriptor::default(),
        )
        .unwrap();
        let mut expect = a.clone();
        for (k, v) in &b {
            *expect.entry(*k).or_insert(0) += v;
        }
        assert_eq!(to_entries(&cm), expect);
    }
}

#[test]
fn ewise_mult_is_intersection() {
    let mut rng = StdRng::seed_from_u64(0xE301);
    for _ in 0..CASES {
        let a = random_entries(&mut rng, 10, 10);
        let b = random_entries(&mut rng, 10, 10);
        let am = to_matrix((10, 10), &a);
        let bm = to_matrix((10, 10), &b);
        let cm = Matrix::<i64>::new(10, 10).unwrap();
        ewise_mult(
            &cm,
            no_mask(),
            None,
            &BinaryOp::times(),
            &am,
            &bm,
            &Descriptor::default(),
        )
        .unwrap();
        let expect: Entries = a
            .iter()
            .filter_map(|(k, va)| b.get(k).map(|vb| (*k, va * vb)))
            .collect();
        assert_eq!(to_entries(&cm), expect);
    }
}

#[test]
fn masked_write_semantics() {
    let mut rng = StdRng::seed_from_u64(0x3A5C);
    for _ in 0..CASES {
        let a = random_entries(&mut rng, 8, 8);
        let b = random_entries(&mut rng, 8, 8);
        let mask = random_entries(&mut rng, 8, 8);
        let complement = rng.gen_bool(0.5);
        let replace = rng.gen_bool(0.5);
        // C⟨M, r⟩ = A ⊕ B against a hand-rolled reference of the
        // four-step write rule (structure mask).
        let am = to_matrix((8, 8), &a);
        let bm = to_matrix((8, 8), &b);
        let maskm = to_matrix((8, 8), &mask);
        let old: Entries = b.clone(); // prime C with b's entries
        let cm = to_matrix((8, 8), &old);
        let mut desc = Descriptor::new().structure_mask();
        if complement {
            desc = desc.complement_mask();
        }
        if replace {
            desc = desc.replace();
        }
        ewise_add(&cm, Some(&maskm), None, &BinaryOp::plus(), &am, &bm, &desc).unwrap();

        let mut t: Entries = a.clone();
        for (k, v) in &b {
            *t.entry(*k).or_insert(0) += v;
        }
        let in_mask = |k: &(Index, Index)| mask.contains_key(k) != complement;
        let mut expect: Entries = BTreeMap::new();
        for (k, v) in &t {
            if in_mask(k) {
                expect.insert(*k, *v);
            }
        }
        if !replace {
            for (k, v) in &old {
                if !in_mask(k) {
                    expect.insert(*k, *v);
                }
            }
        }
        assert_eq!(to_entries(&cm), expect);
    }
}

#[test]
fn accum_folds_old_and_new() {
    let mut rng = StdRng::seed_from_u64(0xACC0);
    for _ in 0..CASES {
        let a = random_entries(&mut rng, 8, 8);
        let c0 = random_entries(&mut rng, 8, 8);
        let am = to_matrix((8, 8), &a);
        let cm = to_matrix((8, 8), &c0);
        // C += A (identity apply with PLUS accumulator).
        graphblas::operations::apply(
            &cm,
            no_mask(),
            Some(&BinaryOp::plus()),
            &graphblas::UnaryOp::identity(),
            &am,
            &Descriptor::default(),
        )
        .unwrap();
        let mut expect = c0.clone();
        for (k, v) in &a {
            *expect.entry(*k).or_insert(0) += v;
        }
        assert_eq!(to_entries(&cm), expect);
    }
}

#[test]
fn reduce_total_matches_sum() {
    let mut rng = StdRng::seed_from_u64(0x12ED);
    for _ in 0..CASES {
        let a = random_entries(&mut rng, 15, 15);
        let am = to_matrix((15, 15), &a);
        let total = reduce_to_value(&Monoid::plus(), &am).unwrap();
        assert_eq!(total, a.values().sum::<i64>());
    }
}

#[test]
fn mxv_matches_reference() {
    let mut rng = StdRng::seed_from_u64(0x33C5);
    for _ in 0..CASES {
        let a = random_entries(&mut rng, 10, 7);
        let x: BTreeMap<usize, i64> = (0..rng.gen_range(0..7usize))
            .map(|_| (rng.gen_range(0..7usize), rng.gen_range(-20..20i64)))
            .collect();
        let am = to_matrix((10, 7), &a);
        let xv = Vector::<i64>::new(7).unwrap();
        let idx: Vec<_> = x.keys().copied().collect();
        let vals: Vec<_> = x.values().copied().collect();
        xv.build(&idx, &vals, None).unwrap();
        let w = Vector::<i64>::new(10).unwrap();
        mxv(
            &w,
            no_mask_v(),
            None,
            &Semiring::plus_times(),
            &am,
            &xv,
            &Descriptor::default(),
        )
        .unwrap();
        let mut expect: BTreeMap<Index, i64> = BTreeMap::new();
        for (&(i, j), &av) in &a {
            if let Some(&xj) = x.get(&j) {
                *expect.entry(i).or_insert(0) += av * xj;
            }
        }
        let (wi, wv) = w.extract_tuples().unwrap();
        let got: BTreeMap<Index, i64> = wi.into_iter().zip(wv).collect();
        assert_eq!(got, expect);
    }
}

#[test]
fn serialization_roundtrip_property() {
    let mut rng = StdRng::seed_from_u64(0x5E1F);
    for _ in 0..CASES {
        let a = random_entries(&mut rng, 9, 13);
        let am = to_matrix((9, 13), &a);
        let back = Matrix::<i64>::deserialize(&am.serialize().unwrap()).unwrap();
        assert_eq!(to_entries(&back), a);
    }
}

#[test]
fn import_export_roundtrip_all_formats() {
    use graphblas::Format;
    let mut rng = StdRng::seed_from_u64(0x13F0);
    for _ in 0..CASES {
        let a = random_entries(&mut rng, 6, 6);
        let am = to_matrix((6, 6), &a);
        for fmt in [Format::Csr, Format::Csc, Format::Coo] {
            let (p, i, v) = am.export(fmt).unwrap();
            let back = Matrix::<i64>::import(6, 6, fmt, Some(p), Some(i), v).unwrap();
            assert_eq!(to_entries(&back), a.clone());
        }
    }
}
