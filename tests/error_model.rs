//! Paper §V: the two-tier error model.
//!
//! * API errors: deterministic, immediate, never deferred, no side
//!   effects — even in nonblocking mode.
//! * Execution errors: may be deferred in nonblocking mode, surface at a
//!   later method or at `wait(Materialize)`, poison the output object
//!   (contents undefined → sticky error), and are described by
//!   `GrB_error` (`error_string`).

use graphblas::operations::{extract, mxm};
use graphblas::{
    global_context, no_mask, ApiError, Context, ContextOptions, Descriptor, Error, Matrix,
    Mode, Semiring, Vector, WaitMode,
};

fn nonblocking() -> Context {
    Context::new(
        &global_context(),
        Mode::NonBlocking,
        ContextOptions::default(),
    )
}

#[test]
fn api_errors_are_never_deferred() {
    let ctx = nonblocking();
    let a = Matrix::<i64>::new_in(&ctx, 2, 3).unwrap();
    let b = Matrix::<i64>::new_in(&ctx, 9, 9).unwrap();
    let c = Matrix::<i64>::new_in(&ctx, 2, 9).unwrap();
    // Dimension mismatch: immediate API error, nothing enqueued.
    let err = mxm(
        &c,
        no_mask(),
        None,
        &Semiring::plus_times(),
        &a,
        &b,
        &Descriptor::default(),
    )
    .unwrap_err();
    assert_eq!(err, Error::Api(ApiError::DimensionMismatch));
    assert_eq!(c.pending_len(), 0);
    // The spec guarantees no arguments were modified.
    assert_eq!(c.nvals().unwrap(), 0);
    assert_eq!(c.error_string(), "");
}

#[test]
fn api_error_codes_match_spec_values() {
    // InvalidValue: zero dimension.
    assert_eq!(Matrix::<u8>::new(0, 1).unwrap_err().code(), -3);
    // InvalidIndex: scalar index out of bounds.
    let m = Matrix::<u8>::new(2, 2).unwrap();
    assert_eq!(m.set_element(1, 9, 0).unwrap_err().code(), -4);
    // OutputNotEmpty: build into a non-empty matrix.
    m.set_element(1, 0, 0).unwrap();
    assert_eq!(m.build(&[0], &[0], &[1], None).unwrap_err().code(), -7);
}

#[test]
fn execution_error_is_deferred_until_materialize() {
    let ctx = nonblocking();
    let c = Matrix::<i64>::new_in(&ctx, 2, 2).unwrap();
    // The bad index lives in a *data array*: execution error, deferrable.
    c.build(&[7], &[0], &[1], None).unwrap();
    assert!(c.pending_len() > 0, "error not yet detected");
    let err = c.wait(WaitMode::Materialize).unwrap_err();
    assert!(err.is_execution());
    assert_eq!(err.code(), -105);
}

#[test]
fn deferred_error_surfaces_at_any_later_method() {
    let ctx = nonblocking();
    let c = Matrix::<i64>::new_in(&ctx, 2, 2).unwrap();
    c.build(&[7], &[0], &[1], None).unwrap();
    // A later read reports the pending sequence's failure.
    let err = c.nvals().unwrap_err();
    assert!(err.is_execution());
}

#[test]
fn failed_object_is_poisoned_until_cleared() {
    let ctx = nonblocking();
    let c = Matrix::<i64>::new_in(&ctx, 2, 2).unwrap();
    c.build(&[7], &[0], &[1], None).unwrap();
    assert!(c.wait(WaitMode::Complete).is_err());
    // §V: contents undefined after an execution error → sticky.
    assert!(c.nvals().is_err());
    assert!(c.extract_element(0, 0).is_err());
    // Using the poisoned object as an operation output also fails.
    let a = Matrix::<i64>::new_in(&ctx, 2, 2).unwrap();
    let still_bad = mxm(
        &c,
        no_mask(),
        None,
        &Semiring::plus_times(),
        &a,
        &a,
        &Descriptor::default(),
    );
    assert!(still_bad.is_err());
    // GrB_error returns the implementation-defined description.
    let msg = c.error_string();
    assert!(msg.contains("-105") || msg.to_lowercase().contains("out of bounds"));
    // clear() rebuilds the object.
    c.clear().unwrap();
    assert_eq!(c.nvals().unwrap(), 0);
    assert_eq!(c.error_string(), "");
}

#[test]
fn error_string_is_thread_safe() {
    let ctx = nonblocking();
    let c = Matrix::<i64>::new_in(&ctx, 2, 2).unwrap();
    c.build(&[7], &[0], &[1], None).unwrap();
    let _ = c.wait(WaitMode::Complete);
    std::thread::scope(|s| {
        for _ in 0..4 {
            let c = c.clone();
            s.spawn(move || {
                for _ in 0..100 {
                    let _ = c.error_string();
                }
            });
        }
    });
}

#[test]
fn extract_with_oob_selector_arrays_is_execution_error() {
    let ctx = nonblocking();
    let a = Matrix::<i64>::new_in(&ctx, 3, 3).unwrap();
    let c = Matrix::<i64>::new_in(&ctx, 1, 1).unwrap();
    extract(&c, no_mask(), None, &a, &[99], &[0], &Descriptor::default()).unwrap();
    let err = c.wait(WaitMode::Materialize).unwrap_err();
    assert_eq!(err.code(), -105);
}

#[test]
fn vector_error_model_mirrors_matrix() {
    let ctx = nonblocking();
    let v = Vector::<i64>::new_in(&ctx, 3).unwrap();
    v.build(&[10], &[1], None).unwrap();
    assert!(v.wait(WaitMode::Materialize).is_err());
    assert!(v.nvals().is_err());
    assert!(!v.error_string().is_empty());
    v.clear().unwrap();
    assert_eq!(v.nvals().unwrap(), 0);
}

#[test]
fn blocking_mode_reports_execution_errors_immediately() {
    let c = Matrix::<i64>::new(2, 2).unwrap(); // global (blocking) context
    let err = c.build(&[7], &[0], &[1], None).unwrap_err();
    assert!(err.is_execution());
    assert_eq!(err.code(), -105);
}

#[test]
fn materializing_wait_finalizes_error_reporting() {
    // After a successful materializing wait, no more errors can come from
    // the drained sequence: subsequent reads succeed deterministically.
    let ctx = nonblocking();
    let c = Matrix::<i64>::new_in(&ctx, 2, 2).unwrap();
    c.build(&[0, 1], &[0, 1], &[5, 6], None).unwrap();
    c.wait(WaitMode::Materialize).unwrap();
    assert_eq!(c.pending_len(), 0);
    assert_eq!(c.nvals().unwrap(), 2);
    assert_eq!(c.error_string(), "");
}
