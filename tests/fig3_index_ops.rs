//! Paper Fig. 3 + Table IV: index-unary operators through `select` and
//! `apply`, covering all 18 predefined operators end-to-end.

use graphblas::operations::{apply_indexop, apply_indexop_v, select, select_v};
use graphblas::{no_mask, no_mask_v, Descriptor, Index, IndexUnaryOp, Matrix, Vector};

fn matrix() -> Matrix<i64> {
    // 4×4 with entries on, above, and below the diagonal.
    let m = Matrix::<i64>::new(4, 4).unwrap();
    let t = [
        (0usize, 0usize, 10i64),
        (0, 2, -3),
        (1, 0, 5),
        (1, 1, 0),
        (1, 3, 8),
        (2, 2, 7),
        (3, 0, -2),
        (3, 3, 4),
    ];
    m.build(
        &t.iter().map(|x| x.0).collect::<Vec<_>>(),
        &t.iter().map(|x| x.1).collect::<Vec<_>>(),
        &t.iter().map(|x| x.2).collect::<Vec<_>>(),
        None,
    )
    .unwrap();
    m
}

fn tuples(m: &Matrix<i64>) -> Vec<(Index, Index, i64)> {
    let (r, c, v) = m.extract_tuples().unwrap();
    r.into_iter().zip(c).zip(v).map(|((i, j), x)| (i, j, x)).collect()
}

fn select_with(f: &IndexUnaryOp<i64, i64, bool>, s: i64) -> Vec<(Index, Index, i64)> {
    let a = matrix();
    let c = Matrix::<i64>::new(4, 4).unwrap();
    select(&c, no_mask(), None, f, &a, s, &Descriptor::default()).unwrap();
    tuples(&c)
}

#[test]
fn tril_triu_partition() {
    let lower = select_with(&IndexUnaryOp::tril(), 0);
    let strict_upper = select_with(&IndexUnaryOp::triu(), 1);
    let all = tuples(&matrix());
    let mut merged = [lower.clone(), strict_upper.clone()].concat();
    merged.sort();
    assert_eq!(merged, all, "tril(0) ⊎ triu(1) must partition the matrix");
    assert!(lower.iter().all(|&(i, j, _)| j <= i));
    assert!(strict_upper.iter().all(|&(i, j, _)| j > i));
}

#[test]
fn shifted_diagonals() {
    // tril(-1): strictly below the main diagonal.
    let strictly_lower = select_with(&IndexUnaryOp::tril(), -1);
    assert_eq!(strictly_lower, vec![(1, 0, 5), (3, 0, -2)]);
    // diag(2): the +2 superdiagonal.
    let diag2 = select_with(&IndexUnaryOp::diag(), 2);
    assert_eq!(diag2, vec![(0, 2, -3), (1, 3, 8)]);
    // offdiag(0): everything off the main diagonal.
    let off = select_with(&IndexUnaryOp::offdiag(), 0);
    assert!(off.iter().all(|&(i, j, _)| i != j));
    assert_eq!(off.len(), 4);
}

#[test]
fn row_and_column_ranges() {
    assert!(select_with(&IndexUnaryOp::rowle(), 1)
        .iter()
        .all(|&(i, _, _)| i <= 1));
    assert!(select_with(&IndexUnaryOp::rowgt(), 1)
        .iter()
        .all(|&(i, _, _)| i > 1));
    assert!(select_with(&IndexUnaryOp::colle(), 0)
        .iter()
        .all(|&(_, j, _)| j == 0));
    assert!(select_with(&IndexUnaryOp::colgt(), 2)
        .iter()
        .all(|&(_, j, _)| j == 3));
}

#[test]
fn value_comparators_cover_all_six() {
    let m = matrix();
    let run = |f: &IndexUnaryOp<i64, i64, bool>, s: i64| {
        let c = Matrix::<i64>::new(4, 4).unwrap();
        select(&c, no_mask(), None, f, &m, s, &Descriptor::default()).unwrap();
        tuples(&c).into_iter().map(|t| t.2).collect::<Vec<_>>()
    };
    assert_eq!(run(&IndexUnaryOp::valueeq(), 0), vec![0]);
    assert!(run(&IndexUnaryOp::valuene(), 0).iter().all(|&v| v != 0));
    assert!(run(&IndexUnaryOp::valuelt(), 0).iter().all(|&v| v < 0));
    assert!(run(&IndexUnaryOp::valuele(), 0).iter().all(|&v| v <= 0));
    assert!(run(&IndexUnaryOp::valuegt(), 4).iter().all(|&v| v > 4));
    assert!(run(&IndexUnaryOp::valuege(), 4).iter().all(|&v| v >= 4));
}

#[test]
fn replace_operators_through_apply() {
    let a = matrix();
    let run = |f: &IndexUnaryOp<i64, i64, i64>, s: i64| {
        let c = Matrix::<i64>::new(4, 4).unwrap();
        apply_indexop(&c, no_mask(), None, f, &a, s, &Descriptor::default()).unwrap();
        tuples(&c)
    };
    for (i, j, v) in run(&IndexUnaryOp::rowindex(), 0) {
        assert_eq!(v, i as i64);
        assert!(a.extract_element(i, j).unwrap().is_some());
    }
    for (_, j, v) in run(&IndexUnaryOp::colindex(), 1) {
        assert_eq!(v, j as i64 + 1);
    }
    for (i, j, v) in run(&IndexUnaryOp::diagindex(), 0) {
        assert_eq!(v, j as i64 - i as i64);
    }
}

#[test]
fn vector_forms_use_single_index() {
    let u = Vector::<i64>::new(6).unwrap();
    u.build(&[0, 2, 5], &[9, -1, 9], None).unwrap();
    // ROWINDEX on vectors reads indices[0].
    let w = Vector::<i64>::new(6).unwrap();
    apply_indexop_v(
        &w,
        no_mask_v(),
        None,
        &IndexUnaryOp::rowindex(),
        &u,
        100,
        &Descriptor::default(),
    )
    .unwrap();
    let (idx, vals) = w.extract_tuples().unwrap();
    assert_eq!(idx, vec![0, 2, 5]);
    assert_eq!(vals, vec![100, 102, 105]);
    // ROWLE/ROWGT select vector regions.
    let head = Vector::<i64>::new(6).unwrap();
    select_v(
        &head,
        no_mask_v(),
        None,
        &IndexUnaryOp::rowle(),
        &u,
        2,
        &Descriptor::default(),
    )
    .unwrap();
    assert_eq!(head.extract_tuples().unwrap().0, vec![0, 2]);
    // VALUEEQ on vectors.
    let nines = Vector::<i64>::new(6).unwrap();
    select_v(
        &nines,
        no_mask_v(),
        None,
        &IndexUnaryOp::valueeq(),
        &u,
        9,
        &Descriptor::default(),
    )
    .unwrap();
    assert_eq!(nines.nvals().unwrap(), 2);
}

#[test]
fn paper_fig3_user_defined_select_and_predefined_apply() {
    // The exact pairing shown in Fig. 3: a user-written triu-threshold
    // select and the predefined COLINDEX apply.
    let a = matrix();
    let my_triu_gt = IndexUnaryOp::<i64, i64, bool>::new("my_triu_gt", |v, idx, s| {
        idx[1] > idx[0] && v > s
    });
    let sel = Matrix::<i64>::new(4, 4).unwrap();
    select(&sel, no_mask(), None, &my_triu_gt, &a, 0, &Descriptor::default()).unwrap();
    assert_eq!(tuples(&sel), vec![(1, 3, 8)]);

    let app = Matrix::<i64>::new(4, 4).unwrap();
    apply_indexop(
        &app,
        no_mask(),
        None,
        &IndexUnaryOp::colindex(),
        &a,
        1,
        &Descriptor::default(),
    )
    .unwrap();
    assert_eq!(app.nvals().unwrap(), a.nvals().unwrap());
    assert_eq!(app.extract_element(1, 3).unwrap(), Some(4));
}

#[test]
fn select_composes_with_masks_and_accum() {
    use graphblas::BinaryOp;
    let a = matrix();
    let c = Matrix::<i64>::new(4, 4).unwrap();
    c.set_element(1000, 0, 0).unwrap();
    // Accumulate the selected diagonal into existing contents.
    select(
        &c,
        no_mask(),
        Some(&BinaryOp::plus()),
        &IndexUnaryOp::diag(),
        &a,
        0,
        &Descriptor::default(),
    )
    .unwrap();
    assert_eq!(c.extract_element(0, 0).unwrap(), Some(1010));
    assert_eq!(c.extract_element(2, 2).unwrap(), Some(7));
}
