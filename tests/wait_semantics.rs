//! Paper §III: completion semantics and the fusion latitude.
//!
//! Nonblocking sequences accumulate; `wait(Complete)` finishes them;
//! consecutive unmasked in-place apply/select stages fuse into one
//! traversal; reads force completion implicitly; completed objects can be
//! handed across threads with an acquire/release edge.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use graphblas::operations::{apply, select};
use graphblas::{
    global_context, no_mask, Context, ContextOptions, Descriptor, IndexUnaryOp, Matrix, Mode,
    UnaryOp, Vector, WaitMode,
};

fn nonblocking() -> Context {
    Context::new(
        &global_context(),
        Mode::NonBlocking,
        ContextOptions::default(),
    )
}

fn seeded(ctx: &Context) -> Matrix<i64> {
    let m = Matrix::<i64>::new_in(ctx, 4, 4).unwrap();
    m.build(
        &[0, 1, 2, 3, 0],
        &[0, 1, 2, 3, 3],
        &[1, 2, 3, 4, 5],
        None,
    )
    .unwrap();
    m
}

#[test]
fn sequences_accumulate_and_drain() {
    let ctx = nonblocking();
    let m = seeded(&ctx);
    assert!(m.pending_len() >= 1); // the build itself is deferred
    for _ in 0..4 {
        apply(
            &m,
            no_mask(),
            None,
            &UnaryOp::new("inc", |x: &i64| x + 1),
            &m,
            &Descriptor::default(),
        )
        .unwrap();
    }
    assert!(m.pending_len() >= 5);
    m.wait(WaitMode::Complete).unwrap();
    assert_eq!(m.pending_len(), 0);
    assert_eq!(m.extract_element(0, 0).unwrap(), Some(5));
}

#[test]
fn fused_pipeline_equals_eager_pipeline() {
    // The same apply→select→apply chain in a blocking and a nonblocking
    // context must produce identical results (§III: fusion must be
    // mathematically invisible).
    let run = |ctx: &Context| {
        let m = seeded(ctx);
        apply(
            &m,
            no_mask(),
            None,
            &UnaryOp::new("x10", |x: &i64| x * 10),
            &m,
            &Descriptor::default(),
        )
        .unwrap();
        select(
            &m,
            no_mask(),
            None,
            &IndexUnaryOp::valuegt(),
            &m,
            15i64,
            &Descriptor::default(),
        )
        .unwrap();
        apply(
            &m,
            no_mask(),
            None,
            &UnaryOp::new("dec", |x: &i64| x - 1),
            &m,
            &Descriptor::default(),
        )
        .unwrap();
        m.wait(WaitMode::Materialize).unwrap();
        m.extract_tuples().unwrap()
    };
    let blocking = Context::new(&global_context(), Mode::Blocking, ContextOptions::default());
    assert_eq!(run(&nonblocking()), run(&blocking));
}

#[test]
fn reads_force_completion_implicitly() {
    let ctx = nonblocking();
    let m = seeded(&ctx);
    apply(
        &m,
        no_mask(),
        None,
        &UnaryOp::new("neg", |x: &i64| -x),
        &m,
        &Descriptor::default(),
    )
    .unwrap();
    assert!(m.pending_len() > 0);
    // nvals is a read: the sequence must complete first.
    assert_eq!(m.nvals().unwrap(), 5);
    assert_eq!(m.pending_len(), 0);
    assert_eq!(m.extract_element(1, 1).unwrap(), Some(-2));
}

#[test]
fn reading_another_object_forces_only_that_operand() {
    use graphblas::operations::ewise_add;
    use graphblas::BinaryOp;
    let ctx = nonblocking();
    let a = seeded(&ctx);
    let b = seeded(&ctx);
    let c = Matrix::<i64>::new_in(&ctx, 4, 4).unwrap();
    // Enqueuing C = A ⊕ B snapshots (and therefore completes) A and B,
    // but C's own computation stays pending.
    ewise_add(
        &c,
        no_mask(),
        None,
        &BinaryOp::plus(),
        &a,
        &b,
        &Descriptor::default(),
    )
    .unwrap();
    assert_eq!(a.pending_len(), 0);
    assert_eq!(b.pending_len(), 0);
    assert!(c.pending_len() > 0);
    assert_eq!(c.extract_element(0, 3).unwrap(), Some(10));
}

#[test]
fn snapshot_fixes_input_values_at_call_time() {
    // Sequence order: C = apply(A) enqueued, then A mutated. The deferred
    // C must still see A's value from the call point.
    let ctx = nonblocking();
    let a = seeded(&ctx);
    let c = Matrix::<i64>::new_in(&ctx, 4, 4).unwrap();
    apply(
        &c,
        no_mask(),
        None,
        &UnaryOp::identity(),
        &a,
        &Descriptor::default(),
    )
    .unwrap();
    a.set_element(999, 0, 0).unwrap();
    assert_eq!(c.extract_element(0, 0).unwrap(), Some(1));
    assert_eq!(a.extract_element(0, 0).unwrap(), Some(999));
}

#[test]
fn completed_object_crosses_threads_with_acquire_release() {
    let ctx = nonblocking();
    let shared = seeded(&ctx);
    let flag = Arc::new(AtomicBool::new(false));
    let expected = {
        let d = shared.dup().unwrap();
        d.extract_tuples().unwrap()
    };
    std::thread::scope(|scope| {
        {
            let shared = shared.clone();
            let flag = flag.clone();
            scope.spawn(move || {
                apply(
                    &shared,
                    no_mask(),
                    None,
                    &UnaryOp::identity(),
                    &shared,
                    &Descriptor::default(),
                )
                .unwrap();
                shared.wait(WaitMode::Complete).unwrap();
                flag.store(true, Ordering::Release);
            });
        }
        {
            let shared = shared.clone();
            let flag = flag.clone();
            scope.spawn(move || {
                while !flag.load(Ordering::Acquire) {
                    std::hint::spin_loop();
                }
                assert_eq!(shared.extract_tuples().unwrap(), expected);
            });
        }
    });
}

#[test]
fn materialize_canonicalizes_storage() {
    let ctx = nonblocking();
    let m = seeded(&ctx);
    m.wait(WaitMode::Materialize).unwrap();
    // After materialization the hint must be the canonical CSR format.
    assert_eq!(m.export_hint(), Some(graphblas::Format::Csr));
}

#[test]
fn vector_wait_mirrors_matrix() {
    let ctx = nonblocking();
    let v = Vector::<i64>::new_in(&ctx, 5).unwrap();
    v.build(&[0, 4], &[1, 2], None).unwrap();
    assert!(v.pending_len() > 0);
    v.wait(WaitMode::Complete).unwrap();
    assert_eq!(v.pending_len(), 0);
    assert_eq!(v.nvals().unwrap(), 2);
}
