//! Paper §VI — Table I (all `GrB_Scalar` manipulation methods) and
//! Table II (the method families extended with `GrB_Scalar` variants),
//! exercised end-to-end through the public API.

use graphblas::operations::{
    all_indices, apply_binop2nd_scalar, apply_indexop_scalar, assign_scalar_grb,
    assign_scalar_v_grb, reduce_scalar, reduce_scalar_binop, reduce_scalar_binop_v,
    reduce_scalar_v, select_scalar, select_v_scalar,
};
use graphblas::{
    no_mask, no_mask_v, BinaryOp, Descriptor, IndexUnaryOp, Matrix, Monoid, Scalar, Vector,
};

fn matrix() -> Matrix<i64> {
    let m = Matrix::<i64>::new(3, 3).unwrap();
    m.build(&[0, 1, 2], &[1, 2, 0], &[4, -1, 9], None).unwrap();
    m
}

// ---------------------------------------------------------------------
// Table I
// ---------------------------------------------------------------------

#[test]
fn table1_new_dup_clear_nvals_set_extract() {
    // GrB_Scalar_new
    let s = Scalar::<f64>::new().unwrap();
    // nvals on empty
    assert_eq!(s.nvals().unwrap(), 0);
    // setElement / extractElement
    s.set_element(2.5).unwrap();
    assert_eq!(s.nvals().unwrap(), 1);
    assert_eq!(s.extract_element().unwrap(), Some(2.5));
    // dup
    let d = s.dup().unwrap();
    s.set_element(9.0).unwrap();
    assert_eq!(d.extract_element().unwrap(), Some(2.5));
    // clear
    s.clear().unwrap();
    assert_eq!(s.nvals().unwrap(), 0);
    assert_eq!(s.extract_element().unwrap(), None);
}

#[test]
fn table1_user_defined_domain() {
    #[derive(Clone, Debug, PartialEq)]
    struct Weight {
        cost: f64,
        hops: u32,
    }
    let s = Scalar::<Weight>::new().unwrap();
    s.set_element(Weight { cost: 1.5, hops: 3 }).unwrap();
    assert_eq!(
        s.extract_element().unwrap(),
        Some(Weight { cost: 1.5, hops: 3 })
    );
}

// ---------------------------------------------------------------------
// Table II
// ---------------------------------------------------------------------

#[test]
fn monoid_new_with_scalar_identity() {
    let id = Scalar::<i64>::new().unwrap();
    assert_eq!(
        Monoid::new_scalar(BinaryOp::plus(), &id).unwrap_err().code(),
        -106
    );
    id.set_element(0).unwrap();
    let m = Monoid::new_scalar(BinaryOp::plus(), &id).unwrap();
    assert_eq!(m.apply(&3, &4), 7);
}

#[test]
fn matrix_set_and_extract_element_scalar_variants() {
    let m = matrix();
    let s = Scalar::<i64>::new().unwrap();
    s.set_element(42).unwrap();
    m.set_element_scalar(&s, 2, 2).unwrap();
    assert_eq!(m.extract_element(2, 2).unwrap(), Some(42));
    // Extract a missing element into a scalar → empty, not an error (§VI).
    let out = Scalar::<i64>::new().unwrap();
    m.extract_element_scalar(&out, 0, 0).unwrap();
    assert_eq!(out.nvals().unwrap(), 0);
    m.extract_element_scalar(&out, 0, 1).unwrap();
    assert_eq!(out.extract_element().unwrap(), Some(4));
    // Empty scalar set = remove.
    let empty = Scalar::<i64>::new().unwrap();
    m.set_element_scalar(&empty, 2, 2).unwrap();
    assert_eq!(m.extract_element(2, 2).unwrap(), None);
}

#[test]
fn vector_set_and_extract_element_scalar_variants() {
    let v = Vector::<i64>::new(4).unwrap();
    let s = Scalar::<i64>::new().unwrap();
    s.set_element(-3).unwrap();
    v.set_element_scalar(&s, 1).unwrap();
    assert_eq!(v.extract_element(1).unwrap(), Some(-3));
    let out = Scalar::<i64>::new().unwrap();
    v.extract_element_scalar(&out, 1).unwrap();
    assert_eq!(out.extract_element().unwrap(), Some(-3));
}

#[test]
fn assign_with_scalar_argument() {
    let m = Matrix::<i64>::new(2, 2).unwrap();
    let s = Scalar::<i64>::new().unwrap();
    s.set_element(5).unwrap();
    assign_scalar_grb(&m, no_mask(), None, &s, &[0, 1], &[0], &Descriptor::default())
        .unwrap();
    assert_eq!(m.nvals().unwrap(), 2);
    assert_eq!(m.extract_element(1, 0).unwrap(), Some(5));
    let v = Vector::<i64>::new(3).unwrap();
    assign_scalar_v_grb(&v, no_mask_v(), None, &s, &all_indices(3), &Descriptor::default())
        .unwrap();
    assert_eq!(v.nvals().unwrap(), 3);
}

#[test]
fn apply_with_scalar_bound_argument() {
    let a = matrix();
    let c = Matrix::<i64>::new(3, 3).unwrap();
    let s = Scalar::<i64>::new().unwrap();
    s.set_element(100).unwrap();
    apply_binop2nd_scalar(
        &c,
        no_mask(),
        None,
        &BinaryOp::plus(),
        &a,
        &s,
        &Descriptor::default(),
    )
    .unwrap();
    assert_eq!(c.extract_element(0, 1).unwrap(), Some(104));
    // Index-unary apply with the s parameter in a scalar.
    let shift = Scalar::<i64>::new().unwrap();
    shift.set_element(10).unwrap();
    apply_indexop_scalar(
        &c,
        no_mask(),
        None,
        &IndexUnaryOp::rowindex(),
        &a,
        &shift,
        &Descriptor::default(),
    )
    .unwrap();
    assert_eq!(c.extract_element(2, 0).unwrap(), Some(12));
}

#[test]
fn select_with_scalar_threshold() {
    let a = matrix();
    let c = Matrix::<i64>::new(3, 3).unwrap();
    let thresh = Scalar::<i64>::new().unwrap();
    thresh.set_element(0).unwrap();
    select_scalar(
        &c,
        no_mask(),
        None,
        &IndexUnaryOp::valuegt(),
        &a,
        &thresh,
        &Descriptor::default(),
    )
    .unwrap();
    assert_eq!(c.nvals().unwrap(), 2); // 4 and 9
    let u = Vector::<i64>::new(3).unwrap();
    u.build(&[0, 1], &[5, -5], None).unwrap();
    let w = Vector::<i64>::new(3).unwrap();
    select_v_scalar(
        &w,
        no_mask_v(),
        None,
        &IndexUnaryOp::valuegt(),
        &u,
        &thresh,
        &Descriptor::default(),
    )
    .unwrap();
    assert_eq!(w.nvals().unwrap(), 1);
}

#[test]
fn reduce_into_scalars_monoid_and_binop() {
    let a = matrix();
    let s = Scalar::<i64>::new().unwrap();
    reduce_scalar(&s, None, &Monoid::plus(), &a).unwrap();
    assert_eq!(s.extract_element().unwrap(), Some(12));
    reduce_scalar_binop(&s, None, &BinaryOp::min(), &a).unwrap();
    assert_eq!(s.extract_element().unwrap(), Some(-1));
    // Accumulator folds into the previous scalar value.
    reduce_scalar(&s, Some(&BinaryOp::plus()), &Monoid::plus(), &a).unwrap();
    assert_eq!(s.extract_element().unwrap(), Some(11));
    // Vector forms.
    let v = Vector::<i64>::new(4).unwrap();
    v.build(&[0, 3], &[7, 8], None).unwrap();
    reduce_scalar_v(&s, None, &Monoid::plus(), &v).unwrap();
    assert_eq!(s.extract_element().unwrap(), Some(15));
    reduce_scalar_binop_v(&s, None, &BinaryOp::max(), &v).unwrap();
    assert_eq!(s.extract_element().unwrap(), Some(8));
    // §VI headline: reducing an empty container gives an EMPTY scalar.
    let empty = Matrix::<i64>::new(2, 2).unwrap();
    reduce_scalar(&s, None, &Monoid::plus(), &empty).unwrap();
    assert_eq!(s.nvals().unwrap(), 0);
}

#[test]
fn deferred_scalar_reduction_in_nonblocking_context() {
    use graphblas::{Context, ContextOptions, Mode, WaitMode};
    let ctx = Context::new(
        &graphblas::global_context(),
        Mode::NonBlocking,
        ContextOptions::default(),
    );
    let a = Matrix::<i64>::new_in(&ctx, 2, 2).unwrap();
    a.build(&[0, 1], &[0, 1], &[3, 4], None).unwrap();
    let s = Scalar::<i64>::new_in(&ctx).unwrap();
    reduce_scalar(&s, None, &Monoid::plus(), &a).unwrap();
    // The reduction is pending in the scalar's sequence (§VI: scalar
    // outputs make deferral possible); reading forces it.
    assert_eq!(s.extract_element().unwrap(), Some(7));
    s.wait(WaitMode::Materialize).unwrap();
}
