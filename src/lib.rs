//! # graphblas — a Rust realization of the GraphBLAS 2.0 specification
//!
//! Facade crate for the `graphblas-rs` workspace. Re-exports the complete
//! GraphBLAS 2.0 API from [`graphblas_core`], the algorithm layer from
//! [`graphblas_algo`] (the LAGraph role), and I/O / generators from
//! [`graphblas_io`].
//!
//! See the workspace `README.md` for a tour and `DESIGN.md` for the
//! paper-to-code map (*Brock et al., "Introduction to GraphBLAS 2.0",
//! IPDPSW 2021*).

pub use graphblas_core::*;

/// Graph algorithms built on the public API (BFS, SSSP, PageRank,
/// triangle counting, connected components, MIS, k-core, clustering
/// coefficients) — the role LAGraph plays for the C API.
pub mod algo {
    pub use graphblas_algo::*;
}

/// Matrix Market I/O and synthetic graph generators.
pub mod io {
    pub use graphblas_io::*;
}
