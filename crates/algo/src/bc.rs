//! Betweenness centrality (Brandes' algorithm in linear-algebraic form —
//! the flagship LAGraph workload).
//!
//! For each source, a forward BFS sweep counts shortest paths per depth
//! level (`sigma`), then a backward sweep accumulates dependencies
//! (`delta`). Both sweeps are masked `mxv`/`vxm` products; the per-level
//! frontiers are retained as a stack of vectors.

use graphblas_core::operations::{apply_v, ewise_add_v, ewise_mult_v, mxv, vxm};
use graphblas_core::{
    ApiError, BinaryOp, Descriptor, GrbResult, Index, Matrix, Monoid, Semiring, UnaryOp,
    Vector,
};

use crate::square_dim;

/// Betweenness centrality contributions from the given `sources`
/// (exact when `sources` is every vertex; a sampled approximation
/// otherwise). The graph is a directed boolean adjacency matrix; for
/// undirected centrality pass a symmetric matrix and halve the result.
pub fn betweenness_centrality(
    a: &Matrix<bool>,
    sources: &[Index],
) -> GrbResult<Vector<f64>> {
    let n = square_dim(a)?;
    for &s in sources {
        if s >= n {
            return Err(ApiError::InvalidIndex.into());
        }
    }
    let ctx = a.context();
    let bc = Vector::<f64>::new_in(&ctx, n)?;
    // Path-count propagation: new_sigma[w] = Σ_{v ∈ frontier} sigma[v]·A(v,w).
    let plus_first: Semiring<f64, bool, f64> =
        Semiring::new(Monoid::plus(), BinaryOp::first());
    // Dependency pull: t[v] = Σ_w A(v,w)·t1[w].
    let plus_second: Semiring<bool, f64, f64> =
        Semiring::new(Monoid::plus(), BinaryOp::second());

    for &s in sources {
        // ---- forward sweep -------------------------------------------
        // sigma: cumulative shortest-path counts; levels: frontier stack.
        let sigma = Vector::<f64>::new_in(&ctx, n)?;
        sigma.set_element(1.0, s)?;
        let mut levels: Vec<Vector<f64>> = Vec::new();
        let frontier = Vector::<f64>::new_in(&ctx, n)?;
        frontier.set_element(1.0, s)?;
        loop {
            levels.push(frontier.dup()?);
            // frontier⟨¬sigma, replace⟩ = frontier ⊕.first A
            vxm(
                &frontier,
                Some(&sigma),
                None,
                &plus_first,
                &frontier,
                a,
                &Descriptor::new()
                    .structure_mask()
                    .complement_mask()
                    .replace(),
            )?;
            if frontier.nvals()? == 0 {
                break;
            }
            // sigma ∪= frontier (position-disjoint).
            ewise_add_v(
                &sigma,
                graphblas_core::no_mask_v(),
                None,
                &BinaryOp::plus(),
                &sigma,
                &frontier,
                &Descriptor::default(),
            )?;
        }

        // ---- backward sweep ------------------------------------------
        let delta = Vector::<f64>::new_in(&ctx, n)?;
        for d in (1..levels.len()).rev() {
            // t1⟨S_d⟩ = (1 + delta) / sigma    (only on level-d vertices)
            let t1 = Vector::<f64>::new_in(&ctx, n)?;
            // Start from sigma restricted to S_d, then map with delta.
            let level = &levels[d];
            // inv[w] = (1 + delta[w]) / sigma[w] for w in S_d.
            let one_plus_delta = Vector::<f64>::new_in(&ctx, n)?;
            apply_v(
                &one_plus_delta,
                Some(level),
                None,
                &UnaryOp::new("inc", |x: &f64| x + 1.0),
                &delta,
                &Descriptor::new().structure_mask().replace(),
            )?;
            // Vertices in S_d with delta absent get (1 + 0): union with
            // the level's own 1-contribution where delta had no entry.
            let ones = Vector::<f64>::new_in(&ctx, n)?;
            apply_v(
                &ones,
                graphblas_core::no_mask_v(),
                None,
                &UnaryOp::new("one", |_: &f64| 1.0),
                level,
                &Descriptor::default(),
            )?;
            ewise_add_v(
                &one_plus_delta,
                graphblas_core::no_mask_v(),
                None,
                &BinaryOp::max(),
                &one_plus_delta,
                &ones,
                &Descriptor::default(),
            )?;
            ewise_mult_v(
                &t1,
                graphblas_core::no_mask_v(),
                None,
                &BinaryOp::div(),
                &one_plus_delta,
                &sigma,
                &Descriptor::default(),
            )?;
            // t2⟨S_{d-1}, replace⟩ = A ⊕.second t1   (pull from children)
            let t2 = Vector::<f64>::new_in(&ctx, n)?;
            mxv(
                &t2,
                Some(&levels[d - 1]),
                None,
                &plus_second,
                a,
                &t1,
                &Descriptor::new().structure_mask().replace(),
            )?;
            // delta⟨S_{d-1}⟩ += t2 · sigma
            let contrib = Vector::<f64>::new_in(&ctx, n)?;
            ewise_mult_v(
                &contrib,
                graphblas_core::no_mask_v(),
                None,
                &BinaryOp::times(),
                &t2,
                &sigma,
                &Descriptor::default(),
            )?;
            ewise_add_v(
                &delta,
                graphblas_core::no_mask_v(),
                None,
                &BinaryOp::plus(),
                &delta,
                &contrib,
                &Descriptor::default(),
            )?;
        }
        // bc += delta (source excluded by construction: delta[s] counts
        // only if s appears in later levels, which it cannot).
        let delta_no_source = Vector::<f64>::new_in(&ctx, n)?;
        apply_v(
            &delta_no_source,
            graphblas_core::no_mask_v(),
            None,
            &UnaryOp::identity(),
            &delta,
            &Descriptor::default(),
        )?;
        delta_no_source.remove_element(s)?;
        ewise_add_v(
            &bc,
            graphblas_core::no_mask_v(),
            None,
            &BinaryOp::plus(),
            &bc,
            &delta_no_source,
            &Descriptor::default(),
        )?;
    }
    Ok(bc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphblas_core::operations::all_indices;

    fn digraph(n: usize, edges: &[(usize, usize)]) -> Matrix<bool> {
        let a = Matrix::<bool>::new(n, n).unwrap();
        a.build(
            &edges.iter().map(|e| e.0).collect::<Vec<_>>(),
            &edges.iter().map(|e| e.1).collect::<Vec<_>>(),
            &vec![true; edges.len()],
            Some(&BinaryOp::lor()),
        )
        .unwrap();
        a
    }

    /// Reference Brandes on a tiny directed graph (BFS shortest paths).
    fn brute_force(n: usize, edges: &[(usize, usize)], sources: &[usize]) -> Vec<f64> {
        let mut adj = vec![Vec::new(); n];
        let mut radj = vec![Vec::new(); n];
        for &(u, v) in edges {
            if !adj[u].contains(&v) {
                adj[u].push(v);
                radj[v].push(u);
            }
        }
        let mut bc = vec![0.0f64; n];
        for &s in sources {
            let mut dist = vec![usize::MAX; n];
            let mut sigma = vec![0.0f64; n];
            let mut order = Vec::new();
            dist[s] = 0;
            sigma[s] = 1.0;
            let mut queue = std::collections::VecDeque::from([s]);
            while let Some(v) = queue.pop_front() {
                order.push(v);
                for &w in &adj[v] {
                    if dist[w] == usize::MAX {
                        dist[w] = dist[v] + 1;
                        queue.push_back(w);
                    }
                    if dist[w] == dist[v] + 1 {
                        sigma[w] += sigma[v];
                    }
                }
            }
            let mut delta = vec![0.0f64; n];
            for &w in order.iter().rev() {
                for &v in &radj[w] {
                    if dist[v] != usize::MAX && dist[w] == dist[v] + 1 {
                        delta[v] += sigma[v] / sigma[w] * (1.0 + delta[w]);
                    }
                }
                if w != s {
                    bc[w] += delta[w];
                }
            }
        }
        bc
    }

    fn run(n: usize, edges: &[(usize, usize)], sources: &[usize]) {
        let a = digraph(n, edges);
        let bc = betweenness_centrality(&a, sources).unwrap();
        let expect = brute_force(n, edges, sources);
        for (v, &exp) in expect.iter().enumerate() {
            let got = bc.extract_element(v).unwrap().unwrap_or(0.0);
            assert!(
                (got - exp).abs() < 1e-9,
                "vertex {v}: got {got}, expected {exp} (graph {edges:?})"
            );
        }
    }

    #[test]
    fn path_graph_center_dominates() {
        // 0→1→2: vertex 1 lies on the single 0→2 path.
        run(3, &[(0, 1), (1, 2)], &[0, 1, 2]);
    }

    #[test]
    fn diamond_splits_dependency() {
        // 0→{1,2}→3: two equal shortest paths.
        run(4, &[(0, 1), (0, 2), (1, 3), (2, 3)], &[0, 1, 2, 3]);
    }

    #[test]
    fn star_and_cycle() {
        run(5, &[(0, 1), (0, 2), (0, 3), (0, 4)], &[0, 1, 2, 3, 4]);
        run(4, &[(0, 1), (1, 2), (2, 3), (3, 0)], &[0, 1, 2, 3]);
    }

    #[test]
    fn random_digraphs_match_reference() {
        use graphblas_exec::rng::prelude::*;
        let mut rng = StdRng::seed_from_u64(31);
        for trial in 0..6 {
            let n = 12;
            let mut edges = Vec::new();
            for _ in 0..30 {
                let u = rng.gen_range(0..n);
                let v = rng.gen_range(0..n);
                if u != v {
                    edges.push((u, v));
                }
            }
            edges.sort_unstable();
            edges.dedup();
            let sources = all_indices(n);
            let a = digraph(n, &edges);
            let bc = betweenness_centrality(&a, &sources).unwrap();
            let expect = brute_force(n, &edges, &sources);
            for (v, &exp) in expect.iter().enumerate() {
                let got = bc.extract_element(v).unwrap().unwrap_or(0.0);
                assert!(
                    (got - exp).abs() < 1e-9,
                    "trial {trial} vertex {v}: got {got}, expected {exp}"
                );
            }
        }
    }

    #[test]
    fn sampled_sources_subset() {
        let edges = [(0, 1), (1, 2), (2, 3), (0, 3), (3, 4)];
        run(5, &edges, &[0, 2]);
    }

    #[test]
    fn bad_source_rejected() {
        let a = digraph(2, &[]);
        assert!(betweenness_centrality(&a, &[7]).is_err());
    }
}
