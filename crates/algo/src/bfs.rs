//! Breadth-first search: levels and parents.
//!
//! The level variant is the canonical masked `vxm` loop over LOR.LAND.
//! The parent variant demonstrates the paper's §II motivation: the
//! frontier must carry *vertex indices* as values. GraphBLAS 1.X forced
//! packing the index into the value array by hand; with 2.0 the frontier
//! is re-indexed with the predefined `ROWINDEX` operator via `apply`.

use graphblas_core::operations::{all_indices, apply_indexop_v, assign_scalar_v, vxm};
use graphblas_core::{
    ApiError, BinaryOp, Descriptor, GrbResult, Index, IndexUnaryOp, Matrix, Monoid, Semiring,
    Vector,
};

use crate::square_dim;

/// BFS levels from `source`: `levels[v]` = hop distance (source = 0).
/// Unreached vertices have no entry.
pub fn bfs_levels(a: &Matrix<bool>, source: Index) -> GrbResult<Vector<i64>> {
    let n = square_dim(a)?;
    if source >= n {
        return Err(ApiError::InvalidIndex.into());
    }
    let levels = Vector::<i64>::new_in(&a.context(), n)?;
    let frontier = Vector::<bool>::new_in(&a.context(), n)?;
    frontier.set_element(true, source)?;
    let all = all_indices(n);
    let mut depth = 0i64;
    while frontier.nvals()? > 0 {
        // levels⟨frontier (structure)⟩ = depth
        assign_scalar_v(
            &levels,
            Some(&frontier),
            None,
            depth,
            &all,
            &Descriptor::new().structure_mask(),
        )?;
        // frontier⟨¬levels (structure), replace⟩ = frontier ∨.∧ A
        vxm(
            &frontier,
            Some(&levels),
            None,
            &Semiring::lor_land(),
            &frontier,
            a,
            &Descriptor::new()
                .structure_mask()
                .complement_mask()
                .replace(),
        )?;
        depth += 1;
    }
    Ok(levels)
}

/// BFS parents from `source`: `parents[v]` = the vertex that discovered
/// `v` (`parents[source] = source`). Unreached vertices have no entry.
pub fn bfs_parents(a: &Matrix<bool>, source: Index) -> GrbResult<Vector<i64>> {
    let n = square_dim(a)?;
    if source >= n {
        return Err(ApiError::InvalidIndex.into());
    }
    let parents = Vector::<i64>::new_in(&a.context(), n)?;
    parents.set_element(source as i64, source)?;
    // Frontier values carry the *discovering vertex's index*.
    let frontier = Vector::<i64>::new_in(&a.context(), n)?;
    frontier.set_element(source as i64, source)?;
    // MIN.FIRST over (frontier value, edge): ties broken toward the
    // smallest parent id, deterministically.
    let min_first: Semiring<i64, bool, i64> =
        Semiring::new(Monoid::min(), BinaryOp::first());
    let next = Vector::<i64>::new_in(&a.context(), n)?;
    loop {
        // next⟨¬parents (structure), replace⟩ = frontier MIN.FIRST A
        vxm(
            &next,
            Some(&parents),
            None,
            &min_first,
            &frontier,
            a,
            &Descriptor::new()
                .structure_mask()
                .complement_mask()
                .replace(),
        )?;
        if next.nvals()? == 0 {
            break;
        }
        // Record the discovered parents (position-disjoint union).
        graphblas_core::operations::ewise_add_v(
            &parents,
            graphblas_core::no_mask_v(),
            None,
            &BinaryOp::first(),
            &parents,
            &next,
            &Descriptor::default(),
        )?;
        // Re-index the new frontier with its own vertex ids — the 2.0
        // one-liner replacing 1.X's hand-rolled index packing (§II).
        apply_indexop_v(
            &frontier,
            graphblas_core::no_mask_v(),
            None,
            &IndexUnaryOp::rowindex(),
            &next,
            0i64,
            &Descriptor::default(),
        )?;
    }
    Ok(parents)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adjacency(n: usize, edges: &[(usize, usize)]) -> Matrix<bool> {
        let a = Matrix::<bool>::new(n, n).unwrap();
        let rows: Vec<_> = edges.iter().map(|e| e.0).collect();
        let cols: Vec<_> = edges.iter().map(|e| e.1).collect();
        a.build(&rows, &cols, &vec![true; edges.len()], Some(&BinaryOp::lor()))
            .unwrap();
        a
    }

    fn tuples(v: &Vector<i64>) -> Vec<(usize, i64)> {
        let (i, x) = v.extract_tuples().unwrap();
        i.into_iter().zip(x).collect()
    }

    #[test]
    fn levels_on_a_path() {
        let a = adjacency(4, &[(0, 1), (1, 2), (2, 3)]);
        let l = bfs_levels(&a, 0).unwrap();
        assert_eq!(tuples(&l), vec![(0, 0), (1, 1), (2, 2), (3, 3)]);
    }

    #[test]
    fn levels_with_unreachable_component() {
        let a = adjacency(5, &[(0, 1), (1, 2), (3, 4)]);
        let l = bfs_levels(&a, 0).unwrap();
        assert_eq!(tuples(&l), vec![(0, 0), (1, 1), (2, 2)]);
    }

    #[test]
    fn levels_pick_shortest_route() {
        // 0→1→2→3 and the shortcut 0→3.
        let a = adjacency(4, &[(0, 1), (1, 2), (2, 3), (0, 3)]);
        let l = bfs_levels(&a, 0).unwrap();
        assert_eq!(l.extract_element(3).unwrap(), Some(1));
    }

    #[test]
    fn parents_form_a_valid_bfs_tree() {
        let a = adjacency(6, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]);
        let p = bfs_parents(&a, 0).unwrap();
        let l = bfs_levels(&a, 0).unwrap();
        assert_eq!(p.extract_element(0).unwrap(), Some(0));
        // Every parent edge must exist and descend exactly one level.
        for (v, parent) in tuples(&p) {
            if v == 0 {
                continue;
            }
            let parent = parent as usize;
            assert_eq!(a.extract_element(parent, v).unwrap(), Some(true));
            let lv = l.extract_element(v).unwrap().unwrap();
            let lp = l.extract_element(parent).unwrap().unwrap();
            assert_eq!(lv, lp + 1);
        }
        // Vertex 5 unreachable.
        assert_eq!(p.extract_element(5).unwrap(), None);
    }

    #[test]
    fn parents_tie_break_to_minimum() {
        // Both 0 and 1 reach 2 in one hop from a 2-vertex frontier.
        let a = adjacency(3, &[(0, 2), (1, 2), (0, 1)]);
        let p = bfs_parents(&a, 0).unwrap();
        // 2 discovered at depth 1 from 0 (0 < would-be parent 1 later).
        assert_eq!(p.extract_element(2).unwrap(), Some(0));
    }

    #[test]
    fn bad_source_rejected() {
        let a = adjacency(2, &[]);
        assert!(bfs_levels(&a, 5).is_err());
        let rect = Matrix::<bool>::new(2, 3).unwrap();
        assert!(bfs_levels(&rect, 0).is_err());
    }
}
