//! Connected components by minimum-label propagation: every vertex
//! repeatedly adopts the smallest label in its closed neighbourhood until
//! a fixpoint; vertices sharing a component converge to the component's
//! minimum vertex id.

use graphblas_core::operations::{all_indices, ewise_add_v, mxv};
use graphblas_core::{
    BinaryOp, Descriptor, GrbResult, Matrix, Monoid, Semiring, Vector,
};

use crate::square_dim;

/// Component labels for an undirected graph (symmetric adjacency matrix):
/// `labels[v]` = smallest vertex id in `v`'s component. Dense output.
pub fn connected_components(a: &Matrix<bool>) -> GrbResult<Vector<u64>> {
    let n = square_dim(a)?;
    let labels = Vector::<u64>::new_in(&a.context(), n)?;
    let ids: Vec<u64> = (0..n as u64).collect();
    labels.build(&all_indices(n), &ids, None)?;

    // MIN.SECOND over (edge, neighbour label): propagate the smallest
    // neighbour label along edges.
    let min_second: Semiring<bool, u64, u64> =
        Semiring::new(Monoid::min(), BinaryOp::second());
    let neighbour_min = Vector::<u64>::new_in(&a.context(), n)?;
    loop {
        mxv(
            &neighbour_min,
            graphblas_core::no_mask_v(),
            None,
            &min_second,
            a,
            &labels,
            &Descriptor::default(),
        )?;
        let before = labels.extract_tuples()?;
        ewise_add_v(
            &labels,
            graphblas_core::no_mask_v(),
            None,
            &BinaryOp::min(),
            &labels,
            &neighbour_min,
            &Descriptor::default(),
        )?;
        if labels.extract_tuples()? == before {
            return Ok(labels);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn undirected(n: usize, edges: &[(usize, usize)]) -> Matrix<bool> {
        let a = Matrix::<bool>::new(n, n).unwrap();
        let mut rows = Vec::new();
        let mut cols = Vec::new();
        for &(u, v) in edges {
            rows.push(u);
            cols.push(v);
            rows.push(v);
            cols.push(u);
        }
        a.build(&rows, &cols, &vec![true; rows.len()], Some(&BinaryOp::lor()))
            .unwrap();
        a
    }

    fn labels(v: &Vector<u64>) -> Vec<u64> {
        (0..v.size())
            .map(|i| v.extract_element(i).unwrap().unwrap())
            .collect()
    }

    #[test]
    fn two_components() {
        let a = undirected(5, &[(0, 1), (1, 2), (3, 4)]);
        let l = labels(&connected_components(&a).unwrap());
        assert_eq!(l, vec![0, 0, 0, 3, 3]);
    }

    #[test]
    fn isolated_vertices_are_their_own_component() {
        let a = undirected(4, &[(1, 2)]);
        let l = labels(&connected_components(&a).unwrap());
        assert_eq!(l, vec![0, 1, 1, 3]);
    }

    #[test]
    fn long_path_converges() {
        let n = 50;
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let a = undirected(n, &edges);
        let l = labels(&connected_components(&a).unwrap());
        assert!(l.iter().all(|&x| x == 0));
    }

    #[test]
    fn matches_union_find_on_random_graph() {
        use graphblas_exec::rng::prelude::*;
        let mut rng = StdRng::seed_from_u64(4);
        let n = 60;
        let mut edges = Vec::new();
        for _ in 0..70 {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u != v {
                edges.push((u, v));
            }
        }
        // Union-find reference.
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(p: &mut Vec<usize>, x: usize) -> usize {
            if p[x] != x {
                let r = find(p, p[x]);
                p[x] = r;
            }
            p[x]
        }
        for &(u, v) in &edges {
            let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
            parent[ru.max(rv)] = ru.min(rv);
        }
        let a = undirected(n, &edges);
        let got = labels(&connected_components(&a).unwrap());
        for u in 0..n {
            for v in 0..n {
                let same_ref = find(&mut parent, u) == find(&mut parent, v);
                assert_eq!(got[u] == got[v], same_ref, "vertices {u},{v}");
            }
        }
    }
}
