//! Single-source shortest paths: Bellman-Ford over the MIN.PLUS
//! (tropical) semiring, iterated to a fixpoint.

use graphblas_core::operations::{ewise_add_v, vxm};
use graphblas_core::{
    ApiError, BinaryOp, Descriptor, Error, ExecErrorKind, GrbResult, Index, Matrix, Semiring,
    Vector,
};

use crate::square_dim;

/// Shortest-path distances from `source` over non-negative (or
/// negative-cycle-free) edge weights. Unreachable vertices have no entry.
/// A distance still improving after `n` relaxation rounds means a
/// negative cycle — reported as an execution error.
pub fn sssp_bellman_ford(a: &Matrix<f64>, source: Index) -> GrbResult<Vector<f64>> {
    let n = square_dim(a)?;
    if source >= n {
        return Err(ApiError::InvalidIndex.into());
    }
    let dist = Vector::<f64>::new_in(&a.context(), n)?;
    dist.set_element(0.0, source)?;
    let relaxed = Vector::<f64>::new_in(&a.context(), n)?;
    let min_plus = Semiring::<f64, f64, f64>::min_plus();
    for round in 0..=n {
        // relaxed = dist MIN.+ A
        vxm(
            &relaxed,
            graphblas_core::no_mask_v(),
            None,
            &min_plus,
            &dist,
            a,
            &Descriptor::default(),
        )?;
        // candidate = min(dist, relaxed) elementwise (union).
        let before = dist.extract_tuples()?;
        ewise_add_v(
            &dist,
            graphblas_core::no_mask_v(),
            None,
            &BinaryOp::min(),
            &dist,
            &relaxed,
            &Descriptor::default(),
        )?;
        if dist.extract_tuples()? == before {
            return Ok(dist);
        }
        if round == n {
            return Err(Error::Execution(graphblas_core::ExecutionError::new(
                ExecErrorKind::InvalidObject,
                "negative cycle reachable from source",
            )));
        }
    }
    Ok(dist)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn weighted(n: usize, edges: &[(usize, usize, f64)]) -> Matrix<f64> {
        let a = Matrix::<f64>::new(n, n).unwrap();
        a.build(
            &edges.iter().map(|e| e.0).collect::<Vec<_>>(),
            &edges.iter().map(|e| e.1).collect::<Vec<_>>(),
            &edges.iter().map(|e| e.2).collect::<Vec<_>>(),
            None,
        )
        .unwrap();
        a
    }

    #[test]
    fn shortest_path_prefers_cheap_detour() {
        let a = weighted(
            4,
            &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (0, 3, 10.0)],
        );
        let d = sssp_bellman_ford(&a, 0).unwrap();
        assert_eq!(d.extract_element(3).unwrap(), Some(3.0));
        assert_eq!(d.extract_element(0).unwrap(), Some(0.0));
    }

    #[test]
    fn unreachable_vertices_have_no_entry() {
        let a = weighted(3, &[(0, 1, 2.0)]);
        let d = sssp_bellman_ford(&a, 0).unwrap();
        assert_eq!(d.extract_element(2).unwrap(), None);
        assert_eq!(d.nvals().unwrap(), 2);
    }

    #[test]
    fn negative_edges_without_cycle_are_fine() {
        let a = weighted(3, &[(0, 1, 5.0), (1, 2, -3.0), (0, 2, 4.0)]);
        let d = sssp_bellman_ford(&a, 0).unwrap();
        assert_eq!(d.extract_element(2).unwrap(), Some(2.0));
    }

    #[test]
    fn negative_cycle_detected() {
        let a = weighted(2, &[(0, 1, 1.0), (1, 0, -3.0)]);
        let err = sssp_bellman_ford(&a, 0).unwrap_err();
        assert!(err.is_execution());
    }

    #[test]
    fn source_validation() {
        let a = weighted(2, &[]);
        assert!(sssp_bellman_ford(&a, 9).is_err());
    }
}
