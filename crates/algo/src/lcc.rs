//! Local clustering coefficients: for each vertex `v`,
//! `lcc(v) = closed wedges at v / (deg(v) · (deg(v) − 1))`.
//!
//! Closed wedges come from the structure-masked product `C⟨A⟩ = A ⊕.pair
//! A` (each triangle contributes two closed wedges at each corner of the
//! symmetric adjacency matrix).

use graphblas_core::operations::{ewise_mult_v, mxm, mxv, reduce_to_vector};
use graphblas_core::{
    BinaryOp, Descriptor, GrbResult, Matrix, Monoid, Semiring, UnaryOp, Vector,
};

use crate::square_dim;

/// Per-vertex clustering coefficients for an undirected simple graph.
/// Vertices of degree < 2 have no entry (their coefficient is undefined).
pub fn local_clustering_coefficient(a: &Matrix<bool>) -> GrbResult<Vector<f64>> {
    let n = square_dim(a)?;
    // Degrees.
    let ones = Vector::<bool>::new_in(&a.context(), n)?;
    graphblas_core::operations::assign_scalar_v(
        &ones,
        graphblas_core::no_mask_v(),
        None,
        true,
        &graphblas_core::operations::all_indices(n),
        &Descriptor::default(),
    )?;
    let plus_pair: Semiring<bool, bool, u64> = Semiring::plus_pair();
    let deg = Vector::<u64>::new_in(&a.context(), n)?;
    mxv(
        &deg,
        graphblas_core::no_mask_v(),
        None,
        &plus_pair,
        a,
        &ones,
        &Descriptor::default(),
    )?;
    // Closed-wedge counts: row sums of C⟨A⟩ = A ⊕.pair A.
    let c = Matrix::<u64>::new_in(&a.context(), n, n)?;
    mxm(
        &c,
        Some(a),
        None,
        &Semiring::<bool, bool, u64>::plus_pair(),
        a,
        a,
        &Descriptor::new().structure_mask(),
    )?;
    let closed = Vector::<u64>::new_in(&a.context(), n)?;
    reduce_to_vector(
        &closed,
        graphblas_core::no_mask_v(),
        None,
        &Monoid::plus(),
        &c,
        &Descriptor::default(),
    )?;
    // Possible wedges per vertex: deg · (deg − 1), only where deg ≥ 2.
    let wedges = Vector::<f64>::new_in(&a.context(), n)?;
    graphblas_core::operations::apply_v(
        &wedges,
        graphblas_core::no_mask_v(),
        None,
        &UnaryOp::<u64, f64>::new("wedge_count", |d| (d * d.saturating_sub(1)) as f64),
        &deg,
        &Descriptor::default(),
    )?;
    // lcc = closed / wedges on the intersection (deg < 2 ⇒ wedges = 0 ⇒
    // filtered below).
    let lcc = Vector::<f64>::new_in(&a.context(), n)?;
    ewise_mult_v(
        &lcc,
        graphblas_core::no_mask_v(),
        None,
        &BinaryOp::<u64, f64, f64>::new("ratio", |c, w| {
            if *w > 0.0 {
                *c as f64 / *w
            } else {
                f64::NAN
            }
        }),
        &closed,
        &wedges,
        &Descriptor::default(),
    )?;
    // Drop NaNs (degree-<2 vertices that happened to have closed entries —
    // cannot actually occur, but keep the output clean regardless).
    graphblas_core::operations::select_v(
        &lcc,
        graphblas_core::no_mask_v(),
        None,
        &graphblas_core::IndexUnaryOp::<f64, f64, bool>::new("finite", |v, _, _| v.is_finite()),
        &lcc,
        0.0f64,
        &Descriptor::default(),
    )?;
    Ok(lcc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn undirected(n: usize, edges: &[(usize, usize)]) -> Matrix<bool> {
        let a = Matrix::<bool>::new(n, n).unwrap();
        let mut rows = Vec::new();
        let mut cols = Vec::new();
        for &(u, v) in edges {
            rows.push(u);
            cols.push(v);
            rows.push(v);
            cols.push(u);
        }
        a.build(&rows, &cols, &vec![true; rows.len()], Some(&BinaryOp::lor()))
            .unwrap();
        a
    }

    #[test]
    fn triangle_has_coefficient_one() {
        let a = undirected(3, &[(0, 1), (1, 2), (0, 2)]);
        let lcc = local_clustering_coefficient(&a).unwrap();
        for i in 0..3 {
            assert_eq!(lcc.extract_element(i).unwrap(), Some(1.0));
        }
    }

    #[test]
    fn path_center_is_open() {
        let a = undirected(3, &[(0, 1), (1, 2)]);
        let lcc = local_clustering_coefficient(&a).unwrap();
        // Vertex 1 has degree 2 but no closed wedge.
        assert_eq!(lcc.extract_element(1).unwrap(), None);
        // Endpoints have degree 1: undefined, no entry.
        assert_eq!(lcc.extract_element(0).unwrap(), None);
    }

    #[test]
    fn half_closed_square_with_diagonal() {
        // Square 0-1-2-3 plus diagonal 0-2.
        let a = undirected(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]);
        let lcc = local_clustering_coefficient(&a).unwrap();
        // Vertices 1 and 3 (degree 2, their two neighbours adjacent): 1.0.
        assert_eq!(lcc.extract_element(1).unwrap(), Some(1.0));
        assert_eq!(lcc.extract_element(3).unwrap(), Some(1.0));
        // Vertices 0 and 2 (degree 3, 2 of 6 ordered wedges closed): 2/3.
        let v0 = lcc.extract_element(0).unwrap().unwrap();
        assert!((v0 - 2.0 / 3.0).abs() < 1e-12);
    }
}
