//! Graph algorithms written purely against the public GraphBLAS 2.0 API —
//! the role the LAGraph library plays for the C specification, and the
//! workload layer whose needs (index access, select, scalar outputs)
//! motivated the 2.0 features this workspace reproduces.
//!
//! * [`bc`] — Brandes betweenness centrality (masked forward/backward
//!   sweeps with a per-level frontier stack).
//! * [`bfs`] — breadth-first search (levels and parents); parents use the
//!   index-carrying frontier that §II of the paper cites as the classic
//!   "indices packed into values" workload.
//! * [`sssp`] — Bellman-Ford single-source shortest paths over MIN.PLUS.
//! * [`mod@pagerank`] — damped PageRank with dangling-mass redistribution.
//! * [`triangles`] — Sandia `tril`-masked triangle counting (built on the
//!   new `select` operation and masked `mxm`).
//! * [`cc`] — connected components by minimum-label propagation.
//! * [`mis`] — Luby-style maximal independent set with hashed priorities.
//! * [`kcore`] — k-core membership by iterative peeling.
//! * [`ktruss`] — k-truss decomposition (iterated masked SpGEMM + select).
//! * [`lcc`] — local clustering coefficients.

pub mod bc;
pub mod bfs;
pub mod cc;
pub mod kcore;
pub mod ktruss;
pub mod lcc;
pub mod mis;
pub mod pagerank;
pub mod sssp;
pub mod triangles;

pub use bc::betweenness_centrality;
pub use bfs::{bfs_levels, bfs_parents};
pub use cc::connected_components;
pub use kcore::k_core;
pub use ktruss::k_truss;
pub use lcc::local_clustering_coefficient;
pub use mis::maximal_independent_set;
pub use pagerank::pagerank;
pub use sssp::sssp_bellman_ford;
pub use triangles::triangle_count;

use graphblas_core::{ApiError, GrbResult, Matrix, ValueType};

/// Validates that `a` is square, returning its dimension.
pub(crate) fn square_dim<T: ValueType>(a: &Matrix<T>) -> GrbResult<usize> {
    let (n, m) = (a.nrows(), a.ncols());
    if n != m {
        return Err(ApiError::DimensionMismatch.into());
    }
    Ok(n)
}
