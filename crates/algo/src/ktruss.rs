//! k-truss decomposition: the maximal subgraph in which every edge
//! participates in at least `k − 2` triangles.
//!
//! The linear-algebraic form iterates two GraphBLAS 2.0 primitives until a
//! fixpoint: a structure-masked `mxm` over PLUS.PAIR computes per-edge
//! triangle support, and the new `select` operation (§VIII.C) prunes edges
//! below the support threshold.

use graphblas_core::operations::{apply, mxm, select};
use graphblas_core::{
    ApiError, Descriptor, GrbResult, IndexUnaryOp, Matrix, Semiring, UnaryOp,
};

use crate::square_dim;

/// Returns the k-truss of an undirected simple graph (symmetric boolean
/// adjacency, no self-loops) as a boolean adjacency matrix. `k` must be
/// at least 3 (`GrB_INVALID_VALUE` otherwise).
pub fn k_truss(a: &Matrix<bool>, k: u64) -> GrbResult<Matrix<bool>> {
    let n = square_dim(a)?;
    if k < 3 {
        return Err(ApiError::InvalidValue.into());
    }
    let ctx = a.context();
    let threshold = k - 2;
    let plus_pair: Semiring<bool, bool, u64> = Semiring::plus_pair();

    // Working copy of the surviving edge set.
    let mut edges = a.dup()?;
    let support = Matrix::<u64>::new_in(&ctx, n, n)?;
    loop {
        let before = edges.nvals()?;
        if before == 0 {
            return Ok(edges);
        }
        // support⟨E⟩ = E ⊕.pair E : per-edge triangle counts.
        mxm(
            &support,
            Some(&edges),
            None,
            &plus_pair,
            &edges,
            &edges,
            &Descriptor::new().structure_mask().replace(),
        )?;
        // Keep edges with enough support.
        select(
            &support,
            graphblas_core::no_mask(),
            None,
            &IndexUnaryOp::valuege(),
            &support,
            threshold,
            &Descriptor::default(),
        )?;
        let after = support.nvals()?;
        // Rebuild the boolean edge set from the survivors.
        let next = Matrix::<bool>::new_in(&ctx, n, n)?;
        apply(
            &next,
            graphblas_core::no_mask(),
            None,
            &UnaryOp::<u64, bool>::new("edge", |_| true),
            &support,
            &Descriptor::default(),
        )?;
        edges = next;
        if after == before {
            return Ok(edges);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphblas_core::BinaryOp;

    fn undirected(n: usize, edges: &[(usize, usize)]) -> Matrix<bool> {
        let a = Matrix::<bool>::new(n, n).unwrap();
        let mut rows = Vec::new();
        let mut cols = Vec::new();
        for &(u, v) in edges {
            rows.push(u);
            cols.push(v);
            rows.push(v);
            cols.push(u);
        }
        a.build(&rows, &cols, &vec![true; rows.len()], Some(&BinaryOp::lor()))
            .unwrap();
        a
    }

    fn k4_edges(base: usize) -> Vec<(usize, usize)> {
        let mut e = Vec::new();
        for i in 0..4 {
            for j in (i + 1)..4 {
                e.push((base + i, base + j));
            }
        }
        e
    }

    #[test]
    fn triangle_is_a_3_truss() {
        let a = undirected(3, &[(0, 1), (1, 2), (0, 2)]);
        let t3 = k_truss(&a, 3).unwrap();
        assert_eq!(t3.nvals().unwrap(), 6); // all 3 undirected edges survive
        let t4 = k_truss(&a, 4).unwrap();
        assert_eq!(t4.nvals().unwrap(), 0); // no edge is in 2 triangles
    }

    #[test]
    fn path_has_no_truss() {
        let a = undirected(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(k_truss(&a, 3).unwrap().nvals().unwrap(), 0);
    }

    #[test]
    fn k4_with_pendant_triangle() {
        // K4 on {0..3}; triangle {3,4,5} hanging off vertex 3.
        let mut edges = k4_edges(0);
        edges.extend([(3, 4), (4, 5), (3, 5)]);
        let a = undirected(6, &edges);
        // 3-truss keeps everything (every edge is in ≥1 triangle).
        let t3 = k_truss(&a, 3).unwrap();
        assert_eq!(t3.nvals().unwrap(), 2 * 9);
        // 4-truss keeps only the K4 (its edges are each in 2 triangles).
        let t4 = k_truss(&a, 4).unwrap();
        assert_eq!(t4.nvals().unwrap(), 2 * 6);
        assert_eq!(t4.extract_element(0, 1).unwrap(), Some(true));
        assert_eq!(t4.extract_element(3, 4).unwrap(), None);
    }

    #[test]
    fn cascading_peel_converges() {
        // Two K4s sharing one edge: removing weak edges must cascade.
        let mut edges = k4_edges(0);
        // Second K4 on {2,3,4,5} shares edge (2,3).
        for i in 0..4 {
            for j in (i + 1)..4 {
                edges.push((2 + i, 2 + j));
            }
        }
        let a = undirected(6, &edges);
        let t4 = k_truss(&a, 4).unwrap();
        // Each K4 is still a 4-truss; the union survives.
        assert!(t4.nvals().unwrap() >= 2 * 6);
        let t5 = k_truss(&a, 5).unwrap();
        // No edge is in 3 triangles within a K4; 5-truss is empty.
        assert_eq!(t5.nvals().unwrap(), 0);
    }

    #[test]
    fn truss_is_nested_in_lower_truss() {
        use graphblas_exec::rng::prelude::*;
        let mut rng = StdRng::seed_from_u64(77);
        let n = 24;
        let mut edges = Vec::new();
        for _ in 0..90 {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u != v {
                edges.push((u, v));
            }
        }
        let a = undirected(n, &edges);
        let t3 = k_truss(&a, 3).unwrap();
        let t4 = k_truss(&a, 4).unwrap();
        // Every 4-truss edge is also a 3-truss edge.
        let (r4, c4, _) = t4.extract_tuples().unwrap();
        for (i, j) in r4.into_iter().zip(c4) {
            assert_eq!(t3.extract_element(i, j).unwrap(), Some(true));
        }
    }

    #[test]
    fn invalid_k_rejected() {
        let a = undirected(2, &[(0, 1)]);
        assert!(k_truss(&a, 2).is_err());
    }
}
