//! Triangle counting (Sandia variant): `Σ (L ⊕.pair L) ⟨L⟩` where
//! `L = tril(A, −1)`.
//!
//! This is the flagship composition of GraphBLAS 2.0 features: the new
//! `select` operation extracts the strictly-lower triangle with the
//! predefined `TRIL` operator (Table IV), a *structure-masked* `mxm` over
//! the PLUS.PAIR semiring counts wedges only where a closing edge exists,
//! and `reduce` folds the count matrix to a scalar.

use graphblas_core::operations::{mxm, reduce_to_value, select};
use graphblas_core::{
    Descriptor, GrbResult, IndexUnaryOp, Matrix, Monoid, Semiring,
};

use crate::square_dim;

/// Counts triangles in an undirected simple graph given as a symmetric
/// boolean adjacency matrix without self-loops.
pub fn triangle_count(a: &Matrix<bool>) -> GrbResult<u64> {
    let n = square_dim(a)?;
    // L = strictly lower triangle of A.
    let l = Matrix::<bool>::new_in(&a.context(), n, n)?;
    select(
        &l,
        graphblas_core::no_mask(),
        None,
        &IndexUnaryOp::tril(),
        a,
        -1i64,
        &Descriptor::default(),
    )?;
    // C⟨L⟩ = L ⊕.pair L: C(i,j) counts wedges i–k–j entirely below the
    // diagonal; the structure mask keeps only pairs (i,j) whose closing
    // edge exists, so each triangle is counted exactly once.
    let c = Matrix::<u64>::new_in(&a.context(), n, n)?;
    mxm(
        &c,
        Some(&l),
        None,
        &Semiring::<bool, bool, u64>::plus_pair(),
        &l,
        &l,
        &Descriptor::new().structure_mask(),
    )?;
    reduce_to_value(&Monoid::plus(), &c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphblas_core::BinaryOp;

    fn undirected(n: usize, edges: &[(usize, usize)]) -> Matrix<bool> {
        let a = Matrix::<bool>::new(n, n).unwrap();
        let mut rows = Vec::new();
        let mut cols = Vec::new();
        for &(u, v) in edges {
            rows.push(u);
            cols.push(v);
            rows.push(v);
            cols.push(u);
        }
        a.build(&rows, &cols, &vec![true; rows.len()], Some(&BinaryOp::lor()))
            .unwrap();
        a
    }

    #[test]
    fn single_triangle() {
        let a = undirected(3, &[(0, 1), (1, 2), (0, 2)]);
        assert_eq!(triangle_count(&a).unwrap(), 1);
    }

    #[test]
    fn square_has_no_triangles() {
        let a = undirected(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert_eq!(triangle_count(&a).unwrap(), 0);
    }

    #[test]
    fn complete_graph_count() {
        // K5 has C(5,3) = 10 triangles.
        let mut edges = Vec::new();
        for i in 0..5 {
            for j in (i + 1)..5 {
                edges.push((i, j));
            }
        }
        let a = undirected(5, &edges);
        assert_eq!(triangle_count(&a).unwrap(), 10);
    }

    #[test]
    fn two_disjoint_triangles_plus_tail() {
        let a = undirected(
            7,
            &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (5, 6)],
        );
        assert_eq!(triangle_count(&a).unwrap(), 2);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn matches_brute_force_on_random_graph() {
        use graphblas_exec::rng::prelude::*;
        let mut rng = StdRng::seed_from_u64(99);
        let n = 30;
        let mut edges = Vec::new();
        let mut adj = vec![vec![false; n]; n];
        for i in 0..n {
            for j in (i + 1)..n {
                if rng.gen_bool(0.2) {
                    edges.push((i, j));
                    adj[i][j] = true;
                    adj[j][i] = true;
                }
            }
        }
        let mut brute = 0u64;
        for i in 0..n {
            for j in (i + 1)..n {
                for k in (j + 1)..n {
                    if adj[i][j] && adj[j][k] && adj[i][k] {
                        brute += 1;
                    }
                }
            }
        }
        let a = undirected(n, &edges);
        assert_eq!(triangle_count(&a).unwrap(), brute);
    }
}
