//! Damped PageRank with dangling-vertex mass redistribution.

use graphblas_core::operations::{
    all_indices, apply_v, assign_scalar_v, ewise_add_v, ewise_mult_v, reduce_to_value_v,
    reduce_to_vector, vxm,
};
use graphblas_core::{
    BinaryOp, Descriptor, GrbResult, Matrix, Monoid, Semiring, UnaryOp, Vector,
};

use crate::square_dim;

/// PageRank over a boolean adjacency matrix. Returns a dense rank vector
/// summing to ~1. `damping` is typically 0.85.
pub fn pagerank(
    a: &Matrix<bool>,
    damping: f64,
    tol: f64,
    max_iter: usize,
) -> GrbResult<Vector<f64>> {
    let n = square_dim(a)?;
    let nf = n as f64;
    let all = all_indices(n);

    // Edge weights 1.0 and out-degrees.
    let w = Matrix::<f64>::new_in(&a.context(), n, n)?;
    graphblas_core::operations::apply(
        &w,
        graphblas_core::no_mask(),
        None,
        &UnaryOp::<bool, f64>::new("one", |_| 1.0),
        a,
        &Descriptor::default(),
    )?;
    let deg = Vector::<f64>::new_in(&a.context(), n)?;
    reduce_to_vector(
        &deg,
        graphblas_core::no_mask_v(),
        None,
        &Monoid::plus(),
        &w,
        &Descriptor::default(),
    )?;

    // Dense initial ranks.
    let rank = Vector::<f64>::new_in(&a.context(), n)?;
    assign_scalar_v(
        &rank,
        graphblas_core::no_mask_v(),
        None,
        1.0 / nf,
        &all,
        &Descriptor::default(),
    )?;

    let plus_times = Semiring::<f64, f64, f64>::plus_times();
    let scaled = Vector::<f64>::new_in(&a.context(), n)?;
    let dangling = Vector::<f64>::new_in(&a.context(), n)?;
    let new_rank = Vector::<f64>::new_in(&a.context(), n)?;
    let delta = Vector::<f64>::new_in(&a.context(), n)?;

    for _ in 0..max_iter {
        // scaled = rank / deg (intersection: only vertices with out-edges).
        ewise_mult_v(
            &scaled,
            graphblas_core::no_mask_v(),
            None,
            &BinaryOp::div(),
            &rank,
            &deg,
            &Descriptor::default(),
        )?;
        // Dangling mass: rank of vertices with no out-edges.
        apply_v(
            &dangling,
            Some(&deg),
            None,
            &UnaryOp::identity(),
            &rank,
            &Descriptor::new()
                .structure_mask()
                .complement_mask()
                .replace(),
        )?;
        let dangling_mass = reduce_to_value_v(&Monoid::plus(), &dangling)?;

        // new_rank = teleport + damping * (scaledᵀ W + dangling/n)
        let base = (1.0 - damping) / nf + damping * dangling_mass / nf;
        assign_scalar_v(
            &new_rank,
            graphblas_core::no_mask_v(),
            None,
            base,
            &all,
            &Descriptor::default(),
        )?;
        let alpha = damping;
        let scaled_alpha = Vector::<f64>::new_in(&a.context(), n)?;
        apply_v(
            &scaled_alpha,
            graphblas_core::no_mask_v(),
            None,
            &UnaryOp::new("scale", move |x: &f64| x * alpha),
            &scaled,
            &Descriptor::default(),
        )?;
        vxm(
            &new_rank,
            graphblas_core::no_mask_v(),
            Some(&BinaryOp::plus()),
            &plus_times,
            &scaled_alpha,
            &w,
            &Descriptor::default(),
        )?;

        // Convergence: L1 distance between iterations.
        ewise_add_v(
            &delta,
            graphblas_core::no_mask_v(),
            None,
            &BinaryOp::<f64, f64, f64>::new("absdiff", |x, y| (x - y).abs()),
            &new_rank,
            &rank,
            &Descriptor::default(),
        )?;
        let l1 = reduce_to_value_v(&Monoid::plus(), &delta)?;

        // rank ← new_rank
        apply_v(
            &rank,
            graphblas_core::no_mask_v(),
            None,
            &UnaryOp::identity(),
            &new_rank,
            &Descriptor::default(),
        )?;
        if l1 < tol {
            break;
        }
    }
    Ok(rank)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adjacency(n: usize, edges: &[(usize, usize)]) -> Matrix<bool> {
        let a = Matrix::<bool>::new(n, n).unwrap();
        a.build(
            &edges.iter().map(|e| e.0).collect::<Vec<_>>(),
            &edges.iter().map(|e| e.1).collect::<Vec<_>>(),
            &vec![true; edges.len()],
            Some(&BinaryOp::lor()),
        )
        .unwrap();
        a
    }

    fn ranks(v: &Vector<f64>) -> Vec<f64> {
        let n = v.size();
        (0..n)
            .map(|i| v.extract_element(i).unwrap().unwrap_or(0.0))
            .collect()
    }

    #[test]
    fn ranks_sum_to_one() {
        let a = adjacency(5, &[(0, 1), (1, 2), (2, 0), (3, 2), (4, 2)]);
        let r = pagerank(&a, 0.85, 1e-10, 200).unwrap();
        let total: f64 = ranks(&r).iter().sum();
        assert!((total - 1.0).abs() < 1e-6, "sum = {total}");
    }

    #[test]
    fn symmetric_cycle_is_uniform() {
        let a = adjacency(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let r = pagerank(&a, 0.85, 1e-12, 500).unwrap();
        let rs = ranks(&r);
        for x in &rs {
            assert!((x - 0.25).abs() < 1e-8, "expected uniform, got {rs:?}");
        }
    }

    #[test]
    fn hub_attracts_rank() {
        // Everyone points at vertex 0.
        let a = adjacency(4, &[(1, 0), (2, 0), (3, 0), (0, 1)]);
        let r = pagerank(&a, 0.85, 1e-10, 200).unwrap();
        let rs = ranks(&r);
        assert!(rs[0] > rs[2] && rs[0] > rs[3]);
    }

    #[test]
    fn dangling_vertices_handled() {
        // Vertex 2 has no out-edges; mass must not leak.
        let a = adjacency(3, &[(0, 1), (1, 2)]);
        let r = pagerank(&a, 0.85, 1e-10, 300).unwrap();
        let total: f64 = ranks(&r).iter().sum();
        assert!((total - 1.0).abs() < 1e-6, "sum = {total}");
    }
}
