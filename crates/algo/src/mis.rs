//! Maximal independent set, Luby-style: each round, every remaining
//! candidate draws a deterministic hashed priority; candidates beating
//! every remaining neighbour join the set, and their neighbourhoods leave
//! the candidate pool. Priorities are a pure hash of `(vertex, round,
//! seed)`, so the algorithm needs no RNG dependency and is reproducible.

use graphblas_core::operations::{apply_indexop_v, apply_v, assign_scalar_v, ewise_add_v, ewise_mult_v, mxv};
use graphblas_core::{
    BinaryOp, Descriptor, GrbResult, IndexUnaryOp, Matrix, Monoid, Semiring, UnaryOp, Vector,
};

use crate::square_dim;

fn mix(mut x: u64) -> u64 {
    // splitmix64 finalizer: good avalanche, cheap, dependency-free.
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58476d1ce4e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d049bb133111eb);
    x ^= x >> 31;
    x
}

/// Computes a maximal independent set of an undirected graph (symmetric
/// adjacency, no self-loops). Returns a vector with `true` at members.
pub fn maximal_independent_set(a: &Matrix<bool>, seed: u64) -> GrbResult<Vector<bool>> {
    let n = square_dim(a)?;
    let mis = Vector::<bool>::new_in(&a.context(), n)?;
    // Candidate pool: initially every vertex.
    let candidates = Vector::<bool>::new_in(&a.context(), n)?;
    assign_scalar_v(
        &candidates,
        graphblas_core::no_mask_v(),
        None,
        true,
        &graphblas_core::operations::all_indices(n),
        &Descriptor::default(),
    )?;

    let max_second: Semiring<bool, u64, u64> =
        Semiring::new(Monoid::max(), BinaryOp::second());
    let prio = Vector::<u64>::new_in(&a.context(), n)?;
    let neighbour_best = Vector::<u64>::new_in(&a.context(), n)?;
    let winners = Vector::<bool>::new_in(&a.context(), n)?;
    let removed = Vector::<bool>::new_in(&a.context(), n)?;

    let mut round = 0u64;
    while candidates.nvals()? > 0 {
        // Hashed priorities ≥ 1 for every candidate.
        let salt = mix(seed ^ round.wrapping_mul(0x9e3779b97f4a7c15));
        let hash_op = IndexUnaryOp::<bool, u64, u64>::new("prio", move |_, idx, s| {
            mix(idx[0] as u64 ^ s) | 1
        });
        apply_indexop_v(
            &prio,
            graphblas_core::no_mask_v(),
            None,
            &hash_op,
            &candidates,
            salt,
            &Descriptor::default(),
        )?;
        // Best priority among *candidate* neighbours; vertices whose
        // neighbours all left the pool get no entry.
        mxv(
            &neighbour_best,
            Some(&candidates),
            None,
            &max_second,
            a,
            &prio,
            &Descriptor::new().structure_mask().replace(),
        )?;
        // winners = candidates whose priority beats every neighbour:
        // strict winners on the intersection, plus candidates with no
        // remaining neighbour (absent from neighbour_best).
        let beats = Vector::<bool>::new_in(&a.context(), n)?;
        ewise_mult_v(
            &beats,
            graphblas_core::no_mask_v(),
            None,
            &BinaryOp::gt(),
            &prio,
            &neighbour_best,
            &Descriptor::default(),
        )?;
        // Keep only `true` comparisons.
        graphblas_core::operations::select_v(
            &beats,
            graphblas_core::no_mask_v(),
            None,
            &IndexUnaryOp::valueeq(),
            &beats,
            true,
            &Descriptor::default(),
        )?;
        // Isolated-in-pool candidates: prio entries without neighbour_best.
        apply_v(
            &winners,
            Some(&neighbour_best),
            None,
            &UnaryOp::<u64, bool>::new("won", |_| true),
            &prio,
            &Descriptor::new()
                .structure_mask()
                .complement_mask()
                .replace(),
        )?;
        ewise_add_v(
            &winners,
            graphblas_core::no_mask_v(),
            None,
            &BinaryOp::lor(),
            &winners,
            &beats,
            &Descriptor::default(),
        )?;
        if winners.nvals()? == 0 {
            // Extremely unlikely (requires a hash tie); resalt and retry.
            round += 1;
            continue;
        }
        // mis ∪= winners
        ewise_add_v(
            &mis,
            graphblas_core::no_mask_v(),
            None,
            &BinaryOp::lor(),
            &mis,
            &winners,
            &Descriptor::default(),
        )?;
        // removed = winners ∪ neighbours(winners)
        mxv(
            &removed,
            graphblas_core::no_mask_v(),
            None,
            &Semiring::lor_land(),
            a,
            &winners,
            &Descriptor::default(),
        )?;
        ewise_add_v(
            &removed,
            graphblas_core::no_mask_v(),
            None,
            &BinaryOp::lor(),
            &removed,
            &winners,
            &Descriptor::default(),
        )?;
        // candidates = candidates \ removed
        apply_v(
            &candidates,
            Some(&removed),
            None,
            &UnaryOp::identity(),
            &candidates,
            &Descriptor::new()
                .structure_mask()
                .complement_mask()
                .replace(),
        )?;
        round += 1;
    }
    Ok(mis)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn undirected(n: usize, edges: &[(usize, usize)]) -> Matrix<bool> {
        let a = Matrix::<bool>::new(n, n).unwrap();
        let mut rows = Vec::new();
        let mut cols = Vec::new();
        for &(u, v) in edges {
            rows.push(u);
            cols.push(v);
            rows.push(v);
            cols.push(u);
        }
        a.build(&rows, &cols, &vec![true; rows.len()], Some(&BinaryOp::lor()))
            .unwrap();
        a
    }

    fn verify_mis(a: &Matrix<bool>, mis: &Vector<bool>) {
        let n = a.nrows();
        let member: Vec<bool> = (0..n)
            .map(|i| mis.extract_element(i).unwrap().unwrap_or(false))
            .collect();
        // Independence: no two members adjacent.
        for i in 0..n {
            for j in 0..n {
                if member[i] && member[j] && a.extract_element(i, j).unwrap().is_some() {
                    panic!("members {i} and {j} are adjacent");
                }
            }
        }
        // Maximality: every non-member has a member neighbour.
        for v in 0..n {
            if member[v] {
                continue;
            }
            let has_member_neighbour = (0..n).any(|u| {
                member[u] && a.extract_element(v, u).unwrap().is_some()
            });
            assert!(
                has_member_neighbour,
                "vertex {v} could be added — not maximal"
            );
        }
    }

    #[test]
    fn path_graph() {
        let a = undirected(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let mis = maximal_independent_set(&a, 1).unwrap();
        verify_mis(&a, &mis);
    }

    #[test]
    fn star_graph_picks_leaves_or_center() {
        let a = undirected(6, &[(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)]);
        let mis = maximal_independent_set(&a, 2).unwrap();
        verify_mis(&a, &mis);
    }

    #[test]
    fn edgeless_graph_takes_everything() {
        let a = Matrix::<bool>::new(4, 4).unwrap();
        let mis = maximal_independent_set(&a, 3).unwrap();
        assert_eq!(mis.nvals().unwrap(), 4);
    }

    #[test]
    fn random_graphs_with_multiple_seeds() {
        use graphblas_exec::rng::prelude::*;
        for seed in 0..5u64 {
            let mut rng = StdRng::seed_from_u64(seed + 100);
            let n = 40;
            let mut edges = Vec::new();
            for _ in 0..120 {
                let u = rng.gen_range(0..n);
                let v = rng.gen_range(0..n);
                if u != v {
                    edges.push((u, v));
                }
            }
            let a = undirected(n, &edges);
            let mis = maximal_independent_set(&a, seed).unwrap();
            verify_mis(&a, &mis);
        }
    }
}
