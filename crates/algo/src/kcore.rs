//! k-core membership by iterative peeling: repeatedly delete vertices
//! whose degree *within the surviving subgraph* is below `k`.

use graphblas_core::operations::{all_indices, apply_v, assign_scalar_v, ewise_mult_v, mxv, select_v};
use graphblas_core::{
    BinaryOp, Descriptor, GrbResult, IndexUnaryOp, Matrix, Semiring, UnaryOp, Vector,
};

use crate::square_dim;

/// Returns the membership vector of the k-core (maximal subgraph where
/// every vertex has degree ≥ k), for an undirected symmetric adjacency
/// matrix.
pub fn k_core(a: &Matrix<bool>, k: u64) -> GrbResult<Vector<bool>> {
    let n = square_dim(a)?;
    let alive = Vector::<bool>::new_in(&a.context(), n)?;
    assign_scalar_v(
        &alive,
        graphblas_core::no_mask_v(),
        None,
        true,
        &all_indices(n),
        &Descriptor::default(),
    )?;
    let plus_pair: Semiring<bool, bool, u64> = Semiring::plus_pair();
    let deg = Vector::<u64>::new_in(&a.context(), n)?;
    let ones = Vector::<bool>::new_in(&a.context(), n)?;
    loop {
        // ones = indicator of surviving vertices.
        apply_v(
            &ones,
            graphblas_core::no_mask_v(),
            None,
            &UnaryOp::identity(),
            &alive,
            &Descriptor::default(),
        )?;
        // deg⟨alive⟩ = #surviving neighbours.
        mxv(
            &deg,
            Some(&alive),
            None,
            &plus_pair,
            a,
            &ones,
            &Descriptor::new().structure_mask().replace(),
        )?;
        // Survivors: degree ≥ k.
        let before = alive.nvals()?;
        select_v(
            &deg,
            graphblas_core::no_mask_v(),
            None,
            &IndexUnaryOp::valuege(),
            &deg,
            k,
            &Descriptor::default(),
        )?;
        // alive = structure of surviving deg (vertices with no surviving
        // neighbours have no deg entry → they leave unless k == 0).
        ewise_mult_v(
            &alive,
            graphblas_core::no_mask_v(),
            None,
            &BinaryOp::<bool, u64, bool>::first(),
            &alive,
            &deg,
            &Descriptor::default(),
        )?;
        let after = alive.nvals()?;
        if after == before || after == 0 {
            return Ok(alive);
        }
    }
}

/// Core number of every vertex: the largest `k` such that the vertex
/// belongs to the k-core. Dense output (0 for isolated vertices).
pub fn core_numbers(a: &Matrix<bool>) -> GrbResult<Vector<u64>> {
    let n = square_dim(a)?;
    let out = Vector::<u64>::new_in(&a.context(), n)?;
    assign_scalar_v(
        &out,
        graphblas_core::no_mask_v(),
        None,
        0u64,
        &all_indices(n),
        &Descriptor::default(),
    )?;
    let mut k = 1u64;
    loop {
        let members = k_core(a, k)?;
        if members.nvals()? == 0 {
            return Ok(out);
        }
        // out⟨members⟩ = k
        assign_scalar_v(
            &out,
            Some(&members),
            None,
            k,
            &all_indices(n),
            &Descriptor::new().structure_mask(),
        )?;
        k += 1;
        if k > n as u64 {
            return Ok(out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn undirected(n: usize, edges: &[(usize, usize)]) -> Matrix<bool> {
        let a = Matrix::<bool>::new(n, n).unwrap();
        let mut rows = Vec::new();
        let mut cols = Vec::new();
        for &(u, v) in edges {
            rows.push(u);
            cols.push(v);
            rows.push(v);
            cols.push(u);
        }
        a.build(&rows, &cols, &vec![true; rows.len()], Some(&BinaryOp::lor()))
            .unwrap();
        a
    }

    fn members(v: &Vector<bool>) -> Vec<usize> {
        let (i, _) = v.extract_tuples().unwrap();
        i
    }

    #[test]
    fn triangle_with_tail() {
        // Triangle {0,1,2} plus tail 2-3: 2-core is the triangle.
        let a = undirected(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
        let core2 = k_core(&a, 2).unwrap();
        assert_eq!(members(&core2), vec![0, 1, 2]);
        let core1 = k_core(&a, 1).unwrap();
        assert_eq!(members(&core1), vec![0, 1, 2, 3]);
        let core3 = k_core(&a, 3).unwrap();
        assert_eq!(core3.nvals().unwrap(), 0);
    }

    #[test]
    fn cascading_peel() {
        // Path 0-1-2-3: removing the endpoints drops everyone from 2-core.
        let a = undirected(4, &[(0, 1), (1, 2), (2, 3)]);
        let core2 = k_core(&a, 2).unwrap();
        assert_eq!(core2.nvals().unwrap(), 0);
    }

    #[test]
    fn core_numbers_on_mixed_graph() {
        // K4 on {0..3} plus pendant 4.
        let mut edges = vec![(0, 4)];
        for i in 0..4 {
            for j in (i + 1)..4 {
                edges.push((i, j));
            }
        }
        let a = undirected(5, &edges);
        let cn = core_numbers(&a).unwrap();
        let vals: Vec<u64> = (0..5)
            .map(|i| cn.extract_element(i).unwrap().unwrap())
            .collect();
        assert_eq!(vals, vec![3, 3, 3, 3, 1]);
    }
}
