//! Opaque serialization (§VII.B): `serializeSize` / `serialize` /
//! `deserialize` for matrices, vectors, and scalars.
//!
//! The byte format is deliberately *implementation-defined* (the spec
//! says the stream "need not be interpretable by … other implementations
//! of the GraphBLAS"); ours is a versioned container:
//!
//! ```text
//! magic "GRBX" | version u32 | kind u8 | type-name (u16 len + utf8)
//! | dims (u64 × 2) | nnz u64 | indptr u64* | indices u64* | values
//! | fnv1a-checksum u64
//! ```
//!
//! Deserializing into the wrong element type is a domain mismatch;
//! corruption is an `InvalidObject` execution error.

use crate::bytesio::{ByteReadExt, ByteWriteExt};
use crate::error::{ApiError, Error, ExecErrorKind, GrbResult};
use crate::matrix::Matrix;
use crate::scalar::Scalar;
use crate::transfer::{Format, VectorFormat};
use crate::types::{Index, ValueType};
use crate::vector::Vector;

const MAGIC: &[u8; 4] = b"GRBX";
const VERSION: u32 = 2;

const KIND_MATRIX: u8 = 0;
const KIND_VECTOR: u8 = 1;
const KIND_SCALAR: u8 = 2;

/// Element types that can enter the serialized stream. Implemented for
/// all predefined GraphBLAS domains; user-defined types can implement it
/// to become serializable.
pub trait SerializableValue: ValueType {
    /// Appends this value's encoding.
    fn write_bytes(&self, out: &mut Vec<u8>);
    /// Decodes one value, advancing the buffer; `None` on underflow.
    fn read_bytes(input: &mut &[u8]) -> Option<Self>;
    /// Encoded size in bytes (used by `serializeSize`).
    fn encoded_len(&self) -> usize;
}

macro_rules! impl_serde_numeric {
    ($($t:ty),*) => {
        $(impl SerializableValue for $t {
            fn write_bytes(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn read_bytes(input: &mut &[u8]) -> Option<Self> {
                const N: usize = std::mem::size_of::<$t>();
                if input.len() < N {
                    return None;
                }
                let mut b = [0u8; N];
                b.copy_from_slice(&input[..N]);
                input.advance(N);
                Some(<$t>::from_le_bytes(b))
            }
            fn encoded_len(&self) -> usize {
                std::mem::size_of::<$t>()
            }
        })*
    };
}

impl_serde_numeric!(i8, i16, i32, i64, u8, u16, u32, u64, f32, f64);

impl SerializableValue for bool {
    fn write_bytes(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn read_bytes(input: &mut &[u8]) -> Option<Self> {
        if input.is_empty() {
            return None;
        }
        let v = input[0];
        input.advance(1);
        Some(v != 0)
    }
    fn encoded_len(&self) -> usize {
        1
    }
}

impl SerializableValue for usize {
    fn write_bytes(&self, out: &mut Vec<u8>) {
        out.put_u64_le(*self as u64);
    }
    fn read_bytes(input: &mut &[u8]) -> Option<Self> {
        if input.len() < 8 {
            return None;
        }
        Some(input.get_u64_le() as usize)
    }
    fn encoded_len(&self) -> usize {
        8
    }
}

impl SerializableValue for isize {
    fn write_bytes(&self, out: &mut Vec<u8>) {
        out.put_i64_le(*self as i64);
    }
    fn read_bytes(input: &mut &[u8]) -> Option<Self> {
        if input.len() < 8 {
            return None;
        }
        Some(input.get_i64_le() as isize)
    }
    fn encoded_len(&self) -> usize {
        8
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

fn write_header(out: &mut Vec<u8>, kind: u8, type_name: &str) {
    out.extend_from_slice(MAGIC);
    out.put_u32_le(VERSION);
    out.push(kind);
    out.put_u16_le(type_name.len() as u16);
    out.extend_from_slice(type_name.as_bytes());
}

fn corrupt(detail: &str) -> Error {
    Error::exec(
        ExecErrorKind::InvalidObject,
        format!("deserialize: corrupt or foreign stream ({detail})"),
    )
}

fn read_header(input: &mut &[u8], expect_kind: u8, type_name: &str) -> GrbResult {
    if input.len() < 4 + 4 + 1 + 2 || &input[..4] != MAGIC {
        return Err(corrupt("bad magic"));
    }
    input.advance(4);
    let version = input.get_u32_le();
    if version != VERSION {
        return Err(corrupt("unsupported version"));
    }
    let kind = input.get_u8();
    if kind != expect_kind {
        return Err(ApiError::DomainMismatch.into());
    }
    let name_len = input.get_u16_le() as usize;
    if input.len() < name_len {
        return Err(corrupt("truncated type name"));
    }
    let name = std::str::from_utf8(&input[..name_len]).map_err(|_| corrupt("bad type name"))?;
    if name != type_name {
        return Err(ApiError::DomainMismatch.into());
    }
    input.advance(name_len);
    Ok(())
}

fn finish(mut body: Vec<u8>) -> Vec<u8> {
    let checksum = fnv1a(&body);
    body.put_u64_le(checksum);
    body
}

fn verify_and_strip(bytes: &[u8]) -> GrbResult<&[u8]> {
    if bytes.len() < 8 {
        return Err(corrupt("too short"));
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let mut tail_reader = tail;
    let stored = tail_reader.get_u64_le();
    if fnv1a(body) != stored {
        return Err(corrupt("checksum mismatch"));
    }
    Ok(body)
}

fn read_index_array(input: &mut &[u8], n: usize) -> GrbResult<Vec<Index>> {
    if input.len() < n * 8 {
        return Err(corrupt("truncated index array"));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(input.get_u64_le() as usize);
    }
    Ok(out)
}

impl<T: SerializableValue> Matrix<T> {
    /// `GrB_Matrix_serializeSize`: an upper bound on the buffer size
    /// [`Matrix::serialize`] will produce.
    pub fn serialize_size(&self) -> GrbResult<usize> {
        let (p, i, v) = self.export(Format::Csr)?;
        let values_len: usize = v.iter().map(|x| x.encoded_len()).sum();
        let name = std::any::type_name::<T>();
        Ok(4 + 4 + 1 + 2 + name.len() + 8 * 3 + p.len() * 8 + i.len() * 8 + values_len + 8)
    }

    /// `GrB_Matrix_serialize`: produces the opaque byte stream.
    pub fn serialize(&self) -> GrbResult<Vec<u8>> {
        let (nrows, ncols) = (self.nrows(), self.ncols());
        let (p, i, v) = self.export(Format::Csr)?;
        let mut out = Vec::with_capacity(64 + p.len() * 8 + i.len() * 8 + v.len() * 8);
        write_header(&mut out, KIND_MATRIX, std::any::type_name::<T>());
        out.put_u64_le(nrows as u64);
        out.put_u64_le(ncols as u64);
        out.put_u64_le(i.len() as u64);
        for x in &p {
            out.put_u64_le(*x as u64);
        }
        for x in &i {
            out.put_u64_le(*x as u64);
        }
        for x in &v {
            x.write_bytes(&mut out);
        }
        Ok(finish(out))
    }

    /// `GrB_Matrix_serialize` into a caller-allocated buffer whose
    /// capacity must cover [`Matrix::serialize_size`]
    /// (`GrB_INSUFFICIENT_SPACE` otherwise).
    pub fn serialize_into(&self, buf: &mut Vec<u8>) -> GrbResult {
        let need = self.serialize_size()?;
        if buf.capacity() < need {
            return Err(Error::exec(
                ExecErrorKind::InsufficientSpace,
                format!("serialize requires capacity {need}, got {}", buf.capacity()),
            ));
        }
        let bytes = self.serialize()?;
        buf.clear();
        buf.extend(bytes);
        Ok(())
    }

    /// `GrB_Matrix_deserialize`: reconstructs a matrix from a stream this
    /// implementation produced.
    pub fn deserialize(bytes: &[u8]) -> GrbResult<Self> {
        let body = verify_and_strip(bytes)?;
        let mut input = body;
        read_header(&mut input, KIND_MATRIX, std::any::type_name::<T>())?;
        if input.len() < 24 {
            return Err(corrupt("truncated dims"));
        }
        let nrows = input.get_u64_le() as usize;
        let ncols = input.get_u64_le() as usize;
        let nnz = input.get_u64_le() as usize;
        let indptr = read_index_array(&mut input, nrows + 1)?;
        let indices = read_index_array(&mut input, nnz)?;
        let mut values = Vec::with_capacity(nnz);
        for _ in 0..nnz {
            values.push(T::read_bytes(&mut input).ok_or_else(|| corrupt("truncated values"))?);
        }
        if !input.is_empty() {
            return Err(corrupt("trailing bytes"));
        }
        Matrix::import(
            nrows,
            ncols,
            Format::Csr,
            Some(indptr),
            Some(indices),
            values,
        )
        .map_err(|_| corrupt("inconsistent arrays"))
    }
}

impl<T: SerializableValue> Vector<T> {
    /// `GrB_Vector_serializeSize`.
    pub fn serialize_size(&self) -> GrbResult<usize> {
        let (i, v) = self.export(VectorFormat::Sparse)?;
        let values_len: usize = v.iter().map(|x| x.encoded_len()).sum();
        let name = std::any::type_name::<T>();
        Ok(4 + 4 + 1 + 2 + name.len() + 8 * 3 + i.len() * 8 + values_len + 8)
    }

    /// `GrB_Vector_serialize`.
    pub fn serialize(&self) -> GrbResult<Vec<u8>> {
        let n = self.size();
        let (i, v) = self.export(VectorFormat::Sparse)?;
        let mut out = Vec::with_capacity(64 + i.len() * 8 + v.len() * 8);
        write_header(&mut out, KIND_VECTOR, std::any::type_name::<T>());
        out.put_u64_le(n as u64);
        out.put_u64_le(0);
        out.put_u64_le(i.len() as u64);
        for x in &i {
            out.put_u64_le(*x as u64);
        }
        for x in &v {
            x.write_bytes(&mut out);
        }
        Ok(finish(out))
    }

    /// `GrB_Vector_serialize` with the caller-allocated-buffer protocol.
    pub fn serialize_into(&self, buf: &mut Vec<u8>) -> GrbResult {
        let need = self.serialize_size()?;
        if buf.capacity() < need {
            return Err(Error::exec(
                ExecErrorKind::InsufficientSpace,
                format!("serialize requires capacity {need}, got {}", buf.capacity()),
            ));
        }
        let bytes = self.serialize()?;
        buf.clear();
        buf.extend(bytes);
        Ok(())
    }

    /// `GrB_Vector_deserialize`.
    pub fn deserialize(bytes: &[u8]) -> GrbResult<Self> {
        let body = verify_and_strip(bytes)?;
        let mut input = body;
        read_header(&mut input, KIND_VECTOR, std::any::type_name::<T>())?;
        if input.len() < 24 {
            return Err(corrupt("truncated dims"));
        }
        let n = input.get_u64_le() as usize;
        let _ = input.get_u64_le();
        let nnz = input.get_u64_le() as usize;
        let indices = read_index_array(&mut input, nnz)?;
        let mut values = Vec::with_capacity(nnz);
        for _ in 0..nnz {
            values.push(T::read_bytes(&mut input).ok_or_else(|| corrupt("truncated values"))?);
        }
        if !input.is_empty() {
            return Err(corrupt("trailing bytes"));
        }
        Vector::import(n, VectorFormat::Sparse, Some(indices), values)
            .map_err(|_| corrupt("inconsistent arrays"))
    }
}

impl<T: SerializableValue> Scalar<T> {
    /// Serializes a scalar (emptiness included).
    pub fn serialize(&self) -> GrbResult<Vec<u8>> {
        let v = self.extract_element()?;
        let mut out = Vec::with_capacity(64);
        write_header(&mut out, KIND_SCALAR, std::any::type_name::<T>());
        out.put_u64_le(0);
        out.put_u64_le(0);
        out.put_u64_le(u64::from(v.is_some()));
        if let Some(v) = &v {
            v.write_bytes(&mut out);
        }
        Ok(finish(out))
    }

    /// Reconstructs a scalar from its stream.
    pub fn deserialize(bytes: &[u8]) -> GrbResult<Self> {
        let body = verify_and_strip(bytes)?;
        let mut input = body;
        read_header(&mut input, KIND_SCALAR, std::any::type_name::<T>())?;
        if input.len() < 24 {
            return Err(corrupt("truncated dims"));
        }
        let _ = input.get_u64_le();
        let _ = input.get_u64_le();
        let present = input.get_u64_le() != 0;
        let s = Scalar::<T>::new()?;
        if present {
            let v = T::read_bytes(&mut input).ok_or_else(|| corrupt("truncated value"))?;
            s.set_element(v)?;
        }
        if !input.is_empty() {
            return Err(corrupt("trailing bytes"));
        }
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_roundtrip() {
        let m = Matrix::<f64>::new(3, 4).unwrap();
        m.build(&[0, 1, 2], &[3, 0, 2], &[1.5, -2.5, 3.25], None)
            .unwrap();
        let bytes = m.serialize().unwrap();
        assert!(bytes.len() <= m.serialize_size().unwrap());
        let back = Matrix::<f64>::deserialize(&bytes).unwrap();
        assert_eq!((back.nrows(), back.ncols()), (3, 4));
        assert_eq!(back.extract_tuples().unwrap(), m.extract_tuples().unwrap());
    }

    #[test]
    fn empty_matrix_roundtrip() {
        let m = Matrix::<u8>::new(5, 5).unwrap();
        let back = Matrix::<u8>::deserialize(&m.serialize().unwrap()).unwrap();
        assert_eq!(back.nvals().unwrap(), 0);
        assert_eq!(back.nrows(), 5);
    }

    #[test]
    fn vector_roundtrip() {
        let v = Vector::<i32>::new(10).unwrap();
        v.build(&[2, 7], &[-4, 9], None).unwrap();
        let back = Vector::<i32>::deserialize(&v.serialize().unwrap()).unwrap();
        assert_eq!(back.extract_tuples().unwrap(), v.extract_tuples().unwrap());
        assert_eq!(back.size(), 10);
    }

    #[test]
    fn scalar_roundtrip_including_empty() {
        let s = Scalar::<i64>::new().unwrap();
        let back = Scalar::<i64>::deserialize(&s.serialize().unwrap()).unwrap();
        assert_eq!(back.nvals().unwrap(), 0);
        s.set_element(-7).unwrap();
        let back2 = Scalar::<i64>::deserialize(&s.serialize().unwrap()).unwrap();
        assert_eq!(back2.extract_element().unwrap(), Some(-7));
    }

    #[test]
    fn corruption_detected() {
        let m = Matrix::<i64>::new(2, 2).unwrap();
        m.set_element(5, 0, 0).unwrap();
        let mut bytes = m.serialize().unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        let err = Matrix::<i64>::deserialize(&bytes).unwrap_err();
        assert!(err.is_execution());
        assert_eq!(err.code(), -104);
    }

    #[test]
    fn wrong_type_is_domain_mismatch() {
        let m = Matrix::<i64>::new(2, 2).unwrap();
        let bytes = m.serialize().unwrap();
        let err = Matrix::<f64>::deserialize(&bytes).unwrap_err();
        assert_eq!(err, Error::Api(ApiError::DomainMismatch));
        // Wrong container kind, too.
        let err2 = Vector::<i64>::deserialize(&bytes).unwrap_err();
        assert_eq!(err2, Error::Api(ApiError::DomainMismatch));
    }

    #[test]
    fn serialize_into_capacity_protocol() {
        let m = Matrix::<i64>::new(2, 2).unwrap();
        m.set_element(1, 1, 1).unwrap();
        let need = m.serialize_size().unwrap();
        let mut buf = Vec::with_capacity(need);
        m.serialize_into(&mut buf).unwrap();
        assert!(!buf.is_empty());
        let mut small: Vec<u8> = Vec::new();
        assert_eq!(m.serialize_into(&mut small).unwrap_err().code(), -103);
    }

    #[test]
    fn garbage_rejected() {
        assert!(Matrix::<i64>::deserialize(b"not a graphblas stream").is_err());
        assert!(Matrix::<i64>::deserialize(b"").is_err());
    }
}
