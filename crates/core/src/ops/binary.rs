//! Binary operators (`GrB_BinaryOp`): `z = f(x, y)`.

use std::sync::Arc;

use crate::types::{One, ValueType};

/// Identity tag for the predefined operators: which builtin a
/// `BinaryOp`/`Monoid` *is*, independent of the erased closure it holds.
///
/// The monomorphized kernel registry (`crate::ops::registry`) keys its
/// dispatch table on these tags: a semiring whose add monoid and multiply
/// op both carry a registered tag (over a registered scalar type) runs the
/// pre-instantiated static kernel instead of calling through `Arc<dyn Fn>`
/// per scalar (paper §II). User-defined operators (`new`) carry no tag and
/// always take the dynamic path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BuiltinOp {
    /// `GrB_FIRST`: z = x.
    First,
    /// `GrB_SECOND`: z = y.
    Second,
    /// `GrB_ONEB` / PAIR: z = 1.
    OneB,
    /// `GrB_PLUS`.
    Plus,
    /// `GrB_MINUS`.
    Minus,
    /// `GrB_TIMES`.
    Times,
    /// `GrB_DIV`.
    Div,
    /// `GrB_MIN`.
    Min,
    /// `GrB_MAX`.
    Max,
    /// `GrB_LOR`.
    LOr,
    /// `GrB_LAND`.
    LAnd,
    /// `GrB_LXOR`.
    LXor,
    /// `GrB_LXNOR`.
    LXnor,
    /// `GrB_EQ`.
    Eq,
    /// `GrB_NE`.
    Ne,
    /// `GrB_LT`.
    Lt,
    /// `GrB_LE`.
    Le,
    /// `GrB_GT`.
    Gt,
    /// `GrB_GE`.
    Ge,
    /// `GxB_ANY`: z = either operand (this implementation keeps x).
    Any,
}

/// A binary operator over domains `A × B → Z`.
#[derive(Clone)]
pub struct BinaryOp<A, B, Z> {
    name: &'static str,
    builtin: Option<BuiltinOp>,
    f: Arc<dyn Fn(&A, &B) -> Z + Send + Sync>,
}

impl<A, B, Z> std::fmt::Debug for BinaryOp<A, B, Z> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BinaryOp({})", self.name)
    }
}

impl<A: ValueType, B: ValueType, Z: ValueType> BinaryOp<A, B, Z> {
    /// Creates a user-defined operator (`GrB_BinaryOp_new`). User operators
    /// carry no builtin tag, so the kernel registry never claims them.
    pub fn new(name: &'static str, f: impl Fn(&A, &B) -> Z + Send + Sync + 'static) -> Self {
        BinaryOp {
            name,
            builtin: None,
            f: Arc::new(f),
        }
    }

    /// Internal constructor for the predefined operators: same closure
    /// erasure as [`BinaryOp::new`], plus the registry identity tag.
    fn tagged(
        name: &'static str,
        builtin: BuiltinOp,
        f: impl Fn(&A, &B) -> Z + Send + Sync + 'static,
    ) -> Self {
        BinaryOp {
            name,
            builtin: Some(builtin),
            f: Arc::new(f),
        }
    }

    /// Applies the operator to one pair.
    #[inline]
    pub fn apply(&self, x: &A, y: &B) -> Z {
        (self.f)(x, y)
    }
}

impl<A, B, Z> BinaryOp<A, B, Z> {
    /// The operator name (diagnostics only).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The builtin identity tag, if this operator is one of the predefined
    /// ones (the kernel-registry dispatch key). `None` for user operators.
    #[inline]
    pub fn builtin(&self) -> Option<BuiltinOp> {
        self.builtin
    }
}

impl<A: ValueType, B: ValueType> BinaryOp<A, B, A> {
    /// `GrB_FIRST_*`: z = x.
    pub fn first() -> Self {
        BinaryOp::tagged("GrB_FIRST", BuiltinOp::First, |x: &A, _: &B| x.clone())
    }
}

impl<A: ValueType, B: ValueType> BinaryOp<A, B, B> {
    /// `GrB_SECOND_*`: z = y.
    pub fn second() -> Self {
        BinaryOp::tagged("GrB_SECOND", BuiltinOp::Second, |_: &A, y: &B| y.clone())
    }
}

impl<A: ValueType, B: ValueType, Z: ValueType + One> BinaryOp<A, B, Z> {
    /// `GrB_ONEB_*` (a.k.a. PAIR): z = 1 whenever both operands exist.
    pub fn oneb() -> Self {
        BinaryOp::tagged("GrB_ONEB", BuiltinOp::OneB, |_: &A, _: &B| Z::one())
    }
}

impl<T: ValueType> BinaryOp<T, T, T> {
    /// `GxB_ANY_*`: z = either operand; this implementation keeps `x`, so
    /// reductions keep whichever value they saw first.
    pub fn any() -> Self {
        BinaryOp::tagged("GxB_ANY", BuiltinOp::Any, |x: &T, _: &T| x.clone())
    }
}

impl<T: ValueType + Copy + std::ops::Add<Output = T>> BinaryOp<T, T, T> {
    /// `GrB_PLUS_*`.
    pub fn plus() -> Self {
        BinaryOp::tagged("GrB_PLUS", BuiltinOp::Plus, |x: &T, y: &T| *x + *y)
    }
}

impl<T: ValueType + Copy + std::ops::Sub<Output = T>> BinaryOp<T, T, T> {
    /// `GrB_MINUS_*`.
    pub fn minus() -> Self {
        BinaryOp::tagged("GrB_MINUS", BuiltinOp::Minus, |x: &T, y: &T| *x - *y)
    }
}

impl<T: ValueType + Copy + std::ops::Mul<Output = T>> BinaryOp<T, T, T> {
    /// `GrB_TIMES_*`.
    pub fn times() -> Self {
        BinaryOp::tagged("GrB_TIMES", BuiltinOp::Times, |x: &T, y: &T| *x * *y)
    }
}

impl<T: ValueType + Copy + std::ops::Div<Output = T>> BinaryOp<T, T, T> {
    /// `GrB_DIV_*`.
    pub fn div() -> Self {
        BinaryOp::tagged("GrB_DIV", BuiltinOp::Div, |x: &T, y: &T| *x / *y)
    }
}

impl<T: ValueType + Copy + PartialOrd> BinaryOp<T, T, T> {
    /// `GrB_MIN_*`.
    pub fn min() -> Self {
        BinaryOp::tagged(
            "GrB_MIN",
            BuiltinOp::Min,
            |x: &T, y: &T| if y < x { *y } else { *x },
        )
    }

    /// `GrB_MAX_*`.
    pub fn max() -> Self {
        BinaryOp::tagged(
            "GrB_MAX",
            BuiltinOp::Max,
            |x: &T, y: &T| if y > x { *y } else { *x },
        )
    }
}

impl BinaryOp<bool, bool, bool> {
    /// `GrB_LOR`.
    pub fn lor() -> Self {
        BinaryOp::tagged("GrB_LOR", BuiltinOp::LOr, |x: &bool, y: &bool| *x || *y)
    }

    /// `GrB_LAND`.
    pub fn land() -> Self {
        BinaryOp::tagged("GrB_LAND", BuiltinOp::LAnd, |x: &bool, y: &bool| *x && *y)
    }

    /// `GrB_LXOR`.
    pub fn lxor() -> Self {
        BinaryOp::tagged("GrB_LXOR", BuiltinOp::LXor, |x: &bool, y: &bool| *x != *y)
    }

    /// `GrB_LXNOR`.
    pub fn lxnor() -> Self {
        BinaryOp::tagged("GrB_LXNOR", BuiltinOp::LXnor, |x: &bool, y: &bool| *x == *y)
    }
}

impl<T: ValueType + PartialEq> BinaryOp<T, T, bool> {
    /// `GrB_EQ_*`.
    pub fn eq() -> Self {
        BinaryOp::tagged("GrB_EQ", BuiltinOp::Eq, |x: &T, y: &T| x == y)
    }

    /// `GrB_NE_*`.
    pub fn ne() -> Self {
        BinaryOp::tagged("GrB_NE", BuiltinOp::Ne, |x: &T, y: &T| x != y)
    }
}

impl<T: ValueType + PartialOrd> BinaryOp<T, T, bool> {
    /// `GrB_LT_*`.
    pub fn lt() -> Self {
        BinaryOp::tagged("GrB_LT", BuiltinOp::Lt, |x: &T, y: &T| x < y)
    }

    /// `GrB_LE_*`.
    pub fn le() -> Self {
        BinaryOp::tagged("GrB_LE", BuiltinOp::Le, |x: &T, y: &T| x <= y)
    }

    /// `GrB_GT_*`.
    pub fn gt() -> Self {
        BinaryOp::tagged("GrB_GT", BuiltinOp::Gt, |x: &T, y: &T| x > y)
    }

    /// `GrB_GE_*`.
    pub fn ge() -> Self {
        BinaryOp::tagged("GrB_GE", BuiltinOp::Ge, |x: &T, y: &T| x >= y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        assert_eq!(BinaryOp::<i32, i32, i32>::plus().apply(&2, &3), 5);
        assert_eq!(BinaryOp::<i32, i32, i32>::minus().apply(&2, &3), -1);
        assert_eq!(BinaryOp::<f64, f64, f64>::times().apply(&2.0, &3.0), 6.0);
        assert_eq!(BinaryOp::<f64, f64, f64>::div().apply(&3.0, &2.0), 1.5);
        assert_eq!(BinaryOp::<u8, u8, u8>::min().apply(&2, &3), 2);
        assert_eq!(BinaryOp::<u8, u8, u8>::max().apply(&2, &3), 3);
    }

    #[test]
    fn selection_and_pair() {
        assert_eq!(BinaryOp::<i32, f64, i32>::first().apply(&7, &1.5), 7);
        assert_eq!(BinaryOp::<i32, f64, f64>::second().apply(&7, &1.5), 1.5);
        assert_eq!(BinaryOp::<i32, f64, u8>::oneb().apply(&7, &1.5), 1);
    }

    #[test]
    fn logic_and_comparison() {
        assert!(BinaryOp::lor().apply(&true, &false));
        assert!(!BinaryOp::land().apply(&true, &false));
        assert!(BinaryOp::lxor().apply(&true, &false));
        assert!(!BinaryOp::lxnor().apply(&true, &false));
        assert!(BinaryOp::<i32, i32, bool>::eq().apply(&4, &4));
        assert!(BinaryOp::<i32, i32, bool>::lt().apply(&3, &4));
        assert!(BinaryOp::<i32, i32, bool>::ge().apply(&4, &4));
    }

    #[test]
    fn user_defined_mixed_domains() {
        let weigh = BinaryOp::<String, u32, usize>::new("len_times", |s, k| s.len() * *k as usize);
        assert_eq!(weigh.apply(&"abc".to_string(), &3), 9);
    }
}
