//! Binary operators (`GrB_BinaryOp`): `z = f(x, y)`.

use std::sync::Arc;

use crate::types::{One, ValueType};

/// A binary operator over domains `A × B → Z`.
#[derive(Clone)]
pub struct BinaryOp<A, B, Z> {
    name: &'static str,
    f: Arc<dyn Fn(&A, &B) -> Z + Send + Sync>,
}

impl<A, B, Z> std::fmt::Debug for BinaryOp<A, B, Z> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BinaryOp({})", self.name)
    }
}

impl<A: ValueType, B: ValueType, Z: ValueType> BinaryOp<A, B, Z> {
    /// Creates a user-defined operator (`GrB_BinaryOp_new`).
    pub fn new(name: &'static str, f: impl Fn(&A, &B) -> Z + Send + Sync + 'static) -> Self {
        BinaryOp { name, f: Arc::new(f) }
    }

    /// Applies the operator to one pair.
    #[inline]
    pub fn apply(&self, x: &A, y: &B) -> Z {
        (self.f)(x, y)
    }
}

impl<A, B, Z> BinaryOp<A, B, Z> {
    /// The operator name (diagnostics only).
    pub fn name(&self) -> &'static str {
        self.name
    }
}

impl<A: ValueType, B: ValueType> BinaryOp<A, B, A> {
    /// `GrB_FIRST_*`: z = x.
    pub fn first() -> Self {
        BinaryOp::new("GrB_FIRST", |x: &A, _: &B| x.clone())
    }
}

impl<A: ValueType, B: ValueType> BinaryOp<A, B, B> {
    /// `GrB_SECOND_*`: z = y.
    pub fn second() -> Self {
        BinaryOp::new("GrB_SECOND", |_: &A, y: &B| y.clone())
    }
}

impl<A: ValueType, B: ValueType, Z: ValueType + One> BinaryOp<A, B, Z> {
    /// `GrB_ONEB_*` (a.k.a. PAIR): z = 1 whenever both operands exist.
    pub fn oneb() -> Self {
        BinaryOp::new("GrB_ONEB", |_: &A, _: &B| Z::one())
    }
}

impl<T: ValueType + Copy + std::ops::Add<Output = T>> BinaryOp<T, T, T> {
    /// `GrB_PLUS_*`.
    pub fn plus() -> Self {
        BinaryOp::new("GrB_PLUS", |x: &T, y: &T| *x + *y)
    }
}

impl<T: ValueType + Copy + std::ops::Sub<Output = T>> BinaryOp<T, T, T> {
    /// `GrB_MINUS_*`.
    pub fn minus() -> Self {
        BinaryOp::new("GrB_MINUS", |x: &T, y: &T| *x - *y)
    }
}

impl<T: ValueType + Copy + std::ops::Mul<Output = T>> BinaryOp<T, T, T> {
    /// `GrB_TIMES_*`.
    pub fn times() -> Self {
        BinaryOp::new("GrB_TIMES", |x: &T, y: &T| *x * *y)
    }
}

impl<T: ValueType + Copy + std::ops::Div<Output = T>> BinaryOp<T, T, T> {
    /// `GrB_DIV_*`.
    pub fn div() -> Self {
        BinaryOp::new("GrB_DIV", |x: &T, y: &T| *x / *y)
    }
}

impl<T: ValueType + Copy + PartialOrd> BinaryOp<T, T, T> {
    /// `GrB_MIN_*`.
    pub fn min() -> Self {
        BinaryOp::new("GrB_MIN", |x: &T, y: &T| if y < x { *y } else { *x })
    }

    /// `GrB_MAX_*`.
    pub fn max() -> Self {
        BinaryOp::new("GrB_MAX", |x: &T, y: &T| if y > x { *y } else { *x })
    }
}

impl BinaryOp<bool, bool, bool> {
    /// `GrB_LOR`.
    pub fn lor() -> Self {
        BinaryOp::new("GrB_LOR", |x: &bool, y: &bool| *x || *y)
    }

    /// `GrB_LAND`.
    pub fn land() -> Self {
        BinaryOp::new("GrB_LAND", |x: &bool, y: &bool| *x && *y)
    }

    /// `GrB_LXOR`.
    pub fn lxor() -> Self {
        BinaryOp::new("GrB_LXOR", |x: &bool, y: &bool| *x != *y)
    }

    /// `GrB_LXNOR`.
    pub fn lxnor() -> Self {
        BinaryOp::new("GrB_LXNOR", |x: &bool, y: &bool| *x == *y)
    }
}

impl<T: ValueType + PartialEq> BinaryOp<T, T, bool> {
    /// `GrB_EQ_*`.
    pub fn eq() -> Self {
        BinaryOp::new("GrB_EQ", |x: &T, y: &T| x == y)
    }

    /// `GrB_NE_*`.
    pub fn ne() -> Self {
        BinaryOp::new("GrB_NE", |x: &T, y: &T| x != y)
    }
}

impl<T: ValueType + PartialOrd> BinaryOp<T, T, bool> {
    /// `GrB_LT_*`.
    pub fn lt() -> Self {
        BinaryOp::new("GrB_LT", |x: &T, y: &T| x < y)
    }

    /// `GrB_LE_*`.
    pub fn le() -> Self {
        BinaryOp::new("GrB_LE", |x: &T, y: &T| x <= y)
    }

    /// `GrB_GT_*`.
    pub fn gt() -> Self {
        BinaryOp::new("GrB_GT", |x: &T, y: &T| x > y)
    }

    /// `GrB_GE_*`.
    pub fn ge() -> Self {
        BinaryOp::new("GrB_GE", |x: &T, y: &T| x >= y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        assert_eq!(BinaryOp::<i32, i32, i32>::plus().apply(&2, &3), 5);
        assert_eq!(BinaryOp::<i32, i32, i32>::minus().apply(&2, &3), -1);
        assert_eq!(BinaryOp::<f64, f64, f64>::times().apply(&2.0, &3.0), 6.0);
        assert_eq!(BinaryOp::<f64, f64, f64>::div().apply(&3.0, &2.0), 1.5);
        assert_eq!(BinaryOp::<u8, u8, u8>::min().apply(&2, &3), 2);
        assert_eq!(BinaryOp::<u8, u8, u8>::max().apply(&2, &3), 3);
    }

    #[test]
    fn selection_and_pair() {
        assert_eq!(BinaryOp::<i32, f64, i32>::first().apply(&7, &1.5), 7);
        assert_eq!(BinaryOp::<i32, f64, f64>::second().apply(&7, &1.5), 1.5);
        assert_eq!(BinaryOp::<i32, f64, u8>::oneb().apply(&7, &1.5), 1);
    }

    #[test]
    fn logic_and_comparison() {
        assert!(BinaryOp::lor().apply(&true, &false));
        assert!(!BinaryOp::land().apply(&true, &false));
        assert!(BinaryOp::lxor().apply(&true, &false));
        assert!(!BinaryOp::lxnor().apply(&true, &false));
        assert!(BinaryOp::<i32, i32, bool>::eq().apply(&4, &4));
        assert!(BinaryOp::<i32, i32, bool>::lt().apply(&3, &4));
        assert!(BinaryOp::<i32, i32, bool>::ge().apply(&4, &4));
    }

    #[test]
    fn user_defined_mixed_domains() {
        let weigh = BinaryOp::<String, u32, usize>::new("len_times", |s, k| s.len() * *k as usize);
        assert_eq!(weigh.apply(&"abc".to_string(), &3), 9);
    }
}
