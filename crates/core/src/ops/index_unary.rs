//! Index-unary operators (`GrB_IndexUnaryOp`) — the headline §VIII feature
//! of GraphBLAS 2.0.
//!
//! An index-unary operator sees a stored element's **value and location**
//! plus a caller-supplied scalar `s`:
//!
//! ```text
//! z = f(aᵢⱼ, [i, j], s)      (matrices, n = 2)
//! z = f(uᵢ,  [i],    s)      (vectors,  n = 1)
//! ```
//!
//! Boolean-returning operators drive [`select`](fn@crate::operations::select)
//! (keep/annihilate); value-returning operators drive the new `apply`
//! variants (rewrite from position). Table IV's predefined operators are
//! all provided as constructors here.
//!
//! The paper notes that operators accessing `indices[1]` (COLINDEX,
//! DIAGINDEX, TRIL, …) are matrix-only and their use on vectors is
//! *undefined behaviour*; in this implementation that manifests as a panic
//! on the out-of-bounds slice access — safe, loud, and within the spec's
//! latitude.

use std::sync::Arc;

use crate::types::{Index, ValueType};

/// An index-unary operator `A × Index^n × S → Z`.
#[derive(Clone)]
pub struct IndexUnaryOp<A, S, Z> {
    name: &'static str,
    f: Arc<dyn Fn(&A, &[Index], &S) -> Z + Send + Sync>,
}

impl<A, S, Z> std::fmt::Debug for IndexUnaryOp<A, S, Z> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "IndexUnaryOp({})", self.name)
    }
}

impl<A: ValueType, S: ValueType, Z: ValueType> IndexUnaryOp<A, S, Z> {
    /// Creates a user-defined operator (`GrB_IndexUnaryOp_new`). The
    /// closure receives `(value, indices, s)`; `indices` has length 2 for
    /// matrix elements (`[i, j]`) and 1 for vector elements (`[i]`).
    pub fn new(
        name: &'static str,
        f: impl Fn(&A, &[Index], &S) -> Z + Send + Sync + 'static,
    ) -> Self {
        IndexUnaryOp {
            name,
            f: Arc::new(f),
        }
    }

    /// Applies the operator to one element.
    #[inline]
    pub fn apply(&self, value: &A, indices: &[Index], s: &S) -> Z {
        (self.f)(value, indices, s)
    }

    /// The operator name (diagnostics only).
    pub fn name(&self) -> &'static str {
        self.name
    }
}

// --- Table IV: "replace" operators (for apply) -----------------------------

impl<A: ValueType> IndexUnaryOp<A, i64, i64> {
    /// `GrB_ROWINDEX_*`: z = i + s.
    pub fn rowindex() -> Self {
        IndexUnaryOp::new("GrB_ROWINDEX", |_, idx, s| idx[0] as i64 + s)
    }

    /// `GrB_COLINDEX_*`: z = j + s (matrix only).
    pub fn colindex() -> Self {
        IndexUnaryOp::new("GrB_COLINDEX", |_, idx, s| idx[1] as i64 + s)
    }

    /// `GrB_DIAGINDEX_*`: z = (j - i) + s (matrix only).
    pub fn diagindex() -> Self {
        IndexUnaryOp::new("GrB_DIAGINDEX", |_, idx, s| {
            idx[1] as i64 - idx[0] as i64 + s
        })
    }
}

// --- Table IV: positional "keep" operators (for select) --------------------

impl<A: ValueType> IndexUnaryOp<A, i64, bool> {
    /// `GrB_TRIL`: keep elements on or below diagonal `s` (j ≤ i + s).
    pub fn tril() -> Self {
        IndexUnaryOp::new("GrB_TRIL", |_, idx, s| idx[1] as i64 <= idx[0] as i64 + s)
    }

    /// `GrB_TRIU`: keep elements on or above diagonal `s` (j ≥ i + s).
    pub fn triu() -> Self {
        IndexUnaryOp::new("GrB_TRIU", |_, idx, s| idx[1] as i64 >= idx[0] as i64 + s)
    }

    /// `GrB_DIAG`: keep elements on diagonal `s` (j = i + s).
    pub fn diag() -> Self {
        IndexUnaryOp::new("GrB_DIAG", |_, idx, s| idx[1] as i64 == idx[0] as i64 + s)
    }

    /// `GrB_OFFDIAG`: remove elements on diagonal `s` (j ≠ i + s).
    pub fn offdiag() -> Self {
        IndexUnaryOp::new("GrB_OFFDIAG", |_, idx, s| {
            idx[1] as i64 != idx[0] as i64 + s
        })
    }

    /// `GrB_ROWLE`: keep rows with i ≤ s.
    pub fn rowle() -> Self {
        IndexUnaryOp::new("GrB_ROWLE", |_, idx, s| (idx[0] as i64) <= *s)
    }

    /// `GrB_ROWGT`: keep rows with i > s.
    pub fn rowgt() -> Self {
        IndexUnaryOp::new("GrB_ROWGT", |_, idx, s| (idx[0] as i64) > *s)
    }

    /// `GrB_COLLE`: keep columns with j ≤ s (matrix only).
    pub fn colle() -> Self {
        IndexUnaryOp::new("GrB_COLLE", |_, idx, s| (idx[1] as i64) <= *s)
    }

    /// `GrB_COLGT`: keep columns with j > s (matrix only).
    pub fn colgt() -> Self {
        IndexUnaryOp::new("GrB_COLGT", |_, idx, s| (idx[1] as i64) > *s)
    }
}

// --- Table IV: value-comparison "keep" operators ----------------------------

impl<T: ValueType + PartialEq> IndexUnaryOp<T, T, bool> {
    /// `GrB_VALUEEQ_*`: keep elements equal to s.
    pub fn valueeq() -> Self {
        IndexUnaryOp::new("GrB_VALUEEQ", |v, _, s| v == s)
    }

    /// `GrB_VALUENE_*`: keep elements not equal to s.
    pub fn valuene() -> Self {
        IndexUnaryOp::new("GrB_VALUENE", |v, _, s| v != s)
    }
}

impl<T: ValueType + PartialOrd> IndexUnaryOp<T, T, bool> {
    /// `GrB_VALUELT_*`.
    pub fn valuelt() -> Self {
        IndexUnaryOp::new("GrB_VALUELT", |v, _, s| v < s)
    }

    /// `GrB_VALUELE_*`.
    pub fn valuele() -> Self {
        IndexUnaryOp::new("GrB_VALUELE", |v, _, s| v <= s)
    }

    /// `GrB_VALUEGT_*`.
    pub fn valuegt() -> Self {
        IndexUnaryOp::new("GrB_VALUEGT", |v, _, s| v > s)
    }

    /// `GrB_VALUEGE_*`.
    pub fn valuege() -> Self {
        IndexUnaryOp::new("GrB_VALUEGE", |v, _, s| v >= s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positional_replace_ops() {
        let row = IndexUnaryOp::<f64, i64, i64>::rowindex();
        let col = IndexUnaryOp::<f64, i64, i64>::colindex();
        let diag = IndexUnaryOp::<f64, i64, i64>::diagindex();
        assert_eq!(row.apply(&0.0, &[3, 9], &1), 4);
        assert_eq!(col.apply(&0.0, &[3, 9], &1), 10);
        assert_eq!(diag.apply(&0.0, &[3, 9], &0), 6);
        // Vector form: ROWINDEX reads only indices[0].
        assert_eq!(row.apply(&0.0, &[5], &0), 5);
    }

    #[test]
    fn triangular_selectors() {
        let tril = IndexUnaryOp::<i32, i64, bool>::tril();
        let triu = IndexUnaryOp::<i32, i64, bool>::triu();
        assert!(tril.apply(&0, &[2, 1], &0));
        assert!(tril.apply(&0, &[2, 2], &0));
        assert!(!tril.apply(&0, &[1, 2], &0));
        assert!(triu.apply(&0, &[1, 2], &0));
        assert!(!triu.apply(&0, &[2, 1], &0));
        // Shifted diagonals.
        assert!(tril.apply(&0, &[0, 1], &1));
        assert!(!tril.apply(&0, &[0, 2], &1));
        // Strictly-upper = triu with s = 1.
        assert!(!triu.apply(&0, &[2, 2], &1));
        assert!(triu.apply(&0, &[1, 2], &1));
    }

    #[test]
    fn diagonal_and_band_selectors() {
        let diag = IndexUnaryOp::<i32, i64, bool>::diag();
        let off = IndexUnaryOp::<i32, i64, bool>::offdiag();
        assert!(diag.apply(&0, &[4, 4], &0));
        assert!(!diag.apply(&0, &[4, 5], &0));
        assert!(diag.apply(&0, &[4, 5], &1));
        assert!(off.apply(&0, &[4, 5], &0));
        assert!(!off.apply(&0, &[4, 5], &1));
    }

    #[test]
    fn row_col_range_selectors() {
        let rowle = IndexUnaryOp::<i32, i64, bool>::rowle();
        let rowgt = IndexUnaryOp::<i32, i64, bool>::rowgt();
        let colle = IndexUnaryOp::<i32, i64, bool>::colle();
        let colgt = IndexUnaryOp::<i32, i64, bool>::colgt();
        assert!(rowle.apply(&0, &[2, 0], &2));
        assert!(!rowle.apply(&0, &[3, 0], &2));
        assert!(rowgt.apply(&0, &[3, 0], &2));
        assert!(colle.apply(&0, &[0, 2], &2));
        assert!(colgt.apply(&0, &[0, 3], &2));
    }

    #[test]
    fn value_comparators() {
        assert!(IndexUnaryOp::<i32, i32, bool>::valueeq().apply(&5, &[0], &5));
        assert!(IndexUnaryOp::<i32, i32, bool>::valuene().apply(&5, &[0], &6));
        assert!(IndexUnaryOp::<i32, i32, bool>::valuelt().apply(&5, &[0], &6));
        assert!(IndexUnaryOp::<i32, i32, bool>::valuele().apply(&5, &[0], &5));
        assert!(IndexUnaryOp::<i32, i32, bool>::valuegt().apply(&7, &[0], &5));
        assert!(IndexUnaryOp::<i32, i32, bool>::valuege().apply(&5, &[0], &5));
    }

    #[test]
    fn users_triu_gt_example_from_the_paper() {
        // §VIII.A: select upper-triangular elements greater than s.
        let my_triu_gt = IndexUnaryOp::<i32, i32, bool>::new("my_triu_gt", |v, idx, s| {
            assert_eq!(idx.len(), 2);
            idx[1] > idx[0] && v > s
        });
        assert!(my_triu_gt.apply(&9, &[0, 1], &5));
        assert!(!my_triu_gt.apply(&3, &[0, 1], &5)); // value too small
        assert!(!my_triu_gt.apply(&9, &[1, 1], &5)); // on diagonal
    }

    #[test]
    #[should_panic]
    fn matrix_only_op_on_vector_indices_panics() {
        // The paper calls this undefined behaviour; we surface it safely.
        let col = IndexUnaryOp::<i32, i64, i64>::colindex();
        let _ = col.apply(&0, &[3], &0);
    }
}
