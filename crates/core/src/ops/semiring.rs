//! Semirings (`GrB_Semiring`): an add-monoid on the output domain paired
//! with a multiply operator `A × B → Z` — the algebra that turns `mxm`
//! into BFS, shortest paths, reachability, triangle counting, …

use crate::ops::binary::BinaryOp;
use crate::ops::monoid::Monoid;
use crate::types::{BoundedValue, One, ValueType, Zero};

/// A semiring with multiply `A × B → Z` and additive monoid on `Z`.
#[derive(Clone)]
pub struct Semiring<A, B, Z> {
    add: Monoid<Z>,
    mul: BinaryOp<A, B, Z>,
}

impl<A, B, Z: std::fmt::Debug> std::fmt::Debug for Semiring<A, B, Z> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Semiring({} . {:?})", self.mul.name(), self.add)
    }
}

impl<A: ValueType, B: ValueType, Z: ValueType> Semiring<A, B, Z> {
    /// Creates a semiring (`GrB_Semiring_new`).
    ///
    /// # Examples
    ///
    /// ```
    /// use graphblas_core::{Semiring, Monoid, BinaryOp};
    /// // A saturating-add / min semiring over u32.
    /// let sr = Semiring::new(
    ///     Monoid::new(BinaryOp::<u32, u32, u32>::new("sat", |a, b| a.saturating_add(*b)), 0),
    ///     BinaryOp::min(),
    /// );
    /// assert_eq!(sr.multiply(&7, &3), 3);
    /// assert_eq!(sr.combine(&u32::MAX, &1), u32::MAX);
    /// ```
    pub fn new(add: Monoid<Z>, mul: BinaryOp<A, B, Z>) -> Self {
        Semiring { add, mul }
    }

    /// The additive monoid on the output domain.
    pub fn add(&self) -> &Monoid<Z> {
        &self.add
    }

    /// The multiply operator `A × B → Z`.
    pub fn mul(&self) -> &BinaryOp<A, B, Z> {
        &self.mul
    }

    /// Applies the multiply operator.
    #[inline]
    pub fn multiply(&self, a: &A, b: &B) -> Z {
        self.mul.apply(a, b)
    }

    /// Applies the additive monoid.
    #[inline]
    pub fn combine(&self, x: &Z, y: &Z) -> Z {
        self.add.apply(x, y)
    }
}

impl<T> Semiring<T, T, T>
where
    T: ValueType + Copy + std::ops::Add<Output = T> + std::ops::Mul<Output = T> + Zero,
{
    /// `GrB_PLUS_TIMES_SEMIRING_*`: classical arithmetic.
    pub fn plus_times() -> Self {
        Semiring::new(Monoid::plus(), BinaryOp::times())
    }
}

impl<T> Semiring<T, T, T>
where
    T: ValueType + Copy + std::ops::Add<Output = T> + PartialOrd + BoundedValue + PartialEq,
{
    /// `GrB_MIN_PLUS_SEMIRING_*`: tropical algebra (shortest paths).
    pub fn min_plus() -> Self {
        Semiring::new(Monoid::min(), BinaryOp::plus())
    }

    /// `GrB_MAX_PLUS_SEMIRING_*`: scheduling / critical paths.
    pub fn max_plus() -> Self {
        Semiring::new(Monoid::max(), BinaryOp::plus())
    }
}

impl<T> Semiring<T, T, T>
where
    T: ValueType + Copy + PartialOrd + BoundedValue + PartialEq,
{
    /// `GrB_MAX_MIN_SEMIRING_*`: bottleneck / widest paths.
    pub fn max_min() -> Self {
        Semiring::new(Monoid::max(), BinaryOp::min())
    }

    /// `GrB_MIN_MAX_SEMIRING_*`.
    pub fn min_max() -> Self {
        Semiring::new(Monoid::min(), BinaryOp::max())
    }

    /// `GrB_MIN_FIRST_SEMIRING_*`: label propagation (take source label).
    pub fn min_first() -> Self {
        Semiring::new(Monoid::min(), BinaryOp::first())
    }

    /// `GrB_MIN_SECOND_SEMIRING_*`.
    pub fn min_second() -> Self {
        Semiring::new(Monoid::min(), BinaryOp::second())
    }

    /// `GrB_MAX_FIRST_SEMIRING_*`.
    pub fn max_first() -> Self {
        Semiring::new(Monoid::max(), BinaryOp::first())
    }

    /// `GrB_MAX_SECOND_SEMIRING_*`.
    pub fn max_second() -> Self {
        Semiring::new(Monoid::max(), BinaryOp::second())
    }
}

impl Semiring<bool, bool, bool> {
    /// `GrB_LOR_LAND_SEMIRING_BOOL`: boolean reachability. The LOR
    /// monoid's `true` terminal makes frontier expansion short-circuit.
    pub fn lor_land() -> Self {
        Semiring::new(Monoid::lor(), BinaryOp::land())
    }
}

impl<A, B, Z> Semiring<A, B, Z>
where
    A: ValueType,
    B: ValueType,
    Z: ValueType + Copy + std::ops::Add<Output = Z> + Zero + One,
{
    /// `PLUS_PAIR`: counts structural matches (the triangle-counting
    /// workhorse; multiply ignores both values and yields 1).
    pub fn plus_pair() -> Self {
        Semiring::new(Monoid::plus(), BinaryOp::oneb())
    }
}

impl<A, B, Z> Semiring<A, B, Z>
where
    A: ValueType,
    B: ValueType,
    Z: ValueType + Zero + One,
{
    /// `GxB_ANY_PAIR_SEMIRING`: pure structural reachability — multiply
    /// yields 1 on any match, and the ANY monoid stops at the first
    /// witness. The cheapest possible semiring for masked BFS-style
    /// traversals (every value is terminal).
    pub fn any_pair() -> Self {
        Semiring::new(Monoid::any(), BinaryOp::oneb())
    }
}

impl<A, B, Z> Semiring<A, B, Z>
where
    A: ValueType,
    B: ValueType + Into<Z>,
    Z: ValueType + Copy + std::ops::Add<Output = Z> + Zero,
{
    /// `PLUS_SECOND`: sums the right operand over matches.
    pub fn plus_second() -> Self {
        Semiring::new(
            Monoid::plus(),
            BinaryOp::new("GrB_SECOND(into)", |_: &A, b: &B| b.clone().into()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plus_times_behaves() {
        let sr = Semiring::<i64, i64, i64>::plus_times();
        assert_eq!(sr.multiply(&3, &4), 12);
        assert_eq!(sr.combine(&3, &4), 7);
        assert_eq!(*sr.add().identity(), 0);
    }

    #[test]
    fn tropical() {
        let sr = Semiring::<f64, f64, f64>::min_plus();
        assert_eq!(sr.multiply(&2.0, &3.0), 5.0);
        assert_eq!(sr.combine(&2.0, &3.0), 2.0);
        assert_eq!(*sr.add().identity(), f64::MAX);
    }

    #[test]
    fn boolean_reachability() {
        let sr = Semiring::lor_land();
        assert!(sr.multiply(&true, &true));
        assert!(!sr.multiply(&true, &false));
        assert!(sr.combine(&false, &true));
        assert!(sr.add().terminal().unwrap()(&true));
    }

    #[test]
    fn plus_pair_counts() {
        let sr = Semiring::<f32, f32, u64>::plus_pair();
        assert_eq!(sr.multiply(&2.5, &9.0), 1);
        assert_eq!(sr.combine(&3, &4), 7);
    }

    #[test]
    fn bottleneck() {
        let sr = Semiring::<u32, u32, u32>::max_min();
        assert_eq!(sr.multiply(&7, &3), 3);
        assert_eq!(sr.combine(&7, &3), 7);
    }

    #[test]
    fn any_pair_structural() {
        let sr = Semiring::<f64, f64, u64>::any_pair();
        assert_eq!(sr.multiply(&2.5, &9.0), 1);
        assert_eq!(sr.combine(&3, &4), 3); // ANY keeps the first operand
        assert!(sr.add().terminal().unwrap()(&0)); // everything is terminal
        use crate::ops::binary::BuiltinOp;
        assert_eq!(sr.add().builtin(), Some(BuiltinOp::Any));
        assert_eq!(sr.mul().builtin(), Some(BuiltinOp::OneB));
    }

    #[test]
    fn custom_semiring() {
        // Galois-ish: xor-and on u8 bitmasks.
        let sr = Semiring::new(
            Monoid::new(BinaryOp::<u8, u8, u8>::new("xor", |a, b| a ^ b), 0),
            BinaryOp::<u8, u8, u8>::new("and", |a, b| a & b),
        );
        assert_eq!(sr.multiply(&0b1100, &0b1010), 0b1000);
        assert_eq!(sr.combine(&0b1100, &0b1010), 0b0110);
    }
}
