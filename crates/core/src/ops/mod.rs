//! The GraphBLAS operator algebra: unary/binary/index-unary operators,
//! monoids, and semirings.
//!
//! Operators are cheap-to-clone wrappers around `Arc<dyn Fn>` — the Rust
//! analogue of the C API's function-pointer-based `GrB_*Op_new`. By itself
//! that routes every scalar operation through a per-scalar indirect call,
//! the cost the paper's §II discusses. The [`registry`] module closes the
//! gap for the hot builtin semirings: predefined operators carry a
//! [`binary::BuiltinOp`] identity tag, and dispatch sites consult a table
//! of pre-monomorphized kernel instantiations before falling back to the
//! `dyn Fn` path (which remains the universal route for user operators).

pub mod binary;
pub mod index_unary;
pub mod monoid;
pub mod registry;
pub mod semiring;
pub mod unary;

pub use binary::{BinaryOp, BuiltinOp};
pub use index_unary::IndexUnaryOp;
pub use monoid::Monoid;
pub use semiring::Semiring;
pub use unary::{BuiltinUnaryOp, UnaryOp};
