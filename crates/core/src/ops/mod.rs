//! The GraphBLAS operator algebra: unary/binary/index-unary operators,
//! monoids, and semirings.
//!
//! Operators are cheap-to-clone wrappers around `Arc<dyn Fn>` — the Rust
//! analogue of the C API's function-pointer-based `GrB_*Op_new`. Routing
//! every scalar operation through a `dyn Fn` deliberately preserves the
//! per-scalar indirect-call cost the paper's §II discusses; the
//! `ablation_dispatch` bench quantifies it against monomorphized closures.

pub mod binary;
pub mod index_unary;
pub mod monoid;
pub mod semiring;
pub mod unary;

pub use binary::BinaryOp;
pub use index_unary::IndexUnaryOp;
pub use monoid::Monoid;
pub use semiring::Semiring;
pub use unary::UnaryOp;
