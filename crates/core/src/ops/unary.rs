//! Unary operators (`GrB_UnaryOp`): `z = f(x)`.

use std::sync::Arc;

use crate::types::ValueType;

/// Identity tag for the predefined unary operators — the registry key
/// mirroring [`crate::ops::binary::BuiltinOp`]. Set only by the canonical
/// constructors; user operators (`new`) carry no tag and always take the
/// dynamic dispatch path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BuiltinUnaryOp {
    /// `GrB_IDENTITY`: z = x.
    Identity,
    /// `GrB_AINV`: additive inverse.
    Ainv,
    /// `GrB_ABS`: absolute value.
    Abs,
    /// `GrB_LNOT`: logical negation.
    Lnot,
    /// `GrB_MINV`: multiplicative inverse.
    Minv,
}

/// A unary operator from domain `A` to domain `Z`.
#[derive(Clone)]
pub struct UnaryOp<A, Z> {
    name: &'static str,
    builtin: Option<BuiltinUnaryOp>,
    f: Arc<dyn Fn(&A) -> Z + Send + Sync>,
}

impl<A, Z> std::fmt::Debug for UnaryOp<A, Z> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "UnaryOp({})", self.name)
    }
}

impl<A: ValueType, Z: ValueType> UnaryOp<A, Z> {
    /// Creates a user-defined operator (`GrB_UnaryOp_new`). User operators
    /// carry no builtin tag, so the kernel registry never claims them.
    pub fn new(name: &'static str, f: impl Fn(&A) -> Z + Send + Sync + 'static) -> Self {
        UnaryOp {
            name,
            builtin: None,
            f: Arc::new(f),
        }
    }

    /// Internal constructor for the predefined operators: same closure
    /// erasure as [`UnaryOp::new`], plus the registry identity tag.
    fn tagged(
        name: &'static str,
        builtin: BuiltinUnaryOp,
        f: impl Fn(&A) -> Z + Send + Sync + 'static,
    ) -> Self {
        UnaryOp {
            name,
            builtin: Some(builtin),
            f: Arc::new(f),
        }
    }

    /// Applies the operator to one value.
    #[inline]
    pub fn apply(&self, x: &A) -> Z {
        (self.f)(x)
    }

    /// The operator name (diagnostics only).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The builtin identity tag, if this operator is one of the predefined
    /// ones (the kernel-registry dispatch key). `None` for user operators.
    #[inline]
    pub fn builtin(&self) -> Option<BuiltinUnaryOp> {
        self.builtin
    }
}

impl<T: ValueType> UnaryOp<T, T> {
    /// `GrB_IDENTITY_*`: z = x.
    pub fn identity() -> Self {
        UnaryOp::tagged("GrB_IDENTITY", BuiltinUnaryOp::Identity, |x: &T| x.clone())
    }
}

impl<T: ValueType + Copy + std::ops::Neg<Output = T>> UnaryOp<T, T> {
    /// `GrB_AINV_*`: additive inverse.
    pub fn ainv() -> Self {
        UnaryOp::tagged("GrB_AINV", BuiltinUnaryOp::Ainv, |x: &T| -*x)
    }
}

macro_rules! abs_ops {
    ($($t:ty),*) => {
        $(impl UnaryOp<$t, $t> {
            /// `GrB_ABS_*`: absolute value.
            pub fn abs() -> Self {
                UnaryOp::tagged("GrB_ABS", BuiltinUnaryOp::Abs, |x: &$t| x.abs())
            }
        })*
    };
}

abs_ops!(i8, i16, i32, i64, f32, f64);

impl UnaryOp<bool, bool> {
    /// `GrB_LNOT`: logical negation.
    pub fn lnot() -> Self {
        UnaryOp::tagged("GrB_LNOT", BuiltinUnaryOp::Lnot, |x: &bool| !*x)
    }
}

impl<T: ValueType + Copy + std::ops::Div<Output = T> + crate::types::One> UnaryOp<T, T> {
    /// `GrB_MINV_*`: multiplicative inverse.
    pub fn minv() -> Self {
        UnaryOp::tagged("GrB_MINV", BuiltinUnaryOp::Minv, |x: &T| {
            <T as crate::types::One>::one() / *x
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predefined() {
        assert_eq!(UnaryOp::<i32, i32>::identity().apply(&7), 7);
        assert_eq!(UnaryOp::<i32, i32>::ainv().apply(&7), -7);
        assert_eq!(UnaryOp::<i64, i64>::abs().apply(&-9), 9);
        assert!(!UnaryOp::lnot().apply(&true));
        assert_eq!(UnaryOp::<f64, f64>::minv().apply(&4.0), 0.25);
    }

    #[test]
    fn builtin_tags() {
        assert_eq!(
            UnaryOp::<i32, i32>::identity().builtin(),
            Some(BuiltinUnaryOp::Identity)
        );
        assert_eq!(
            UnaryOp::<f64, f64>::abs().builtin(),
            Some(BuiltinUnaryOp::Abs)
        );
        assert_eq!(UnaryOp::lnot().builtin(), Some(BuiltinUnaryOp::Lnot));
        let user = UnaryOp::<i32, i32>::new("sq", |x| x * x);
        assert_eq!(user.builtin(), None);
    }

    #[test]
    fn user_defined_with_type_change() {
        let op = UnaryOp::<f64, i64>::new("trunc", |x| *x as i64);
        assert_eq!(op.apply(&3.99), 3);
        assert_eq!(op.name(), "trunc");
        let cloned = op.clone();
        assert_eq!(cloned.apply(&-2.5), -2);
        assert!(format!("{op:?}").contains("trunc"));
    }
}
