//! Unary operators (`GrB_UnaryOp`): `z = f(x)`.

use std::sync::Arc;

use crate::types::ValueType;

/// A unary operator from domain `A` to domain `Z`.
#[derive(Clone)]
pub struct UnaryOp<A, Z> {
    name: &'static str,
    f: Arc<dyn Fn(&A) -> Z + Send + Sync>,
}

impl<A, Z> std::fmt::Debug for UnaryOp<A, Z> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "UnaryOp({})", self.name)
    }
}

impl<A: ValueType, Z: ValueType> UnaryOp<A, Z> {
    /// Creates a user-defined operator (`GrB_UnaryOp_new`).
    pub fn new(name: &'static str, f: impl Fn(&A) -> Z + Send + Sync + 'static) -> Self {
        UnaryOp { name, f: Arc::new(f) }
    }

    /// Applies the operator to one value.
    #[inline]
    pub fn apply(&self, x: &A) -> Z {
        (self.f)(x)
    }

    /// The operator name (diagnostics only).
    pub fn name(&self) -> &'static str {
        self.name
    }
}

impl<T: ValueType> UnaryOp<T, T> {
    /// `GrB_IDENTITY_*`: z = x.
    pub fn identity() -> Self {
        UnaryOp::new("GrB_IDENTITY", |x: &T| x.clone())
    }
}

impl<T: ValueType + Copy + std::ops::Neg<Output = T>> UnaryOp<T, T> {
    /// `GrB_AINV_*`: additive inverse.
    pub fn ainv() -> Self {
        UnaryOp::new("GrB_AINV", |x: &T| -*x)
    }
}

macro_rules! abs_ops {
    ($($t:ty),*) => {
        $(impl UnaryOp<$t, $t> {
            /// `GrB_ABS_*`: absolute value.
            pub fn abs() -> Self {
                UnaryOp::new("GrB_ABS", |x: &$t| x.abs())
            }
        })*
    };
}

abs_ops!(i8, i16, i32, i64, f32, f64);

impl UnaryOp<bool, bool> {
    /// `GrB_LNOT`: logical negation.
    pub fn lnot() -> Self {
        UnaryOp::new("GrB_LNOT", |x: &bool| !*x)
    }
}

impl<T: ValueType + Copy + std::ops::Div<Output = T> + crate::types::One> UnaryOp<T, T> {
    /// `GrB_MINV_*`: multiplicative inverse.
    pub fn minv() -> Self {
        UnaryOp::new("GrB_MINV", |x: &T| <T as crate::types::One>::one() / *x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predefined() {
        assert_eq!(UnaryOp::<i32, i32>::identity().apply(&7), 7);
        assert_eq!(UnaryOp::<i32, i32>::ainv().apply(&7), -7);
        assert_eq!(UnaryOp::<i64, i64>::abs().apply(&-9), 9);
        assert!(!UnaryOp::lnot().apply(&true));
        assert_eq!(UnaryOp::<f64, f64>::minv().apply(&4.0), 0.25);
    }

    #[test]
    fn user_defined_with_type_change() {
        let op = UnaryOp::<f64, i64>::new("trunc", |x| *x as i64);
        assert_eq!(op.apply(&3.99), 3);
        assert_eq!(op.name(), "trunc");
        let cloned = op.clone();
        assert_eq!(cloned.apply(&-2.5), -2);
        assert!(format!("{op:?}").contains("trunc"));
    }
}
