//! The monomorphized kernel registry — static dispatch for builtin
//! semirings (paper §II).
//!
//! Every operation in `core::operations` is generic over user-supplied
//! operator *objects* (`Semiring`, `BinaryOp`, `UnaryOp`) whose apply
//! paths route through `Arc<dyn Fn>` — an indirect call per scalar, which
//! the GraphBLAS 2.0 paper's §II performance discussion identifies as the
//! gap between generic and specialized implementations. This module closes
//! that gap for the hot builtin algebra: each `try_*` entry point holds a
//! table of **pre-monomorphized kernel instantiations** — the generic
//! kernels in `graphblas-sparse` instantiated at compile time with plain
//! `fn` items for the registered (add ⊕, mul ⊗, type) combinations — and
//! selects one at dispatch time by operator identity
//! ([`BuiltinOp`]/[`BuiltinUnaryOp`] tags, set only by canonical
//! constructors) plus `TypeId` equality. Inside a claimed kernel the
//! operators are zero-sized fn items the optimizer inlines into the inner
//! loop; no virtual call, no closure environment.
//!
//! Registered semirings (⊕, ⊗) × element type:
//!
//! | add  | mul  | types                  | workloads                  |
//! |------|------|------------------------|----------------------------|
//! | PLUS | TIMES| f64, f32, i64, u64     | pagerank, spgemm, counting |
//! | MIN  | PLUS | f64, f32, i64, u64     | shortest paths             |
//! | MAX  | PLUS | f64, f32, i64, u64     | widest/critical paths      |
//! | LOR  | LAND | bool                   | reachability, BFS          |
//! | ANY  | PAIR | bool                   | structural BFS             |
//!
//! Element-wise ops additionally register PLUS/TIMES/MIN/MAX over the four
//! numeric types and LOR/LAND over bool; apply registers IDENTITY, AINV,
//! ABS, and LNOT. Everything else — user-defined operators, unregistered
//! types, operators with customized terminals — returns `None` and the
//! caller transparently falls back to the existing `dyn Fn` path, so the
//! registry is a pure fast path with no semantic surface: every static fn
//! here is behaviorally identical (byte-exact, argument order included)
//! to the closure the dyn path would have used, which the equivalence
//! tests in `crates/core/tests/registry_equiv.rs` pin down pair by pair.
//!
//! Opt-out: `GRB_DISPATCH=dyn` in the environment (read once), or
//! [`force_dispatch`]`(Some(false))` at runtime (used by the bench
//! harness's ablation arm). Dispatch decisions are observable through
//! `obs::counters::dispatch()` and `dispatch-pick` decision events.

use std::any::{Any, TypeId};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

use graphblas_exec::Context;
use graphblas_sparse::{ewise, spgemm, spmv, BitmapVec, Csr, SparseVec};

use crate::ops::{BuiltinOp, BuiltinUnaryOp};
use crate::types::{BoundedValue, One, ValueType};

// ---------------------------------------------------------------------------
// Dispatch-mode knobs
// ---------------------------------------------------------------------------

/// 0 = follow `GRB_DISPATCH`, 1 = force registry on, 2 = force dyn.
static FORCE: AtomicU8 = AtomicU8::new(0);

/// Overrides the registry on/off decision at runtime, bypassing the
/// `GRB_DISPATCH` environment setting: `Some(true)` forces static
/// dispatch, `Some(false)` forces the dyn fallback everywhere, `None`
/// restores the environment default. The bench harness uses this for its
/// static-vs-dyn ablation; mirrors `operations::force_direction`.
pub fn force_dispatch(mode: Option<bool>) {
    let v = match mode {
        None => 0,
        Some(true) => 1,
        Some(false) => 2,
    };
    // SeqCst like FORCE_DIRECTION: a test/bench knob, not a hot path.
    FORCE.store(v, Ordering::SeqCst);
}

fn env_enabled() -> bool {
    static ENV: OnceLock<bool> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("GRB_DISPATCH")
            .map(|v| !v.eq_ignore_ascii_case("dyn"))
            .unwrap_or(true)
    })
}

/// Whether the registry may claim kernels right now.
#[inline]
pub fn enabled() -> bool {
    match FORCE.load(Ordering::SeqCst) {
        1 => true,
        2 => false,
        _ => env_enabled(),
    }
}

/// Records one dispatch decision (counter + `dispatch-pick` event) when
/// telemetry is on. The `try_*` entry points record their own static
/// hits; call sites record `is_static = false` when a registry miss sends
/// them down the dyn path, so hits/fallbacks partition actual dispatches.
pub fn record_pick(op: &'static str, ctx_id: u64, is_static: bool) {
    if graphblas_obs::enabled() {
        graphblas_obs::counters::record_dispatch_pick(is_static);
        graphblas_obs::events::decision_dispatch(op, ctx_id, is_static);
    }
}

// ---------------------------------------------------------------------------
// Identity-preserving casts
// ---------------------------------------------------------------------------
//
// Once an arm's `TypeId` guards have passed, `A` *is* `$t`; these casts
// let the type system in on that fact. They return `Option` (an arm whose
// guard passed can't actually fail) so a surprise is a silent dyn
// fallback, never a panic in a hot kernel.

#[inline]
fn cast_ref<Src: Any, Dst: Any>(v: &Src) -> Option<&Dst> {
    (v as &dyn Any).downcast_ref::<Dst>()
}

#[inline]
fn cast_val<Src: Any, Dst: Any>(v: Src) -> Option<Dst> {
    (Box::new(v) as Box<dyn Any>)
        .downcast::<Dst>()
        .ok()
        .map(|b| *b)
}

// ---------------------------------------------------------------------------
// The static operator set
// ---------------------------------------------------------------------------
//
// Plain generic `fn` items. Monomorphized at a registered type each is a
// zero-sized value kernels take by value — static dispatch the optimizer
// sees through. Bodies mirror the canonical constructor closures in
// `binary.rs` / `monoid.rs` / `unary.rs` exactly.

/// `GrB_TIMES` as multiply: `x ⊗ y = x * y`.
fn mul_times<T: Copy + std::ops::Mul<Output = T>>(x: &T, y: &T) -> T {
    *x * *y
}

/// `GrB_PLUS` as multiply or ewise op: `x + y`.
fn mul_plus<T: Copy + std::ops::Add<Output = T>>(x: &T, y: &T) -> T {
    *x + *y
}

/// `GrB_LAND` as multiply or ewise op.
fn mul_land(x: &bool, y: &bool) -> bool {
    *x && *y
}

/// `GrB_ONEB` (pair): 1 whenever both operands exist.
fn mul_oneb<T: One>(_x: &T, _y: &T) -> T {
    T::one()
}

/// `GrB_MIN` as ewise op (same comparison shape as `BinaryOp::min`).
fn bin_min<T: Copy + PartialOrd>(x: &T, y: &T) -> T {
    if y < x {
        *y
    } else {
        *x
    }
}

/// `GrB_MAX` as ewise op.
fn bin_max<T: Copy + PartialOrd>(x: &T, y: &T) -> T {
    if y > x {
        *y
    } else {
        *x
    }
}

/// `GrB_LOR` as ewise op.
fn bin_lor(x: &bool, y: &bool) -> bool {
    *x || *y
}

/// PLUS monoid as a by-value fold (spmv/vxm/reduce accumulate shape).
fn fold_plus<T: Copy + std::ops::Add<Output = T>>(p: T, q: T) -> T {
    p + q
}

/// MIN monoid as a by-value fold.
fn fold_min<T: Copy + PartialOrd>(p: T, q: T) -> T {
    if q < p {
        q
    } else {
        p
    }
}

/// MAX monoid as a by-value fold.
fn fold_max<T: Copy + PartialOrd>(p: T, q: T) -> T {
    if q > p {
        q
    } else {
        p
    }
}

/// LOR monoid as a by-value fold.
fn fold_lor(p: bool, q: bool) -> bool {
    p || q
}

/// ANY monoid as a by-value fold: the first witness wins.
fn fold_any<T>(p: T, _q: T) -> T {
    p
}

/// PLUS monoid as an in-place accumulator (spgemm SPA shape).
fn acc_plus<T: Copy + std::ops::Add<Output = T>>(p: &mut T, q: T) {
    *p = *p + q;
}

/// MIN monoid as an in-place accumulator.
fn acc_min<T: Copy + PartialOrd>(p: &mut T, q: T) {
    if q < *p {
        *p = q;
    }
}

/// MAX monoid as an in-place accumulator.
fn acc_max<T: Copy + PartialOrd>(p: &mut T, q: T) {
    if q > *p {
        *p = q;
    }
}

/// LOR monoid as an in-place accumulator.
fn acc_lor(p: &mut bool, q: bool) {
    *p = *p || q;
}

/// ANY monoid as an in-place accumulator: keep the first witness.
fn acc_any<T>(_p: &mut T, _q: T) {}

/// MIN monoid terminal: the annihilator is the domain minimum.
fn term_min<T: BoundedValue + PartialEq>(x: &T) -> bool {
    *x == T::min_value()
}

/// MAX monoid terminal: the annihilator is the domain maximum.
fn term_max<T: BoundedValue + PartialEq>(x: &T) -> bool {
    *x == T::max_value()
}

/// LOR monoid terminal: `true` annihilates.
fn term_true(x: &bool) -> bool {
    *x
}

/// ANY monoid terminal: every value is terminal.
fn term_always<T>(_x: &T) -> bool {
    true
}

/// `GrB_IDENTITY` / structural mask predicate building block.
fn map_clone<T: Clone>(v: &T) -> T {
    v.clone()
}

/// The boolean mask predicate `mxm` passes to the masked kernel.
fn pred_bool(b: &bool) -> bool {
    *b
}

/// `GrB_AINV` for signed/float domains.
fn uop_ainv<T: Copy + std::ops::Neg<Output = T>>(x: &T) -> T {
    -*x
}

fn uop_abs_f64(x: &f64) -> f64 {
    x.abs()
}

fn uop_abs_f32(x: &f32) -> f32 {
    x.abs()
}

fn uop_abs_i64(x: &i64) -> i64 {
    x.abs()
}

/// `GrB_LNOT`.
fn uop_lnot(x: &bool) -> bool {
    !*x
}

// ---------------------------------------------------------------------------
// The registration tables
// ---------------------------------------------------------------------------

/// The semiring table. Expands `$arm!(add, mul, type, fold, acc, mulf,
/// term)` once per registered (⊕, ⊗, type) row; each `try_*` entry point
/// supplies a local `arm!` that turns one row into a guarded monomorphic
/// kernel call. Note each (add, type) pair appears at most once, so the
/// reduce entry points reuse this table keyed on the add tag alone.
macro_rules! with_registered_semirings {
    ($arm:ident) => {
        $arm!(Plus, Times, f64, fold_plus, acc_plus, mul_times, none_term);
        $arm!(Plus, Times, f32, fold_plus, acc_plus, mul_times, none_term);
        $arm!(Plus, Times, i64, fold_plus, acc_plus, mul_times, none_term);
        $arm!(Plus, Times, u64, fold_plus, acc_plus, mul_times, none_term);
        $arm!(Min, Plus, f64, fold_min, acc_min, mul_plus, some_term_min);
        $arm!(Min, Plus, f32, fold_min, acc_min, mul_plus, some_term_min);
        $arm!(Min, Plus, i64, fold_min, acc_min, mul_plus, some_term_min);
        $arm!(Min, Plus, u64, fold_min, acc_min, mul_plus, some_term_min);
        $arm!(Max, Plus, f64, fold_max, acc_max, mul_plus, some_term_max);
        $arm!(Max, Plus, f32, fold_max, acc_max, mul_plus, some_term_max);
        $arm!(Max, Plus, i64, fold_max, acc_max, mul_plus, some_term_max);
        $arm!(Max, Plus, u64, fold_max, acc_max, mul_plus, some_term_max);
        $arm!(LOr, LAnd, bool, fold_lor, acc_lor, mul_land, some_term_true);
        $arm!(
            Any,
            OneB,
            bool,
            fold_any,
            acc_any,
            mul_oneb,
            some_term_always
        );
    };
}

/// The element-wise binary-op table: `$arm!(tag, type, opf)`.
macro_rules! with_registered_binops {
    ($arm:ident) => {
        $arm!(Plus, f64, mul_plus);
        $arm!(Plus, f32, mul_plus);
        $arm!(Plus, i64, mul_plus);
        $arm!(Plus, u64, mul_plus);
        $arm!(Times, f64, mul_times);
        $arm!(Times, f32, mul_times);
        $arm!(Times, i64, mul_times);
        $arm!(Times, u64, mul_times);
        $arm!(Min, f64, bin_min);
        $arm!(Min, f32, bin_min);
        $arm!(Min, i64, bin_min);
        $arm!(Min, u64, bin_min);
        $arm!(Max, f64, bin_max);
        $arm!(Max, f32, bin_max);
        $arm!(Max, i64, bin_max);
        $arm!(Max, u64, bin_max);
        $arm!(LOr, bool, bin_lor);
        $arm!(LAnd, bool, mul_land);
    };
}

/// The unary-op table: `$arm!(tag, type, opf)`.
macro_rules! with_registered_unops {
    ($arm:ident) => {
        $arm!(Identity, f64, map_clone);
        $arm!(Identity, f32, map_clone);
        $arm!(Identity, i64, map_clone);
        $arm!(Identity, u64, map_clone);
        $arm!(Identity, bool, map_clone);
        $arm!(Ainv, f64, uop_ainv);
        $arm!(Ainv, f32, uop_ainv);
        $arm!(Ainv, i64, uop_ainv);
        $arm!(Abs, f64, uop_abs_f64);
        $arm!(Abs, f32, uop_abs_f32);
        $arm!(Abs, i64, uop_abs_i64);
        $arm!(Lnot, bool, uop_lnot);
    };
}

/// Resolves a semiring row's terminal selector to the concrete early-exit
/// test the monomorphic kernel takes. Fn items, so the `Some` variants
/// stay zero-sized.
macro_rules! term_of {
    (none_term, $t:ty) => {
        None::<fn(&$t) -> bool>
    };
    (some_term_min, $t:ty) => {
        Some(term_min::<$t>)
    };
    (some_term_max, $t:ty) => {
        Some(term_max::<$t>)
    };
    (some_term_true, $t:ty) => {
        Some(term_true)
    };
    (some_term_always, $t:ty) => {
        Some(term_always::<$t>)
    };
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------
//
// Tag arguments are `Option<BuiltinOp>` (from `Monoid::builtin()` /
// `BinaryOp::builtin()`) rather than operator objects so one entry point
// serves both argument orders of `Semiring` (mxv's `Semiring<A, X, C>`
// vs. vxm's `Semiring<X, A, C>`): every registered multiply is
// commutative and same-typed, so operand order does not matter.

/// The element-map hook shape the fused entry points take: the DAG
/// drain's composed apply/select chain for one side of a kernel, typed at
/// the *caller's* generic element type.
pub type FusedHook<'a, T> = &'a (dyn Fn(usize, &T) -> Option<T> + Sync);

/// Builds the monomorphized adapter for a caller-typed fused hook inside
/// a registry arm whose `TypeId` guards have already passed: bridges
/// `Fn(usize, &X) -> Option<X>` to the `$t` the kernel instantiation
/// wants. The casts cannot fail post-guard; if one ever did the entry is
/// dropped, matching the registry's no-panic posture.
macro_rules! hook_adapter {
    ($hook:expr, $src:ty, $t:ty) => {
        $hook.map(|f| {
            move |j: usize, v: &$t| -> Option<$t> {
                let vs = cast_ref::<$t, $src>(v)?;
                f(j, vs).and_then(cast_val::<$src, $t>)
            }
        })
    };
}

/// Pull-direction `y = A ⊕.⊗ x` through a registered instantiation.
pub fn try_spmv<A, X, Z>(
    ctx: &Context,
    a: &Csr<A>,
    x: &SparseVec<X>,
    add_tag: Option<BuiltinOp>,
    mul_tag: Option<BuiltinOp>,
) -> Option<SparseVec<Z>>
where
    A: ValueType,
    X: ValueType,
    Z: ValueType,
{
    try_spmv_fused(ctx, a, x, add_tag, mul_tag, None, None)
}

/// [`try_spmv`] with fused pre/post element maps folded into the numeric
/// phase (nonblocking DAG cross-operation fusion, paper §III).
pub fn try_spmv_fused<A, X, Z>(
    ctx: &Context,
    a: &Csr<A>,
    x: &SparseVec<X>,
    add_tag: Option<BuiltinOp>,
    mul_tag: Option<BuiltinOp>,
    pre: Option<FusedHook<'_, X>>,
    post: Option<FusedHook<'_, Z>>,
) -> Option<SparseVec<Z>>
where
    A: ValueType,
    X: ValueType,
    Z: ValueType,
{
    if !enabled() {
        return None;
    }
    macro_rules! arm {
        ($add:ident, $mul:ident, $t:ty, $fold:ident, $acc:ident, $mulf:ident, $term:ident) => {
            if add_tag == Some(BuiltinOp::$add)
                && mul_tag == Some(BuiltinOp::$mul)
                && TypeId::of::<A>() == TypeId::of::<$t>()
                && TypeId::of::<X>() == TypeId::of::<$t>()
                && TypeId::of::<Z>() == TypeId::of::<$t>()
            {
                let at = cast_ref::<Csr<A>, Csr<$t>>(a)?;
                let xt = cast_ref::<SparseVec<X>, SparseVec<$t>>(x)?;
                let pre_t = hook_adapter!(pre, X, $t);
                let post_t = hook_adapter!(post, Z, $t);
                let y = spmv::spmv_fused(
                    ctx,
                    at,
                    xt,
                    $mulf,
                    $fold,
                    term_of!($term, $t),
                    pre_t
                        .as_ref()
                        .map(|f| f as &(dyn Fn(usize, &$t) -> Option<$t> + Sync)),
                    post_t
                        .as_ref()
                        .map(|f| f as &(dyn Fn(usize, &$t) -> Option<$t> + Sync)),
                );
                let y = cast_val::<SparseVec<$t>, SparseVec<Z>>(y)?;
                record_pick("mxv", ctx.id(), true);
                return Some(y);
            }
        };
    }
    with_registered_semirings!(arm);
    None
}

/// Pull-direction `y = A ⊕.⊗ x` over a bitmap-format frontier through a
/// registered instantiation.
pub fn try_spmv_bitmap<A, X, Z>(
    ctx: &Context,
    a: &Csr<A>,
    x: &BitmapVec<X>,
    add_tag: Option<BuiltinOp>,
    mul_tag: Option<BuiltinOp>,
) -> Option<SparseVec<Z>>
where
    A: ValueType,
    X: ValueType,
    Z: ValueType,
{
    try_spmv_bitmap_fused(ctx, a, x, add_tag, mul_tag, None, None)
}

/// [`try_spmv_bitmap`] with fused pre/post element maps — the bitmap
/// frontier format survives into the fused pipeline without a format
/// conversion.
pub fn try_spmv_bitmap_fused<A, X, Z>(
    ctx: &Context,
    a: &Csr<A>,
    x: &BitmapVec<X>,
    add_tag: Option<BuiltinOp>,
    mul_tag: Option<BuiltinOp>,
    pre: Option<FusedHook<'_, X>>,
    post: Option<FusedHook<'_, Z>>,
) -> Option<SparseVec<Z>>
where
    A: ValueType,
    X: ValueType,
    Z: ValueType,
{
    if !enabled() {
        return None;
    }
    macro_rules! arm {
        ($add:ident, $mul:ident, $t:ty, $fold:ident, $acc:ident, $mulf:ident, $term:ident) => {
            if add_tag == Some(BuiltinOp::$add)
                && mul_tag == Some(BuiltinOp::$mul)
                && TypeId::of::<A>() == TypeId::of::<$t>()
                && TypeId::of::<X>() == TypeId::of::<$t>()
                && TypeId::of::<Z>() == TypeId::of::<$t>()
            {
                let at = cast_ref::<Csr<A>, Csr<$t>>(a)?;
                let xt = cast_ref::<BitmapVec<X>, BitmapVec<$t>>(x)?;
                let pre_t = hook_adapter!(pre, X, $t);
                let post_t = hook_adapter!(post, Z, $t);
                let y = spmv::spmv_bitmap_fused(
                    ctx,
                    at,
                    xt,
                    $mulf,
                    $fold,
                    term_of!($term, $t),
                    pre_t
                        .as_ref()
                        .map(|f| f as &(dyn Fn(usize, &$t) -> Option<$t> + Sync)),
                    post_t
                        .as_ref()
                        .map(|f| f as &(dyn Fn(usize, &$t) -> Option<$t> + Sync)),
                );
                let y = cast_val::<SparseVec<$t>, SparseVec<Z>>(y)?;
                record_pick("mxv", ctx.id(), true);
                return Some(y);
            }
        };
    }
    with_registered_semirings!(arm);
    None
}

/// Push-direction `yᵀ = xᵀ ⊕.⊗ A` through a registered instantiation.
pub fn try_vxm<X, A, Z>(
    ctx: &Context,
    x: &SparseVec<X>,
    a: &Csr<A>,
    add_tag: Option<BuiltinOp>,
    mul_tag: Option<BuiltinOp>,
) -> Option<SparseVec<Z>>
where
    X: ValueType,
    A: ValueType,
    Z: ValueType,
{
    try_vxm_fused(ctx, x, a, add_tag, mul_tag, None, None, None)
}

/// [`try_vxm`] with fused pre/post element maps and an optional masked
/// scatter: `allowed` is the mask's column predicate (already folded with
/// the complement flag), letting the registered kernel skip disallowed
/// columns before they ever reach an accumulator.
#[allow(clippy::too_many_arguments)]
pub fn try_vxm_fused<X, A, Z>(
    ctx: &Context,
    x: &SparseVec<X>,
    a: &Csr<A>,
    add_tag: Option<BuiltinOp>,
    mul_tag: Option<BuiltinOp>,
    pre: Option<FusedHook<'_, X>>,
    post: Option<FusedHook<'_, Z>>,
    allowed: Option<&(dyn Fn(usize) -> bool + Sync)>,
) -> Option<SparseVec<Z>>
where
    X: ValueType,
    A: ValueType,
    Z: ValueType,
{
    if !enabled() {
        return None;
    }
    macro_rules! arm {
        ($add:ident, $mul:ident, $t:ty, $fold:ident, $acc:ident, $mulf:ident, $term:ident) => {
            if add_tag == Some(BuiltinOp::$add)
                && mul_tag == Some(BuiltinOp::$mul)
                && TypeId::of::<A>() == TypeId::of::<$t>()
                && TypeId::of::<X>() == TypeId::of::<$t>()
                && TypeId::of::<Z>() == TypeId::of::<$t>()
            {
                let xt = cast_ref::<SparseVec<X>, SparseVec<$t>>(x)?;
                let at = cast_ref::<Csr<A>, Csr<$t>>(a)?;
                let pre_t = hook_adapter!(pre, X, $t);
                let post_t = hook_adapter!(post, Z, $t);
                let y = spmv::vxm_fused(
                    ctx,
                    xt,
                    at,
                    $mulf,
                    $fold,
                    pre_t
                        .as_ref()
                        .map(|f| f as &(dyn Fn(usize, &$t) -> Option<$t> + Sync)),
                    post_t
                        .as_ref()
                        .map(|f| f as &(dyn Fn(usize, &$t) -> Option<$t> + Sync)),
                    allowed,
                );
                let y = cast_val::<SparseVec<$t>, SparseVec<Z>>(y)?;
                record_pick("vxm", ctx.id(), true);
                return Some(y);
            }
        };
    }
    with_registered_semirings!(arm);
    None
}

/// Unmasked `C = A ⊕.⊗ B` through a registered instantiation.
pub fn try_spgemm<A, B, Z>(
    ctx: &Context,
    a: &Csr<A>,
    b: &Csr<B>,
    add_tag: Option<BuiltinOp>,
    mul_tag: Option<BuiltinOp>,
) -> Option<Csr<Z>>
where
    A: ValueType,
    B: ValueType,
    Z: ValueType,
{
    if !enabled() {
        return None;
    }
    macro_rules! arm {
        ($add:ident, $mul:ident, $t:ty, $fold:ident, $acc:ident, $mulf:ident, $term:ident) => {
            if add_tag == Some(BuiltinOp::$add)
                && mul_tag == Some(BuiltinOp::$mul)
                && TypeId::of::<A>() == TypeId::of::<$t>()
                && TypeId::of::<B>() == TypeId::of::<$t>()
                && TypeId::of::<Z>() == TypeId::of::<$t>()
            {
                let at = cast_ref::<Csr<A>, Csr<$t>>(a)?;
                let bt = cast_ref::<Csr<B>, Csr<$t>>(b)?;
                let c = spgemm::spgemm(ctx, at, bt, $mulf, $acc);
                let c = cast_val::<Csr<$t>, Csr<Z>>(c)?;
                record_pick("mxm", ctx.id(), true);
                return Some(c);
            }
        };
    }
    with_registered_semirings!(arm);
    None
}

/// Masked `C⟨M⟩ = A ⊕.⊗ B` (boolean masks only) through a registered
/// instantiation.
pub fn try_spgemm_masked<M, A, B, Z>(
    ctx: &Context,
    mask: &Csr<M>,
    complement: bool,
    a: &Csr<A>,
    b: &Csr<B>,
    add_tag: Option<BuiltinOp>,
    mul_tag: Option<BuiltinOp>,
) -> Option<Csr<Z>>
where
    M: ValueType,
    A: ValueType,
    B: ValueType,
    Z: ValueType,
{
    if !enabled() || TypeId::of::<M>() != TypeId::of::<bool>() {
        return None;
    }
    macro_rules! arm {
        ($add:ident, $mul:ident, $t:ty, $fold:ident, $acc:ident, $mulf:ident, $term:ident) => {
            if add_tag == Some(BuiltinOp::$add)
                && mul_tag == Some(BuiltinOp::$mul)
                && TypeId::of::<A>() == TypeId::of::<$t>()
                && TypeId::of::<B>() == TypeId::of::<$t>()
                && TypeId::of::<Z>() == TypeId::of::<$t>()
            {
                let mt = cast_ref::<Csr<M>, Csr<bool>>(mask)?;
                let at = cast_ref::<Csr<A>, Csr<$t>>(a)?;
                let bt = cast_ref::<Csr<B>, Csr<$t>>(b)?;
                let c = spgemm::spgemm_masked(ctx, mt, complement, pred_bool, at, bt, $mulf, $acc);
                let c = cast_val::<Csr<$t>, Csr<Z>>(c)?;
                record_pick("mxm", ctx.id(), true);
                return Some(c);
            }
        };
    }
    with_registered_semirings!(arm);
    None
}

/// Matrix element-wise union (`ewise_add`) through a registered binop.
pub fn try_ewise_union<T>(
    ctx: &Context,
    a: &Csr<T>,
    b: &Csr<T>,
    tag: Option<BuiltinOp>,
) -> Option<Csr<T>>
where
    T: ValueType,
{
    if !enabled() {
        return None;
    }
    macro_rules! arm {
        ($op:ident, $t:ty, $opf:ident) => {
            if tag == Some(BuiltinOp::$op) && TypeId::of::<T>() == TypeId::of::<$t>() {
                let at = cast_ref::<Csr<T>, Csr<$t>>(a)?;
                let bt = cast_ref::<Csr<T>, Csr<$t>>(b)?;
                let c = ewise::ewise_union(ctx, at, bt, $opf);
                let c = cast_val::<Csr<$t>, Csr<T>>(c)?;
                record_pick("ewise_add", ctx.id(), true);
                return Some(c);
            }
        };
    }
    with_registered_binops!(arm);
    None
}

/// Matrix element-wise intersection (`ewise_mult`) through a registered
/// binop.
pub fn try_ewise_intersect<A, B, Z>(
    ctx: &Context,
    a: &Csr<A>,
    b: &Csr<B>,
    tag: Option<BuiltinOp>,
) -> Option<Csr<Z>>
where
    A: ValueType,
    B: ValueType,
    Z: ValueType,
{
    if !enabled() {
        return None;
    }
    macro_rules! arm {
        ($op:ident, $t:ty, $opf:ident) => {
            if tag == Some(BuiltinOp::$op)
                && TypeId::of::<A>() == TypeId::of::<$t>()
                && TypeId::of::<B>() == TypeId::of::<$t>()
                && TypeId::of::<Z>() == TypeId::of::<$t>()
            {
                let at = cast_ref::<Csr<A>, Csr<$t>>(a)?;
                let bt = cast_ref::<Csr<B>, Csr<$t>>(b)?;
                let c = ewise::ewise_intersect(ctx, at, bt, $opf);
                let c = cast_val::<Csr<$t>, Csr<Z>>(c)?;
                record_pick("ewise_mult", ctx.id(), true);
                return Some(c);
            }
        };
    }
    with_registered_binops!(arm);
    None
}

/// Vector element-wise union through a registered binop. The vector
/// kernels take no `Context`; `ctx_id` feeds the decision event.
pub fn try_svec_union<T>(
    a: &SparseVec<T>,
    b: &SparseVec<T>,
    tag: Option<BuiltinOp>,
    ctx_id: u64,
) -> Option<SparseVec<T>>
where
    T: ValueType,
{
    if !enabled() {
        return None;
    }
    macro_rules! arm {
        ($op:ident, $t:ty, $opf:ident) => {
            if tag == Some(BuiltinOp::$op) && TypeId::of::<T>() == TypeId::of::<$t>() {
                let at = cast_ref::<SparseVec<T>, SparseVec<$t>>(a)?;
                let bt = cast_ref::<SparseVec<T>, SparseVec<$t>>(b)?;
                let c = ewise::svec_union(at, bt, $opf);
                let c = cast_val::<SparseVec<$t>, SparseVec<T>>(c)?;
                record_pick("ewise_add_v", ctx_id, true);
                return Some(c);
            }
        };
    }
    with_registered_binops!(arm);
    None
}

/// Vector element-wise intersection through a registered binop.
pub fn try_svec_intersect<A, B, Z>(
    a: &SparseVec<A>,
    b: &SparseVec<B>,
    tag: Option<BuiltinOp>,
    ctx_id: u64,
) -> Option<SparseVec<Z>>
where
    A: ValueType,
    B: ValueType,
    Z: ValueType,
{
    if !enabled() {
        return None;
    }
    macro_rules! arm {
        ($op:ident, $t:ty, $opf:ident) => {
            if tag == Some(BuiltinOp::$op)
                && TypeId::of::<A>() == TypeId::of::<$t>()
                && TypeId::of::<B>() == TypeId::of::<$t>()
                && TypeId::of::<Z>() == TypeId::of::<$t>()
            {
                let at = cast_ref::<SparseVec<A>, SparseVec<$t>>(a)?;
                let bt = cast_ref::<SparseVec<B>, SparseVec<$t>>(b)?;
                let c = ewise::svec_intersect(at, bt, $opf);
                let c = cast_val::<SparseVec<$t>, SparseVec<Z>>(c)?;
                record_pick("ewise_mult_v", ctx_id, true);
                return Some(c);
            }
        };
    }
    with_registered_binops!(arm);
    None
}

/// Full-matrix reduction through a registered monoid (keyed on the add
/// tag alone — each (add, type) pair appears at most once in the semiring
/// table). Outer `Option` = registry hit; inner = the reduction's result
/// (`None` for an empty matrix).
pub fn try_reduce_csr<T>(ctx: &Context, a: &Csr<T>, add_tag: Option<BuiltinOp>) -> Option<Option<T>>
where
    T: ValueType,
{
    if !enabled() {
        return None;
    }
    macro_rules! arm {
        ($add:ident, $mul:ident, $t:ty, $fold:ident, $acc:ident, $mulf:ident, $term:ident) => {
            if add_tag == Some(BuiltinOp::$add) && TypeId::of::<T>() == TypeId::of::<$t>() {
                let at = cast_ref::<Csr<T>, Csr<$t>>(a)?;
                let term = term_of!($term, $t);
                let r = at.reduce_all(
                    ctx,
                    map_clone,
                    $fold,
                    term.as_ref().map(|t| t as &(dyn Fn(&$t) -> bool + Sync)),
                );
                let r = match r {
                    Some(v) => Some(cast_val::<$t, T>(v)?),
                    None => None,
                };
                record_pick("reduce", ctx.id(), true);
                return Some(r);
            }
        };
    }
    with_registered_semirings!(arm);
    None
}

/// Full-vector reduction through a registered monoid.
pub fn try_reduce_svec<T>(
    u: &SparseVec<T>,
    add_tag: Option<BuiltinOp>,
    ctx_id: u64,
) -> Option<Option<T>>
where
    T: ValueType,
{
    if !enabled() {
        return None;
    }
    macro_rules! arm {
        ($add:ident, $mul:ident, $t:ty, $fold:ident, $acc:ident, $mulf:ident, $term:ident) => {
            if add_tag == Some(BuiltinOp::$add) && TypeId::of::<T>() == TypeId::of::<$t>() {
                let ut = cast_ref::<SparseVec<T>, SparseVec<$t>>(u)?;
                let term = term_of!($term, $t);
                let r = ut.reduce(
                    map_clone,
                    $fold,
                    term.as_ref().map(|t| t as &dyn Fn(&$t) -> bool),
                );
                let r = match r {
                    Some(v) => Some(cast_val::<$t, T>(v)?),
                    None => None,
                };
                record_pick("reduce_v", ctx_id, true);
                return Some(r);
            }
        };
    }
    with_registered_semirings!(arm);
    None
}

/// Matrix `apply` through a registered unary op.
pub fn try_apply_csr<A, Z>(ctx: &Context, a: &Csr<A>, tag: Option<BuiltinUnaryOp>) -> Option<Csr<Z>>
where
    A: ValueType,
    Z: ValueType,
{
    if !enabled() {
        return None;
    }
    macro_rules! arm {
        ($op:ident, $t:ty, $opf:ident) => {
            if tag == Some(BuiltinUnaryOp::$op)
                && TypeId::of::<A>() == TypeId::of::<$t>()
                && TypeId::of::<Z>() == TypeId::of::<$t>()
            {
                let at = cast_ref::<Csr<A>, Csr<$t>>(a)?;
                let c: Csr<$t> = at.map(ctx, $opf);
                let c = cast_val::<Csr<$t>, Csr<Z>>(c)?;
                record_pick("apply", ctx.id(), true);
                return Some(c);
            }
        };
    }
    with_registered_unops!(arm);
    None
}

/// Vector `apply` through a registered unary op.
pub fn try_apply_svec<A, Z>(
    u: &SparseVec<A>,
    tag: Option<BuiltinUnaryOp>,
    ctx_id: u64,
) -> Option<SparseVec<Z>>
where
    A: ValueType,
    Z: ValueType,
{
    if !enabled() {
        return None;
    }
    macro_rules! arm {
        ($op:ident, $t:ty, $opf:ident) => {
            if tag == Some(BuiltinUnaryOp::$op)
                && TypeId::of::<A>() == TypeId::of::<$t>()
                && TypeId::of::<Z>() == TypeId::of::<$t>()
            {
                let ut = cast_ref::<SparseVec<A>, SparseVec<$t>>(u)?;
                let c: SparseVec<$t> = ut.map_with_index(|_, v| $opf(v));
                let c = cast_val::<SparseVec<$t>, SparseVec<Z>>(c)?;
                record_pick("apply_v", ctx_id, true);
                return Some(c);
            }
        };
    }
    with_registered_unops!(arm);
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{Monoid, Semiring};

    /// Serializes tests that flip the global dispatch knob.
    fn serialize() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn small_csr() -> Csr<i64> {
        Csr::from_parts(2, 2, vec![0, 2, 3], vec![0, 1, 1], vec![1i64, 2, 3]).unwrap()
    }

    #[test]
    fn claims_registered_semiring_only() {
        let _g = serialize();
        let ctx = graphblas_exec::global_context();
        force_dispatch(Some(true));
        let a = small_csr();
        let x = SparseVec::from_parts(2, vec![0, 1], vec![1i64, 1]).unwrap();
        let sr = Semiring::<i64, i64, i64>::plus_times();
        let y: Option<SparseVec<i64>> =
            try_spmv(&ctx, &a, &x, sr.add().builtin(), sr.mul().builtin());
        let y = y.expect("plus_times/i64 is registered");
        assert_eq!(y.get(0), Some(&3));
        assert_eq!(y.get(1), Some(&3));
        // An untagged user semiring is never claimed.
        let user = Semiring::<i64, i64, i64>::new(
            Monoid::new(
                crate::ops::BinaryOp::new("uadd", |p: &i64, q: &i64| p + q),
                0,
            ),
            crate::ops::BinaryOp::new("umul", |x: &i64, y: &i64| x * y),
        );
        let miss: Option<SparseVec<i64>> =
            try_spmv(&ctx, &a, &x, user.add().builtin(), user.mul().builtin());
        assert!(miss.is_none());
        // An unregistered type is never claimed.
        let a32 = Csr::from_parts(1, 1, vec![0, 1], vec![0], vec![5i32]).unwrap();
        let x32 = SparseVec::from_parts(1, vec![0], vec![2i32]).unwrap();
        let sr32 = Semiring::<i32, i32, i32>::plus_times();
        let miss32: Option<SparseVec<i32>> =
            try_spmv(&ctx, &a32, &x32, sr32.add().builtin(), sr32.mul().builtin());
        assert!(miss32.is_none());
        force_dispatch(None);
    }

    #[test]
    fn force_dyn_disables_every_entry_point() {
        let _g = serialize();
        let ctx = graphblas_exec::global_context();
        force_dispatch(Some(false));
        assert!(!enabled());
        let a = small_csr();
        let sr = Semiring::<i64, i64, i64>::plus_times();
        let miss: Option<Csr<i64>> =
            try_spgemm(&ctx, &a, &a, sr.add().builtin(), sr.mul().builtin());
        assert!(miss.is_none());
        force_dispatch(Some(true));
        assert!(enabled());
        let hit: Option<Csr<i64>> =
            try_spgemm(&ctx, &a, &a, sr.add().builtin(), sr.mul().builtin());
        assert!(hit.is_some());
        force_dispatch(None);
    }

    #[test]
    fn reduce_reuses_semiring_table_by_add_tag() {
        let _g = serialize();
        let ctx = graphblas_exec::global_context();
        force_dispatch(Some(true));
        let a = small_csr();
        let m = Monoid::<i64>::plus();
        let r = try_reduce_csr(&ctx, &a, m.builtin());
        assert_eq!(r, Some(Some(6)));
        // TIMES is registered only as a multiply, never as an add monoid.
        let times = Monoid::<i64>::times();
        assert!(try_reduce_csr(&ctx, &a, times.builtin()).is_none());
        force_dispatch(None);
    }
}
