//! Monoids (`GrB_Monoid`): an associative binary operator on a single
//! domain together with its identity, and optionally a *terminal*
//! (annihilator) value enabling early-exit reductions.

use std::sync::Arc;

use crate::error::{Error, ExecErrorKind, GrbResult};
use crate::ops::binary::{BinaryOp, BuiltinOp};
use crate::scalar::Scalar;
use crate::types::{BoundedValue, One, ValueType, Zero};

/// A commutative monoid over domain `T`.
#[derive(Clone)]
pub struct Monoid<T> {
    op: BinaryOp<T, T, T>,
    identity: T,
    terminal: Option<Arc<dyn Fn(&T) -> bool + Send + Sync>>,
    /// Set only by the canonical builtin constructors (`plus()`, `min()`,
    /// …): the kernel-registry identity of this monoid *as constructed*,
    /// canonical identity and terminal included. Customizing the terminal
    /// (`with_terminal_pred`) clears it, because the registry's static
    /// kernels bake in the canonical terminal semantics.
    builtin: Option<BuiltinOp>,
}

impl<T: std::fmt::Debug> std::fmt::Debug for Monoid<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Monoid({}, identity: {:?}, terminal: {})",
            self.op.name(),
            self.identity,
            self.terminal.is_some()
        )
    }
}

impl<T: ValueType> Monoid<T> {
    /// Creates a monoid from an operator and identity (`GrB_Monoid_new`).
    pub fn new(op: BinaryOp<T, T, T>, identity: T) -> Self {
        Monoid {
            op,
            identity,
            terminal: None,
            builtin: None,
        }
    }

    /// The Table II `GrB_Scalar` variant of `GrB_Monoid_new`: the identity
    /// comes from a GraphBLAS scalar, which must be non-empty
    /// (`GrB_EMPTY_OBJECT` otherwise).
    pub fn new_scalar(op: BinaryOp<T, T, T>, identity: &Scalar<T>) -> GrbResult<Self> {
        match identity.extract_element()? {
            Some(v) => Ok(Monoid::new(op, v)),
            None => Err(Error::exec(
                ExecErrorKind::EmptyObject,
                "Monoid::new_scalar requires a non-empty identity scalar",
            )),
        }
    }

    /// Adds a terminal (annihilator) value test: once a reduction's
    /// accumulator satisfies it, the result can no longer change.
    pub fn with_terminal_pred(mut self, pred: impl Fn(&T) -> bool + Send + Sync + 'static) -> Self {
        self.terminal = Some(Arc::new(pred));
        // A custom terminal departs from the canonical builtin shape; the
        // registry must no longer claim this monoid.
        self.builtin = None;
        self
    }

    /// The builtin identity tag (kernel-registry dispatch key): present
    /// only when this monoid is exactly one of the canonical builtins.
    #[inline]
    pub fn builtin(&self) -> Option<BuiltinOp> {
        self.builtin
    }

    /// The underlying binary operator.
    pub fn op(&self) -> &BinaryOp<T, T, T> {
        &self.op
    }

    /// The identity element.
    pub fn identity(&self) -> &T {
        &self.identity
    }

    /// The terminal test, if one is declared.
    pub fn terminal(&self) -> Option<&(dyn Fn(&T) -> bool + Send + Sync)> {
        self.terminal.as_deref()
    }

    /// Applies the monoid operator.
    #[inline]
    pub fn apply(&self, x: &T, y: &T) -> T {
        self.op.apply(x, y)
    }
}

impl<T: ValueType + PartialEq> Monoid<T> {
    /// Declares a terminal *value* (annihilator), e.g. `true` for LOR.
    pub fn with_terminal(self, value: T) -> Self {
        self.with_terminal_pred(move |x| *x == value)
    }
}

impl<T: ValueType + Copy + std::ops::Add<Output = T> + Zero> Monoid<T> {
    /// `GrB_PLUS_MONOID_*`: (+, 0).
    pub fn plus() -> Self {
        let mut m = Monoid::new(BinaryOp::plus(), T::zero());
        m.builtin = Some(BuiltinOp::Plus);
        m
    }
}

impl<T: ValueType + Copy + std::ops::Mul<Output = T> + One> Monoid<T> {
    /// `GrB_TIMES_MONOID_*`: (×, 1). No terminal: integer 0 annihilates,
    /// but float 0 does not (0 × NaN ≠ 0), so we stay conservative.
    pub fn times() -> Self {
        let mut m = Monoid::new(BinaryOp::times(), T::one());
        m.builtin = Some(BuiltinOp::Times);
        m
    }
}

impl<T: ValueType + Copy + PartialOrd + BoundedValue + PartialEq> Monoid<T> {
    /// `GrB_MIN_MONOID_*`: (min, +∞) with terminal −∞.
    pub fn min() -> Self {
        let mut m = Monoid::new(BinaryOp::min(), T::max_value()).with_terminal(T::min_value());
        m.builtin = Some(BuiltinOp::Min);
        m
    }

    /// `GrB_MAX_MONOID_*`: (max, −∞) with terminal +∞.
    pub fn max() -> Self {
        let mut m = Monoid::new(BinaryOp::max(), T::min_value()).with_terminal(T::max_value());
        m.builtin = Some(BuiltinOp::Max);
        m
    }
}

impl<T: ValueType + Zero> Monoid<T> {
    /// `GxB_ANY_MONOID_*`: keeps whichever operand arrives first; every
    /// value is terminal (a reduction may stop at the first hit). The
    /// workhorse add monoid of structural semirings (`any_pair`), where
    /// only *presence* matters and the first witness wins.
    pub fn any() -> Self {
        let mut m = Monoid::new(BinaryOp::any(), T::zero()).with_terminal_pred(|_| true);
        m.builtin = Some(BuiltinOp::Any);
        m
    }
}

impl Monoid<bool> {
    /// `GrB_LOR_MONOID_BOOL`: (∨, false) with terminal true.
    pub fn lor() -> Self {
        let mut m = Monoid::new(BinaryOp::lor(), false).with_terminal(true);
        m.builtin = Some(BuiltinOp::LOr);
        m
    }

    /// `GrB_LAND_MONOID_BOOL`: (∧, true) with terminal false.
    pub fn land() -> Self {
        let mut m = Monoid::new(BinaryOp::land(), true).with_terminal(false);
        m.builtin = Some(BuiltinOp::LAnd);
        m
    }

    /// `GrB_LXOR_MONOID_BOOL`: (⊕, false).
    pub fn lxor() -> Self {
        Monoid::new(BinaryOp::lxor(), false)
    }

    /// `GrB_LXNOR_MONOID_BOOL`: (=, true).
    pub fn lxnor() -> Self {
        Monoid::new(BinaryOp::lxnor(), true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predefined_identities() {
        assert_eq!(*Monoid::<i64>::plus().identity(), 0);
        assert_eq!(*Monoid::<f64>::times().identity(), 1.0);
        assert_eq!(*Monoid::<i32>::min().identity(), i32::MAX);
        assert_eq!(*Monoid::<u8>::max().identity(), 0);
        assert!(!*Monoid::lor().identity());
        assert!(*Monoid::land().identity());
    }

    #[test]
    fn terminals() {
        let lor = Monoid::lor();
        assert!(lor.terminal().unwrap()(&true));
        assert!(!lor.terminal().unwrap()(&false));
        let min = Monoid::<i32>::min();
        assert!(min.terminal().unwrap()(&i32::MIN));
        assert!(Monoid::<i64>::plus().terminal().is_none());
    }

    #[test]
    fn identity_laws_spot_check() {
        let m = Monoid::<i32>::plus();
        for x in [-5, 0, 42] {
            assert_eq!(m.apply(m.identity(), &x), x);
            assert_eq!(m.apply(&x, m.identity()), x);
        }
    }

    #[test]
    fn scalar_identity_variant() {
        let s = Scalar::<i64>::new().unwrap();
        // Empty scalar → EmptyObject execution error.
        let err = Monoid::new_scalar(BinaryOp::plus(), &s).unwrap_err();
        assert_eq!(err.code(), -106);
        s.set_element(7).unwrap();
        let m = Monoid::new_scalar(BinaryOp::plus(), &s).unwrap();
        assert_eq!(*m.identity(), 7);
    }

    #[test]
    fn custom_monoid_with_terminal_pred() {
        let sat = Monoid::new(
            BinaryOp::<u32, u32, u32>::new("sat_add", |a, b| a.saturating_add(*b)),
            0,
        )
        .with_terminal_pred(|x| *x == u32::MAX);
        assert_eq!(sat.apply(&u32::MAX, &5), u32::MAX);
        assert!(sat.terminal().unwrap()(&u32::MAX));
    }
}
