//! The `GrB_Scalar` object (paper §VI, Table I) — new in GraphBLAS 2.0.
//!
//! An opaque, possibly **empty** container for a single element of a
//! domain. Its two purposes per the paper:
//!
//! 1. collapse the per-type nonpolymorphic method variants (a `Scalar<T>`
//!    carries its domain in its type, so `true`-is-`int` style bugs are
//!    impossible), and
//! 2. make deferral uniform: `extractElement` into a scalar can return an
//!    *empty* scalar instead of a `GrB_NO_VALUE` code, and `reduce` into a
//!    scalar can stay pending in nonblocking mode — so scalars carry a
//!    pending-operation queue exactly like matrices and vectors.

use std::sync::Arc;

use graphblas_exec::sync::{Mutex, RwLock};
use graphblas_exec::{Context, Mode};

use crate::error::{ApiError, Error, ExecutionError, GrbResult};
use crate::introspect::ObjectStats;
use crate::pending::WaitMode;
use crate::types::ValueType;

pub(crate) type ScalarStage<T> = Box<dyn FnOnce(&mut Option<T>) -> GrbResult + Send>;

pub(crate) struct ScalarState<T> {
    pub value: Option<T>,
    pub pending: Vec<ScalarStage<T>>,
    pub err: Option<ExecutionError>,
}

impl<T> ScalarState<T> {
    /// Deep validation: a scalar has no Table III store to verify, so only
    /// the §V error bookkeeping applies (a poisoned scalar must hold no
    /// pending stages — `complete_internal` clears the sequence when it
    /// records the sticky error).
    pub(crate) fn check(&self) -> Result<(), crate::introspect::CheckError> {
        if self.err.is_some() && !self.pending.is_empty() {
            return Err(crate::introspect::CheckError::PendingAfterError {
                pending: self.pending.len(),
            });
        }
        Ok(())
    }

    /// Debug-build invariant gate (see `MatrixState::debug_check`).
    #[inline]
    pub(crate) fn debug_check(&self) {
        #[cfg(debug_assertions)]
        if let Err(e) = self.check() {
            panic!("scalar container invariant violated: {e}");
        }
    }
}

struct ScalarHandle<T> {
    ctx: RwLock<Context>,
    state: Mutex<ScalarState<T>>,
}

/// An opaque handle to a GraphBLAS scalar. Clones share the underlying
/// object (like copied `GrB_Scalar` handles in C).
#[derive(Clone)]
pub struct Scalar<T: ValueType> {
    inner: Arc<ScalarHandle<T>>,
}

impl<T: ValueType> crate::introspect::Check for Scalar<T> {
    /// Deep validation (`grb_check`): verifies the §V rule that a poisoned
    /// scalar holds no pending stages, without forcing completion.
    fn grb_check(&self) -> Result<(), crate::introspect::CheckError> {
        self.inner.state.lock().check()
    }
}

impl<T: ValueType> std::fmt::Debug for Scalar<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Scalar<{}>", std::any::type_name::<T>())
    }
}

impl<T: ValueType> Scalar<T> {
    /// `GrB_Scalar_new`: creates an empty scalar in the global context.
    ///
    /// # Examples
    ///
    /// ```
    /// use graphblas_core::Scalar;
    /// let s = Scalar::<i64>::new()?;
    /// assert_eq!(s.nvals()?, 0);          // scalars can be EMPTY (§VI)
    /// s.set_element(42)?;
    /// assert_eq!(s.extract_element()?, Some(42));
    /// # Ok::<(), graphblas_core::Error>(())
    /// ```
    pub fn new() -> GrbResult<Self> {
        Self::new_in(&graphblas_exec::global_context())
    }

    /// Creates an empty scalar bound to `ctx` (§IV context-aware
    /// constructor).
    pub fn new_in(ctx: &Context) -> GrbResult<Self> {
        Ok(Scalar {
            inner: Arc::new(ScalarHandle {
                ctx: RwLock::new(ctx.clone()),
                state: Mutex::new(ScalarState {
                    value: None,
                    pending: Vec::new(),
                    err: None,
                }),
            }),
        })
    }

    /// `GrB_Scalar_dup`: duplicates into a new scalar (completing first).
    pub fn dup(&self) -> GrbResult<Self> {
        let v = self.extract_element()?;
        let out = Self::new_in(&self.context())?;
        if let Some(v) = v {
            out.set_element(v)?;
        }
        Ok(out)
    }

    /// The context this scalar belongs to.
    pub fn context(&self) -> Context {
        self.inner.ctx.read().clone()
    }

    /// `GrB_Context_switch` for scalars.
    pub fn switch_context(&self, ctx: &Context) -> GrbResult {
        *self.inner.ctx.write() = ctx.clone();
        Ok(())
    }

    /// `GrB_Scalar_clear`: empties the scalar (also clears any pending
    /// operations and a sticky error state — the object is rebuilt).
    pub fn clear(&self) -> GrbResult {
        let mut st = self.inner.state.lock();
        st.pending.clear();
        st.err = None;
        st.value = None;
        Ok(())
    }

    /// `GrB_Scalar_nvals`: 0 or 1. Forces completion.
    pub fn nvals(&self) -> GrbResult<usize> {
        self.complete_internal()?;
        Ok(usize::from(self.inner.state.lock().value.is_some()))
    }

    /// `GrB_Scalar_setElement`. Replaces any pending sequence: the store
    /// becomes exactly this value.
    pub fn set_element(&self, v: T) -> GrbResult {
        let mut st = self.inner.state.lock();
        if let Some(e) = &st.err {
            return Err(Error::Execution(e.clone()));
        }
        // A plain overwrite makes earlier deferred computations on this
        // scalar unobservable; drop them rather than run them for nothing.
        st.pending.clear();
        st.value = Some(v);
        Ok(())
    }

    /// `GrB_Scalar_extractElement`: `Ok(None)` plays the role of the C
    /// API's `GrB_NO_VALUE` return. Forces completion.
    pub fn extract_element(&self) -> GrbResult<Option<T>> {
        self.complete_internal()?;
        Ok(self.inner.state.lock().value.clone())
    }

    /// `GrB_wait` on a scalar. Both modes drain the pending queue; a
    /// materializing wait additionally guarantees no further errors can be
    /// reported from the drained sequence (trivially true here once the
    /// queue is empty).
    pub fn wait(&self, _mode: WaitMode) -> GrbResult {
        self.complete_internal()
    }

    /// `GrB_error`: implementation-defined description of this object's
    /// error state (empty string when healthy).
    pub fn error_string(&self) -> String {
        self.inner
            .state
            .lock()
            .err
            .as_ref()
            .map(|e| e.to_string())
            .unwrap_or_default()
    }

    /// Whether this handle and `other` denote the same object.
    pub fn same_object(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// `GrB_get`-style introspection without forcing completion (see
    /// [`Matrix::stats`](crate::matrix::Matrix::stats)).
    pub fn stats(&self) -> ObjectStats {
        let ctx_id = self.context().id();
        let st = self.inner.state.lock();
        ObjectStats {
            kind: "scalar",
            nrows: 1,
            ncols: 1,
            nvals: u64::from(st.value.is_some()),
            pending: st.pending.len() as u64,
            format: "scalar",
            failed: st.err.is_some(),
            ctx: ctx_id,
        }
    }

    // --- crate-internal plumbing -----------------------------------------

    pub(crate) fn complete_internal(&self) -> GrbResult {
        let mut st = self.inner.state.lock();
        if let Some(e) = &st.err {
            return Err(Error::Execution(e.clone()));
        }
        let pending = std::mem::take(&mut st.pending);
        for stage in pending {
            if let Err(e) = stage(&mut st.value) {
                if let Error::Execution(exec) = &e {
                    st.err = Some(exec.clone());
                }
                st.pending.clear();
                st.debug_check();
                return Err(e);
            }
        }
        st.debug_check();
        Ok(())
    }

    /// Runs `stage` now (blocking context) or defers it (nonblocking).
    pub(crate) fn apply_write(&self, stage: ScalarStage<T>) -> GrbResult {
        let mode = self.context().mode();
        let mut st = self.inner.state.lock();
        if let Some(e) = &st.err {
            return Err(Error::Execution(e.clone()));
        }
        match mode {
            Mode::NonBlocking => {
                st.pending.push(stage);
                if graphblas_obs::enabled() {
                    // grblint: allow(relaxed-ordering); grbsa: protocol(counter) — monotonic obs counter.
                    graphblas_obs::counters::pending()
                        .opaques_enqueued
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    graphblas_obs::counters::note_pending_depth(st.pending.len());
                }
                Ok(())
            }
            Mode::Blocking => {
                let r = stage(&mut st.value);
                if let Err(Error::Execution(exec)) = &r {
                    st.err = Some(exec.clone());
                }
                r
            }
        }
    }

    /// Validates that this scalar shares `ctx` (§IV same-context rule).
    pub(crate) fn check_context(&self, ctx: &Context) -> GrbResult {
        if self.context().same(ctx) {
            Ok(())
        } else {
            Err(ApiError::ContextMismatch.into())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_lifecycle() {
        // new → empty
        let s = Scalar::<i64>::new().unwrap();
        assert_eq!(s.nvals().unwrap(), 0);
        assert_eq!(s.extract_element().unwrap(), None);
        // setElement → full
        s.set_element(42).unwrap();
        assert_eq!(s.nvals().unwrap(), 1);
        assert_eq!(s.extract_element().unwrap(), Some(42));
        // dup copies value into a distinct object
        let d = s.dup().unwrap();
        assert!(!d.same_object(&s));
        assert_eq!(d.extract_element().unwrap(), Some(42));
        s.set_element(1).unwrap();
        assert_eq!(d.extract_element().unwrap(), Some(42));
        // clear → empty again
        s.clear().unwrap();
        assert_eq!(s.nvals().unwrap(), 0);
    }

    #[test]
    fn dup_of_empty_is_empty() {
        let s = Scalar::<f32>::new().unwrap();
        let d = s.dup().unwrap();
        assert_eq!(d.nvals().unwrap(), 0);
    }

    #[test]
    fn handles_share_state() {
        let s = Scalar::<u8>::new().unwrap();
        let alias = s.clone();
        s.set_element(9).unwrap();
        assert_eq!(alias.extract_element().unwrap(), Some(9));
        assert!(alias.same_object(&s));
    }

    #[test]
    fn overwrite_replaces_value() {
        let s = Scalar::<String>::new().unwrap();
        s.set_element("a".into()).unwrap();
        s.set_element("b".into()).unwrap();
        assert_eq!(s.extract_element().unwrap().as_deref(), Some("b"));
    }

    #[test]
    fn error_string_empty_when_healthy() {
        let s = Scalar::<i32>::new().unwrap();
        assert_eq!(s.error_string(), "");
    }
}
