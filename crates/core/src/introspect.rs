//! `GrB_get`-style object introspection.
//!
//! GraphBLAS 2.0 objects are opaque, and under nonblocking execution (§III)
//! even their *contents* are in flux — operations may sit in the pending
//! sequence, storage may be in any Table III format, and an execution error
//! may be latent (§V). [`ObjectStats`] reports all of that without forcing
//! completion: querying never drains the sequence, converts storage, or
//! otherwise perturbs what it observes.

use graphblas_obs::JsonWriter;
use graphblas_sparse::FormatError;

/// A point-in-time description of one container's observable state.
///
/// Produced by `Matrix::stats()` / `Vector::stats()` / `Scalar::stats()`.
/// All fields describe the object *as stored right now*: `nvals` counts
/// elements in the current store and ignores queued stages, so it can
/// differ from what `nvals()` reports after completion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectStats {
    /// Object kind: `"matrix"`, `"vector"`, or `"scalar"`.
    pub kind: &'static str,
    /// Logical row count (vector length for vectors; 1 for scalars).
    pub nrows: u64,
    /// Logical column count (1 for vectors and scalars).
    pub ncols: u64,
    /// Stored elements in the current store (pre-completion).
    pub nvals: u64,
    /// Queued, not-yet-executed stages in the pending sequence.
    pub pending: u64,
    /// Current storage format (`"csr"`, `"csc"`, `"coo"`, `"dense"`,
    /// `"sparse"`, `"bitmap"`, `"full"`).
    pub format: &'static str,
    /// Whether a sticky execution error poisons the object (§V).
    pub failed: bool,
    /// Id of the context the object belongs to (§IV).
    pub ctx: u64,
}

impl ObjectStats {
    /// Serializes to a single JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("kind");
        w.string(self.kind);
        w.key("nrows");
        w.number(self.nrows);
        w.key("ncols");
        w.number(self.ncols);
        w.key("nvals");
        w.number(self.nvals);
        w.key("pending");
        w.number(self.pending);
        w.key("format");
        w.string(self.format);
        w.key("failed");
        w.boolean(self.failed);
        w.key("ctx");
        w.number(self.ctx);
        w.end_object();
        w.finish()
    }
}

/// Why a container failed deep validation ([`grb_check`]).
///
/// Unlike [`ObjectStats`] — which *reports* state — `grb_check` *verifies*
/// it: every Table III format invariant of the current store, the agreement
/// between the store's shape and the container's logical dimensions, and
/// the §V deferred-error bookkeeping (a poisoned object's pending sequence
/// must be empty, because `drain` discards the sequence when it records the
/// sticky error).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckError {
    /// The store violates its Table III format invariants.
    Format {
        /// The format the store claimed (`"csr"`, `"coo"`, …).
        format: &'static str,
        /// The underlying violation.
        source: FormatError,
    },
    /// The store's shape disagrees with the container's logical dimensions.
    ShapeMismatch {
        /// Logical `(nrows, ncols)` of the container.
        logical: (u64, u64),
        /// `(nrows, ncols)` of the current store.
        store: (u64, u64),
    },
    /// §V violation: a sticky execution error coexists with queued stages.
    PendingAfterError {
        /// Number of stages still queued.
        pending: usize,
    },
}

impl std::fmt::Display for CheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckError::Format { format, source } => {
                write!(f, "{format} store violates its format invariants: {source}")
            }
            CheckError::ShapeMismatch { logical, store } => write!(
                f,
                "store shape {}x{} disagrees with logical shape {}x{}",
                store.0, store.1, logical.0, logical.1
            ),
            CheckError::PendingAfterError { pending } => write!(
                f,
                "poisoned object still holds {pending} pending stage(s); \
                 drain must clear the sequence when it records the sticky error"
            ),
        }
    }
}

impl std::error::Error for CheckError {}

/// Deep container validation, implemented by `Matrix`, `Vector`, and
/// `Scalar`. Like [`ObjectStats`], checking never forces completion: it
/// validates the object *as stored right now*, pending stages and all.
pub trait Check {
    /// Verifies every internal invariant of the container.
    fn grb_check(&self) -> Result<(), CheckError>;
}

/// Free-function spelling of [`Check::grb_check`], mirroring how the C API
/// exposes `GxB_*_check`-style debug verifiers next to `GrB_get`.
// grblint: allow(grb-error-type) — diagnostic verifier: CheckError
// describes *why* a container is malformed, which no GrB_Info code can.
pub fn grb_check<O: Check>(obj: &O) -> Result<(), CheckError> {
    obj.grb_check()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_error_messages() {
        let e = CheckError::ShapeMismatch {
            logical: (3, 4),
            store: (4, 3),
        };
        assert!(e.to_string().contains("4x3"));
        assert!(e.to_string().contains("3x4"));
        let p = CheckError::PendingAfterError { pending: 2 };
        assert!(p.to_string().contains("2 pending"));
    }

    #[test]
    fn json_shape() {
        let s = ObjectStats {
            kind: "matrix",
            nrows: 3,
            ncols: 4,
            nvals: 2,
            pending: 1,
            format: "coo",
            failed: false,
            ctx: 7,
        };
        let j = s.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"kind\":\"matrix\""));
        assert!(j.contains("\"pending\":1"));
        assert!(j.contains("\"failed\":false"));
    }
}
