//! `GrB_get`-style object introspection.
//!
//! GraphBLAS 2.0 objects are opaque, and under nonblocking execution (§III)
//! even their *contents* are in flux — operations may sit in the pending
//! sequence, storage may be in any Table III format, and an execution error
//! may be latent (§V). [`ObjectStats`] reports all of that without forcing
//! completion: querying never drains the sequence, converts storage, or
//! otherwise perturbs what it observes.

use graphblas_obs::JsonWriter;

/// A point-in-time description of one container's observable state.
///
/// Produced by `Matrix::stats()` / `Vector::stats()` / `Scalar::stats()`.
/// All fields describe the object *as stored right now*: `nvals` counts
/// elements in the current store and ignores queued stages, so it can
/// differ from what `nvals()` reports after completion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectStats {
    /// Object kind: `"matrix"`, `"vector"`, or `"scalar"`.
    pub kind: &'static str,
    /// Logical row count (vector length for vectors; 1 for scalars).
    pub nrows: u64,
    /// Logical column count (1 for vectors and scalars).
    pub ncols: u64,
    /// Stored elements in the current store (pre-completion).
    pub nvals: u64,
    /// Queued, not-yet-executed stages in the pending sequence.
    pub pending: u64,
    /// Current storage format (`"csr"`, `"csc"`, `"coo"`, `"dense"`,
    /// `"sparse"`, `"full"`).
    pub format: &'static str,
    /// Whether a sticky execution error poisons the object (§V).
    pub failed: bool,
    /// Id of the context the object belongs to (§IV).
    pub ctx: u64,
}

impl ObjectStats {
    /// Serializes to a single JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("kind");
        w.string(self.kind);
        w.key("nrows");
        w.number(self.nrows);
        w.key("ncols");
        w.number(self.ncols);
        w.key("nvals");
        w.number(self.nvals);
        w.key("pending");
        w.number(self.pending);
        w.key("format");
        w.string(self.format);
        w.key("failed");
        w.boolean(self.failed);
        w.key("ctx");
        w.number(self.ctx);
        w.end_object();
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape() {
        let s = ObjectStats {
            kind: "matrix",
            nrows: 3,
            ncols: 4,
            nvals: 2,
            pending: 1,
            format: "coo",
            failed: false,
            ctx: 7,
        };
        let j = s.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"kind\":\"matrix\""));
        assert!(j.contains("\"pending\":1"));
        assert!(j.contains("\"failed\":false"));
    }
}
