//! The `GrB_Matrix` container: an opaque, thread-safe handle over sparse
//! storage with a deferred-operation sequence (paper §III).
//!
//! Handles are `Arc`-backed: cloning a `Matrix<T>` aliases the same object,
//! exactly like copying a `GrB_Matrix` handle in C. All state sits behind a
//! mutex, which gives the §III *thread-safety* guarantee (independent
//! method calls from different threads behave as some sequential
//! interleaving). For *shared* objects the user still provides the
//! happens-before edge — `wait(Complete)` plus an acquire/release flag, as
//! in the paper's Fig. 1 — because completion, not locking, is what makes
//! a sequence's results visible.
//!
//! Internally the storage format is lazy (Table III formats are kept
//! as-imported until a kernel needs CSR); `export_hint` reports whatever
//! the object currently holds.

use std::sync::Arc;

use graphblas_exec::sync::{Mutex, RwLock};
use graphblas_exec::{Context, Mode};
use graphblas_sparse::{Coo, Csc, Csr, Dense};

use crate::error::{ApiError, Error, ExecutionError, GrbResult};
use crate::introspect::ObjectStats;
use crate::ops::BinaryOp;
use crate::pending::{fuse_maps, MapFn, NodeKind, Stage, WaitMode};
use crate::scalar::Scalar;
use crate::types::{Index, MaskValue, ValueType};

/// How duplicate coordinates in a COO store are resolved when it is
/// converted to canonical form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CooDup {
    /// Duplicates are an execution error (import semantics, and `build`
    /// with a `None` dup — §IX).
    Reject,
    /// The most recently appended value wins (`setElement` semantics).
    LastWins,
}

/// The lazy internal storage of a matrix.
pub(crate) enum MatStore<T: ValueType> {
    Csr(Arc<Csr<T>>),
    Csc(Arc<Csc<T>>),
    Coo(Arc<Coo<T>>, CooDup),
    Dense(Arc<Dense<T>>),
}

impl<T: ValueType> Clone for MatStore<T> {
    fn clone(&self) -> Self {
        match self {
            MatStore::Csr(a) => MatStore::Csr(a.clone()),
            MatStore::Csc(a) => MatStore::Csc(a.clone()),
            MatStore::Coo(a, d) => MatStore::Coo(a.clone(), *d),
            MatStore::Dense(a) => MatStore::Dense(a.clone()),
        }
    }
}

impl<T: ValueType> MatStore<T> {
    /// Allocated buffer bytes of the current store. Shared (copy-on-write)
    /// stores are counted by every handle that reaches them, so the
    /// container gauges report *reachable* bytes — an upper bound on
    /// unique allocation.
    pub(crate) fn bytes(&self) -> u64 {
        match self {
            MatStore::Csr(a) => a.bytes(),
            MatStore::Csc(a) => a.bytes(),
            MatStore::Coo(a, _) => a.bytes(),
            MatStore::Dense(a) => a.bytes(),
        }
    }
}

pub(crate) struct MatrixState<T: ValueType> {
    pub nrows: usize,
    pub ncols: usize,
    pub store: MatStore<T>,
    pub pending: Vec<Stage<MatrixState<T>, T>>,
    pub err: Option<ExecutionError>,
    /// Memoized transpose, keyed by the identity of the CSR `Arc` it was
    /// computed from. Every mutation installs a new store `Arc`, so a
    /// pointer-equality check is a complete validity test (and holding the
    /// source `Arc` here rules out ABA reuse of the allocation). Guarded by
    /// the state mutex like everything else, which is what lets
    /// `check::sched` model the population race.
    pub transpose_cache: Option<(Arc<Csr<T>>, Arc<Csr<T>>)>,
    /// Store bytes this state last reported to the `obs::mem` container
    /// gauge (0 when telemetry was off at the last reconciliation).
    pub mem_bytes: u64,
    /// Context id the bytes above were charged to.
    pub mem_ctx: u64,
}

impl<T: ValueType> Drop for MatrixState<T> {
    fn drop(&mut self) {
        if self.mem_bytes != 0 {
            graphblas_obs::mem::adjust_container(self.mem_ctx, self.mem_bytes, 0);
        }
    }
}

impl<T: ValueType> MatrixState<T> {
    /// A clean state (no pending stages, no error, no caches) over `store`.
    pub(crate) fn fresh(nrows: usize, ncols: usize, store: MatStore<T>) -> Self {
        MatrixState {
            nrows,
            ncols,
            store,
            pending: Vec::new(),
            err: None,
            transpose_cache: None,
            mem_bytes: 0,
            mem_ctx: 0,
        }
    }

    /// Reconciles this container's allocated-store bytes with the
    /// `obs::mem` container gauge and the owning context's memory ledger.
    /// Cheap when telemetry is off (one relaxed load, nothing recorded)
    /// and self-correcting across toggles: it always releases exactly what
    /// it previously recorded before charging the new figure.
    pub(crate) fn note_mem(&mut self, ctx_id: u64) {
        let enabled = graphblas_obs::enabled();
        if !enabled && self.mem_bytes == 0 {
            return;
        }
        if ctx_id != self.mem_ctx && self.mem_bytes != 0 {
            // The handle moved contexts: zero the old ledger entry first.
            graphblas_obs::mem::adjust_container(self.mem_ctx, self.mem_bytes, 0);
            self.mem_bytes = 0;
        }
        self.mem_ctx = ctx_id;
        let new = if enabled { self.store.bytes() } else { 0 };
        if new != self.mem_bytes {
            graphblas_obs::mem::adjust_container(ctx_id, self.mem_bytes, new);
            self.mem_bytes = new;
        }
    }
    /// Converts the store to CSR in place (sorting rows when `sorted`).
    pub(crate) fn ensure_csr(&mut self, ctx: &Context, sorted: bool) -> GrbResult {
        let src_format = match &self.store {
            MatStore::Csr(_) => None,
            MatStore::Csc(_) => Some("csc"),
            MatStore::Coo(..) => Some("coo"),
            MatStore::Dense(_) => Some("dense"),
        };
        let csr: Arc<Csr<T>> = match &self.store {
            MatStore::Csr(a) => a.clone(),
            MatStore::Csc(c) => Arc::new(c.to_csr(ctx)),
            MatStore::Coo(coo, dup) => {
                let second = |_: &T, b: &T| b.clone();
                let converted = match dup {
                    CooDup::Reject => coo.to_csr(ctx, None)?,
                    CooDup::LastWins => coo.to_csr(ctx, Some(&second))?,
                };
                Arc::new(converted)
            }
            MatStore::Dense(d) => Arc::new(d.to_csr(ctx)),
        };
        let needs_sort = sorted && !csr.is_rows_sorted();
        let csr = if needs_sort {
            let mut owned = Arc::try_unwrap(csr).unwrap_or_else(|a| (*a).clone());
            let dups = owned.sort_rows(ctx);
            debug_assert!(!dups, "canonical CSR stores cannot contain duplicates");
            Arc::new(owned)
        } else {
            csr
        };
        if graphblas_obs::events::on() {
            // Emit only when work happened: a store already in (sorted)
            // CSR form is a no-op, not a conversion decision.
            if let Some(src) = src_format.or(needs_sort.then_some("unsorted")) {
                graphblas_obs::events::decision_convert_csr(
                    "matrix",
                    ctx.id(),
                    src,
                    csr.nnz() as u64,
                );
            }
        }
        self.store = MatStore::Csr(csr);
        self.note_mem(ctx.id());
        self.debug_check();
        Ok(())
    }

    /// Borrows the CSR store (must call [`Self::ensure_csr`] first).
    pub(crate) fn csr(&self) -> &Arc<Csr<T>> {
        match &self.store {
            MatStore::Csr(a) => a,
            _ => unreachable!("ensure_csr must precede csr()"),
        }
    }

    /// The transpose of the current CSR store (must call
    /// [`Self::ensure_csr`] first), memoized on the store `Arc`'s identity.
    /// A cache hit is O(1); a miss computes, records, and caches.
    pub(crate) fn transposed_csr(&mut self, ctx: &Context) -> Arc<Csr<T>> {
        let src = self.csr().clone();
        if let Some((key, t)) = &self.transpose_cache {
            if Arc::ptr_eq(key, &src) {
                if graphblas_obs::enabled() {
                    graphblas_obs::counters::record_transpose_cache(true);
                    graphblas_obs::events::decision_transpose(
                        ctx.id(),
                        true,
                        "memoized",
                        src.nnz() as u64,
                    );
                }
                return t.clone();
            }
        }
        let _ph = graphblas_obs::timeline::phase("mxv.transpose_build");
        let t = Arc::new(graphblas_sparse::transpose::transpose(ctx, &src));
        if graphblas_obs::enabled() {
            graphblas_obs::counters::record_transpose_cache(false);
            // A rebuild over a present-but-stale memo is the cache
            // invalidation path (the store Arc changed underneath it).
            let detail = if self.transpose_cache.is_some() {
                "invalidated"
            } else {
                "cold"
            };
            graphblas_obs::events::decision_transpose(ctx.id(), false, detail, src.nnz() as u64);
        }
        self.transpose_cache = Some((src, t.clone()));
        t
    }

    /// Drains the pending queue, fusing runs of map stages into single
    /// traversals. On an execution error the object is poisoned (§V: the
    /// output's contents become undefined; we record the error and keep it
    /// sticky).
    pub(crate) fn drain(&mut self, ctx: &Context) -> GrbResult {
        self.drain_as(ctx, "read")
    }

    /// [`Self::drain`] with an explicit force cause for the `DagForce`
    /// decision event ("read", "wait", "async", "self-input").
    pub(crate) fn drain_as(&mut self, ctx: &Context, cause: &'static str) -> GrbResult {
        if let Some(e) = &self.err {
            return Err(Error::Execution(e.clone()));
        }
        if self.pending.is_empty() {
            return Ok(());
        }
        let obs_on = graphblas_obs::enabled();
        let _sp = obs_on.then(|| graphblas_obs::span_ctx("drain", ctx.id()));
        if obs_on {
            // grblint: allow(relaxed-ordering); grbsa: protocol(counter) — monotonic obs counter.
            graphblas_obs::counters::pending()
                .drains
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
        let pending = std::mem::take(&mut self.pending);
        if pending.iter().any(|s| matches!(s, Stage::Node { .. })) {
            if obs_on {
                // grblint: allow(relaxed-ordering); grbsa: protocol(counter) — monotonic obs counter.
                graphblas_obs::counters::dag()
                    .forces
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
            if graphblas_obs::events::on() {
                graphblas_obs::events::decision_dag_force(
                    "matrix.drain",
                    ctx.id(),
                    cause,
                    pending.len() as u64,
                );
            }
        }
        let mut stages = pending.into_iter().peekable();
        let mut run: Vec<MapFn<T>> = Vec::new();
        let result = (|| {
            while let Some(stage) = stages.next() {
                match stage {
                    Stage::Map(f) => run.push(f),
                    Stage::Opaque(f) => {
                        self.flush_map_run(ctx, &mut run, "opaque-barrier")?;
                        if obs_on {
                            // grblint: allow(relaxed-ordering); grbsa: protocol(counter) — monotonic obs counter.
                            graphblas_obs::counters::pending()
                                .opaque_drains
                                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            graphblas_obs::events::decision_opaque_drain("matrix.drain", ctx.id());
                        }
                        let _ph = graphblas_obs::timeline::phase("drain.opaque");
                        f(self)?;
                    }
                    Stage::Node { kind: _, exec } => {
                        // Maps before a node transform the pre-node value;
                        // trailing maps transform the node's output and are
                        // handed to the node to fuse into its kernel.
                        self.flush_map_run(ctx, &mut run, "node-barrier")?;
                        let mut post: Vec<MapFn<T>> = Vec::new();
                        while matches!(stages.peek(), Some(Stage::Map(_))) {
                            if let Some(Stage::Map(f)) = stages.next() {
                                post.push(f);
                            }
                        }
                        let _ph = graphblas_obs::timeline::phase("drain.node");
                        exec(self, post)?;
                    }
                }
            }
            self.flush_map_run(ctx, &mut run, "queue-end")
        })();
        if let Err(e) = &result {
            if let Error::Execution(exec) = e {
                self.err = Some(exec.clone());
                if obs_on {
                    // The error surfaced at drain time, not at the call
                    // that caused it — the §V deferral the paper promises.
                    // grblint: allow(relaxed-ordering); grbsa: protocol(counter) — monotonic obs counter.
                    graphblas_obs::counters::pending()
                        .errors_deferred
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    graphblas_obs::events::decision_error_deferred("matrix.drain", ctx.id());
                }
            }
            self.pending.clear();
        }
        self.note_mem(ctx.id());
        self.debug_check();
        result
    }

    /// Deep validation of this state: Table III invariants of the current
    /// store, store-vs-logical shape agreement, and §V error bookkeeping.
    pub(crate) fn check(&self) -> Result<(), crate::introspect::CheckError> {
        use crate::introspect::CheckError;
        let shape = match &self.store {
            MatStore::Csr(a) => {
                a.check().map_err(|source| CheckError::Format {
                    format: "csr",
                    source,
                })?;
                (a.nrows(), a.ncols())
            }
            MatStore::Csc(a) => {
                a.check().map_err(|source| CheckError::Format {
                    format: "csc",
                    source,
                })?;
                (a.nrows(), a.ncols())
            }
            MatStore::Coo(a, _) => {
                a.check().map_err(|source| CheckError::Format {
                    format: "coo",
                    source,
                })?;
                (a.nrows(), a.ncols())
            }
            MatStore::Dense(a) => {
                a.check().map_err(|source| CheckError::Format {
                    format: "dense",
                    source,
                })?;
                (a.nrows(), a.ncols())
            }
        };
        if shape != (self.nrows, self.ncols) {
            return Err(CheckError::ShapeMismatch {
                logical: (self.nrows as u64, self.ncols as u64),
                store: (shape.0 as u64, shape.1 as u64),
            });
        }
        if self.err.is_some() && !self.pending.is_empty() {
            return Err(CheckError::PendingAfterError {
                pending: self.pending.len(),
            });
        }
        Ok(())
    }

    /// Debug-build invariant gate, called at kernel boundaries (after
    /// `drain` and `ensure_csr`). Compiles to nothing in release builds.
    #[inline]
    pub(crate) fn debug_check(&self) {
        #[cfg(debug_assertions)]
        if let Err(e) = self.check() {
            panic!("matrix container invariant violated: {e}");
        }
    }

    fn flush_map_run(
        &mut self,
        ctx: &Context,
        run: &mut Vec<MapFn<T>>,
        trigger: &'static str,
    ) -> GrbResult {
        if run.is_empty() {
            return Ok(());
        }
        let mut sp = graphblas_obs::kernel_span(graphblas_obs::Kernel::MapFuse, ctx.id());
        if sp.active() {
            let p = graphblas_obs::counters::pending();
            // A run of n maps executes as ONE traversal; the other n−1
            // stages were absorbed into it — each is a fusion hit.
            // grblint: allow(relaxed-ordering); grbsa: protocol(counter) — monotonic obs counter.
            p.map_traversals
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            // grblint: allow(relaxed-ordering); grbsa: protocol(counter) — monotonic obs counter.
            p.fusion_hits
                .fetch_add(run.len() as u64 - 1, std::sync::atomic::Ordering::Relaxed);
        }
        self.ensure_csr(ctx, false)?;
        let nnz_in = if sp.active() {
            self.csr().nnz() as u64
        } else {
            0
        };
        if graphblas_obs::events::on() {
            graphblas_obs::events::decision_fuse_flush(
                "matrix.drain",
                ctx.id(),
                run.len() as u64,
                nnz_in,
                trigger,
            );
        }
        let fused = self
            .csr()
            .filter_map_with_index(ctx, |i, j, v| fuse_maps(run, &[i, j], v));
        if sp.active() {
            sp.io(
                nnz_in * run.len() as u64,
                nnz_in,
                fused.nnz() as u64,
                nnz_in * std::mem::size_of::<T>() as u64,
            );
        }
        self.store = MatStore::Csr(Arc::new(fused));
        run.clear();
        Ok(())
    }

    /// Applies a node's trailing (post) map run to the container's final
    /// state as one pass (see `VectorState::apply_post_maps`).
    pub(crate) fn apply_post_maps(&mut self, ctx: &Context, post: &[MapFn<T>]) -> GrbResult {
        if post.is_empty() {
            return Ok(());
        }
        self.ensure_csr(ctx, false)?;
        let out = self
            .csr()
            .filter_map_with_index(ctx, |i, j, v| fuse_maps(post, &[i, j], v));
        self.store = MatStore::Csr(Arc::new(out));
        Ok(())
    }
}

struct MatrixHandle<T: ValueType> {
    ctx: RwLock<Context>,
    state: Mutex<MatrixState<T>>,
}

/// An opaque handle to a GraphBLAS matrix over domain `T`.
#[derive(Clone)]
pub struct Matrix<T: ValueType> {
    inner: Arc<MatrixHandle<T>>,
}

impl<T: ValueType> std::fmt::Debug for Matrix<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.inner.state.lock();
        write!(
            f,
            "Matrix<{}>({}x{}, pending: {})",
            std::any::type_name::<T>(),
            st.nrows,
            st.ncols,
            st.pending.len()
        )
    }
}

impl<T: ValueType> Matrix<T> {
    /// `GrB_Matrix_new`: an empty `nrows × ncols` matrix in the global
    /// context. Dimensions must be positive (`GrB_INVALID_VALUE`).
    ///
    /// # Examples
    ///
    /// ```
    /// use graphblas_core::Matrix;
    /// let a = Matrix::<f64>::new(4, 4)?;
    /// a.set_element(2.5, 1, 2)?;
    /// assert_eq!(a.nvals()?, 1);
    /// assert_eq!(a.extract_element(1, 2)?, Some(2.5));
    /// # Ok::<(), graphblas_core::Error>(())
    /// ```
    pub fn new(nrows: Index, ncols: Index) -> GrbResult<Self> {
        Self::new_in(&graphblas_exec::global_context(), nrows, ncols)
    }

    /// §IV context-aware constructor (Fig. 2's extra `GrB_Context` arg).
    pub fn new_in(ctx: &Context, nrows: Index, ncols: Index) -> GrbResult<Self> {
        if nrows == 0 || ncols == 0 {
            return Err(ApiError::InvalidValue.into());
        }
        Ok(Self::from_state(
            ctx,
            MatrixState::fresh(
                nrows,
                ncols,
                MatStore::Csr(Arc::new(Csr::empty(nrows, ncols))),
            ),
        ))
    }

    pub(crate) fn from_state(ctx: &Context, mut state: MatrixState<T>) -> Self {
        state.note_mem(ctx.id());
        Matrix {
            inner: Arc::new(MatrixHandle {
                ctx: RwLock::new(ctx.clone()),
                state: Mutex::new(state),
            }),
        }
    }

    /// `GrB_Matrix_dup`: deep-copies (cheaply — storage is shared
    /// copy-on-write) after completing this matrix.
    pub fn dup(&self) -> GrbResult<Self> {
        let ctx = self.context();
        let st = self.lock_completed()?;
        let state = MatrixState::fresh(st.nrows, st.ncols, st.store.clone());
        drop(st);
        Ok(Self::from_state(&ctx, state))
    }

    /// The context this matrix belongs to (§IV).
    pub fn context(&self) -> Context {
        self.inner.ctx.read().clone()
    }

    /// `GrB_Context_switch`: moves the object to another context.
    pub fn switch_context(&self, ctx: &Context) -> GrbResult {
        *self.inner.ctx.write() = ctx.clone();
        Ok(())
    }

    /// Number of rows (shape is immutable except through [`Self::resize`]).
    pub fn nrows(&self) -> Index {
        self.inner.state.lock().nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> Index {
        self.inner.state.lock().ncols
    }

    /// `GrB_Matrix_nvals`: number of stored elements. Forces completion.
    pub fn nvals(&self) -> GrbResult<usize> {
        let ctx = self.context();
        let mut st = self.lock_completed()?;
        st.ensure_csr(&ctx, false)?;
        Ok(st.csr().nnz())
    }

    /// `GrB_Matrix_clear`: removes all elements. Also clears pending
    /// operations and any sticky error (the object is rebuilt from empty).
    pub fn clear(&self) -> GrbResult {
        let ctx_id = self.context().id();
        let mut st = self.inner.state.lock();
        st.pending.clear();
        st.err = None;
        st.store = MatStore::Csr(Arc::new(Csr::empty(st.nrows, st.ncols)));
        // Pointer identity already invalidates the cache; dropping it here
        // just frees the memory promptly.
        st.transpose_cache = None;
        st.note_mem(ctx_id);
        Ok(())
    }

    /// `GrB_Matrix_resize`: grows or shrinks dimensions; elements outside
    /// the new shape are dropped. Executes immediately (shape queries must
    /// stay cheap).
    pub fn resize(&self, nrows: Index, ncols: Index) -> GrbResult {
        if nrows == 0 || ncols == 0 {
            return Err(ApiError::InvalidValue.into());
        }
        let ctx = self.context();
        let mut st = self.lock_completed()?;
        st.ensure_csr(&ctx, false)?;
        let old = st.csr().clone();
        let kept: Vec<(Index, Index, T)> = old
            .iter()
            .filter(|&(i, j, _)| i < nrows && j < ncols)
            .map(|(i, j, v)| (i, j, v.clone()))
            .collect();
        let coo = Coo::from_parts(
            nrows,
            ncols,
            kept.iter().map(|t| t.0).collect(),
            kept.iter().map(|t| t.1).collect(),
            kept.into_iter().map(|t| t.2).collect(),
        )
        .map_err(Error::from)?;
        st.nrows = nrows;
        st.ncols = ncols;
        st.store = MatStore::Csr(Arc::new(coo.to_csr(&ctx, None).map_err(Error::from)?));
        st.transpose_cache = None;
        Ok(())
    }

    /// `GrB_Matrix_setElement`. A scalar index outside the dimensions is
    /// an *API* error (`GrB_INVALID_INDEX`), reported immediately.
    pub fn set_element(&self, v: T, i: Index, j: Index) -> GrbResult {
        let ctx = self.context();
        let mut st = self.lock_completed()?;
        if i >= st.nrows || j >= st.ncols {
            return Err(ApiError::InvalidIndex.into());
        }
        // Fast path: append into a COO store; repeated setElement stays
        // O(1) amortized, with last-wins resolution at canonicalization.
        if !matches!(st.store, MatStore::Coo(_, CooDup::LastWins)) {
            st.ensure_csr(&ctx, false)?;
            let coo = Coo::from_csr(st.csr());
            st.store = MatStore::Coo(Arc::new(coo), CooDup::LastWins);
            st.transpose_cache = None;
        }
        if let MatStore::Coo(coo, _) = &mut st.store {
            Arc::make_mut(coo).push(i, j, v).map_err(Error::from)?;
        }
        st.note_mem(ctx.id());
        Ok(())
    }

    /// Table II scalar variant of `setElement`: an **empty** scalar removes
    /// the element (making the method total over scalar states).
    pub fn set_element_scalar(&self, s: &Scalar<T>, i: Index, j: Index) -> GrbResult {
        match s.extract_element()? {
            Some(v) => self.set_element(v, i, j),
            None => self.remove_element(i, j),
        }
    }

    /// `GrB_Matrix_removeElement`.
    pub fn remove_element(&self, i: Index, j: Index) -> GrbResult {
        let ctx = self.context();
        let mut st = self.lock_completed()?;
        if i >= st.nrows || j >= st.ncols {
            return Err(ApiError::InvalidIndex.into());
        }
        st.ensure_csr(&ctx, true)?;
        if st.csr().get(i, j).is_some() {
            let filtered = st
                .csr()
                .filter_map_with_index(&ctx, |r, c, v| ((r, c) != (i, j)).then(|| v.clone()));
            st.store = MatStore::Csr(Arc::new(filtered));
        }
        Ok(())
    }

    /// `GrB_Matrix_extractElement`: `Ok(None)` is the C API's
    /// `GrB_NO_VALUE`. Forces completion (the paper's §VI motivation for
    /// the scalar variant below).
    pub fn extract_element(&self, i: Index, j: Index) -> GrbResult<Option<T>> {
        let ctx = self.context();
        let mut st = self.lock_completed()?;
        if i >= st.nrows || j >= st.ncols {
            return Err(ApiError::InvalidIndex.into());
        }
        st.ensure_csr(&ctx, true)?;
        Ok(st.csr().get(i, j).cloned())
    }

    /// Table II scalar variant of `extractElement`: a missing element
    /// yields an *empty* scalar rather than an error-like code, and in a
    /// nonblocking context the read itself is deferred into the scalar's
    /// sequence (§VI).
    pub fn extract_element_scalar(&self, s: &Scalar<T>, i: Index, j: Index) -> GrbResult {
        s.check_context(&self.context())?;
        {
            let st = self.inner.state.lock();
            if i >= st.nrows || j >= st.ncols {
                return Err(ApiError::InvalidIndex.into());
            }
        }
        let this = self.clone();
        s.apply_write(Box::new(move |slot: &mut Option<T>| {
            *slot = this.extract_element(i, j)?;
            Ok(())
        }))
    }

    /// `GrB_Matrix_build` with GraphBLAS 2.0's optional `dup` (§IX): when
    /// `dup` is `None`, duplicate coordinates are an **execution** error —
    /// deferred in nonblocking mode, like all execution errors.
    pub fn build(
        &self,
        rows: &[Index],
        cols: &[Index],
        values: &[T],
        dup: Option<&BinaryOp<T, T, T>>,
    ) -> GrbResult {
        if rows.len() != values.len() || cols.len() != values.len() {
            return Err(ApiError::InvalidValue.into());
        }
        {
            let ctx = self.context();
            let mut st = self.lock_completed()?;
            st.ensure_csr(&ctx, false)?;
            if st.csr().nnz() != 0 {
                return Err(ApiError::OutputNotEmpty.into());
            }
        }
        let rows = rows.to_vec();
        let cols = cols.to_vec();
        let values = values.to_vec();
        let dup = dup.cloned();
        let ctx = self.context();
        self.apply_write(Box::new(move |st: &mut MatrixState<T>| {
            let coo =
                Coo::from_parts(st.nrows, st.ncols, rows, cols, values).map_err(Error::from)?;
            let csr = match &dup {
                Some(op) => coo.to_csr(&ctx, Some(&|a: &T, b: &T| op.apply(a, b))),
                None => coo.to_csr(&ctx, None),
            }
            .map_err(Error::from)?;
            st.store = MatStore::Csr(Arc::new(csr));
            Ok(())
        }))
    }

    /// `GrB_Matrix_diag`: builds the square matrix holding vector `v` on
    /// its `k`-th diagonal (positive `k` above the main diagonal). The
    /// result has dimension `v.size() + |k|`.
    pub fn diag(v: &crate::vector::Vector<T>, k: i64) -> GrbResult<Self> {
        let ctx = v.context();
        let n = v
            .size()
            .checked_add(k.unsigned_abs() as usize)
            .ok_or(ApiError::InvalidValue)?;
        let sv = v.snapshot_sparse()?;
        let out = Matrix::new_in(&ctx, n, n)?;
        let mut rows = Vec::with_capacity(sv.nnz());
        let mut cols = Vec::with_capacity(sv.nnz());
        let mut vals = Vec::with_capacity(sv.nnz());
        for (i, value) in sv.iter() {
            let (r, c) = if k >= 0 {
                (i, i + k as usize)
            } else {
                (i + (-k) as usize, i)
            };
            rows.push(r);
            cols.push(c);
            vals.push(value.clone());
        }
        out.build(&rows, &cols, &vals, None)?;
        Ok(out)
    }

    /// Extracts the `k`-th diagonal into a vector (the inverse of
    /// [`Matrix::diag`]): entry `i` of the result is `A(i, i + k)` for
    /// `k ≥ 0`, `A(i − k, i)` for `k < 0`.
    pub fn extract_diag(&self, k: i64) -> GrbResult<crate::vector::Vector<T>> {
        let ctx = self.context();
        let (nrows, ncols) = self.shape();
        let len = if k >= 0 {
            ncols.saturating_sub(k as usize).min(nrows)
        } else {
            nrows.saturating_sub((-k) as usize).min(ncols)
        };
        if len == 0 {
            return Err(ApiError::InvalidValue.into());
        }
        let csr = self.snapshot_csr(true)?;
        let out = crate::vector::Vector::new_in(&ctx, len)?;
        let mut idx = Vec::new();
        let mut vals = Vec::new();
        for (i, j, v) in csr.iter() {
            let on_diag = j as i64 - i as i64 == k;
            if on_diag {
                let pos = if k >= 0 { i } else { j };
                idx.push(pos);
                vals.push(v.clone());
            }
        }
        out.build(&idx, &vals, None)?;
        Ok(out)
    }

    /// `GrB_Matrix_extractTuples`: `(rows, cols, values)` of every stored
    /// element, ordered by `(row, col)`.
    pub fn extract_tuples(&self) -> GrbResult<(Vec<Index>, Vec<Index>, Vec<T>)> {
        let ctx = self.context();
        let mut st = self.lock_completed()?;
        st.ensure_csr(&ctx, true)?;
        Ok(st.csr().tuples())
    }

    /// `GrB_wait` (§III, §V): `Complete` drains the sequence; `Materialize`
    /// additionally canonicalizes storage (CSR, sorted rows) and finalizes
    /// error reporting for the drained sequence.
    pub fn wait(&self, mode: WaitMode) -> GrbResult {
        let ctx = self.context();
        let _sp = graphblas_obs::kernel_span(graphblas_obs::Kernel::Wait, ctx.id());
        let mut st = self.lock_completed_as("wait")?;
        if mode == WaitMode::Materialize {
            st.ensure_csr(&ctx, true)?;
        }
        Ok(())
    }

    /// `GrB_get`-style introspection: the object's current dimensions,
    /// stored-element count, pending-sequence depth, storage format, error
    /// state, and context — **without** forcing completion. Under
    /// nonblocking execution `stats().nvals` describes the store as it is
    /// now, which may lag the sequence.
    pub fn stats(&self) -> ObjectStats {
        let ctx_id = self.context().id();
        let st = self.inner.state.lock();
        let (format, nvals) = match &st.store {
            MatStore::Csr(a) => ("csr", a.nnz()),
            MatStore::Csc(a) => ("csc", a.nnz()),
            MatStore::Coo(a, _) => ("coo", a.nnz()),
            MatStore::Dense(a) => ("dense", a.values().len()),
        };
        ObjectStats {
            kind: "matrix",
            nrows: st.nrows as u64,
            ncols: st.ncols as u64,
            nvals: nvals as u64,
            pending: st.pending.len() as u64,
            format,
            failed: st.err.is_some(),
            ctx: ctx_id,
        }
    }

    /// `GrB_explain`-style decision provenance scoped to this matrix's
    /// context subtree (decisions are attributed per context, not per
    /// container). Does not force completion.
    pub fn explain(&self, last_n: usize) -> graphblas_obs::Explain {
        self.context().explain(last_n)
    }

    /// `GrB_error`: the implementation-defined description of this
    /// object's error state; empty when healthy. Thread safe.
    pub fn error_string(&self) -> String {
        self.inner
            .state
            .lock()
            .err
            .as_ref()
            .map(|e| e.to_string())
            .unwrap_or_default()
    }

    /// Whether two handles denote the same object.
    pub fn same_object(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    // --- crate-internal plumbing ------------------------------------------

    /// Locks state without draining (format inspection only).
    pub(crate) fn lock_raw(&self) -> graphblas_exec::sync::MutexGuard<'_, MatrixState<T>> {
        self.inner.state.lock()
    }

    /// Locks state and drains the pending queue first.
    pub(crate) fn lock_completed(
        &self,
    ) -> GrbResult<graphblas_exec::sync::MutexGuard<'_, MatrixState<T>>> {
        self.lock_completed_as("read")
    }

    /// [`Self::lock_completed`] with an explicit force cause for the
    /// `DagForce` decision event.
    pub(crate) fn lock_completed_as(
        &self,
        cause: &'static str,
    ) -> GrbResult<graphblas_exec::sync::MutexGuard<'_, MatrixState<T>>> {
        let ctx = self.context();
        let mut st = self.inner.state.lock();
        st.drain_as(&ctx, cause)?;
        Ok(st)
    }

    /// Completes and returns a cheap CSR snapshot (optionally row-sorted) —
    /// the value of this object *at this point in the sequence*.
    pub(crate) fn snapshot_csr(&self, sorted: bool) -> GrbResult<Arc<Csr<T>>> {
        let ctx = self.context();
        let mut st = self.lock_completed()?;
        st.ensure_csr(&ctx, sorted)?;
        Ok(st.csr().clone())
    }

    /// Completes and returns the transpose of this matrix's CSR snapshot,
    /// memoized across calls (see [`MatrixState::transpose_cache`]): a
    /// BFS that runs `vxm` on `A` twenty times pays for the transpose
    /// once, and any mutation between calls invalidates it automatically
    /// through the store `Arc`'s identity.
    pub(crate) fn snapshot_transposed(&self) -> GrbResult<Arc<Csr<T>>> {
        let ctx = self.context();
        let mut st = self.lock_completed()?;
        st.ensure_csr(&ctx, false)?;
        Ok(st.transposed_csr(&ctx))
    }

    /// Current logical shape.
    pub(crate) fn shape(&self) -> (Index, Index) {
        let st = self.inner.state.lock();
        (st.nrows, st.ncols)
    }

    /// Runs `stage` now (blocking) or appends it to the sequence
    /// (nonblocking).
    pub(crate) fn apply_write(
        &self,
        stage: Box<dyn FnOnce(&mut MatrixState<T>) -> GrbResult + Send>,
    ) -> GrbResult {
        let ctx = self.context();
        let mut st = self.inner.state.lock();
        if let Some(e) = &st.err {
            return Err(Error::Execution(e.clone()));
        }
        match ctx.mode() {
            Mode::NonBlocking => {
                st.pending.push(Stage::Opaque(stage));
                if graphblas_obs::enabled() {
                    // grblint: allow(relaxed-ordering); grbsa: protocol(counter) — monotonic obs counter.
                    graphblas_obs::counters::pending()
                        .opaques_enqueued
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    graphblas_obs::counters::note_pending_depth(st.pending.len());
                }
                Ok(())
            }
            Mode::Blocking => {
                st.drain(&ctx)?;
                let r = stage(&mut st);
                if let Err(Error::Execution(exec)) = &r {
                    st.err = Some(exec.clone());
                }
                st.note_mem(ctx.id());
                r
            }
        }
    }

    /// Enqueues a lazy op-DAG node (§III); see `Vector::apply_node` for
    /// the mode/fallback contract.
    pub(crate) fn apply_node(
        &self,
        kind: NodeKind,
        exec: Box<dyn FnOnce(&mut MatrixState<T>, Vec<MapFn<T>>) -> GrbResult + Send>,
    ) -> GrbResult {
        let ctx = self.context();
        let mut st = self.inner.state.lock();
        if let Some(e) = &st.err {
            return Err(Error::Execution(e.clone()));
        }
        match ctx.mode() {
            Mode::NonBlocking if crate::dag::dag_enabled() => {
                st.pending.push(Stage::Node { kind, exec });
                let depth = st.pending.len();
                if graphblas_obs::enabled() {
                    // grblint: allow(relaxed-ordering); grbsa: protocol(counter) — monotonic obs counter.
                    graphblas_obs::counters::dag()
                        .nodes_enqueued
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    graphblas_obs::counters::note_pending_depth(depth);
                }
                drop(st);
                self.maybe_async_drain(depth);
                Ok(())
            }
            Mode::NonBlocking => {
                st.pending
                    .push(Stage::Opaque(Box::new(move |st| exec(st, Vec::new()))));
                if graphblas_obs::enabled() {
                    // grblint: allow(relaxed-ordering); grbsa: protocol(counter) — monotonic obs counter.
                    graphblas_obs::counters::pending()
                        .opaques_enqueued
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    graphblas_obs::counters::note_pending_depth(st.pending.len());
                }
                Ok(())
            }
            Mode::Blocking => {
                st.drain(&ctx)?;
                let r = exec(&mut st, Vec::new());
                if let Err(Error::Execution(exec_err)) = &r {
                    st.err = Some(exec_err.clone());
                }
                st.note_mem(ctx.id());
                r
            }
        }
    }

    /// Hands this container's backlog to the worker pool once it crosses
    /// the depth threshold (see `Vector::maybe_async_drain` for the
    /// no-double-drain argument).
    fn maybe_async_drain(&self, depth: usize) {
        if !crate::dag::async_drain_enabled() || depth < crate::dag::async_drain_depth() {
            return;
        }
        if graphblas_obs::enabled() {
            // grblint: allow(relaxed-ordering); grbsa: protocol(counter) — monotonic obs counter.
            graphblas_obs::counters::dag()
                .async_drains
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
        let this = self.clone();
        let ctx = self.context();
        graphblas_exec::pool::global_pool().spawn_static(Box::new(move || {
            let mut st = this.inner.state.lock();
            // A failed drain leaves the §V sticky error for the next
            // reader; the background task has no caller to report to.
            let _ = st.drain_as(&ctx, "async");
        }));
    }

    /// Appends a fusible element-wise stage (nonblocking) or applies it
    /// immediately (blocking).
    pub(crate) fn apply_map(&self, f: MapFn<T>) -> GrbResult {
        let ctx = self.context();
        let mut st = self.inner.state.lock();
        if let Some(e) = &st.err {
            return Err(Error::Execution(e.clone()));
        }
        match ctx.mode() {
            Mode::NonBlocking => {
                st.pending.push(Stage::Map(f));
                if graphblas_obs::enabled() {
                    // grblint: allow(relaxed-ordering); grbsa: protocol(counter) — monotonic obs counter.
                    graphblas_obs::counters::pending()
                        .maps_enqueued
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    graphblas_obs::counters::note_pending_depth(st.pending.len());
                }
                Ok(())
            }
            Mode::Blocking => {
                st.drain(&ctx)?;
                st.ensure_csr(&ctx, false)?;
                let out = st
                    .csr()
                    .filter_map_with_index(&ctx, |i, j, v| f(&[i, j], v));
                st.store = MatStore::Csr(Arc::new(out));
                st.note_mem(ctx.id());
                Ok(())
            }
        }
    }

    /// Number of queued (not yet executed) stages — observability hook for
    /// tests and the fusion bench.
    pub fn pending_len(&self) -> usize {
        self.inner.state.lock().pending.len()
    }

    /// Type-erased object identity, comparable across element types (used
    /// to detect in-place `apply`/`select` for stage fusion).
    pub(crate) fn addr(&self) -> usize {
        Arc::as_ptr(&self.inner) as *const () as usize
    }

    /// Validates the §IV same-context rule against `ctx`.
    pub(crate) fn check_context(&self, ctx: &Context) -> GrbResult {
        if self.context().same(ctx) {
            Ok(())
        } else {
            Err(ApiError::ContextMismatch.into())
        }
    }
}

impl<T: ValueType> crate::introspect::Check for Matrix<T> {
    /// Deep validation (`grb_check`): verifies the current store's Table III
    /// invariants, the store-vs-logical shape agreement, and the §V rule
    /// that a poisoned object holds no pending stages. Never forces
    /// completion — like [`Matrix::stats`], it observes without perturbing.
    fn grb_check(&self) -> Result<(), crate::introspect::CheckError> {
        self.inner.state.lock().check()
    }
}

impl<T: ValueType + MaskValue> Matrix<T> {
    /// Completes and snapshots this matrix as a boolean mask: present
    /// elements map to their truthiness (or to `true` under structure-only
    /// semantics). Rows come out sorted, ready for merge kernels.
    pub(crate) fn snapshot_mask(&self, structure: bool) -> GrbResult<Arc<Csr<bool>>> {
        let csr = self.snapshot_csr(true)?;
        let ctx = self.context();
        let boolified = if structure {
            csr.map(&ctx, |_| true)
        } else {
            csr.map(&ctx, |v| v.is_truthy())
        };
        Ok(Arc::new(boolified))
    }
}

impl<T: ValueType + std::fmt::Display> Matrix<T> {
    /// Renders the matrix as an ASCII grid with `.` for missing elements —
    /// used by the examples to reprint the paper's Fig. 3.
    pub fn to_display_string(&self) -> GrbResult<String> {
        let csr = self.snapshot_csr(true)?;
        let mut out = String::new();
        for i in 0..csr.nrows() {
            for j in 0..csr.ncols() {
                match csr.get(i, j) {
                    Some(v) => out.push_str(&format!("{v:>4} ")),
                    None => out.push_str("   . "),
                }
            }
            out.push('\n');
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphblas_exec::{global_context, ContextOptions};

    #[test]
    fn new_validates_dimensions() {
        assert!(Matrix::<f64>::new(0, 3).is_err());
        assert!(Matrix::<f64>::new(3, 0).is_err());
        let m = Matrix::<f64>::new(3, 4).unwrap();
        assert_eq!((m.nrows(), m.ncols()), (3, 4));
        assert_eq!(m.nvals().unwrap(), 0);
    }

    #[test]
    fn set_extract_remove_element() {
        let m = Matrix::<i64>::new(3, 3).unwrap();
        m.set_element(7, 1, 2).unwrap();
        assert_eq!(m.extract_element(1, 2).unwrap(), Some(7));
        assert_eq!(m.extract_element(0, 0).unwrap(), None);
        m.set_element(9, 1, 2).unwrap(); // overwrite: last wins
        assert_eq!(m.extract_element(1, 2).unwrap(), Some(9));
        assert_eq!(m.nvals().unwrap(), 1);
        m.remove_element(1, 2).unwrap();
        assert_eq!(m.extract_element(1, 2).unwrap(), None);
        assert_eq!(m.nvals().unwrap(), 0);
        // Scalar index OOB is an immediate API error.
        let err = m.set_element(1, 5, 0).unwrap_err();
        assert!(err.is_api());
        assert!(m.extract_element(0, 5).is_err());
    }

    #[test]
    fn many_set_elements_stay_fast_and_correct() {
        let m = Matrix::<u32>::new(100, 100).unwrap();
        for k in 0..1000u32 {
            m.set_element(k, (k as usize * 7) % 100, (k as usize * 13) % 100)
                .unwrap();
        }
        // Spot-check last-wins on a known collision: the map (7k, 13k) mod
        // 100 repeats with period 100, so key 5 and 105... use direct check:
        m.set_element(1, 3, 3).unwrap();
        m.set_element(2, 3, 3).unwrap();
        assert_eq!(m.extract_element(3, 3).unwrap(), Some(2));
    }

    #[test]
    fn build_and_tuples_roundtrip() {
        let m = Matrix::<f64>::new(4, 4).unwrap();
        m.build(&[0, 2, 2], &[1, 0, 3], &[1.5, 2.5, 3.5], None)
            .unwrap();
        let (r, c, v) = m.extract_tuples().unwrap();
        assert_eq!(r, vec![0, 2, 2]);
        assert_eq!(c, vec![1, 0, 3]);
        assert_eq!(v, vec![1.5, 2.5, 3.5]);
        // Output not empty → API error.
        let err = m.build(&[0], &[0], &[1.0], None).unwrap_err();
        assert_eq!(err, Error::Api(ApiError::OutputNotEmpty));
    }

    #[test]
    fn build_duplicates_combined_or_rejected() {
        let m = Matrix::<i64>::new(2, 2).unwrap();
        m.build(&[0, 0], &[1, 1], &[3, 4], Some(&BinaryOp::plus()))
            .unwrap();
        assert_eq!(m.extract_element(0, 1).unwrap(), Some(7));
        let m2 = Matrix::<i64>::new(2, 2).unwrap();
        let err = m2.build(&[0, 0], &[1, 1], &[3, 4], None).unwrap_err();
        assert!(err.is_execution());
        assert_eq!(err.code(), -104);
    }

    #[test]
    fn build_oob_is_execution_error() {
        let m = Matrix::<i64>::new(2, 2).unwrap();
        let err = m.build(&[5], &[0], &[1], None).unwrap_err();
        assert!(err.is_execution());
        assert_eq!(err.code(), -105);
    }

    #[test]
    fn deferred_build_error_surfaces_at_wait() {
        let ctx = Context::new(
            &global_context(),
            Mode::NonBlocking,
            ContextOptions::default(),
        );
        let m = Matrix::<i64>::new_in(&ctx, 2, 2).unwrap();
        // Enqueued, not executed: the bad index is data, hence an execution
        // error, hence deferrable (§V).
        m.build(&[5], &[0], &[1], None).unwrap();
        assert_eq!(m.pending_len(), 1);
        let err = m.wait(WaitMode::Materialize).unwrap_err();
        assert!(err.is_execution());
        // Sticky until cleared.
        assert!(m.nvals().is_err());
        assert!(!m.error_string().is_empty());
        m.clear().unwrap();
        assert_eq!(m.nvals().unwrap(), 0);
        assert_eq!(m.error_string(), "");
    }

    #[test]
    fn dup_is_independent() {
        let m = Matrix::<i32>::new(2, 2).unwrap();
        m.set_element(5, 0, 0).unwrap();
        let d = m.dup().unwrap();
        m.set_element(9, 0, 0).unwrap();
        assert_eq!(d.extract_element(0, 0).unwrap(), Some(5));
        assert!(!d.same_object(&m));
    }

    #[test]
    fn resize_drops_out_of_range() {
        let m = Matrix::<i32>::new(4, 4).unwrap();
        m.set_element(1, 0, 0).unwrap();
        m.set_element(2, 3, 3).unwrap();
        m.resize(2, 2).unwrap();
        assert_eq!((m.nrows(), m.ncols()), (2, 2));
        assert_eq!(m.nvals().unwrap(), 1);
        m.resize(8, 8).unwrap();
        assert_eq!(m.nvals().unwrap(), 1);
        assert_eq!(m.extract_element(0, 0).unwrap(), Some(1));
    }

    #[test]
    fn scalar_variants_of_set_and_extract() {
        let m = Matrix::<i64>::new(2, 2).unwrap();
        let s = Scalar::<i64>::new().unwrap();
        s.set_element(11).unwrap();
        m.set_element_scalar(&s, 0, 1).unwrap();
        assert_eq!(m.extract_element(0, 1).unwrap(), Some(11));
        // Extract a present element into a scalar.
        let out = Scalar::<i64>::new().unwrap();
        m.extract_element_scalar(&out, 0, 1).unwrap();
        assert_eq!(out.extract_element().unwrap(), Some(11));
        // Extract a missing element: empty scalar, NOT an error (§VI).
        let empty = Scalar::<i64>::new().unwrap();
        m.extract_element_scalar(&empty, 1, 1).unwrap();
        assert_eq!(empty.nvals().unwrap(), 0);
        // Empty scalar setElement removes.
        let hole = Scalar::<i64>::new().unwrap();
        m.set_element_scalar(&hole, 0, 1).unwrap();
        assert_eq!(m.extract_element(0, 1).unwrap(), None);
    }

    #[test]
    fn clear_resets_everything() {
        let m = Matrix::<u8>::new(2, 2).unwrap();
        m.set_element(1, 0, 0).unwrap();
        m.clear().unwrap();
        assert_eq!(m.nvals().unwrap(), 0);
        assert_eq!((m.nrows(), m.ncols()), (2, 2));
    }

    #[test]
    fn stats_reflect_store_without_completing() {
        let ctx = Context::new(
            &global_context(),
            Mode::NonBlocking,
            ContextOptions::default(),
        );
        let m = Matrix::<i64>::new_in(&ctx, 3, 3).unwrap();
        m.build(&[0, 1], &[1, 2], &[1, 2], None).unwrap();
        let s = m.stats();
        assert_eq!(s.kind, "matrix");
        assert_eq!((s.nrows, s.ncols), (3, 3));
        // The build is still queued: stats must not have drained it.
        assert_eq!(s.pending, 1);
        assert_eq!(s.nvals, 0);
        assert_eq!(s.ctx, ctx.id());
        assert!(!s.failed);
        m.wait(WaitMode::Materialize).unwrap();
        let s = m.stats();
        assert_eq!((s.pending, s.nvals), (0, 2));
        assert_eq!(s.format, "csr");
        assert!(s.to_json().contains("\"nvals\":2"));
    }

    #[test]
    fn grb_check_validates_state() {
        use crate::introspect::{grb_check, CheckError};
        // A healthy object passes.
        let m = Matrix::<i64>::new(3, 3).unwrap();
        m.set_element(1, 0, 0).unwrap();
        grb_check(&m).unwrap();
        // §V: a poisoned object has its pending sequence cleared, so the
        // deep check still passes — error state and queue stay consistent.
        let ctx = Context::new(
            &global_context(),
            Mode::NonBlocking,
            ContextOptions::default(),
        );
        let m2 = Matrix::<i64>::new_in(&ctx, 2, 2).unwrap();
        m2.build(&[5], &[0], &[1], None).unwrap();
        assert!(m2.wait(WaitMode::Complete).is_err());
        grb_check(&m2).unwrap();
        // A store whose shape disagrees with the logical dimensions fails.
        let bad = Matrix::from_state(
            &global_context(),
            MatrixState::fresh(2, 2, MatStore::Csr(Arc::new(Csr::<i64>::empty(3, 3)))),
        );
        assert!(matches!(
            grb_check(&bad),
            Err(CheckError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn container_mem_reports_to_ctx_ledger() {
        let was = graphblas_obs::enabled();
        graphblas_obs::set_enabled(true);
        // A private context isolates this test's ledger entry from the
        // other (parallel) tests, which all run in the global context.
        let ctx = Context::new(&global_context(), Mode::Blocking, ContextOptions::default());
        let m = Matrix::<i64>::new_in(&ctx, 64, 64).unwrap();
        for k in 0..64usize {
            m.set_element(k as i64, k, k).unwrap();
        }
        m.wait(WaitMode::Materialize).unwrap();
        let live = graphblas_obs::ctxreg::context_stats(ctx.id())
            .unwrap()
            .own
            .mem_live;
        assert!(live > 0, "a populated CSR store must charge the ledger");
        drop(m);
        let after = graphblas_obs::ctxreg::context_stats(ctx.id())
            .unwrap()
            .own
            .mem_live;
        assert_eq!(after, 0, "dropping the handle must release its bytes");
        graphblas_obs::set_enabled(was);
    }

    #[test]
    fn display_rendering() {
        let m = Matrix::<i32>::new(2, 2).unwrap();
        m.set_element(3, 0, 1).unwrap();
        let s = m.to_display_string().unwrap();
        assert!(s.contains('3'));
        assert!(s.contains('.'));
    }
}
