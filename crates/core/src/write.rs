//! The GraphBLAS write semantics: `C⟨M, r⟩ = C ⊙ T`.
//!
//! Every operation funnels its computed result `T` through [`merge_matrix`]
//! / [`merge_vector`], which implement the spec's four-step output rule:
//!
//! 1. restrict `T` to the (possibly complemented, possibly structural)
//!    mask;
//! 2. inside the mask: `accum(C, T)` when an accumulator is given, else
//!    `T` verbatim (old elements inside the mask but absent from `T` are
//!    deleted);
//! 3. outside the mask: keep `C`'s old contents, unless `replace` clears
//!    them;
//! 4. stitch the two disjoint regions back together.

use std::sync::Arc;

use graphblas_exec::Context;
use graphblas_sparse::{ewise, Csr, SparseVec};

use crate::ops::BinaryOp;
use crate::types::ValueType;

/// A snapshot of a mask operand: truthiness is already folded into the
/// boolean values (structure-only masks are all-`true`).
pub(crate) struct MatMask {
    pub mask: Arc<Csr<bool>>,
    pub complement: bool,
}

/// Vector-mask counterpart of [`MatMask`].
pub(crate) struct VecMask {
    pub mask: Arc<SparseVec<bool>>,
    pub complement: bool,
}

/// Merges computed result `t` into `old` under mask/accumulator/replace.
/// `old` must have sorted rows; `t` may be unsorted (it is sorted here iff
/// the merge actually needs ordered rows).
pub(crate) fn merge_matrix<C: ValueType>(
    ctx: &Context,
    old: &Csr<C>,
    mut t: Csr<C>,
    mask: Option<&MatMask>,
    accum: Option<&BinaryOp<C, C, C>>,
    replace: bool,
) -> Csr<C> {
    debug_assert!(old.is_rows_sorted());
    match mask {
        None => match accum {
            // Unmasked, no accumulator: T simply becomes C.
            None => t,
            Some(op) => {
                t.sort_rows(ctx);
                ewise::ewise_union(ctx, old, &t, |x, y| op.apply(x, y))
            }
        },
        Some(m) => {
            t.sort_rows(ctx);
            let truthy = |b: &bool| *b;
            // Step 1-2: the masked region receives T (optionally folded
            // with C's old contents through the accumulator).
            let z = ewise::ewise_restrict(ctx, &t, &m.mask, m.complement, truthy);
            let inside = match accum {
                None => z,
                Some(op) => {
                    let old_inside = ewise::ewise_restrict(ctx, old, &m.mask, m.complement, truthy);
                    ewise::ewise_union(ctx, &old_inside, &z, |x, y| op.apply(x, y))
                }
            };
            // Step 3: the unmasked region keeps C (or is cleared).
            if replace {
                inside
            } else {
                let outside = ewise::ewise_restrict(ctx, old, &m.mask, !m.complement, truthy);
                // Step 4: regions are position-disjoint, so the union's
                // combiner is never invoked.
                ewise::ewise_union(ctx, &outside, &inside, |x, _| x.clone())
            }
        }
    }
}

/// Vector counterpart of [`merge_matrix`]. Both `old` and `t` must be
/// canonical (sorted) sparse vectors.
pub(crate) fn merge_vector<C: ValueType>(
    old: &SparseVec<C>,
    t: SparseVec<C>,
    mask: Option<&VecMask>,
    accum: Option<&BinaryOp<C, C, C>>,
    replace: bool,
) -> SparseVec<C> {
    debug_assert!(old.is_sorted());
    debug_assert!(t.is_sorted());
    match mask {
        None => match accum {
            None => t,
            Some(op) => ewise::svec_union(old, &t, |x, y| op.apply(x, y)),
        },
        Some(m) => {
            let truthy = |b: &bool| *b;
            let z = ewise::svec_restrict(&t, &m.mask, m.complement, truthy);
            let inside = match accum {
                None => z,
                Some(op) => {
                    let old_inside = ewise::svec_restrict(old, &m.mask, m.complement, truthy);
                    ewise::svec_union(&old_inside, &z, |x, y| op.apply(x, y))
                }
            };
            if replace {
                inside
            } else {
                let outside = ewise::svec_restrict(old, &m.mask, !m.complement, truthy);
                ewise::svec_union(&outside, &inside, |x, _| x.clone())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphblas_exec::global_context;

    fn csr(shape: (usize, usize), t: &[(usize, usize, i64)]) -> Csr<i64> {
        graphblas_sparse::Coo::from_parts(
            shape.0,
            shape.1,
            t.iter().map(|x| x.0).collect(),
            t.iter().map(|x| x.1).collect(),
            t.iter().map(|x| x.2).collect(),
        )
        .unwrap()
        .to_csr(&global_context(), None)
        .unwrap()
    }

    fn bmask(shape: (usize, usize), t: &[(usize, usize)]) -> Arc<Csr<bool>> {
        Arc::new(
            graphblas_sparse::Coo::from_parts(
                shape.0,
                shape.1,
                t.iter().map(|x| x.0).collect(),
                t.iter().map(|x| x.1).collect(),
                vec![true; t.len()],
            )
            .unwrap()
            .to_csr(&global_context(), None)
            .unwrap(),
        )
    }

    #[test]
    fn unmasked_no_accum_replaces() {
        let ctx = global_context();
        let old = csr((2, 2), &[(0, 0, 1)]);
        let t = csr((2, 2), &[(1, 1, 9)]);
        let r = merge_matrix(&ctx, &old, t, None, None, false);
        assert_eq!(r.to_sorted_tuples(), vec![(1, 1, 9)]);
    }

    #[test]
    fn unmasked_accum_unions() {
        let ctx = global_context();
        let old = csr((2, 2), &[(0, 0, 1), (1, 1, 2)]);
        let t = csr((2, 2), &[(1, 1, 10), (0, 1, 5)]);
        let r = merge_matrix(&ctx, &old, t, None, Some(&BinaryOp::plus()), false);
        assert_eq!(r.to_sorted_tuples(), vec![(0, 0, 1), (0, 1, 5), (1, 1, 12)]);
    }

    #[test]
    fn masked_deletes_inside_keeps_outside() {
        let ctx = global_context();
        // Mask covers (0,0) and (0,1). T only supplies (0,1): the old (0,0)
        // is inside the mask but absent from T → deleted; old (1,1) is
        // outside → kept.
        let old = csr((2, 2), &[(0, 0, 1), (1, 1, 2)]);
        let t = csr((2, 2), &[(0, 1, 9)]);
        let m = MatMask {
            mask: bmask((2, 2), &[(0, 0), (0, 1)]),
            complement: false,
        };
        let r = merge_matrix(&ctx, &old, t, Some(&m), None, false);
        assert_eq!(r.to_sorted_tuples(), vec![(0, 1, 9), (1, 1, 2)]);
    }

    #[test]
    fn masked_replace_clears_outside() {
        let ctx = global_context();
        let old = csr((2, 2), &[(0, 0, 1), (1, 1, 2)]);
        let t = csr((2, 2), &[(0, 0, 7)]);
        let m = MatMask {
            mask: bmask((2, 2), &[(0, 0)]),
            complement: false,
        };
        let r = merge_matrix(&ctx, &old, t, Some(&m), None, true);
        assert_eq!(r.to_sorted_tuples(), vec![(0, 0, 7)]);
    }

    #[test]
    fn complemented_mask() {
        let ctx = global_context();
        let old = csr((1, 3), &[(0, 0, 1), (0, 1, 2), (0, 2, 3)]);
        let t = csr((1, 3), &[(0, 0, 10), (0, 1, 20), (0, 2, 30)]);
        let m = MatMask {
            mask: bmask((1, 3), &[(0, 1)]),
            complement: true,
        };
        // Complement: positions 0 and 2 are writable; position 1 keeps old.
        let r = merge_matrix(&ctx, &old, t, Some(&m), None, false);
        assert_eq!(
            r.to_sorted_tuples(),
            vec![(0, 0, 10), (0, 1, 2), (0, 2, 30)]
        );
    }

    #[test]
    fn masked_accum_folds_only_inside() {
        let ctx = global_context();
        let old = csr((1, 2), &[(0, 0, 1), (0, 1, 2)]);
        let t = csr((1, 2), &[(0, 0, 10), (0, 1, 20)]);
        let m = MatMask {
            mask: bmask((1, 2), &[(0, 0)]),
            complement: false,
        };
        let r = merge_matrix(&ctx, &old, t, Some(&m), Some(&BinaryOp::plus()), false);
        assert_eq!(r.to_sorted_tuples(), vec![(0, 0, 11), (0, 1, 2)]);
    }

    #[test]
    fn vector_merge_matches_matrix_logic() {
        let old = SparseVec::from_parts(3, vec![0, 2], vec![1i64, 3]).unwrap();
        let t = SparseVec::from_parts(3, vec![1, 2], vec![20, 30]).unwrap();
        let m = VecMask {
            mask: Arc::new(SparseVec::from_parts(3, vec![1], vec![true]).unwrap()),
            complement: false,
        };
        let r = merge_vector(&old, t, Some(&m), None, false);
        assert_eq!(r.to_sorted_tuples(), vec![(0, 1), (1, 20), (2, 3)]);
        // replace clears outside:
        let t2 = SparseVec::from_parts(3, vec![1], vec![20]).unwrap();
        let r2 = merge_vector(&old, t2, Some(&m), None, true);
        assert_eq!(r2.to_sorted_tuples(), vec![(1, 20)]);
    }
}
