//! Import/export between GraphBLAS containers and the non-opaque formats
//! of the paper's Table III (§VII.A).
//!
//! * **Import** adopts the user's arrays in the stated format. Storage
//!   stays in that format until a kernel needs CSR — so
//!   [`Matrix::export_hint`] honestly reports what the object currently
//!   holds, exactly the "which format might be most efficient" contract of
//!   `GrB_Matrix_exportHint`.
//! * **Export** follows the two-step C protocol: `export_size` tells the
//!   caller how much to allocate; `export_into` fills caller-provided
//!   buffers **without growing them** (a too-small buffer is the
//!   `GrB_INSUFFICIENT_SPACE` execution error). The one-step
//!   [`Matrix::export`] convenience allocates internally.
//!
//! §IX pins enumeration values; [`Format`] and [`VectorFormat`] carry
//! explicit discriminants for ABI parity.

use std::sync::Arc;

use graphblas_sparse::{Coo, Csc, Csr, Dense, DenseVec, Layout, SparseVec};

use crate::error::{ApiError, Error, ExecErrorKind, GrbResult};
use crate::matrix::{CooDup, MatStore, Matrix, MatrixState};
use crate::types::{Index, ValueType};
use crate::vector::{VecStore, Vector, VectorState};

/// `GrB_Format` for matrices, with pinned values (§IX).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(i32)]
pub enum Format {
    /// `GrB_CSR_MATRIX`
    Csr = 0,
    /// `GrB_CSC_MATRIX`
    Csc = 1,
    /// `GrB_COO_MATRIX`
    Coo = 2,
    /// `GrB_DENSE_ROW_MATRIX`
    DenseRow = 3,
    /// `GrB_DENSE_COL_MATRIX`
    DenseCol = 4,
}

/// `GrB_Format` for vectors, with pinned values (§IX).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(i32)]
pub enum VectorFormat {
    /// `GrB_SPARSE_VECTOR`
    Sparse = 5,
    /// `GrB_DENSE_VECTOR`
    Dense = 6,
}

fn api_invalid<E>(_: E) -> Error {
    ApiError::InvalidValue.into()
}

impl<T: ValueType> Matrix<T> {
    /// `GrB_Matrix_import` into the global context; see
    /// [`Matrix::import_in`].
    pub fn import(
        nrows: Index,
        ncols: Index,
        format: Format,
        indptr: Option<Vec<Index>>,
        indices: Option<Vec<Index>>,
        values: Vec<T>,
    ) -> GrbResult<Self> {
        Self::import_in(
            &graphblas_exec::global_context(),
            nrows,
            ncols,
            format,
            indptr,
            indices,
            values,
        )
    }

    /// `GrB_Matrix_import`: constructs a matrix from Table III arrays.
    /// Array-shape violations are API errors (`GrB_INVALID_VALUE` /
    /// `GrB_NULL_POINTER`); duplicate COO coordinates surface later as an
    /// execution error, when the store is first canonicalized.
    pub fn import_in(
        ctx: &graphblas_exec::Context,
        nrows: Index,
        ncols: Index,
        format: Format,
        indptr: Option<Vec<Index>>,
        indices: Option<Vec<Index>>,
        values: Vec<T>,
    ) -> GrbResult<Self> {
        if nrows == 0 || ncols == 0 {
            return Err(ApiError::InvalidValue.into());
        }
        let store = match format {
            Format::Csr => {
                let indptr = indptr.ok_or(ApiError::NullPointer)?;
                let indices = indices.ok_or(ApiError::NullPointer)?;
                MatStore::Csr(Arc::new(
                    Csr::from_parts(nrows, ncols, indptr, indices, values).map_err(api_invalid)?,
                ))
            }
            Format::Csc => {
                let indptr = indptr.ok_or(ApiError::NullPointer)?;
                let indices = indices.ok_or(ApiError::NullPointer)?;
                MatStore::Csc(Arc::new(
                    Csc::from_parts(nrows, ncols, indptr, indices, values).map_err(api_invalid)?,
                ))
            }
            Format::Coo => {
                // Table III: indptr holds column indices, indices holds row
                // indices for COO.
                let cols = indptr.ok_or(ApiError::NullPointer)?;
                let rows = indices.ok_or(ApiError::NullPointer)?;
                MatStore::Coo(
                    Arc::new(
                        Coo::from_parts(nrows, ncols, rows, cols, values).map_err(api_invalid)?,
                    ),
                    CooDup::Reject,
                )
            }
            Format::DenseRow => MatStore::Dense(Arc::new(
                Dense::from_parts(nrows, ncols, Layout::RowMajor, values).map_err(api_invalid)?,
            )),
            Format::DenseCol => MatStore::Dense(Arc::new(
                Dense::from_parts(nrows, ncols, Layout::ColMajor, values).map_err(api_invalid)?,
            )),
        };
        Ok(Matrix::from_state(
            ctx,
            MatrixState::fresh(nrows, ncols, store),
        ))
    }

    /// `GrB_Matrix_exportSize`: `(indptr_len, indices_len, values_len)`
    /// the caller must allocate for `format`.
    pub fn export_size(&self, format: Format) -> GrbResult<(usize, usize, usize)> {
        let nnz = self.nvals()?;
        let (nrows, ncols) = self.shape();
        Ok(match format {
            Format::Csr => (nrows + 1, nnz, nnz),
            Format::Csc => (ncols + 1, nnz, nnz),
            Format::Coo => (nnz, nnz, nnz),
            Format::DenseRow | Format::DenseCol => {
                let dense = nrows.checked_mul(ncols).ok_or(ApiError::InvalidValue)?;
                (0, 0, dense)
            }
        })
    }

    /// `GrB_Matrix_export` into caller-allocated buffers. The buffers'
    /// *capacities* must cover [`Matrix::export_size`]; the call clears and
    /// fills them without reallocating, returning
    /// `GrB_INSUFFICIENT_SPACE` otherwise.
    pub fn export_into(
        &self,
        format: Format,
        indptr: &mut Vec<Index>,
        indices: &mut Vec<Index>,
        values: &mut Vec<T>,
    ) -> GrbResult {
        let (np, ni, nv) = self.export_size(format)?;
        if indptr.capacity() < np || indices.capacity() < ni || values.capacity() < nv {
            return Err(Error::exec(
                ExecErrorKind::InsufficientSpace,
                format!(
                    "export requires capacities ({np}, {ni}, {nv}); got ({}, {}, {})",
                    indptr.capacity(),
                    indices.capacity(),
                    values.capacity()
                ),
            ));
        }
        let (p, i, v) = self.export(format)?;
        indptr.clear();
        indptr.extend(p);
        indices.clear();
        indices.extend(i);
        values.clear();
        values.extend(v);
        Ok(())
    }

    /// One-step export: `(indptr, indices, values)` in `format` (empty
    /// vectors where Table III marks arrays unused).
    pub fn export(&self, format: Format) -> GrbResult<(Vec<Index>, Vec<Index>, Vec<T>)> {
        let ctx = self.context();
        let csr = self.snapshot_csr(true)?;
        Ok(match format {
            Format::Csr => {
                let (p, i, v) = (*csr).clone().into_parts();
                (p, i, v)
            }
            Format::Csc => {
                let csc = Csc::from_csr(&ctx, &csr);
                let (p, i, v) = csc.into_parts();
                (p, i, v)
            }
            Format::Coo => {
                let (rows, cols, vals) = csr.tuples();
                // Table III: indptr ← column indices, indices ← row indices.
                (cols, rows, vals)
            }
            Format::DenseRow => {
                let d = Dense::from_csr_full(&ctx, &csr, Layout::RowMajor).map_err(api_invalid)?;
                (Vec::new(), Vec::new(), d.into_values())
            }
            Format::DenseCol => {
                let d = Dense::from_csr_full(&ctx, &csr, Layout::ColMajor).map_err(api_invalid)?;
                (Vec::new(), Vec::new(), d.into_values())
            }
        })
    }

    /// `GrB_Matrix_exportHint`: the format the implementation believes is
    /// cheapest to export right now — the current internal format. Returns
    /// `None` (the C API's `GrB_NO_VALUE`) while the sequence is still
    /// pending, since the final format is not yet determined.
    pub fn export_hint(&self) -> Option<Format> {
        if self.pending_len() > 0 {
            return None;
        }
        let st = self.inner_store_kind();
        Some(st)
    }

    pub(crate) fn inner_store_kind(&self) -> Format {
        let st = self.lock_raw();
        match &st.store {
            MatStore::Csr(_) => Format::Csr,
            MatStore::Csc(_) => Format::Csc,
            MatStore::Coo(_, _) => Format::Coo,
            MatStore::Dense(d) => match d.layout() {
                Layout::RowMajor => Format::DenseRow,
                Layout::ColMajor => Format::DenseCol,
            },
        }
    }
}

impl<T: ValueType> Vector<T> {
    /// `GrB_Vector_import` into the global context.
    pub fn import(
        n: Index,
        format: VectorFormat,
        indices: Option<Vec<Index>>,
        values: Vec<T>,
    ) -> GrbResult<Self> {
        Self::import_in(
            &graphblas_exec::global_context(),
            n,
            format,
            indices,
            values,
        )
    }

    /// `GrB_Vector_import`: constructs a vector from Table III arrays.
    pub fn import_in(
        ctx: &graphblas_exec::Context,
        n: Index,
        format: VectorFormat,
        indices: Option<Vec<Index>>,
        values: Vec<T>,
    ) -> GrbResult<Self> {
        if n == 0 {
            return Err(ApiError::InvalidValue.into());
        }
        let store = match format {
            VectorFormat::Sparse => {
                let indices = indices.ok_or(ApiError::NullPointer)?;
                let sv = SparseVec::from_parts(n, indices, values).map_err(api_invalid)?;
                VecStore::Sparse(Arc::new(sv))
            }
            VectorFormat::Dense => {
                if values.len() != n {
                    return Err(ApiError::InvalidValue.into());
                }
                VecStore::Dense(Arc::new(DenseVec::from_values(values)))
            }
        };
        Ok(Vector::from_state(ctx, VectorState::fresh(n, store)))
    }

    /// `GrB_Vector_exportSize`: `(indices_len, values_len)`.
    pub fn export_size(&self, format: VectorFormat) -> GrbResult<(usize, usize)> {
        let nnz = self.nvals()?;
        Ok(match format {
            VectorFormat::Sparse => (nnz, nnz),
            VectorFormat::Dense => (0, self.size()),
        })
    }

    /// `GrB_Vector_export` into caller-allocated buffers (capacity
    /// protocol as in [`Matrix::export_into`]).
    pub fn export_into(
        &self,
        format: VectorFormat,
        indices: &mut Vec<Index>,
        values: &mut Vec<T>,
    ) -> GrbResult {
        let (ni, nv) = self.export_size(format)?;
        if indices.capacity() < ni || values.capacity() < nv {
            return Err(Error::exec(
                ExecErrorKind::InsufficientSpace,
                format!(
                    "export requires capacities ({ni}, {nv}); got ({}, {})",
                    indices.capacity(),
                    values.capacity()
                ),
            ));
        }
        let (i, v) = self.export(format)?;
        indices.clear();
        indices.extend(i);
        values.clear();
        values.extend(v);
        Ok(())
    }

    /// One-step export.
    pub fn export(&self, format: VectorFormat) -> GrbResult<(Vec<Index>, Vec<T>)> {
        let sv = self.snapshot_sparse()?;
        Ok(match format {
            VectorFormat::Sparse => {
                let (i, v) = (*sv).clone().into_parts();
                (i, v)
            }
            VectorFormat::Dense => {
                let d = DenseVec::from_sparse_full(&sv).map_err(api_invalid)?;
                (Vec::new(), d.into_values())
            }
        })
    }

    /// `GrB_Vector_exportHint` (see [`Matrix::export_hint`]).
    pub fn export_hint(&self) -> Option<VectorFormat> {
        if self.pending_len() > 0 {
            return None;
        }
        Some(match &self.lock_raw().store {
            VecStore::Sparse(_) => VectorFormat::Sparse,
            VecStore::Dense(_) => VectorFormat::Dense,
            // Bitmap is an internal frontier format; its cheapest export
            // is the index-list form.
            VecStore::Bitmap(_) => VectorFormat::Sparse,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_codes_are_pinned() {
        assert_eq!(Format::Csr as i32, 0);
        assert_eq!(Format::Csc as i32, 1);
        assert_eq!(Format::Coo as i32, 2);
        assert_eq!(Format::DenseRow as i32, 3);
        assert_eq!(Format::DenseCol as i32, 4);
        assert_eq!(VectorFormat::Sparse as i32, 5);
        assert_eq!(VectorFormat::Dense as i32, 6);
    }

    #[test]
    fn csr_import_export_roundtrip() {
        let m = Matrix::<i64>::import(
            2,
            3,
            Format::Csr,
            Some(vec![0, 2, 3]),
            Some(vec![0, 2, 1]),
            vec![1, 2, 3],
        )
        .unwrap();
        assert_eq!(m.extract_element(0, 2).unwrap(), Some(2));
        assert_eq!(m.export_hint(), Some(Format::Csr));
        let (p, i, v) = m.export(Format::Csr).unwrap();
        assert_eq!(p, vec![0, 2, 3]);
        assert_eq!(i, vec![0, 2, 1]);
        assert_eq!(v, vec![1, 2, 3]);
    }

    #[test]
    fn all_formats_roundtrip_through_each_other() {
        let src =
            Matrix::<i32>::import(2, 2, Format::DenseRow, None, None, vec![1, 2, 3, 4]).unwrap();
        assert_eq!(src.export_hint(), Some(Format::DenseRow));
        for fmt in [
            Format::Csr,
            Format::Csc,
            Format::Coo,
            Format::DenseRow,
            Format::DenseCol,
        ] {
            let (p, i, v) = src.export(fmt).unwrap();
            let m = Matrix::<i32>::import(
                2,
                2,
                fmt,
                (!p.is_empty()).then_some(p),
                (!i.is_empty()).then_some(i),
                v,
            )
            .unwrap();
            assert_eq!(m.export_hint(), Some(fmt));
            for r in 0..2 {
                for c in 0..2 {
                    assert_eq!(
                        m.extract_element(r, c).unwrap(),
                        src.extract_element(r, c).unwrap(),
                        "format {fmt:?} mismatch at ({r},{c})"
                    );
                }
            }
        }
    }

    #[test]
    fn export_size_and_capacity_protocol() {
        let m = Matrix::<i64>::import(
            2,
            2,
            Format::Coo,
            Some(vec![0, 1]),
            Some(vec![0, 1]),
            vec![5, 6],
        )
        .unwrap();
        let (np, ni, nv) = m.export_size(Format::Csr).unwrap();
        assert_eq!((np, ni, nv), (3, 2, 2));
        let mut p = Vec::with_capacity(np);
        let mut i = Vec::with_capacity(ni);
        let mut v = Vec::with_capacity(nv);
        m.export_into(Format::Csr, &mut p, &mut i, &mut v).unwrap();
        assert_eq!(p, vec![0, 1, 2]);
        // Undersized buffers → GrB_INSUFFICIENT_SPACE.
        let mut small: Vec<Index> = Vec::new();
        let mut i2 = Vec::with_capacity(ni);
        let mut v2 = Vec::with_capacity(nv);
        let err = m
            .export_into(Format::Csr, &mut small, &mut i2, &mut v2)
            .unwrap_err();
        assert_eq!(err.code(), -103);
    }

    #[test]
    fn coo_import_defers_duplicate_error() {
        let m = Matrix::<i64>::import(
            2,
            2,
            Format::Coo,
            Some(vec![0, 0]), // column indices
            Some(vec![1, 1]), // row indices
            vec![7, 8],
        )
        .unwrap();
        // The duplicate surfaces when the store is canonicalized.
        let err = m.nvals().unwrap_err();
        assert!(err.is_execution());
    }

    #[test]
    fn dense_export_requires_full_matrix() {
        let m = Matrix::<i64>::new(2, 2).unwrap();
        m.set_element(1, 0, 0).unwrap();
        assert!(m.export(Format::DenseRow).is_err());
    }

    #[test]
    fn missing_arrays_are_null_pointer_errors() {
        let err = Matrix::<i64>::import(2, 2, Format::Csr, None, Some(vec![]), vec![]).unwrap_err();
        assert_eq!(err, Error::Api(ApiError::NullPointer));
    }

    #[test]
    fn vector_import_export() {
        let v = Vector::<f64>::import(4, VectorFormat::Sparse, Some(vec![1, 3]), vec![1.5, 3.5])
            .unwrap();
        assert_eq!(v.export_hint(), Some(VectorFormat::Sparse));
        assert_eq!(v.extract_element(3).unwrap(), Some(3.5));
        let d = Vector::<f64>::import(3, VectorFormat::Dense, None, vec![1.0, 2.0, 3.0]).unwrap();
        assert_eq!(d.export_hint(), Some(VectorFormat::Dense));
        let (i, vals) = d.export(VectorFormat::Sparse).unwrap();
        assert_eq!(i, vec![0, 1, 2]);
        assert_eq!(vals, vec![1.0, 2.0, 3.0]);
        // Dense export of a partial vector fails.
        assert!(v.export(VectorFormat::Dense).is_err());
        // Capacity protocol.
        let (ni, nv) = v.export_size(VectorFormat::Sparse).unwrap();
        let mut ib = Vec::with_capacity(ni);
        let mut vb = Vec::with_capacity(nv);
        v.export_into(VectorFormat::Sparse, &mut ib, &mut vb)
            .unwrap();
        assert_eq!(ib, vec![1, 3]);
        let mut too_small: Vec<Index> = Vec::new();
        let mut vb2 = Vec::with_capacity(nv);
        assert_eq!(
            v.export_into(VectorFormat::Sparse, &mut too_small, &mut vb2)
                .unwrap_err()
                .code(),
            -103
        );
    }

    #[test]
    fn export_hint_is_none_while_pending() {
        use graphblas_exec::{Context, ContextOptions, Mode};
        let ctx = Context::new(
            &crate::global_context(),
            Mode::NonBlocking,
            ContextOptions::default(),
        );
        let m = Matrix::<i64>::new_in(&ctx, 2, 2).unwrap();
        m.build(&[0], &[0], &[1], None).unwrap();
        assert_eq!(m.export_hint(), None);
        m.wait(crate::WaitMode::Complete).unwrap();
        assert!(m.export_hint().is_some());
    }
}
