//! Nonblocking execution-DAG knobs (paper §III).
//!
//! The pending engine (see [`crate::pending`]) generalizes from fusible
//! map chains to a true lazy op DAG: operations append [`Stage::Node`]
//! stages whose numeric kernels can absorb neighbouring map stages (the
//! cross-*operation* fusion latitude §III grants a nonblocking
//! implementation). This module owns the runtime switches:
//!
//! * `GRB_NONBLOCKING=0` — global opt-out. Containers in nonblocking
//!   contexts still defer work, but every deferred op is enqueued as an
//!   opaque stage exactly as before this engine existed, reproducing the
//!   old behavior bit-for-bit (the equivalence tests assert this).
//! * `GRB_ASYNC_DRAIN=0` — keep deferral lazy but never hand a drain to
//!   the worker pool; drains happen only when a read/wait forces them.
//! * `GRB_ASYNC_DRAIN_DEPTH=<n>` — queue depth at which a container
//!   offers its drain to `exec::pool` (default 8). The threshold keeps
//!   short op chains intact so node stages still find trailing maps to
//!   fuse; only long backlogs drain eagerly in the background.
//!
//! Each knob also has a programmatic override (`set_nonblocking_dag`,
//! `set_async_drain`) because the environment is read once per process —
//! tests and the blocking-vs-nonblocking ablation flip modes many times
//! in one run.
//!
//! [`Stage::Node`]: crate::pending::Stage::Node

use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Tri-state programmatic override: 0 = follow env, 1 = forced off,
/// 2 = forced on.
// grbsa: protocol=config-flag — independently published mode flag; no
// other memory is ordered against it.
static DAG_FORCE: AtomicU8 = AtomicU8::new(0);
static ASYNC_FORCE: AtomicU8 = AtomicU8::new(0);
/// Programmatic drain-depth override; `usize::MAX` means "follow env".
// grbsa: protocol=config-flag — tuning knob read at enqueue time only.
static DEPTH_FORCE: AtomicUsize = AtomicUsize::new(usize::MAX);

fn env_dag_enabled() -> bool {
    static ON: OnceLock<bool> = OnceLock::new();
    *ON.get_or_init(|| std::env::var("GRB_NONBLOCKING").map_or(true, |v| v != "0"))
}

fn env_async_enabled() -> bool {
    static ON: OnceLock<bool> = OnceLock::new();
    *ON.get_or_init(|| std::env::var("GRB_ASYNC_DRAIN").map_or(true, |v| v != "0"))
}

fn env_async_depth() -> usize {
    static DEPTH: OnceLock<usize> = OnceLock::new();
    *DEPTH.get_or_init(|| {
        std::env::var("GRB_ASYNC_DRAIN_DEPTH")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(8)
    })
}

/// Whether nonblocking containers build the fused op DAG (`Stage::Node`)
/// or fall back to the pre-DAG opaque-stage queue.
pub fn dag_enabled() -> bool {
    match DAG_FORCE.load(Ordering::SeqCst) {
        1 => false,
        2 => true,
        _ => env_dag_enabled(),
    }
}

/// Forces the DAG on/off for this process (`None` returns control to the
/// `GRB_NONBLOCKING` environment variable). Used by the equivalence tests
/// and the bench ablation.
pub fn set_nonblocking_dag(mode: Option<bool>) {
    DAG_FORCE.store(
        mode.map_or(0, |on| if on { 2 } else { 1 }),
        Ordering::SeqCst,
    );
}

/// Whether deep pending queues may drain asynchronously on the pool.
pub fn async_drain_enabled() -> bool {
    match ASYNC_FORCE.load(Ordering::SeqCst) {
        1 => false,
        2 => true,
        _ => env_async_enabled(),
    }
}

/// Forces async drains on/off (`None` follows `GRB_ASYNC_DRAIN`).
pub fn set_async_drain(mode: Option<bool>) {
    ASYNC_FORCE.store(
        mode.map_or(0, |on| if on { 2 } else { 1 }),
        Ordering::SeqCst,
    );
}

/// Queue depth at which a container offers its backlog to the pool.
pub fn async_drain_depth() -> usize {
    let forced = DEPTH_FORCE.load(Ordering::SeqCst);
    if forced != usize::MAX {
        forced
    } else {
        env_async_depth()
    }
}

/// Overrides the async-drain depth threshold (`None` follows
/// `GRB_ASYNC_DRAIN_DEPTH`).
pub fn set_async_drain_depth(depth: Option<usize>) {
    DEPTH_FORCE.store(depth.unwrap_or(usize::MAX), Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forced_modes_override_env() {
        set_nonblocking_dag(Some(false));
        assert!(!dag_enabled());
        set_nonblocking_dag(Some(true));
        assert!(dag_enabled());
        set_nonblocking_dag(None);

        set_async_drain(Some(false));
        assert!(!async_drain_enabled());
        set_async_drain(None);

        set_async_drain_depth(Some(3));
        assert_eq!(async_drain_depth(), 3);
        set_async_drain_depth(None);
    }
}
