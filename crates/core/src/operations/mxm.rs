//! `GrB_mxm`: masked, accumulated matrix-matrix multiply over a semiring.

use std::sync::Arc;

use graphblas_sparse::spgemm;

use crate::descriptor::Descriptor;
use crate::error::{ApiError, GrbResult};
use crate::matrix::{MatStore, Matrix};
use crate::operations::{eff_shape, note_dag_fusion, snapshot_matmask, snapshot_operand};
use crate::ops::{registry, BinaryOp, Semiring};
use crate::pending::NodeKind;
use crate::types::{MaskValue, ValueType};
use crate::write;

/// `C⟨M, r⟩ = C ⊙ (A ⊕.⊗ B)`.
///
/// When a non-complemented mask is present without an accumulator the
/// kernel runs in masked form (`spgemm_masked`), never materializing
/// products outside the mask — the optimization that makes masked triangle
/// counting linear in the mask size.
pub fn mxm<C, M, A, B>(
    c: &Matrix<C>,
    mask: Option<&Matrix<M>>,
    accum: Option<&BinaryOp<C, C, C>>,
    semiring: &Semiring<A, B, C>,
    a: &Matrix<A>,
    b: &Matrix<B>,
    desc: &Descriptor,
) -> GrbResult
where
    C: ValueType,
    M: MaskValue,
    A: ValueType,
    B: ValueType,
{
    let ctx = c.context();
    let _op = graphblas_obs::span_ctx("op.mxm", ctx.id());
    a.check_context(&ctx)?;
    b.check_context(&ctx)?;
    if let Some(m) = mask {
        m.check_context(&ctx)?;
        if m.shape() != c.shape() {
            return Err(ApiError::DimensionMismatch.into());
        }
    }
    let (am, an) = eff_shape(a, desc.transpose_a);
    let (bm, bn) = eff_shape(b, desc.transpose_b);
    if an != bm || c.shape() != (am, bn) {
        return Err(ApiError::DimensionMismatch.into());
    }

    let a_s = snapshot_operand(a, &ctx, desc.transpose_a, false)?;
    let b_s = snapshot_operand(b, &ctx, desc.transpose_b, false)?;
    let mask_s = snapshot_matmask(mask, desc)?;
    let sr = semiring.clone();
    let accum = accum.cloned();
    let replace = desc.replace;
    let ctx2 = ctx.clone();

    c.apply_node(
        NodeKind::MxM,
        Box::new(move |st, post| {
            let nnz_in = a_s.nnz() + b_s.nnz();
            let mul = |x: &A, y: &B| sr.multiply(x, y);
            let add = |acc: &mut C, z: C| *acc = sr.combine(acc, &z);
            let add_tag = sr.add().builtin();
            let mul_tag = sr.mul().builtin();
            // Masked kernel: only valid when the merge wants exactly the
            // mask-restricted product (no accumulator folding old values in).
            let use_masked_kernel = mask_s.is_some() && accum.is_none();
            let t = if use_masked_kernel {
                // grblint: allow(no-unwrap) — use_masked_kernel implies mask_s
                // is Some (checked one line up).
                let m = mask_s.as_ref().expect("checked");
                match registry::try_spgemm_masked(
                    &ctx2,
                    &m.mask,
                    m.complement,
                    &a_s,
                    &b_s,
                    add_tag,
                    mul_tag,
                ) {
                    Some(t) => t,
                    None => {
                        registry::record_pick("mxm", ctx2.id(), false);
                        spgemm::spgemm_masked(
                            &ctx2,
                            &m.mask,
                            m.complement,
                            |b: &bool| *b,
                            &a_s,
                            &b_s,
                            mul,
                            add,
                        )
                    }
                }
            } else {
                match registry::try_spgemm(&ctx2, &a_s, &b_s, add_tag, mul_tag) {
                    Some(t) => t,
                    None => {
                        registry::record_pick("mxm", ctx2.id(), false);
                        spgemm::spgemm(&ctx2, &a_s, &b_s, mul, add)
                    }
                }
            };
            note_dag_fusion("mxm", ctx2.id(), NodeKind::MxM, 0, post.len(), nnz_in);
            if mask_s.is_none() && accum.is_none() {
                st.store = MatStore::Csr(Arc::new(t));
            } else {
                st.ensure_csr(&ctx2, true)?;
                let merged = write::merge_matrix(
                    &ctx2,
                    st.csr(),
                    t,
                    mask_s.as_ref(),
                    accum.as_ref(),
                    replace,
                );
                st.store = MatStore::Csr(Arc::new(merged));
            }
            st.apply_post_maps(&ctx2, &post)?;
            Ok(())
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operations::testutil::{mat, mat_tuples};
    use crate::{no_mask, Descriptor};

    #[test]
    fn plus_times_basic() {
        let a = mat((2, 3), &[(0, 0, 1i64), (0, 1, 2), (1, 2, 3)]);
        let b = mat((3, 2), &[(0, 0, 4i64), (1, 0, 5), (1, 1, 6), (2, 1, 7)]);
        let c = Matrix::<i64>::new(2, 2).unwrap();
        mxm(
            &c,
            no_mask(),
            None,
            &Semiring::plus_times(),
            &a,
            &b,
            &Descriptor::default(),
        )
        .unwrap();
        assert_eq!(mat_tuples(&c), vec![(0, 0, 14), (0, 1, 12), (1, 1, 21)]);
    }

    #[test]
    fn dimension_mismatch_is_api_error() {
        let a = Matrix::<i64>::new(2, 3).unwrap();
        let b = Matrix::<i64>::new(4, 2).unwrap();
        let c = Matrix::<i64>::new(2, 2).unwrap();
        let err = mxm(
            &c,
            no_mask(),
            None,
            &Semiring::plus_times(),
            &a,
            &b,
            &Descriptor::default(),
        )
        .unwrap_err();
        assert_eq!(err, crate::Error::Api(ApiError::DimensionMismatch));
    }

    #[test]
    fn transpose_descriptors() {
        // A is 3x2; with INP0 transposed it acts as 2x3.
        let a = mat((3, 2), &[(0, 0, 1i64), (1, 0, 2), (2, 1, 3)]);
        let b = mat((3, 2), &[(0, 1, 10i64), (2, 0, 20)]);
        let c = Matrix::<i64>::new(2, 2).unwrap();
        mxm(
            &c,
            no_mask(),
            None,
            &Semiring::plus_times(),
            &a,
            &b,
            &Descriptor::new().transpose_a(),
        )
        .unwrap();
        // Aᵀ = [[1,2,0],[0,0,3]]; AᵀB = [[0,10],[60,0]]
        assert_eq!(mat_tuples(&c), vec![(0, 1, 10), (1, 0, 60)]);
    }

    #[test]
    fn masked_mxm_restricts_output() {
        let a = mat((2, 2), &[(0, 0, 1i64), (0, 1, 1), (1, 0, 1), (1, 1, 1)]);
        let mask = mat((2, 2), &[(0, 0, true), (1, 1, true)]);
        let c = Matrix::<i64>::new(2, 2).unwrap();
        mxm(
            &c,
            Some(&mask),
            None,
            &Semiring::plus_times(),
            &a,
            &a,
            &Descriptor::default(),
        )
        .unwrap();
        assert_eq!(mat_tuples(&c), vec![(0, 0, 2), (1, 1, 2)]);
    }

    #[test]
    fn accum_merges_with_old_contents() {
        let a = mat((1, 1), &[(0, 0, 3i64)]);
        let c = mat((1, 1), &[(0, 0, 100i64)]);
        mxm(
            &c,
            no_mask(),
            Some(&BinaryOp::plus()),
            &Semiring::plus_times(),
            &a,
            &a,
            &Descriptor::default(),
        )
        .unwrap();
        assert_eq!(mat_tuples(&c), vec![(0, 0, 109)]);
    }

    #[test]
    fn complemented_mask_with_replace() {
        let a = mat((2, 2), &[(0, 0, 1i64), (1, 1, 1)]);
        let mask = mat((2, 2), &[(0, 0, true)]);
        let c = mat((2, 2), &[(0, 1, 42i64)]);
        // Complement: only (0,1),(1,0),(1,1) writable; replace clears rest.
        mxm(
            &c,
            Some(&mask),
            None,
            &Semiring::plus_times(),
            &a,
            &a,
            &Descriptor::new().complement_mask().replace(),
        )
        .unwrap();
        assert_eq!(mat_tuples(&c), vec![(1, 1, 1)]);
    }

    #[test]
    fn boolean_reachability_squared() {
        // Path 0→1→2; A² over LOR.LAND gives the 2-hop reachability 0→2.
        let a = mat((3, 3), &[(0, 1, true), (1, 2, true)]);
        let c = Matrix::<bool>::new(3, 3).unwrap();
        mxm(
            &c,
            no_mask(),
            None,
            &Semiring::lor_land(),
            &a,
            &a,
            &Descriptor::default(),
        )
        .unwrap();
        assert_eq!(mat_tuples(&c), vec![(0, 2, true)]);
    }
}
