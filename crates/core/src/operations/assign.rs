//! `GrB_assign`: writes a matrix/vector/scalar into a region `C(I, J)` of
//! a larger container, under the usual mask/accumulator/replace semantics
//! (the mask has the shape of the *whole* output, as in `GrB_assign`, not
//! the subassign variant).
//!
//! Table II adds the `GrB_Scalar` forms (`assign_scalar_grb` /
//! `assign_scalar_v_grb`); per the 2.0 uniformity rules an *empty* scalar
//! argument is a `GrB_EMPTY_OBJECT` execution error.

use std::sync::Arc;

use graphblas_sparse::{ewise, Coo, Csr, SparseVec};

use crate::descriptor::Descriptor;
use crate::error::{ApiError, Error, ExecErrorKind, GrbResult};
use crate::matrix::{MatStore, Matrix};
use crate::operations::{note_dag_fusion, snapshot_matmask, snapshot_operand, snapshot_vecmask};
use crate::ops::BinaryOp;
use crate::pending::NodeKind;
use crate::scalar::Scalar;
use crate::types::{Index, MaskValue, ValueType};
use crate::vector::{VecStore, Vector};
use crate::write;

/// Validates selector arrays against a bound; OOB entries are data, hence
/// execution errors.
fn check_selectors(sel: &[Index], bound: usize, axis: &str) -> GrbResult {
    if let Some(&bad) = sel.iter().find(|&&i| i >= bound) {
        return Err(Error::exec(
            ExecErrorKind::IndexOutOfBounds,
            format!("assign: {axis} selector {bad} out of bounds ({bound})"),
        ));
    }
    Ok(())
}

/// Computes "C with region (I×J) replaced by `mapped`" where `mapped` is
/// already in C-coordinates; `accum` folds old region values.
fn splice_region<T: ValueType>(
    ctx: &graphblas_exec::Context,
    old: &Csr<T>,
    mapped: Csr<T>,
    row_in: &[bool],
    col_in: &[bool],
    accum: Option<&BinaryOp<T, T, T>>,
) -> Csr<T> {
    let outside = old.filter_map_with_index(ctx, |i, j, v| {
        (!(row_in[i] && col_in[j])).then(|| v.clone())
    });
    let inside = match accum {
        None => mapped,
        Some(op) => {
            let old_inside = old
                .filter_map_with_index(ctx, |i, j, v| (row_in[i] && col_in[j]).then(|| v.clone()));
            ewise::ewise_union(ctx, &old_inside, &mapped, |x, y| op.apply(x, y))
        }
    };
    ewise::ewise_union(ctx, &outside, &inside, |x, _| x.clone())
}

/// `C⟨M, r⟩(I, J) = C(I, J) ⊙ A`.
pub fn assign<T, M>(
    c: &Matrix<T>,
    mask: Option<&Matrix<M>>,
    accum: Option<&BinaryOp<T, T, T>>,
    a: &Matrix<T>,
    rows: &[Index],
    cols: &[Index],
    desc: &Descriptor,
) -> GrbResult
where
    T: ValueType,
    M: MaskValue,
{
    let ctx = c.context();
    let _op = graphblas_obs::span_ctx("op.assign", ctx.id());
    a.check_context(&ctx)?;
    if let Some(m) = mask {
        m.check_context(&ctx)?;
        if m.shape() != c.shape() {
            return Err(ApiError::DimensionMismatch.into());
        }
    }
    if crate::operations::eff_shape(a, desc.transpose_a) != (rows.len(), cols.len()) {
        return Err(ApiError::DimensionMismatch.into());
    }
    let a_s = snapshot_operand(a, &ctx, desc.transpose_a, true)?;
    let mask_s = snapshot_matmask(mask, desc)?;
    let rows = rows.to_vec();
    let cols = cols.to_vec();
    let accum = accum.cloned();
    let replace = desc.replace;
    let ctx2 = ctx.clone();
    c.apply_node(
        NodeKind::Assign,
        Box::new(move |st, post| {
            check_selectors(&rows, st.nrows, "row")?;
            check_selectors(&cols, st.ncols, "column")?;
            let mut row_in = vec![false; st.nrows];
            let mut col_in = vec![false; st.ncols];
            for &i in &rows {
                row_in[i] = true;
            }
            for &j in &cols {
                col_in[j] = true;
            }
            // Map A into C coordinates (duplicate selector targets resolve
            // last-wins; the spec leaves duplicates undefined).
            let (ar, ac, av) = a_s.tuples();
            let mapped_coo = Coo::from_parts(
                st.nrows,
                st.ncols,
                ar.into_iter().map(|i| rows[i]).collect(),
                ac.into_iter().map(|j| cols[j]).collect(),
                av,
            )
            .map_err(Error::from)?;
            let second = |_: &T, b: &T| b.clone();
            let mapped = mapped_coo
                .to_csr(&ctx2, Some(&second))
                .map_err(Error::from)?;
            st.ensure_csr(&ctx2, true)?;
            let spliced = splice_region(&ctx2, st.csr(), mapped, &row_in, &col_in, accum.as_ref());
            // The mask applies over all of C; accumulation already happened.
            let merged =
                write::merge_matrix(&ctx2, st.csr(), spliced, mask_s.as_ref(), None, replace);
            st.store = MatStore::Csr(Arc::new(merged));
            note_dag_fusion(
                "assign",
                ctx2.id(),
                NodeKind::Assign,
                0,
                post.len(),
                a_s.nnz(),
            );
            st.apply_post_maps(&ctx2, &post)?;
            Ok(())
        }),
    )
}

/// `w⟨m, r⟩(I) = w(I) ⊙ u`.
pub fn assign_v<T, M>(
    w: &Vector<T>,
    mask: Option<&Vector<M>>,
    accum: Option<&BinaryOp<T, T, T>>,
    u: &Vector<T>,
    indices: &[Index],
    desc: &Descriptor,
) -> GrbResult
where
    T: ValueType,
    M: MaskValue,
{
    let ctx = w.context();
    let _op = graphblas_obs::span_ctx("op.assign_v", ctx.id());
    u.check_context(&ctx)?;
    if let Some(m) = mask {
        m.check_context(&ctx)?;
        if m.size() != w.size() {
            return Err(ApiError::DimensionMismatch.into());
        }
    }
    if u.size() != indices.len() {
        return Err(ApiError::DimensionMismatch.into());
    }
    let u_s = u.snapshot_sparse()?;
    let mask_s = snapshot_vecmask(mask, desc)?;
    let indices = indices.to_vec();
    let accum = accum.cloned();
    let replace = desc.replace;
    let ctx2 = ctx.clone();
    w.apply_node(
        NodeKind::Assign,
        Box::new(move |st, post| {
            check_selectors(&indices, st.n, "index")?;
            let mut in_region = vec![false; st.n];
            for &i in &indices {
                in_region[i] = true;
            }
            let mut mapped = SparseVec::from_parts(
                st.n,
                u_s.iter().map(|(i, _)| indices[i]).collect(),
                u_s.values().to_vec(),
            )
            .map_err(Error::from)?;
            mapped
                .sort_dedup(Some(&|_: &T, b: &T| b.clone()))
                .map_err(Error::from)?;
            st.ensure_sparse()?;
            let old = st.sparse().clone();
            let outside = old.filter_map_with_index(|i, v| (!in_region[i]).then(|| v.clone()));
            let inside = match &accum {
                None => mapped,
                Some(op) => {
                    let old_inside =
                        old.filter_map_with_index(|i, v| in_region[i].then(|| v.clone()));
                    ewise::svec_union(&old_inside, &mapped, |x, y| op.apply(x, y))
                }
            };
            let spliced = ewise::svec_union(&outside, &inside, |x, _| x.clone());
            let merged = write::merge_vector(&old, spliced, mask_s.as_ref(), None, replace);
            st.store = VecStore::Sparse(Arc::new(merged));
            note_dag_fusion(
                "assign_v",
                ctx2.id(),
                NodeKind::Assign,
                0,
                post.len(),
                u_s.nnz(),
            );
            st.apply_post_maps(&post)?;
            Ok(())
        }),
    )
}

/// `C⟨M, r⟩(I, J) = C(I, J) ⊙ s` — fills *every* position of the region
/// with the scalar value.
pub fn assign_scalar<T, M>(
    c: &Matrix<T>,
    mask: Option<&Matrix<M>>,
    accum: Option<&BinaryOp<T, T, T>>,
    value: T,
    rows: &[Index],
    cols: &[Index],
    desc: &Descriptor,
) -> GrbResult
where
    T: ValueType,
    M: MaskValue,
{
    let ctx = c.context();
    let _op = graphblas_obs::span_ctx("op.assign_scalar", ctx.id());
    if let Some(m) = mask {
        m.check_context(&ctx)?;
        if m.shape() != c.shape() {
            return Err(ApiError::DimensionMismatch.into());
        }
    }
    let mask_s = snapshot_matmask(mask, desc)?;
    let rows = rows.to_vec();
    let cols = cols.to_vec();
    let accum = accum.cloned();
    let replace = desc.replace;
    let ctx2 = ctx.clone();
    c.apply_node(
        NodeKind::Assign,
        Box::new(move |st, post| {
            check_selectors(&rows, st.nrows, "row")?;
            check_selectors(&cols, st.ncols, "column")?;
            let mut row_in = vec![false; st.nrows];
            let mut col_in = vec![false; st.ncols];
            for &i in &rows {
                row_in[i] = true;
            }
            for &j in &cols {
                col_in[j] = true;
            }
            let mut rr = Vec::with_capacity(rows.len() * cols.len());
            let mut cc = Vec::with_capacity(rows.len() * cols.len());
            let mut vv = Vec::with_capacity(rows.len() * cols.len());
            for &i in &rows {
                for &j in &cols {
                    rr.push(i);
                    cc.push(j);
                    vv.push(value.clone());
                }
            }
            let second = |_: &T, b: &T| b.clone();
            let mapped = Coo::from_parts(st.nrows, st.ncols, rr, cc, vv)
                .map_err(Error::from)?
                .to_csr(&ctx2, Some(&second))
                .map_err(Error::from)?;
            st.ensure_csr(&ctx2, true)?;
            let spliced = splice_region(&ctx2, st.csr(), mapped, &row_in, &col_in, accum.as_ref());
            let merged =
                write::merge_matrix(&ctx2, st.csr(), spliced, mask_s.as_ref(), None, replace);
            st.store = MatStore::Csr(Arc::new(merged));
            note_dag_fusion(
                "assign_scalar",
                ctx2.id(),
                NodeKind::Assign,
                0,
                post.len(),
                rows.len() * cols.len(),
            );
            st.apply_post_maps(&ctx2, &post)?;
            Ok(())
        }),
    )
}

/// Table II form of [`assign_scalar`] with a `GrB_Scalar` argument.
pub fn assign_scalar_grb<T, M>(
    c: &Matrix<T>,
    mask: Option<&Matrix<M>>,
    accum: Option<&BinaryOp<T, T, T>>,
    s: &Scalar<T>,
    rows: &[Index],
    cols: &[Index],
    desc: &Descriptor,
) -> GrbResult
where
    T: ValueType,
    M: MaskValue,
{
    let _op = graphblas_obs::span_ctx("op.assign_scalar_grb", 0);
    let v = s.extract_element()?.ok_or_else(|| {
        Error::exec(
            ExecErrorKind::EmptyObject,
            "assign requires a non-empty GrB_Scalar",
        )
    })?;
    assign_scalar(c, mask, accum, v, rows, cols, desc)
}

/// `w⟨m, r⟩(I) = w(I) ⊙ s`.
pub fn assign_scalar_v<T, M>(
    w: &Vector<T>,
    mask: Option<&Vector<M>>,
    accum: Option<&BinaryOp<T, T, T>>,
    value: T,
    indices: &[Index],
    desc: &Descriptor,
) -> GrbResult
where
    T: ValueType,
    M: MaskValue,
{
    let ctx = w.context();
    let _op = graphblas_obs::span_ctx("op.assign_scalar_v", ctx.id());
    if let Some(m) = mask {
        m.check_context(&ctx)?;
        if m.size() != w.size() {
            return Err(ApiError::DimensionMismatch.into());
        }
    }
    let mask_s = snapshot_vecmask(mask, desc)?;
    let indices = indices.to_vec();
    let accum = accum.cloned();
    let replace = desc.replace;
    let ctx2 = ctx.clone();
    w.apply_node(
        NodeKind::Assign,
        Box::new(move |st, post| {
            check_selectors(&indices, st.n, "index")?;
            let mut in_region = vec![false; st.n];
            for &i in &indices {
                in_region[i] = true;
            }
            let mut mapped = SparseVec::from_parts(
                st.n,
                indices.clone(),
                indices.iter().map(|_| value.clone()).collect(),
            )
            .map_err(Error::from)?;
            mapped
                .sort_dedup(Some(&|_: &T, b: &T| b.clone()))
                .map_err(Error::from)?;
            st.ensure_sparse()?;
            let old = st.sparse().clone();
            let outside = old.filter_map_with_index(|i, v| (!in_region[i]).then(|| v.clone()));
            let inside = match &accum {
                None => mapped,
                Some(op) => {
                    let old_inside =
                        old.filter_map_with_index(|i, v| in_region[i].then(|| v.clone()));
                    ewise::svec_union(&old_inside, &mapped, |x, y| op.apply(x, y))
                }
            };
            let spliced = ewise::svec_union(&outside, &inside, |x, _| x.clone());
            let merged = write::merge_vector(&old, spliced, mask_s.as_ref(), None, replace);
            st.store = VecStore::Sparse(Arc::new(merged));
            note_dag_fusion(
                "assign_scalar_v",
                ctx2.id(),
                NodeKind::Assign,
                0,
                post.len(),
                indices.len(),
            );
            st.apply_post_maps(&post)?;
            Ok(())
        }),
    )
}

/// `GrB_Row_assign`: `C⟨m', r⟩(i, J) = C(i, J) ⊙ uᵀ` — assigns a vector
/// into (part of) row `i`; the mask is a *vector* over the row.
pub fn assign_row<T, M>(
    c: &Matrix<T>,
    mask: Option<&Vector<M>>,
    accum: Option<&BinaryOp<T, T, T>>,
    u: &Vector<T>,
    i: Index,
    cols: &[Index],
    desc: &Descriptor,
) -> GrbResult
where
    T: ValueType,
    M: MaskValue,
{
    let ctx = c.context();
    let _op = graphblas_obs::span_ctx("op.assign_row", ctx.id());
    u.check_context(&ctx)?;
    if i >= c.shape().0 {
        return Err(ApiError::InvalidIndex.into());
    }
    if u.size() != cols.len() {
        return Err(ApiError::DimensionMismatch.into());
    }
    if let Some(m) = mask {
        m.check_context(&ctx)?;
        if m.size() != c.shape().1 {
            return Err(ApiError::DimensionMismatch.into());
        }
    }
    // Express as a 1×ncols matrix assign over row {i} with a row-shaped
    // matrix mask derived from the vector mask.
    let u_s = u.snapshot_sparse()?;
    let mask_s = snapshot_vecmask(mask, desc)?;
    let cols = cols.to_vec();
    let accum = accum.cloned();
    let replace = desc.replace;
    let ctx2 = ctx.clone();
    c.apply_node(
        NodeKind::Assign,
        Box::new(move |st, post| {
            check_selectors(&cols, st.ncols, "column")?;
            let mut col_in = vec![false; st.ncols];
            for &j in &cols {
                col_in[j] = true;
            }
            // Map u into row-i coordinates.
            let second = |_: &T, b: &T| b.clone();
            let mapped = Coo::from_parts(
                st.nrows,
                st.ncols,
                u_s.iter().map(|_| i).collect(),
                u_s.iter().map(|(k, _)| cols[k]).collect(),
                u_s.values().to_vec(),
            )
            .map_err(Error::from)?
            .to_csr(&ctx2, Some(&second))
            .map_err(Error::from)?;
            st.ensure_csr(&ctx2, true)?;
            let row_in: Vec<bool> = (0..st.nrows).map(|r| r == i).collect();
            let spliced = splice_region(&ctx2, st.csr(), mapped, &row_in, &col_in, accum.as_ref());
            // Vector mask lifted to a matrix mask over row i only; positions
            // outside row i are untouched regardless of replace (the C spec
            // scopes Row_assign's mask and replace to the row).
            let merged = match &mask_s {
                None => spliced,
                Some(vm) => {
                    let lifted_rows: Vec<usize> = vm.mask.iter().map(|_| i).collect();
                    let lifted_cols: Vec<usize> = vm.mask.indices().to_vec();
                    let lifted_vals: Vec<bool> = vm.mask.values().to_vec();
                    let lifted =
                        Coo::from_parts(st.nrows, st.ncols, lifted_rows, lifted_cols, lifted_vals)
                            .map_err(Error::from)?
                            .to_csr(&ctx2, None)
                            .map_err(Error::from)?;
                    let spec = crate::write::MatMask {
                        mask: std::sync::Arc::new(lifted),
                        complement: vm.complement,
                    };
                    // Restrict the masked merge to row i: splice the merged
                    // row back into the untouched remainder.
                    let merged_all = crate::write::merge_matrix(
                        &ctx2,
                        st.csr(),
                        spliced,
                        Some(&spec),
                        None,
                        replace,
                    );
                    let merged_row = merged_all
                        .filter_map_with_index(&ctx2, |r, _, v| (r == i).then(|| v.clone()));
                    let others = st
                        .csr()
                        .filter_map_with_index(&ctx2, |r, _, v| (r != i).then(|| v.clone()));
                    graphblas_sparse::ewise::ewise_union(&ctx2, &others, &merged_row, |x, _| {
                        x.clone()
                    })
                }
            };
            st.store = MatStore::Csr(Arc::new(merged));
            note_dag_fusion(
                "assign_row",
                ctx2.id(),
                NodeKind::Assign,
                0,
                post.len(),
                u_s.nnz(),
            );
            st.apply_post_maps(&ctx2, &post)?;
            Ok(())
        }),
    )
}

/// `GrB_Col_assign`: `C⟨m', r⟩(I, j) = C(I, j) ⊙ u` — assigns a vector
/// into (part of) column `j`.
pub fn assign_col<T, M>(
    c: &Matrix<T>,
    mask: Option<&Vector<M>>,
    accum: Option<&BinaryOp<T, T, T>>,
    u: &Vector<T>,
    rows: &[Index],
    j: Index,
    desc: &Descriptor,
) -> GrbResult
where
    T: ValueType,
    M: MaskValue,
{
    let ctx = c.context();
    let _op = graphblas_obs::span_ctx("op.assign_col", ctx.id());
    u.check_context(&ctx)?;
    if j >= c.shape().1 {
        return Err(ApiError::InvalidIndex.into());
    }
    if u.size() != rows.len() {
        return Err(ApiError::DimensionMismatch.into());
    }
    if let Some(m) = mask {
        m.check_context(&ctx)?;
        if m.size() != c.shape().0 {
            return Err(ApiError::DimensionMismatch.into());
        }
    }
    let u_s = u.snapshot_sparse()?;
    let mask_s = snapshot_vecmask(mask, desc)?;
    let rows = rows.to_vec();
    let accum = accum.cloned();
    let replace = desc.replace;
    let ctx2 = ctx.clone();
    c.apply_node(
        NodeKind::Assign,
        Box::new(move |st, post| {
            check_selectors(&rows, st.nrows, "row")?;
            let mut row_in = vec![false; st.nrows];
            for &i in &rows {
                row_in[i] = true;
            }
            let second = |_: &T, b: &T| b.clone();
            let mapped = Coo::from_parts(
                st.nrows,
                st.ncols,
                u_s.iter().map(|(k, _)| rows[k]).collect(),
                u_s.iter().map(|_| j).collect(),
                u_s.values().to_vec(),
            )
            .map_err(Error::from)?
            .to_csr(&ctx2, Some(&second))
            .map_err(Error::from)?;
            st.ensure_csr(&ctx2, true)?;
            let col_in: Vec<bool> = (0..st.ncols).map(|cc| cc == j).collect();
            let spliced = splice_region(&ctx2, st.csr(), mapped, &row_in, &col_in, accum.as_ref());
            let merged = match &mask_s {
                None => spliced,
                Some(vm) => {
                    let lifted = Coo::from_parts(
                        st.nrows,
                        st.ncols,
                        vm.mask.indices().to_vec(),
                        vm.mask.iter().map(|_| j).collect(),
                        vm.mask.values().to_vec(),
                    )
                    .map_err(Error::from)?
                    .to_csr(&ctx2, None)
                    .map_err(Error::from)?;
                    let spec = crate::write::MatMask {
                        mask: std::sync::Arc::new(lifted),
                        complement: vm.complement,
                    };
                    let merged_all = crate::write::merge_matrix(
                        &ctx2,
                        st.csr(),
                        spliced,
                        Some(&spec),
                        None,
                        replace,
                    );
                    let merged_col = merged_all
                        .filter_map_with_index(&ctx2, |_, cc, v| (cc == j).then(|| v.clone()));
                    let others = st
                        .csr()
                        .filter_map_with_index(&ctx2, |_, cc, v| (cc != j).then(|| v.clone()));
                    graphblas_sparse::ewise::ewise_union(&ctx2, &others, &merged_col, |x, _| {
                        x.clone()
                    })
                }
            };
            st.store = MatStore::Csr(Arc::new(merged));
            note_dag_fusion(
                "assign_col",
                ctx2.id(),
                NodeKind::Assign,
                0,
                post.len(),
                u_s.nnz(),
            );
            st.apply_post_maps(&ctx2, &post)?;
            Ok(())
        }),
    )
}

/// Table II form of [`assign_scalar_v`] with a `GrB_Scalar` argument.
pub fn assign_scalar_v_grb<T, M>(
    w: &Vector<T>,
    mask: Option<&Vector<M>>,
    accum: Option<&BinaryOp<T, T, T>>,
    s: &Scalar<T>,
    indices: &[Index],
    desc: &Descriptor,
) -> GrbResult
where
    T: ValueType,
    M: MaskValue,
{
    let _op = graphblas_obs::span_ctx("op.assign_scalar_v_grb", 0);
    let v = s.extract_element()?.ok_or_else(|| {
        Error::exec(
            ExecErrorKind::EmptyObject,
            "assign requires a non-empty GrB_Scalar",
        )
    })?;
    assign_scalar_v(w, mask, accum, v, indices, desc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operations::testutil::{mat, mat_tuples, vec, vec_tuples};
    use crate::{no_mask, no_mask_v};

    #[test]
    fn assign_replaces_region_exactly() {
        // C has entries inside and outside the region.
        let c = mat((3, 3), &[(0, 0, 1i64), (1, 1, 2), (2, 2, 3)]);
        let a = mat((2, 2), &[(0, 0, 10i64)]);
        // Region rows {0,1} × cols {0,1}: (0,0) → 10; (1,1) is in the
        // region but not in A → deleted. (2,2) untouched.
        assign(
            &c,
            no_mask(),
            None,
            &a,
            &[0, 1],
            &[0, 1],
            &Descriptor::default(),
        )
        .unwrap();
        assert_eq!(mat_tuples(&c), vec![(0, 0, 10), (2, 2, 3)]);
    }

    #[test]
    fn assign_with_accum_folds_region() {
        let c = mat((2, 2), &[(0, 0, 1i64), (1, 1, 5)]);
        let a = mat((2, 2), &[(0, 0, 10i64), (0, 1, 20)]);
        assign(
            &c,
            no_mask(),
            Some(&BinaryOp::plus()),
            &a,
            &[0, 1],
            &[0, 1],
            &Descriptor::default(),
        )
        .unwrap();
        assert_eq!(mat_tuples(&c), vec![(0, 0, 11), (0, 1, 20), (1, 1, 5)]);
    }

    #[test]
    fn assign_with_permuted_selectors() {
        let c = Matrix::<i64>::new(3, 3).unwrap();
        let a = mat((2, 2), &[(0, 1, 7i64)]);
        // rows [2,0], cols [1,0]: A(0,1) lands at C(2,0).
        assign(
            &c,
            no_mask(),
            None,
            &a,
            &[2, 0],
            &[1, 0],
            &Descriptor::default(),
        )
        .unwrap();
        assert_eq!(mat_tuples(&c), vec![(2, 0, 7)]);
    }

    #[test]
    fn assign_scalar_fills_region_densely() {
        let c = Matrix::<i64>::new(3, 3).unwrap();
        assign_scalar(
            &c,
            no_mask(),
            None,
            9i64,
            &[0, 2],
            &[1, 2],
            &Descriptor::default(),
        )
        .unwrap();
        assert_eq!(
            mat_tuples(&c),
            vec![(0, 1, 9), (0, 2, 9), (2, 1, 9), (2, 2, 9)]
        );
    }

    #[test]
    fn assign_scalar_grb_empty_is_error() {
        let c = Matrix::<i64>::new(2, 2).unwrap();
        let s = Scalar::<i64>::new().unwrap();
        let err = assign_scalar_grb(&c, no_mask(), None, &s, &[0], &[0], &Descriptor::default())
            .unwrap_err();
        assert_eq!(err.code(), -106);
        s.set_element(4).unwrap();
        assign_scalar_grb(&c, no_mask(), None, &s, &[0], &[0], &Descriptor::default()).unwrap();
        assert_eq!(mat_tuples(&c), vec![(0, 0, 4)]);
    }

    #[test]
    fn vector_assign() {
        let w = vec(5, &[(0, 1i64), (2, 3), (4, 5)]);
        let u = vec(2, &[(0, 30i64)]);
        // Region {2, 4}: w(2) ← u(0) = 30; w(4) in region, absent in u →
        // deleted; w(0) untouched.
        assign_v(&w, no_mask_v(), None, &u, &[2, 4], &Descriptor::default()).unwrap();
        assert_eq!(vec_tuples(&w), vec![(0, 1), (2, 30)]);
    }

    #[test]
    fn vector_assign_scalar_and_oob() {
        let w = Vector::<i64>::new(4).unwrap();
        assign_scalar_v(&w, no_mask_v(), None, 8i64, &[1, 3], &Descriptor::default()).unwrap();
        assert_eq!(vec_tuples(&w), vec![(1, 8), (3, 8)]);
        let err =
            assign_scalar_v(&w, no_mask_v(), None, 8i64, &[9], &Descriptor::default()).unwrap_err();
        assert!(err.is_execution());
        assert_eq!(err.code(), -105);
    }

    #[test]
    fn masked_assign_respects_full_size_mask() {
        let c = mat((2, 2), &[(1, 1, 5i64)]);
        let mask = mat((2, 2), &[(0, 0, true)]);
        // Assign 7 over the whole matrix, but the mask only admits (0,0).
        assign_scalar(
            &c,
            Some(&mask),
            None,
            7i64,
            &[0, 1],
            &[0, 1],
            &Descriptor::default(),
        )
        .unwrap();
        assert_eq!(mat_tuples(&c), vec![(0, 0, 7), (1, 1, 5)]);
    }
}
