//! `GrB_kronecker`: `C⟨M, r⟩ = C ⊙ kron(A, B)` with a binary operator.

use std::sync::Arc;

use crate::descriptor::Descriptor;
use crate::error::{ApiError, Error, GrbResult};
use crate::matrix::{MatStore, Matrix};
use crate::operations::{eff_shape, note_dag_fusion, snapshot_matmask, snapshot_operand};
use crate::ops::BinaryOp;
use crate::pending::NodeKind;
use crate::types::{MaskValue, ValueType};
use crate::write;

/// `C⟨M, r⟩ = C ⊙ (A ⊗_op B)`.
pub fn kronecker<C, M, A, B>(
    c: &Matrix<C>,
    mask: Option<&Matrix<M>>,
    accum: Option<&BinaryOp<C, C, C>>,
    op: &BinaryOp<A, B, C>,
    a: &Matrix<A>,
    b: &Matrix<B>,
    desc: &Descriptor,
) -> GrbResult
where
    C: ValueType,
    M: MaskValue,
    A: ValueType,
    B: ValueType,
{
    let ctx = c.context();
    let _op = graphblas_obs::span_ctx("op.kronecker", ctx.id());
    a.check_context(&ctx)?;
    b.check_context(&ctx)?;
    if let Some(m) = mask {
        m.check_context(&ctx)?;
        if m.shape() != c.shape() {
            return Err(ApiError::DimensionMismatch.into());
        }
    }
    let (am, an) = eff_shape(a, desc.transpose_a);
    let (bm, bn) = eff_shape(b, desc.transpose_b);
    let expected = (
        am.checked_mul(bm).ok_or(ApiError::InvalidValue)?,
        an.checked_mul(bn).ok_or(ApiError::InvalidValue)?,
    );
    if c.shape() != expected {
        return Err(ApiError::DimensionMismatch.into());
    }
    let a_s = snapshot_operand(a, &ctx, desc.transpose_a, true)?;
    let b_s = snapshot_operand(b, &ctx, desc.transpose_b, true)?;
    let mask_s = snapshot_matmask(mask, desc)?;
    let op = op.clone();
    let accum = accum.cloned();
    let replace = desc.replace;
    let ctx2 = ctx.clone();
    c.apply_node(
        NodeKind::MxM,
        Box::new(move |st, post| {
            let nnz_in = a_s.nnz() + b_s.nnz();
            let t = graphblas_sparse::kron::kronecker(&ctx2, &a_s, &b_s, |x, y| op.apply(x, y))
                .map_err(Error::from)?;
            note_dag_fusion("kronecker", ctx2.id(), NodeKind::MxM, 0, post.len(), nnz_in);
            if mask_s.is_none() && accum.is_none() {
                st.store = MatStore::Csr(Arc::new(t));
            } else {
                st.ensure_csr(&ctx2, true)?;
                let merged = write::merge_matrix(
                    &ctx2,
                    st.csr(),
                    t,
                    mask_s.as_ref(),
                    accum.as_ref(),
                    replace,
                );
                st.store = MatStore::Csr(Arc::new(merged));
            }
            st.apply_post_maps(&ctx2, &post)?;
            Ok(())
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::no_mask;
    use crate::operations::testutil::{mat, mat_tuples};

    #[test]
    fn kron_scales_blocks() {
        let a = mat((1, 2), &[(0, 0, 2i64), (0, 1, 3)]);
        let b = mat((2, 1), &[(0, 0, 10i64), (1, 0, 100)]);
        let c = Matrix::<i64>::new(2, 2).unwrap();
        kronecker(
            &c,
            no_mask(),
            None,
            &BinaryOp::times(),
            &a,
            &b,
            &Descriptor::default(),
        )
        .unwrap();
        assert_eq!(
            mat_tuples(&c),
            vec![(0, 0, 20), (0, 1, 30), (1, 0, 200), (1, 1, 300)]
        );
    }

    #[test]
    fn kron_shape_validation() {
        let a = Matrix::<i64>::new(2, 2).unwrap();
        let b = Matrix::<i64>::new(2, 2).unwrap();
        let c = Matrix::<i64>::new(3, 4).unwrap();
        assert!(kronecker(
            &c,
            no_mask(),
            None,
            &BinaryOp::times(),
            &a,
            &b,
            &Descriptor::default()
        )
        .is_err());
    }

    #[test]
    fn kron_graph_expansion() {
        // kron of a 2-cycle with itself over PAIR counts: a 4-node graph.
        let ring = mat((2, 2), &[(0, 1, true), (1, 0, true)]);
        let c = Matrix::<u64>::new(4, 4).unwrap();
        kronecker(
            &c,
            no_mask(),
            None,
            &BinaryOp::<bool, bool, u64>::oneb(),
            &ring,
            &ring,
            &Descriptor::default(),
        )
        .unwrap();
        assert_eq!(c.nvals().unwrap(), 4);
        assert_eq!(c.extract_element(0, 3).unwrap(), Some(1));
    }
}
