//! `GrB_extract`: sub-matrix / sub-vector extraction with arbitrary
//! (possibly repeating) index selectors. Out-of-range values *inside the
//! selector arrays* are data, hence execution errors (deferrable);
//! output-shape disagreement is an immediate API error.

use std::sync::Arc;

use crate::descriptor::Descriptor;
use crate::error::{ApiError, Error, GrbResult};
use crate::matrix::{MatStore, Matrix};
use crate::operations::{
    eff_shape, note_dag_fusion, snapshot_matmask, snapshot_operand, snapshot_vecmask,
};
use crate::ops::BinaryOp;
use crate::pending::NodeKind;
use crate::types::{Index, MaskValue, ValueType};
use crate::vector::{VecStore, Vector};
use crate::write;

/// `C⟨M, r⟩ = C ⊙ A(I, J)`.
pub fn extract<T, M>(
    c: &Matrix<T>,
    mask: Option<&Matrix<M>>,
    accum: Option<&BinaryOp<T, T, T>>,
    a: &Matrix<T>,
    rows: &[Index],
    cols: &[Index],
    desc: &Descriptor,
) -> GrbResult
where
    T: ValueType,
    M: MaskValue,
{
    let ctx = c.context();
    let _op = graphblas_obs::span_ctx("op.extract", ctx.id());
    a.check_context(&ctx)?;
    if let Some(m) = mask {
        m.check_context(&ctx)?;
        if m.shape() != c.shape() {
            return Err(ApiError::DimensionMismatch.into());
        }
    }
    if c.shape() != (rows.len(), cols.len()) {
        return Err(ApiError::DimensionMismatch.into());
    }
    let a_s = snapshot_operand(a, &ctx, desc.transpose_a, true)?;
    let mask_s = snapshot_matmask(mask, desc)?;
    let rows = rows.to_vec();
    let cols = cols.to_vec();
    let accum = accum.cloned();
    let replace = desc.replace;
    let ctx2 = ctx.clone();
    c.apply_node(
        NodeKind::Extract,
        Box::new(move |st, post| {
            let nnz_in = a_s.nnz();
            let t = a_s
                .extract_submatrix(&ctx2, &rows, &cols)
                .map_err(Error::from)?;
            note_dag_fusion(
                "extract",
                ctx2.id(),
                NodeKind::Extract,
                0,
                post.len(),
                nnz_in,
            );
            if mask_s.is_none() && accum.is_none() {
                st.store = MatStore::Csr(Arc::new(t));
            } else {
                st.ensure_csr(&ctx2, true)?;
                let merged = write::merge_matrix(
                    &ctx2,
                    st.csr(),
                    t,
                    mask_s.as_ref(),
                    accum.as_ref(),
                    replace,
                );
                st.store = MatStore::Csr(Arc::new(merged));
            }
            st.apply_post_maps(&ctx2, &post)?;
            Ok(())
        }),
    )
}

/// `w⟨m, r⟩ = w ⊙ u(I)`.
pub fn extract_v<T, M>(
    w: &Vector<T>,
    mask: Option<&Vector<M>>,
    accum: Option<&BinaryOp<T, T, T>>,
    u: &Vector<T>,
    indices: &[Index],
    desc: &Descriptor,
) -> GrbResult
where
    T: ValueType,
    M: MaskValue,
{
    let ctx = w.context();
    let _op = graphblas_obs::span_ctx("op.extract_v", ctx.id());
    u.check_context(&ctx)?;
    if let Some(m) = mask {
        m.check_context(&ctx)?;
        if m.size() != w.size() {
            return Err(ApiError::DimensionMismatch.into());
        }
    }
    if w.size() != indices.len() {
        return Err(ApiError::DimensionMismatch.into());
    }
    let u_s = u.snapshot_sparse()?;
    let mask_s = snapshot_vecmask(mask, desc)?;
    let indices = indices.to_vec();
    let accum = accum.cloned();
    let replace = desc.replace;
    let ctx2 = ctx.clone();
    w.apply_node(
        NodeKind::Extract,
        Box::new(move |st, post| {
            let nnz_in = u_s.nnz();
            let t = u_s.extract(&indices).map_err(Error::from)?;
            note_dag_fusion(
                "extract_v",
                ctx2.id(),
                NodeKind::Extract,
                0,
                post.len(),
                nnz_in,
            );
            if mask_s.is_none() && accum.is_none() {
                st.store = VecStore::Sparse(Arc::new(t));
            } else {
                st.ensure_sparse()?;
                let merged =
                    write::merge_vector(st.sparse(), t, mask_s.as_ref(), accum.as_ref(), replace);
                st.store = VecStore::Sparse(Arc::new(merged));
            }
            st.apply_post_maps(&post)?;
            Ok(())
        }),
    )
}

/// `GrB_Col_extract`: `w⟨m, r⟩ = w ⊙ A(I, j)` (`desc.transpose_a` extracts
/// a row instead).
pub fn extract_col<T, M>(
    w: &Vector<T>,
    mask: Option<&Vector<M>>,
    accum: Option<&BinaryOp<T, T, T>>,
    a: &Matrix<T>,
    rows: &[Index],
    j: Index,
    desc: &Descriptor,
) -> GrbResult
where
    T: ValueType,
    M: MaskValue,
{
    let ctx = w.context();
    let _op = graphblas_obs::span_ctx("op.extract_col", ctx.id());
    a.check_context(&ctx)?;
    if let Some(m) = mask {
        m.check_context(&ctx)?;
        if m.size() != w.size() {
            return Err(ApiError::DimensionMismatch.into());
        }
    }
    let (_, an) = eff_shape(a, desc.transpose_a);
    if j >= an {
        return Err(ApiError::InvalidIndex.into());
    }
    if w.size() != rows.len() {
        return Err(ApiError::DimensionMismatch.into());
    }
    let a_s = snapshot_operand(a, &ctx, desc.transpose_a, true)?;
    let mask_s = snapshot_vecmask(mask, desc)?;
    let rows = rows.to_vec();
    let accum = accum.cloned();
    let replace = desc.replace;
    let ctx2 = ctx.clone();
    w.apply_node(
        NodeKind::Extract,
        Box::new(move |st, post| {
            let nnz_in = a_s.nnz();
            let sub = a_s
                .extract_submatrix(&ctx2, &rows, &[j])
                .map_err(Error::from)?;
            let mut indices = Vec::new();
            let mut values = Vec::new();
            for (i, _, v) in sub.iter() {
                indices.push(i);
                values.push(v.clone());
            }
            let t = graphblas_sparse::SparseVec::from_parts(rows.len(), indices, values)
                .map_err(Error::from)?;
            note_dag_fusion(
                "extract_col",
                ctx2.id(),
                NodeKind::Extract,
                0,
                post.len(),
                nnz_in,
            );
            if mask_s.is_none() && accum.is_none() {
                st.store = VecStore::Sparse(Arc::new(t));
            } else {
                st.ensure_sparse()?;
                let merged =
                    write::merge_vector(st.sparse(), t, mask_s.as_ref(), accum.as_ref(), replace);
                st.store = VecStore::Sparse(Arc::new(merged));
            }
            st.apply_post_maps(&post)?;
            Ok(())
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operations::all_indices;
    use crate::operations::testutil::{mat, mat_tuples, vec, vec_tuples};
    use crate::{no_mask, no_mask_v};

    #[test]
    fn extract_submatrix_with_permutation() {
        let a = mat((3, 3), &[(0, 0, 1i64), (1, 1, 2), (2, 2, 3)]);
        let c = Matrix::<i64>::new(2, 3).unwrap();
        extract(
            &c,
            no_mask(),
            None,
            &a,
            &[2, 0],
            &all_indices(3),
            &Descriptor::default(),
        )
        .unwrap();
        assert_eq!(mat_tuples(&c), vec![(0, 2, 3), (1, 0, 1)]);
    }

    #[test]
    fn extract_with_repeated_selectors() {
        let a = mat((2, 2), &[(0, 1, 7i64)]);
        let c = Matrix::<i64>::new(2, 2).unwrap();
        extract(
            &c,
            no_mask(),
            None,
            &a,
            &[0, 0],
            &[1, 1],
            &Descriptor::default(),
        )
        .unwrap();
        assert_eq!(
            mat_tuples(&c),
            vec![(0, 0, 7), (0, 1, 7), (1, 0, 7), (1, 1, 7)]
        );
    }

    #[test]
    fn oob_selector_is_execution_error() {
        let a = mat((2, 2), &[(0, 0, 1i64)]);
        let c = Matrix::<i64>::new(1, 1).unwrap();
        let err = extract(&c, no_mask(), None, &a, &[5], &[0], &Descriptor::default()).unwrap_err();
        assert!(err.is_execution());
        assert_eq!(err.code(), -105);
    }

    #[test]
    fn output_shape_is_api_checked() {
        let a = mat((2, 2), &[(0, 0, 1i64)]);
        let c = Matrix::<i64>::new(2, 2).unwrap();
        let err = extract(&c, no_mask(), None, &a, &[0], &[0], &Descriptor::default()).unwrap_err();
        assert!(err.is_api());
    }

    #[test]
    fn vector_extract() {
        let u = vec(5, &[(0, 10i64), (3, 40)]);
        let w = Vector::<i64>::new(3).unwrap();
        extract_v(
            &w,
            no_mask_v(),
            None,
            &u,
            &[3, 1, 0],
            &Descriptor::default(),
        )
        .unwrap();
        assert_eq!(vec_tuples(&w), vec![(0, 40), (2, 10)]);
    }

    #[test]
    fn column_extract() {
        let a = mat((3, 2), &[(0, 1, 5i64), (2, 1, 7)]);
        let w = Vector::<i64>::new(3).unwrap();
        extract_col(
            &w,
            no_mask_v(),
            None,
            &a,
            &all_indices(3),
            1,
            &Descriptor::default(),
        )
        .unwrap();
        assert_eq!(vec_tuples(&w), vec![(0, 5), (2, 7)]);
        // Row extraction via transpose flag.
        let r = Vector::<i64>::new(2).unwrap();
        extract_col(
            &r,
            no_mask_v(),
            None,
            &a,
            &all_indices(2),
            2,
            &Descriptor::new().transpose_a(),
        )
        .unwrap();
        assert_eq!(vec_tuples(&r), vec![(1, 7)]);
    }
}
