//! `GrB_transpose`: `C⟨M, r⟩ = C ⊙ Aᵀ`. With `desc.transpose_a` the two
//! transposes cancel and the operation degenerates to a (masked,
//! accumulated) copy — the spec's idiom for formatted assignment.

use std::sync::Arc;

use crate::descriptor::Descriptor;
use crate::error::{ApiError, GrbResult};
use crate::matrix::{MatStore, Matrix};
use crate::operations::{eff_shape, note_dag_fusion, snapshot_matmask, snapshot_operand};
use crate::ops::BinaryOp;
use crate::pending::NodeKind;
use crate::types::{MaskValue, ValueType};
use crate::write;

/// `C⟨M, r⟩ = C ⊙ Aᵀ`.
pub fn transpose<T, M>(
    c: &Matrix<T>,
    mask: Option<&Matrix<M>>,
    accum: Option<&BinaryOp<T, T, T>>,
    a: &Matrix<T>,
    desc: &Descriptor,
) -> GrbResult
where
    T: ValueType,
    M: MaskValue,
{
    let ctx = c.context();
    let _op = graphblas_obs::span_ctx("op.transpose", ctx.id());
    a.check_context(&ctx)?;
    if let Some(m) = mask {
        m.check_context(&ctx)?;
        if m.shape() != c.shape() {
            return Err(ApiError::DimensionMismatch.into());
        }
    }
    // The operation transposes once; the descriptor flag transposes again.
    let effective_transpose = !desc.transpose_a;
    if c.shape() != eff_shape(a, effective_transpose) {
        return Err(ApiError::DimensionMismatch.into());
    }
    let t_s = snapshot_operand(a, &ctx, effective_transpose, true)?;
    let mask_s = snapshot_matmask(mask, desc)?;
    let accum = accum.cloned();
    let replace = desc.replace;
    let ctx2 = ctx.clone();
    c.apply_node(
        NodeKind::Structure,
        Box::new(move |st, post| {
            let nnz_in = t_s.nnz();
            note_dag_fusion(
                "transpose",
                ctx2.id(),
                NodeKind::Structure,
                0,
                post.len(),
                nnz_in,
            );
            if mask_s.is_none() && accum.is_none() {
                // The snapshot is already the transposed CSR; share it
                // instead of cloning when it has no other owner.
                st.store = MatStore::Csr(t_s.clone());
            } else {
                let t = (*t_s).clone();
                st.ensure_csr(&ctx2, true)?;
                let merged = write::merge_matrix(
                    &ctx2,
                    st.csr(),
                    t,
                    mask_s.as_ref(),
                    accum.as_ref(),
                    replace,
                );
                st.store = MatStore::Csr(Arc::new(merged));
            }
            st.apply_post_maps(&ctx2, &post)?;
            Ok(())
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::no_mask;
    use crate::operations::testutil::{mat, mat_tuples};

    #[test]
    fn plain_transpose() {
        let a = mat((2, 3), &[(0, 1, 1i64), (1, 2, 2)]);
        let c = Matrix::<i64>::new(3, 2).unwrap();
        transpose(&c, no_mask(), None, &a, &Descriptor::default()).unwrap();
        assert_eq!(mat_tuples(&c), vec![(1, 0, 1), (2, 1, 2)]);
    }

    #[test]
    fn double_transpose_is_copy() {
        let a = mat((2, 3), &[(0, 1, 1i64), (1, 2, 2)]);
        let c = Matrix::<i64>::new(2, 3).unwrap();
        transpose(&c, no_mask(), None, &a, &Descriptor::new().transpose_a()).unwrap();
        assert_eq!(mat_tuples(&c), mat_tuples(&a));
    }

    #[test]
    fn transpose_with_accum() {
        let a = mat((2, 2), &[(0, 1, 1i64)]);
        let c = mat((2, 2), &[(1, 0, 10i64)]);
        transpose(
            &c,
            no_mask(),
            Some(&BinaryOp::plus()),
            &a,
            &Descriptor::default(),
        )
        .unwrap();
        assert_eq!(mat_tuples(&c), vec![(1, 0, 11)]);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let a = Matrix::<i64>::new(2, 3).unwrap();
        let c = Matrix::<i64>::new(2, 3).unwrap();
        assert!(transpose(&c, no_mask(), None, &a, &Descriptor::default()).is_err());
    }
}
