//! `GrB_eWiseAdd` / `GrB_eWiseMult`: element-wise union and intersection.
//!
//! Following the mathematical spec: *add* operates on the union of
//! structures (the operator only fires where both operands are present;
//! singletons pass through), *mult* on the intersection. `eWiseAdd`
//! therefore requires one common domain `T`, while `eWiseMult` is fully
//! heterogeneous (`A × B → C`).

use std::sync::Arc;

use graphblas_sparse::ewise as kernels;

use crate::descriptor::Descriptor;
use crate::error::{ApiError, GrbResult};
use crate::matrix::{MatStore, Matrix};
use crate::operations::{
    eff_shape, note_dag_fusion, snapshot_matmask, snapshot_operand, snapshot_vecmask,
};
use crate::ops::{registry, BinaryOp};
use crate::pending::NodeKind;
use crate::types::{MaskValue, ValueType};
use crate::vector::{VecStore, Vector};
use crate::write;

/// `C⟨M, r⟩ = C ⊙ (A ⊕ B)` — union structure.
pub fn ewise_add<T, M>(
    c: &Matrix<T>,
    mask: Option<&Matrix<M>>,
    accum: Option<&BinaryOp<T, T, T>>,
    op: &BinaryOp<T, T, T>,
    a: &Matrix<T>,
    b: &Matrix<T>,
    desc: &Descriptor,
) -> GrbResult
where
    T: ValueType,
    M: MaskValue,
{
    let ctx = c.context();
    let _op = graphblas_obs::span_ctx("op.ewise_add", ctx.id());
    a.check_context(&ctx)?;
    b.check_context(&ctx)?;
    if let Some(m) = mask {
        m.check_context(&ctx)?;
        if m.shape() != c.shape() {
            return Err(ApiError::DimensionMismatch.into());
        }
    }
    let sa = eff_shape(a, desc.transpose_a);
    let sb = eff_shape(b, desc.transpose_b);
    if sa != sb || c.shape() != sa {
        return Err(ApiError::DimensionMismatch.into());
    }
    let a_s = snapshot_operand(a, &ctx, desc.transpose_a, true)?;
    let b_s = snapshot_operand(b, &ctx, desc.transpose_b, true)?;
    let mask_s = snapshot_matmask(mask, desc)?;
    let op = op.clone();
    let accum = accum.cloned();
    let replace = desc.replace;
    let ctx2 = ctx.clone();
    c.apply_node(
        NodeKind::EWise,
        Box::new(move |st, post| {
            let nnz_in = a_s.nnz() + b_s.nnz();
            let t = match registry::try_ewise_union(&ctx2, &a_s, &b_s, op.builtin()) {
                Some(t) => t,
                None => {
                    registry::record_pick("ewise_add", ctx2.id(), false);
                    kernels::ewise_union(&ctx2, &a_s, &b_s, |x, y| op.apply(x, y))
                }
            };
            note_dag_fusion(
                "ewise_add",
                ctx2.id(),
                NodeKind::EWise,
                0,
                post.len(),
                nnz_in,
            );
            if mask_s.is_none() && accum.is_none() {
                st.store = MatStore::Csr(Arc::new(t));
            } else {
                st.ensure_csr(&ctx2, true)?;
                let merged = write::merge_matrix(
                    &ctx2,
                    st.csr(),
                    t,
                    mask_s.as_ref(),
                    accum.as_ref(),
                    replace,
                );
                st.store = MatStore::Csr(Arc::new(merged));
            }
            st.apply_post_maps(&ctx2, &post)?;
            Ok(())
        }),
    )
}

/// `C⟨M, r⟩ = C ⊙ (A ⊗ B)` — intersection structure, heterogeneous
/// domains.
pub fn ewise_mult<C, M, A, B>(
    c: &Matrix<C>,
    mask: Option<&Matrix<M>>,
    accum: Option<&BinaryOp<C, C, C>>,
    op: &BinaryOp<A, B, C>,
    a: &Matrix<A>,
    b: &Matrix<B>,
    desc: &Descriptor,
) -> GrbResult
where
    C: ValueType,
    M: MaskValue,
    A: ValueType,
    B: ValueType,
{
    let ctx = c.context();
    let _op = graphblas_obs::span_ctx("op.ewise_mult", ctx.id());
    a.check_context(&ctx)?;
    b.check_context(&ctx)?;
    if let Some(m) = mask {
        m.check_context(&ctx)?;
        if m.shape() != c.shape() {
            return Err(ApiError::DimensionMismatch.into());
        }
    }
    let sa = eff_shape(a, desc.transpose_a);
    let sb = eff_shape(b, desc.transpose_b);
    if sa != sb || c.shape() != sa {
        return Err(ApiError::DimensionMismatch.into());
    }
    let a_s = snapshot_operand(a, &ctx, desc.transpose_a, true)?;
    let b_s = snapshot_operand(b, &ctx, desc.transpose_b, true)?;
    let mask_s = snapshot_matmask(mask, desc)?;
    let op = op.clone();
    let accum = accum.cloned();
    let replace = desc.replace;
    let ctx2 = ctx.clone();
    c.apply_node(
        NodeKind::EWise,
        Box::new(move |st, post| {
            let nnz_in = a_s.nnz() + b_s.nnz();
            let t = match registry::try_ewise_intersect(&ctx2, &a_s, &b_s, op.builtin()) {
                Some(t) => t,
                None => {
                    registry::record_pick("ewise_mult", ctx2.id(), false);
                    kernels::ewise_intersect(&ctx2, &a_s, &b_s, |x, y| op.apply(x, y))
                }
            };
            note_dag_fusion(
                "ewise_mult",
                ctx2.id(),
                NodeKind::EWise,
                0,
                post.len(),
                nnz_in,
            );
            if mask_s.is_none() && accum.is_none() {
                st.store = MatStore::Csr(Arc::new(t));
            } else {
                st.ensure_csr(&ctx2, true)?;
                let merged = write::merge_matrix(
                    &ctx2,
                    st.csr(),
                    t,
                    mask_s.as_ref(),
                    accum.as_ref(),
                    replace,
                );
                st.store = MatStore::Csr(Arc::new(merged));
            }
            st.apply_post_maps(&ctx2, &post)?;
            Ok(())
        }),
    )
}

/// `eWiseAdd` with a monoid (the C API's `GrB_Monoid` overload): the
/// monoid's operator combines overlaps.
pub fn ewise_add_monoid<T, M>(
    c: &Matrix<T>,
    mask: Option<&Matrix<M>>,
    accum: Option<&BinaryOp<T, T, T>>,
    monoid: &crate::ops::Monoid<T>,
    a: &Matrix<T>,
    b: &Matrix<T>,
    desc: &Descriptor,
) -> GrbResult
where
    T: ValueType,
    M: MaskValue,
{
    let _op = graphblas_obs::span_ctx("op.ewise_add_monoid", 0);
    ewise_add(c, mask, accum, monoid.op(), a, b, desc)
}

/// `eWiseAdd` with a semiring (the C API's `GrB_Semiring` overload): the
/// semiring's *add* monoid combines overlaps, per the spec.
pub fn ewise_add_semiring<T, M, A, B>(
    c: &Matrix<T>,
    mask: Option<&Matrix<M>>,
    accum: Option<&BinaryOp<T, T, T>>,
    semiring: &crate::ops::Semiring<A, B, T>,
    a: &Matrix<T>,
    b: &Matrix<T>,
    desc: &Descriptor,
) -> GrbResult
where
    T: ValueType,
    M: MaskValue,
    A: ValueType,
    B: ValueType,
{
    let _op = graphblas_obs::span_ctx("op.ewise_add_semiring", 0);
    ewise_add(c, mask, accum, semiring.add().op(), a, b, desc)
}

/// `eWiseMult` with a semiring (the spec uses the semiring's *multiply*
/// operator on the intersection).
pub fn ewise_mult_semiring<C, M, A, B>(
    c: &Matrix<C>,
    mask: Option<&Matrix<M>>,
    accum: Option<&BinaryOp<C, C, C>>,
    semiring: &crate::ops::Semiring<A, B, C>,
    a: &Matrix<A>,
    b: &Matrix<B>,
    desc: &Descriptor,
) -> GrbResult
where
    C: ValueType,
    M: MaskValue,
    A: ValueType,
    B: ValueType,
{
    let _op = graphblas_obs::span_ctx("op.ewise_mult_semiring", 0);
    ewise_mult(c, mask, accum, semiring.mul(), a, b, desc)
}

/// Vector `eWiseAdd`.
pub fn ewise_add_v<T, M>(
    w: &Vector<T>,
    mask: Option<&Vector<M>>,
    accum: Option<&BinaryOp<T, T, T>>,
    op: &BinaryOp<T, T, T>,
    u: &Vector<T>,
    v: &Vector<T>,
    desc: &Descriptor,
) -> GrbResult
where
    T: ValueType,
    M: MaskValue,
{
    let ctx = w.context();
    let _op = graphblas_obs::span_ctx("op.ewise_add_v", ctx.id());
    u.check_context(&ctx)?;
    v.check_context(&ctx)?;
    if let Some(m) = mask {
        m.check_context(&ctx)?;
        if m.size() != w.size() {
            return Err(ApiError::DimensionMismatch.into());
        }
    }
    if u.size() != v.size() || w.size() != u.size() {
        return Err(ApiError::DimensionMismatch.into());
    }
    let u_s = u.snapshot_sparse()?;
    let v_s = v.snapshot_sparse()?;
    let mask_s = snapshot_vecmask(mask, desc)?;
    let op = op.clone();
    let accum = accum.cloned();
    let replace = desc.replace;
    let ctx_id = ctx.id();
    w.apply_node(
        NodeKind::EWise,
        Box::new(move |st, post| {
            let nnz_in = u_s.nnz() + v_s.nnz();
            let t = match registry::try_svec_union(&u_s, &v_s, op.builtin(), ctx_id) {
                Some(t) => t,
                None => {
                    registry::record_pick("ewise_add_v", ctx_id, false);
                    kernels::svec_union(&u_s, &v_s, |x, y| op.apply(x, y))
                }
            };
            note_dag_fusion(
                "ewise_add_v",
                ctx_id,
                NodeKind::EWise,
                0,
                post.len(),
                nnz_in,
            );
            if mask_s.is_none() && accum.is_none() {
                st.store = VecStore::Sparse(Arc::new(t));
            } else {
                st.ensure_sparse()?;
                let merged =
                    write::merge_vector(st.sparse(), t, mask_s.as_ref(), accum.as_ref(), replace);
                st.store = VecStore::Sparse(Arc::new(merged));
            }
            st.apply_post_maps(&post)?;
            Ok(())
        }),
    )
}

/// Vector `eWiseMult`.
pub fn ewise_mult_v<C, M, A, B>(
    w: &Vector<C>,
    mask: Option<&Vector<M>>,
    accum: Option<&BinaryOp<C, C, C>>,
    op: &BinaryOp<A, B, C>,
    u: &Vector<A>,
    v: &Vector<B>,
    desc: &Descriptor,
) -> GrbResult
where
    C: ValueType,
    M: MaskValue,
    A: ValueType,
    B: ValueType,
{
    let ctx = w.context();
    let _op = graphblas_obs::span_ctx("op.ewise_mult_v", ctx.id());
    u.check_context(&ctx)?;
    v.check_context(&ctx)?;
    if let Some(m) = mask {
        m.check_context(&ctx)?;
        if m.size() != w.size() {
            return Err(ApiError::DimensionMismatch.into());
        }
    }
    if u.size() != v.size() || w.size() != u.size() {
        return Err(ApiError::DimensionMismatch.into());
    }
    let u_s = u.snapshot_sparse()?;
    let v_s = v.snapshot_sparse()?;
    let mask_s = snapshot_vecmask(mask, desc)?;
    let op = op.clone();
    let accum = accum.cloned();
    let replace = desc.replace;
    let ctx_id = ctx.id();
    w.apply_node(
        NodeKind::EWise,
        Box::new(move |st, post| {
            let nnz_in = u_s.nnz() + v_s.nnz();
            let t = match registry::try_svec_intersect(&u_s, &v_s, op.builtin(), ctx_id) {
                Some(t) => t,
                None => {
                    registry::record_pick("ewise_mult_v", ctx_id, false);
                    kernels::svec_intersect(&u_s, &v_s, |x, y| op.apply(x, y))
                }
            };
            note_dag_fusion(
                "ewise_mult_v",
                ctx_id,
                NodeKind::EWise,
                0,
                post.len(),
                nnz_in,
            );
            if mask_s.is_none() && accum.is_none() {
                st.store = VecStore::Sparse(Arc::new(t));
            } else {
                st.ensure_sparse()?;
                let merged =
                    write::merge_vector(st.sparse(), t, mask_s.as_ref(), accum.as_ref(), replace);
                st.store = VecStore::Sparse(Arc::new(merged));
            }
            st.apply_post_maps(&post)?;
            Ok(())
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operations::testutil::{mat, mat_tuples, vec, vec_tuples};
    use crate::{no_mask, no_mask_v};

    #[test]
    fn add_unions_mult_intersects() {
        let a = mat((2, 2), &[(0, 0, 1i64), (0, 1, 2)]);
        let b = mat((2, 2), &[(0, 1, 10i64), (1, 0, 20)]);
        let c = Matrix::<i64>::new(2, 2).unwrap();
        ewise_add(
            &c,
            no_mask(),
            None,
            &BinaryOp::plus(),
            &a,
            &b,
            &Descriptor::default(),
        )
        .unwrap();
        assert_eq!(mat_tuples(&c), vec![(0, 0, 1), (0, 1, 12), (1, 0, 20)]);
        let d = Matrix::<i64>::new(2, 2).unwrap();
        ewise_mult(
            &d,
            no_mask(),
            None,
            &BinaryOp::times(),
            &a,
            &b,
            &Descriptor::default(),
        )
        .unwrap();
        assert_eq!(mat_tuples(&d), vec![(0, 1, 20)]);
    }

    #[test]
    fn mult_with_domain_change() {
        let a = mat((1, 2), &[(0, 0, 2.5f64), (0, 1, 3.0)]);
        let b = mat((1, 2), &[(0, 0, 4i64)]);
        let c = Matrix::<bool>::new(1, 2).unwrap();
        let gt = BinaryOp::<f64, i64, bool>::new("gt_mixed", |x, y| *x > *y as f64);
        ewise_mult(&c, no_mask(), None, &gt, &a, &b, &Descriptor::default()).unwrap();
        assert_eq!(mat_tuples(&c), vec![(0, 0, false)]);
    }

    #[test]
    fn vector_variants() {
        let u = vec(4, &[(0, 1i64), (2, 3)]);
        let v = vec(4, &[(2, 10i64), (3, 4)]);
        let w = Vector::<i64>::new(4).unwrap();
        ewise_add_v(
            &w,
            no_mask_v(),
            None,
            &BinaryOp::plus(),
            &u,
            &v,
            &Descriptor::default(),
        )
        .unwrap();
        assert_eq!(vec_tuples(&w), vec![(0, 1), (2, 13), (3, 4)]);
        let x = Vector::<i64>::new(4).unwrap();
        ewise_mult_v(
            &x,
            no_mask_v(),
            None,
            &BinaryOp::times(),
            &u,
            &v,
            &Descriptor::default(),
        )
        .unwrap();
        assert_eq!(vec_tuples(&x), vec![(2, 30)]);
    }

    #[test]
    fn masked_add_with_value_mask() {
        let a = mat((1, 3), &[(0, 0, 1i64), (0, 1, 1), (0, 2, 1)]);
        let b = mat((1, 3), &[(0, 0, 1i64), (0, 1, 1), (0, 2, 1)]);
        // Value mask: 0 at (0,1) is falsy, so position 1 is NOT in the mask.
        let mask = mat((1, 3), &[(0, 0, 1i32), (0, 1, 0), (0, 2, 7)]);
        let c = Matrix::<i64>::new(1, 3).unwrap();
        ewise_add(
            &c,
            Some(&mask),
            None,
            &BinaryOp::plus(),
            &a,
            &b,
            &Descriptor::default(),
        )
        .unwrap();
        assert_eq!(mat_tuples(&c), vec![(0, 0, 2), (0, 2, 2)]);
        // Structure mask treats the falsy element as present.
        let c2 = Matrix::<i64>::new(1, 3).unwrap();
        ewise_add(
            &c2,
            Some(&mask),
            None,
            &BinaryOp::plus(),
            &a,
            &b,
            &Descriptor::new().structure_mask(),
        )
        .unwrap();
        assert_eq!(mat_tuples(&c2).len(), 3);
    }

    #[test]
    fn transposed_operand() {
        let a = mat((2, 3), &[(0, 2, 5i64)]);
        let b = mat((3, 2), &[(2, 0, 7i64)]);
        let c = Matrix::<i64>::new(3, 2).unwrap();
        ewise_add(
            &c,
            no_mask(),
            None,
            &BinaryOp::plus(),
            &a,
            &b,
            &Descriptor::new().transpose_a(),
        )
        .unwrap();
        assert_eq!(mat_tuples(&c), vec![(2, 0, 12)]);
    }

    #[test]
    fn shape_mismatch() {
        let a = Matrix::<i64>::new(2, 2).unwrap();
        let b = Matrix::<i64>::new(2, 3).unwrap();
        let c = Matrix::<i64>::new(2, 2).unwrap();
        assert!(ewise_add(
            &c,
            no_mask(),
            None,
            &BinaryOp::plus(),
            &a,
            &b,
            &Descriptor::default()
        )
        .is_err());
    }
}
