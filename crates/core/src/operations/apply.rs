//! `GrB_apply` in all its GraphBLAS 2.0 variants: unary operator,
//! binary operator with a bound scalar (first or second), and the new
//! index-unary form `C⟨M, r⟩ = C ⊙ f(A, ind(A), s)` of §VIII.B — plus the
//! Table II `GrB_Scalar` variants of each bound-scalar form.
//!
//! **Fusion fast path**: an unmasked, unaccumulated, untransposed apply
//! whose input *is* its output (`apply(C, …, C)`) enqueues a fusible `Map`
//! stage instead of an opaque one; in nonblocking mode consecutive such
//! stages run as a single traversal at `wait` (§III).

use std::any::Any;
use std::sync::Arc;

use crate::descriptor::Descriptor;
use crate::error::{ApiError, Error, ExecErrorKind, GrbResult};
use crate::matrix::{MatStore, Matrix};
use crate::operations::{
    eff_shape, note_dag_fusion, snapshot_matmask, snapshot_operand, snapshot_vecmask,
};
use crate::ops::{registry, BinaryOp, IndexUnaryOp, UnaryOp};
use crate::pending::{MapFn, NodeKind};
use crate::scalar::Scalar;
use crate::types::{MaskValue, ValueType};
use crate::vector::{VecStore, Vector};
use crate::write;

/// Moves a value between two types that are statically known to possibly
/// coincide; succeeds exactly when `Src == Dst`.
fn same_type_cast<Src: 'static, Dst: 'static>(v: Src) -> Option<Dst> {
    let boxed: Box<dyn Any> = Box::new(v);
    boxed.downcast::<Dst>().ok().map(|b| *b)
}

fn plain_desc(desc: &Descriptor) -> bool {
    !desc.transpose_a && !desc.replace
}

/// `C⟨M, r⟩ = C ⊙ f(A)` with a unary operator.
pub fn apply<C, M, A>(
    c: &Matrix<C>,
    mask: Option<&Matrix<M>>,
    accum: Option<&BinaryOp<C, C, C>>,
    op: &UnaryOp<A, C>,
    a: &Matrix<A>,
    desc: &Descriptor,
) -> GrbResult
where
    C: ValueType,
    M: MaskValue,
    A: ValueType,
{
    // Fusion fast path: in-place, unmasked, no accumulator.
    if mask.is_none() && accum.is_none() && plain_desc(desc) && c.addr() == a.addr() {
        if let Some(op2) = same_type_cast::<UnaryOp<A, C>, UnaryOp<C, C>>(op.clone()) {
            let f: MapFn<C> = Arc::new(move |_, v| Some(op2.apply(v)));
            return c.apply_map(f);
        }
    }
    let ctx = c.context();
    let _op = graphblas_obs::span_ctx("op.apply", ctx.id());
    a.check_context(&ctx)?;
    if let Some(m) = mask {
        m.check_context(&ctx)?;
        if m.shape() != c.shape() {
            return Err(ApiError::DimensionMismatch.into());
        }
    }
    if c.shape() != eff_shape(a, desc.transpose_a) {
        return Err(ApiError::DimensionMismatch.into());
    }
    let a_s = snapshot_operand(a, &ctx, desc.transpose_a, false)?;
    let mask_s = snapshot_matmask(mask, desc)?;
    let op = op.clone();
    let accum = accum.cloned();
    let replace = desc.replace;
    let ctx2 = ctx.clone();
    c.apply_node(
        NodeKind::Apply,
        Box::new(move |st, post| {
            let nnz_in = a_s.nnz();
            let t = match registry::try_apply_csr(&ctx2, &a_s, op.builtin()) {
                Some(t) => t,
                None => {
                    registry::record_pick("apply", ctx2.id(), false);
                    a_s.map(&ctx2, |v| op.apply(v))
                }
            };
            note_dag_fusion("apply", ctx2.id(), NodeKind::Apply, 0, post.len(), nnz_in);
            if mask_s.is_none() && accum.is_none() {
                st.store = MatStore::Csr(Arc::new(t));
            } else {
                st.ensure_csr(&ctx2, true)?;
                let merged = write::merge_matrix(
                    &ctx2,
                    st.csr(),
                    t,
                    mask_s.as_ref(),
                    accum.as_ref(),
                    replace,
                );
                st.store = MatStore::Csr(Arc::new(merged));
            }
            st.apply_post_maps(&ctx2, &post)?;
            Ok(())
        }),
    )
}

/// Vector unary apply.
pub fn apply_v<C, M, A>(
    w: &Vector<C>,
    mask: Option<&Vector<M>>,
    accum: Option<&BinaryOp<C, C, C>>,
    op: &UnaryOp<A, C>,
    u: &Vector<A>,
    desc: &Descriptor,
) -> GrbResult
where
    C: ValueType,
    M: MaskValue,
    A: ValueType,
{
    if mask.is_none() && accum.is_none() && !desc.replace && w.addr() == u.addr() {
        if let Some(op2) = same_type_cast::<UnaryOp<A, C>, UnaryOp<C, C>>(op.clone()) {
            let f: MapFn<C> = Arc::new(move |_, v| Some(op2.apply(v)));
            return w.apply_map(f);
        }
    }
    let ctx = w.context();
    let _op = graphblas_obs::span_ctx("op.apply_v", ctx.id());
    u.check_context(&ctx)?;
    if let Some(m) = mask {
        m.check_context(&ctx)?;
        if m.size() != w.size() {
            return Err(ApiError::DimensionMismatch.into());
        }
    }
    if w.size() != u.size() {
        return Err(ApiError::DimensionMismatch.into());
    }
    let u_s = u.snapshot_sparse()?;
    let mask_s = snapshot_vecmask(mask, desc)?;
    let op = op.clone();
    let accum = accum.cloned();
    let replace = desc.replace;
    let ctx_id = ctx.id();
    w.apply_node(
        NodeKind::Apply,
        Box::new(move |st, post| {
            let nnz_in = u_s.nnz();
            let t = match registry::try_apply_svec(&u_s, op.builtin(), ctx_id) {
                Some(t) => t,
                None => {
                    registry::record_pick("apply_v", ctx_id, false);
                    u_s.map_with_index(|_, v| op.apply(v))
                }
            };
            note_dag_fusion("apply_v", ctx_id, NodeKind::Apply, 0, post.len(), nnz_in);
            if mask_s.is_none() && accum.is_none() {
                st.store = VecStore::Sparse(Arc::new(t));
            } else {
                st.ensure_sparse()?;
                let merged =
                    write::merge_vector(st.sparse(), t, mask_s.as_ref(), accum.as_ref(), replace);
                st.store = VecStore::Sparse(Arc::new(merged));
            }
            st.apply_post_maps(&post)?;
            Ok(())
        }),
    )
}

/// `C = C ⊙ op(x, A)` — binary operator with the first argument bound.
pub fn apply_binop1st<C, M, A, B>(
    c: &Matrix<C>,
    mask: Option<&Matrix<M>>,
    accum: Option<&BinaryOp<C, C, C>>,
    op: &BinaryOp<A, B, C>,
    x: A,
    b: &Matrix<B>,
    desc: &Descriptor,
) -> GrbResult
where
    C: ValueType,
    M: MaskValue,
    A: ValueType,
    B: ValueType,
{
    let _op = graphblas_obs::span_ctx("op.apply_binop1st", 0);
    let op = op.clone();
    let bound = UnaryOp::<B, C>::new("bound1st", move |v| op.apply(&x, v));
    apply(c, mask, accum, &bound, b, desc)
}

/// `C = C ⊙ op(A, y)` — binary operator with the second argument bound.
pub fn apply_binop2nd<C, M, A, B>(
    c: &Matrix<C>,
    mask: Option<&Matrix<M>>,
    accum: Option<&BinaryOp<C, C, C>>,
    op: &BinaryOp<A, B, C>,
    a: &Matrix<A>,
    y: B,
    desc: &Descriptor,
) -> GrbResult
where
    C: ValueType,
    M: MaskValue,
    A: ValueType,
    B: ValueType,
{
    let _op = graphblas_obs::span_ctx("op.apply_binop2nd", 0);
    let op = op.clone();
    let bound = UnaryOp::<A, C>::new("bound2nd", move |v| op.apply(v, &y));
    apply(c, mask, accum, &bound, a, desc)
}

/// `w = w ⊙ op(x, u)` — vector form of [`apply_binop1st`].
pub fn apply_binop1st_v<C, M, A, B>(
    w: &Vector<C>,
    mask: Option<&Vector<M>>,
    accum: Option<&BinaryOp<C, C, C>>,
    op: &BinaryOp<A, B, C>,
    x: A,
    u: &Vector<B>,
    desc: &Descriptor,
) -> GrbResult
where
    C: ValueType,
    M: MaskValue,
    A: ValueType,
    B: ValueType,
{
    let _op = graphblas_obs::span_ctx("op.apply_binop1st_v", 0);
    let op = op.clone();
    let bound = UnaryOp::<B, C>::new("bound1st", move |v| op.apply(&x, v));
    apply_v(w, mask, accum, &bound, u, desc)
}

/// `w = w ⊙ op(u, y)` — vector form of [`apply_binop2nd`].
pub fn apply_binop2nd_v<C, M, A, B>(
    w: &Vector<C>,
    mask: Option<&Vector<M>>,
    accum: Option<&BinaryOp<C, C, C>>,
    op: &BinaryOp<A, B, C>,
    u: &Vector<A>,
    y: B,
    desc: &Descriptor,
) -> GrbResult
where
    C: ValueType,
    M: MaskValue,
    A: ValueType,
    B: ValueType,
{
    let _op = graphblas_obs::span_ctx("op.apply_binop2nd_v", 0);
    let op = op.clone();
    let bound = UnaryOp::<A, C>::new("bound2nd", move |v| op.apply(v, &y));
    apply_v(w, mask, accum, &bound, u, desc)
}

fn scalar_value<S: ValueType>(s: &Scalar<S>) -> GrbResult<S> {
    s.extract_element()?.ok_or_else(|| {
        Error::exec(
            ExecErrorKind::EmptyObject,
            "operation requires a non-empty GrB_Scalar argument",
        )
    })
}

/// Table II vector variant: bound first argument as a `GrB_Scalar`.
pub fn apply_binop1st_v_scalar<C, M, A, B>(
    w: &Vector<C>,
    mask: Option<&Vector<M>>,
    accum: Option<&BinaryOp<C, C, C>>,
    op: &BinaryOp<A, B, C>,
    x: &Scalar<A>,
    u: &Vector<B>,
    desc: &Descriptor,
) -> GrbResult
where
    C: ValueType,
    M: MaskValue,
    A: ValueType,
    B: ValueType,
{
    let _op = graphblas_obs::span_ctx("op.apply_binop1st_v_scalar", 0);
    apply_binop1st_v(w, mask, accum, op, scalar_value(x)?, u, desc)
}

/// Table II vector variant: bound second argument as a `GrB_Scalar`.
pub fn apply_binop2nd_v_scalar<C, M, A, B>(
    w: &Vector<C>,
    mask: Option<&Vector<M>>,
    accum: Option<&BinaryOp<C, C, C>>,
    op: &BinaryOp<A, B, C>,
    u: &Vector<A>,
    y: &Scalar<B>,
    desc: &Descriptor,
) -> GrbResult
where
    C: ValueType,
    M: MaskValue,
    A: ValueType,
    B: ValueType,
{
    let _op = graphblas_obs::span_ctx("op.apply_binop2nd_v_scalar", 0);
    apply_binop2nd_v(w, mask, accum, op, u, scalar_value(y)?, desc)
}

/// Table II variant: bound first argument supplied as a `GrB_Scalar`
/// (which must be non-empty — `GrB_EMPTY_OBJECT` otherwise).
pub fn apply_binop1st_scalar<C, M, A, B>(
    c: &Matrix<C>,
    mask: Option<&Matrix<M>>,
    accum: Option<&BinaryOp<C, C, C>>,
    op: &BinaryOp<A, B, C>,
    x: &Scalar<A>,
    b: &Matrix<B>,
    desc: &Descriptor,
) -> GrbResult
where
    C: ValueType,
    M: MaskValue,
    A: ValueType,
    B: ValueType,
{
    let _op = graphblas_obs::span_ctx("op.apply_binop1st_scalar", 0);
    apply_binop1st(c, mask, accum, op, scalar_value(x)?, b, desc)
}

/// Table II variant: bound second argument as a `GrB_Scalar`.
pub fn apply_binop2nd_scalar<C, M, A, B>(
    c: &Matrix<C>,
    mask: Option<&Matrix<M>>,
    accum: Option<&BinaryOp<C, C, C>>,
    op: &BinaryOp<A, B, C>,
    a: &Matrix<A>,
    y: &Scalar<B>,
    desc: &Descriptor,
) -> GrbResult
where
    C: ValueType,
    M: MaskValue,
    A: ValueType,
    B: ValueType,
{
    let _op = graphblas_obs::span_ctx("op.apply_binop2nd_scalar", 0);
    apply_binop2nd(c, mask, accum, op, a, scalar_value(y)?, desc)
}

/// §VIII.B: `C⟨M, r⟩ = C ⊙ f(A, ind(A), 2, s)` — the index-unary apply.
/// When `A` is transposed the indices are those *after* the transpose, as
/// the paper specifies.
pub fn apply_indexop<C, M, A, S>(
    c: &Matrix<C>,
    mask: Option<&Matrix<M>>,
    accum: Option<&BinaryOp<C, C, C>>,
    f: &IndexUnaryOp<A, S, C>,
    a: &Matrix<A>,
    s: S,
    desc: &Descriptor,
) -> GrbResult
where
    C: ValueType,
    M: MaskValue,
    A: ValueType,
    S: ValueType,
{
    if mask.is_none() && accum.is_none() && plain_desc(desc) && c.addr() == a.addr() {
        if let Some(f2) = same_type_cast::<IndexUnaryOp<A, S, C>, IndexUnaryOp<C, S, C>>(f.clone())
        {
            let g: MapFn<C> = Arc::new(move |idx, v| Some(f2.apply(v, idx, &s)));
            return c.apply_map(g);
        }
    }
    let ctx = c.context();
    let _op = graphblas_obs::span_ctx("op.apply_indexop", ctx.id());
    a.check_context(&ctx)?;
    if let Some(m) = mask {
        m.check_context(&ctx)?;
        if m.shape() != c.shape() {
            return Err(ApiError::DimensionMismatch.into());
        }
    }
    if c.shape() != eff_shape(a, desc.transpose_a) {
        return Err(ApiError::DimensionMismatch.into());
    }
    let a_s = snapshot_operand(a, &ctx, desc.transpose_a, false)?;
    let mask_s = snapshot_matmask(mask, desc)?;
    let f = f.clone();
    let accum = accum.cloned();
    let replace = desc.replace;
    let ctx2 = ctx.clone();
    c.apply_node(
        NodeKind::Apply,
        Box::new(move |st, post| {
            let nnz_in = a_s.nnz();
            let t = a_s.map_with_index(&ctx2, |i, j, v| f.apply(v, &[i, j], &s));
            note_dag_fusion(
                "apply_indexop",
                ctx2.id(),
                NodeKind::Apply,
                0,
                post.len(),
                nnz_in,
            );
            if mask_s.is_none() && accum.is_none() {
                st.store = MatStore::Csr(Arc::new(t));
            } else {
                st.ensure_csr(&ctx2, true)?;
                let merged = write::merge_matrix(
                    &ctx2,
                    st.csr(),
                    t,
                    mask_s.as_ref(),
                    accum.as_ref(),
                    replace,
                );
                st.store = MatStore::Csr(Arc::new(merged));
            }
            st.apply_post_maps(&ctx2, &post)?;
            Ok(())
        }),
    )
}

/// Table II: index-unary apply with `s` as a `GrB_Scalar`.
pub fn apply_indexop_scalar<C, M, A, S>(
    c: &Matrix<C>,
    mask: Option<&Matrix<M>>,
    accum: Option<&BinaryOp<C, C, C>>,
    f: &IndexUnaryOp<A, S, C>,
    a: &Matrix<A>,
    s: &Scalar<S>,
    desc: &Descriptor,
) -> GrbResult
where
    C: ValueType,
    M: MaskValue,
    A: ValueType,
    S: ValueType,
{
    let _op = graphblas_obs::span_ctx("op.apply_indexop_scalar", 0);
    apply_indexop(c, mask, accum, f, a, scalar_value(s)?, desc)
}

/// §VIII.B vector form: `w⟨m, r⟩ = w ⊙ f(u, ind(u), 1, s)`.
pub fn apply_indexop_v<C, M, A, S>(
    w: &Vector<C>,
    mask: Option<&Vector<M>>,
    accum: Option<&BinaryOp<C, C, C>>,
    f: &IndexUnaryOp<A, S, C>,
    u: &Vector<A>,
    s: S,
    desc: &Descriptor,
) -> GrbResult
where
    C: ValueType,
    M: MaskValue,
    A: ValueType,
    S: ValueType,
{
    if mask.is_none() && accum.is_none() && !desc.replace && w.addr() == u.addr() {
        if let Some(f2) = same_type_cast::<IndexUnaryOp<A, S, C>, IndexUnaryOp<C, S, C>>(f.clone())
        {
            let g: MapFn<C> = Arc::new(move |idx, v| Some(f2.apply(v, idx, &s)));
            return w.apply_map(g);
        }
    }
    let ctx = w.context();
    let _op = graphblas_obs::span_ctx("op.apply_indexop_v", ctx.id());
    u.check_context(&ctx)?;
    if let Some(m) = mask {
        m.check_context(&ctx)?;
        if m.size() != w.size() {
            return Err(ApiError::DimensionMismatch.into());
        }
    }
    if w.size() != u.size() {
        return Err(ApiError::DimensionMismatch.into());
    }
    let u_s = u.snapshot_sparse()?;
    let mask_s = snapshot_vecmask(mask, desc)?;
    let f = f.clone();
    let accum = accum.cloned();
    let replace = desc.replace;
    let ctx_id = ctx.id();
    w.apply_node(
        NodeKind::Apply,
        Box::new(move |st, post| {
            let nnz_in = u_s.nnz();
            let t = u_s.map_with_index(|i, v| f.apply(v, &[i], &s));
            note_dag_fusion(
                "apply_indexop_v",
                ctx_id,
                NodeKind::Apply,
                0,
                post.len(),
                nnz_in,
            );
            if mask_s.is_none() && accum.is_none() {
                st.store = VecStore::Sparse(Arc::new(t));
            } else {
                st.ensure_sparse()?;
                let merged =
                    write::merge_vector(st.sparse(), t, mask_s.as_ref(), accum.as_ref(), replace);
                st.store = VecStore::Sparse(Arc::new(merged));
            }
            st.apply_post_maps(&post)?;
            Ok(())
        }),
    )
}

/// Table II: vector index-unary apply with `s` as a `GrB_Scalar`.
pub fn apply_indexop_v_scalar<C, M, A, S>(
    w: &Vector<C>,
    mask: Option<&Vector<M>>,
    accum: Option<&BinaryOp<C, C, C>>,
    f: &IndexUnaryOp<A, S, C>,
    u: &Vector<A>,
    s: &Scalar<S>,
    desc: &Descriptor,
) -> GrbResult
where
    C: ValueType,
    M: MaskValue,
    A: ValueType,
    S: ValueType,
{
    let _op = graphblas_obs::span_ctx("op.apply_indexop_v_scalar", 0);
    apply_indexop_v(w, mask, accum, f, u, scalar_value(s)?, desc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operations::testutil::{mat, mat_tuples, vec, vec_tuples};
    use crate::{no_mask, no_mask_v};

    #[test]
    fn unary_apply_maps_values() {
        let a = mat((2, 2), &[(0, 0, 2i64), (1, 1, 3)]);
        let c = Matrix::<i64>::new(2, 2).unwrap();
        apply(
            &c,
            no_mask(),
            None,
            &UnaryOp::new("sq", |x: &i64| x * x),
            &a,
            &Descriptor::default(),
        )
        .unwrap();
        assert_eq!(mat_tuples(&c), vec![(0, 0, 4), (1, 1, 9)]);
    }

    #[test]
    fn apply_with_domain_change() {
        let a = mat((1, 2), &[(0, 0, 1.5f64), (0, 1, -2.5)]);
        let c = Matrix::<i64>::new(1, 2).unwrap();
        apply(
            &c,
            no_mask(),
            None,
            &UnaryOp::new("round", |x: &f64| x.round() as i64),
            &a,
            &Descriptor::default(),
        )
        .unwrap();
        assert_eq!(mat_tuples(&c), vec![(0, 0, 2), (0, 1, -3)]);
    }

    #[test]
    fn bound_binops() {
        let a = mat((1, 2), &[(0, 0, 10i64), (0, 1, 20)]);
        let c = Matrix::<i64>::new(1, 2).unwrap();
        apply_binop1st(
            &c,
            no_mask(),
            None,
            &BinaryOp::minus(),
            100,
            &a,
            &Descriptor::default(),
        )
        .unwrap();
        assert_eq!(mat_tuples(&c), vec![(0, 0, 90), (0, 1, 80)]);
        apply_binop2nd(
            &c,
            no_mask(),
            None,
            &BinaryOp::minus(),
            &a,
            1,
            &Descriptor::default(),
        )
        .unwrap();
        assert_eq!(mat_tuples(&c), vec![(0, 0, 9), (0, 1, 19)]);
    }

    #[test]
    fn scalar_variants_require_nonempty() {
        let a = mat((1, 1), &[(0, 0, 1i64)]);
        let c = Matrix::<i64>::new(1, 1).unwrap();
        let s = Scalar::<i64>::new().unwrap();
        let err = apply_binop2nd_scalar(
            &c,
            no_mask(),
            None,
            &BinaryOp::plus(),
            &a,
            &s,
            &Descriptor::default(),
        )
        .unwrap_err();
        assert_eq!(err.code(), -106);
        s.set_element(5).unwrap();
        apply_binop2nd_scalar(
            &c,
            no_mask(),
            None,
            &BinaryOp::plus(),
            &a,
            &s,
            &Descriptor::default(),
        )
        .unwrap();
        assert_eq!(mat_tuples(&c), vec![(0, 0, 6)]);
    }

    #[test]
    fn paper_colindex_apply_example() {
        // §VIII.B: GrB_apply(C, NULL, NULL, GrB_COLINDEX_..., A, 1, NULL)
        // replaces every stored value with its column index + 1.
        let a = mat((3, 3), &[(0, 1, 99i64), (2, 0, 99), (2, 2, 99)]);
        let c = Matrix::<i64>::new(3, 3).unwrap();
        apply_indexop(
            &c,
            no_mask(),
            None,
            &IndexUnaryOp::colindex(),
            &a,
            1i64,
            &Descriptor::default(),
        )
        .unwrap();
        assert_eq!(mat_tuples(&c), vec![(0, 1, 2), (2, 0, 1), (2, 2, 3)]);
    }

    #[test]
    fn indexop_on_vector_uses_single_index() {
        let u = vec(5, &[(1, 0i64), (4, 0)]);
        let w = Vector::<i64>::new(5).unwrap();
        apply_indexop_v(
            &w,
            no_mask_v(),
            None,
            &IndexUnaryOp::rowindex(),
            &u,
            10i64,
            &Descriptor::default(),
        )
        .unwrap();
        assert_eq!(vec_tuples(&w), vec![(1, 11), (4, 14)]);
    }

    #[test]
    fn in_place_apply_uses_fusion_path_in_nonblocking() {
        use graphblas_exec::{Context, ContextOptions, Mode};
        let ctx = Context::new(
            &crate::global_context(),
            Mode::NonBlocking,
            ContextOptions::default(),
        );
        let c = Matrix::<i64>::new_in(&ctx, 2, 2).unwrap();
        c.build(&[0, 1], &[0, 1], &[1, 2], None).unwrap();
        for _ in 0..3 {
            apply(
                &c,
                no_mask(),
                None,
                &UnaryOp::new("inc", |x: &i64| x + 1),
                &c,
                &Descriptor::default(),
            )
            .unwrap();
        }
        // Three map stages queued behind the build stage, not yet run.
        assert!(c.pending_len() >= 3);
        assert_eq!(c.extract_element(0, 0).unwrap(), Some(4));
        assert_eq!(c.extract_element(1, 1).unwrap(), Some(5));
    }

    #[test]
    fn transposed_indexop_sees_post_transpose_indices() {
        let a = mat((2, 3), &[(0, 2, 7i64)]);
        let c = Matrix::<i64>::new(3, 2).unwrap();
        apply_indexop(
            &c,
            no_mask(),
            None,
            &IndexUnaryOp::rowindex(),
            &a,
            0i64,
            &Descriptor::new().transpose_a(),
        )
        .unwrap();
        // After transpose the element sits at (2, 0): ROWINDEX yields 2.
        assert_eq!(mat_tuples(&c), vec![(2, 0, 2)]);
    }
}
