//! The GraphBLAS operations: `mxm`, `mxv`/`vxm`, element-wise add/mult,
//! `apply` (including the §VIII index-unary variants), `select`, `reduce`,
//! `extract`, `assign`, `transpose`, and `kronecker` — each with the full
//! mask / accumulator / descriptor write semantics and the Table II
//! `GrB_Scalar` variants.
//!
//! All operations follow the same lifecycle:
//!
//! 1. **API validation** (contexts §IV, shapes) — errors here are
//!    deterministic, immediate, and side-effect free (§V);
//! 2. **input snapshots** — operands are completed and snapshotted *at
//!    call time*, fixing their value at this point of the sequence;
//! 3. **deferred body** — in a nonblocking context the computation is
//!    queued on the output object (fusible element-wise stages queue as
//!    `Map` stages); in a blocking context it runs immediately.

pub mod apply;
pub mod assign;
pub mod ewise;
pub mod extract;
pub mod kron;
pub mod mxm;
pub mod mxv;
pub mod reduce;
pub mod select;
pub mod transpose;

pub use apply::{
    apply, apply_binop1st, apply_binop1st_scalar, apply_binop1st_v, apply_binop1st_v_scalar,
    apply_binop2nd, apply_binop2nd_scalar, apply_binop2nd_v, apply_binop2nd_v_scalar,
    apply_indexop, apply_indexop_scalar, apply_indexop_v, apply_indexop_v_scalar, apply_v,
};
pub use assign::{
    assign, assign_col, assign_row, assign_scalar, assign_scalar_grb, assign_scalar_v,
    assign_scalar_v_grb, assign_v,
};
pub use ewise::{
    ewise_add, ewise_add_monoid, ewise_add_semiring, ewise_add_v, ewise_mult, ewise_mult_semiring,
    ewise_mult_v,
};
pub use extract::{extract, extract_col, extract_v};
pub use kron::kronecker;
pub use mxm::mxm;
pub use mxv::{force_direction, mxv, vxm, Direction};
pub use reduce::{
    reduce_scalar, reduce_scalar_binop, reduce_scalar_binop_v, reduce_scalar_v, reduce_to_value,
    reduce_to_value_v, reduce_to_vector,
};
pub use select::{select, select_scalar, select_v, select_v_scalar};
pub use transpose::transpose;

use std::sync::Arc;

use graphblas_exec::Context;
use graphblas_sparse::Csr;

use crate::descriptor::Descriptor;
use crate::error::GrbResult;
use crate::matrix::Matrix;
use crate::types::{Index, MaskValue, ValueType};
use crate::write::{MatMask, VecMask};

/// The index list meaning "all indices" (`GrB_ALL` in C).
pub fn all_indices(n: usize) -> Vec<Index> {
    (0..n).collect()
}

/// Records one op-DAG node execution's fusion outcome: `pre`/`post` are
/// the counts of pending element maps folded into this node's numeric
/// phase (input side / output side). Emits the `dag-fuse` decision event
/// whenever cross-operation fusion actually fired.
pub(crate) fn note_dag_fusion(
    op: &'static str,
    ctx_id: u64,
    kind: crate::pending::NodeKind,
    pre: usize,
    post: usize,
    nnz_in: usize,
) {
    if graphblas_obs::enabled() {
        graphblas_obs::counters::record_dag_fusion(pre as u64, post as u64);
        if graphblas_obs::events::on() && pre + post > 0 {
            graphblas_obs::events::decision_dag_fuse(
                op,
                ctx_id,
                kind.name(),
                pre as u64,
                post as u64,
                nnz_in as u64,
            );
        }
    }
}

/// Effective shape of a matrix operand under a descriptor transpose flag.
pub(crate) fn eff_shape<T: ValueType>(m: &Matrix<T>, transposed: bool) -> (Index, Index) {
    let (r, c) = m.shape();
    if transposed {
        (c, r)
    } else {
        (r, c)
    }
}

/// Completes `m` and snapshots it as CSR, materializing the descriptor
/// transpose. Transposed snapshots always come out row-sorted, and are
/// served from the matrix's memoized transpose cache when the store is
/// unchanged since the last transposed use.
pub(crate) fn snapshot_operand<T: ValueType>(
    m: &Matrix<T>,
    _ctx: &Context,
    transposed: bool,
    sorted: bool,
) -> GrbResult<Arc<Csr<T>>> {
    if transposed {
        m.snapshot_transposed()
    } else {
        m.snapshot_csr(sorted)
    }
}

/// Snapshots an optional matrix mask per the descriptor.
pub(crate) fn snapshot_matmask<M: MaskValue>(
    mask: Option<&Matrix<M>>,
    desc: &Descriptor,
) -> GrbResult<Option<MatMask>> {
    match mask {
        None => Ok(None),
        Some(m) => Ok(Some(MatMask {
            mask: m.snapshot_mask(desc.mask_structure)?,
            complement: desc.mask_complement,
        })),
    }
}

/// Snapshots an optional vector mask per the descriptor.
pub(crate) fn snapshot_vecmask<M: MaskValue>(
    mask: Option<&crate::vector::Vector<M>>,
    desc: &Descriptor,
) -> GrbResult<Option<VecMask>> {
    match mask {
        None => Ok(None),
        Some(m) => Ok(Some(VecMask {
            mask: m.snapshot_mask(desc.mask_structure)?,
            complement: desc.mask_complement,
        })),
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use crate::matrix::Matrix;
    use crate::types::{Index, ValueType};
    use crate::vector::Vector;

    pub fn mat<T: ValueType>(shape: (usize, usize), tuples: &[(Index, Index, T)]) -> Matrix<T> {
        let m = Matrix::new(shape.0, shape.1).unwrap();
        let rows: Vec<_> = tuples.iter().map(|t| t.0).collect();
        let cols: Vec<_> = tuples.iter().map(|t| t.1).collect();
        let vals: Vec<_> = tuples.iter().map(|t| t.2.clone()).collect();
        m.build(&rows, &cols, &vals, None).unwrap();
        m
    }

    pub fn vec<T: ValueType>(n: usize, tuples: &[(Index, T)]) -> Vector<T> {
        let v = Vector::new(n).unwrap();
        let idx: Vec<_> = tuples.iter().map(|t| t.0).collect();
        let vals: Vec<_> = tuples.iter().map(|t| t.1.clone()).collect();
        v.build(&idx, &vals, None).unwrap();
        v
    }

    pub fn mat_tuples<T: ValueType>(m: &Matrix<T>) -> Vec<(Index, Index, T)> {
        let (r, c, v) = m.extract_tuples().unwrap();
        r.into_iter()
            .zip(c)
            .zip(v)
            .map(|((i, j), x)| (i, j, x))
            .collect()
    }

    pub fn vec_tuples<T: ValueType>(v: &Vector<T>) -> Vec<(Index, T)> {
        let (i, x) = v.extract_tuples().unwrap();
        i.into_iter().zip(x).collect()
    }
}
