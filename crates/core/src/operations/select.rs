//! `GrB_select` (§VIII.C) — new in GraphBLAS 2.0: a *functional input
//! mask*. A boolean index-unary operator decides, per stored element,
//! whether it is kept (unchanged) or annihilated:
//!
//! ```text
//! C⟨M, r⟩ = C ⊙ A⟨f(A, ind(A), 2, s)⟩
//! ```
//!
//! Like `apply`, the unmasked/unaccumulated in-place form enqueues a
//! fusible `Map` stage.

use std::sync::Arc;

use crate::descriptor::Descriptor;
use crate::error::{ApiError, Error, ExecErrorKind, GrbResult};
use crate::matrix::{MatStore, Matrix};
use crate::operations::{
    eff_shape, note_dag_fusion, snapshot_matmask, snapshot_operand, snapshot_vecmask,
};
use crate::ops::{BinaryOp, IndexUnaryOp};
use crate::pending::{MapFn, NodeKind};
use crate::scalar::Scalar;
use crate::types::{MaskValue, ValueType};
use crate::vector::{VecStore, Vector};
use crate::write;

fn scalar_value<S: ValueType>(s: &Scalar<S>) -> GrbResult<S> {
    s.extract_element()?.ok_or_else(|| {
        Error::exec(
            ExecErrorKind::EmptyObject,
            "select requires a non-empty GrB_Scalar argument",
        )
    })
}

/// Matrix select: keep elements where `f` returns `true`.
pub fn select<T, M, S>(
    c: &Matrix<T>,
    mask: Option<&Matrix<M>>,
    accum: Option<&BinaryOp<T, T, T>>,
    f: &IndexUnaryOp<T, S, bool>,
    a: &Matrix<T>,
    s: S,
    desc: &Descriptor,
) -> GrbResult
where
    T: ValueType,
    M: MaskValue,
    S: ValueType,
{
    if mask.is_none()
        && accum.is_none()
        && !desc.transpose_a
        && !desc.replace
        && c.addr() == a.addr()
    {
        // Same object, same domain by construction (both are T).
        let f2 = f.clone();
        let s2 = s.clone();
        let g: MapFn<T> = Arc::new(move |idx, v| f2.apply(v, idx, &s2).then(|| v.clone()));
        return c.apply_map(g);
    }
    let ctx = c.context();
    let _op = graphblas_obs::span_ctx("op.select", ctx.id());
    a.check_context(&ctx)?;
    if let Some(m) = mask {
        m.check_context(&ctx)?;
        if m.shape() != c.shape() {
            return Err(ApiError::DimensionMismatch.into());
        }
    }
    if c.shape() != eff_shape(a, desc.transpose_a) {
        return Err(ApiError::DimensionMismatch.into());
    }
    let a_s = snapshot_operand(a, &ctx, desc.transpose_a, false)?;
    let mask_s = snapshot_matmask(mask, desc)?;
    let f = f.clone();
    let accum = accum.cloned();
    let replace = desc.replace;
    let ctx2 = ctx.clone();
    c.apply_node(
        NodeKind::Select,
        Box::new(move |st, post| {
            let nnz_in = a_s.nnz();
            let t = a_s
                .filter_map_with_index(&ctx2, |i, j, v| f.apply(v, &[i, j], &s).then(|| v.clone()));
            note_dag_fusion("select", ctx2.id(), NodeKind::Select, 0, post.len(), nnz_in);
            if mask_s.is_none() && accum.is_none() {
                st.store = MatStore::Csr(Arc::new(t));
            } else {
                st.ensure_csr(&ctx2, true)?;
                let merged = write::merge_matrix(
                    &ctx2,
                    st.csr(),
                    t,
                    mask_s.as_ref(),
                    accum.as_ref(),
                    replace,
                );
                st.store = MatStore::Csr(Arc::new(merged));
            }
            st.apply_post_maps(&ctx2, &post)?;
            Ok(())
        }),
    )
}

/// Table II variant with `s` as a `GrB_Scalar` (must be non-empty).
pub fn select_scalar<T, M, S>(
    c: &Matrix<T>,
    mask: Option<&Matrix<M>>,
    accum: Option<&BinaryOp<T, T, T>>,
    f: &IndexUnaryOp<T, S, bool>,
    a: &Matrix<T>,
    s: &Scalar<S>,
    desc: &Descriptor,
) -> GrbResult
where
    T: ValueType,
    M: MaskValue,
    S: ValueType,
{
    let _op = graphblas_obs::span_ctx("op.select_scalar", 0);
    select(c, mask, accum, f, a, scalar_value(s)?, desc)
}

/// Vector select: `w⟨m, r⟩ = w ⊙ u⟨f(u, ind(u), 1, s)⟩`.
pub fn select_v<T, M, S>(
    w: &Vector<T>,
    mask: Option<&Vector<M>>,
    accum: Option<&BinaryOp<T, T, T>>,
    f: &IndexUnaryOp<T, S, bool>,
    u: &Vector<T>,
    s: S,
    desc: &Descriptor,
) -> GrbResult
where
    T: ValueType,
    M: MaskValue,
    S: ValueType,
{
    if mask.is_none() && accum.is_none() && !desc.replace && w.addr() == u.addr() {
        let f2 = f.clone();
        let s2 = s.clone();
        let g: MapFn<T> = Arc::new(move |idx, v| f2.apply(v, idx, &s2).then(|| v.clone()));
        return w.apply_map(g);
    }
    let ctx = w.context();
    let _op = graphblas_obs::span_ctx("op.select_v", ctx.id());
    u.check_context(&ctx)?;
    if let Some(m) = mask {
        m.check_context(&ctx)?;
        if m.size() != w.size() {
            return Err(ApiError::DimensionMismatch.into());
        }
    }
    if w.size() != u.size() {
        return Err(ApiError::DimensionMismatch.into());
    }
    let u_s = u.snapshot_sparse()?;
    let mask_s = snapshot_vecmask(mask, desc)?;
    let f = f.clone();
    let accum = accum.cloned();
    let replace = desc.replace;
    let ctx2 = ctx.clone();
    w.apply_node(
        NodeKind::Select,
        Box::new(move |st, post| {
            let nnz_in = u_s.nnz();
            let t = u_s.filter_map_with_index(|i, v| f.apply(v, &[i], &s).then(|| v.clone()));
            note_dag_fusion(
                "select_v",
                ctx2.id(),
                NodeKind::Select,
                0,
                post.len(),
                nnz_in,
            );
            if mask_s.is_none() && accum.is_none() {
                st.store = VecStore::Sparse(Arc::new(t));
            } else {
                st.ensure_sparse()?;
                let merged =
                    write::merge_vector(st.sparse(), t, mask_s.as_ref(), accum.as_ref(), replace);
                st.store = VecStore::Sparse(Arc::new(merged));
            }
            st.apply_post_maps(&post)?;
            Ok(())
        }),
    )
}

/// Table II variant with `s` as a `GrB_Scalar`.
pub fn select_v_scalar<T, M, S>(
    w: &Vector<T>,
    mask: Option<&Vector<M>>,
    accum: Option<&BinaryOp<T, T, T>>,
    f: &IndexUnaryOp<T, S, bool>,
    u: &Vector<T>,
    s: &Scalar<S>,
    desc: &Descriptor,
) -> GrbResult
where
    T: ValueType,
    M: MaskValue,
    S: ValueType,
{
    let _op = graphblas_obs::span_ctx("op.select_v_scalar", 0);
    select_v(w, mask, accum, f, u, scalar_value(s)?, desc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operations::testutil::{mat, mat_tuples, vec, vec_tuples};
    use crate::{no_mask, no_mask_v};

    #[test]
    fn tril_triu_partition_the_matrix() {
        let a = mat(
            (3, 3),
            &[(0, 0, 1i64), (0, 2, 2), (1, 1, 3), (2, 0, 4), (2, 2, 5)],
        );
        let lower = Matrix::<i64>::new(3, 3).unwrap();
        select(
            &lower,
            no_mask(),
            None,
            &IndexUnaryOp::tril(),
            &a,
            0i64,
            &Descriptor::default(),
        )
        .unwrap();
        assert_eq!(
            mat_tuples(&lower),
            vec![(0, 0, 1), (1, 1, 3), (2, 0, 4), (2, 2, 5)]
        );
        let strict_upper = Matrix::<i64>::new(3, 3).unwrap();
        select(
            &strict_upper,
            no_mask(),
            None,
            &IndexUnaryOp::triu(),
            &a,
            1i64,
            &Descriptor::default(),
        )
        .unwrap();
        assert_eq!(mat_tuples(&strict_upper), vec![(0, 2, 2)]);
    }

    #[test]
    fn value_selectors() {
        let a = mat((1, 4), &[(0, 0, 5i64), (0, 1, 7), (0, 2, 5), (0, 3, 9)]);
        let c = Matrix::<i64>::new(1, 4).unwrap();
        select(
            &c,
            no_mask(),
            None,
            &IndexUnaryOp::valueeq(),
            &a,
            5i64,
            &Descriptor::default(),
        )
        .unwrap();
        assert_eq!(mat_tuples(&c), vec![(0, 0, 5), (0, 2, 5)]);
        select(
            &c,
            no_mask(),
            None,
            &IndexUnaryOp::valuegt(),
            &a,
            6i64,
            &Descriptor::default(),
        )
        .unwrap();
        assert_eq!(mat_tuples(&c), vec![(0, 1, 7), (0, 3, 9)]);
    }

    #[test]
    fn paper_fig3_select_example() {
        // §VIII.A/C: keep upper-triangular elements with value > s (s = 0).
        let my_triu_gt =
            IndexUnaryOp::<i64, i64, bool>::new("triu_gt", |v, idx, s| idx[1] > idx[0] && v > s);
        let a = mat(
            (3, 3),
            &[(0, 1, 4i64), (0, 2, -1), (1, 0, 2), (1, 2, 3), (2, 2, 9)],
        );
        let c = Matrix::<i64>::new(3, 3).unwrap();
        select(
            &c,
            no_mask(),
            None,
            &my_triu_gt,
            &a,
            0i64,
            &Descriptor::default(),
        )
        .unwrap();
        assert_eq!(mat_tuples(&c), vec![(0, 1, 4), (1, 2, 3)]);
    }

    #[test]
    fn vector_select_rowle_rowgt() {
        let u = vec(6, &[(0, 1i64), (2, 2), (4, 3), (5, 4)]);
        let w = Vector::<i64>::new(6).unwrap();
        select_v(
            &w,
            no_mask_v(),
            None,
            &IndexUnaryOp::rowle(),
            &u,
            2i64,
            &Descriptor::default(),
        )
        .unwrap();
        assert_eq!(vec_tuples(&w), vec![(0, 1), (2, 2)]);
        select_v(
            &w,
            no_mask_v(),
            None,
            &IndexUnaryOp::rowgt(),
            &u,
            2i64,
            &Descriptor::default(),
        )
        .unwrap();
        assert_eq!(vec_tuples(&w), vec![(4, 3), (5, 4)]);
    }

    #[test]
    fn select_scalar_variant_and_empty_error() {
        let a = mat((1, 2), &[(0, 0, 1i64), (0, 1, 5)]);
        let c = Matrix::<i64>::new(1, 2).unwrap();
        let s = Scalar::<i64>::new().unwrap();
        assert_eq!(
            select_scalar(
                &c,
                no_mask(),
                None,
                &IndexUnaryOp::valuegt(),
                &a,
                &s,
                &Descriptor::default()
            )
            .unwrap_err()
            .code(),
            -106
        );
        s.set_element(2).unwrap();
        select_scalar(
            &c,
            no_mask(),
            None,
            &IndexUnaryOp::valuegt(),
            &a,
            &s,
            &Descriptor::default(),
        )
        .unwrap();
        assert_eq!(mat_tuples(&c), vec![(0, 1, 5)]);
    }

    #[test]
    fn in_place_select_fuses() {
        use graphblas_exec::{Context, ContextOptions, Mode};
        let ctx = Context::new(
            &crate::global_context(),
            Mode::NonBlocking,
            ContextOptions::default(),
        );
        let c = Matrix::<i64>::new_in(&ctx, 1, 4).unwrap();
        c.build(&[0, 0, 0, 0], &[0, 1, 2, 3], &[1, 2, 3, 4], None)
            .unwrap();
        select(
            &c,
            no_mask(),
            None,
            &IndexUnaryOp::valuegt(),
            &c,
            1i64,
            &Descriptor::default(),
        )
        .unwrap();
        select(
            &c,
            no_mask(),
            None,
            &IndexUnaryOp::valuegt(),
            &c,
            2i64,
            &Descriptor::default(),
        )
        .unwrap();
        assert!(c.pending_len() >= 2);
        assert_eq!(mat_tuples(&c), vec![(0, 2, 3), (0, 3, 4)]);
    }

    #[test]
    fn masked_select_merges() {
        let a = mat((1, 3), &[(0, 0, 1i64), (0, 1, 2), (0, 2, 3)]);
        let c = mat((1, 3), &[(0, 0, 100i64)]);
        let mask = mat((1, 3), &[(0, 1, true), (0, 2, true)]);
        // Select everything (valuegt -inf) but only inside the mask; old
        // (0,0) survives because it is outside the mask and replace is off.
        select(
            &c,
            Some(&mask),
            None,
            &IndexUnaryOp::valuegt(),
            &a,
            i64::MIN,
            &Descriptor::default(),
        )
        .unwrap();
        assert_eq!(mat_tuples(&c), vec![(0, 0, 100), (0, 1, 2), (0, 2, 3)]);
    }
}
