//! `GrB_reduce`: matrix → vector (row-wise monoid reduction) and
//! matrix/vector → scalar.
//!
//! GraphBLAS 2.0 (§VI) reworks the scalar-output forms around
//! `GrB_Scalar`: reducing an empty container yields an **empty scalar**
//! instead of the monoid identity, and a plain associative `BinaryOp` is
//! now accepted as the reduction operator (no identity needed when the
//! output may be empty). The 1.X typed-value forms (returning the identity
//! for empty inputs) are kept as `reduce_to_value*`.

use std::sync::Arc;

use crate::descriptor::Descriptor;
use crate::error::{ApiError, GrbResult};
use crate::matrix::Matrix;
use crate::operations::{eff_shape, note_dag_fusion, snapshot_operand, snapshot_vecmask};
use crate::ops::{registry, BinaryOp, Monoid};
use crate::pending::NodeKind;
use crate::scalar::Scalar;
use crate::types::{MaskValue, ValueType};
use crate::vector::{VecStore, Vector};
use crate::write;

/// `w⟨m, r⟩ = w ⊙ [⊕ⱼ A(:, j)]` — row-wise reduction to a vector
/// (`desc.transpose_a` reduces columns instead).
pub fn reduce_to_vector<T, M>(
    w: &Vector<T>,
    mask: Option<&Vector<M>>,
    accum: Option<&BinaryOp<T, T, T>>,
    monoid: &Monoid<T>,
    a: &Matrix<T>,
    desc: &Descriptor,
) -> GrbResult
where
    T: ValueType,
    M: MaskValue,
{
    let ctx = w.context();
    let _op = graphblas_obs::span_ctx("op.reduce_to_vector", ctx.id());
    a.check_context(&ctx)?;
    if let Some(m) = mask {
        m.check_context(&ctx)?;
        if m.size() != w.size() {
            return Err(ApiError::DimensionMismatch.into());
        }
    }
    let (am, _) = eff_shape(a, desc.transpose_a);
    if w.size() != am {
        return Err(ApiError::DimensionMismatch.into());
    }
    let a_s = snapshot_operand(a, &ctx, desc.transpose_a, false)?;
    let mask_s = snapshot_vecmask(mask, desc)?;
    let monoid = monoid.clone();
    let accum = accum.cloned();
    let replace = desc.replace;
    let ctx2 = ctx.clone();
    w.apply_node(
        NodeKind::Reduce,
        Box::new(move |st, post| {
            let nnz_in = a_s.nnz();
            let rows = a_s.reduce_rows(&ctx2, |v| v.clone(), |x, y| monoid.apply(&x, &y));
            let mut indices = Vec::new();
            let mut values = Vec::new();
            for (i, r) in rows.into_iter().enumerate() {
                if let Some(v) = r {
                    indices.push(i);
                    values.push(v);
                }
            }
            // grblint: allow(no-unwrap) — indices are enumerate() positions:
            // strictly increasing and < nrows by construction.
            let t = graphblas_sparse::SparseVec::from_parts(a_s.nrows(), indices, values)
                .expect("reduce produces valid vector");
            note_dag_fusion(
                "reduce_to_vector",
                ctx2.id(),
                NodeKind::Reduce,
                0,
                post.len(),
                nnz_in,
            );
            if mask_s.is_none() && accum.is_none() {
                st.store = VecStore::Sparse(Arc::new(t));
            } else {
                st.ensure_sparse()?;
                let merged =
                    write::merge_vector(st.sparse(), t, mask_s.as_ref(), accum.as_ref(), replace);
                st.store = VecStore::Sparse(Arc::new(merged));
            }
            st.apply_post_maps(&post)?;
            Ok(())
        }),
    )
}

fn fold_scalar<T: ValueType>(
    old: Option<T>,
    t: Option<T>,
    accum: Option<&BinaryOp<T, T, T>>,
) -> Option<T> {
    match (accum, old, t) {
        (Some(op), Some(o), Some(t)) => Some(op.apply(&o, &t)),
        (Some(_), None, t) => t,
        (Some(_), o, None) => o,
        (None, _, t) => t,
    }
}

/// Table II: `GrB_reduce(GrB_Scalar, accum, monoid, A, desc)` — an empty
/// matrix yields an empty scalar (§VI).
pub fn reduce_scalar<T>(
    s: &Scalar<T>,
    accum: Option<&BinaryOp<T, T, T>>,
    monoid: &Monoid<T>,
    a: &Matrix<T>,
) -> GrbResult
where
    T: ValueType,
{
    let ctx = s.context();
    let _op = graphblas_obs::span_ctx("op.reduce_scalar", ctx.id());
    a.check_context(&ctx)?;
    let a_s = a.snapshot_csr(false)?;
    let monoid = monoid.clone();
    let accum = accum.cloned();
    s.apply_write(Box::new(move |slot: &mut Option<T>| {
        let gctx = graphblas_exec::global_context();
        let t = match registry::try_reduce_csr(&gctx, &a_s, monoid.builtin()) {
            Some(t) => t,
            None => {
                registry::record_pick("reduce", gctx.id(), false);
                a_s.reduce_all(
                    &gctx,
                    |v| v.clone(),
                    |x, y| monoid.apply(&x, &y),
                    monoid.terminal().map(|t| t as &(dyn Fn(&T) -> bool + Sync)),
                )
            }
        };
        *slot = fold_scalar(slot.take(), t, accum.as_ref());
        Ok(())
    }))
}

/// §VI: reduction to scalar with a plain associative `BinaryOp` — newly
/// legal in 2.0 because an empty result is representable.
pub fn reduce_scalar_binop<T>(
    s: &Scalar<T>,
    accum: Option<&BinaryOp<T, T, T>>,
    op: &BinaryOp<T, T, T>,
    a: &Matrix<T>,
) -> GrbResult
where
    T: ValueType,
{
    let ctx = s.context();
    let _op = graphblas_obs::span_ctx("op.reduce_scalar_binop", ctx.id());
    a.check_context(&ctx)?;
    let a_s = a.snapshot_csr(false)?;
    let op = op.clone();
    let accum = accum.cloned();
    s.apply_write(Box::new(move |slot: &mut Option<T>| {
        let t = a_s.reduce_all(
            &graphblas_exec::global_context(),
            |v| v.clone(),
            |x, y| op.apply(&x, &y),
            None,
        );
        *slot = fold_scalar(slot.take(), t, accum.as_ref());
        Ok(())
    }))
}

/// Vector form of [`reduce_scalar`].
pub fn reduce_scalar_v<T>(
    s: &Scalar<T>,
    accum: Option<&BinaryOp<T, T, T>>,
    monoid: &Monoid<T>,
    u: &Vector<T>,
) -> GrbResult
where
    T: ValueType,
{
    let ctx = s.context();
    let _op = graphblas_obs::span_ctx("op.reduce_scalar_v", ctx.id());
    u.check_context(&ctx)?;
    let u_s = u.snapshot_sparse()?;
    let monoid = monoid.clone();
    let accum = accum.cloned();
    let ctx_id = ctx.id();
    s.apply_write(Box::new(move |slot: &mut Option<T>| {
        let t = match registry::try_reduce_svec(&u_s, monoid.builtin(), ctx_id) {
            Some(t) => t,
            None => {
                registry::record_pick("reduce_v", ctx_id, false);
                u_s.reduce(
                    |v| v.clone(),
                    |x, y| monoid.apply(&x, &y),
                    monoid.terminal().map(|t| t as &dyn Fn(&T) -> bool),
                )
            }
        };
        *slot = fold_scalar(slot.take(), t, accum.as_ref());
        Ok(())
    }))
}

/// Vector form of [`reduce_scalar_binop`].
pub fn reduce_scalar_binop_v<T>(
    s: &Scalar<T>,
    accum: Option<&BinaryOp<T, T, T>>,
    op: &BinaryOp<T, T, T>,
    u: &Vector<T>,
) -> GrbResult
where
    T: ValueType,
{
    let ctx = s.context();
    let _op = graphblas_obs::span_ctx("op.reduce_scalar_binop_v", ctx.id());
    u.check_context(&ctx)?;
    let u_s = u.snapshot_sparse()?;
    let op = op.clone();
    let accum = accum.cloned();
    s.apply_write(Box::new(move |slot: &mut Option<T>| {
        let t = u_s.reduce(|v| v.clone(), |x, y| op.apply(&x, &y), None);
        *slot = fold_scalar(slot.take(), t, accum.as_ref());
        Ok(())
    }))
}

/// The GraphBLAS 1.X typed form: reduces to a plain value, returning the
/// monoid identity when the matrix stores nothing.
pub fn reduce_to_value<T>(monoid: &Monoid<T>, a: &Matrix<T>) -> GrbResult<T>
where
    T: ValueType,
{
    let a_s = a.snapshot_csr(false)?;
    let ctx = a.context();
    let t = match registry::try_reduce_csr(&ctx, &a_s, monoid.builtin()) {
        Some(t) => t,
        None => {
            registry::record_pick("reduce", ctx.id(), false);
            a_s.reduce_all(
                &ctx,
                |v| v.clone(),
                |x, y| monoid.apply(&x, &y),
                monoid.terminal().map(|t| t as &(dyn Fn(&T) -> bool + Sync)),
            )
        }
    };
    Ok(t.unwrap_or_else(|| monoid.identity().clone()))
}

/// Vector form of [`reduce_to_value`].
pub fn reduce_to_value_v<T>(monoid: &Monoid<T>, u: &Vector<T>) -> GrbResult<T>
where
    T: ValueType,
{
    let u_s = u.snapshot_sparse()?;
    let t = match registry::try_reduce_svec(&u_s, monoid.builtin(), u.context().id()) {
        Some(t) => t,
        None => {
            registry::record_pick("reduce_v", u.context().id(), false);
            u_s.reduce(
                |v| v.clone(),
                |x, y| monoid.apply(&x, &y),
                monoid.terminal().map(|t| t as &dyn Fn(&T) -> bool),
            )
        }
    };
    Ok(t.unwrap_or_else(|| monoid.identity().clone()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::no_mask_v;
    use crate::operations::testutil::{mat, vec, vec_tuples};

    #[test]
    fn row_reduction() {
        let a = mat((3, 3), &[(0, 0, 1i64), (0, 2, 2), (2, 1, 5)]);
        let w = Vector::<i64>::new(3).unwrap();
        reduce_to_vector(
            &w,
            no_mask_v(),
            None,
            &Monoid::plus(),
            &a,
            &Descriptor::default(),
        )
        .unwrap();
        assert_eq!(vec_tuples(&w), vec![(0, 3), (2, 5)]);
    }

    #[test]
    fn column_reduction_via_transpose() {
        let a = mat((3, 3), &[(0, 0, 1i64), (0, 2, 2), (2, 0, 5)]);
        let w = Vector::<i64>::new(3).unwrap();
        reduce_to_vector(
            &w,
            no_mask_v(),
            None,
            &Monoid::plus(),
            &a,
            &Descriptor::new().transpose_a(),
        )
        .unwrap();
        assert_eq!(vec_tuples(&w), vec![(0, 6), (2, 2)]);
    }

    #[test]
    fn scalar_reduction_empty_yields_empty_scalar() {
        let a = Matrix::<i64>::new(3, 3).unwrap();
        let s = Scalar::<i64>::new().unwrap();
        s.set_element(99).unwrap();
        reduce_scalar(&s, None, &Monoid::plus(), &a).unwrap();
        // No accumulator: the empty reduction clears the scalar (§VI —
        // "return an empty container", unlike 1.X's identity).
        assert_eq!(s.nvals().unwrap(), 0);
    }

    #[test]
    fn scalar_reduction_with_accum_keeps_old_on_empty() {
        let a = Matrix::<i64>::new(2, 2).unwrap();
        let s = Scalar::<i64>::new().unwrap();
        s.set_element(10).unwrap();
        reduce_scalar(&s, Some(&BinaryOp::plus()), &Monoid::plus(), &a).unwrap();
        assert_eq!(s.extract_element().unwrap(), Some(10));
        let b = mat((2, 2), &[(0, 0, 5i64)]);
        reduce_scalar(&s, Some(&BinaryOp::plus()), &Monoid::plus(), &b).unwrap();
        assert_eq!(s.extract_element().unwrap(), Some(15));
    }

    #[test]
    fn binop_reduction_to_scalar() {
        let u = vec(4, &[(0, 3i64), (2, 9), (3, 1)]);
        let s = Scalar::<i64>::new().unwrap();
        reduce_scalar_binop_v(&s, None, &BinaryOp::max(), &u).unwrap();
        assert_eq!(s.extract_element().unwrap(), Some(9));
        let empty = Vector::<i64>::new(4).unwrap();
        reduce_scalar_binop_v(&s, None, &BinaryOp::max(), &empty).unwrap();
        assert_eq!(s.nvals().unwrap(), 0);
    }

    #[test]
    fn typed_value_reduction_uses_identity_for_empty() {
        let a = Matrix::<i64>::new(2, 2).unwrap();
        assert_eq!(reduce_to_value(&Monoid::plus(), &a).unwrap(), 0);
        assert_eq!(
            reduce_to_value(&Monoid::<i64>::min(), &a).unwrap(),
            i64::MAX
        );
        let b = mat((2, 2), &[(0, 0, 5i64), (1, 1, -2)]);
        assert_eq!(reduce_to_value(&Monoid::plus(), &b).unwrap(), 3);
        assert_eq!(reduce_to_value(&Monoid::<i64>::min(), &b).unwrap(), -2);
        let u = vec(3, &[(1, 4i64)]);
        assert_eq!(reduce_to_value_v(&Monoid::plus(), &u).unwrap(), 4);
    }

    #[test]
    fn masked_reduce_to_vector() {
        let a = mat((2, 2), &[(0, 0, 1i64), (1, 0, 2), (1, 1, 3)]);
        let mask = vec(2, &[(1, true)]);
        let w = vec(2, &[(0, 100i64)]);
        reduce_to_vector(
            &w,
            Some(&mask),
            None,
            &Monoid::plus(),
            &a,
            &Descriptor::default(),
        )
        .unwrap();
        // Row 1 reduced inside mask; row 0's old value kept outside mask.
        assert_eq!(vec_tuples(&w), vec![(0, 100), (1, 5)]);
    }
}
