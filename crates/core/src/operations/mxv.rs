//! `GrB_mxv` / `GrB_vxm`: matrix-vector products over a semiring.
//!
//! `mxv` runs the row-parallel *pull* kernel; `vxm` the frontier-friendly
//! *push* kernel. The add monoid's terminal (annihilator) value, when
//! declared, short-circuits per-row accumulation in the pull kernel — the
//! `ablation_terminal` bench measures the payoff for LOR-style traversals.

use std::sync::Arc;

use graphblas_sparse::spmv as kernels;

use crate::descriptor::Descriptor;
use crate::error::{ApiError, GrbResult};
use crate::matrix::Matrix;
use crate::operations::{eff_shape, snapshot_operand, snapshot_vecmask};
use crate::ops::{BinaryOp, Semiring};
use crate::types::{MaskValue, ValueType};
use crate::vector::{VecStore, Vector};
use crate::write;

/// `w⟨m, r⟩ = w ⊙ (A ⊕.⊗ u)` (`desc.transpose_a` uses `Aᵀ`).
pub fn mxv<C, M, A, X>(
    w: &Vector<C>,
    mask: Option<&Vector<M>>,
    accum: Option<&BinaryOp<C, C, C>>,
    semiring: &Semiring<A, X, C>,
    a: &Matrix<A>,
    u: &Vector<X>,
    desc: &Descriptor,
) -> GrbResult
where
    C: ValueType,
    M: MaskValue,
    A: ValueType,
    X: ValueType,
{
    let ctx = w.context();
    a.check_context(&ctx)?;
    u.check_context(&ctx)?;
    if let Some(m) = mask {
        m.check_context(&ctx)?;
        if m.size() != w.size() {
            return Err(ApiError::DimensionMismatch.into());
        }
    }
    let (am, an) = eff_shape(a, desc.transpose_a);
    if an != u.size() || w.size() != am {
        return Err(ApiError::DimensionMismatch.into());
    }

    let a_s = snapshot_operand(a, &ctx, desc.transpose_a, false)?;
    let u_s = u.snapshot_sparse()?;
    let mask_s = snapshot_vecmask(mask, desc)?;
    let sr = semiring.clone();
    let accum = accum.cloned();
    let replace = desc.replace;
    let ctx2 = ctx.clone();

    w.apply_write(Box::new(move |st| {
        let terminal = sr
            .add()
            .terminal()
            .map(|t| t as &(dyn Fn(&C) -> bool + Sync));
        let t = kernels::spmv(
            &ctx2,
            &a_s,
            &u_s,
            |av: &A, xv: &X| sr.multiply(av, xv),
            |p: C, q: C| sr.combine(&p, &q),
            terminal,
        );
        if mask_s.is_none() && accum.is_none() {
            st.store = VecStore::Sparse(Arc::new(t));
            return Ok(());
        }
        st.ensure_sparse()?;
        let merged =
            write::merge_vector(st.sparse(), t, mask_s.as_ref(), accum.as_ref(), replace);
        st.store = VecStore::Sparse(Arc::new(merged));
        Ok(())
    }))
}

/// `wᵀ⟨mᵀ, r⟩ = wᵀ ⊙ (uᵀ ⊕.⊗ A)` (`desc.transpose_b` uses `Aᵀ`, turning
/// this into a pull product).
pub fn vxm<C, M, X, A>(
    w: &Vector<C>,
    mask: Option<&Vector<M>>,
    accum: Option<&BinaryOp<C, C, C>>,
    semiring: &Semiring<X, A, C>,
    u: &Vector<X>,
    a: &Matrix<A>,
    desc: &Descriptor,
) -> GrbResult
where
    C: ValueType,
    M: MaskValue,
    X: ValueType,
    A: ValueType,
{
    let ctx = w.context();
    a.check_context(&ctx)?;
    u.check_context(&ctx)?;
    if let Some(m) = mask {
        m.check_context(&ctx)?;
        if m.size() != w.size() {
            return Err(ApiError::DimensionMismatch.into());
        }
    }
    let (am, an) = eff_shape(a, desc.transpose_b);
    if am != u.size() || w.size() != an {
        return Err(ApiError::DimensionMismatch.into());
    }

    let a_s = snapshot_operand(a, &ctx, desc.transpose_b, false)?;
    let u_s = u.snapshot_sparse()?;
    let mask_s = snapshot_vecmask(mask, desc)?;
    let sr = semiring.clone();
    let accum = accum.cloned();
    let replace = desc.replace;
    let ctx2 = ctx.clone();

    w.apply_write(Box::new(move |st| {
        let t = kernels::vxm(
            &ctx2,
            &u_s,
            &a_s,
            |xv: &X, av: &A| sr.multiply(xv, av),
            |p: C, q: C| sr.combine(&p, &q),
        );
        if mask_s.is_none() && accum.is_none() {
            st.store = VecStore::Sparse(Arc::new(t));
            return Ok(());
        }
        st.ensure_sparse()?;
        let merged =
            write::merge_vector(st.sparse(), t, mask_s.as_ref(), accum.as_ref(), replace);
        st.store = VecStore::Sparse(Arc::new(merged));
        Ok(())
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operations::testutil::{mat, vec, vec_tuples};
    use crate::no_mask_v;

    fn graph() -> Matrix<i64> {
        // [[1, _, 2],
        //  [_, 3, _],
        //  [4, _, 5]]
        mat(
            (3, 3),
            &[(0, 0, 1), (0, 2, 2), (1, 1, 3), (2, 0, 4), (2, 2, 5)],
        )
    }

    #[test]
    fn mxv_plus_times() {
        let a = graph();
        let u = vec(3, &[(0, 1i64), (1, 1), (2, 1)]);
        let w = Vector::<i64>::new(3).unwrap();
        mxv(
            &w,
            no_mask_v(),
            None,
            &Semiring::plus_times(),
            &a,
            &u,
            &Descriptor::default(),
        )
        .unwrap();
        assert_eq!(vec_tuples(&w), vec![(0, 3), (1, 3), (2, 9)]);
    }

    #[test]
    fn vxm_equals_mxv_on_transpose() {
        let a = graph();
        let u = vec(3, &[(0, 2i64), (2, 3)]);
        let w1 = Vector::<i64>::new(3).unwrap();
        let w2 = Vector::<i64>::new(3).unwrap();
        vxm(
            &w1,
            no_mask_v(),
            None,
            &Semiring::plus_times(),
            &u,
            &a,
            &Descriptor::default(),
        )
        .unwrap();
        mxv(
            &w2,
            no_mask_v(),
            None,
            &Semiring::plus_times(),
            &a,
            &u,
            &Descriptor::new().transpose_a(),
        )
        .unwrap();
        assert_eq!(vec_tuples(&w1), vec_tuples(&w2));
    }

    #[test]
    fn masked_complement_frontier_pattern() {
        // The BFS idiom: expand frontier, masked by unvisited vertices.
        let a = mat((3, 3), &[(0, 1, true), (1, 2, true), (2, 0, true)]);
        let visited = vec(3, &[(0, true)]);
        let frontier = vec(3, &[(0, true)]);
        let next = Vector::<bool>::new(3).unwrap();
        vxm(
            &next,
            Some(&visited),
            None,
            &Semiring::lor_land(),
            &frontier,
            &a,
            &Descriptor::new().complement_mask().replace(),
        )
        .unwrap();
        // 0 reaches 1; 1 is unvisited so it survives the complement mask.
        assert_eq!(vec_tuples(&next), vec![(1, true)]);
    }

    #[test]
    fn min_plus_relaxation() {
        let a = mat((3, 3), &[(0, 1, 7i64), (1, 2, 2)]);
        let dist = vec(3, &[(0, 0i64)]);
        let w = Vector::<i64>::new(3).unwrap();
        vxm(
            &w,
            no_mask_v(),
            None,
            &Semiring::min_plus(),
            &dist,
            &a,
            &Descriptor::default(),
        )
        .unwrap();
        assert_eq!(vec_tuples(&w), vec![(1, 7)]);
    }

    #[test]
    fn dimension_checks() {
        let a = Matrix::<i64>::new(3, 3).unwrap();
        let u = Vector::<i64>::new(2).unwrap();
        let w = Vector::<i64>::new(3).unwrap();
        assert!(mxv(
            &w,
            no_mask_v(),
            None,
            &Semiring::plus_times(),
            &a,
            &u,
            &Descriptor::default()
        )
        .is_err());
    }

    #[test]
    fn accum_into_existing_vector() {
        let a = graph();
        let u = vec(3, &[(1, 10i64)]);
        let w = vec(3, &[(1, 5i64), (2, 7)]);
        mxv(
            &w,
            no_mask_v(),
            Some(&BinaryOp::plus()),
            &Semiring::plus_times(),
            &a,
            &u,
            &Descriptor::default(),
        )
        .unwrap();
        // A·u = [_, 30, _]; accum → w = [_, 35, 7].
        assert_eq!(vec_tuples(&w), vec![(1, 35), (2, 7)]);
    }
}
