//! `GrB_mxv` / `GrB_vxm`: matrix-vector products over a semiring, with
//! direction-optimizing dispatch.
//!
//! Both entry points choose between the frontier-friendly *push* kernel
//! (scatter rows of the input's nonzeros) and the row-parallel *pull*
//! kernel (dot products against the whole frontier) with a Beamer-style
//! density heuristic: sparse frontiers push, dense frontiers pull. The
//! kernel that needs the matrix in the "other" orientation runs on the
//! memoized transpose (`MatrixState::transpose_cache`), so iterative
//! algorithms pay for `Aᵀ` at most once per matrix version — the §III
//! completion latitude CombBLAS 2.0 identifies as the biggest lever for
//! frontier algorithms. The add monoid's terminal (annihilator) value,
//! when declared, short-circuits per-row accumulation in the pull kernel —
//! the `ablation_terminal` bench measures the payoff for LOR traversals.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

use graphblas_exec::workspace::{self, BitSet};
use graphblas_sparse::spmv as kernels;
use graphblas_sparse::{BitmapVec, SparseVec};

use crate::descriptor::Descriptor;
use crate::error::{ApiError, GrbResult};
use crate::matrix::Matrix;
use crate::operations::{eff_shape, note_dag_fusion, snapshot_operand, snapshot_vecmask};
use crate::ops::{registry, BinaryOp, Semiring};
use crate::pending::{fuse_maps, NodeKind};
use crate::types::{MaskValue, ValueType};
use crate::vector::{Frontier, VecStore, Vector};
use crate::write::{self, VecMask};

/// Which matrix-vector kernel a product dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Scatter the input's nonzeros through their matrix rows (good for
    /// sparse frontiers).
    Push,
    /// Per-output-row dot products against the input (good for dense
    /// frontiers; supports the add monoid's terminal early exit).
    Pull,
}

// 0 = automatic heuristic, 1 = forced push, 2 = forced pull.
static FORCE_DIRECTION: AtomicU8 = AtomicU8::new(0);

/// Overrides the push/pull heuristic for every subsequent `mxv`/`vxm`
/// (`None` restores automatic selection). Both directions compute the
/// same result — this is the ablation/testing knob for exercising a
/// specific kernel on a given graph.
pub fn force_direction(d: Option<Direction>) {
    let v = match d {
        None => 0,
        Some(Direction::Push) => 1,
        Some(Direction::Pull) => 2,
    };
    FORCE_DIRECTION.store(v, Ordering::SeqCst);
}

/// The Beamer density threshold denominator: the heuristic pulls once
/// `frontier_nnz * PULL_THRESHOLD_DEN >= frontier_len`, i.e. once the
/// frontier holds at least `1 / PULL_THRESHOLD_DEN` of the vertices.
/// Decision events carry this value so an explain log is self-contained.
pub const PULL_THRESHOLD_DEN: u64 = 8;

/// Beamer-style direction choice: pull once the frontier holds at least
/// 1/[`PULL_THRESHOLD_DEN`] of the vertices, push below that. An empty
/// frontier takes `no_transpose` — whichever direction runs on the
/// matrix's stored orientation — so degenerate calls never build `Aᵀ`.
fn choose_direction(
    op: &'static str,
    ctx_id: u64,
    frontier_nnz: usize,
    frontier_len: usize,
    no_transpose: Direction,
) -> Direction {
    let d = match FORCE_DIRECTION.load(Ordering::SeqCst) {
        1 => Direction::Push,
        2 => Direction::Pull,
        _ if frontier_nnz == 0 => no_transpose,
        _ => {
            if frontier_nnz as u64 * PULL_THRESHOLD_DEN >= frontier_len as u64 {
                Direction::Pull
            } else {
                Direction::Push
            }
        }
    };
    if graphblas_obs::enabled() {
        graphblas_obs::counters::record_direction_pick(d == Direction::Pull);
        graphblas_obs::events::decision_direction(
            op,
            ctx_id,
            d == Direction::Pull,
            frontier_nnz as u64,
            frontier_len as u64,
            PULL_THRESHOLD_DEN,
        );
    }
    d
}

/// The Table III bitmap density window: results at least 1/4 occupied
/// but not full are stored bitmap; everything else stays sparse. The
/// lower bound keeps truly sparse results in the index-list format, the
/// upper bound preserves the pull kernel's dense-frontier fast path
/// (which needs a plain value array).
pub const BITMAP_THRESHOLD_DEN: u64 = 4;

/// Picks the Table III store for an `mxv`/`vxm` result by density and
/// records the decision (counter + provenance event) when telemetry is on.
fn store_result<C: ValueType>(op: &'static str, ctx_id: u64, t: SparseVec<C>) -> VecStore<C> {
    let (nnz, len) = (t.nnz(), t.len());
    let bitmap = nnz as u64 * BITMAP_THRESHOLD_DEN >= len as u64 && nnz < len;
    if graphblas_obs::enabled() {
        graphblas_obs::counters::record_format_pick(bitmap);
        graphblas_obs::events::decision_format(op, ctx_id, bitmap, nnz as u64, len as u64);
    }
    if bitmap {
        VecStore::Bitmap(Arc::new(BitmapVec::from_svec(&t)))
    } else {
        VecStore::Sparse(Arc::new(t))
    }
}

/// Normalizes a bitmap frontier to sparse when the chosen kernel cannot
/// consume it natively (the push kernel iterates an index list), charging
/// the conversion to the format counters.
fn frontier_for<X: ValueType>(
    op: &'static str,
    ctx_id: u64,
    dir: Direction,
    f: Frontier<X>,
) -> Frontier<X> {
    match (dir, f) {
        (Direction::Push, Frontier::Bitmap(b)) => {
            if graphblas_obs::enabled() {
                graphblas_obs::counters::record_format_conversion();
            }
            if graphblas_obs::events::on() {
                graphblas_obs::events::decision_convert_sparse(
                    op,
                    ctx_id,
                    "bitmap",
                    b.nnz() as u64,
                );
            }
            Frontier::Sparse(Arc::new(b.to_svec()))
        }
        (_, f) => f,
    }
}

/// Builds the push kernel's masked-scatter column filter: a dense bitset
/// of the mask's truthy positions, checked out of the workspace cache,
/// consulted as `truthy != complement`. Prefiltering is a pure
/// optimization — `write::merge_vector` applies the same mask again and
/// the intersection is idempotent — but it keeps columns the merge would
/// discard out of the scatter accumulators entirely.
fn mask_bits(m: &VecMask) -> workspace::Checkout<BitSet> {
    let mut bits = workspace::checkout::<BitSet>(m.mask.len());
    for (j, &truthy) in m.mask.iter() {
        if truthy {
            bits.insert(j);
        }
    }
    bits
}

/// `w⟨m, r⟩ = w ⊙ (A ⊕.⊗ u)` (`desc.transpose_a` uses `Aᵀ`).
pub fn mxv<C, M, A, X>(
    w: &Vector<C>,
    mask: Option<&Vector<M>>,
    accum: Option<&BinaryOp<C, C, C>>,
    semiring: &Semiring<A, X, C>,
    a: &Matrix<A>,
    u: &Vector<X>,
    desc: &Descriptor,
) -> GrbResult
where
    C: ValueType,
    M: MaskValue,
    A: ValueType,
    X: ValueType,
{
    let ctx = w.context();
    let _op = graphblas_obs::span_ctx("op.mxv", ctx.id());
    a.check_context(&ctx)?;
    u.check_context(&ctx)?;
    if let Some(m) = mask {
        m.check_context(&ctx)?;
        if m.size() != w.size() {
            return Err(ApiError::DimensionMismatch.into());
        }
    }
    let (am, an) = eff_shape(a, desc.transpose_a);
    if an != u.size() || w.size() != am {
        return Err(ApiError::DimensionMismatch.into());
    }

    // Eagerly captures the input's base store plus its pending map chain
    // (sequence-point semantics: later writes to `u` cannot leak in) —
    // the maps become the node's fused input side instead of forcing a
    // drain of `u`.
    let (u_f, pre_maps) = u.snapshot_frontier_fused()?;
    // Pull runs on the descriptor's orientation; push runs on the other
    // one (served by the memoized transpose when it must be computed).
    let natural = if desc.transpose_a {
        Direction::Push
    } else {
        Direction::Pull
    };
    let pick = graphblas_obs::timeline::phase("mxv.pick");
    let dir = choose_direction("mxv", ctx.id(), u_f.nnz(), u_f.len(), natural);
    let u_f = frontier_for("mxv", ctx.id(), dir, u_f);
    let a_s = match dir {
        Direction::Pull => snapshot_operand(a, &ctx, desc.transpose_a, false)?,
        Direction::Push => snapshot_operand(a, &ctx, !desc.transpose_a, false)?,
    };
    drop(pick);
    let mask_s = snapshot_vecmask(mask, desc)?;
    let sr = semiring.clone();
    let accum = accum.cloned();
    let replace = desc.replace;
    let ctx2 = ctx.clone();

    w.apply_node(
        NodeKind::MxV,
        Box::new(move |st, post| {
            let nnz_in = u_f.nnz();
            // The input's pending maps and (when unmasked/unaccumulated)
            // the trailing output maps fold into the kernel's numeric
            // phase; under a mask/accum the output maps instead run as
            // one pass over the merged store below.
            let pre_hook = |j: usize, v: &X| fuse_maps(&pre_maps, &[j], v);
            let pre_ref: Option<registry::FusedHook<'_, X>> =
                (!pre_maps.is_empty()).then_some(&pre_hook as _);
            let fuse_post = mask_s.is_none() && accum.is_none();
            let post_hook = |i: usize, v: &C| fuse_maps(&post, &[i], v);
            let post_ref: Option<registry::FusedHook<'_, C>> =
                (fuse_post && !post.is_empty()).then_some(&post_hook as _);
            let bits = match (&mask_s, dir) {
                (Some(m), Direction::Push) => Some((mask_bits(m), m.complement)),
                _ => None,
            };
            let allowed = bits.as_ref().map(|(b, comp)| {
                let (b, comp) = (&**b, *comp);
                move |j: usize| b.contains(j) != comp
            });
            let allowed_ref = allowed
                .as_ref()
                .map(|f| f as &(dyn Fn(usize) -> bool + Sync));
            // Registered builtin semirings take the monomorphized kernel
            // (every registered multiply is commutative, so both
            // directions and both operand orders share one
            // instantiation); everything else falls back to the generic
            // dyn-operator path below.
            let add_tag = sr.add().builtin();
            let mul_tag = sr.mul().builtin();
            let t = match (dir, &u_f) {
                (Direction::Pull, Frontier::Sparse(u_s)) => {
                    registry::try_spmv_fused(&ctx2, &a_s, u_s, add_tag, mul_tag, pre_ref, post_ref)
                }
                (Direction::Pull, Frontier::Bitmap(u_b)) => registry::try_spmv_bitmap_fused(
                    &ctx2, &a_s, u_b, add_tag, mul_tag, pre_ref, post_ref,
                ),
                (Direction::Push, Frontier::Sparse(u_s)) => registry::try_vxm_fused(
                    &ctx2,
                    u_s,
                    &a_s,
                    add_tag,
                    mul_tag,
                    pre_ref,
                    post_ref,
                    allowed_ref,
                ),
                (Direction::Push, Frontier::Bitmap(_)) => {
                    unreachable!("push frontiers are normalized to sparse")
                }
            };
            let t = match t {
                Some(t) => t,
                None => {
                    registry::record_pick("mxv", ctx2.id(), false);
                    let mul = |av: &A, xv: &X| sr.multiply(av, xv);
                    let add = |p: C, q: C| sr.combine(&p, &q);
                    match (dir, &u_f) {
                        (Direction::Pull, f) => {
                            let terminal = sr
                                .add()
                                .terminal()
                                .map(|t| t as &(dyn Fn(&C) -> bool + Sync));
                            match f {
                                Frontier::Sparse(u_s) => kernels::spmv_fused(
                                    &ctx2, &a_s, u_s, mul, add, terminal, pre_ref, post_ref,
                                ),
                                Frontier::Bitmap(u_b) => kernels::spmv_bitmap_fused(
                                    &ctx2, &a_s, u_b, mul, add, terminal, pre_ref, post_ref,
                                ),
                            }
                        }
                        // a_s here holds the transposed orientation, so
                        // scattering u's nonzeros through its rows
                        // computes the same product (the multiply keeps
                        // its matrix-first argument order).
                        (Direction::Push, Frontier::Sparse(u_s)) => kernels::vxm_fused(
                            &ctx2,
                            u_s,
                            &a_s,
                            |xv: &X, av: &A| sr.multiply(av, xv),
                            add,
                            pre_ref,
                            post_ref,
                            allowed_ref,
                        ),
                        (Direction::Push, Frontier::Bitmap(_)) => {
                            unreachable!("push frontiers are normalized to sparse")
                        }
                    }
                }
            };
            note_dag_fusion(
                "mxv",
                ctx2.id(),
                NodeKind::MxV,
                pre_maps.len(),
                post.len(),
                nnz_in,
            );
            if fuse_post {
                st.store = store_result("mxv", ctx2.id(), t);
                return Ok(());
            }
            st.ensure_sparse()?;
            let merged =
                write::merge_vector(st.sparse(), t, mask_s.as_ref(), accum.as_ref(), replace);
            st.store = store_result("mxv", ctx2.id(), merged);
            st.apply_post_maps(&post)?;
            Ok(())
        }),
    )
}

/// `wᵀ⟨mᵀ, r⟩ = wᵀ ⊙ (uᵀ ⊕.⊗ A)` (`desc.transpose_b` uses `Aᵀ`, turning
/// this into a pull product).
pub fn vxm<C, M, X, A>(
    w: &Vector<C>,
    mask: Option<&Vector<M>>,
    accum: Option<&BinaryOp<C, C, C>>,
    semiring: &Semiring<X, A, C>,
    u: &Vector<X>,
    a: &Matrix<A>,
    desc: &Descriptor,
) -> GrbResult
where
    C: ValueType,
    M: MaskValue,
    X: ValueType,
    A: ValueType,
{
    let ctx = w.context();
    let _op = graphblas_obs::span_ctx("op.vxm", ctx.id());
    a.check_context(&ctx)?;
    u.check_context(&ctx)?;
    if let Some(m) = mask {
        m.check_context(&ctx)?;
        if m.size() != w.size() {
            return Err(ApiError::DimensionMismatch.into());
        }
    }
    let (am, an) = eff_shape(a, desc.transpose_b);
    if am != u.size() || w.size() != an {
        return Err(ApiError::DimensionMismatch.into());
    }

    // Same eager input capture as `mxv`: base store plus pending maps,
    // which ride into the node as its fused input side.
    let (u_f, pre_maps) = u.snapshot_frontier_fused()?;
    // Push runs on the descriptor's orientation; pull runs on the other
    // one (served by the memoized transpose when it must be computed).
    let natural = if desc.transpose_b {
        Direction::Pull
    } else {
        Direction::Push
    };
    let pick = graphblas_obs::timeline::phase("mxv.pick");
    let dir = choose_direction("vxm", ctx.id(), u_f.nnz(), u_f.len(), natural);
    let u_f = frontier_for("vxm", ctx.id(), dir, u_f);
    let a_s = match dir {
        Direction::Push => snapshot_operand(a, &ctx, desc.transpose_b, false)?,
        Direction::Pull => snapshot_operand(a, &ctx, !desc.transpose_b, false)?,
    };
    drop(pick);
    let mask_s = snapshot_vecmask(mask, desc)?;
    let sr = semiring.clone();
    let accum = accum.cloned();
    let replace = desc.replace;
    let ctx2 = ctx.clone();

    w.apply_node(
        NodeKind::VxM,
        Box::new(move |st, post| {
            let nnz_in = u_f.nnz();
            let pre_hook = |j: usize, v: &X| fuse_maps(&pre_maps, &[j], v);
            let pre_ref: Option<registry::FusedHook<'_, X>> =
                (!pre_maps.is_empty()).then_some(&pre_hook as _);
            let fuse_post = mask_s.is_none() && accum.is_none();
            let post_hook = |i: usize, v: &C| fuse_maps(&post, &[i], v);
            let post_ref: Option<registry::FusedHook<'_, C>> =
                (fuse_post && !post.is_empty()).then_some(&post_hook as _);
            // The masked push path prefilters scatter columns against the
            // mask's truthy set (the satellite `vxm_masked` registry row) —
            // `merge_vector` still applies the full mask semantics below.
            let bits = match (&mask_s, dir) {
                (Some(m), Direction::Push) => Some((mask_bits(m), m.complement)),
                _ => None,
            };
            let allowed = bits.as_ref().map(|(b, comp)| {
                let (b, comp) = (&**b, *comp);
                move |j: usize| b.contains(j) != comp
            });
            let allowed_ref = allowed
                .as_ref()
                .map(|f| f as &(dyn Fn(usize) -> bool + Sync));
            // Same registry-first shape as `mxv`; commutativity of every
            // registered multiply makes the argument-order difference
            // moot.
            let add_tag = sr.add().builtin();
            let mul_tag = sr.mul().builtin();
            let t = match (dir, &u_f) {
                (Direction::Push, Frontier::Sparse(u_s)) => registry::try_vxm_fused(
                    &ctx2,
                    u_s,
                    &a_s,
                    add_tag,
                    mul_tag,
                    pre_ref,
                    post_ref,
                    allowed_ref,
                ),
                (Direction::Push, Frontier::Bitmap(_)) => {
                    unreachable!("push frontiers are normalized to sparse")
                }
                (Direction::Pull, Frontier::Sparse(u_s)) => {
                    registry::try_spmv_fused(&ctx2, &a_s, u_s, add_tag, mul_tag, pre_ref, post_ref)
                }
                (Direction::Pull, Frontier::Bitmap(u_b)) => registry::try_spmv_bitmap_fused(
                    &ctx2, &a_s, u_b, add_tag, mul_tag, pre_ref, post_ref,
                ),
            };
            let t = match t {
                Some(t) => t,
                None => {
                    registry::record_pick("vxm", ctx2.id(), false);
                    let add = |p: C, q: C| sr.combine(&p, &q);
                    match (dir, &u_f) {
                        (Direction::Push, Frontier::Sparse(u_s)) => kernels::vxm_fused(
                            &ctx2,
                            u_s,
                            &a_s,
                            |xv: &X, av: &A| sr.multiply(xv, av),
                            add,
                            pre_ref,
                            post_ref,
                            allowed_ref,
                        ),
                        (Direction::Push, Frontier::Bitmap(_)) => {
                            unreachable!("push frontiers are normalized to sparse")
                        }
                        // a_s here holds the transposed orientation, so
                        // row dot products against u compute the same
                        // product (the multiply keeps its vector-first
                        // argument order).
                        (Direction::Pull, f) => {
                            let terminal = sr
                                .add()
                                .terminal()
                                .map(|t| t as &(dyn Fn(&C) -> bool + Sync));
                            let mul = |av: &A, xv: &X| sr.multiply(xv, av);
                            match f {
                                Frontier::Sparse(u_s) => kernels::spmv_fused(
                                    &ctx2, &a_s, u_s, mul, add, terminal, pre_ref, post_ref,
                                ),
                                Frontier::Bitmap(u_b) => kernels::spmv_bitmap_fused(
                                    &ctx2, &a_s, u_b, mul, add, terminal, pre_ref, post_ref,
                                ),
                            }
                        }
                    }
                }
            };
            note_dag_fusion(
                "vxm",
                ctx2.id(),
                NodeKind::VxM,
                pre_maps.len(),
                post.len(),
                nnz_in,
            );
            if fuse_post {
                st.store = store_result("vxm", ctx2.id(), t);
                return Ok(());
            }
            st.ensure_sparse()?;
            let merged =
                write::merge_vector(st.sparse(), t, mask_s.as_ref(), accum.as_ref(), replace);
            st.store = store_result("vxm", ctx2.id(), merged);
            st.apply_post_maps(&post)?;
            Ok(())
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::no_mask_v;
    use crate::operations::testutil::{mat, vec, vec_tuples};

    /// Serializes tests that flip the process-global direction override
    /// or read obs counter deltas.
    fn serialize() -> std::sync::MutexGuard<'static, ()> {
        static M: std::sync::Mutex<()> = std::sync::Mutex::new(());
        M.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn graph() -> Matrix<i64> {
        // [[1, _, 2],
        //  [_, 3, _],
        //  [4, _, 5]]
        mat(
            (3, 3),
            &[(0, 0, 1), (0, 2, 2), (1, 1, 3), (2, 0, 4), (2, 2, 5)],
        )
    }

    #[test]
    fn mxv_plus_times() {
        let a = graph();
        let u = vec(3, &[(0, 1i64), (1, 1), (2, 1)]);
        let w = Vector::<i64>::new(3).unwrap();
        mxv(
            &w,
            no_mask_v(),
            None,
            &Semiring::plus_times(),
            &a,
            &u,
            &Descriptor::default(),
        )
        .unwrap();
        assert_eq!(vec_tuples(&w), vec![(0, 3), (1, 3), (2, 9)]);
    }

    #[test]
    fn vxm_equals_mxv_on_transpose() {
        let a = graph();
        let u = vec(3, &[(0, 2i64), (2, 3)]);
        let w1 = Vector::<i64>::new(3).unwrap();
        let w2 = Vector::<i64>::new(3).unwrap();
        vxm(
            &w1,
            no_mask_v(),
            None,
            &Semiring::plus_times(),
            &u,
            &a,
            &Descriptor::default(),
        )
        .unwrap();
        mxv(
            &w2,
            no_mask_v(),
            None,
            &Semiring::plus_times(),
            &a,
            &u,
            &Descriptor::new().transpose_a(),
        )
        .unwrap();
        assert_eq!(vec_tuples(&w1), vec_tuples(&w2));
    }

    #[test]
    fn masked_complement_frontier_pattern() {
        // The BFS idiom: expand frontier, masked by unvisited vertices.
        let a = mat((3, 3), &[(0, 1, true), (1, 2, true), (2, 0, true)]);
        let visited = vec(3, &[(0, true)]);
        let frontier = vec(3, &[(0, true)]);
        let next = Vector::<bool>::new(3).unwrap();
        vxm(
            &next,
            Some(&visited),
            None,
            &Semiring::lor_land(),
            &frontier,
            &a,
            &Descriptor::new().complement_mask().replace(),
        )
        .unwrap();
        // 0 reaches 1; 1 is unvisited so it survives the complement mask.
        assert_eq!(vec_tuples(&next), vec![(1, true)]);
    }

    #[test]
    fn min_plus_relaxation() {
        let a = mat((3, 3), &[(0, 1, 7i64), (1, 2, 2)]);
        let dist = vec(3, &[(0, 0i64)]);
        let w = Vector::<i64>::new(3).unwrap();
        vxm(
            &w,
            no_mask_v(),
            None,
            &Semiring::min_plus(),
            &dist,
            &a,
            &Descriptor::default(),
        )
        .unwrap();
        assert_eq!(vec_tuples(&w), vec![(1, 7)]);
    }

    #[test]
    fn dimension_checks() {
        let a = Matrix::<i64>::new(3, 3).unwrap();
        let u = Vector::<i64>::new(2).unwrap();
        let w = Vector::<i64>::new(3).unwrap();
        assert!(mxv(
            &w,
            no_mask_v(),
            None,
            &Semiring::plus_times(),
            &a,
            &u,
            &Descriptor::default()
        )
        .is_err());
    }

    #[test]
    fn forced_directions_agree_and_are_counted() {
        let _g = serialize();
        // Moderately sized pseudo-random graph; both kernels must produce
        // identical results, and the direction counters must show both
        // paths actually ran.
        let n = 60usize;
        let tuples: Vec<(usize, usize, i64)> = (0..n * 6)
            .map(|k| (((k * 7 + 3) % n, (k * 13 + 5) % n), (k % 9 + 1) as i64))
            .collect::<std::collections::BTreeMap<(usize, usize), i64>>()
            .iter()
            .map(|(&(i, j), &v)| (i, j, v))
            .collect();
        let a = mat((n, n), &tuples);
        let u = vec(
            n,
            &(0..n)
                .filter(|i| i % 3 == 0)
                .map(|i| (i, (i % 5 + 1) as i64))
                .collect::<Vec<_>>(),
        );
        let before = graphblas_obs::snapshot().direction;
        graphblas_obs::set_enabled(true);
        let run_vxm = |dir: Option<Direction>| {
            force_direction(dir);
            let w = Vector::<i64>::new(n).unwrap();
            vxm(
                &w,
                no_mask_v(),
                None,
                &Semiring::plus_times(),
                &u,
                &a,
                &Descriptor::default(),
            )
            .unwrap();
            vec_tuples(&w)
        };
        let pushed = run_vxm(Some(Direction::Push));
        let pulled = run_vxm(Some(Direction::Pull));
        assert_eq!(pushed, pulled);
        let run_mxv = |dir: Option<Direction>| {
            force_direction(dir);
            let w = Vector::<i64>::new(n).unwrap();
            mxv(
                &w,
                no_mask_v(),
                None,
                &Semiring::plus_times(),
                &a,
                &u,
                &Descriptor::default(),
            )
            .unwrap();
            vec_tuples(&w)
        };
        let m_pushed = run_mxv(Some(Direction::Push));
        let m_pulled = run_mxv(Some(Direction::Pull));
        assert_eq!(m_pushed, m_pulled);
        // Same product through the transpose descriptor, both directions.
        force_direction(Some(Direction::Pull));
        let wt = Vector::<i64>::new(n).unwrap();
        mxv(
            &wt,
            no_mask_v(),
            None,
            &Semiring::plus_times(),
            &a,
            &u,
            &Descriptor::new().transpose_a(),
        )
        .unwrap();
        force_direction(Some(Direction::Push));
        let wt2 = Vector::<i64>::new(n).unwrap();
        mxv(
            &wt2,
            no_mask_v(),
            None,
            &Semiring::plus_times(),
            &a,
            &u,
            &Descriptor::new().transpose_a(),
        )
        .unwrap();
        assert_eq!(vec_tuples(&wt), vec_tuples(&wt2));
        force_direction(None);
        graphblas_obs::set_enabled(false);
        let after = graphblas_obs::snapshot().direction;
        assert!(after.push_picks > before.push_picks, "push path never ran");
        assert!(after.pull_picks > before.pull_picks, "pull path never ran");
    }

    #[test]
    fn repeated_pull_vxm_hits_transpose_cache() {
        let _g = serialize();
        let a = graph();
        let u = vec(3, &[(0, 1i64), (1, 1), (2, 1)]);
        let before = graphblas_obs::snapshot().direction;
        graphblas_obs::set_enabled(true);
        force_direction(Some(Direction::Pull));
        for _ in 0..3 {
            let w = Vector::<i64>::new(3).unwrap();
            vxm(
                &w,
                no_mask_v(),
                None,
                &Semiring::plus_times(),
                &u,
                &a,
                &Descriptor::default(),
            )
            .unwrap();
        }
        force_direction(None);
        graphblas_obs::set_enabled(false);
        let after = graphblas_obs::snapshot().direction;
        // First pull builds Aᵀ; the two repeats reuse the memoized copy.
        assert!(after.transpose_builds > before.transpose_builds);
        assert!(
            after.transpose_hits >= before.transpose_hits + 2,
            "memoized transpose was not reused"
        );
    }

    #[test]
    fn mid_density_result_stored_bitmap_and_consumed_natively() {
        let _g = serialize();
        // Rows 0..4 of an 8-vertex graph reach the frontier: the result
        // holds 4/8 of the vertices — inside the bitmap window (≥1/4,
        // not full).
        let n = 8;
        let a = mat((n, n), &(0..4).map(|i| (i, 0, 1i64)).collect::<Vec<_>>());
        let u = vec(n, &[(0, 2i64)]);
        let w = Vector::<i64>::new(n).unwrap();
        mxv(
            &w,
            no_mask_v(),
            None,
            &Semiring::plus_times(),
            &a,
            &u,
            &Descriptor::default(),
        )
        .unwrap();
        assert_eq!(w.stats().format, "bitmap");
        assert_eq!(w.nvals().unwrap(), 4);
        // The bitmap store feeds the next product natively (pull path)
        // and produces the same values the canonical sparse form holds.
        let w2 = Vector::<i64>::new(n).unwrap();
        let eye = mat((n, n), &(0..n).map(|i| (i, i, 1i64)).collect::<Vec<_>>());
        mxv(
            &w2,
            no_mask_v(),
            None,
            &Semiring::plus_times(),
            &eye,
            &w,
            &Descriptor::default(),
        )
        .unwrap();
        assert_eq!(vec_tuples(&w2), vec_tuples(&w));
        // A fully dense result (nnz == len) must stay sparse so the
        // dense-frontier fast path keeps working.
        let dense_u = vec(n, &(0..n).map(|i| (i, 1i64)).collect::<Vec<_>>());
        let full = mat(
            (n, n),
            &(0..n).map(|i| (i, (i + 1) % n, 1i64)).collect::<Vec<_>>(),
        );
        let wd = Vector::<i64>::new(n).unwrap();
        mxv(
            &wd,
            no_mask_v(),
            None,
            &Semiring::plus_times(),
            &full,
            &dense_u,
            &Descriptor::default(),
        )
        .unwrap();
        assert_eq!(wd.stats().format, "sparse");
    }

    #[test]
    fn accum_into_existing_vector() {
        let a = graph();
        let u = vec(3, &[(1, 10i64)]);
        let w = vec(3, &[(1, 5i64), (2, 7)]);
        mxv(
            &w,
            no_mask_v(),
            Some(&BinaryOp::plus()),
            &Semiring::plus_times(),
            &a,
            &u,
            &Descriptor::default(),
        )
        .unwrap();
        // A·u = [_, 30, _]; accum → w = [_, 35, 7].
        assert_eq!(vec_tuples(&w), vec![(1, 35), (2, 7)]);
    }
}
