//! Operation descriptors (`GrB_Descriptor`): per-call flags controlling
//! output write mode (replace/merge), mask interpretation (structure,
//! complement), and input transposition.

/// Descriptor flags. `Default` is the all-off descriptor (`GrB_NULL` in C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Descriptor {
    /// `GrB_OUTP = GrB_REPLACE`: clear the output outside the mask instead
    /// of merging with its previous contents.
    pub replace: bool,
    /// `GrB_MASK = GrB_COMP`: use the complement of the mask.
    pub mask_complement: bool,
    /// `GrB_MASK = GrB_STRUCTURE`: only the mask's structure (element
    /// presence) matters; stored values are not tested for truthiness.
    pub mask_structure: bool,
    /// `GrB_INP0 = GrB_TRAN`: transpose the first matrix input.
    pub transpose_a: bool,
    /// `GrB_INP1 = GrB_TRAN`: transpose the second matrix input.
    pub transpose_b: bool,
}

impl Descriptor {
    /// The default (no flags) descriptor.
    pub fn new() -> Self {
        Descriptor::default()
    }

    /// Sets `GrB_OUTP = GrB_REPLACE`.
    pub fn replace(mut self) -> Self {
        self.replace = true;
        self
    }

    /// Sets `GrB_MASK = GrB_COMP`.
    pub fn complement_mask(mut self) -> Self {
        self.mask_complement = true;
        self
    }

    /// Sets `GrB_MASK = GrB_STRUCTURE`.
    pub fn structure_mask(mut self) -> Self {
        self.mask_structure = true;
        self
    }

    /// Sets `GrB_INP0 = GrB_TRAN`.
    pub fn transpose_a(mut self) -> Self {
        self.transpose_a = true;
        self
    }

    /// Sets `GrB_INP1 = GrB_TRAN`.
    pub fn transpose_b(mut self) -> Self {
        self.transpose_b = true;
        self
    }
}

/// The predefined descriptor constants of the C specification
/// (`GrB_DESC_*`). Naming: `R` = replace, `C` = mask complement, `S` =
/// structural mask, `T0`/`T1` = transpose first/second input.
impl Descriptor {
    const fn build(replace: bool, comp: bool, structure: bool, t0: bool, t1: bool) -> Self {
        Descriptor {
            replace,
            mask_complement: comp,
            mask_structure: structure,
            transpose_a: t0,
            transpose_b: t1,
        }
    }

    /// `GrB_DESC_T1`.
    pub const T1: Descriptor = Descriptor::build(false, false, false, false, true);
    /// `GrB_DESC_T0`.
    pub const T0: Descriptor = Descriptor::build(false, false, false, true, false);
    /// `GrB_DESC_T0T1`.
    pub const T0T1: Descriptor = Descriptor::build(false, false, false, true, true);
    /// `GrB_DESC_C`.
    pub const C: Descriptor = Descriptor::build(false, true, false, false, false);
    /// `GrB_DESC_S`.
    pub const S: Descriptor = Descriptor::build(false, false, true, false, false);
    /// `GrB_DESC_CT0`.
    pub const CT0: Descriptor = Descriptor::build(false, true, false, true, false);
    /// `GrB_DESC_CT1`.
    pub const CT1: Descriptor = Descriptor::build(false, true, false, false, true);
    /// `GrB_DESC_ST0`.
    pub const ST0: Descriptor = Descriptor::build(false, false, true, true, false);
    /// `GrB_DESC_ST1`.
    pub const ST1: Descriptor = Descriptor::build(false, false, true, false, true);
    /// `GrB_DESC_SC` (structural complement).
    pub const SC: Descriptor = Descriptor::build(false, true, true, false, false);
    /// `GrB_DESC_R`.
    pub const R: Descriptor = Descriptor::build(true, false, false, false, false);
    /// `GrB_DESC_RT0`.
    pub const RT0: Descriptor = Descriptor::build(true, false, false, true, false);
    /// `GrB_DESC_RT1`.
    pub const RT1: Descriptor = Descriptor::build(true, false, false, false, true);
    /// `GrB_DESC_RC`.
    pub const RC: Descriptor = Descriptor::build(true, true, false, false, false);
    /// `GrB_DESC_RS`.
    pub const RS: Descriptor = Descriptor::build(true, false, true, false, false);
    /// `GrB_DESC_RSC` (replace + structural complement).
    pub const RSC: Descriptor = Descriptor::build(true, true, true, false, false);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    // The point of this test is exactly to pin the constants' values.
    #[allow(clippy::assertions_on_constants)]
    fn predefined_descriptor_constants() {
        assert!(Descriptor::T0.transpose_a && !Descriptor::T0.transpose_b);
        assert!(Descriptor::T1.transpose_b && !Descriptor::T1.transpose_a);
        assert!(Descriptor::T0T1.transpose_a && Descriptor::T0T1.transpose_b);
        assert!(Descriptor::C.mask_complement);
        assert!(Descriptor::S.mask_structure && !Descriptor::S.mask_complement);
        assert!(Descriptor::SC.mask_structure && Descriptor::SC.mask_complement);
        assert!(Descriptor::R.replace);
        assert!(
            Descriptor::RSC.replace
                && Descriptor::RSC.mask_structure
                && Descriptor::RSC.mask_complement
        );
        assert_eq!(
            Descriptor::RSC,
            Descriptor::new()
                .replace()
                .structure_mask()
                .complement_mask()
        );
        assert_eq!(Descriptor::RT0, Descriptor::new().replace().transpose_a());
        assert_eq!(
            Descriptor::CT1,
            Descriptor::new().complement_mask().transpose_b()
        );
        assert_eq!(Descriptor::RS, Descriptor::new().replace().structure_mask());
        assert_eq!(
            Descriptor::ST0,
            Descriptor::new().structure_mask().transpose_a()
        );
        assert_eq!(
            Descriptor::ST1,
            Descriptor::new().structure_mask().transpose_b()
        );
        assert_eq!(
            Descriptor::CT0,
            Descriptor::new().complement_mask().transpose_a()
        );
        assert_eq!(Descriptor::RT1, Descriptor::new().replace().transpose_b());
        assert_eq!(
            Descriptor::RC,
            Descriptor::new().replace().complement_mask()
        );
    }

    #[test]
    fn builder_composes() {
        let d = Descriptor::new().replace().complement_mask().transpose_a();
        assert!(d.replace && d.mask_complement && d.transpose_a);
        assert!(!d.mask_structure && !d.transpose_b);
        assert_eq!(Descriptor::default(), Descriptor::new());
    }
}
