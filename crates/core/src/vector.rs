//! The `GrB_Vector` container — the one-dimensional sibling of
//! [`Matrix`](crate::matrix::Matrix), with the same opaque-handle,
//! deferred-sequence design (see `matrix.rs` for the architecture notes).

use std::sync::Arc;

use graphblas_exec::sync::{Mutex, RwLock};
use graphblas_exec::{Context, Mode};
use graphblas_sparse::{BitmapVec, DenseVec, SparseVec};

use crate::error::{ApiError, Error, ExecutionError, GrbResult};
use crate::introspect::ObjectStats;
use crate::ops::BinaryOp;
use crate::pending::{fuse_maps, MapFn, NodeKind, Stage, WaitMode};
use crate::scalar::Scalar;
use crate::types::{Index, MaskValue, ValueType};

/// The lazy internal storage of a vector.
pub(crate) enum VecStore<T: ValueType> {
    /// Possibly unsorted / duplicated (fast `setElement` appends resolve
    /// last-wins at canonicalization).
    Sparse(Arc<SparseVec<T>>),
    Dense(Arc<DenseVec<T>>),
    /// Table III bitmap format: mid-density frontiers produced by
    /// `mxv`/`vxm` land here (see the format heuristic in `operations`).
    Bitmap(Arc<BitmapVec<T>>),
}

impl<T: ValueType> Clone for VecStore<T> {
    fn clone(&self) -> Self {
        match self {
            VecStore::Sparse(a) => VecStore::Sparse(a.clone()),
            VecStore::Dense(a) => VecStore::Dense(a.clone()),
            VecStore::Bitmap(a) => VecStore::Bitmap(a.clone()),
        }
    }
}

impl<T: ValueType> VecStore<T> {
    /// Allocated buffer bytes of the current store (see
    /// `MatStore::bytes` for the shared-storage caveat).
    pub(crate) fn bytes(&self) -> u64 {
        match self {
            VecStore::Sparse(a) => a.bytes(),
            VecStore::Dense(a) => a.bytes(),
            VecStore::Bitmap(a) => a.bytes(),
        }
    }
}

/// A completed `mxv`/`vxm` input frontier in whichever Table III format
/// the producing operation chose to store it.
pub(crate) enum Frontier<T: ValueType> {
    Sparse(Arc<SparseVec<T>>),
    Bitmap(Arc<BitmapVec<T>>),
}

impl<T: ValueType> Frontier<T> {
    pub(crate) fn len(&self) -> usize {
        match self {
            Frontier::Sparse(s) => s.len(),
            Frontier::Bitmap(b) => b.len(),
        }
    }

    pub(crate) fn nnz(&self) -> usize {
        match self {
            Frontier::Sparse(s) => s.nnz(),
            Frontier::Bitmap(b) => b.nnz(),
        }
    }
}

pub(crate) struct VectorState<T: ValueType> {
    pub n: usize,
    pub store: VecStore<T>,
    pub pending: Vec<Stage<VectorState<T>, T>>,
    pub err: Option<ExecutionError>,
    /// Store bytes last reported to the `obs::mem` container gauge.
    pub mem_bytes: u64,
    /// Context id the bytes above were charged to.
    pub mem_ctx: u64,
}

impl<T: ValueType> Drop for VectorState<T> {
    fn drop(&mut self) {
        if self.mem_bytes != 0 {
            graphblas_obs::mem::adjust_container(self.mem_ctx, self.mem_bytes, 0);
        }
    }
}

impl<T: ValueType> VectorState<T> {
    /// A clean state (no pending stages, no error) over `store`.
    pub(crate) fn fresh(n: usize, store: VecStore<T>) -> Self {
        VectorState {
            n,
            store,
            pending: Vec::new(),
            err: None,
            mem_bytes: 0,
            mem_ctx: 0,
        }
    }

    /// Reconciles this container's allocated-store bytes with the
    /// `obs::mem` container gauge and the owning context's memory ledger
    /// (see `MatrixState::note_mem`).
    pub(crate) fn note_mem(&mut self, ctx_id: u64) {
        let enabled = graphblas_obs::enabled();
        if !enabled && self.mem_bytes == 0 {
            return;
        }
        if ctx_id != self.mem_ctx && self.mem_bytes != 0 {
            graphblas_obs::mem::adjust_container(self.mem_ctx, self.mem_bytes, 0);
            self.mem_bytes = 0;
        }
        self.mem_ctx = ctx_id;
        let new = if enabled { self.store.bytes() } else { 0 };
        if new != self.mem_bytes {
            graphblas_obs::mem::adjust_container(ctx_id, self.mem_bytes, new);
            self.mem_bytes = new;
        }
    }
    /// Canonicalizes to a sorted, duplicate-free sparse store.
    pub(crate) fn ensure_sparse(&mut self) -> GrbResult {
        // Which real work the canonicalization did, for the provenance
        // log (vectors carry no Context at this layer, hence ctx 0).
        let mut src_format: Option<&'static str> = None;
        let sv: Arc<SparseVec<T>> = match &self.store {
            VecStore::Sparse(a) => {
                if a.is_sorted() {
                    a.clone()
                } else {
                    src_format = Some("unsorted");
                    let mut owned = (**a).clone();
                    owned
                        .sort_dedup(Some(&|_: &T, b: &T| b.clone()))
                        .map_err(Error::from)?;
                    Arc::new(owned)
                }
            }
            VecStore::Dense(d) => {
                src_format = Some("dense");
                Arc::new(d.to_sparse())
            }
            VecStore::Bitmap(b) => {
                src_format = Some("bitmap");
                Arc::new(b.to_svec())
            }
        };
        if let Some(src) = src_format {
            if src == "bitmap" && graphblas_obs::enabled() {
                graphblas_obs::counters::record_format_conversion();
            }
            if graphblas_obs::events::on() {
                graphblas_obs::events::decision_convert_sparse("vector", 0, src, sv.nnz() as u64);
            }
        }
        self.store = VecStore::Sparse(sv);
        self.debug_check();
        Ok(())
    }

    /// Deep validation of this state: Table III invariants of the current
    /// store, store-vs-logical length agreement, and §V error bookkeeping.
    pub(crate) fn check(&self) -> Result<(), crate::introspect::CheckError> {
        use crate::introspect::CheckError;
        let len = match &self.store {
            VecStore::Sparse(a) => {
                a.check().map_err(|source| CheckError::Format {
                    format: "sparse",
                    source,
                })?;
                a.len()
            }
            VecStore::Dense(a) => {
                a.check().map_err(|source| CheckError::Format {
                    format: "full",
                    source,
                })?;
                a.len()
            }
            VecStore::Bitmap(a) => {
                a.check().map_err(|source| CheckError::Format {
                    format: "bitmap",
                    source,
                })?;
                a.len()
            }
        };
        if len != self.n {
            return Err(CheckError::ShapeMismatch {
                logical: (self.n as u64, 1),
                store: (len as u64, 1),
            });
        }
        if self.err.is_some() && !self.pending.is_empty() {
            return Err(CheckError::PendingAfterError {
                pending: self.pending.len(),
            });
        }
        Ok(())
    }

    /// Debug-build invariant gate, called at kernel boundaries (after
    /// `drain` and `ensure_sparse`). Compiles to nothing in release builds.
    #[inline]
    pub(crate) fn debug_check(&self) {
        #[cfg(debug_assertions)]
        if let Err(e) = self.check() {
            panic!("vector container invariant violated: {e}");
        }
    }

    /// Borrows the sparse store (call [`Self::ensure_sparse`] first).
    pub(crate) fn sparse(&self) -> &Arc<SparseVec<T>> {
        match &self.store {
            VecStore::Sparse(a) => a,
            _ => unreachable!("ensure_sparse must precede sparse()"),
        }
    }

    pub(crate) fn drain(&mut self, ctx: &Context) -> GrbResult {
        self.drain_as(ctx, "read")
    }

    /// [`Self::drain`] with an explicit force cause for the `DagForce`
    /// decision event ("read", "wait", "async", "self-input").
    pub(crate) fn drain_as(&mut self, ctx: &Context, cause: &'static str) -> GrbResult {
        if let Some(e) = &self.err {
            return Err(Error::Execution(e.clone()));
        }
        if self.pending.is_empty() {
            return Ok(());
        }
        let obs_on = graphblas_obs::enabled();
        let _sp = obs_on.then(|| graphblas_obs::span_ctx("drain", ctx.id()));
        if obs_on {
            // grblint: allow(relaxed-ordering); grbsa: protocol(counter) — monotonic obs counter.
            graphblas_obs::counters::pending()
                .drains
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
        let pending = std::mem::take(&mut self.pending);
        if pending.iter().any(|s| matches!(s, Stage::Node { .. })) {
            if obs_on {
                // grblint: allow(relaxed-ordering); grbsa: protocol(counter) — monotonic obs counter.
                graphblas_obs::counters::dag()
                    .forces
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
            if graphblas_obs::events::on() {
                graphblas_obs::events::decision_dag_force(
                    "vector.drain",
                    ctx.id(),
                    cause,
                    pending.len() as u64,
                );
            }
        }
        let mut stages = pending.into_iter().peekable();
        let mut run: Vec<MapFn<T>> = Vec::new();
        let result = (|| {
            while let Some(stage) = stages.next() {
                match stage {
                    Stage::Map(f) => run.push(f),
                    Stage::Opaque(f) => {
                        self.flush_map_run(ctx, &mut run, "opaque-barrier")?;
                        if obs_on {
                            // grblint: allow(relaxed-ordering); grbsa: protocol(counter) — monotonic obs counter.
                            graphblas_obs::counters::pending()
                                .opaque_drains
                                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            graphblas_obs::events::decision_opaque_drain("vector.drain", ctx.id());
                        }
                        let _ph = graphblas_obs::timeline::phase("drain.opaque");
                        f(self)?;
                    }
                    Stage::Node { kind: _, exec } => {
                        // Maps *before* a node transform this container's
                        // pre-node value: they must land first.
                        self.flush_map_run(ctx, &mut run, "node-barrier")?;
                        // Maps *after* the node transform its output: hand
                        // the whole trailing run to the node so it fuses
                        // them into its kernel (or one result pass).
                        let mut post: Vec<MapFn<T>> = Vec::new();
                        while matches!(stages.peek(), Some(Stage::Map(_))) {
                            if let Some(Stage::Map(f)) = stages.next() {
                                post.push(f);
                            }
                        }
                        let _ph = graphblas_obs::timeline::phase("drain.node");
                        exec(self, post)?;
                    }
                }
            }
            self.flush_map_run(ctx, &mut run, "queue-end")
        })();
        if let Err(e) = &result {
            if let Error::Execution(exec) = e {
                self.err = Some(exec.clone());
                if obs_on {
                    // grblint: allow(relaxed-ordering); grbsa: protocol(counter) — monotonic obs counter.
                    graphblas_obs::counters::pending()
                        .errors_deferred
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    graphblas_obs::events::decision_error_deferred("vector.drain", ctx.id());
                }
            }
            self.pending.clear();
        }
        self.note_mem(ctx.id());
        self.debug_check();
        result
    }

    fn flush_map_run(
        &mut self,
        ctx: &Context,
        run: &mut Vec<MapFn<T>>,
        trigger: &'static str,
    ) -> GrbResult {
        if run.is_empty() {
            return Ok(());
        }
        let mut sp = graphblas_obs::kernel_span(graphblas_obs::Kernel::MapFuse, ctx.id());
        if sp.active() {
            let p = graphblas_obs::counters::pending();
            // grblint: allow(relaxed-ordering); grbsa: protocol(counter) — monotonic obs counter.
            p.map_traversals
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            // grblint: allow(relaxed-ordering); grbsa: protocol(counter) — monotonic obs counter.
            p.fusion_hits
                .fetch_add(run.len() as u64 - 1, std::sync::atomic::Ordering::Relaxed);
        }
        self.ensure_sparse()?;
        let nnz_in = if sp.active() {
            self.sparse().nnz() as u64
        } else {
            0
        };
        if graphblas_obs::events::on() {
            graphblas_obs::events::decision_fuse_flush(
                "vector.drain",
                ctx.id(),
                run.len() as u64,
                nnz_in,
                trigger,
            );
        }
        let fused = self
            .sparse()
            .filter_map_with_index(|i, v| fuse_maps(run, &[i], v));
        if sp.active() {
            sp.io(
                nnz_in * run.len() as u64,
                nnz_in,
                fused.nnz() as u64,
                nnz_in * std::mem::size_of::<T>() as u64,
            );
        }
        self.store = VecStore::Sparse(Arc::new(fused));
        run.clear();
        Ok(())
    }

    /// Applies a node's trailing (post) map run to the container's final
    /// state as one pass. The masked/accumulated node paths use this: the
    /// post maps semantically transform the *merged* output, so they
    /// cannot thread through the kernel write.
    pub(crate) fn apply_post_maps(&mut self, post: &[MapFn<T>]) -> GrbResult {
        if post.is_empty() {
            return Ok(());
        }
        self.ensure_sparse()?;
        let out = self
            .sparse()
            .filter_map_with_index(|i, v| fuse_maps(post, &[i], v));
        self.store = VecStore::Sparse(Arc::new(out));
        Ok(())
    }
}

struct VectorHandle<T: ValueType> {
    ctx: RwLock<Context>,
    state: Mutex<VectorState<T>>,
}

/// An opaque handle to a GraphBLAS vector over domain `T`.
#[derive(Clone)]
pub struct Vector<T: ValueType> {
    inner: Arc<VectorHandle<T>>,
}

impl<T: ValueType> std::fmt::Debug for Vector<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.inner.state.lock();
        write!(
            f,
            "Vector<{}>({}, pending: {})",
            std::any::type_name::<T>(),
            st.n,
            st.pending.len()
        )
    }
}

impl<T: ValueType> Vector<T> {
    /// `GrB_Vector_new`: an empty vector of positive length.
    pub fn new(n: Index) -> GrbResult<Self> {
        Self::new_in(&graphblas_exec::global_context(), n)
    }

    /// §IV context-aware constructor.
    pub fn new_in(ctx: &Context, n: Index) -> GrbResult<Self> {
        if n == 0 {
            return Err(ApiError::InvalidValue.into());
        }
        Ok(Self::from_state(
            ctx,
            VectorState::fresh(n, VecStore::Sparse(Arc::new(SparseVec::empty(n)))),
        ))
    }

    pub(crate) fn from_state(ctx: &Context, mut state: VectorState<T>) -> Self {
        state.note_mem(ctx.id());
        Vector {
            inner: Arc::new(VectorHandle {
                ctx: RwLock::new(ctx.clone()),
                state: Mutex::new(state),
            }),
        }
    }

    /// `GrB_Vector_dup`.
    pub fn dup(&self) -> GrbResult<Self> {
        let ctx = self.context();
        let st = self.lock_completed()?;
        let state = VectorState::fresh(st.n, st.store.clone());
        drop(st);
        Ok(Self::from_state(&ctx, state))
    }

    pub fn context(&self) -> Context {
        self.inner.ctx.read().clone()
    }

    /// `GrB_Context_switch`.
    pub fn switch_context(&self, ctx: &Context) -> GrbResult {
        *self.inner.ctx.write() = ctx.clone();
        Ok(())
    }

    /// `GrB_Vector_size`.
    pub fn size(&self) -> Index {
        self.inner.state.lock().n
    }

    /// `GrB_Vector_nvals`. Forces completion but not canonicalization —
    /// bitmap and dense stores report their counts in place.
    pub fn nvals(&self) -> GrbResult<usize> {
        let mut st = self.lock_completed()?;
        match &st.store {
            VecStore::Bitmap(b) => return Ok(b.nnz()),
            VecStore::Dense(d) => return Ok(d.len()),
            VecStore::Sparse(_) => {}
        }
        st.ensure_sparse()?;
        Ok(st.sparse().nnz())
    }

    /// `GrB_Vector_clear`: removes all elements, pending stages, and any
    /// sticky error.
    pub fn clear(&self) -> GrbResult {
        let ctx_id = self.context().id();
        let mut st = self.inner.state.lock();
        st.pending.clear();
        st.err = None;
        st.store = VecStore::Sparse(Arc::new(SparseVec::empty(st.n)));
        st.note_mem(ctx_id);
        Ok(())
    }

    /// `GrB_Vector_resize`.
    pub fn resize(&self, n: Index) -> GrbResult {
        if n == 0 {
            return Err(ApiError::InvalidValue.into());
        }
        let mut st = self.lock_completed()?;
        st.ensure_sparse()?;
        let old = st.sparse().clone();
        let mut indices = Vec::new();
        let mut values = Vec::new();
        for (i, v) in old.iter() {
            if i < n {
                indices.push(i);
                values.push(v.clone());
            }
        }
        st.n = n;
        st.store = VecStore::Sparse(Arc::new(
            SparseVec::from_parts(n, indices, values).map_err(Error::from)?,
        ));
        Ok(())
    }

    /// `GrB_Vector_setElement`; scalar-index OOB is an immediate API error.
    pub fn set_element(&self, v: T, i: Index) -> GrbResult {
        let mut st = self.lock_completed()?;
        if i >= st.n {
            return Err(ApiError::InvalidIndex.into());
        }
        if !matches!(st.store, VecStore::Sparse(_)) {
            st.ensure_sparse()?;
        }
        if let VecStore::Sparse(sv) = &mut st.store {
            Arc::make_mut(sv).append(i, v).map_err(Error::from)?;
        }
        let ctx_id = self.context().id();
        st.note_mem(ctx_id);
        Ok(())
    }

    /// Table II scalar variant: empty scalar removes the element.
    pub fn set_element_scalar(&self, s: &Scalar<T>, i: Index) -> GrbResult {
        match s.extract_element()? {
            Some(v) => self.set_element(v, i),
            None => self.remove_element(i),
        }
    }

    /// `GrB_Vector_removeElement`.
    pub fn remove_element(&self, i: Index) -> GrbResult {
        let mut st = self.lock_completed()?;
        if i >= st.n {
            return Err(ApiError::InvalidIndex.into());
        }
        st.ensure_sparse()?;
        let sv = st.sparse().clone();
        if sv.get(i).is_some() {
            let mut owned = (*sv).clone();
            owned.remove(i);
            st.store = VecStore::Sparse(Arc::new(owned));
        }
        Ok(())
    }

    /// `GrB_Vector_extractElement`: `Ok(None)` ≡ `GrB_NO_VALUE`.
    pub fn extract_element(&self, i: Index) -> GrbResult<Option<T>> {
        let mut st = self.lock_completed()?;
        if i >= st.n {
            return Err(ApiError::InvalidIndex.into());
        }
        st.ensure_sparse()?;
        Ok(st.sparse().get(i).cloned())
    }

    /// Table II scalar variant: missing element → empty scalar; deferred
    /// into the scalar's sequence in nonblocking mode (§VI).
    pub fn extract_element_scalar(&self, s: &Scalar<T>, i: Index) -> GrbResult {
        s.check_context(&self.context())?;
        if i >= self.size() {
            return Err(ApiError::InvalidIndex.into());
        }
        let this = self.clone();
        s.apply_write(Box::new(move |slot: &mut Option<T>| {
            *slot = this.extract_element(i)?;
            Ok(())
        }))
    }

    /// `GrB_Vector_build` with optional `dup` (§IX).
    pub fn build(
        &self,
        indices: &[Index],
        values: &[T],
        dup: Option<&BinaryOp<T, T, T>>,
    ) -> GrbResult {
        if indices.len() != values.len() {
            return Err(ApiError::InvalidValue.into());
        }
        {
            let mut st = self.lock_completed()?;
            st.ensure_sparse()?;
            if st.sparse().nnz() != 0 {
                return Err(ApiError::OutputNotEmpty.into());
            }
        }
        let indices = indices.to_vec();
        let values = values.to_vec();
        let dup = dup.cloned();
        self.apply_write(Box::new(move |st: &mut VectorState<T>| {
            let mut sv = SparseVec::from_parts(st.n, indices, values).map_err(Error::from)?;
            match &dup {
                Some(op) => sv
                    .sort_dedup(Some(&|a: &T, b: &T| op.apply(a, b)))
                    .map_err(Error::from)?,
                None => sv.sort_dedup(None).map_err(Error::from)?,
            }
            st.store = VecStore::Sparse(Arc::new(sv));
            Ok(())
        }))
    }

    /// `GrB_Vector_extractTuples`, ordered by index.
    pub fn extract_tuples(&self) -> GrbResult<(Vec<Index>, Vec<T>)> {
        let mut st = self.lock_completed()?;
        st.ensure_sparse()?;
        let sv = st.sparse();
        Ok((sv.indices().to_vec(), sv.values().to_vec()))
    }

    /// `GrB_wait` (§III, §V): the real barrier on the op DAG — forces the
    /// whole queued subgraph, after which the object can participate in a
    /// cross-thread happens-before edge.
    pub fn wait(&self, mode: WaitMode) -> GrbResult {
        let _sp = graphblas_obs::kernel_span(graphblas_obs::Kernel::Wait, self.context().id());
        let mut st = self.lock_completed_as("wait")?;
        if mode == WaitMode::Materialize {
            st.ensure_sparse()?;
        }
        Ok(())
    }

    /// `GrB_get`-style introspection without forcing completion (see
    /// [`Matrix::stats`](crate::matrix::Matrix::stats)).
    pub fn stats(&self) -> ObjectStats {
        let ctx_id = self.context().id();
        let st = self.inner.state.lock();
        let (format, nvals) = match &st.store {
            VecStore::Sparse(a) => ("sparse", a.nnz()),
            VecStore::Dense(a) => ("full", a.len()),
            VecStore::Bitmap(a) => ("bitmap", a.nnz()),
        };
        ObjectStats {
            kind: "vector",
            nrows: st.n as u64,
            ncols: 1,
            nvals: nvals as u64,
            pending: st.pending.len() as u64,
            format,
            failed: st.err.is_some(),
            ctx: ctx_id,
        }
    }

    /// `GrB_explain`-style decision provenance scoped to this vector's
    /// context subtree (see [`Matrix::explain`](crate::matrix::Matrix::explain)).
    pub fn explain(&self, last_n: usize) -> graphblas_obs::Explain {
        self.context().explain(last_n)
    }

    /// `GrB_error`.
    pub fn error_string(&self) -> String {
        self.inner
            .state
            .lock()
            .err
            .as_ref()
            .map(|e| e.to_string())
            .unwrap_or_default()
    }

    pub fn same_object(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Number of queued stages (observability for tests/benches).
    pub fn pending_len(&self) -> usize {
        self.inner.state.lock().pending.len()
    }

    // --- crate-internal plumbing ------------------------------------------

    /// Locks state without draining (format inspection only).
    pub(crate) fn lock_raw(&self) -> graphblas_exec::sync::MutexGuard<'_, VectorState<T>> {
        self.inner.state.lock()
    }

    pub(crate) fn lock_completed(
        &self,
    ) -> GrbResult<graphblas_exec::sync::MutexGuard<'_, VectorState<T>>> {
        self.lock_completed_as("read")
    }

    /// [`Self::lock_completed`] with an explicit force cause for the
    /// `DagForce` decision event.
    pub(crate) fn lock_completed_as(
        &self,
        cause: &'static str,
    ) -> GrbResult<graphblas_exec::sync::MutexGuard<'_, VectorState<T>>> {
        let ctx = self.context();
        let mut st = self.inner.state.lock();
        st.drain_as(&ctx, cause)?;
        Ok(st)
    }

    /// Completes and snapshots as a canonical sparse vector.
    pub(crate) fn snapshot_sparse(&self) -> GrbResult<Arc<SparseVec<T>>> {
        let mut st = self.lock_completed()?;
        st.ensure_sparse()?;
        Ok(st.sparse().clone())
    }

    /// Completes and snapshots in the store's current frontier format —
    /// bitmap stays bitmap (the pull kernel consumes it natively), every
    /// other format canonicalizes to sparse. When this vector's queue is pure
    /// map stages the maps are *cloned* (cheap `Arc` bumps) and returned
    /// alongside the base frontier instead of being materialized — the
    /// consumer folds them into its kernel's operand lookup, so the
    /// intermediate traversal and allocation never happen. The queue is
    /// left intact: this vector's own later readers still see the maps
    /// (sequence order fixed the input values at call time either way).
    /// Any non-map stage forces a full drain (fallback: empty pre run).
    pub(crate) fn snapshot_frontier_fused(&self) -> GrbResult<(Frontier<T>, Vec<MapFn<T>>)> {
        let ctx = self.context();
        let mut st = self.inner.state.lock();
        if let Some(e) = &st.err {
            return Err(Error::Execution(e.clone()));
        }
        if crate::dag::dag_enabled()
            && !st.pending.is_empty()
            && st.pending.iter().all(|s| s.is_map())
        {
            let pre: Vec<MapFn<T>> = st
                .pending
                .iter()
                .map(|s| match s {
                    Stage::Map(f) => f.clone(),
                    _ => unreachable!("queue checked all-map above"),
                })
                .collect();
            if let VecStore::Bitmap(b) = &st.store {
                return Ok((Frontier::Bitmap(b.clone()), pre));
            }
            st.ensure_sparse()?;
            return Ok((Frontier::Sparse(st.sparse().clone()), pre));
        }
        st.drain_as(&ctx, "self-input")?;
        if let VecStore::Bitmap(b) = &st.store {
            return Ok((Frontier::Bitmap(b.clone()), Vec::new()));
        }
        st.ensure_sparse()?;
        Ok((Frontier::Sparse(st.sparse().clone()), Vec::new()))
    }

    pub(crate) fn apply_write(
        &self,
        stage: Box<dyn FnOnce(&mut VectorState<T>) -> GrbResult + Send>,
    ) -> GrbResult {
        let ctx = self.context();
        let mut st = self.inner.state.lock();
        if let Some(e) = &st.err {
            return Err(Error::Execution(e.clone()));
        }
        match ctx.mode() {
            Mode::NonBlocking => {
                st.pending.push(Stage::Opaque(stage));
                if graphblas_obs::enabled() {
                    // grblint: allow(relaxed-ordering); grbsa: protocol(counter) — monotonic obs counter.
                    graphblas_obs::counters::pending()
                        .opaques_enqueued
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    graphblas_obs::counters::note_pending_depth(st.pending.len());
                }
                Ok(())
            }
            Mode::Blocking => {
                st.drain(&ctx)?;
                let r = stage(&mut st);
                if let Err(Error::Execution(exec)) = &r {
                    st.err = Some(exec.clone());
                }
                st.note_mem(ctx.id());
                r
            }
        }
    }

    /// Enqueues a lazy op-DAG node (§III). In nonblocking mode with the
    /// DAG on, `exec` defers as a [`Stage::Node`] and receives the run of
    /// trailing map stages at drain time (it must apply them — via its
    /// fused kernel or [`VectorState::apply_post_maps`]). With the DAG off
    /// (`GRB_NONBLOCKING=0`) it degrades to exactly the pre-DAG opaque
    /// stage; in blocking mode it runs eagerly.
    pub(crate) fn apply_node(
        &self,
        kind: NodeKind,
        exec: Box<dyn FnOnce(&mut VectorState<T>, Vec<MapFn<T>>) -> GrbResult + Send>,
    ) -> GrbResult {
        let ctx = self.context();
        let mut st = self.inner.state.lock();
        if let Some(e) = &st.err {
            return Err(Error::Execution(e.clone()));
        }
        match ctx.mode() {
            Mode::NonBlocking if crate::dag::dag_enabled() => {
                st.pending.push(Stage::Node { kind, exec });
                let depth = st.pending.len();
                if graphblas_obs::enabled() {
                    // grblint: allow(relaxed-ordering); grbsa: protocol(counter) — monotonic obs counter.
                    graphblas_obs::counters::dag()
                        .nodes_enqueued
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    graphblas_obs::counters::note_pending_depth(depth);
                }
                drop(st);
                self.maybe_async_drain(depth);
                Ok(())
            }
            Mode::NonBlocking => {
                st.pending
                    .push(Stage::Opaque(Box::new(move |st| exec(st, Vec::new()))));
                if graphblas_obs::enabled() {
                    // grblint: allow(relaxed-ordering); grbsa: protocol(counter) — monotonic obs counter.
                    graphblas_obs::counters::pending()
                        .opaques_enqueued
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    graphblas_obs::counters::note_pending_depth(st.pending.len());
                }
                Ok(())
            }
            Mode::Blocking => {
                st.drain(&ctx)?;
                let r = exec(&mut st, Vec::new());
                if let Err(Error::Execution(exec_err)) = &r {
                    st.err = Some(exec_err.clone());
                }
                st.note_mem(ctx.id());
                r
            }
        }
    }

    /// Hands this container's backlog to the worker pool once its queue
    /// depth crosses the `GRB_ASYNC_DRAIN_DEPTH` threshold. The threshold
    /// keeps short op chains intact (so node drains still find trailing
    /// maps to fuse); the per-container mutex serializes the background
    /// drain against readers, and a drain of an already-empty queue is a
    /// no-op — so racing forces cannot double-drain.
    fn maybe_async_drain(&self, depth: usize) {
        if !crate::dag::async_drain_enabled() || depth < crate::dag::async_drain_depth() {
            return;
        }
        if graphblas_obs::enabled() {
            // grblint: allow(relaxed-ordering); grbsa: protocol(counter) — monotonic obs counter.
            graphblas_obs::counters::dag()
                .async_drains
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
        let this = self.clone();
        let ctx = self.context();
        graphblas_exec::pool::global_pool().spawn_static(Box::new(move || {
            let mut st = this.inner.state.lock();
            // A failed drain leaves the §V sticky error in place for the
            // next reader to surface; the background task has no caller
            // to report to.
            let _ = st.drain_as(&ctx, "async");
        }));
    }

    pub(crate) fn apply_map(&self, f: MapFn<T>) -> GrbResult {
        let ctx = self.context();
        let mut st = self.inner.state.lock();
        if let Some(e) = &st.err {
            return Err(Error::Execution(e.clone()));
        }
        match ctx.mode() {
            Mode::NonBlocking => {
                st.pending.push(Stage::Map(f));
                if graphblas_obs::enabled() {
                    // grblint: allow(relaxed-ordering); grbsa: protocol(counter) — monotonic obs counter.
                    graphblas_obs::counters::pending()
                        .maps_enqueued
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    graphblas_obs::counters::note_pending_depth(st.pending.len());
                }
                Ok(())
            }
            Mode::Blocking => {
                st.drain(&ctx)?;
                st.ensure_sparse()?;
                let out = st.sparse().filter_map_with_index(|i, v| f(&[i], v));
                st.store = VecStore::Sparse(Arc::new(out));
                st.note_mem(ctx.id());
                Ok(())
            }
        }
    }

    /// Type-erased object identity (see `Matrix::addr`).
    pub(crate) fn addr(&self) -> usize {
        Arc::as_ptr(&self.inner) as *const () as usize
    }

    pub(crate) fn check_context(&self, ctx: &Context) -> GrbResult {
        if self.context().same(ctx) {
            Ok(())
        } else {
            Err(ApiError::ContextMismatch.into())
        }
    }
}

impl<T: ValueType> crate::introspect::Check for Vector<T> {
    /// Deep validation (`grb_check`): the current store's Table III
    /// invariants, store-vs-logical length agreement, and §V error
    /// bookkeeping — without forcing completion.
    fn grb_check(&self) -> Result<(), crate::introspect::CheckError> {
        self.inner.state.lock().check()
    }
}

impl<T: ValueType + std::fmt::Display> Vector<T> {
    /// Renders the vector as a one-line list with `.` for missing elements.
    pub fn to_display_string(&self) -> GrbResult<String> {
        let sv = self.snapshot_sparse()?;
        let table = sv.to_option_table();
        let mut out = String::from("[");
        for (i, slot) in table.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            match slot {
                Some(v) => out.push_str(&format!("{v}")),
                None => out.push('.'),
            }
        }
        out.push(']');
        Ok(out)
    }
}

impl<T: ValueType + MaskValue> Vector<T> {
    /// Snapshot as a boolean mask (see `Matrix::snapshot_mask`).
    pub(crate) fn snapshot_mask(&self, structure: bool) -> GrbResult<Arc<SparseVec<bool>>> {
        let sv = self.snapshot_sparse()?;
        let boolified = if structure {
            sv.map_with_index(|_, _| true)
        } else {
            sv.map_with_index(|_, v| v.is_truthy())
        };
        Ok(Arc::new(boolified))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphblas_exec::{global_context, ContextOptions};

    #[test]
    fn new_validates_length() {
        assert!(Vector::<i32>::new(0).is_err());
        let v = Vector::<i32>::new(5).unwrap();
        assert_eq!(v.size(), 5);
        assert_eq!(v.nvals().unwrap(), 0);
    }

    #[test]
    fn element_lifecycle() {
        let v = Vector::<f64>::new(4).unwrap();
        v.set_element(1.5, 2).unwrap();
        assert_eq!(v.extract_element(2).unwrap(), Some(1.5));
        v.set_element(2.5, 2).unwrap();
        assert_eq!(v.extract_element(2).unwrap(), Some(2.5));
        assert_eq!(v.nvals().unwrap(), 1);
        v.remove_element(2).unwrap();
        assert_eq!(v.extract_element(2).unwrap(), None);
        assert!(v.set_element(0.0, 4).is_err());
        assert!(v.extract_element(4).is_err());
    }

    #[test]
    fn build_with_and_without_dup() {
        let v = Vector::<i64>::new(6).unwrap();
        v.build(&[1, 1, 4], &[10, 20, 40], Some(&BinaryOp::plus()))
            .unwrap();
        assert_eq!(v.extract_element(1).unwrap(), Some(30));
        assert_eq!(v.nvals().unwrap(), 2);
        let w = Vector::<i64>::new(6).unwrap();
        let err = w.build(&[1, 1], &[10, 20], None).unwrap_err();
        assert!(err.is_execution());
        let full = Vector::<i64>::new(6).unwrap();
        full.set_element(1, 0).unwrap();
        assert_eq!(
            full.build(&[1], &[1], None).unwrap_err(),
            Error::Api(ApiError::OutputNotEmpty)
        );
    }

    #[test]
    fn deferred_build_error_in_nonblocking() {
        let ctx = Context::new(
            &global_context(),
            Mode::NonBlocking,
            ContextOptions::default(),
        );
        let v = Vector::<i64>::new_in(&ctx, 3).unwrap();
        v.build(&[9], &[1], None).unwrap(); // deferred; index is data
        assert_eq!(v.pending_len(), 1);
        assert!(v.wait(WaitMode::Materialize).is_err());
        assert!(!v.error_string().is_empty());
        v.clear().unwrap();
        assert!(v.wait(WaitMode::Complete).is_ok());
    }

    #[test]
    fn tuples_and_resize() {
        let v = Vector::<u8>::new(5).unwrap();
        v.build(&[0, 3], &[7, 9], None).unwrap();
        let (idx, vals) = v.extract_tuples().unwrap();
        assert_eq!(idx, vec![0, 3]);
        assert_eq!(vals, vec![7, 9]);
        v.resize(2).unwrap();
        assert_eq!(v.size(), 2);
        assert_eq!(v.nvals().unwrap(), 1);
    }

    #[test]
    fn scalar_variants() {
        let v = Vector::<i32>::new(3).unwrap();
        let s = Scalar::<i32>::new().unwrap();
        s.set_element(5).unwrap();
        v.set_element_scalar(&s, 1).unwrap();
        assert_eq!(v.extract_element(1).unwrap(), Some(5));
        let out = Scalar::<i32>::new().unwrap();
        v.extract_element_scalar(&out, 1).unwrap();
        assert_eq!(out.extract_element().unwrap(), Some(5));
        let missing = Scalar::<i32>::new().unwrap();
        v.extract_element_scalar(&missing, 0).unwrap();
        assert_eq!(missing.nvals().unwrap(), 0);
        let empty = Scalar::<i32>::new().unwrap();
        v.set_element_scalar(&empty, 1).unwrap();
        assert_eq!(v.extract_element(1).unwrap(), None);
    }

    #[test]
    fn dup_independence() {
        let v = Vector::<i32>::new(2).unwrap();
        v.set_element(1, 0).unwrap();
        let d = v.dup().unwrap();
        v.set_element(2, 0).unwrap();
        assert_eq!(d.extract_element(0).unwrap(), Some(1));
    }
}
