//! Completion and deferred execution (paper §III and §V).
//!
//! In nonblocking mode a GraphBLAS object is defined by its *sequence* of
//! method calls; the implementation may defer, reorder, or **fuse**
//! operations as long as the result is mathematically equivalent. Here
//! every container carries a queue of [`Stage`]s:
//!
//! * [`Stage::Map`] — a fusible element-wise transform of the container's
//!   own stored elements (unmasked, unaccumulated `apply`/`select` whose
//!   input is the output). Consecutive `Map` stages execute as **one**
//!   traversal at drain time: the single-pass payoff §III's "fuse
//!   operations" latitude describes. The `ablation_fusion` bench times it
//!   and reads the `graphblas-obs` fusion counters (`fusion_hits`,
//!   `map_traversals`) to verify the fusion actually happened; a run of
//!   `n` consecutive maps reports one traversal and `n − 1` fusion hits.
//! * [`Stage::Opaque`] — everything else: an arbitrary deferred operation
//!   that was given snapshots of its *other* inputs at enqueue time
//!   (sequence order fixes input values at call time) and reads/writes the
//!   owning container's state when drained.
//! * [`Stage::Node`] — a lazy op-DAG node (mxv/vxm/mxm/eWise/assign/…):
//!   like `Opaque`, but fusion-aware. At drain time the engine hands the
//!   node every *trailing* consecutive `Map` stage from the queue; the
//!   node threads them into its numeric kernel (the monomorphized
//!   registry's `*_fused` rows) so the post-transforms run inside the
//!   kernel's output write instead of as a separate traversal. Nodes also
//!   participate in *input* fusion: when an input container's queue is
//!   pure maps, the consumer clones the run and folds it into the
//!   kernel's operand lookup (`snapshot_frontier_fused`), so the
//!   intermediate materialization disappears entirely — §III's
//!   cross-operation "fuse operations" latitude.
//!
//! `wait(Complete)` drains the queue — the object can then participate in
//! a cross-thread happens-before edge. `wait(Materialize)` additionally
//! brings storage to canonical form (CSR, sorted rows, owned exclusively)
//! and guarantees no further errors can be reported from the drained
//! sequence (§V).

use std::sync::Arc;

use crate::error::GrbResult;
use crate::types::Index;

/// The two flavours of `GrB_wait` (§III `GrB_COMPLETE`, §V
/// `GrB_MATERIALIZE`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WaitMode {
    /// Finish the computations in the object's sequence and leave internal
    /// data structures safe to hand to another thread.
    Complete,
    /// `Complete`, plus: no more errors can be reported (and no more time
    /// charged) for the methods in the drained sequence; storage is
    /// canonicalized.
    Materialize,
}

/// A fusible element-wise transform: receives `(indices, value)` — indices
/// of length 2 for matrix elements, 1 for vector elements — and returns the
/// replacement value, or `None` to annihilate the element.
pub type MapFn<T> = Arc<dyn Fn(&[Index], &T) -> Option<T> + Send + Sync>;

/// What kind of operation a lazy [`Stage::Node`] defers — the op-DAG node
/// kinds DESIGN.md §III maps onto the paper's nonblocking semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// Matrix-vector product (`mxv`).
    MxV,
    /// Vector-matrix product (`vxm`) — the push/BFS direction.
    VxM,
    /// Matrix-matrix product (`mxm`).
    MxM,
    /// Element-wise add/multiply (union/intersection).
    EWise,
    /// Masked or accumulated apply/select (the unmasked in-place forms
    /// stay `Stage::Map`).
    Apply,
    /// Select with mask/accum or distinct output.
    Select,
    /// Assign/subassign (accumulating writes into a sub-pattern).
    Assign,
    /// Extract (sub-container read into this container).
    Extract,
    /// Reduce (matrix → vector row reduction).
    Reduce,
    /// Structural ops: transpose, kron, dup, clear-and-rebuild.
    Structure,
}

impl NodeKind {
    /// Stable kebab-case name (used in decision-event detail strings).
    pub fn name(self) -> &'static str {
        match self {
            NodeKind::MxV => "mxv",
            NodeKind::VxM => "vxm",
            NodeKind::MxM => "mxm",
            NodeKind::EWise => "ewise",
            NodeKind::Apply => "apply",
            NodeKind::Select => "select",
            NodeKind::Assign => "assign",
            NodeKind::Extract => "extract",
            NodeKind::Reduce => "reduce",
            NodeKind::Structure => "structure",
        }
    }
}

/// A deferred stage in a container's sequence. `St` is the container's
/// state type (matrix or vector state).
pub enum Stage<St, T> {
    /// Fusible in-place element-wise transform.
    Map(MapFn<T>),
    /// Arbitrary deferred operation over the container state.
    Opaque(Box<dyn FnOnce(&mut St) -> GrbResult + Send>),
    /// A lazy op-DAG node. At drain time the executor receives the run of
    /// `Map` stages that immediately *followed* it in the queue (possibly
    /// empty) and is responsible for folding them into its kernel's
    /// output path — or applying them as one pass over its result.
    Node {
        /// Which operation this node defers.
        kind: NodeKind,
        /// The deferred execution, parameterized over the trailing maps.
        exec: Box<dyn FnOnce(&mut St, Vec<MapFn<T>>) -> GrbResult + Send>,
    },
}

impl<St, T> Stage<St, T> {
    /// Whether this is a fusible map stage.
    pub fn is_map(&self) -> bool {
        matches!(self, Stage::Map(_))
    }
}

/// Composes a run of map stages into a single per-element closure:
/// stages apply in sequence order; the first `None` annihilates.
pub fn fuse_maps<T: Clone>(run: &[MapFn<T>], indices: &[Index], v: &T) -> Option<T> {
    let mut cur = v.clone();
    for f in run {
        match f(indices, &cur) {
            Some(next) => cur = next,
            None => return None,
        }
    }
    Some(cur)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fuse_applies_in_order() {
        let double: MapFn<i64> = Arc::new(|_, v| Some(v * 2));
        let add_row: MapFn<i64> = Arc::new(|idx, v| Some(v + idx[0] as i64));
        let run = vec![double, add_row];
        // (5 * 2) + 3 — order matters.
        assert_eq!(fuse_maps(&run, &[3, 0], &5), Some(13));
    }

    #[test]
    fn fuse_short_circuits_on_drop() {
        let hits = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let h = hits.clone();
        let drop_all: MapFn<i64> = Arc::new(|_, _| None);
        let count: MapFn<i64> = Arc::new(move |_, v| {
            h.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            Some(*v)
        });
        let run = vec![drop_all, count];
        assert_eq!(fuse_maps(&run, &[0], &1), None);
        assert_eq!(hits.load(std::sync::atomic::Ordering::Relaxed), 0);
    }

    #[test]
    fn empty_run_is_identity() {
        let run: Vec<MapFn<u8>> = vec![];
        assert_eq!(fuse_maps(&run, &[0, 0], &7), Some(7));
    }
}
