//! The GraphBLAS 2.0 error model (paper §V, §IX).
//!
//! Two kinds of errors, with very different contracts:
//!
//! * **API errors** — the method call itself was malformed. Deterministic,
//!   identical across implementations, *never deferred* even in
//!   nonblocking mode, and guaranteed to have modified nothing.
//! * **Execution errors** — a well-formed call went wrong while running
//!   (out of bounds, out of memory, duplicate without dup, …). In
//!   nonblocking mode these may surface later: at any subsequent method
//!   involving the object, or at the latest at
//!   `wait(Materialize)`. After an execution error the output object's
//!   contents are undefined; we mark it *poisoned* and keep the error
//!   sticky until the object is cleared or rebuilt.
//!
//! §IX of the paper pins the numeric values of `GrB_Info`; [`Info`] and
//! the `code()` methods reproduce the C ABI values exactly so an FFI
//! binding can link-match.

use std::fmt;

use graphblas_sparse::FormatError;

/// The spec's `GrB_Info` result codes with their pinned numeric values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(i32)]
pub enum Info {
    /// `GrB_SUCCESS`.
    Success = 0,
    /// `GrB_NO_VALUE` — the element requested does not exist.
    NoValue = 1,
    // API errors.
    /// `GrB_UNINITIALIZED_OBJECT`.
    UninitializedObject = -1,
    /// `GrB_NULL_POINTER`.
    NullPointer = -2,
    /// `GrB_INVALID_VALUE`.
    InvalidValue = -3,
    /// `GrB_INVALID_INDEX`.
    InvalidIndex = -4,
    /// `GrB_DOMAIN_MISMATCH`.
    DomainMismatch = -5,
    /// `GrB_DIMENSION_MISMATCH`.
    DimensionMismatch = -6,
    /// `GrB_OUTPUT_NOT_EMPTY`.
    OutputNotEmpty = -7,
    /// `GrB_NOT_IMPLEMENTED`.
    NotImplemented = -8,
    /// Extension (not in the C enum): operands belong to different
    /// execution contexts, violating §IV's shared-context requirement.
    ContextMismatch = -9,
    // Execution errors.
    /// `GrB_PANIC`.
    Panic = -101,
    /// `GrB_OUT_OF_MEMORY`.
    OutOfMemory = -102,
    /// `GrB_INSUFFICIENT_SPACE`.
    InsufficientSpace = -103,
    /// `GrB_INVALID_OBJECT`.
    InvalidObject = -104,
    /// `GrB_INDEX_OUT_OF_BOUNDS`.
    IndexOutOfBounds = -105,
    /// `GrB_EMPTY_OBJECT`.
    EmptyObject = -106,
}

/// A malformed method call. Returned immediately; the spec guarantees no
/// arguments or program data were modified.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ApiError {
    /// An object handle was used before being initialized.
    UninitializedObject,
    /// A required reference was absent (C's NULL-pointer class).
    NullPointer,
    /// A flag or size argument is outside its legal set.
    InvalidValue,
    /// An index argument is outside the object's dimensions.
    InvalidIndex,
    /// Operator/container domains are incompatible.
    DomainMismatch,
    /// Container shapes are incompatible.
    DimensionMismatch,
    /// `build` requires an empty output object.
    OutputNotEmpty,
    /// The requested variant is not provided by this implementation.
    NotImplemented,
    /// Operands belong to different execution contexts (§IV).
    ContextMismatch,
}

impl ApiError {
    /// The corresponding `GrB_Info` classification.
    pub fn info(self) -> Info {
        match self {
            ApiError::UninitializedObject => Info::UninitializedObject,
            ApiError::NullPointer => Info::NullPointer,
            ApiError::InvalidValue => Info::InvalidValue,
            ApiError::InvalidIndex => Info::InvalidIndex,
            ApiError::DomainMismatch => Info::DomainMismatch,
            ApiError::DimensionMismatch => Info::DimensionMismatch,
            ApiError::OutputNotEmpty => Info::OutputNotEmpty,
            ApiError::NotImplemented => Info::NotImplemented,
            ApiError::ContextMismatch => Info::ContextMismatch,
        }
    }

    /// The pinned `GrB_Info` integer value (§IX).
    pub fn code(self) -> i32 {
        self.info() as i32
    }
}

/// The category of an execution error.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecErrorKind {
    /// Unrecoverable internal failure.
    Panic,
    /// Allocation failure.
    OutOfMemory,
    /// A caller-provided output buffer is too small (import/export paths).
    InsufficientSpace,
    /// An opaque object failed internal consistency checks (e.g. duplicate
    /// coordinates with no dup combiner).
    InvalidObject,
    /// A computed index went out of bounds during execution.
    IndexOutOfBounds,
    /// An object that must hold a value is empty (e.g. the `Scalar`
    /// identity passed to `Monoid::new_scalar`).
    EmptyObject,
}

impl ExecErrorKind {
    pub fn info(self) -> Info {
        match self {
            ExecErrorKind::Panic => Info::Panic,
            ExecErrorKind::OutOfMemory => Info::OutOfMemory,
            ExecErrorKind::InsufficientSpace => Info::InsufficientSpace,
            ExecErrorKind::InvalidObject => Info::InvalidObject,
            ExecErrorKind::IndexOutOfBounds => Info::IndexOutOfBounds,
            ExecErrorKind::EmptyObject => Info::EmptyObject,
        }
    }

    /// Stable kebab-case name, used as the detail string of
    /// `error-raised` provenance events.
    pub fn name(self) -> &'static str {
        match self {
            ExecErrorKind::Panic => "panic",
            ExecErrorKind::OutOfMemory => "out-of-memory",
            ExecErrorKind::InsufficientSpace => "insufficient-space",
            ExecErrorKind::InvalidObject => "invalid-object",
            ExecErrorKind::IndexOutOfBounds => "index-out-of-bounds",
            ExecErrorKind::EmptyObject => "empty-object",
        }
    }
}

/// An execution error with its implementation-defined description — the
/// string `GrB_error` hands back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecutionError {
    pub kind: ExecErrorKind,
    pub message: String,
}

impl ExecutionError {
    pub fn new(kind: ExecErrorKind, message: impl Into<String>) -> Self {
        if graphblas_obs::enabled() {
            // grblint: allow(relaxed-ordering); grbsa: protocol(counter) — monotonic obs counter.
            graphblas_obs::counters::pending()
                .errors_raised
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            graphblas_obs::events::decision_error_raised(
                kind.name(),
                (-(kind.info() as i32)) as u64,
            );
        }
        ExecutionError {
            kind,
            message: message.into(),
        }
    }

    /// The pinned `GrB_Info` integer value (§IX).
    pub fn code(&self) -> i32 {
        self.kind.info() as i32
    }
}

/// Any GraphBLAS failure.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    Api(ApiError),
    Execution(ExecutionError),
}

impl Error {
    pub fn code(&self) -> i32 {
        match self {
            Error::Api(e) => e.code(),
            Error::Execution(e) => e.code(),
        }
    }

    pub fn is_api(&self) -> bool {
        matches!(self, Error::Api(_))
    }

    pub fn is_execution(&self) -> bool {
        matches!(self, Error::Execution(_))
    }

    pub(crate) fn exec(kind: ExecErrorKind, message: impl Into<String>) -> Self {
        Error::Execution(ExecutionError::new(kind, message))
    }
}

impl fmt::Display for ApiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ApiError::UninitializedObject => "uninitialized object",
            ApiError::NullPointer => "null pointer",
            ApiError::InvalidValue => "invalid value",
            ApiError::InvalidIndex => "invalid index",
            ApiError::DomainMismatch => "domain mismatch",
            ApiError::DimensionMismatch => "dimension mismatch",
            ApiError::OutputNotEmpty => "output not empty",
            ApiError::NotImplemented => "not implemented",
            ApiError::ContextMismatch => "operands belong to different contexts",
        };
        write!(f, "GraphBLAS API error ({}): {name}", self.code())
    }
}

impl fmt::Display for ExecutionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "GraphBLAS execution error ({}): {}",
            self.code(),
            self.message
        )
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Api(e) => e.fmt(f),
            Error::Execution(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for Error {}

impl From<ApiError> for Error {
    fn from(e: ApiError) -> Self {
        Error::Api(e)
    }
}

impl From<ExecutionError> for Error {
    fn from(e: ExecutionError) -> Self {
        Error::Execution(e)
    }
}

/// Storage-format validation failures become execution errors: the call was
/// well-formed, the *data* was not. (Import argument-shape problems are
/// caught as API errors before conversion.)
impl From<FormatError> for Error {
    fn from(e: FormatError) -> Self {
        let kind = match &e {
            FormatError::IndexOutOfBounds { .. } => ExecErrorKind::IndexOutOfBounds,
            FormatError::Duplicate { .. } => ExecErrorKind::InvalidObject,
            _ => ExecErrorKind::InvalidObject,
        };
        Error::exec(kind, e.to_string())
    }
}

/// Shorthand used throughout the crate.
pub type GrbResult<T = ()> = Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_match_the_pinned_spec_values() {
        assert_eq!(Info::Success as i32, 0);
        assert_eq!(Info::NoValue as i32, 1);
        assert_eq!(ApiError::UninitializedObject.code(), -1);
        assert_eq!(ApiError::NullPointer.code(), -2);
        assert_eq!(ApiError::InvalidValue.code(), -3);
        assert_eq!(ApiError::InvalidIndex.code(), -4);
        assert_eq!(ApiError::DomainMismatch.code(), -5);
        assert_eq!(ApiError::DimensionMismatch.code(), -6);
        assert_eq!(ApiError::OutputNotEmpty.code(), -7);
        assert_eq!(ApiError::NotImplemented.code(), -8);
        assert_eq!(ExecutionError::new(ExecErrorKind::Panic, "x").code(), -101);
        assert_eq!(
            ExecutionError::new(ExecErrorKind::OutOfMemory, "x").code(),
            -102
        );
        assert_eq!(
            ExecutionError::new(ExecErrorKind::InsufficientSpace, "x").code(),
            -103
        );
        assert_eq!(
            ExecutionError::new(ExecErrorKind::InvalidObject, "x").code(),
            -104
        );
        assert_eq!(
            ExecutionError::new(ExecErrorKind::IndexOutOfBounds, "x").code(),
            -105
        );
        assert_eq!(
            ExecutionError::new(ExecErrorKind::EmptyObject, "x").code(),
            -106
        );
    }

    #[test]
    fn classification() {
        let api: Error = ApiError::DimensionMismatch.into();
        assert!(api.is_api() && !api.is_execution());
        let exec = Error::exec(ExecErrorKind::IndexOutOfBounds, "row 9 of 4");
        assert!(exec.is_execution());
        assert!(exec.to_string().contains("row 9 of 4"));
    }

    #[test]
    fn format_error_mapping() {
        let e: Error = FormatError::IndexOutOfBounds {
            index: 7,
            bound: 3,
            axis: "row",
        }
        .into();
        assert_eq!(e.code(), -105);
        let d: Error = FormatError::Duplicate { row: 1, col: 2 }.into();
        assert_eq!(d.code(), -104);
    }
}
