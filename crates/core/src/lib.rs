//! # graphblas-core — the GraphBLAS 2.0 API for Rust
//!
//! A complete realization of the GraphBLAS 2.0 specification introduced in
//! *Brock, Buluç, Mattson, McMillan, Moreira — "Introduction to GraphBLAS
//! 2.0", IPDPSW (GrAPL) 2021*: graph algorithms expressed as sparse linear
//! algebra over arbitrary semirings, with the 2.0 additions —
//! multithreading semantics and completion (`wait`), hierarchical execution
//! contexts, the two-tier error model, the `Scalar` object, non-opaque
//! import/export, opaque serialization, and index-aware operators
//! (`select` and the index-unary `apply` variants).
//!
//! ## Quick start
//!
//! ```
//! use graphblas_core as grb;
//! use grb::{Matrix, Vector, Semiring, Descriptor, no_mask_v};
//!
//! // A tiny directed graph as a boolean adjacency matrix.
//! let a = Matrix::<bool>::new(3, 3).unwrap();
//! a.build(&[0, 1, 2], &[1, 2, 0], &[true, true, true], None).unwrap();
//!
//! // One step of frontier expansion: y = frontier ⊕.⊗ A over LOR.LAND.
//! let frontier = Vector::<bool>::new(3).unwrap();
//! frontier.set_element(true, 0).unwrap();
//! let next = Vector::<bool>::new(3).unwrap();
//! grb::operations::vxm(
//!     &next, no_mask_v(), None,
//!     &Semiring::lor_land(), &frontier, &a, &Descriptor::default(),
//! ).unwrap();
//! assert_eq!(next.extract_element(1).unwrap(), Some(true));
//! ```

// `dyn Fn` operator fields and stage closures are the domain model here;
// aliasing every signature would hide more than it reveals.
#![allow(clippy::type_complexity)]

pub(crate) mod bytesio;
pub mod dag;
pub mod descriptor;
pub mod error;
pub mod introspect;
pub mod matrix;
pub mod operations;
pub mod ops;
pub mod pending;
pub mod scalar;
pub mod serialize;
pub mod transfer;
pub mod types;
pub mod vector;
pub(crate) mod write;

pub use descriptor::Descriptor;
pub use error::{ApiError, Error, ExecErrorKind, ExecutionError, GrbResult, Info};
pub use introspect::{grb_check, Check, CheckError, ObjectStats};
pub use matrix::Matrix;
pub use ops::{BinaryOp, IndexUnaryOp, Monoid, Semiring, UnaryOp};
pub use pending::WaitMode;
pub use scalar::Scalar;
pub use transfer::{Format, VectorFormat};
pub use types::{Index, MaskValue, ValueType};
pub use vector::Vector;

// Execution-context surface (§III, §IV) re-exported from the substrate.
pub use graphblas_exec::{global_context, Context, ContextOptions, Mode};

/// `GrB_init`: establishes the top-level context. Returns `false` (no-op)
/// when the library was already initialized.
pub fn init(mode: Mode) -> bool {
    graphblas_exec::init(mode)
}

/// `GrB_finalize`: tears down the top-level context. Outstanding object
/// handles keep their contexts alive; new objects after a later [`init`]
/// join the fresh tree. If `GRB_TRACE=<path>` is set, the collected
/// per-thread timeline is flushed there as Chrome-trace JSON on the way
/// out (programs that never finalize can flush explicitly via
/// `graphblas_obs::timeline::write_trace_if_requested`).
pub fn finalize() {
    graphblas_obs::timeline::write_trace_if_requested();
    graphblas_exec::finalize()
}

/// The idiomatic spelling of "no mask" (`GrB_NULL` mask in C): fixes the
/// mask's type parameter so call sites don't need a turbofish.
pub fn no_mask<'a>() -> Option<&'a Matrix<bool>> {
    None
}

/// The vector form of [`no_mask`].
pub fn no_mask_v<'a>() -> Option<&'a Vector<bool>> {
    None
}
