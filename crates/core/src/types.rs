//! Core type vocabulary: indices, value domains, and the numeric helper
//! traits that predefined operators are built from.

/// The GraphBLAS index type (`GrB_Index`). The C API pins this to `uint64_t`;
/// in Rust the idiomatic equivalent for in-memory containers is `usize`.
pub type Index = usize;

/// The bound every stored element type must satisfy (a GraphBLAS *domain*,
/// `GrB_Type`). A blanket impl covers all eligible types, including
/// user-defined structs — the Rust analogue of `GrB_Type_new`.
pub trait ValueType: Clone + Send + Sync + std::fmt::Debug + 'static {}

impl<T: Clone + Send + Sync + std::fmt::Debug + 'static> ValueType for T {}

/// Values usable as mask elements: a present element contributes to the
/// mask iff it is "truthy" (the C spec's nonzero test). Structure-only
/// masks ignore truthiness entirely.
pub trait MaskValue: ValueType {
    /// Whether a present mask element admits writes at its position.
    fn is_truthy(&self) -> bool;
}

impl MaskValue for bool {
    fn is_truthy(&self) -> bool {
        *self
    }
}

macro_rules! impl_mask_int {
    ($($t:ty),*) => {
        $(impl MaskValue for $t {
            fn is_truthy(&self) -> bool {
                *self != 0
            }
        })*
    };
}

impl_mask_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl MaskValue for f32 {
    fn is_truthy(&self) -> bool {
        *self != 0.0
    }
}

impl MaskValue for f64 {
    fn is_truthy(&self) -> bool {
        *self != 0.0
    }
}

/// Types with an additive identity (used by PLUS monoids and friends).
pub trait Zero: Sized {
    /// The additive identity.
    fn zero() -> Self;
}

/// Types with a multiplicative identity (used by TIMES/PAIR monoids).
pub trait One: Sized {
    /// The multiplicative identity.
    fn one() -> Self;
}

/// Types with minimum/maximum values (identities of MAX/MIN monoids).
pub trait BoundedValue: Sized {
    /// The least value of the type (MAX monoid identity).
    fn min_value() -> Self;
    /// The greatest value of the type (MIN monoid identity).
    fn max_value() -> Self;
}

macro_rules! impl_numeric {
    ($($t:ty),*) => {
        $(
            impl Zero for $t {
                fn zero() -> Self { 0 as $t }
            }
            impl One for $t {
                fn one() -> Self { 1 as $t }
            }
            impl BoundedValue for $t {
                fn min_value() -> Self { <$t>::MIN }
                fn max_value() -> Self { <$t>::MAX }
            }
        )*
    };
}

impl_numeric!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f32, f64);

impl Zero for bool {
    fn zero() -> Self {
        false
    }
}

impl One for bool {
    fn one() -> Self {
        true
    }
}

impl BoundedValue for bool {
    fn min_value() -> Self {
        false
    }
    fn max_value() -> Self {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_truthiness() {
        assert!(true.is_truthy());
        assert!(!false.is_truthy());
        assert!(5i32.is_truthy());
        assert!(!0u64.is_truthy());
        assert!((-1.5f64).is_truthy());
        assert!(!0.0f32.is_truthy());
    }

    #[test]
    fn identities() {
        assert_eq!(i32::zero(), 0);
        assert_eq!(f64::one(), 1.0);
        assert_eq!(<u8 as BoundedValue>::max_value(), 255);
        assert_eq!(<i16 as BoundedValue>::min_value(), -32768);
        assert!(bool::one());
        assert!(!bool::zero());
    }

    fn assert_value_type<T: ValueType>() {}

    #[derive(Clone, Debug)]
    struct Custom {
        #[allow(dead_code)]
        weight: f64,
    }

    #[test]
    fn user_defined_types_are_domains() {
        assert_value_type::<Custom>();
        assert_value_type::<(u32, u32)>();
        assert_value_type::<String>();
    }
}
