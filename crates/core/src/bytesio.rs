//! Minimal little-endian byte cursor helpers for the opaque serialization
//! format (§VII.B).
//!
//! The workspace builds offline with no external crates, so the reader and
//! writer extension traits here provide the small `Buf`/`BufMut`-shaped
//! surface `serialize.rs` needs: appending fixed-width little-endian
//! integers to a `Vec<u8>`, and consuming them from a shrinking `&[u8]`.
//!
//! Reader methods **panic on underflow** (like their `bytes`-crate
//! namesakes); callers bounds-check first, which `serialize.rs` does
//! before every read.

/// Little-endian appends onto a growable byte buffer.
pub(crate) trait ByteWriteExt {
    fn put_u16_le(&mut self, v: u16);
    fn put_u32_le(&mut self, v: u32);
    fn put_u64_le(&mut self, v: u64);
    fn put_i64_le(&mut self, v: i64);
}

impl ByteWriteExt for Vec<u8> {
    fn put_u16_le(&mut self, v: u16) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u32_le(&mut self, v: u32) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_i64_le(&mut self, v: i64) {
        self.extend_from_slice(&v.to_le_bytes());
    }
}

/// Little-endian reads from a shrinking slice cursor.
pub(crate) trait ByteReadExt {
    /// Drops the first `n` bytes. Panics when fewer remain.
    fn advance(&mut self, n: usize);
    fn get_u8(&mut self) -> u8;
    fn get_u16_le(&mut self) -> u16;
    fn get_u32_le(&mut self) -> u32;
    fn get_u64_le(&mut self) -> u64;
    fn get_i64_le(&mut self) -> i64;
}

macro_rules! read_le {
    ($input:expr, $t:ty) => {{
        const N: usize = std::mem::size_of::<$t>();
        let mut b = [0u8; N];
        b.copy_from_slice(&$input[..N]);
        *$input = &$input[N..];
        <$t>::from_le_bytes(b)
    }};
}

impl ByteReadExt for &[u8] {
    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
    fn get_u8(&mut self) -> u8 {
        read_le!(self, u8)
    }
    fn get_u16_le(&mut self) -> u16 {
        read_le!(self, u16)
    }
    fn get_u32_le(&mut self) -> u32 {
        read_le!(self, u32)
    }
    fn get_u64_le(&mut self) -> u64 {
        read_le!(self, u64)
    }
    fn get_i64_le(&mut self) -> i64 {
        read_le!(self, i64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_roundtrip() {
        let mut buf = Vec::new();
        buf.put_u16_le(0x1234);
        buf.put_u32_le(0xdeadbeef);
        buf.put_u64_le(u64::MAX - 1);
        buf.put_i64_le(-42);
        buf.push(7);
        let mut r: &[u8] = &buf;
        assert_eq!(r.get_u16_le(), 0x1234);
        assert_eq!(r.get_u32_le(), 0xdeadbeef);
        assert_eq!(r.get_u64_le(), u64::MAX - 1);
        assert_eq!(r.get_i64_le(), -42);
        assert_eq!(r.get_u8(), 7);
        assert!(r.is_empty());
    }

    #[test]
    fn advance_consumes() {
        let buf = [1u8, 2, 3, 4];
        let mut r: &[u8] = &buf;
        r.advance(3);
        assert_eq!(r, &[4]);
    }
}
