//! Randomized property tests for the API layer: algebraic laws of the
//! predefined operators, operation equivalences, and mode-independence
//! (blocking vs nonblocking must be observationally identical). Inputs
//! come from the deterministic `graphblas_exec::rng` generator.

use graphblas_core::operations::{apply_indexop, assign, extract, select, select_v};
use graphblas_core::{
    global_context, no_mask, no_mask_v, Context, ContextOptions, Descriptor, Index, IndexUnaryOp,
    Matrix, Mode, Monoid, Semiring, Vector, WaitMode,
};
use graphblas_exec::rng::prelude::*;
use std::collections::BTreeMap;

const CASES: usize = 40;

type Entries = BTreeMap<(Index, Index), i64>;

fn mat(shape: (usize, usize), e: &Entries) -> Matrix<i64> {
    let m = Matrix::<i64>::new(shape.0, shape.1).unwrap();
    m.build(
        &e.keys().map(|k| k.0).collect::<Vec<_>>(),
        &e.keys().map(|k| k.1).collect::<Vec<_>>(),
        &e.values().copied().collect::<Vec<_>>(),
        None,
    )
    .unwrap();
    m
}

fn ents(m: &Matrix<i64>) -> Entries {
    let (r, c, v) = m.extract_tuples().unwrap();
    r.into_iter().zip(c).zip(v).collect()
}

fn random_entries(rng: &mut StdRng, rows: usize, cols: usize) -> Entries {
    (0..rng.gen_range(0..35usize))
        .map(|_| {
            (
                (rng.gen_range(0..rows), rng.gen_range(0..cols)),
                rng.gen_range(-30..30i64),
            )
        })
        .collect()
}

#[test]
fn monoid_laws_on_random_values() {
    let mut rng = StdRng::seed_from_u64(0x303D);
    for _ in 0..CASES {
        let (x, y, z) = (
            rng.gen_range(-1000..1000i64),
            rng.gen_range(-1000..1000i64),
            rng.gen_range(-1000..1000i64),
        );
        for m in [
            Monoid::<i64>::plus(),
            Monoid::<i64>::min(),
            Monoid::<i64>::max(),
        ] {
            // identity
            assert_eq!(m.apply(m.identity(), &x), x);
            assert_eq!(m.apply(&x, m.identity()), x);
            // associativity
            assert_eq!(m.apply(&m.apply(&x, &y), &z), m.apply(&x, &m.apply(&y, &z)));
            // commutativity
            assert_eq!(m.apply(&x, &y), m.apply(&y, &x));
        }
    }
}

#[test]
fn semiring_distributivity_spot() {
    let mut rng = StdRng::seed_from_u64(0x5E31);
    for _ in 0..CASES {
        let (x, y, z) = (
            rng.gen_range(-50..50i64),
            rng.gen_range(-50..50i64),
            rng.gen_range(-50..50i64),
        );
        // min-plus: z + min(x, y) == min(z + x, z + y)
        let sr = Semiring::<i64, i64, i64>::min_plus();
        assert_eq!(
            sr.multiply(&z, &sr.combine(&x, &y)),
            sr.combine(&sr.multiply(&z, &x), &sr.multiply(&z, &y))
        );
    }
}

#[test]
fn select_equals_filter_reference() {
    let mut rng = StdRng::seed_from_u64(0x5E1E);
    for _ in 0..CASES {
        let a = random_entries(&mut rng, 9, 9);
        let s = rng.gen_range(-20..20i64);
        let am = mat((9, 9), &a);
        let c = Matrix::<i64>::new(9, 9).unwrap();
        select(
            &c,
            no_mask(),
            None,
            &IndexUnaryOp::valuegt(),
            &am,
            s,
            &Descriptor::default(),
        )
        .unwrap();
        let expect: Entries = a
            .iter()
            .filter(|(_, &v)| v > s)
            .map(|(&k, &v)| (k, v))
            .collect();
        assert_eq!(ents(&c), expect);
    }
}

#[test]
fn tril_plus_strict_triu_is_identity_decomposition() {
    let mut rng = StdRng::seed_from_u64(0x7817);
    for _ in 0..CASES {
        let a = random_entries(&mut rng, 10, 10);
        let am = mat((10, 10), &a);
        let lo = Matrix::<i64>::new(10, 10).unwrap();
        let hi = Matrix::<i64>::new(10, 10).unwrap();
        select(
            &lo,
            no_mask(),
            None,
            &IndexUnaryOp::tril(),
            &am,
            0i64,
            &Descriptor::default(),
        )
        .unwrap();
        select(
            &hi,
            no_mask(),
            None,
            &IndexUnaryOp::triu(),
            &am,
            1i64,
            &Descriptor::default(),
        )
        .unwrap();
        let mut merged = ents(&lo);
        merged.extend(ents(&hi));
        assert_eq!(merged, a);
    }
}

#[test]
fn apply_rowindex_matches_coordinates() {
    let mut rng = StdRng::seed_from_u64(0xA881);
    for _ in 0..CASES {
        let a = random_entries(&mut rng, 8, 12);
        let am = mat((8, 12), &a);
        let c = Matrix::<i64>::new(8, 12).unwrap();
        apply_indexop(
            &c,
            no_mask(),
            None,
            &IndexUnaryOp::rowindex(),
            &am,
            7i64,
            &Descriptor::default(),
        )
        .unwrap();
        for ((i, _), v) in ents(&c) {
            assert_eq!(v, i as i64 + 7);
        }
        assert_eq!(c.nvals().unwrap(), a.len());
    }
}

#[test]
fn extract_then_assign_roundtrips_region() {
    let mut rng = StdRng::seed_from_u64(0xE074);
    for _ in 0..CASES {
        let a = random_entries(&mut rng, 10, 10);
        let rows: Vec<usize> = {
            let set: std::collections::BTreeSet<usize> = (0..rng.gen_range(1..5usize))
                .map(|_| rng.gen_range(0..10))
                .collect();
            set.into_iter().collect()
        };
        let cols: Vec<usize> = {
            let set: std::collections::BTreeSet<usize> = (0..rng.gen_range(1..5usize))
                .map(|_| rng.gen_range(0..10))
                .collect();
            set.into_iter().collect()
        };
        // Extract a region, then assign it back: the matrix is unchanged.
        let am = mat((10, 10), &a);
        let sub = Matrix::<i64>::new(rows.len(), cols.len()).unwrap();
        extract(
            &sub,
            no_mask(),
            None,
            &am,
            &rows,
            &cols,
            &Descriptor::default(),
        )
        .unwrap();
        assign(
            &am,
            no_mask(),
            None,
            &sub,
            &rows,
            &cols,
            &Descriptor::default(),
        )
        .unwrap();
        assert_eq!(ents(&am), a);
    }
}

#[test]
fn blocking_and_nonblocking_pipelines_agree() {
    let mut rng = StdRng::seed_from_u64(0xB10C);
    for _ in 0..CASES {
        let a = random_entries(&mut rng, 8, 8);
        let threshold = rng.gen_range(-20..20i64);
        let shift = rng.gen_range(-5..5i64);
        let run = |mode: Mode| {
            let ctx = Context::new(&global_context(), mode, ContextOptions::default());
            let m = Matrix::<i64>::new_in(&ctx, 8, 8).unwrap();
            m.build(
                &a.keys().map(|k| k.0).collect::<Vec<_>>(),
                &a.keys().map(|k| k.1).collect::<Vec<_>>(),
                &a.values().copied().collect::<Vec<_>>(),
                None,
            )
            .unwrap();
            // In-place chain: shift values, drop small ones, re-shift.
            graphblas_core::operations::apply(
                &m,
                no_mask(),
                None,
                &graphblas_core::UnaryOp::new("shift", move |x: &i64| x + shift),
                &m,
                &Descriptor::default(),
            )
            .unwrap();
            select(
                &m,
                no_mask(),
                None,
                &IndexUnaryOp::valuegt(),
                &m,
                threshold,
                &Descriptor::default(),
            )
            .unwrap();
            graphblas_core::operations::apply(
                &m,
                no_mask(),
                None,
                &graphblas_core::UnaryOp::new("unshift", move |x: &i64| x - shift),
                &m,
                &Descriptor::default(),
            )
            .unwrap();
            m.wait(WaitMode::Materialize).unwrap();
            ents(&m)
        };
        assert_eq!(run(Mode::Blocking), run(Mode::NonBlocking));
    }
}

#[test]
fn diag_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0xD1A6);
    for _ in 0..CASES {
        let values: BTreeMap<usize, i64> = (0..rng.gen_range(1..12usize))
            .map(|_| (rng.gen_range(0..12usize), rng.gen_range(-40..40i64)))
            .collect();
        let k = rng.gen_range(-3..4i64);
        let v = Vector::<i64>::new(12).unwrap();
        v.build(
            &values.keys().copied().collect::<Vec<_>>(),
            &values.values().copied().collect::<Vec<_>>(),
            None,
        )
        .unwrap();
        let m = Matrix::diag(&v, k).unwrap();
        assert_eq!(m.nvals().unwrap(), values.len());
        let back = m.extract_diag(k).unwrap();
        let (bi, bv) = back.extract_tuples().unwrap();
        let got: BTreeMap<usize, i64> = bi.into_iter().zip(bv).collect();
        assert_eq!(got, values);
    }
}

#[test]
fn serialize_is_stable_under_storage_format() {
    let mut rng = StdRng::seed_from_u64(0x5E2A);
    for _ in 0..CASES {
        let a = random_entries(&mut rng, 7, 7);
        // The serialized stream must not depend on the internal format the
        // object happens to be in.
        let am = mat((7, 7), &a);
        am.wait(WaitMode::Materialize).unwrap();
        let bytes1 = am.serialize().unwrap();
        // Force a different internal journey: export COO, re-import.
        let (p, i, vv) = am.export(graphblas_core::Format::Coo).unwrap();
        let m2 =
            Matrix::<i64>::import(7, 7, graphblas_core::Format::Coo, Some(p), Some(i), vv).unwrap();
        let bytes2 = m2.serialize().unwrap();
        assert_eq!(bytes1, bytes2);
    }
}

#[test]
fn vector_select_value_partition() {
    let mut rng = StdRng::seed_from_u64(0x5EC7);
    for _ in 0..CASES {
        let values: BTreeMap<usize, i64> = (0..rng.gen_range(0..20usize))
            .map(|_| (rng.gen_range(0..20usize), rng.gen_range(-30..30i64)))
            .collect();
        let s = rng.gen_range(-10..10i64);
        let u = Vector::<i64>::new(20).unwrap();
        u.build(
            &values.keys().copied().collect::<Vec<_>>(),
            &values.values().copied().collect::<Vec<_>>(),
            None,
        )
        .unwrap();
        let hi = Vector::<i64>::new(20).unwrap();
        let lo = Vector::<i64>::new(20).unwrap();
        select_v(
            &hi,
            no_mask_v(),
            None,
            &IndexUnaryOp::valuegt(),
            &u,
            s,
            &Descriptor::default(),
        )
        .unwrap();
        select_v(
            &lo,
            no_mask_v(),
            None,
            &IndexUnaryOp::valuele(),
            &u,
            s,
            &Descriptor::default(),
        )
        .unwrap();
        assert_eq!(hi.nvals().unwrap() + lo.nvals().unwrap(), values.len());
    }
}

#[test]
fn mxm_with_plus_pair_counts_structural_products() {
    let mut rng = StdRng::seed_from_u64(0x3838);
    for _ in 0..CASES {
        let a = random_entries(&mut rng, 8, 8);
        let b = random_entries(&mut rng, 8, 8);
        let am = mat((8, 8), &a);
        let bm = mat((8, 8), &b);
        let c = Matrix::<u64>::new(8, 8).unwrap();
        graphblas_core::operations::mxm(
            &c,
            no_mask(),
            None,
            &Semiring::<i64, i64, u64>::plus_pair(),
            &am,
            &bm,
            &Descriptor::default(),
        )
        .unwrap();
        // Reference: count of k such that A(i,k) and B(k,j) exist.
        let (r, cc, v) = c.extract_tuples().unwrap();
        for ((i, j), count) in r.into_iter().zip(cc).zip(v) {
            let expect = (0..8)
                .filter(|&k| a.contains_key(&(i, k)) && b.contains_key(&(k, j)))
                .count() as u64;
            assert_eq!(count, expect);
        }
    }
}
