//! Property tests for the API layer: algebraic laws of the predefined
//! operators, operation equivalences, and mode-independence (blocking vs
//! nonblocking must be observationally identical).

use graphblas_core::operations::{
    apply_indexop, assign, extract, select, select_v,
};
use graphblas_core::{
    global_context, no_mask, no_mask_v, Context, ContextOptions, Descriptor, Index,
    IndexUnaryOp, Matrix, Mode, Monoid, Semiring, Vector, WaitMode,
};
use proptest::prelude::*;
use std::collections::BTreeMap;

type Entries = BTreeMap<(Index, Index), i64>;

fn mat(shape: (usize, usize), e: &Entries) -> Matrix<i64> {
    let m = Matrix::<i64>::new(shape.0, shape.1).unwrap();
    m.build(
        &e.keys().map(|k| k.0).collect::<Vec<_>>(),
        &e.keys().map(|k| k.1).collect::<Vec<_>>(),
        &e.values().copied().collect::<Vec<_>>(),
        None,
    )
    .unwrap();
    m
}

fn ents(m: &Matrix<i64>) -> Entries {
    let (r, c, v) = m.extract_tuples().unwrap();
    r.into_iter().zip(c).zip(v).collect()
}

fn arb(rows: usize, cols: usize) -> impl Strategy<Value = Entries> {
    proptest::collection::btree_map((0..rows, 0..cols), -30i64..30, 0..35)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn monoid_laws_on_random_values(x in -1000i64..1000, y in -1000i64..1000, z in -1000i64..1000) {
        for m in [Monoid::<i64>::plus(), Monoid::<i64>::min(), Monoid::<i64>::max()] {
            // identity
            prop_assert_eq!(m.apply(m.identity(), &x), x);
            prop_assert_eq!(m.apply(&x, m.identity()), x);
            // associativity
            prop_assert_eq!(
                m.apply(&m.apply(&x, &y), &z),
                m.apply(&x, &m.apply(&y, &z))
            );
            // commutativity
            prop_assert_eq!(m.apply(&x, &y), m.apply(&y, &x));
        }
    }

    #[test]
    fn semiring_distributivity_spot(x in -50i64..50, y in -50i64..50, z in -50i64..50) {
        // min-plus: z + min(x, y) == min(z + x, z + y)
        let sr = Semiring::<i64, i64, i64>::min_plus();
        prop_assert_eq!(
            sr.multiply(&z, &sr.combine(&x, &y)),
            sr.combine(&sr.multiply(&z, &x), &sr.multiply(&z, &y))
        );
    }

    #[test]
    fn select_equals_filter_reference(a in arb(9, 9), s in -20i64..20) {
        let am = mat((9, 9), &a);
        let c = Matrix::<i64>::new(9, 9).unwrap();
        select(&c, no_mask(), None, &IndexUnaryOp::valuegt(), &am, s,
            &Descriptor::default()).unwrap();
        let expect: Entries = a.iter().filter(|(_, &v)| v > s)
            .map(|(&k, &v)| (k, v)).collect();
        prop_assert_eq!(ents(&c), expect);
    }

    #[test]
    fn tril_plus_strict_triu_is_identity_decomposition(a in arb(10, 10)) {
        let am = mat((10, 10), &a);
        let lo = Matrix::<i64>::new(10, 10).unwrap();
        let hi = Matrix::<i64>::new(10, 10).unwrap();
        select(&lo, no_mask(), None, &IndexUnaryOp::tril(), &am, 0i64,
            &Descriptor::default()).unwrap();
        select(&hi, no_mask(), None, &IndexUnaryOp::triu(), &am, 1i64,
            &Descriptor::default()).unwrap();
        let mut merged = ents(&lo);
        merged.extend(ents(&hi));
        prop_assert_eq!(merged, a);
    }

    #[test]
    fn apply_rowindex_matches_coordinates(a in arb(8, 12)) {
        let am = mat((8, 12), &a);
        let c = Matrix::<i64>::new(8, 12).unwrap();
        apply_indexop(&c, no_mask(), None, &IndexUnaryOp::rowindex(), &am, 7i64,
            &Descriptor::default()).unwrap();
        for ((i, _), v) in ents(&c) {
            prop_assert_eq!(v, i as i64 + 7);
        }
        prop_assert_eq!(c.nvals().unwrap(), a.len());
    }

    #[test]
    fn extract_then_assign_roundtrips_region(
        a in arb(10, 10),
        rows in proptest::collection::btree_set(0usize..10, 1..5),
        cols in proptest::collection::btree_set(0usize..10, 1..5),
    ) {
        // Extract a region, then assign it back: the matrix is unchanged.
        let rows: Vec<_> = rows.into_iter().collect();
        let cols: Vec<_> = cols.into_iter().collect();
        let am = mat((10, 10), &a);
        let sub = Matrix::<i64>::new(rows.len(), cols.len()).unwrap();
        extract(&sub, no_mask(), None, &am, &rows, &cols, &Descriptor::default()).unwrap();
        assign(&am, no_mask(), None, &sub, &rows, &cols, &Descriptor::default()).unwrap();
        prop_assert_eq!(ents(&am), a);
    }

    #[test]
    fn blocking_and_nonblocking_pipelines_agree(
        a in arb(8, 8),
        threshold in -20i64..20,
        shift in -5i64..5,
    ) {
        let run = |mode: Mode| {
            let ctx = Context::new(&global_context(), mode, ContextOptions::default());
            let m = Matrix::<i64>::new_in(&ctx, 8, 8).unwrap();
            m.build(
                &a.keys().map(|k| k.0).collect::<Vec<_>>(),
                &a.keys().map(|k| k.1).collect::<Vec<_>>(),
                &a.values().copied().collect::<Vec<_>>(),
                None,
            ).unwrap();
            // In-place chain: shift values, drop small ones, re-shift.
            graphblas_core::operations::apply(
                &m, no_mask(), None,
                &graphblas_core::UnaryOp::new("shift", move |x: &i64| x + shift),
                &m, &Descriptor::default(),
            ).unwrap();
            select(&m, no_mask(), None, &IndexUnaryOp::valuegt(), &m, threshold,
                &Descriptor::default()).unwrap();
            graphblas_core::operations::apply(
                &m, no_mask(), None,
                &graphblas_core::UnaryOp::new("unshift", move |x: &i64| x - shift),
                &m, &Descriptor::default(),
            ).unwrap();
            m.wait(WaitMode::Materialize).unwrap();
            ents(&m)
        };
        prop_assert_eq!(run(Mode::Blocking), run(Mode::NonBlocking));
    }

    #[test]
    fn diag_roundtrip(values in proptest::collection::btree_map(0usize..12, -40i64..40, 1..12), k in -3i64..4) {
        let v = Vector::<i64>::new(12).unwrap();
        v.build(
            &values.keys().copied().collect::<Vec<_>>(),
            &values.values().copied().collect::<Vec<_>>(),
            None,
        ).unwrap();
        let m = Matrix::diag(&v, k).unwrap();
        prop_assert_eq!(m.nvals().unwrap(), values.len());
        let back = m.extract_diag(k).unwrap();
        let (bi, bv) = back.extract_tuples().unwrap();
        let got: BTreeMap<usize, i64> = bi.into_iter().zip(bv).collect();
        prop_assert_eq!(got, values);
    }

    #[test]
    fn serialize_is_stable_under_storage_format(a in arb(7, 7)) {
        // The serialized stream must not depend on the internal format the
        // object happens to be in.
        let am = mat((7, 7), &a);
        am.wait(WaitMode::Materialize).unwrap();
        let bytes1 = am.serialize().unwrap();
        // Force a different internal journey: export COO, re-import.
        let (p, i, vv) = am.export(graphblas_core::Format::Coo).unwrap();
        let m2 = Matrix::<i64>::import(7, 7, graphblas_core::Format::Coo,
            Some(p), Some(i), vv).unwrap();
        let bytes2 = m2.serialize().unwrap();
        prop_assert_eq!(bytes1, bytes2);
    }

    #[test]
    fn vector_select_value_partition(
        values in proptest::collection::btree_map(0usize..20, -30i64..30, 0..20),
        s in -10i64..10,
    ) {
        let u = Vector::<i64>::new(20).unwrap();
        u.build(
            &values.keys().copied().collect::<Vec<_>>(),
            &values.values().copied().collect::<Vec<_>>(),
            None,
        ).unwrap();
        let hi = Vector::<i64>::new(20).unwrap();
        let lo = Vector::<i64>::new(20).unwrap();
        select_v(&hi, no_mask_v(), None, &IndexUnaryOp::valuegt(), &u, s,
            &Descriptor::default()).unwrap();
        select_v(&lo, no_mask_v(), None, &IndexUnaryOp::valuele(), &u, s,
            &Descriptor::default()).unwrap();
        prop_assert_eq!(hi.nvals().unwrap() + lo.nvals().unwrap(), values.len());
    }

    #[test]
    fn mxm_with_plus_pair_counts_structural_products(a in arb(8, 8), b in arb(8, 8)) {
        let am = mat((8, 8), &a);
        let bm = mat((8, 8), &b);
        let c = Matrix::<u64>::new(8, 8).unwrap();
        graphblas_core::operations::mxm(
            &c, no_mask(), None,
            &Semiring::<i64, i64, u64>::plus_pair(), &am, &bm,
            &Descriptor::default(),
        ).unwrap();
        // Reference: count of k such that A(i,k) and B(k,j) exist.
        let (r, cc, v) = c.extract_tuples().unwrap();
        for ((i, j), count) in r.into_iter().zip(cc).zip(v) {
            let expect = (0..8).filter(|&k| a.contains_key(&(i, k)) && b.contains_key(&(k, j))).count() as u64;
            prop_assert_eq!(count, expect);
        }
    }
}
