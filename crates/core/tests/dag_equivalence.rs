//! `GRB_NONBLOCKING=0` equivalence (paper §III): the fused op DAG has
//! full latitude to defer, reorder, and fuse — but a program must not be
//! able to tell. These tests run the same operation sequence three ways
//! (DAG on, DAG off = pre-DAG opaque queue, and a blocking context) and
//! assert the extracted tuples agree bit-for-bit.
//!
//! Runs as its own integration-test binary because the DAG knobs are
//! process-global; tests serialize on a local mutex and restore the
//! knobs before returning.

use std::sync::Mutex;

use graphblas_core::operations::{
    apply_v, assign_scalar_v, ewise_add_v, ewise_mult_v, extract_v, mxm, mxv, reduce_to_vector,
    select_v, transpose, vxm,
};
use graphblas_core::{
    dag, global_context, no_mask, no_mask_v, BinaryOp, Context, ContextOptions, Descriptor,
    IndexUnaryOp, Matrix, Mode, Semiring, UnaryOp, Vector, WaitMode,
};

static KNOBS: Mutex<()> = Mutex::new(());

/// Deterministic pseudo-random stream (no external crates).
fn lcg(seed: &mut u64) -> u64 {
    *seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    *seed >> 33
}

fn build_inputs(ctx: &Context, n: usize) -> (Matrix<f64>, Vector<f64>, Vector<bool>) {
    let a = Matrix::<f64>::new_in(ctx, n, n).unwrap();
    let mut seed = 0x5eed_1234u64;
    let mut rows = Vec::new();
    let mut cols = Vec::new();
    let mut vals = Vec::new();
    for i in 0..n {
        for _ in 0..6 {
            rows.push(i);
            cols.push((lcg(&mut seed) as usize) % n);
            vals.push(((lcg(&mut seed) % 1000) as f64) / 100.0);
        }
    }
    a.build(&rows, &cols, &vals, Some(&BinaryOp::<f64, f64, f64>::plus()))
        .unwrap();

    let u = Vector::<f64>::new_in(ctx, n).unwrap();
    let idx: Vec<usize> = (0..n).step_by(2).collect();
    let uvals: Vec<f64> = idx.iter().map(|&i| (i % 17) as f64 + 0.5).collect();
    u.build(&idx, &uvals, None).unwrap();

    let m = Vector::<bool>::new_in(ctx, n).unwrap();
    let midx: Vec<usize> = (0..n).step_by(3).collect();
    let mvals: Vec<bool> = midx.iter().map(|&i| i % 2 == 0).collect();
    m.build(&midx, &mvals, None).unwrap();
    (a, u, m)
}

/// One mixed pipeline covering every converted operation family: fusible
/// map chains feeding mxv/vxm (pre-side), in-place applies trailing a
/// node (post-side), masked vxm, accumulated merges, assign, extract,
/// reduce, mxm, and transpose.
fn run_pipeline(mode: Mode) -> (Vec<(usize, f64)>, Vec<(usize, usize, f64)>) {
    let n = 64;
    let ctx = Context::new(&global_context(), mode, ContextOptions::default());
    let (a, u, m) = build_inputs(&ctx, n);
    let sr = Semiring::<f64, f64, f64>::plus_times();
    let d = Descriptor::default();

    // Map chain on the input frontier (fuses into mxv's pre side).
    let inc = UnaryOp::new("inc", |x: &f64| x + 1.0);
    apply_v(&u, no_mask_v(), None, &inc, &u, &d).unwrap();
    apply_v(&u, no_mask_v(), None, &inc, &u, &d).unwrap();

    // mxv, then an in-place map trailing the node (fuses as post).
    let w = Vector::<f64>::new_in(&ctx, n).unwrap();
    mxv(&w, no_mask_v(), None, &sr, &a, &u, &d).unwrap();
    let halve = UnaryOp::new("halve", |x: &f64| x * 0.5);
    apply_v(&w, no_mask_v(), None, &halve, &w, &d).unwrap();

    // Masked vxm (push direction prefilters scatter columns).
    let y = Vector::<f64>::new_in(&ctx, n).unwrap();
    vxm(&y, Some(&m), None, &sr, &w, &a, &d).unwrap();
    // ... and the complemented mask with an accumulator.
    let yc = Vector::<f64>::new_in(&ctx, n).unwrap();
    vxm(
        &yc,
        Some(&m),
        Some(&BinaryOp::plus()),
        &sr,
        &u,
        &a,
        &Descriptor::new().complement_mask(),
    )
    .unwrap();

    // Select into a fresh output (Node), element-wise combine, assign.
    let big = Vector::<f64>::new_in(&ctx, n).unwrap();
    select_v(&big, no_mask_v(), None, &IndexUnaryOp::valuegt(), &y, 1.0, &d).unwrap();
    let z = Vector::<f64>::new_in(&ctx, n).unwrap();
    ewise_add_v(&z, no_mask_v(), None, &BinaryOp::plus(), &big, &yc, &d).unwrap();
    ewise_mult_v(&z, no_mask_v(), Some(&BinaryOp::plus()), &BinaryOp::times(), &z, &u, &d)
        .unwrap();
    assign_scalar_v(&z, no_mask_v(), None, 9.25, &[1, 3, 5], &d).unwrap();
    let ex = Vector::<f64>::new_in(&ctx, n / 2).unwrap();
    let sel: Vec<usize> = (0..n / 2).map(|i| n - 1 - i).collect();
    extract_v(&ex, no_mask_v(), None, &z, &sel, &d).unwrap();

    // Matrix side: mxm with a trailing in-place apply, transpose, reduce.
    let c = Matrix::<f64>::new_in(&ctx, n, n).unwrap();
    mxm(&c, no_mask(), None, &sr, &a, &a, &d).unwrap();
    let ct = Matrix::<f64>::new_in(&ctx, n, n).unwrap();
    transpose(&ct, no_mask(), None, &c, &d).unwrap();
    let r = Vector::<f64>::new_in(&ctx, n).unwrap();
    reduce_to_vector(&r, no_mask_v(), None, &graphblas_core::Monoid::plus(), &ct, &d).unwrap();

    let mut vec_out = Vec::new();
    for v in [&u, &w, &y, &yc, &big, &z, &ex, &r] {
        v.wait(WaitMode::Complete).unwrap();
        let (i, x) = v.extract_tuples().unwrap();
        vec_out.extend(i.into_iter().zip(x));
    }
    let (cr, cc, cv) = ct.extract_tuples().unwrap();
    let mat_out = cr
        .into_iter()
        .zip(cc)
        .zip(cv)
        .map(|((i, j), x)| (i, j, x))
        .collect();
    (vec_out, mat_out)
}

#[test]
fn dag_off_reproduces_dag_on_bit_for_bit() {
    let _g = KNOBS.lock().unwrap();
    dag::set_async_drain(Some(false));

    dag::set_nonblocking_dag(Some(true));
    let fused = run_pipeline(Mode::NonBlocking);
    dag::set_nonblocking_dag(Some(false));
    let opaque = run_pipeline(Mode::NonBlocking);

    dag::set_nonblocking_dag(None);
    dag::set_async_drain(None);
    assert_eq!(fused.0, opaque.0, "vector outputs must match bit-for-bit");
    assert_eq!(fused.1, opaque.1, "matrix outputs must match bit-for-bit");
}

#[test]
fn blocking_mode_matches_fused_nonblocking() {
    let _g = KNOBS.lock().unwrap();
    dag::set_async_drain(Some(false));
    dag::set_nonblocking_dag(Some(true));
    let fused = run_pipeline(Mode::NonBlocking);
    let blocking = run_pipeline(Mode::Blocking);
    dag::set_nonblocking_dag(None);
    dag::set_async_drain(None);
    assert_eq!(fused.0, blocking.0);
    assert_eq!(fused.1, blocking.1);
}

#[test]
fn async_drains_do_not_change_results() {
    let _g = KNOBS.lock().unwrap();
    dag::set_nonblocking_dag(Some(true));
    dag::set_async_drain(Some(false));
    let quiet = run_pipeline(Mode::NonBlocking);
    // Force eager background drains: every enqueue past depth 1 offers
    // the backlog to the pool, racing the foreground reads below.
    dag::set_async_drain(Some(true));
    dag::set_async_drain_depth(Some(1));
    let racy = run_pipeline(Mode::NonBlocking);
    dag::set_async_drain_depth(None);
    dag::set_async_drain(None);
    dag::set_nonblocking_dag(None);
    assert_eq!(quiet.0, racy.0);
    assert_eq!(quiet.1, racy.1);
}
