//! Static-vs-dyn dispatch equivalence for the kernel registry
//! (`core::ops::registry`), pair by pair: every registered semiring ×
//! type row is run through `mxv` (pull, including a chained hop so a
//! bitmap-stored frontier is consumed natively), `vxm` (push), and `mxm`
//! (unmasked and masked), once with the registry forced on and once
//! forced down the `Arc<dyn Fn>` fallback, and the results must match
//! exactly. The registered element-wise binops, unary ops, and reduce
//! monoids get the same treatment through `ewise_add_v`/`ewise_mult_v`,
//! `apply_v`, and `reduce_to_value_v`.
//!
//! Both dispatch modes run the same kernel algorithm over the same
//! partitioning, so even float results must agree to the last bit; the
//! seeded inputs avoid NaN and negative zero, making `==` equality
//! equivalent to byte equality.

use std::collections::BTreeMap;
use std::fmt::Debug;
use std::sync::Mutex;

use graphblas_core::operations::{
    apply_v, ewise_add_v, ewise_mult_v, mxm, mxv, reduce_to_value_v, vxm,
};
use graphblas_core::ops::registry;
use graphblas_core::{
    no_mask, no_mask_v, BinaryOp, Descriptor, Matrix, Monoid, Semiring, UnaryOp, ValueType, Vector,
};
use graphblas_exec::rng::prelude::*;

const N: usize = 48;

/// `force_dispatch` is process-global state; every equivalence check
/// holds this lock across its static and dyn runs so the test binary's
/// parallel test threads cannot interleave dispatch modes.
static DISPATCH_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` once under forced-static and once under forced-dyn dispatch,
/// restoring the environment default before returning both results.
fn run_both<R>(f: impl Fn() -> R) -> (R, R) {
    let _g = DISPATCH_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    registry::force_dispatch(Some(true));
    let s = f();
    registry::force_dispatch(Some(false));
    let d = f();
    registry::force_dispatch(None);
    (s, d)
}

fn mat_from<T: ValueType>(seed: u64, gen: &mut impl FnMut(&mut StdRng) -> T) -> Matrix<T> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut e: BTreeMap<(usize, usize), T> = BTreeMap::new();
    for _ in 0..N * 6 {
        let (i, j) = (rng.gen_range(0..N), rng.gen_range(0..N));
        e.insert((i, j), gen(&mut rng));
    }
    let m = Matrix::<T>::new(N, N).unwrap();
    m.build(
        &e.keys().map(|k| k.0).collect::<Vec<_>>(),
        &e.keys().map(|k| k.1).collect::<Vec<_>>(),
        &e.values().cloned().collect::<Vec<_>>(),
        None,
    )
    .unwrap();
    m
}

fn vec_from<T: ValueType>(
    nnz: usize,
    seed: u64,
    gen: &mut impl FnMut(&mut StdRng) -> T,
) -> Vector<T> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut idx: Vec<usize> = (0..N).collect();
    idx.shuffle(&mut rng);
    idx.truncate(nnz);
    idx.sort_unstable();
    let vals: Vec<T> = idx.iter().map(|_| gen(&mut rng)).collect();
    let v = Vector::<T>::new(N).unwrap();
    v.build(&idx, &vals, None).unwrap();
    v
}

fn bool_mask(seed: u64) -> Matrix<bool> {
    mat_from(seed, &mut |_rng: &mut StdRng| true)
}

/// One registered semiring × type row through every matrix-vector and
/// matrix-matrix kernel the registry claims.
fn check_semiring<T>(
    name: &str,
    sr: &Semiring<T, T, T>,
    seed: u64,
    gen: &mut impl FnMut(&mut StdRng) -> T,
) where
    T: ValueType + PartialEq + Debug,
{
    let a = mat_from(seed, gen);
    let b = mat_from(seed ^ 0xB, gen);
    // Dense-ish input drives the pull (spmv) kernel; the mid-density hop
    // result may be stored in bitmap format, so the second hop also
    // covers the bitmap-frontier spmv instantiation.
    let xd = vec_from(N * 4 / 5, seed ^ 1, gen);
    // A few entries drive the push (vxm) kernel.
    let xs = vec_from(4, seed ^ 2, gen);
    let mask = bool_mask(seed ^ 3);

    let (s, d) = run_both(|| {
        let y = Vector::<T>::new(N).unwrap();
        mxv(&y, no_mask_v(), None, sr, &a, &xd, &Descriptor::default()).unwrap();
        let z = Vector::<T>::new(N).unwrap();
        mxv(&z, no_mask_v(), None, sr, &a, &y, &Descriptor::default()).unwrap();
        (y.extract_tuples().unwrap(), z.extract_tuples().unwrap())
    });
    assert_eq!(s, d, "mxv pull / bitmap-frontier chain disagrees: {name}");

    let (s, d) = run_both(|| {
        let y = Vector::<T>::new(N).unwrap();
        vxm(&y, no_mask_v(), None, sr, &xs, &a, &Descriptor::default()).unwrap();
        y.extract_tuples().unwrap()
    });
    assert_eq!(s, d, "vxm push disagrees: {name}");

    let (s, d) = run_both(|| {
        let c = Matrix::<T>::new(N, N).unwrap();
        mxm(&c, no_mask(), None, sr, &a, &b, &Descriptor::default()).unwrap();
        c.extract_tuples().unwrap()
    });
    assert_eq!(s, d, "mxm disagrees: {name}");

    let (s, d) = run_both(|| {
        let c = Matrix::<T>::new(N, N).unwrap();
        mxm(&c, Some(&mask), None, sr, &a, &b, &Descriptor::default()).unwrap();
        c.extract_tuples().unwrap()
    });
    assert_eq!(s, d, "masked mxm disagrees: {name}");
}

fn gen_f64(rng: &mut StdRng) -> f64 {
    rng.gen_range(0.25..4.0)
}
fn gen_f32(rng: &mut StdRng) -> f32 {
    rng.gen_range(0.25f32..4.0)
}
fn gen_i64(rng: &mut StdRng) -> i64 {
    rng.gen_range(-9..10)
}
fn gen_u64(rng: &mut StdRng) -> u64 {
    rng.gen_range(0..10)
}
fn gen_bool(rng: &mut StdRng) -> bool {
    rng.gen_bool(0.5)
}

#[test]
fn plus_times_every_registered_type() {
    check_semiring(
        "plus_times f64",
        &Semiring::<f64, f64, f64>::plus_times(),
        0xA0,
        &mut gen_f64,
    );
    check_semiring(
        "plus_times f32",
        &Semiring::<f32, f32, f32>::plus_times(),
        0xA1,
        &mut gen_f32,
    );
    check_semiring(
        "plus_times i64",
        &Semiring::<i64, i64, i64>::plus_times(),
        0xA2,
        &mut gen_i64,
    );
    check_semiring(
        "plus_times u64",
        &Semiring::<u64, u64, u64>::plus_times(),
        0xA3,
        &mut gen_u64,
    );
}

#[test]
fn min_plus_every_registered_type() {
    check_semiring(
        "min_plus f64",
        &Semiring::<f64, f64, f64>::min_plus(),
        0xB0,
        &mut gen_f64,
    );
    check_semiring(
        "min_plus f32",
        &Semiring::<f32, f32, f32>::min_plus(),
        0xB1,
        &mut gen_f32,
    );
    check_semiring(
        "min_plus i64",
        &Semiring::<i64, i64, i64>::min_plus(),
        0xB2,
        &mut gen_i64,
    );
    check_semiring(
        "min_plus u64",
        &Semiring::<u64, u64, u64>::min_plus(),
        0xB3,
        &mut gen_u64,
    );
}

#[test]
fn max_plus_every_registered_type() {
    check_semiring(
        "max_plus f64",
        &Semiring::<f64, f64, f64>::max_plus(),
        0xC0,
        &mut gen_f64,
    );
    check_semiring(
        "max_plus f32",
        &Semiring::<f32, f32, f32>::max_plus(),
        0xC1,
        &mut gen_f32,
    );
    check_semiring(
        "max_plus i64",
        &Semiring::<i64, i64, i64>::max_plus(),
        0xC2,
        &mut gen_i64,
    );
    check_semiring(
        "max_plus u64",
        &Semiring::<u64, u64, u64>::max_plus(),
        0xC3,
        &mut gen_u64,
    );
}

#[test]
fn boolean_semirings() {
    check_semiring(
        "lor_land bool",
        &Semiring::<bool, bool, bool>::lor_land(),
        0xD0,
        &mut gen_bool,
    );
    // ANY is only deterministic because OneB yields the same witness value
    // for every match — which is exactly why the pair is registrable.
    check_semiring(
        "any_pair bool",
        &Semiring::<bool, bool, bool>::any_pair(),
        0xD1,
        &mut gen_bool,
    );
}

/// One registered element-wise binop × type row through union and
/// intersection semantics.
fn check_binop<T>(
    name: &str,
    op: &BinaryOp<T, T, T>,
    seed: u64,
    gen: &mut impl FnMut(&mut StdRng) -> T,
) where
    T: ValueType + PartialEq + Debug,
{
    let u = vec_from(N / 2, seed, gen);
    let v = vec_from(N / 2, seed ^ 1, gen);

    let (s, d) = run_both(|| {
        let w = Vector::<T>::new(N).unwrap();
        ewise_add_v(&w, no_mask_v(), None, op, &u, &v, &Descriptor::default()).unwrap();
        w.extract_tuples().unwrap()
    });
    assert_eq!(s, d, "ewise_add disagrees: {name}");

    let (s, d) = run_both(|| {
        let w = Vector::<T>::new(N).unwrap();
        ewise_mult_v(&w, no_mask_v(), None, op, &u, &v, &Descriptor::default()).unwrap();
        w.extract_tuples().unwrap()
    });
    assert_eq!(s, d, "ewise_mult disagrees: {name}");
}

#[test]
fn ewise_binops_every_registered_pair() {
    check_binop(
        "plus f64",
        &BinaryOp::<f64, f64, f64>::plus(),
        0x10,
        &mut gen_f64,
    );
    check_binop(
        "plus f32",
        &BinaryOp::<f32, f32, f32>::plus(),
        0x11,
        &mut gen_f32,
    );
    check_binop(
        "plus i64",
        &BinaryOp::<i64, i64, i64>::plus(),
        0x12,
        &mut gen_i64,
    );
    check_binop(
        "plus u64",
        &BinaryOp::<u64, u64, u64>::plus(),
        0x13,
        &mut gen_u64,
    );
    check_binop(
        "times f64",
        &BinaryOp::<f64, f64, f64>::times(),
        0x14,
        &mut gen_f64,
    );
    check_binop(
        "times f32",
        &BinaryOp::<f32, f32, f32>::times(),
        0x15,
        &mut gen_f32,
    );
    check_binop(
        "times i64",
        &BinaryOp::<i64, i64, i64>::times(),
        0x16,
        &mut gen_i64,
    );
    check_binop(
        "times u64",
        &BinaryOp::<u64, u64, u64>::times(),
        0x17,
        &mut gen_u64,
    );
    check_binop(
        "min f64",
        &BinaryOp::<f64, f64, f64>::min(),
        0x18,
        &mut gen_f64,
    );
    check_binop(
        "min f32",
        &BinaryOp::<f32, f32, f32>::min(),
        0x19,
        &mut gen_f32,
    );
    check_binop(
        "min i64",
        &BinaryOp::<i64, i64, i64>::min(),
        0x1A,
        &mut gen_i64,
    );
    check_binop(
        "min u64",
        &BinaryOp::<u64, u64, u64>::min(),
        0x1B,
        &mut gen_u64,
    );
    check_binop(
        "max f64",
        &BinaryOp::<f64, f64, f64>::max(),
        0x1C,
        &mut gen_f64,
    );
    check_binop(
        "max f32",
        &BinaryOp::<f32, f32, f32>::max(),
        0x1D,
        &mut gen_f32,
    );
    check_binop(
        "max i64",
        &BinaryOp::<i64, i64, i64>::max(),
        0x1E,
        &mut gen_i64,
    );
    check_binop(
        "max u64",
        &BinaryOp::<u64, u64, u64>::max(),
        0x1F,
        &mut gen_u64,
    );
    check_binop(
        "lor bool",
        &BinaryOp::<bool, bool, bool>::lor(),
        0x20,
        &mut gen_bool,
    );
    check_binop(
        "land bool",
        &BinaryOp::<bool, bool, bool>::land(),
        0x21,
        &mut gen_bool,
    );
}

/// One registered unary op × type row through `apply_v` (distinct output
/// container, so the apply kernel — not the in-place map fast path —
/// runs).
fn check_unop<T>(name: &str, op: &UnaryOp<T, T>, seed: u64, gen: &mut impl FnMut(&mut StdRng) -> T)
where
    T: ValueType + PartialEq + Debug,
{
    let u = vec_from(N * 2 / 3, seed, gen);
    let (s, d) = run_both(|| {
        let w = Vector::<T>::new(N).unwrap();
        apply_v(&w, no_mask_v(), None, op, &u, &Descriptor::default()).unwrap();
        w.extract_tuples().unwrap()
    });
    assert_eq!(s, d, "apply disagrees: {name}");
}

#[test]
fn apply_unops_every_registered_pair() {
    check_unop(
        "identity f64",
        &UnaryOp::<f64, f64>::identity(),
        0x30,
        &mut gen_f64,
    );
    check_unop(
        "identity f32",
        &UnaryOp::<f32, f32>::identity(),
        0x31,
        &mut gen_f32,
    );
    check_unop(
        "identity i64",
        &UnaryOp::<i64, i64>::identity(),
        0x32,
        &mut gen_i64,
    );
    check_unop(
        "identity u64",
        &UnaryOp::<u64, u64>::identity(),
        0x33,
        &mut gen_u64,
    );
    check_unop(
        "identity bool",
        &UnaryOp::<bool, bool>::identity(),
        0x34,
        &mut gen_bool,
    );
    check_unop("ainv f64", &UnaryOp::<f64, f64>::ainv(), 0x35, &mut gen_f64);
    check_unop("ainv f32", &UnaryOp::<f32, f32>::ainv(), 0x36, &mut gen_f32);
    check_unop("ainv i64", &UnaryOp::<i64, i64>::ainv(), 0x37, &mut gen_i64);
    check_unop("abs f64", &UnaryOp::<f64, f64>::abs(), 0x38, &mut gen_f64);
    check_unop("abs f32", &UnaryOp::<f32, f32>::abs(), 0x39, &mut gen_f32);
    check_unop("abs i64", &UnaryOp::<i64, i64>::abs(), 0x3A, &mut gen_i64);
    check_unop(
        "lnot bool",
        &UnaryOp::<bool, bool>::lnot(),
        0x3B,
        &mut gen_bool,
    );
}

/// One registered reduce monoid × type row through `reduce_to_value_v`.
fn check_reduce<T>(name: &str, m: &Monoid<T>, seed: u64, gen: &mut impl FnMut(&mut StdRng) -> T)
where
    T: ValueType + PartialEq + Debug,
{
    let u = vec_from(N * 3 / 4, seed, gen);
    let (s, d) = run_both(|| reduce_to_value_v(m, &u).unwrap());
    assert_eq!(s, d, "reduce disagrees: {name}");
}

#[test]
fn reduce_monoids_every_registered_pair() {
    check_reduce("plus f64", &Monoid::<f64>::plus(), 0x40, &mut gen_f64);
    check_reduce("plus f32", &Monoid::<f32>::plus(), 0x41, &mut gen_f32);
    check_reduce("plus i64", &Monoid::<i64>::plus(), 0x42, &mut gen_i64);
    check_reduce("plus u64", &Monoid::<u64>::plus(), 0x43, &mut gen_u64);
    check_reduce("min f64", &Monoid::<f64>::min(), 0x44, &mut gen_f64);
    check_reduce("min f32", &Monoid::<f32>::min(), 0x45, &mut gen_f32);
    check_reduce("min i64", &Monoid::<i64>::min(), 0x46, &mut gen_i64);
    check_reduce("min u64", &Monoid::<u64>::min(), 0x47, &mut gen_u64);
    check_reduce("max f64", &Monoid::<f64>::max(), 0x48, &mut gen_f64);
    check_reduce("max f32", &Monoid::<f32>::max(), 0x49, &mut gen_f32);
    check_reduce("max i64", &Monoid::<i64>::max(), 0x4A, &mut gen_i64);
    check_reduce("max u64", &Monoid::<u64>::max(), 0x4B, &mut gen_u64);
    check_reduce("lor bool", &Monoid::<bool>::lor(), 0x4C, &mut gen_bool);
    // ANY may legitimately return any element, so the equivalence only
    // holds over a uniform vector — which still proves both paths run.
    check_reduce(
        "any bool",
        &Monoid::<bool>::any(),
        0x4D,
        &mut |_rng: &mut StdRng| true,
    );
}
