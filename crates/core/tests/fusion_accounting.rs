//! Fusion accounting (paper §III): a run of `n` consecutive deferred
//! `Stage::Map` entries must drain as **one** element traversal with
//! `n - 1` fusion hits, and the `graphblas-obs` counters must say so.
//! Runs as its own integration-test binary so flipping the global
//! telemetry flag cannot race other tests.

use std::sync::atomic::Ordering;

use graphblas_core::operations::apply_v;
use graphblas_core::{
    global_context, no_mask_v, Context, ContextOptions, Descriptor, Mode, UnaryOp, Vector, WaitMode,
};

fn fusion_counts_for_chain(n: usize) -> (u64, u64, u64) {
    let ctx = Context::new(
        &global_context(),
        Mode::NonBlocking,
        ContextOptions::default(),
    );
    let v = Vector::<f64>::new_in(&ctx, 512).unwrap();
    let idx: Vec<usize> = (0..512).collect();
    let vals: Vec<f64> = (0..512).map(|i| i as f64).collect();
    v.build(&idx, &vals, None).unwrap();
    v.wait(WaitMode::Materialize).unwrap();

    graphblas_obs::reset();
    for _ in 0..n {
        apply_v(
            &v,
            no_mask_v(),
            None,
            &UnaryOp::new("inc", |x: &f64| x + 1.0),
            &v,
            &Descriptor::default(),
        )
        .unwrap();
    }
    v.wait(WaitMode::Complete).unwrap();

    let pending = graphblas_obs::counters::pending();
    (
        pending.map_traversals.load(Ordering::Relaxed),
        pending.fusion_hits.load(Ordering::Relaxed),
        pending.maps_enqueued.load(Ordering::Relaxed),
    )
}

#[test]
fn n_consecutive_maps_fuse_into_one_traversal() {
    graphblas_obs::set_enabled(true);
    for n in [1usize, 2, 3, 8, 17] {
        let (traversals, hits, enqueued) = fusion_counts_for_chain(n);
        assert_eq!(
            traversals, 1,
            "a chain of {n} maps must drain as exactly one traversal"
        );
        assert_eq!(
            hits,
            (n - 1) as u64,
            "a chain of {n} maps must report n - 1 fusion hits"
        );
        assert_eq!(enqueued, n as u64, "every deferred map is counted");
    }
    graphblas_obs::set_enabled(false);
}

#[test]
fn fused_chain_result_matches_eager_chain() {
    // The accounting test above means nothing if fusion changed the
    // answer: run the same chain eagerly and compare.
    let n = 5usize;
    let run = |mode: Mode| {
        let ctx = Context::new(&global_context(), mode, ContextOptions::default());
        let v = Vector::<f64>::new_in(&ctx, 64).unwrap();
        let idx: Vec<usize> = (0..64).collect();
        let vals: Vec<f64> = (0..64).map(|i| i as f64).collect();
        v.build(&idx, &vals, None).unwrap();
        for _ in 0..n {
            apply_v(
                &v,
                no_mask_v(),
                None,
                &UnaryOp::new("double", |x: &f64| x * 2.0),
                &v,
                &Descriptor::default(),
            )
            .unwrap();
        }
        v.wait(WaitMode::Materialize).unwrap();
        v.extract_tuples().unwrap()
    };
    assert_eq!(run(Mode::NonBlocking), run(Mode::Blocking));
}

#[test]
fn dag_nodes_fuse_neighbouring_maps() {
    // Cross-operation fusion (paper §III): a map chain feeding mxv rides
    // its input snapshot (pre side); an in-place apply trailing the node
    // is consumed at drain (post side). The DagCounters must see both.
    graphblas_obs::set_enabled(true);
    graphblas_core::dag::set_nonblocking_dag(Some(true));
    graphblas_core::dag::set_async_drain(Some(false));

    let ctx = Context::new(
        &global_context(),
        Mode::NonBlocking,
        ContextOptions::default(),
    );
    let a = graphblas_core::Matrix::<f64>::new_in(&ctx, 32, 32).unwrap();
    let rows: Vec<usize> = (0..32).collect();
    let cols: Vec<usize> = (0..32).map(|i| (i * 7 + 1) % 32).collect();
    let vals: Vec<f64> = (0..32).map(|i| i as f64 + 1.0).collect();
    a.build(&rows, &cols, &vals, None).unwrap();
    let u = Vector::<f64>::new_in(&ctx, 32).unwrap();
    let idx: Vec<usize> = (0..32).collect();
    u.build(&idx, &vals, None).unwrap();
    u.wait(WaitMode::Materialize).unwrap();

    graphblas_obs::reset();
    // Pre side: two pending maps on the mxv input.
    let inc = UnaryOp::new("inc", |x: &f64| x + 1.0);
    apply_v(&u, no_mask_v(), None, &inc, &u, &Descriptor::default()).unwrap();
    apply_v(&u, no_mask_v(), None, &inc, &u, &Descriptor::default()).unwrap();
    let w = Vector::<f64>::new_in(&ctx, 32).unwrap();
    graphblas_core::operations::mxv(
        &w,
        no_mask_v(),
        None,
        &graphblas_core::Semiring::<f64, f64, f64>::plus_times(),
        &a,
        &u,
        &Descriptor::default(),
    )
    .unwrap();
    // Post side: an in-place apply queued behind the node.
    apply_v(&w, no_mask_v(), None, &inc, &w, &Descriptor::default()).unwrap();
    w.wait(WaitMode::Complete).unwrap();

    let dag = graphblas_obs::counters::dag_totals();
    assert!(dag.nodes_enqueued >= 1, "mxv must enqueue a DAG node");
    assert_eq!(dag.pre_fused, 2, "both input maps fold into the kernel");
    assert_eq!(dag.post_fused, 1, "the trailing map drains with the node");
    assert!(dag.fused_chains >= 1, "a fused chain is scored once");

    graphblas_core::dag::set_async_drain(None);
    graphblas_core::dag::set_nonblocking_dag(None);
    graphblas_obs::set_enabled(false);
}
