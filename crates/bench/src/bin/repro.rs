//! `repro` — regenerates every table and figure of *Introduction to
//! GraphBLAS 2.0* (Brock et al., IPDPSW 2021) as measured experiments,
//! in paper order, printing one report section per artifact.
//!
//! Run with: `cargo run --release -p graphblas-bench --bin repro`
//!
//! The output of this binary is the source of `EXPERIMENTS.md`.

use std::sync::atomic::{AtomicBool, Ordering};

use graphblas_bench::{
    fmt_time, median_secs, random_csr, random_matrix, rmat_bool, rmat_weighted,
};
use graphblas_core::operations::{
    apply_indexop, apply_indexop_v, apply_v, mxm, reduce_scalar, reduce_to_value, select,
};
use graphblas_core::{
    global_context, no_mask, no_mask_v, BinaryOp, Context, ContextOptions, Descriptor, Format,
    IndexUnaryOp, Matrix, Mode, Monoid, Scalar, Semiring, UnaryOp, Vector, WaitMode,
};

fn header(title: &str) {
    println!("\n{}", "=".repeat(72));
    println!("{title}");
    println!("{}", "=".repeat(72));
}

fn main() {
    graphblas_core::init(Mode::Blocking);
    println!("graphblas-rs reproduction report");
    println!(
        "host parallelism: {} threads",
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    );

    fig1_multithreading();
    fig2_contexts();
    fig3_index_ops();
    table1_scalar();
    table2_scalar_variants();
    table3_import_export();
    table4_index_unary();
    motivation_packing();
    ablation_dispatch();
    ablation_fusion();
    ablation_terminal();
    algorithms();
    obs_report();

    println!("\nreport complete");
}

// ---------------------------------------------------------------------
// Observability — instrumented pagerank run, snapshot to BENCH_obs.json
// ---------------------------------------------------------------------
fn obs_report() {
    header("Observability — obs snapshot of pagerank on R-MAT scale-12");
    graphblas_obs::set_enabled(true);
    graphblas_obs::reset();

    // Rebuild the scale-12 graph inside a named nonblocking context so
    // the snapshot exercises per-context attribution and rollups.
    let ctx = Context::new(
        &global_context(),
        Mode::NonBlocking,
        ContextOptions {
            name: Some("pagerank-obs".to_string()),
            ..ContextOptions::default()
        },
    );
    let src = rmat_bool(12, 8, 12);
    let (rows, cols, vals) = src.extract_tuples().unwrap();
    let a = Matrix::<bool>::new_in(&ctx, src.nrows(), src.ncols()).unwrap();
    a.build(&rows, &cols, &vals, Some(&BinaryOp::new("lor", |x: &bool, y: &bool| *x || *y)))
        .unwrap();
    a.wait(WaitMode::Materialize).unwrap();
    std::hint::black_box(graphblas_algo::pagerank(&a, 0.85, 1e-6, 50).unwrap());

    let per_object = a.stats();
    let snap = graphblas_obs::snapshot();
    graphblas_obs::set_enabled(false);

    let json = snap.to_json();
    std::fs::write("BENCH_obs.json", &json).expect("write BENCH_obs.json");

    println!("| kernel | calls | wall | flops | nnz in | nnz out |");
    println!("|--------|-------|------|-------|--------|---------|");
    for k in snap.kernels.iter().filter(|k| k.calls > 0) {
        println!(
            "| {} | {} | {} | {} | {} | {} |",
            k.kernel.name(),
            k.calls,
            fmt_time(k.nanos as f64 / 1e9),
            k.flops,
            k.nnz_in,
            k.nnz_out
        );
    }
    println!(
        "pending: {} maps + {} opaques enqueued, {} fusion hits over {} traversals, {} drains",
        snap.pending.maps_enqueued,
        snap.pending.opaques_enqueued,
        snap.pending.fusion_hits,
        snap.pending.map_traversals,
        snap.pending.drains
    );
    println!(
        "pool: {} tasks spawned, {} inline, {} parks, {} wakes",
        snap.pool.tasks_spawned, snap.pool.tasks_inline, snap.pool.parks, snap.pool.wakes
    );
    for c in &snap.contexts {
        println!(
            "context {} ({}): own {} spans / {}, rolled-up {} spans / {}",
            c.id,
            c.name.as_deref().unwrap_or("anonymous"),
            c.own.spans,
            fmt_time(c.own.nanos as f64 / 1e9),
            c.rolled.spans,
            fmt_time(c.rolled.nanos as f64 / 1e9)
        );
    }
    println!("object stats (GrB_get-style): {}", per_object.to_json());
    println!(
        "snapshot: {} events recorded, {} bytes of JSON -> BENCH_obs.json",
        snap.events_total,
        json.len()
    );
    assert!(
        snap.total_kernel_nanos() > 0 && snap.contexts.iter().any(|c| c.rolled.spans > 0),
        "instrumented pagerank must produce non-zero span timings and context rollups"
    );
}

// ---------------------------------------------------------------------
// Fig. 1 — multithreaded sharing with completion + acquire/release
// ---------------------------------------------------------------------
fn fig1_multithreading() {
    header("Fig. 1 — two threads sharing Esh (wait(COMPLETE) + acquire/release)");
    let n = 512;
    let sr = Semiring::<f64, f64, f64>::plus_times();
    let desc = Descriptor::default();
    let make = |seed: u64| random_matrix(n, 8 * n, seed);

    let run_seq = || {
        let (a, b, d, e, f) = (make(1), make(2), make(3), make(4), make(5));
        let c = Matrix::<f64>::new(n, n).unwrap();
        let esh = Matrix::<f64>::new(n, n).unwrap();
        let dres = Matrix::<f64>::new(n, n).unwrap();
        let g = Matrix::<f64>::new(n, n).unwrap();
        let hres = Matrix::<f64>::new(n, n).unwrap();
        mxm(&c, no_mask(), None, &sr, &a, &b, &desc).unwrap();
        mxm(&esh, no_mask(), None, &sr, &d, &c, &desc).unwrap();
        mxm(&dres, no_mask(), None, &sr, &a, &esh, &desc).unwrap();
        mxm(&g, no_mask(), None, &sr, &e, &f, &desc).unwrap();
        mxm(&hres, no_mask(), None, &sr, &g, &esh, &desc).unwrap();
        (dres.nvals().unwrap(), hres.nvals().unwrap())
    };

    let run_par = || {
        let ctx = Context::new(
            &global_context(),
            Mode::NonBlocking,
            ContextOptions::default(),
        );
        let esh = Matrix::<f64>::new_in(&ctx, n, n).unwrap();
        let dres = Matrix::<f64>::new_in(&ctx, n, n).unwrap();
        let hres = Matrix::<f64>::new_in(&ctx, n, n).unwrap();
        let flag = AtomicBool::new(false);
        std::thread::scope(|s| {
            {
                let (esh, dres, ctx, sr) = (esh.clone(), dres.clone(), ctx.clone(), sr.clone());
                let flag = &flag;
                s.spawn(move || {
                    let (a, b, d) = (make(1), make(2), make(3));
                    for m in [&a, &b, &d] {
                        m.switch_context(&ctx).unwrap();
                    }
                    let c = Matrix::<f64>::new_in(&ctx, n, n).unwrap();
                    mxm(&c, no_mask(), None, &sr, &a, &b, &desc).unwrap();
                    mxm(&esh, no_mask(), None, &sr, &d, &c, &desc).unwrap();
                    esh.wait(WaitMode::Complete).unwrap();
                    flag.store(true, Ordering::Release);
                    mxm(&dres, no_mask(), None, &sr, &a, &esh, &desc).unwrap();
                    dres.wait(WaitMode::Complete).unwrap();
                });
            }
            {
                let (esh, hres, ctx, sr) = (esh.clone(), hres.clone(), ctx.clone(), sr.clone());
                let flag = &flag;
                s.spawn(move || {
                    let (e, f) = (make(4), make(5));
                    for m in [&e, &f] {
                        m.switch_context(&ctx).unwrap();
                    }
                    let g = Matrix::<f64>::new_in(&ctx, n, n).unwrap();
                    mxm(&g, no_mask(), None, &sr, &e, &f, &desc).unwrap();
                    while !flag.load(Ordering::Acquire) {
                        std::hint::spin_loop();
                    }
                    mxm(&hres, no_mask(), None, &sr, &g, &esh, &desc).unwrap();
                    hres.wait(WaitMode::Complete).unwrap();
                });
            }
        });
        (dres.nvals().unwrap(), hres.nvals().unwrap())
    };

    let expect = run_seq();
    let got = run_par();
    assert_eq!(expect, got, "concurrent run must match sequential");
    let t_seq = median_secs(3, || {
        let _ = run_seq();
    });
    let t_par = median_secs(3, || {
        let _ = run_par();
    });
    println!("| schedule                 | wall time | result (nvals D, H) |");
    println!("|--------------------------|-----------|---------------------|");
    println!("| sequential               | {} | {expect:?} |", fmt_time(t_seq));
    println!("| 2 threads (Fig. 1 sync)  | {} | {got:?} |", fmt_time(t_par));
    println!("race-free: results identical across schedules ✓");
}

// ---------------------------------------------------------------------
// Fig. 2 — hierarchical contexts: thread budget scaling
// ---------------------------------------------------------------------
fn fig2_contexts() {
    header("Fig. 2 — execution contexts: mxm under nested thread budgets");
    let a = rmat_weighted(13, 8, 7);
    let sr = Semiring::<f64, f64, f64>::plus_times();
    println!("workload: RMAT scale 13 (n = {}), {} edges, C = A·A", a.nrows(), a.nvals().unwrap());
    let pool = graphblas_exec::global_pool().size();
    if pool < 8 {
        println!(
            "NOTE: global pool has {pool} worker(s); budgets above that are \
             clamped (set GRB_POOL_THREADS to widen)."
        );
    }
    // Warm up caches/allocator so the first measured budget isn't inflated.
    {
        let warm = Matrix::<f64>::new(a.nrows(), a.ncols()).unwrap();
        mxm(&warm, no_mask(), None, &sr, &a, &a, &Descriptor::default()).unwrap();
    }
    println!("| threads | time | speedup vs 1 |");
    println!("|---------|------|--------------|");
    let mut t1 = 0.0f64;
    for threads in [1usize, 2, 4, 8] {
        let ctx = Context::new(
            &global_context(),
            Mode::Blocking,
            ContextOptions {
                nthreads: Some(threads),
                ..Default::default()
            },
        );
        let a2 = a.dup().unwrap();
        a2.switch_context(&ctx).unwrap();
        let c = Matrix::<f64>::new_in(&ctx, a.nrows(), a.ncols()).unwrap();
        let t = median_secs(3, || {
            mxm(&c, no_mask(), None, &sr, &a2, &a2, &Descriptor::default()).unwrap();
        });
        if threads == 1 {
            t1 = t;
        }
        println!("| {threads:7} | {} | {:12.2}x |", fmt_time(t), t1 / t);
    }
    // Nested clamp demonstration.
    let outer = Context::new(
        &global_context(),
        Mode::Blocking,
        ContextOptions {
            nthreads: Some(2),
            ..Default::default()
        },
    );
    let inner = Context::new(
        &outer,
        Mode::Blocking,
        ContextOptions {
            nthreads: Some(64),
            ..Default::default()
        },
    );
    println!(
        "nested context asking for 64 threads inside a 2-thread parent gets: {} ✓",
        inner.effective_threads()
    );
}

// ---------------------------------------------------------------------
// Fig. 3 — select and apply with index-unary operators
// ---------------------------------------------------------------------
fn fig3_index_ops() {
    header("Fig. 3 — index-unary select (user triu-threshold) and apply (COLINDEX)");
    let a = rmat_weighted(13, 8, 3);
    let n = a.nrows();
    let nnz = a.nvals().unwrap();
    println!("workload: RMAT scale 13, {nnz} stored elements");
    let my_triu_gt = IndexUnaryOp::<f64, f64, bool>::new("my_triu_gt", |v, idx, s| {
        idx[1] > idx[0] && v > s
    });
    let sel = Matrix::<f64>::new(n, n).unwrap();
    let t_sel = median_secs(5, || {
        select(&sel, no_mask(), None, &my_triu_gt, &a, 0.5f64, &Descriptor::default()).unwrap();
    });
    let app = Matrix::<i64>::new(n, n).unwrap();
    let t_app = median_secs(5, || {
        apply_indexop(
            &app,
            no_mask(),
            None,
            &IndexUnaryOp::colindex(),
            &a,
            1i64,
            &Descriptor::default(),
        )
        .unwrap();
    });
    println!("| operation | time | output nvals |");
    println!("|-----------|------|--------------|");
    println!("| select(my_triu_gt, s=0.5) | {} | {} |", fmt_time(t_sel), sel.nvals().unwrap());
    println!("| apply(COLINDEX, s=1)      | {} | {} |", fmt_time(t_app), app.nvals().unwrap());
    assert_eq!(app.nvals().unwrap(), nnz, "apply preserves structure");
}

// ---------------------------------------------------------------------
// Table I — GrB_Scalar manipulation methods
// ---------------------------------------------------------------------
fn table1_scalar() {
    header("Table I — GrB_Scalar methods (per-call latency, 100k calls)");
    let iters = 100_000u32;
    let time_per_call = |f: &mut dyn FnMut()| {
        let t = median_secs(3, || {
            for _ in 0..iters {
                f();
            }
        });
        t / iters as f64
    };
    let s = Scalar::<i64>::new().unwrap();
    s.set_element(1).unwrap();
    let rows: Vec<(&str, f64)> = vec![
        ("GrB_Scalar_new", time_per_call(&mut || {
            std::hint::black_box(Scalar::<i64>::new().unwrap());
        })),
        ("GrB_Scalar_dup", time_per_call(&mut || {
            std::hint::black_box(s.dup().unwrap());
        })),
        ("GrB_Scalar_clear", time_per_call(&mut || {
            s.clear().unwrap();
        })),
        ("GrB_Scalar_nvals", time_per_call(&mut || {
            std::hint::black_box(s.nvals().unwrap());
        })),
        ("GrB_Scalar_setElement", time_per_call(&mut || {
            s.set_element(7).unwrap();
        })),
        ("GrB_Scalar_extractElement", time_per_call(&mut || {
            std::hint::black_box(s.extract_element().unwrap());
        })),
    ];
    println!("| method | latency |");
    println!("|--------|---------|");
    for (name, t) in rows {
        println!("| {name:-26} | {} |", fmt_time(t));
    }
}

// ---------------------------------------------------------------------
// Table II — GrB_Scalar variants vs typed variants
// ---------------------------------------------------------------------
fn table2_scalar_variants() {
    header("Table II — scalar-variant vs typed-variant methods");
    let m = rmat_weighted(12, 8, 5);
    let s = Scalar::<f64>::new().unwrap();
    s.set_element(1.5).unwrap();
    let iters = 50_000u32;
    let per = |f: &mut dyn FnMut()| {
        median_secs(3, || {
            for _ in 0..iters {
                f();
            }
        }) / iters as f64
    };
    let t_set_typed = per(&mut || m.set_element(2.0, 5, 5).unwrap());
    m.wait(WaitMode::Materialize).unwrap();
    let t_set_scalar = per(&mut || m.set_element_scalar(&s, 5, 5).unwrap());
    m.wait(WaitMode::Materialize).unwrap();
    let out = Scalar::<f64>::new().unwrap();
    let t_ext_typed = per(&mut || {
        std::hint::black_box(m.extract_element(5, 5).unwrap());
    });
    let t_ext_scalar = per(&mut || m.extract_element_scalar(&out, 5, 5).unwrap());
    // Reductions (per call, not per element).
    let t_red_typed = median_secs(5, || {
        std::hint::black_box(reduce_to_value(&Monoid::plus(), &m).unwrap());
    });
    let t_red_scalar = median_secs(5, || {
        reduce_scalar(&out, None, &Monoid::plus(), &m).unwrap();
        std::hint::black_box(out.extract_element().unwrap());
    });
    println!("| method | typed variant | GrB_Scalar variant |");
    println!("|--------|---------------|--------------------|");
    println!("| Matrix_setElement     | {} | {} |", fmt_time(t_set_typed), fmt_time(t_set_scalar));
    println!("| Matrix_extractElement | {} | {} |", fmt_time(t_ext_typed), fmt_time(t_ext_scalar));
    println!("| reduce (whole matrix) | {} | {} |", fmt_time(t_red_typed), fmt_time(t_red_scalar));
    // §VI semantics check: empty reduce → empty scalar, not identity.
    let empty = Matrix::<f64>::new(4, 4).unwrap();
    reduce_scalar(&out, None, &Monoid::plus(), &empty).unwrap();
    assert_eq!(out.nvals().unwrap(), 0);
    println!("empty-matrix reduce into scalar leaves the scalar EMPTY (§VI) ✓");
}

// ---------------------------------------------------------------------
// Table III — import/export formats + serialization
// ---------------------------------------------------------------------
fn table3_import_export() {
    header("Table III — import/export throughput per format (+ §VII.B serialize)");
    let a = rmat_weighted(14, 8, 11);
    let nnz = a.nvals().unwrap();
    a.wait(WaitMode::Materialize).unwrap();
    println!("workload: RMAT scale 14, {nnz} stored elements");
    println!("| format | export | import | round-trip verified |");
    println!("|--------|--------|--------|---------------------|");
    for fmt in [Format::Csr, Format::Csc, Format::Coo] {
        let t_exp = median_secs(3, || {
            std::hint::black_box(a.export(fmt).unwrap());
        });
        let (p, i, v) = a.export(fmt).unwrap();
        let t_imp = median_secs(3, || {
            std::hint::black_box(
                Matrix::<f64>::import(
                    a.nrows(),
                    a.ncols(),
                    fmt,
                    Some(p.clone()),
                    Some(i.clone()),
                    v.clone(),
                )
                .unwrap(),
            );
        });
        let back =
            Matrix::<f64>::import(a.nrows(), a.ncols(), fmt, Some(p), Some(i), v).unwrap();
        let ok = back.nvals().unwrap() == nnz;
        println!("| {fmt:?} | {} | {} | {ok} |", fmt_time(t_exp), fmt_time(t_imp));
    }
    // Dense formats on a small fully-populated matrix.
    let d = Matrix::<f64>::import(
        256,
        256,
        Format::DenseRow,
        None,
        None,
        (0..256 * 256).map(|x| x as f64).collect(),
    )
    .unwrap();
    for fmt in [Format::DenseRow, Format::DenseCol] {
        let t_exp = median_secs(3, || {
            std::hint::black_box(d.export(fmt).unwrap());
        });
        let (_, _, v) = d.export(fmt).unwrap();
        let t_imp = median_secs(3, || {
            std::hint::black_box(
                Matrix::<f64>::import(256, 256, fmt, None, None, v.clone()).unwrap(),
            );
        });
        println!("| {fmt:?} (256² dense) | {} | {} | true |", fmt_time(t_exp), fmt_time(t_imp));
    }
    // Serialize / deserialize.
    let bytes = a.serialize().unwrap();
    let t_ser = median_secs(3, || {
        std::hint::black_box(a.serialize().unwrap());
    });
    let t_de = median_secs(3, || {
        std::hint::black_box(Matrix::<f64>::deserialize(&bytes).unwrap());
    });
    println!("| serialize (opaque) | {} | {} | {} bytes |", fmt_time(t_ser), fmt_time(t_de), bytes.len());
    println!("export hint reflects internal format: {:?} ✓", a.export_hint());
}

// ---------------------------------------------------------------------
// Table IV — the 18 predefined index-unary operators
// ---------------------------------------------------------------------
fn table4_index_unary() {
    header("Table IV — predefined index-unary operators over RMAT scale 13");
    let a = rmat_weighted(13, 8, 13);
    let n = a.nrows();
    let sel_out = Matrix::<f64>::new(n, n).unwrap();
    let app_out = Matrix::<i64>::new(n, n).unwrap();
    println!("| operator | kind | time | kept/total |");
    println!("|----------|------|------|------------|");
    let nnz = a.nvals().unwrap();
    let run_select = |name: &str, f: &IndexUnaryOp<f64, i64, bool>, s: i64| {
        let t = median_secs(3, || {
            select(&sel_out, no_mask(), None, f, &a, s, &Descriptor::default()).unwrap();
        });
        println!(
            "| {name:-10} | select | {} | {}/{nnz} |",
            fmt_time(t),
            sel_out.nvals().unwrap()
        );
    };
    run_select("TRIL", &IndexUnaryOp::tril(), 0);
    run_select("TRIU", &IndexUnaryOp::triu(), 0);
    run_select("DIAG", &IndexUnaryOp::diag(), 0);
    run_select("OFFDIAG", &IndexUnaryOp::offdiag(), 0);
    run_select("ROWLE", &IndexUnaryOp::rowle(), (n / 2) as i64);
    run_select("ROWGT", &IndexUnaryOp::rowgt(), (n / 2) as i64);
    run_select("COLLE", &IndexUnaryOp::colle(), (n / 2) as i64);
    run_select("COLGT", &IndexUnaryOp::colgt(), (n / 2) as i64);
    let run_vselect = |name: &str, f: &IndexUnaryOp<f64, f64, bool>, s: f64| {
        let t = median_secs(3, || {
            select(&sel_out, no_mask(), None, f, &a, s, &Descriptor::default()).unwrap();
        });
        println!(
            "| {name:-10} | select | {} | {}/{nnz} |",
            fmt_time(t),
            sel_out.nvals().unwrap()
        );
    };
    run_vselect("VALUEEQ", &IndexUnaryOp::valueeq(), 0.5);
    run_vselect("VALUENE", &IndexUnaryOp::valuene(), 0.5);
    run_vselect("VALUELT", &IndexUnaryOp::valuelt(), 0.5);
    run_vselect("VALUELE", &IndexUnaryOp::valuele(), 0.5);
    run_vselect("VALUEGT", &IndexUnaryOp::valuegt(), 0.5);
    run_vselect("VALUEGE", &IndexUnaryOp::valuege(), 0.5);
    let run_apply = |name: &str, f: &IndexUnaryOp<f64, i64, i64>| {
        let t = median_secs(3, || {
            apply_indexop(&app_out, no_mask(), None, f, &a, 0i64, &Descriptor::default())
                .unwrap();
        });
        println!("| {name:-10} | apply  | {} | {nnz}/{nnz} |", fmt_time(t));
    };
    run_apply("ROWINDEX", &IndexUnaryOp::rowindex());
    run_apply("COLINDEX", &IndexUnaryOp::colindex());
    run_apply("DIAGINDEX", &IndexUnaryOp::diagindex());
}

// ---------------------------------------------------------------------
// §II motivation A — index-in-values packing vs index-unary operators
// ---------------------------------------------------------------------
fn motivation_packing() {
    header("§II motivation — 1.X index-in-values packing vs 2.0 index-unary apply");
    let n = 1 << 21;
    let idx: Vec<usize> = (0..n).collect();

    // GraphBLAS 1.X style: the vertex index is packed into the value
    // array as a (payload, index) tuple, stored AND streamed twice.
    let packed_vals: Vec<(f64, i64)> = (0..n).map(|i| (1.0, i as i64)).collect();
    let packed = Vector::<(f64, i64)>::new(n).unwrap();
    packed.build(&idx, &packed_vals, None).unwrap();
    let unpack = UnaryOp::<(f64, i64), i64>::new("unpack", |t| t.1);
    let out_ids = Vector::<i64>::new(n).unwrap();
    let t_packed = median_secs(11, || {
        apply_v(&out_ids, no_mask_v(), None, &unpack, &packed, &Descriptor::default()).unwrap();
    });

    // GraphBLAS 2.0 style: plain payload values; ROWINDEX reads the index
    // directly from the structure.
    let plain_vals: Vec<f64> = vec![1.0; n];
    let plain = Vector::<f64>::new(n).unwrap();
    plain.build(&idx, &plain_vals, None).unwrap();
    let t_indexop = median_secs(11, || {
        apply_indexop_v(
            &out_ids,
            no_mask_v(),
            None,
            &IndexUnaryOp::rowindex(),
            &plain,
            0i64,
            &Descriptor::default(),
        )
        .unwrap();
    });

    let packed_bytes = n * std::mem::size_of::<(f64, i64)>();
    let plain_bytes = n * std::mem::size_of::<f64>();
    println!("workload: dense vector, n = {n} (reindex a BFS-parent frontier)");
    println!("| approach | value storage | apply time |");
    println!("|----------|---------------|------------|");
    println!(
        "| 1.X packed (value,index) + user unpack op | {:6.1} MiB | {} |",
        packed_bytes as f64 / (1024.0 * 1024.0),
        fmt_time(t_packed)
    );
    println!(
        "| 2.0 index-unary ROWINDEX apply            | {:6.1} MiB | {} |",
        plain_bytes as f64 / (1024.0 * 1024.0),
        fmt_time(t_indexop)
    );
    println!(
        "storage saved: {:.0}%  |  speedup: {:.2}x  (paper predicts 2.0 wins on both)",
        100.0 * (1.0 - plain_bytes as f64 / packed_bytes as f64),
        t_packed / t_indexop
    );
}

// ---------------------------------------------------------------------
// §II motivation B — per-scalar indirect calls vs monomorphized kernels
// ---------------------------------------------------------------------
fn ablation_dispatch() {
    header("§II motivation — dyn-dispatch operators vs monomorphized kernels");
    let ctx = global_context();
    // Dense enough that per-scalar multiply/add dominates SPA overhead:
    // ~64 nnz/row ⇒ ~4M fused multiply-adds for C = A·A.
    let a = random_csr(1024, 1024 * 64, 21);
    let flops: usize = {
        let mut f = 0usize;
        for i in 0..a.nrows() {
            let (cols, _) = a.row(i);
            for &k in cols {
                f += a.row_nnz(k);
            }
        }
        f
    };
    // Boxed operator objects (the function-pointer path the paper
    // describes for SuiteSparse).
    let sr = Semiring::<f64, f64, f64>::plus_times();
    let t_dyn = median_secs(7, || {
        std::hint::black_box(graphblas_sparse::spgemm::spgemm(
            &ctx,
            &a,
            &a,
            |x, y| sr.multiply(x, y),
            |acc, z| *acc = sr.combine(acc, &z),
        ));
    });
    // Inline closures: fully monomorphized multiply/add.
    let t_static = median_secs(7, || {
        std::hint::black_box(graphblas_sparse::spgemm::spgemm(
            &ctx,
            &a,
            &a,
            |x: &f64, y: &f64| x * y,
            |acc: &mut f64, z: f64| *acc += z,
        ));
    });
    // Pure per-element comparison: a value map with no accumulator
    // structure at all.
    let unary = UnaryOp::<f64, f64>::new("fma", |x| x * 1.0000001 + 3.5);
    let t_map_dyn = median_secs(7, || {
        std::hint::black_box(a.map(&ctx, |v| unary.apply(v)));
    });
    let t_map_static = median_secs(7, || {
        std::hint::black_box(a.map(&ctx, |v: &f64| v * 1.0000001 + 3.5));
    });
    println!("workload: 1024² matrix, {} nnz, {flops} multiply-adds for C = A·A", a.nnz());
    println!("| kernel | Arc<dyn Fn> ops | monomorphized | penalty |");
    println!("|--------|-----------------|---------------|---------|");
    println!(
        "| SpGEMM (plus-times) | {} | {} | {:5.2}x |",
        fmt_time(t_dyn),
        fmt_time(t_static),
        t_dyn / t_static
    );
    println!(
        "| apply/map           | {} | {} | {:5.2}x |",
        fmt_time(t_map_dyn),
        fmt_time(t_map_static),
        t_map_dyn / t_map_static
    );
    println!(
        "(paper §II: per-scalar \"function pointer call\" is a real penalty; \
         static dispatch should win)"
    );
}

// ---------------------------------------------------------------------
// §III — nonblocking fusion of element-wise chains
// ---------------------------------------------------------------------
fn ablation_fusion() {
    header("§III — fused nonblocking pipelines vs eager blocking execution");
    let scale = 18usize;
    let n = 1 << scale;
    let idx: Vec<usize> = (0..n).collect();
    let vals: Vec<f64> = (0..n).map(|i| i as f64).collect();
    println!("workload: dense vector n = {n}; chain of k in-place apply stages");
    println!("| k | blocking (eager) | nonblocking (fused) | speedup |");
    println!("|---|------------------|---------------------|---------|");
    for k in [1usize, 2, 4, 8] {
        let run = |mode: Mode| {
            let ctx = Context::new(&global_context(), mode, ContextOptions::default());
            let v = Vector::<f64>::new_in(&ctx, n).unwrap();
            v.build(&idx, &vals, None).unwrap();
            v.wait(WaitMode::Materialize).unwrap();
            median_secs(3, || {
                for _ in 0..k {
                    apply_v(
                        &v,
                        no_mask_v(),
                        None,
                        &UnaryOp::new("inc", |x: &f64| x + 1.0),
                        &v,
                        &Descriptor::default(),
                    )
                    .unwrap();
                }
                v.wait(WaitMode::Complete).unwrap();
            })
        };
        let t_eager = run(Mode::Blocking);
        let t_fused = run(Mode::NonBlocking);
        println!(
            "| {k} | {} | {} | {:7.2}x |",
            fmt_time(t_eager),
            fmt_time(t_fused),
            t_eager / t_fused
        );
    }
}

// ---------------------------------------------------------------------
// Monoid terminal (annihilator) early exit
// ---------------------------------------------------------------------
fn ablation_terminal() {
    header("Ablation — monoid terminal (annihilator) early exit in mxv");
    // Dense boolean rows: with the LOR terminal, each row's *pull*
    // reduction stops at the first hit instead of scanning all
    // neighbours. (Only the pull kernel can exit early; the push kernel
    // must visit every product.)
    let n = 4096usize;
    let a = Matrix::<bool>::new(n, n).unwrap();
    let mut rows = Vec::with_capacity(n * 64);
    let mut cols = Vec::with_capacity(n * 64);
    for i in 0..n {
        for j in 0..64 {
            rows.push(i);
            cols.push((i + j) % n);
        }
    }
    a.build(&rows, &cols, &vec![true; rows.len()], Some(&BinaryOp::lor()))
        .unwrap();
    a.wait(WaitMode::Materialize).unwrap();
    let x = Vector::<bool>::new(n).unwrap();
    let all: Vec<usize> = (0..n).collect();
    x.build(&all, &vec![true; n], None).unwrap();
    let w = Vector::<bool>::new(n).unwrap();

    let with_terminal = Semiring::new(Monoid::lor(), BinaryOp::land());
    let without_terminal = Semiring::new(
        Monoid::new(BinaryOp::lor(), false), // same algebra, no terminal
        BinaryOp::land(),
    );
    let t_with = median_secs(7, || {
        graphblas_core::operations::mxv(
            &w,
            no_mask_v(),
            None,
            &with_terminal,
            &a,
            &x,
            &Descriptor::default(),
        )
        .unwrap();
    });
    let t_without = median_secs(7, || {
        graphblas_core::operations::mxv(
            &w,
            no_mask_v(),
            None,
            &without_terminal,
            &a,
            &x,
            &Descriptor::default(),
        )
        .unwrap();
    });
    println!("workload: {n}² boolean matrix, 64 nnz/row, dense frontier, w = A ∨.∧ x");
    println!("| monoid | time |");
    println!("|--------|------|");
    println!("| LOR with terminal=true (early exit) | {} |", fmt_time(t_with));
    println!("| LOR without terminal                | {} |", fmt_time(t_without));
    println!("early-exit speedup: {:.2}x", t_without / t_with);
}

// ---------------------------------------------------------------------
// Algorithm layer (the LAGraph role)
// ---------------------------------------------------------------------
fn algorithms() {
    header("Algorithm layer — LAGraph-style workloads on RMAT graphs");
    println!("| scale | n | edges | BFS | SSSP | PageRank | triangles | components | BC (4 sources) |");
    println!("|-------|---|-------|-----|------|----------|-----------|------------|----------------|");
    for scale in [12u32, 13, 14] {
        let a = rmat_bool(scale, 8, scale as u64);
        let w = rmat_weighted(scale, 8, scale as u64);
        let n = a.nrows();
        let edges = a.nvals().unwrap();
        let t_bfs = median_secs(3, || {
            std::hint::black_box(graphblas_algo::bfs_levels(&a, 0).unwrap());
        });
        let t_sssp = median_secs(3, || {
            std::hint::black_box(graphblas_algo::sssp_bellman_ford(&w, 0).unwrap());
        });
        let t_pr = median_secs(3, || {
            std::hint::black_box(graphblas_algo::pagerank(&a, 0.85, 1e-6, 50).unwrap());
        });
        let mut triangles = 0u64;
        let t_tc = median_secs(3, || {
            triangles = graphblas_algo::triangle_count(&a).unwrap();
        });
        let t_cc = median_secs(3, || {
            std::hint::black_box(graphblas_algo::connected_components(&a).unwrap());
        });
        let t_bc = median_secs(3, || {
            std::hint::black_box(
                graphblas_algo::betweenness_centrality(&a, &[0, 1, 2, 3]).unwrap(),
            );
        });
        println!(
            "| {scale} | {n} | {edges} | {} | {} | {} | {} ({triangles}) | {} | {} |",
            fmt_time(t_bfs),
            fmt_time(t_sssp),
            fmt_time(t_pr),
            fmt_time(t_tc),
            fmt_time(t_cc),
            fmt_time(t_bc)
        );
    }
}
