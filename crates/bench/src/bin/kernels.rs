//! `kernels` — persistent kernel benchmark baseline.
//!
//! Runs the kernel-level workloads the perf work targets — PageRank
//! (adaptive push/pull `vxm` + workspace reuse), BFS (masked
//! direction-optimizing traversal), SpGEMM (workspace-backed SPA, both
//! as a raw sparse-layer kernel and as a registry-dispatched `mxm`), and
//! a nonblocking fused apply chain (§III map fusion), and a
//! blocking-vs-nonblocking fused-pipeline ablation
//! (apply→select→mxv→apply through the op DAG, with per-mode `mem_high`
//! peak-memory growth) — and writes their
//! median wall times plus the workspace, direction, dispatch (kernel
//! registry static-vs-dyn), format (bitmap vs sparse store picks),
//! per-kernel latency (p50/p99), and memory-gauge blocks to
//! `BENCH_kernels.json` (full run) or `BENCH_kernels_smoke.json`
//! (`--smoke`; the two scales are numerically incomparable, so they keep
//! separate baselines for `benchcmp`). The full telemetry snapshot of
//! the same run is written alongside as `BENCH_obs.json`, so one
//! invocation refreshes both baselines.
//!
//! The §II motivation-B dispatch ablation (formerly the standalone
//! `ablation_dispatch` Criterion bench) now runs in-harness: each
//! builtin-semiring workload is timed twice, once with the monomorphized
//! kernel registry claiming dispatch ([`registry::force_dispatch`]
//! `(Some(true))`) and once forced down the type-erased `Arc<dyn Fn>`
//! path (`Some(false)`), so the static-vs-dyn medians land in the same
//! baseline file the regression protocol already diffs.
//!
//! Run with: `cargo run --release -p graphblas-bench --bin kernels`
//! (`--smoke` bounds the graph scale and run count for CI). Set
//! `GRB_TRACE=trace.json` to also export the run's per-thread timeline
//! as Chrome-trace JSON for `ui.perfetto.dev`, and `GRB_EXPLAIN=...json`
//! to export the reason-coded decision history for `grbexplain`. Set
//! `GRB_METRICS_ADDR=host:port` to serve a live Prometheus scrape
//! endpoint for the duration of the run (watch it with `grbtop`), or
//! `GRB_METRICS_DUMP=metrics.prom` to write the final exposition for
//! `metricscheck`.
//!
//! The JSON file is the baseline `scripts/bench.sh` refreshes and
//! `scripts/check.sh` validates; comparing two baselines across commits is
//! the regression protocol documented in EXPERIMENTS.md.

use graphblas_bench::{fmt_time, median_secs, random_csr, random_matrix, rmat_bool};
use graphblas_core::operations::{apply_v, mxm, mxv, select_v};
use graphblas_core::ops::registry;
use graphblas_core::{
    global_context, no_mask, no_mask_v, Context, ContextOptions, Descriptor, IndexUnaryOp, Matrix,
    Mode, Semiring, UnaryOp, Vector, WaitMode,
};
use graphblas_obs::{JsonWriter, Reason};

struct Params {
    smoke: bool,
    scale: u32,
    runs: usize,
    spgemm_n: usize,
    spgemm_nnz_per_row: usize,
    mxm_n: usize,
    mxm_nnz_per_row: usize,
    pipe_n: usize,
}

fn params() -> Params {
    let smoke = std::env::args().any(|a| a == "--smoke");
    // The mxm ablation operand is denser than the spgemm floor workload
    // (~64 nnz/row at full scale, the EXPERIMENTS.md §II shape): dispatch
    // cost is per multiply-add, so the ablation needs flops — not SPA
    // assembly — to dominate before the static-vs-dyn gap is visible.
    if smoke {
        Params {
            smoke,
            scale: 9,
            runs: 3,
            spgemm_n: 512,
            spgemm_nnz_per_row: 8,
            mxm_n: 256,
            mxm_nnz_per_row: 64,
            pipe_n: 1024,
        }
    } else {
        Params {
            smoke,
            scale: 13,
            runs: 5,
            spgemm_n: 2048,
            spgemm_nnz_per_row: 16,
            mxm_n: 512,
            mxm_nnz_per_row: 128,
            pipe_n: 4096,
        }
    }
}

/// Registry static-hit count so far (reads the same dispatch block the
/// baseline JSON emits).
fn static_hits() -> u64 {
    graphblas_obs::snapshot().dispatch.static_hits
}

/// Times `work` twice — registry static dispatch, then the forced dyn
/// fallback — and returns `(static_median, dyn_median)`. Each phase gets
/// one warm-up call so both medians see warm caches and a populated
/// workspace cache. Restores the environment-default dispatch mode
/// before returning.
fn ablate<F: FnMut()>(runs: usize, mut work: F) -> (f64, f64) {
    registry::force_dispatch(Some(true));
    work();
    let t_static = median_secs(runs, &mut work);
    registry::force_dispatch(Some(false));
    work();
    let t_dyn = median_secs(runs, &mut work);
    registry::force_dispatch(None);
    (t_static, t_dyn)
}

fn main() {
    graphblas_core::init(Mode::Blocking);
    let p = params();
    println!(
        "kernel baseline: rmat scale {} ({} runs/workload){}",
        p.scale,
        p.runs,
        if p.smoke { " [smoke]" } else { "" }
    );

    graphblas_obs::set_enabled(true);
    graphblas_obs::reset();

    // GRB_METRICS_ADDR=<host:port> serves the live Prometheus scrape
    // endpoint for the whole run (poll it with `grbtop`);
    // GRB_METRICS_DUMP=<path> arms a one-shot exposition dump at exit.
    // Either one starts the background sampler so window rates exist.
    if let Some(addr) = graphblas_obs::export::init() {
        println!("metrics endpoint listening on {addr}");
    }

    let a = rmat_bool(p.scale, 8, p.scale as u64);
    let n = a.nrows();
    let edges = a.nvals().expect("rmat graph nvals");

    // PageRank (plus/times f64) and BFS (lor/land + any/pair bool) run on
    // builtin semirings, so the registry must claim their kernels: the
    // static-hit counter is checkpointed around each static phase.
    let hits0 = static_hits();
    let (t_pagerank, t_pagerank_dyn) = ablate(p.runs, || {
        std::hint::black_box(graphblas_algo::pagerank(&a, 0.85, 1e-6, 50).expect("pagerank"));
    });
    assert!(
        static_hits() > hits0,
        "pagerank (plus/times f64) recorded no registry static hits"
    );

    let hits1 = static_hits();
    let (t_bfs, t_bfs_dyn) = ablate(p.runs, || {
        std::hint::black_box(graphblas_algo::bfs_levels(&a, 0).expect("bfs"));
    });
    assert!(
        static_hits() > hits1,
        "bfs (boolean semirings) recorded no registry static hits"
    );

    // Raw sparse-layer SpGEMM with hand-monomorphized closures: the
    // registry-independent floor the strict benchcmp gate tracks across
    // commits (kept identical to the v2 workload).
    let ctx = global_context();
    let c = random_csr(p.spgemm_n, p.spgemm_n * p.spgemm_nnz_per_row, 17);
    std::hint::black_box(graphblas_sparse::spgemm::spgemm(
        &ctx,
        &c,
        &c,
        |x: &f64, y: &f64| x * y,
        |acc: &mut f64, z: f64| *acc += z,
    ));
    let t_spgemm = median_secs(p.runs, || {
        std::hint::black_box(graphblas_sparse::spgemm::spgemm(
            &ctx,
            &c,
            &c,
            |x: &f64, y: &f64| x * y,
            |acc: &mut f64, z: f64| *acc += z,
        ));
    });

    // SpGEMM dispatch ablation through the container layer: `mxm` over
    // plus/times f64 routes through `registry::try_spgemm`, so the same
    // multiply measures the registry's monomorphized instantiation
    // against the `Arc<dyn Fn>` fallback.
    let am = random_matrix(p.mxm_n, p.mxm_n * p.mxm_nnz_per_row, 17);
    let cm = Matrix::<f64>::new(p.mxm_n, p.mxm_n).expect("mxm output");
    let sr = Semiring::<f64, f64, f64>::plus_times();
    let hits2 = static_hits();
    let (t_mxm, t_mxm_dyn) = ablate(p.runs, || {
        mxm(&cm, no_mask(), None, &sr, &am, &am, &Descriptor::default()).expect("mxm");
    });
    assert!(
        static_hits() > hits2,
        "mxm (plus/times f64) recorded no registry static hits"
    );

    // Blocking-vs-nonblocking fused-pipeline ablation (§III): the same
    // apply→select→mxv→apply pipeline per iteration, once under a
    // blocking context and once under the nonblocking op DAG. Blocking
    // executes every stage eagerly — each map is a full store traversal
    // (the first one canonicalizes the bitmap frontier to sparse), and
    // the look-ahead stage at the end of each iteration is computed and
    // materialized even though nothing reads it inside the loop.
    // Nonblocking leaves the maps pending (the next mxv folds them into
    // its numeric phase over the still-bitmap frontier) and leaves the
    // look-ahead node queued: a read forces only the subgraph it needs,
    // so that store never exists inside the loop. `mem_high` is the
    // growth of the container + workspace high-water marks over the
    // timed phase (re-armed at the phase boundary without disturbing the
    // run's counters or the event ring).
    let (ap_rows, ap_cols, ap_vals) = random_matrix(p.pipe_n, p.pipe_n * 8, 23)
        .extract_tuples()
        .expect("pipeline operand tuples");
    let up_idx: Vec<usize> = (0..p.pipe_n).collect();
    let up_vals: Vec<f64> = (0..p.pipe_n).map(|i| 1.0 + (i % 7) as f64 * 0.25).collect();
    let run_pipeline_phase = |mode: Mode| -> (f64, u64) {
        let pctx = Context::new(&ctx, mode, ContextOptions::default());
        // Operands live in the phase's own context (and are materialized
        // before anything is timed or the high-water marks re-arm).
        let ap = Matrix::<f64>::new_in(&pctx, p.pipe_n, p.pipe_n).expect("pipeline operand");
        ap.build(&ap_rows, &ap_cols, &ap_vals, None).expect("pipeline operand build");
        ap.wait(WaitMode::Materialize).expect("pipeline operand materialize");
        let up = Vector::<f64>::new_in(&pctx, p.pipe_n).expect("pipeline input");
        up.build(&up_idx, &up_vals, None).expect("pipeline input build");
        up.wait(WaitMode::Materialize).expect("pipeline input materialize");
        let sr = Semiring::<f64, f64, f64>::plus_times();
        let d = Descriptor::default();
        let pinc = UnaryOp::new("inc", |x: &f64| x + 1.0);
        let phalve = UnaryOp::new("halve", |x: &f64| x * 0.5);
        let mut iter = || {
            let w = Vector::<f64>::new_in(&pctx, p.pipe_n).expect("pipeline w");
            mxv(&w, no_mask_v(), None, &sr, &ap, &up, &d).expect("pipeline mxv");
            w.wait(WaitMode::Complete).expect("pipeline barrier");
            apply_v(&w, no_mask_v(), None, &pinc, &w, &d).expect("pipeline apply");
            select_v(&w, no_mask_v(), None, &IndexUnaryOp::valuegt(), &w, 3.0, &d)
                .expect("pipeline select");
            let y = Vector::<f64>::new_in(&pctx, p.pipe_n).expect("pipeline y");
            mxv(&y, no_mask_v(), None, &sr, &ap, &w, &d).expect("pipeline mxv2");
            apply_v(&y, no_mask_v(), None, &phalve, &y, &d).expect("pipeline apply2");
            y.wait(WaitMode::Complete).expect("pipeline read");
            // Look-ahead stage: produced every iteration, never read
            // inside the loop. Blocking mode pays the mxv and the store
            // here; the DAG leaves both on the queue.
            let z = Vector::<f64>::new_in(&pctx, p.pipe_n).expect("pipeline z");
            mxv(&z, no_mask_v(), None, &sr, &ap, &y, &d).expect("pipeline mxv3");
            apply_v(&z, no_mask_v(), None, &pinc, &z, &d).expect("pipeline apply3");
            std::hint::black_box(&z);
        };
        iter(); // warm the kernel caches and park the shared spmv scratch
        graphblas_obs::mem::rearm_high_water();
        let m0 = graphblas_obs::mem::totals();
        let t = median_secs(p.runs, &mut iter);
        let m1 = graphblas_obs::mem::totals();
        let mem_high = (m1.container_high - m0.container_live)
            + (m1.workspace_high - m0.workspace_live);
        // The deferred look-ahead must still be consumable: repeat the
        // stage and read it, which forces the queued subgraph in
        // nonblocking mode (and is an ordinary re-read in blocking).
        let z = Vector::<f64>::new_in(&pctx, p.pipe_n).expect("pipeline z tail");
        mxv(&z, no_mask_v(), None, &sr, &ap, &up, &d).expect("pipeline tail mxv");
        apply_v(&z, no_mask_v(), None, &pinc, &z, &d).expect("pipeline tail apply");
        assert!(
            z.nvals().expect("pipeline tail read") > 0,
            "pipeline look-ahead stage produced an empty result"
        );
        (t, mem_high)
    };
    let (t_pipe_blocking, mem_pipe_blocking) = run_pipeline_phase(Mode::Blocking);
    let (t_pipe, mem_pipe) = run_pipeline_phase(Mode::NonBlocking);

    // Fused apply chain (§III): a nonblocking child context queues
    // FUSE_CHAIN maps that `wait` flushes as one traversal — the workload
    // that exercises the pending-op fusion path (and, with decision
    // provenance on, emits `fuse-flush` events the explain gate asserts).
    const FUSE_CHAIN: usize = 6;
    let fuse_n = 1usize << (p.scale + 3);
    let fuse_ctx = Context::new(&ctx, Mode::NonBlocking, ContextOptions::default());
    let v = Vector::<f64>::new_in(&fuse_ctx, fuse_n).expect("fuse vector");
    let idx: Vec<usize> = (0..fuse_n).collect();
    let vals: Vec<f64> = (0..fuse_n).map(|i| i as f64).collect();
    v.build(&idx, &vals, None).expect("fuse build");
    v.wait(WaitMode::Materialize).expect("fuse materialize");
    let inc = UnaryOp::new("inc", |x: &f64| x + 1.0);
    let run_chain = |v: &Vector<f64>| {
        for _ in 0..FUSE_CHAIN {
            apply_v(v, no_mask_v(), None, &inc, v, &Descriptor::default()).expect("fused apply");
        }
        v.wait(WaitMode::Complete).expect("fuse wait");
    };
    run_chain(&v);
    let t_fused = median_secs(p.runs, || run_chain(&v));

    let snap = graphblas_obs::snapshot();
    // GRB_TRACE=<path> exports the per-thread timeline of everything above
    // as Chrome-trace JSON (validated by `tracecheck` in scripts/check.sh).
    if let Some(path) = graphblas_obs::timeline::write_trace_if_requested() {
        println!("timeline trace written: {path}");
    }
    // GRB_EXPLAIN=<path> exports the reason-coded decision history of the
    // same run as explain/v1 JSON (gated by `grbexplain` in check.sh).
    if let Some(path) = graphblas_obs::write_explain_if_requested() {
        println!("decision provenance written: {path}");
    }
    // GRB_METRICS_DUMP=<path> writes the final metrics exposition
    // (validated by `metricscheck` in check.sh).
    if let Some(path) = graphblas_obs::write_dump_if_requested() {
        println!("metrics exposition written: {path}");
    }
    graphblas_obs::set_enabled(false);

    let speedup = |stat: f64, dynm: f64| {
        if stat > 0.0 { dynm / stat } else { 0.0 }
    };
    println!("| workload | static | dyn | dyn/static | graph |");
    println!("|----------|--------|-----|------------|-------|");
    println!(
        "| pagerank | {} | {} | {:.2}x | n={n}, {edges} edges |",
        fmt_time(t_pagerank),
        fmt_time(t_pagerank_dyn),
        speedup(t_pagerank, t_pagerank_dyn)
    );
    println!(
        "| bfs      | {} | {} | {:.2}x | n={n}, {edges} edges |",
        fmt_time(t_bfs),
        fmt_time(t_bfs_dyn),
        speedup(t_bfs, t_bfs_dyn)
    );
    println!(
        "| spgemm   | {} | (raw kernel) | | {}², {} nnz |",
        fmt_time(t_spgemm),
        p.spgemm_n,
        c.nnz()
    );
    println!(
        "| mxm      | {} | {} | {:.2}x | {}², {} nnz |",
        fmt_time(t_mxm),
        fmt_time(t_mxm_dyn),
        speedup(t_mxm, t_mxm_dyn),
        p.mxm_n,
        am.nvals().expect("mxm operand nvals")
    );
    println!(
        "| fused    | {} | | | {FUSE_CHAIN}-map chain, n={fuse_n} |",
        fmt_time(t_fused)
    );
    println!(
        "| pipeline | {} | {} | {:.2}x | apply→select→mxv→apply, n={} (nonblocking vs blocking) |",
        fmt_time(t_pipe),
        fmt_time(t_pipe_blocking),
        speedup(t_pipe, t_pipe_blocking),
        p.pipe_n
    );
    println!(
        "pipeline mem high-water growth: {} bytes nonblocking vs {} bytes blocking",
        mem_pipe, mem_pipe_blocking
    );
    println!(
        "workspace: {} checkouts, {} hits, {} misses, {} bytes reused",
        snap.workspace.checkouts, snap.workspace.hits, snap.workspace.misses, snap.workspace.bytes_reused
    );
    println!(
        "direction: {} push picks, {} pull picks, {} transpose builds, {} transpose hits",
        snap.direction.push_picks,
        snap.direction.pull_picks,
        snap.direction.transpose_builds,
        snap.direction.transpose_hits
    );
    let dispatched = snap.dispatch.static_hits + snap.dispatch.dyn_fallbacks;
    let hit_ratio = if dispatched > 0 {
        snap.dispatch.static_hits as f64 / dispatched as f64
    } else {
        0.0
    };
    println!(
        "dispatch: {} static hits, {} dyn fallbacks ({:.0}% registry hit ratio)",
        snap.dispatch.static_hits,
        snap.dispatch.dyn_fallbacks,
        hit_ratio * 100.0
    );
    println!(
        "format: {} bitmap picks, {} sparse picks, {} conversions",
        snap.format.bitmap_picks, snap.format.svec_picks, snap.format.conversions
    );
    println!("| kernel | calls | p50 | p99 | max |");
    println!("|--------|-------|-----|-----|-----|");
    for k in snap.kernels.iter().filter(|k| k.calls > 0) {
        let h = snap.hist(k.kernel);
        println!(
            "| {} | {} | {} | {} | {} |",
            k.kernel.name(),
            k.calls,
            fmt_time(h.p50() as f64 / 1e9),
            fmt_time(h.p99() as f64 / 1e9),
            fmt_time(h.max as f64 / 1e9)
        );
    }
    println!(
        "memory: containers {} live / {} high, workspace {} live / {} high (bytes)",
        snap.mem.container_live,
        snap.mem.container_high,
        snap.mem.workspace_live,
        snap.mem.workspace_high
    );

    // The acceptance bar for the workspace cache: a steady-state iterative
    // workload must be reusing scratch, not reallocating per call.
    assert!(
        snap.workspace.hits > 0,
        "workspace cache recorded no hits across pagerank/bfs/spgemm"
    );
    assert!(
        snap.workspace.hits >= snap.workspace.misses,
        "steady-state runs should mostly hit the workspace cache \
         ({} hits vs {} misses)",
        snap.workspace.hits,
        snap.workspace.misses
    );
    assert!(
        snap.direction.push_picks + snap.direction.pull_picks > 0,
        "direction dispatch recorded no picks"
    );
    // The registry ablation must have exercised both paths, and the store
    // layer must have made format picks (bitmap or sparse) for the
    // frontier-producing workloads above.
    assert!(
        snap.dispatch.static_hits > 0 && snap.dispatch.dyn_fallbacks > 0,
        "dispatch ablation did not record both static hits ({}) and dyn \
         fallbacks ({})",
        snap.dispatch.static_hits,
        snap.dispatch.dyn_fallbacks
    );
    assert!(
        snap.format.bitmap_picks + snap.format.svec_picks > 0,
        "vector store layer recorded no format picks"
    );
    // The histogram and memory layers must have seen this run: every kernel
    // that was called has latency samples, and the Table III stores the
    // workloads materialized were charged to the container gauge.
    for k in snap.kernels.iter().filter(|k| k.calls > 0) {
        let h = snap.hist(k.kernel);
        assert!(
            h.count == k.calls && h.p50() <= h.p99() && h.p99() <= h.max,
            "latency histogram inconsistent for {}: {} samples vs {} calls",
            k.kernel.name(),
            h.count,
            k.calls
        );
    }
    assert!(
        snap.mem.container_high > 0,
        "memory accounting recorded no container bytes"
    );
    // Decision provenance must have seen this run: the dispatcher, the
    // workspace cache, the fusion engine, the kernel registry, and the
    // format picker each made choices above, so each must have left
    // reason-coded events behind.
    let decided = |r: Reason| {
        snap.decisions
            .iter()
            .find(|(dr, _)| *dr == r)
            .map(|(_, n)| *n)
            .unwrap_or(0)
    };
    assert!(
        decided(Reason::DirectionPush) + decided(Reason::DirectionPull) > 0,
        "no direction-pick decision events recorded"
    );
    assert!(
        decided(Reason::WorkspaceHit) + decided(Reason::WorkspaceMiss) > 0,
        "no workspace-checkout decision events recorded"
    );
    assert!(
        decided(Reason::FuseFlush) > 0,
        "no fuse-flush decision events recorded"
    );
    assert!(
        decided(Reason::DispatchPick) > 0,
        "no dispatch-pick decision events recorded"
    );
    assert!(
        decided(Reason::FormatPick) > 0,
        "no format-pick decision events recorded"
    );
    assert_eq!(
        snap.decisions_total,
        snap.decisions.iter().map(|(_, n)| n).sum::<u64>(),
        "decision aggregates disagree with the total"
    );
    // The §III ablation acceptance bar: the fused nonblocking pipeline
    // must beat eager blocking execution on median latency AND peak
    // memory growth (the eliminated traversals and the never-built
    // look-ahead store are the whole point), and the DAG engine must
    // have left its accounting behind — enqueued nodes, input- and
    // output-side fusions, forced drains, and the matching reason-coded
    // decision events.
    assert!(
        t_pipe < t_pipe_blocking,
        "nonblocking fused pipeline ({}) is not faster than blocking ({})",
        fmt_time(t_pipe),
        fmt_time(t_pipe_blocking)
    );
    assert!(
        mem_pipe < mem_pipe_blocking,
        "nonblocking pipeline mem high-water growth ({mem_pipe} bytes) is not \
         strictly below blocking ({mem_pipe_blocking} bytes)"
    );
    assert!(snap.dag.nodes_enqueued > 0, "DAG recorded no enqueued op nodes");
    assert!(
        snap.dag.pre_fused > 0 && snap.dag.post_fused > 0,
        "DAG recorded no cross-operation fusion (pre {} / post {})",
        snap.dag.pre_fused,
        snap.dag.post_fused
    );
    assert!(snap.dag.forces > 0, "DAG recorded no forced drains");
    assert!(
        decided(Reason::DagFuse) > 0,
        "no dag-fuse decision events recorded"
    );
    assert!(
        decided(Reason::DagForce) > 0,
        "no dag-force decision events recorded"
    );

    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("schema");
    w.string("graphblas-bench/kernels/v4");
    w.key("smoke");
    w.boolean(p.smoke);
    w.key("scale");
    w.number(p.scale as u64);
    w.key("runs");
    w.number(p.runs as u64);
    w.key("graph");
    w.begin_object();
    w.key("n");
    w.number(n as u64);
    w.key("edges");
    w.number(edges as u64);
    w.key("spgemm_n");
    w.number(p.spgemm_n as u64);
    w.key("spgemm_nnz");
    w.number(c.nnz() as u64);
    w.key("mxm_n");
    w.number(p.mxm_n as u64);
    w.key("mxm_nnz");
    w.number(am.nvals().expect("mxm operand nvals") as u64);
    w.end_object();
    // Registry-on medians under the workload's own name (so benchcmp
    // diffs them against older baselines), dyn-forced medians under the
    // `_dyn` suffix — the in-baseline form of the §II dispatch ablation.
    w.key("median_secs");
    w.begin_object();
    w.key("pagerank");
    w.number_f64(t_pagerank);
    w.key("pagerank_dyn");
    w.number_f64(t_pagerank_dyn);
    w.key("bfs");
    w.number_f64(t_bfs);
    w.key("bfs_dyn");
    w.number_f64(t_bfs_dyn);
    w.key("spgemm");
    w.number_f64(t_spgemm);
    w.key("mxm");
    w.number_f64(t_mxm);
    w.key("mxm_dyn");
    w.number_f64(t_mxm_dyn);
    w.key("fused_apply");
    w.number_f64(t_fused);
    w.key("fused_pipeline");
    w.number_f64(t_pipe);
    w.key("fused_pipeline_blocking");
    w.number_f64(t_pipe_blocking);
    w.end_object();
    // The §III blocking-vs-nonblocking ablation, with the per-mode peak
    // memory growth (`mem_high`) alongside the medians benchcmp diffs.
    w.key("fused_pipeline");
    w.begin_object();
    w.key("chain");
    w.string("apply-select-mxv-apply");
    w.key("n");
    w.number(p.pipe_n as u64);
    w.key("nnz");
    w.number(ap_rows.len() as u64);
    w.key("nonblocking");
    w.begin_object();
    w.key("median_secs");
    w.number_f64(t_pipe);
    w.key("mem_high");
    w.number(mem_pipe);
    w.end_object();
    w.key("blocking");
    w.begin_object();
    w.key("median_secs");
    w.number_f64(t_pipe_blocking);
    w.key("mem_high");
    w.number(mem_pipe_blocking);
    w.end_object();
    w.end_object();
    w.key("workspace");
    w.begin_object();
    w.key("checkouts");
    w.number(snap.workspace.checkouts);
    w.key("hits");
    w.number(snap.workspace.hits);
    w.key("misses");
    w.number(snap.workspace.misses);
    w.key("bytes_reused");
    w.number(snap.workspace.bytes_reused);
    w.end_object();
    w.key("direction");
    w.begin_object();
    w.key("push_picks");
    w.number(snap.direction.push_picks);
    w.key("pull_picks");
    w.number(snap.direction.pull_picks);
    w.key("transpose_builds");
    w.number(snap.direction.transpose_builds);
    w.key("transpose_hits");
    w.number(snap.direction.transpose_hits);
    w.end_object();
    // Kernel-registry dispatch statistics for the whole run. The hit
    // ratio is diluted by the forced-dyn ablation phases by design — it
    // still proves the registry claimed every builtin-semiring kernel the
    // static phases dispatched.
    w.key("dispatch");
    w.begin_object();
    w.key("static_hits");
    w.number(snap.dispatch.static_hits);
    w.key("dyn_fallbacks");
    w.number(snap.dispatch.dyn_fallbacks);
    w.key("hit_ratio");
    w.number_f64(hit_ratio);
    w.end_object();
    w.key("format");
    w.begin_object();
    w.key("bitmap_picks");
    w.number(snap.format.bitmap_picks);
    w.key("svec_picks");
    w.number(snap.format.svec_picks);
    w.key("conversions");
    w.number(snap.format.conversions);
    w.end_object();
    // Per-kernel latency distribution (log₂-bucket histograms, kernels that
    // actually ran). Medians above answer "how fast overall"; these answer
    // "where did the time go and how heavy is the tail".
    w.key("kernels");
    w.begin_object();
    for k in snap.kernels.iter().filter(|k| k.calls > 0) {
        let h = snap.hist(k.kernel);
        w.key(k.kernel.name());
        w.begin_object();
        w.key("calls");
        w.number(k.calls);
        w.key("nanos");
        w.number(k.nanos);
        w.key("p50_ns");
        w.number(h.p50());
        w.key("p99_ns");
        w.number(h.p99());
        w.key("max_ns");
        w.number(h.max);
        w.end_object();
    }
    w.end_object();
    w.key("mem");
    w.begin_object();
    w.key("container_live_bytes");
    w.number(snap.mem.container_live);
    w.key("container_high_bytes");
    w.number(snap.mem.container_high);
    w.key("workspace_live_bytes");
    w.number(snap.mem.workspace_live);
    w.key("workspace_high_bytes");
    w.number(snap.mem.workspace_high);
    w.end_object();
    w.end_object();
    let json = w.finish();
    // Smoke runs (scale 9) and full runs (scale 13) are numerically
    // incomparable, so they keep separate baseline files — benchcmp then
    // always diffs like against like.
    let kernels_file = if p.smoke {
        "BENCH_kernels_smoke.json"
    } else {
        "BENCH_kernels.json"
    };
    std::fs::write(kernels_file, &json).expect("write kernels baseline");
    println!("baseline written: {kernels_file} ({} bytes)", json.len());

    // The same run's full telemetry snapshot (histograms, per-context
    // rollups, memory gauges — everything `graphblas_obs::snapshot`
    // collects, minus the event ring) as the second baseline file.
    let obs_json = snap.to_json_with(false);
    std::fs::write("BENCH_obs.json", &obs_json).expect("write BENCH_obs.json");
    println!("obs snapshot written: BENCH_obs.json ({} bytes)", obs_json.len());
}
