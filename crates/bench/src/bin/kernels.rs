//! `kernels` — persistent kernel benchmark baseline.
//!
//! Runs the three kernel-level workloads the perf work targets —
//! PageRank (adaptive push/pull `vxm` + workspace reuse), BFS
//! (masked direction-optimizing traversal), and SpGEMM (workspace-backed
//! SPA) — and writes their median wall times plus the workspace and
//! direction counter blocks to `BENCH_kernels.json`.
//!
//! Run with: `cargo run --release -p graphblas-bench --bin kernels`
//! (`--smoke` bounds the graph scale and run count for CI).
//!
//! The JSON file is the baseline `scripts/bench.sh` refreshes and
//! `scripts/check.sh` validates; comparing two baselines across commits is
//! the regression protocol documented in EXPERIMENTS.md.

use graphblas_bench::{fmt_time, median_secs, random_csr, rmat_bool};
use graphblas_core::{global_context, Mode};
use graphblas_obs::JsonWriter;

struct Params {
    smoke: bool,
    scale: u32,
    runs: usize,
    spgemm_n: usize,
    spgemm_nnz_per_row: usize,
}

fn params() -> Params {
    let smoke = std::env::args().any(|a| a == "--smoke");
    if smoke {
        Params { smoke, scale: 9, runs: 3, spgemm_n: 512, spgemm_nnz_per_row: 8 }
    } else {
        Params { smoke, scale: 13, runs: 5, spgemm_n: 2048, spgemm_nnz_per_row: 16 }
    }
}

fn main() {
    graphblas_core::init(Mode::Blocking);
    let p = params();
    println!(
        "kernel baseline: rmat scale {} ({} runs/workload){}",
        p.scale,
        p.runs,
        if p.smoke { " [smoke]" } else { "" }
    );

    graphblas_obs::set_enabled(true);
    graphblas_obs::reset();

    let a = rmat_bool(p.scale, 8, p.scale as u64);
    let n = a.nrows();
    let edges = a.nvals().expect("rmat graph nvals");

    // Warm each workload once so the measured medians see warm caches and
    // a populated per-thread workspace cache (steady-state, the number the
    // regression protocol compares).
    std::hint::black_box(graphblas_algo::pagerank(&a, 0.85, 1e-6, 50).expect("pagerank"));
    let t_pagerank = median_secs(p.runs, || {
        std::hint::black_box(graphblas_algo::pagerank(&a, 0.85, 1e-6, 50).expect("pagerank"));
    });

    std::hint::black_box(graphblas_algo::bfs_levels(&a, 0).expect("bfs"));
    let t_bfs = median_secs(p.runs, || {
        std::hint::black_box(graphblas_algo::bfs_levels(&a, 0).expect("bfs"));
    });

    let ctx = global_context();
    let c = random_csr(p.spgemm_n, p.spgemm_n * p.spgemm_nnz_per_row, 17);
    std::hint::black_box(graphblas_sparse::spgemm::spgemm(
        &ctx,
        &c,
        &c,
        |x: &f64, y: &f64| x * y,
        |acc: &mut f64, z: f64| *acc += z,
    ));
    let t_spgemm = median_secs(p.runs, || {
        std::hint::black_box(graphblas_sparse::spgemm::spgemm(
            &ctx,
            &c,
            &c,
            |x: &f64, y: &f64| x * y,
            |acc: &mut f64, z: f64| *acc += z,
        ));
    });

    let snap = graphblas_obs::snapshot();
    graphblas_obs::set_enabled(false);

    println!("| workload | median | graph |");
    println!("|----------|--------|-------|");
    println!("| pagerank | {} | n={n}, {edges} edges |", fmt_time(t_pagerank));
    println!("| bfs      | {} | n={n}, {edges} edges |", fmt_time(t_bfs));
    println!(
        "| spgemm   | {} | {}², {} nnz |",
        fmt_time(t_spgemm),
        p.spgemm_n,
        c.nnz()
    );
    println!(
        "workspace: {} checkouts, {} hits, {} misses, {} bytes reused",
        snap.workspace.checkouts, snap.workspace.hits, snap.workspace.misses, snap.workspace.bytes_reused
    );
    println!(
        "direction: {} push picks, {} pull picks, {} transpose builds, {} transpose hits",
        snap.direction.push_picks,
        snap.direction.pull_picks,
        snap.direction.transpose_builds,
        snap.direction.transpose_hits
    );

    // The acceptance bar for the workspace cache: a steady-state iterative
    // workload must be reusing scratch, not reallocating per call.
    assert!(
        snap.workspace.hits > 0,
        "workspace cache recorded no hits across pagerank/bfs/spgemm"
    );
    assert!(
        snap.workspace.hits >= snap.workspace.misses,
        "steady-state runs should mostly hit the workspace cache \
         ({} hits vs {} misses)",
        snap.workspace.hits,
        snap.workspace.misses
    );
    assert!(
        snap.direction.push_picks + snap.direction.pull_picks > 0,
        "direction dispatch recorded no picks"
    );

    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("schema");
    w.string("graphblas-bench/kernels/v1");
    w.key("smoke");
    w.boolean(p.smoke);
    w.key("scale");
    w.number(p.scale as u64);
    w.key("runs");
    w.number(p.runs as u64);
    w.key("graph");
    w.begin_object();
    w.key("n");
    w.number(n as u64);
    w.key("edges");
    w.number(edges as u64);
    w.key("spgemm_n");
    w.number(p.spgemm_n as u64);
    w.key("spgemm_nnz");
    w.number(c.nnz() as u64);
    w.end_object();
    w.key("median_secs");
    w.begin_object();
    w.key("pagerank");
    w.number_f64(t_pagerank);
    w.key("bfs");
    w.number_f64(t_bfs);
    w.key("spgemm");
    w.number_f64(t_spgemm);
    w.end_object();
    w.key("workspace");
    w.begin_object();
    w.key("checkouts");
    w.number(snap.workspace.checkouts);
    w.key("hits");
    w.number(snap.workspace.hits);
    w.key("misses");
    w.number(snap.workspace.misses);
    w.key("bytes_reused");
    w.number(snap.workspace.bytes_reused);
    w.end_object();
    w.key("direction");
    w.begin_object();
    w.key("push_picks");
    w.number(snap.direction.push_picks);
    w.key("pull_picks");
    w.number(snap.direction.pull_picks);
    w.key("transpose_builds");
    w.number(snap.direction.transpose_builds);
    w.key("transpose_hits");
    w.number(snap.direction.transpose_hits);
    w.end_object();
    w.end_object();
    let json = w.finish();
    std::fs::write("BENCH_kernels.json", &json).expect("write BENCH_kernels.json");
    println!("baseline written: BENCH_kernels.json ({} bytes)", json.len());
}
