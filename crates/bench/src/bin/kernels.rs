//! `kernels` — persistent kernel benchmark baseline.
//!
//! Runs the four kernel-level workloads the perf work targets —
//! PageRank (adaptive push/pull `vxm` + workspace reuse), BFS
//! (masked direction-optimizing traversal), SpGEMM (workspace-backed
//! SPA), and a nonblocking fused apply chain (§III map fusion) — and
//! writes their median wall times plus the workspace, direction,
//! per-kernel latency (p50/p99), and memory-gauge blocks to
//! `BENCH_kernels.json` (full run) or `BENCH_kernels_smoke.json`
//! (`--smoke`; the two scales are numerically incomparable, so they keep
//! separate baselines for `benchcmp`). The full telemetry snapshot of
//! the same run is written alongside as `BENCH_obs.json`, so one
//! invocation refreshes both baselines.
//!
//! Run with: `cargo run --release -p graphblas-bench --bin kernels`
//! (`--smoke` bounds the graph scale and run count for CI). Set
//! `GRB_TRACE=trace.json` to also export the run's per-thread timeline
//! as Chrome-trace JSON for `ui.perfetto.dev`, and `GRB_EXPLAIN=...json`
//! to export the reason-coded decision history for `grbexplain`.
//!
//! The JSON file is the baseline `scripts/bench.sh` refreshes and
//! `scripts/check.sh` validates; comparing two baselines across commits is
//! the regression protocol documented in EXPERIMENTS.md.

use graphblas_bench::{fmt_time, median_secs, random_csr, rmat_bool};
use graphblas_core::operations::apply_v;
use graphblas_core::{
    global_context, no_mask_v, Context, ContextOptions, Descriptor, Mode, UnaryOp, Vector,
    WaitMode,
};
use graphblas_obs::{JsonWriter, Reason};

struct Params {
    smoke: bool,
    scale: u32,
    runs: usize,
    spgemm_n: usize,
    spgemm_nnz_per_row: usize,
}

fn params() -> Params {
    let smoke = std::env::args().any(|a| a == "--smoke");
    if smoke {
        Params { smoke, scale: 9, runs: 3, spgemm_n: 512, spgemm_nnz_per_row: 8 }
    } else {
        Params { smoke, scale: 13, runs: 5, spgemm_n: 2048, spgemm_nnz_per_row: 16 }
    }
}

fn main() {
    graphblas_core::init(Mode::Blocking);
    let p = params();
    println!(
        "kernel baseline: rmat scale {} ({} runs/workload){}",
        p.scale,
        p.runs,
        if p.smoke { " [smoke]" } else { "" }
    );

    graphblas_obs::set_enabled(true);
    graphblas_obs::reset();

    let a = rmat_bool(p.scale, 8, p.scale as u64);
    let n = a.nrows();
    let edges = a.nvals().expect("rmat graph nvals");

    // Warm each workload once so the measured medians see warm caches and
    // a populated per-thread workspace cache (steady-state, the number the
    // regression protocol compares).
    std::hint::black_box(graphblas_algo::pagerank(&a, 0.85, 1e-6, 50).expect("pagerank"));
    let t_pagerank = median_secs(p.runs, || {
        std::hint::black_box(graphblas_algo::pagerank(&a, 0.85, 1e-6, 50).expect("pagerank"));
    });

    std::hint::black_box(graphblas_algo::bfs_levels(&a, 0).expect("bfs"));
    let t_bfs = median_secs(p.runs, || {
        std::hint::black_box(graphblas_algo::bfs_levels(&a, 0).expect("bfs"));
    });

    let ctx = global_context();
    let c = random_csr(p.spgemm_n, p.spgemm_n * p.spgemm_nnz_per_row, 17);
    std::hint::black_box(graphblas_sparse::spgemm::spgemm(
        &ctx,
        &c,
        &c,
        |x: &f64, y: &f64| x * y,
        |acc: &mut f64, z: f64| *acc += z,
    ));
    let t_spgemm = median_secs(p.runs, || {
        std::hint::black_box(graphblas_sparse::spgemm::spgemm(
            &ctx,
            &c,
            &c,
            |x: &f64, y: &f64| x * y,
            |acc: &mut f64, z: f64| *acc += z,
        ));
    });

    // Fused apply chain (§III): a nonblocking child context queues
    // FUSE_CHAIN maps that `wait` flushes as one traversal — the workload
    // that exercises the pending-op fusion path (and, with decision
    // provenance on, emits `fuse-flush` events the explain gate asserts).
    const FUSE_CHAIN: usize = 6;
    let fuse_n = 1usize << (p.scale + 3);
    let fuse_ctx = Context::new(&ctx, Mode::NonBlocking, ContextOptions::default());
    let v = Vector::<f64>::new_in(&fuse_ctx, fuse_n).expect("fuse vector");
    let idx: Vec<usize> = (0..fuse_n).collect();
    let vals: Vec<f64> = (0..fuse_n).map(|i| i as f64).collect();
    v.build(&idx, &vals, None).expect("fuse build");
    v.wait(WaitMode::Materialize).expect("fuse materialize");
    let inc = UnaryOp::new("inc", |x: &f64| x + 1.0);
    let run_chain = |v: &Vector<f64>| {
        for _ in 0..FUSE_CHAIN {
            apply_v(v, no_mask_v(), None, &inc, v, &Descriptor::default()).expect("fused apply");
        }
        v.wait(WaitMode::Complete).expect("fuse wait");
    };
    run_chain(&v);
    let t_fused = median_secs(p.runs, || run_chain(&v));

    let snap = graphblas_obs::snapshot();
    // GRB_TRACE=<path> exports the per-thread timeline of everything above
    // as Chrome-trace JSON (validated by `tracecheck` in scripts/check.sh).
    if let Some(path) = graphblas_obs::timeline::write_trace_if_requested() {
        println!("timeline trace written: {path}");
    }
    // GRB_EXPLAIN=<path> exports the reason-coded decision history of the
    // same run as explain/v1 JSON (gated by `grbexplain` in check.sh).
    if let Some(path) = graphblas_obs::write_explain_if_requested() {
        println!("decision provenance written: {path}");
    }
    graphblas_obs::set_enabled(false);

    println!("| workload | median | graph |");
    println!("|----------|--------|-------|");
    println!("| pagerank | {} | n={n}, {edges} edges |", fmt_time(t_pagerank));
    println!("| bfs      | {} | n={n}, {edges} edges |", fmt_time(t_bfs));
    println!(
        "| spgemm   | {} | {}², {} nnz |",
        fmt_time(t_spgemm),
        p.spgemm_n,
        c.nnz()
    );
    println!(
        "| fused    | {} | {FUSE_CHAIN}-map chain, n={fuse_n} |",
        fmt_time(t_fused)
    );
    println!(
        "workspace: {} checkouts, {} hits, {} misses, {} bytes reused",
        snap.workspace.checkouts, snap.workspace.hits, snap.workspace.misses, snap.workspace.bytes_reused
    );
    println!(
        "direction: {} push picks, {} pull picks, {} transpose builds, {} transpose hits",
        snap.direction.push_picks,
        snap.direction.pull_picks,
        snap.direction.transpose_builds,
        snap.direction.transpose_hits
    );
    println!("| kernel | calls | p50 | p99 | max |");
    println!("|--------|-------|-----|-----|-----|");
    for k in snap.kernels.iter().filter(|k| k.calls > 0) {
        let h = snap.hist(k.kernel);
        println!(
            "| {} | {} | {} | {} | {} |",
            k.kernel.name(),
            k.calls,
            fmt_time(h.p50() as f64 / 1e9),
            fmt_time(h.p99() as f64 / 1e9),
            fmt_time(h.max as f64 / 1e9)
        );
    }
    println!(
        "memory: containers {} live / {} high, workspace {} live / {} high (bytes)",
        snap.mem.container_live,
        snap.mem.container_high,
        snap.mem.workspace_live,
        snap.mem.workspace_high
    );

    // The acceptance bar for the workspace cache: a steady-state iterative
    // workload must be reusing scratch, not reallocating per call.
    assert!(
        snap.workspace.hits > 0,
        "workspace cache recorded no hits across pagerank/bfs/spgemm"
    );
    assert!(
        snap.workspace.hits >= snap.workspace.misses,
        "steady-state runs should mostly hit the workspace cache \
         ({} hits vs {} misses)",
        snap.workspace.hits,
        snap.workspace.misses
    );
    assert!(
        snap.direction.push_picks + snap.direction.pull_picks > 0,
        "direction dispatch recorded no picks"
    );
    // The histogram and memory layers must have seen this run: every kernel
    // that was called has latency samples, and the Table III stores the
    // workloads materialized were charged to the container gauge.
    for k in snap.kernels.iter().filter(|k| k.calls > 0) {
        let h = snap.hist(k.kernel);
        assert!(
            h.count == k.calls && h.p50() <= h.p99() && h.p99() <= h.max,
            "latency histogram inconsistent for {}: {} samples vs {} calls",
            k.kernel.name(),
            h.count,
            k.calls
        );
    }
    assert!(
        snap.mem.container_high > 0,
        "memory accounting recorded no container bytes"
    );
    // Decision provenance must have seen this run: the dispatcher, the
    // workspace cache, and the fusion engine each made choices above, so
    // each must have left reason-coded events behind.
    let decided = |r: Reason| {
        snap.decisions
            .iter()
            .find(|(dr, _)| *dr == r)
            .map(|(_, n)| *n)
            .unwrap_or(0)
    };
    assert!(
        decided(Reason::DirectionPush) + decided(Reason::DirectionPull) > 0,
        "no direction-pick decision events recorded"
    );
    assert!(
        decided(Reason::WorkspaceHit) + decided(Reason::WorkspaceMiss) > 0,
        "no workspace-checkout decision events recorded"
    );
    assert!(
        decided(Reason::FuseFlush) > 0,
        "no fuse-flush decision events recorded"
    );
    assert_eq!(
        snap.decisions_total,
        snap.decisions.iter().map(|(_, n)| n).sum::<u64>(),
        "decision aggregates disagree with the total"
    );

    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("schema");
    w.string("graphblas-bench/kernels/v2");
    w.key("smoke");
    w.boolean(p.smoke);
    w.key("scale");
    w.number(p.scale as u64);
    w.key("runs");
    w.number(p.runs as u64);
    w.key("graph");
    w.begin_object();
    w.key("n");
    w.number(n as u64);
    w.key("edges");
    w.number(edges as u64);
    w.key("spgemm_n");
    w.number(p.spgemm_n as u64);
    w.key("spgemm_nnz");
    w.number(c.nnz() as u64);
    w.end_object();
    w.key("median_secs");
    w.begin_object();
    w.key("pagerank");
    w.number_f64(t_pagerank);
    w.key("bfs");
    w.number_f64(t_bfs);
    w.key("spgemm");
    w.number_f64(t_spgemm);
    w.key("fused_apply");
    w.number_f64(t_fused);
    w.end_object();
    w.key("workspace");
    w.begin_object();
    w.key("checkouts");
    w.number(snap.workspace.checkouts);
    w.key("hits");
    w.number(snap.workspace.hits);
    w.key("misses");
    w.number(snap.workspace.misses);
    w.key("bytes_reused");
    w.number(snap.workspace.bytes_reused);
    w.end_object();
    w.key("direction");
    w.begin_object();
    w.key("push_picks");
    w.number(snap.direction.push_picks);
    w.key("pull_picks");
    w.number(snap.direction.pull_picks);
    w.key("transpose_builds");
    w.number(snap.direction.transpose_builds);
    w.key("transpose_hits");
    w.number(snap.direction.transpose_hits);
    w.end_object();
    // Per-kernel latency distribution (log₂-bucket histograms, kernels that
    // actually ran). Medians above answer "how fast overall"; these answer
    // "where did the time go and how heavy is the tail".
    w.key("kernels");
    w.begin_object();
    for k in snap.kernels.iter().filter(|k| k.calls > 0) {
        let h = snap.hist(k.kernel);
        w.key(k.kernel.name());
        w.begin_object();
        w.key("calls");
        w.number(k.calls);
        w.key("nanos");
        w.number(k.nanos);
        w.key("p50_ns");
        w.number(h.p50());
        w.key("p99_ns");
        w.number(h.p99());
        w.key("max_ns");
        w.number(h.max);
        w.end_object();
    }
    w.end_object();
    w.key("mem");
    w.begin_object();
    w.key("container_live_bytes");
    w.number(snap.mem.container_live);
    w.key("container_high_bytes");
    w.number(snap.mem.container_high);
    w.key("workspace_live_bytes");
    w.number(snap.mem.workspace_live);
    w.key("workspace_high_bytes");
    w.number(snap.mem.workspace_high);
    w.end_object();
    w.end_object();
    let json = w.finish();
    // Smoke runs (scale 9) and full runs (scale 13) are numerically
    // incomparable, so they keep separate baseline files — benchcmp then
    // always diffs like against like.
    let kernels_file = if p.smoke {
        "BENCH_kernels_smoke.json"
    } else {
        "BENCH_kernels.json"
    };
    std::fs::write(kernels_file, &json).expect("write kernels baseline");
    println!("baseline written: {kernels_file} ({} bytes)", json.len());

    // The same run's full telemetry snapshot (histograms, per-context
    // rollups, memory gauges — everything `graphblas_obs::snapshot`
    // collects, minus the event ring) as the second baseline file.
    let obs_json = snap.to_json_with(false);
    std::fs::write("BENCH_obs.json", &obs_json).expect("write BENCH_obs.json");
    println!("obs snapshot written: BENCH_obs.json ({} bytes)", obs_json.len());
}
