//! Shared workload construction and timing helpers for the benchmark
//! harness that regenerates the paper's tables and figures.
//!
//! Every bench target and the `repro` binary build their inputs through
//! this crate so that Criterion runs and the printed report measure the
//! same workloads.

use graphblas_core::{BinaryOp, Matrix, Vector};
use graphblas_io::{erdos_renyi, rmat};
use graphblas_sparse::{Coo, Csr};
use graphblas_exec::rng::prelude::*;
use graphblas_exec::rng::StdRng;

/// Symmetrized boolean RMAT adjacency matrix (no self-loops).
pub fn rmat_bool(scale: u32, edge_factor: usize, seed: u64) -> Matrix<bool> {
    rmat(scale, edge_factor, seed)
        .without_self_loops()
        .undirected()
        .to_bool_matrix()
        .expect("generator output is valid")
}

/// Directed weighted RMAT adjacency matrix.
pub fn rmat_weighted(scale: u32, edge_factor: usize, seed: u64) -> Matrix<f64> {
    rmat(scale, edge_factor, seed)
        .without_self_loops()
        .to_weighted_matrix(seed)
        .expect("generator output is valid")
}

/// Uniform random `Matrix<f64>` with ~`nnz` entries.
pub fn random_matrix(n: usize, nnz: usize, seed: u64) -> Matrix<f64> {
    erdos_renyi(n, nnz, seed)
        .to_weighted_matrix(seed ^ 0xabcd)
        .expect("generator output is valid")
}

/// Random `Matrix<i64>` (for exact-arithmetic comparisons).
pub fn random_matrix_i64(n: usize, nnz: usize, seed: u64) -> Matrix<i64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let m = Matrix::<i64>::new(n, n).expect("positive dims");
    let rows: Vec<usize> = (0..nnz).map(|_| rng.gen_range(0..n)).collect();
    let cols: Vec<usize> = (0..nnz).map(|_| rng.gen_range(0..n)).collect();
    let vals: Vec<i64> = (0..nnz).map(|_| rng.gen_range(-9..10)).collect();
    m.build(&rows, &cols, &vals, Some(&BinaryOp::plus()))
        .expect("build succeeds");
    m
}

/// Random sparse vector with `nnz` entries out of `n`.
pub fn random_vector(n: usize, nnz: usize, seed: u64) -> Vector<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(&mut rng);
    idx.truncate(nnz);
    idx.sort_unstable();
    let vals: Vec<f64> = idx.iter().map(|_| rng.gen_range(0.1..1.0)).collect();
    let v = Vector::<f64>::new(n).expect("positive length");
    v.build(&idx, &vals, None).expect("build succeeds");
    v
}

/// Raw CSR workload for kernel-level (dispatch-ablation) benches: bypasses
/// the container layer entirely.
pub fn random_csr(n: usize, nnz: usize, seed: u64) -> Csr<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let rows: Vec<usize> = (0..nnz).map(|_| rng.gen_range(0..n)).collect();
    let cols: Vec<usize> = (0..nnz).map(|_| rng.gen_range(0..n)).collect();
    let vals: Vec<f64> = (0..nnz).map(|_| rng.gen_range(0.1..1.0)).collect();
    Coo::from_parts(n, n, rows, cols, vals)
        .expect("valid coo")
        .to_csr(
            &graphblas_exec::global_context(),
            Some(&|a: &f64, b: &f64| a + b),
        )
        .expect("valid csr")
}

/// Times `f` over `runs` executions and returns the median, in seconds.
pub fn median_secs<F: FnMut()>(runs: usize, mut f: F) -> f64 {
    let mut samples: Vec<f64> = (0..runs.max(1))
        .map(|_| {
            let t0 = std::time::Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Formats seconds with an adaptive unit.
pub fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:7.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:7.1} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:7.2} ms", secs * 1e3)
    } else {
        format!("{secs:7.3} s ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_are_deterministic() {
        let a = rmat_bool(5, 4, 9);
        let b = rmat_bool(5, 4, 9);
        assert_eq!(a.extract_tuples().unwrap(), b.extract_tuples().unwrap());
        let v = random_vector(100, 10, 3);
        assert_eq!(v.nvals().unwrap(), 10);
        let m = random_matrix_i64(50, 200, 1);
        assert!(m.nvals().unwrap() > 0);
        let c = random_csr(64, 256, 2);
        c.check().unwrap();
    }

    #[test]
    fn median_and_formatting() {
        let t = median_secs(3, || {
            std::hint::black_box(1 + 1);
        });
        assert!(t >= 0.0);
        assert!(fmt_time(2e-9).contains("ns"));
        assert!(fmt_time(2e-5).contains("µs"));
        assert!(fmt_time(2e-2).contains("ms"));
        assert!(fmt_time(2.0).contains('s'));
    }
}
