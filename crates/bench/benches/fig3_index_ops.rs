//! Fig. 3 — index-unary `select` (user-defined triu-threshold) and
//! `apply` (predefined COLINDEX) on power-law matrices.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphblas_bench::rmat_weighted;
use graphblas_core::operations::{apply_indexop, select};
use graphblas_core::{no_mask, Descriptor, IndexUnaryOp, Matrix};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_index_ops");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));
    group.sample_size(10);
    for scale in [11u32, 13] {
        let a = rmat_weighted(scale, 8, 3);
        let n = a.nrows();
        let my_triu_gt = IndexUnaryOp::<f64, f64, bool>::new("my_triu_gt", |v, idx, s| {
            idx[1] > idx[0] && v > s
        });
        let sel = Matrix::<f64>::new(n, n).unwrap();
        group.bench_with_input(
            BenchmarkId::new("select_user_triu_gt", scale),
            &scale,
            |b, _| {
                b.iter(|| {
                    select(
                        &sel,
                        no_mask(),
                        None,
                        &my_triu_gt,
                        &a,
                        0.5f64,
                        &Descriptor::default(),
                    )
                    .unwrap()
                })
            },
        );
        let app = Matrix::<i64>::new(n, n).unwrap();
        group.bench_with_input(
            BenchmarkId::new("apply_colindex", scale),
            &scale,
            |b, _| {
                b.iter(|| {
                    apply_indexop(
                        &app,
                        no_mask(),
                        None,
                        &IndexUnaryOp::colindex(),
                        &a,
                        1i64,
                        &Descriptor::default(),
                    )
                    .unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
