//! §II motivation B — per-scalar indirect calls (operator objects routed
//! through `Arc<dyn Fn>`) vs monomorphized closures, on the raw SpGEMM
//! and SpMV kernels.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphblas_bench::random_csr;
use graphblas_core::Semiring;
use graphblas_exec::global_context;
use graphblas_sparse::{spgemm::spgemm, spmv::spmv, SparseVec};

fn bench(c: &mut Criterion) {
    let ctx = global_context();
    let mut group = c.benchmark_group("ablation_dispatch");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));
    group.sample_size(10);
    for n in [1024usize, 2048] {
        let a = random_csr(n, n * 16, 21);
        let sr = Semiring::<f64, f64, f64>::plus_times();
        group.bench_with_input(BenchmarkId::new("spgemm_dyn", n), &n, |b, _| {
            b.iter(|| {
                spgemm(
                    &ctx,
                    &a,
                    &a,
                    |x, y| sr.multiply(x, y),
                    |acc, z| *acc = sr.combine(acc, &z),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("spgemm_static", n), &n, |b, _| {
            b.iter(|| {
                spgemm(
                    &ctx,
                    &a,
                    &a,
                    |x: &f64, y: &f64| x * y,
                    |acc: &mut f64, z: f64| *acc += z,
                )
            })
        });

        let x = SparseVec::from_parts(n, (0..n).collect(), vec![1.0f64; n]).unwrap();
        group.bench_with_input(BenchmarkId::new("spmv_dyn", n), &n, |b, _| {
            b.iter(|| {
                spmv(
                    &ctx,
                    &a,
                    &x,
                    |av, xv| sr.multiply(av, xv),
                    |p, q| sr.combine(&p, &q),
                    None,
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("spmv_static", n), &n, |b, _| {
            b.iter(|| {
                spmv(
                    &ctx,
                    &a,
                    &x,
                    |av: &f64, xv: &f64| av * xv,
                    |p: f64, q: f64| p + q,
                    None,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
