//! Table I — per-call cost of every `GrB_Scalar` manipulation method.

use criterion::{criterion_group, criterion_main, Criterion};
use graphblas_core::Scalar;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_scalar");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));
    group.sample_size(10);
    group.bench_function("new", |b| b.iter(|| Scalar::<i64>::new().unwrap()));
    let full = Scalar::<i64>::new().unwrap();
    full.set_element(42).unwrap();
    group.bench_function("dup", |b| b.iter(|| full.dup().unwrap()));
    group.bench_function("clear", |b| {
        let s = Scalar::<i64>::new().unwrap();
        b.iter(|| s.clear().unwrap())
    });
    group.bench_function("nvals", |b| b.iter(|| full.nvals().unwrap()));
    group.bench_function("set_element", |b| {
        let s = Scalar::<i64>::new().unwrap();
        b.iter(|| s.set_element(7).unwrap())
    });
    group.bench_function("extract_element", |b| {
        b.iter(|| full.extract_element().unwrap())
    });
    group.bench_function("extract_element_empty", |b| {
        let s = Scalar::<i64>::new().unwrap();
        b.iter(|| s.extract_element().unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
