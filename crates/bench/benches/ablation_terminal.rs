//! Ablation — monoid terminal (annihilator) early exit: boolean
//! reachability products with and without the LOR terminal declared.

use criterion::{criterion_group, criterion_main, Criterion};
use graphblas_core::operations::mxv;
use graphblas_core::{
    no_mask_v, BinaryOp, Descriptor, Matrix, Monoid, Semiring, Vector, WaitMode,
};

fn bench(c: &mut Criterion) {
    let n = 2048usize;
    let a = Matrix::<bool>::new(n, n).unwrap();
    let mut rows = Vec::new();
    let mut cols = Vec::new();
    for i in 0..n {
        for j in 0..64 {
            rows.push(i);
            cols.push((i + j) % n);
        }
    }
    a.build(&rows, &cols, &vec![true; rows.len()], Some(&BinaryOp::lor()))
        .unwrap();
    a.wait(WaitMode::Materialize).unwrap();
    let x = Vector::<bool>::new(n).unwrap();
    x.build(&(0..n).collect::<Vec<_>>(), &vec![true; n], None)
        .unwrap();
    let w = Vector::<bool>::new(n).unwrap();

    let with_terminal = Semiring::new(Monoid::lor(), BinaryOp::land());
    let without_terminal = Semiring::new(Monoid::new(BinaryOp::lor(), false), BinaryOp::land());

    let mut group = c.benchmark_group("ablation_terminal");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));
    group.sample_size(10);
    group.bench_function("lor_with_terminal", |b| {
        b.iter(|| {
            mxv(
                &w,
                no_mask_v(),
                None,
                &with_terminal,
                &a,
                &x,
                &Descriptor::default(),
            )
            .unwrap()
        })
    });
    group.bench_function("lor_without_terminal", |b| {
        b.iter(|| {
            mxv(
                &w,
                no_mask_v(),
                None,
                &without_terminal,
                &a,
                &x,
                &Descriptor::default(),
            )
            .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
