//! Fig. 2 — execution contexts: `mxm` scaling under per-context thread
//! budgets, plus the cost of `GrB_Context_new`/`switch`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphblas_bench::rmat_weighted;
use graphblas_core::operations::mxm;
use graphblas_core::{
    global_context, no_mask, Context, ContextOptions, Descriptor, Matrix, Mode, Semiring,
};

fn bench(c: &mut Criterion) {
    let a = rmat_weighted(12, 8, 7);
    let sr = Semiring::<f64, f64, f64>::plus_times();
    let mut group = c.benchmark_group("fig2_context");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        let ctx = Context::new(
            &global_context(),
            Mode::Blocking,
            ContextOptions {
                nthreads: Some(threads),
                ..Default::default()
            },
        );
        let a2 = a.dup().unwrap();
        a2.switch_context(&ctx).unwrap();
        let out = Matrix::<f64>::new_in(&ctx, a.nrows(), a.ncols()).unwrap();
        group.bench_with_input(
            BenchmarkId::new("mxm_thread_budget", threads),
            &threads,
            |b, _| {
                b.iter(|| {
                    mxm(&out, no_mask(), None, &sr, &a2, &a2, &Descriptor::default()).unwrap()
                })
            },
        );
    }
    group.bench_function("context_new", |b| {
        let root = global_context();
        b.iter(|| Context::new(&root, Mode::Blocking, ContextOptions::default()))
    });
    group.bench_function("context_switch", |b| {
        let root = global_context();
        let ctx = Context::new(&root, Mode::Blocking, ContextOptions::default());
        let m = Matrix::<f64>::new(4, 4).unwrap();
        b.iter(|| {
            m.switch_context(&ctx).unwrap();
            m.switch_context(&root).unwrap();
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
