//! §II motivation A — the GraphBLAS 1.X "indices packed into values"
//! pattern vs the 2.0 index-unary operator, on the BFS-parent reindex
//! workload the paper describes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphblas_core::operations::{apply_indexop_v, apply_v};
use graphblas_core::{no_mask_v, Descriptor, IndexUnaryOp, UnaryOp, Vector};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("motivation_packing");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));
    group.sample_size(10);
    for log_n in [16u32, 20] {
        let n = 1usize << log_n;
        let idx: Vec<usize> = (0..n).collect();

        // 1.X: value array stores (payload, index) tuples — twice the
        // storage and bandwidth — plus a user-defined unpack operator.
        let packed = Vector::<(f64, i64)>::new(n).unwrap();
        packed
            .build(&idx, &(0..n).map(|i| (1.0, i as i64)).collect::<Vec<_>>(), None)
            .unwrap();
        let unpack = UnaryOp::<(f64, i64), i64>::new("unpack", |t| t.1);
        let out = Vector::<i64>::new(n).unwrap();
        group.bench_with_input(BenchmarkId::new("packed_1x", n), &n, |b, _| {
            b.iter(|| {
                apply_v(&out, no_mask_v(), None, &unpack, &packed, &Descriptor::default())
                    .unwrap()
            })
        });

        // 2.0: plain payloads; ROWINDEX reads the index from structure.
        let plain = Vector::<f64>::new(n).unwrap();
        plain.build(&idx, &vec![1.0; n], None).unwrap();
        group.bench_with_input(BenchmarkId::new("indexop_2_0", n), &n, |b, _| {
            b.iter(|| {
                apply_indexop_v(
                    &out,
                    no_mask_v(),
                    None,
                    &IndexUnaryOp::rowindex(),
                    &plain,
                    0i64,
                    &Descriptor::default(),
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
