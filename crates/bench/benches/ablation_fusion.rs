//! §III — the fusion latitude: a chain of k in-place element-wise stages
//! in a nonblocking context (fused into one traversal at `wait`) vs the
//! same chain executed eagerly in a blocking context.
//!
//! Besides timing, this bench reads the `graphblas-obs` fusion counters
//! (`fusion_hits`, `map_traversals`) after an instrumented pass of each
//! chain length so the output shows the fusion *actually happened*: a run
//! of `k` consecutive maps must report one traversal and `k - 1` hits.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphblas_core::operations::apply_v;
use graphblas_core::{
    global_context, no_mask_v, Context, ContextOptions, Descriptor, Mode, UnaryOp, Vector,
    WaitMode,
};

fn bench(c: &mut Criterion) {
    let n = 1usize << 18;
    let idx: Vec<usize> = (0..n).collect();
    let vals: Vec<f64> = (0..n).map(|i| i as f64).collect();
    let mut group = c.benchmark_group("ablation_fusion");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));
    group.sample_size(10);
    for k in [1usize, 2, 4, 8] {
        for (label, mode) in [("eager", Mode::Blocking), ("fused", Mode::NonBlocking)] {
            let ctx = Context::new(&global_context(), mode, ContextOptions::default());
            let v = Vector::<f64>::new_in(&ctx, n).unwrap();
            v.build(&idx, &vals, None).unwrap();
            v.wait(WaitMode::Materialize).unwrap();
            group.bench_with_input(
                BenchmarkId::new(label, k),
                &k,
                |b, &k| {
                    b.iter(|| {
                        for _ in 0..k {
                            apply_v(
                                &v,
                                no_mask_v(),
                                None,
                                &UnaryOp::new("inc", |x: &f64| x + 1.0),
                                &v,
                                &Descriptor::default(),
                            )
                            .unwrap();
                        }
                        v.wait(WaitMode::Complete).unwrap();
                    })
                },
            );
        }
    }
    group.finish();

    // Instrumented verification pass: prove the nonblocking chains fused.
    let relaxed = std::sync::atomic::Ordering::Relaxed;
    for k in [1usize, 2, 4, 8] {
        let ctx = Context::new(
            &global_context(),
            Mode::NonBlocking,
            ContextOptions::default(),
        );
        let v = Vector::<f64>::new_in(&ctx, n).unwrap();
        v.build(&idx, &vals, None).unwrap();
        v.wait(WaitMode::Materialize).unwrap();
        graphblas_obs::set_enabled(true);
        graphblas_obs::reset();
        for _ in 0..k {
            apply_v(
                &v,
                no_mask_v(),
                None,
                &UnaryOp::new("inc", |x: &f64| x + 1.0),
                &v,
                &Descriptor::default(),
            )
            .unwrap();
        }
        v.wait(WaitMode::Complete).unwrap();
        let pending = graphblas_obs::counters::pending();
        let (hits, traversals) = (
            pending.fusion_hits.load(relaxed),
            pending.map_traversals.load(relaxed),
        );
        graphblas_obs::set_enabled(false);
        assert_eq!(
            (traversals, hits),
            (1, (k - 1) as u64),
            "a fused chain of {k} maps must drain as one traversal"
        );
        println!(
            "ablation_fusion/counters/{k}: map_traversals {traversals}, fusion_hits {hits}"
        );
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
