//! §III — the fusion latitude: a chain of k in-place element-wise stages
//! in a nonblocking context (fused into one traversal at `wait`) vs the
//! same chain executed eagerly in a blocking context.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphblas_core::operations::apply_v;
use graphblas_core::{
    global_context, no_mask_v, Context, ContextOptions, Descriptor, Mode, UnaryOp, Vector,
    WaitMode,
};

fn bench(c: &mut Criterion) {
    let n = 1usize << 18;
    let idx: Vec<usize> = (0..n).collect();
    let vals: Vec<f64> = (0..n).map(|i| i as f64).collect();
    let mut group = c.benchmark_group("ablation_fusion");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));
    group.sample_size(10);
    for k in [1usize, 2, 4, 8] {
        for (label, mode) in [("eager", Mode::Blocking), ("fused", Mode::NonBlocking)] {
            let ctx = Context::new(&global_context(), mode, ContextOptions::default());
            let v = Vector::<f64>::new_in(&ctx, n).unwrap();
            v.build(&idx, &vals, None).unwrap();
            v.wait(WaitMode::Materialize).unwrap();
            group.bench_with_input(
                BenchmarkId::new(label, k),
                &k,
                |b, &k| {
                    b.iter(|| {
                        for _ in 0..k {
                            apply_v(
                                &v,
                                no_mask_v(),
                                None,
                                &UnaryOp::new("inc", |x: &f64| x + 1.0),
                                &v,
                                &Descriptor::default(),
                            )
                            .unwrap();
                        }
                        v.wait(WaitMode::Complete).unwrap();
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
