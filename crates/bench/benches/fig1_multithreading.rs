//! Fig. 1 — the two-thread shared-matrix pipeline vs its sequential
//! schedule. Measures the whole synchronized program.

use std::sync::atomic::{AtomicBool, Ordering};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphblas_bench::random_matrix;
use graphblas_core::operations::mxm;
use graphblas_core::{
    global_context, no_mask, Context, ContextOptions, Descriptor, Matrix, Mode, Semiring,
    WaitMode,
};

fn sequential(n: usize) -> usize {
    let sr = Semiring::<f64, f64, f64>::plus_times();
    let desc = Descriptor::default();
    let (a, b, d, e, f) = (
        random_matrix(n, 6 * n, 1),
        random_matrix(n, 6 * n, 2),
        random_matrix(n, 6 * n, 3),
        random_matrix(n, 6 * n, 4),
        random_matrix(n, 6 * n, 5),
    );
    let c = Matrix::<f64>::new(n, n).unwrap();
    let esh = Matrix::<f64>::new(n, n).unwrap();
    let dres = Matrix::<f64>::new(n, n).unwrap();
    let g = Matrix::<f64>::new(n, n).unwrap();
    let hres = Matrix::<f64>::new(n, n).unwrap();
    mxm(&c, no_mask(), None, &sr, &a, &b, &desc).unwrap();
    mxm(&esh, no_mask(), None, &sr, &d, &c, &desc).unwrap();
    mxm(&dres, no_mask(), None, &sr, &a, &esh, &desc).unwrap();
    mxm(&g, no_mask(), None, &sr, &e, &f, &desc).unwrap();
    mxm(&hres, no_mask(), None, &sr, &g, &esh, &desc).unwrap();
    dres.nvals().unwrap() + hres.nvals().unwrap()
}

fn two_threads(n: usize) -> usize {
    let sr = Semiring::<f64, f64, f64>::plus_times();
    let desc = Descriptor::default();
    let ctx = Context::new(
        &global_context(),
        Mode::NonBlocking,
        ContextOptions::default(),
    );
    let esh = Matrix::<f64>::new_in(&ctx, n, n).unwrap();
    let dres = Matrix::<f64>::new_in(&ctx, n, n).unwrap();
    let hres = Matrix::<f64>::new_in(&ctx, n, n).unwrap();
    let flag = AtomicBool::new(false);
    std::thread::scope(|s| {
        {
            let (esh, dres, ctx, sr) = (esh.clone(), dres.clone(), ctx.clone(), sr.clone());
            let flag = &flag;
            s.spawn(move || {
                let (a, b, d) = (
                    random_matrix(n, 6 * n, 1),
                    random_matrix(n, 6 * n, 2),
                    random_matrix(n, 6 * n, 3),
                );
                for m in [&a, &b, &d] {
                    m.switch_context(&ctx).unwrap();
                }
                let c = Matrix::<f64>::new_in(&ctx, n, n).unwrap();
                mxm(&c, no_mask(), None, &sr, &a, &b, &desc).unwrap();
                mxm(&esh, no_mask(), None, &sr, &d, &c, &desc).unwrap();
                esh.wait(WaitMode::Complete).unwrap();
                flag.store(true, Ordering::Release);
                mxm(&dres, no_mask(), None, &sr, &a, &esh, &desc).unwrap();
                dres.wait(WaitMode::Complete).unwrap();
            });
        }
        {
            let (esh, hres, ctx, sr) = (esh.clone(), hres.clone(), ctx.clone(), sr.clone());
            let flag = &flag;
            s.spawn(move || {
                let (e, f) = (random_matrix(n, 6 * n, 4), random_matrix(n, 6 * n, 5));
                for m in [&e, &f] {
                    m.switch_context(&ctx).unwrap();
                }
                let g = Matrix::<f64>::new_in(&ctx, n, n).unwrap();
                mxm(&g, no_mask(), None, &sr, &e, &f, &desc).unwrap();
                while !flag.load(Ordering::Acquire) {
                    std::hint::spin_loop();
                }
                mxm(&hres, no_mask(), None, &sr, &g, &esh, &desc).unwrap();
                hres.wait(WaitMode::Complete).unwrap();
            });
        }
    });
    dres.nvals().unwrap() + hres.nvals().unwrap()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_multithreading");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));
    group.sample_size(10);
    for n in [128usize, 256] {
        group.bench_with_input(BenchmarkId::new("sequential", n), &n, |b, &n| {
            b.iter(|| sequential(n))
        });
        group.bench_with_input(BenchmarkId::new("two_threads_fig1", n), &n, |b, &n| {
            b.iter(|| two_threads(n))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
