//! Table IV — every predefined index-unary operator, run through
//! `select` (keep/annihilate) or `apply` (replace), on an RMAT matrix.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphblas_bench::rmat_weighted;
use graphblas_core::operations::{apply_indexop, select};
use graphblas_core::{no_mask, Descriptor, IndexUnaryOp, Matrix};

fn bench(c: &mut Criterion) {
    let a = rmat_weighted(12, 8, 13);
    let n = a.nrows();
    let sel_out = Matrix::<f64>::new(n, n).unwrap();
    let app_out = Matrix::<i64>::new(n, n).unwrap();
    let mut group = c.benchmark_group("table4_index_unary");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));
    group.sample_size(10);

    let positional: Vec<(&str, IndexUnaryOp<f64, i64, bool>, i64)> = vec![
        ("TRIL", IndexUnaryOp::tril(), 0),
        ("TRIU", IndexUnaryOp::triu(), 0),
        ("DIAG", IndexUnaryOp::diag(), 0),
        ("OFFDIAG", IndexUnaryOp::offdiag(), 0),
        ("ROWLE", IndexUnaryOp::rowle(), (n / 2) as i64),
        ("ROWGT", IndexUnaryOp::rowgt(), (n / 2) as i64),
        ("COLLE", IndexUnaryOp::colle(), (n / 2) as i64),
        ("COLGT", IndexUnaryOp::colgt(), (n / 2) as i64),
    ];
    for (name, op, s) in &positional {
        group.bench_with_input(BenchmarkId::new("select", name), name, |b, _| {
            b.iter(|| {
                select(&sel_out, no_mask(), None, op, &a, *s, &Descriptor::default()).unwrap()
            })
        });
    }

    let value_ops: Vec<(&str, IndexUnaryOp<f64, f64, bool>)> = vec![
        ("VALUEEQ", IndexUnaryOp::valueeq()),
        ("VALUENE", IndexUnaryOp::valuene()),
        ("VALUELT", IndexUnaryOp::valuelt()),
        ("VALUELE", IndexUnaryOp::valuele()),
        ("VALUEGT", IndexUnaryOp::valuegt()),
        ("VALUEGE", IndexUnaryOp::valuege()),
    ];
    for (name, op) in &value_ops {
        group.bench_with_input(BenchmarkId::new("select", name), name, |b, _| {
            b.iter(|| {
                select(&sel_out, no_mask(), None, op, &a, 0.5f64, &Descriptor::default())
                    .unwrap()
            })
        });
    }

    let replace_ops: Vec<(&str, IndexUnaryOp<f64, i64, i64>)> = vec![
        ("ROWINDEX", IndexUnaryOp::rowindex()),
        ("COLINDEX", IndexUnaryOp::colindex()),
        ("DIAGINDEX", IndexUnaryOp::diagindex()),
    ];
    for (name, op) in &replace_ops {
        group.bench_with_input(BenchmarkId::new("apply", name), name, |b, _| {
            b.iter(|| {
                apply_indexop(&app_out, no_mask(), None, op, &a, 0i64, &Descriptor::default())
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
