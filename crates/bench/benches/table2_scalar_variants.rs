//! Table II — `GrB_Scalar` method variants vs their typed counterparts:
//! set/extract element, scalar-bound apply, select threshold, reduce.

use criterion::{criterion_group, criterion_main, Criterion};
use graphblas_bench::rmat_weighted;
use graphblas_core::operations::{
    apply_binop2nd, apply_binop2nd_scalar, reduce_scalar, reduce_to_value, select,
    select_scalar,
};
use graphblas_core::{
    no_mask, BinaryOp, Descriptor, IndexUnaryOp, Matrix, Monoid, Scalar, WaitMode,
};

fn bench(c: &mut Criterion) {
    let a = rmat_weighted(11, 8, 5);
    a.wait(WaitMode::Materialize).unwrap();
    let n = a.nrows();
    let out = Matrix::<f64>::new(n, n).unwrap();
    let s = Scalar::<f64>::new().unwrap();
    s.set_element(0.5).unwrap();

    let mut group = c.benchmark_group("table2_scalar_variants");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));
    group.sample_size(10);

    group.bench_function("set_element_typed", |b| {
        b.iter(|| a.set_element(1.0, 3, 3).unwrap())
    });
    a.wait(WaitMode::Materialize).unwrap();
    group.bench_function("set_element_scalar", |b| {
        b.iter(|| a.set_element_scalar(&s, 3, 3).unwrap())
    });
    a.wait(WaitMode::Materialize).unwrap();

    group.bench_function("extract_element_typed", |b| {
        b.iter(|| a.extract_element(3, 3).unwrap())
    });
    let slot = Scalar::<f64>::new().unwrap();
    group.bench_function("extract_element_scalar", |b| {
        b.iter(|| a.extract_element_scalar(&slot, 3, 3).unwrap())
    });

    group.bench_function("apply_bound_typed", |b| {
        b.iter(|| {
            apply_binop2nd(
                &out,
                no_mask(),
                None,
                &BinaryOp::plus(),
                &a,
                0.5f64,
                &Descriptor::default(),
            )
            .unwrap()
        })
    });
    group.bench_function("apply_bound_scalar", |b| {
        b.iter(|| {
            apply_binop2nd_scalar(
                &out,
                no_mask(),
                None,
                &BinaryOp::plus(),
                &a,
                &s,
                &Descriptor::default(),
            )
            .unwrap()
        })
    });

    group.bench_function("select_typed_threshold", |b| {
        b.iter(|| {
            select(
                &out,
                no_mask(),
                None,
                &IndexUnaryOp::valuegt(),
                &a,
                0.5f64,
                &Descriptor::default(),
            )
            .unwrap()
        })
    });
    group.bench_function("select_scalar_threshold", |b| {
        b.iter(|| {
            select_scalar(
                &out,
                no_mask(),
                None,
                &IndexUnaryOp::valuegt(),
                &a,
                &s,
                &Descriptor::default(),
            )
            .unwrap()
        })
    });

    group.bench_function("reduce_typed", |b| {
        b.iter(|| reduce_to_value(&Monoid::plus(), &a).unwrap())
    });
    group.bench_function("reduce_scalar", |b| {
        b.iter(|| reduce_scalar(&slot, None, &Monoid::plus(), &a).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
