//! Table III — import/export throughput for every non-opaque format,
//! plus the §VII.B serialize/deserialize path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphblas_bench::rmat_weighted;
use graphblas_core::{Format, Matrix, Vector, VectorFormat, WaitMode};

fn bench(c: &mut Criterion) {
    let a = rmat_weighted(13, 8, 11);
    a.wait(WaitMode::Materialize).unwrap();
    let (nrows, ncols) = (a.nrows(), a.ncols());
    let mut group = c.benchmark_group("table3_import_export");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));
    group.sample_size(10);

    for fmt in [Format::Csr, Format::Csc, Format::Coo] {
        group.bench_with_input(BenchmarkId::new("export", format!("{fmt:?}")), &fmt, |b, &fmt| {
            b.iter(|| a.export(fmt).unwrap())
        });
        let (p, i, v) = a.export(fmt).unwrap();
        group.bench_with_input(BenchmarkId::new("import", format!("{fmt:?}")), &fmt, |b, &fmt| {
            b.iter(|| {
                Matrix::<f64>::import(
                    nrows,
                    ncols,
                    fmt,
                    Some(p.clone()),
                    Some(i.clone()),
                    v.clone(),
                )
                .unwrap()
            })
        });
    }

    // Dense formats on a fully-populated matrix.
    let dvals: Vec<f64> = (0..512 * 512).map(|x| x as f64).collect();
    let dense = Matrix::<f64>::import(512, 512, Format::DenseRow, None, None, dvals.clone())
        .unwrap();
    for fmt in [Format::DenseRow, Format::DenseCol] {
        group.bench_with_input(
            BenchmarkId::new("export_dense", format!("{fmt:?}")),
            &fmt,
            |b, &fmt| b.iter(|| dense.export(fmt).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("import_dense", format!("{fmt:?}")),
            &fmt,
            |b, &fmt| {
                b.iter(|| {
                    Matrix::<f64>::import(512, 512, fmt, None, None, dvals.clone()).unwrap()
                })
            },
        );
    }

    // Vector formats.
    let v = Vector::<f64>::import(
        1 << 16,
        VectorFormat::Dense,
        None,
        (0..1usize << 16).map(|x| x as f64).collect(),
    )
    .unwrap();
    group.bench_function("vector_export_sparse", |b| {
        b.iter(|| v.export(VectorFormat::Sparse).unwrap())
    });
    group.bench_function("vector_export_dense", |b| {
        b.iter(|| v.export(VectorFormat::Dense).unwrap())
    });

    // Serialization (§VII.B).
    group.bench_function("serialize", |b| b.iter(|| a.serialize().unwrap()));
    let bytes = a.serialize().unwrap();
    group.bench_function("deserialize", |b| {
        b.iter(|| Matrix::<f64>::deserialize(&bytes).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
