//! Algorithm-layer benchmarks (the LAGraph role): BFS, SSSP, PageRank,
//! triangle counting, connected components on RMAT graphs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphblas_algo::{
    betweenness_centrality, bfs_levels, connected_components, pagerank, sssp_bellman_ford,
    triangle_count,
};
use graphblas_bench::{rmat_bool, rmat_weighted};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithms");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));
    group.sample_size(10);
    for scale in [11u32, 13] {
        let a = rmat_bool(scale, 8, scale as u64);
        let w = rmat_weighted(scale, 8, scale as u64);
        group.bench_with_input(BenchmarkId::new("bfs_levels", scale), &scale, |b, _| {
            b.iter(|| bfs_levels(&a, 0).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("sssp", scale), &scale, |b, _| {
            b.iter(|| sssp_bellman_ford(&w, 0).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("pagerank", scale), &scale, |b, _| {
            b.iter(|| pagerank(&a, 0.85, 1e-6, 30).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("triangles", scale), &scale, |b, _| {
            b.iter(|| triangle_count(&a).unwrap())
        });
        group.bench_with_input(
            BenchmarkId::new("connected_components", scale),
            &scale,
            |b, _| b.iter(|| connected_components(&a).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("betweenness_4src", scale),
            &scale,
            |b, _| b.iter(|| betweenness_centrality(&a, &[0, 1, 2, 3]).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
