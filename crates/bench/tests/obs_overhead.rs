//! Disabled-path overhead guard: running a real workload with telemetry
//! on must not be catastrophically slower than with telemetry off.
//!
//! This is a smoke bound, not a microbenchmark — CI machines are noisy,
//! so the budget is deliberately generous (obs-on may take several times
//! obs-off plus a fixed allowance). What it actually protects against is
//! the failure mode where an instrumentation change accidentally puts a
//! lock, a syscall, or an allocation on the hot path: those blow the
//! bound immediately, while honest counter/histogram updates stay well
//! inside it.

use graphblas_bench::{median_secs, rmat_bool};
use graphblas_core::Mode;

#[test]
fn obs_on_overhead_is_bounded() {
    graphblas_core::init(Mode::Blocking);
    let a = rmat_bool(7, 8, 7);

    let run = || {
        std::hint::black_box(graphblas_algo::pagerank(&a, 0.85, 1e-6, 25).expect("pagerank"));
    };

    // Warm caches and the workspace pool before either measurement.
    graphblas_obs::set_enabled(false);
    run();
    let t_off = median_secs(5, run);

    graphblas_obs::set_enabled(true);
    run();
    let t_on = median_secs(5, run);
    graphblas_obs::set_enabled(false);

    let budget = t_off * 5.0 + 0.050;
    assert!(
        t_on <= budget,
        "telemetry overhead out of bounds: obs-off {:.6}s, obs-on {:.6}s, budget {:.6}s",
        t_off,
        t_on,
        budget
    );
}
