//! Disabled-path overhead guard: running a real workload with telemetry
//! on must not be catastrophically slower than with telemetry off.
//!
//! This is a smoke bound, not a microbenchmark — CI machines are noisy,
//! so the budget is deliberately generous (obs-on may take several times
//! obs-off plus a fixed allowance). What it actually protects against is
//! the failure mode where an instrumentation change accidentally puts a
//! lock, a syscall, or an allocation on the hot path: those blow the
//! bound immediately, while honest counter/histogram updates stay well
//! inside it.
//!
//! The decision-provenance layer (`obs::events`) gets the same treatment:
//! one bound for the full events-on configuration, and a fast-path check
//! proving that with events opted out not a single event is recorded even
//! while the rest of telemetry runs.
//!
//! The metrics export plane (`obs::export`) gets it too: with neither
//! `GRB_METRICS_ADDR` nor `GRB_METRICS_DUMP` set there is no sampler
//! thread and no endpoint, so an obs-on workload that also polls the
//! dump hook must fit the same obs-on budget — and the dump hook itself
//! must not allocate at all on that path (counted by a global allocator
//! with a per-thread tally).

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::Mutex;

use graphblas_bench::{median_secs, rmat_bool};
use graphblas_core::Mode;

/// [`System`] plus a per-thread allocation count, so a test can prove a
/// fast path on its own thread allocation-free without interference from
/// concurrently running tests.
struct CountingAlloc;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // try_with: allocation during TLS teardown must not panic.
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocs_on_this_thread() -> u64 {
    ALLOCS.with(|c| c.get())
}

/// The timing tests share process-global obs state (enabled flag, events
/// flag); serialize them so a parallel test run cannot interleave toggles.
static SERIALIZE: Mutex<()> = Mutex::new(());

#[test]
fn obs_on_overhead_is_bounded() {
    let _g = SERIALIZE.lock().unwrap_or_else(|e| e.into_inner());
    graphblas_core::init(Mode::Blocking);
    let a = rmat_bool(7, 8, 7);

    let run = || {
        std::hint::black_box(graphblas_algo::pagerank(&a, 0.85, 1e-6, 25).expect("pagerank"));
    };

    // Warm caches and the workspace pool before either measurement.
    graphblas_obs::set_enabled(false);
    run();
    let t_off = median_secs(5, run);

    graphblas_obs::set_enabled(true);
    run();
    let t_on = median_secs(5, run);
    graphblas_obs::set_enabled(false);

    let budget = t_off * 5.0 + 0.050;
    assert!(
        t_on <= budget,
        "telemetry overhead out of bounds: obs-off {:.6}s, obs-on {:.6}s, budget {:.6}s",
        t_off,
        t_on,
        budget
    );
}

#[test]
fn events_on_overhead_is_bounded() {
    let _g = SERIALIZE.lock().unwrap_or_else(|e| e.into_inner());
    graphblas_core::init(Mode::Blocking);
    let a = rmat_bool(7, 8, 7);

    let run = || {
        std::hint::black_box(graphblas_algo::pagerank(&a, 0.85, 1e-6, 25).expect("pagerank"));
    };

    graphblas_obs::set_enabled(false);
    run();
    let t_off = median_secs(5, run);

    // Full provenance configuration: telemetry + the decision event ring.
    graphblas_obs::set_enabled(true);
    graphblas_obs::events::set_events(true);
    run();
    let t_events = median_secs(5, run);
    assert!(
        graphblas_obs::events::total() > 0,
        "the workload must actually have recorded decision events"
    );
    graphblas_obs::set_enabled(false);

    // Same shape of bound as the base telemetry test: events are a few
    // relaxed atomics plus a push into the thread's own ring, so they
    // must fit the same generous envelope.
    let budget = t_off * 5.0 + 0.050;
    assert!(
        t_events <= budget,
        "decision-event overhead out of bounds: obs-off {:.6}s, events-on {:.6}s, budget {:.6}s",
        t_off,
        t_events,
        budget
    );
}

#[test]
fn export_disabled_overhead_is_bounded() {
    let _g = SERIALIZE.lock().unwrap_or_else(|e| e.into_inner());
    assert!(
        std::env::var_os("GRB_METRICS_ADDR").is_none()
            && std::env::var_os("GRB_METRICS_DUMP").is_none(),
        "this test measures the export-disabled configuration"
    );
    graphblas_core::init(Mode::Blocking);
    let a = rmat_bool(7, 8, 7);

    let run = || {
        std::hint::black_box(graphblas_algo::pagerank(&a, 0.85, 1e-6, 25).expect("pagerank"));
        // The dump hook sits on real exit paths; with the env unset it
        // must cost nothing measurable even when polled per iteration.
        std::hint::black_box(graphblas_obs::write_dump_if_requested());
    };

    graphblas_obs::set_enabled(false);
    run();
    let t_off = median_secs(5, run);

    graphblas_obs::set_enabled(true);
    run();
    let t_on = median_secs(5, run);
    graphblas_obs::set_enabled(false);

    assert!(
        !graphblas_obs::export::sampler::running(),
        "no sampler thread may start in the export-disabled configuration"
    );
    // Same budget as the plain obs-on test: merging the export plane must
    // not have moved the obs-on cost envelope when it is disabled.
    let budget = t_off * 5.0 + 0.050;
    assert!(
        t_on <= budget,
        "export-disabled overhead out of bounds: obs-off {:.6}s, obs-on {:.6}s, budget {:.6}s",
        t_off,
        t_on,
        budget
    );
}

#[test]
fn export_dump_fast_path_allocates_nothing_when_unset() {
    let _g = SERIALIZE.lock().unwrap_or_else(|e| e.into_inner());
    assert!(
        std::env::var_os("GRB_METRICS_DUMP").is_none(),
        "this test measures the env-unset fast path"
    );
    graphblas_obs::set_enabled(true);
    // Warm-up: first call touches env machinery outside the loop.
    std::hint::black_box(graphblas_obs::write_dump_if_requested());

    let before = allocs_on_this_thread();
    for _ in 0..1_000 {
        std::hint::black_box(graphblas_obs::write_dump_if_requested());
    }
    let after = allocs_on_this_thread();
    graphblas_obs::set_enabled(false);

    assert_eq!(
        after - before,
        0,
        "GRB_METRICS_DUMP-unset dump hook must be allocation-free"
    );
}

#[test]
fn events_off_fast_path_records_nothing() {
    let _g = SERIALIZE.lock().unwrap_or_else(|e| e.into_inner());
    graphblas_core::init(Mode::Blocking);
    let a = rmat_bool(6, 8, 6);

    // Telemetry on, events opted out: counters and histograms still
    // collect, but the decision layer takes its two-relaxed-load fast
    // path and the ring must stay untouched.
    graphblas_obs::set_enabled(true);
    graphblas_obs::events::set_events(false);
    let before = graphblas_obs::events::total();
    std::hint::black_box(graphblas_algo::pagerank(&a, 0.85, 1e-6, 25).expect("pagerank"));
    let after = graphblas_obs::events::total();
    graphblas_obs::events::set_events(true);
    graphblas_obs::set_enabled(false);

    assert_eq!(
        after - before,
        0,
        "events-off run must not record any decision events"
    );
}
