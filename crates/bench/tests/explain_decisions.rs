//! End-to-end checks that the decision-provenance layer (`obs::events`)
//! records what the runtime actually did, with the arguments an explain
//! log needs to be self-justifying.
//!
//! Two seeded scenarios from the ISSUE acceptance list:
//!
//! 1. A star graph sized so BFS crosses the documented Beamer threshold
//!    (`frontier_nnz * PULL_THRESHOLD_DEN >= frontier_len`) between the
//!    first and second level: the explain log must show the push→pull
//!    switch, and every direction event must be *consistent* — the
//!    recorded frontier density must imply the recorded direction.
//!
//! 2. A nonblocking fused map chain: N queued `apply_v` calls must drain
//!    as exactly one `fuse-flush` event whose `chain_len` argument is N.
//!
//! Both tests scope their assertions with the subtree-filtered
//! `Context::explain` / `Vector::explain` API, so they never see events
//! from each other or from unrelated global-context activity.

use std::sync::Mutex;

use graphblas_core::operations::mxv::PULL_THRESHOLD_DEN;
use graphblas_core::operations::apply_v;
use graphblas_core::{
    global_context, no_mask_v, BinaryOp, Context, ContextOptions, Descriptor, Matrix, Mode,
    UnaryOp, Vector, WaitMode,
};
use graphblas_obs::Reason;

/// The tests toggle process-global obs state; serialize them.
static SERIALIZE: Mutex<()> = Mutex::new(());

fn obs_on() {
    graphblas_core::init(Mode::Blocking);
    graphblas_obs::set_enabled(true);
    graphblas_obs::events::set_events(true);
}

fn obs_off() {
    graphblas_obs::set_enabled(false);
}

#[test]
fn bfs_explain_shows_push_pull_switch_at_threshold() {
    let _g = SERIALIZE.lock().unwrap_or_else(|e| e.into_inner());
    obs_on();

    // Star graph on 64 vertices: 0 → 1..=8. The level-0 frontier has
    // nnz 1 (1 * 8 < 64 → push); the level-1 frontier has nnz 8
    // (8 * 8 >= 64 → pull). Third iteration never runs: the star has no
    // second hop, so the frontier empties and the loop exits.
    let n: usize = 64;
    let fanout: usize = 8;
    assert_eq!(PULL_THRESHOLD_DEN as usize, fanout, "test is seeded to the documented threshold");
    let ctx = Context::new(&global_context(), Mode::Blocking, ContextOptions::default());
    let a = Matrix::<bool>::new_in(&ctx, n, n).expect("matrix");
    let rows = vec![0usize; fanout];
    let cols: Vec<usize> = (1..=fanout).collect();
    a.build(&rows, &cols, &vec![true; fanout], Some(&BinaryOp::lor()))
        .expect("build");

    let levels = graphblas_algo::bfs_levels(&a, 0).expect("bfs");
    assert_eq!(levels.nvals().expect("nvals"), 1 + fanout);

    let ex = ctx.explain(usize::MAX);
    obs_off();

    let dirs: Vec<_> = ex
        .events
        .iter()
        .filter(|e| matches!(e.reason, Reason::DirectionPush | Reason::DirectionPull))
        .collect();
    assert_eq!(
        dirs.len(),
        2,
        "one direction pick per BFS level, got: {dirs:?}"
    );

    // Every recorded pick must be justified by its own recorded inputs:
    // pull iff nnz * threshold_den >= len, with the documented constant.
    for e in &dirs {
        let [nnz, len, den] = e.args;
        assert_eq!(e.op, "vxm");
        assert_eq!(den, PULL_THRESHOLD_DEN, "threshold constant in event: {e:?}");
        let implied_pull = nnz * den >= len;
        assert_eq!(
            e.reason == Reason::DirectionPull,
            implied_pull,
            "direction inconsistent with recorded density: {e:?}"
        );
    }

    // The switch itself: sparse seed frontier pushed, dense second
    // frontier pulled, in that order.
    assert_eq!(dirs[0].reason, Reason::DirectionPush);
    assert_eq!(dirs[0].args[..2], [1, n as u64]);
    assert_eq!(dirs[1].reason, Reason::DirectionPull);
    assert_eq!(dirs[1].args[..2], [fanout as u64, n as u64]);
    assert!(dirs[0].seq < dirs[1].seq, "push must precede pull");
}

#[test]
fn fused_map_chain_drains_as_one_flush_event() {
    let _g = SERIALIZE.lock().unwrap_or_else(|e| e.into_inner());
    obs_on();

    const CHAIN: usize = 5;
    let n: usize = 256;
    let ctx = Context::new(&global_context(), Mode::NonBlocking, ContextOptions::default());
    let v = Vector::<f64>::new_in(&ctx, n).expect("vector");
    let idx: Vec<usize> = (0..n).collect();
    let vals: Vec<f64> = (0..n).map(|i| i as f64).collect();
    v.build(&idx, &vals, None).expect("build");
    v.wait(WaitMode::Materialize).expect("materialize");

    let inc = UnaryOp::new("inc", |x: &f64| x + 1.0);
    for _ in 0..CHAIN {
        apply_v(&v, no_mask_v(), None, &inc, &v, &Descriptor::default()).expect("apply");
    }
    v.wait(WaitMode::Complete).expect("drain");
    assert_eq!(v.extract_element(3).expect("read"), Some(3.0 + CHAIN as f64));

    let ex = v.explain(usize::MAX);
    obs_off();

    let flushes: Vec<_> = ex
        .events
        .iter()
        .filter(|e| e.reason == Reason::FuseFlush)
        .collect();
    assert_eq!(
        flushes.len(),
        1,
        "{CHAIN} queued maps must fuse into exactly one flush: {flushes:?}"
    );
    let f = flushes[0];
    assert_eq!(f.op, "vector.drain");
    assert_eq!(f.args[0], CHAIN as u64, "chain_len must be {CHAIN}: {f:?}");
    assert_eq!(f.args[1], n as u64, "flush saw the full dense input");
    assert_eq!(f.detail, "queue-end", "drain-terminated chain: {f:?}");
}
