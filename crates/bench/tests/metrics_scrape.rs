//! Live-scrape acceptance test: a workload served under
//! `GRB_METRICS_ADDR` must answer a real TCP scrape with a Prometheus
//! exposition that the independent reader in `graphblas_check::metrics`
//! validates, including the scheduler metrics and sampler-window rate
//! families this plane exists to expose.
//!
//! This file holds exactly one test: it mutates process environment and
//! binds a socket, so it must not share a test binary with anything that
//! reads the same state concurrently.

use graphblas_bench::rmat_bool;
use graphblas_check::metrics;
use graphblas_core::Mode;

#[test]
fn live_scrape_validates_and_covers_scheduler_metrics() {
    // Port 0: the OS picks a free port, `init()` reports what was bound.
    std::env::set_var("GRB_METRICS_ADDR", "127.0.0.1:0");
    graphblas_core::init(Mode::Blocking);
    graphblas_obs::set_enabled(true);
    let addr = graphblas_obs::export::init().expect("endpoint must bind 127.0.0.1:0");
    assert_eq!(graphblas_obs::export::bound_addr(), Some(addr));
    assert!(
        graphblas_obs::export::sampler::running(),
        "the sampler must run while the endpoint is live"
    );

    // A real kernel workload: enough spgemm/mxv traffic to move the
    // counters the families below report.
    let a = rmat_bool(7, 8, 7);
    std::hint::black_box(graphblas_algo::pagerank(&a, 0.85, 1e-6, 25).expect("pagerank"));
    std::hint::black_box(
        graphblas_algo::bfs_levels(&a, 0).expect("bfs"),
    );
    // Take a deterministic sample so window rates do not depend on the
    // sampler thread's 250ms period having elapsed.
    graphblas_obs::export::sampler::sample_now();

    let body = metrics::scrape(&addr.to_string()).expect("live scrape over TCP");
    graphblas_obs::set_enabled(false);
    let summary = metrics::validate(&body)
        .unwrap_or_else(|e| panic!("scraped exposition failed validation: {e}\n{body}"));

    assert!(
        summary.families.len() >= 10,
        "expected >= 10 families, got {}: {body}",
        summary.families.len()
    );
    // The acceptance list: pool queue depth, worker utilization, task
    // wait/run split, per-kernel rate, rolling p99.
    for family in [
        "grb_pool_queue_depth",
        "grb_pool_utilization",
        "grb_pool_task_wait_ns",
        "grb_pool_task_run_ns",
        "grb_kernel_rate",
        "grb_kernel_rolling_p99_ns",
        "grb_mem_container_high_bytes",
        "grb_sampler_scrapes",
    ] {
        let fam = summary
            .family(family)
            .unwrap_or_else(|| panic!("scrape missing family {family}"));
        assert!(!fam.samples.is_empty(), "family {family} has no samples");
    }
    // The workload ran inside the sampler window, so at least one kernel
    // must show a nonzero rate.
    let rates = summary.family("grb_kernel_rate").expect("grb_kernel_rate");
    assert!(
        rates.samples.iter().any(|s| s.value > 0.0),
        "no kernel shows a nonzero window rate: {body}"
    );
    // The scrape itself was counted.
    assert!(
        summary.scalar("grb_sampler_scrapes").unwrap_or(0.0) >= 1.0,
        "scrape counter did not move: {body}"
    );
}
