//! Sparse matrix-vector products over arbitrary (mul, add) closures.
//!
//! [`spmv`] is the row-parallel *pull* kernel (`GrB_mxv`): each output row
//! is an independent dot product of a CSR row with the (densified) input
//! vector. [`vxm`] is the *push* kernel (`GrB_vxm`): input nonzeros scatter
//! their row of the matrix into per-task accumulators that are then merged
//! — the natural shape for frontier expansion in BFS-like algorithms.
//!
//! The `*_fused` variants take optional [`FusedMap`] hooks so the
//! nonblocking execution DAG can fold whole apply/select chains into the
//! numeric phase: `pre` transforms (or drops) each *input* entry exactly
//! once as it enters the kernel, `post` transforms each *output* entry as
//! it is emitted — no intermediate vector is ever materialized. `vxm_fused`
//! additionally accepts an `allowed` column predicate so a masked `vxm`
//! can skip scattering into columns the mask will discard anyway.

use std::ops::Range;

use graphblas_exec::workspace::{self, DenseAcc, MarkTable};
use graphblas_exec::{parallel_map_ranges, partition, Context};

use crate::bitmap::BitmapVec;
use crate::csr::Csr;
use crate::svec::SparseVec;

/// How `spmv` resolves input-vector entries by column: direct indexing
/// when the frontier is dense, a checked-out position table when sparse,
/// or a word-indexed bit test when the frontier is stored as a bitmap.
enum XLookup<'a, X> {
    Dense(&'a [X]),
    Table(&'a MarkTable, &'a [X]),
    Bitmap(&'a BitmapVec<X>),
}

impl<'a, X> XLookup<'a, X> {
    #[inline]
    fn get(&self, j: usize) -> Option<&'a X> {
        match self {
            XLookup::Dense(vals) => Some(&vals[j]),
            XLookup::Table(t, vals) => t.get(j).map(|p| &vals[p]),
            XLookup::Bitmap(b) => b.get(j),
        }
    }
}

/// An element map fused into a kernel's numeric phase:
/// `(index, &value) -> Option<value>`, where `None` drops the entry
/// (select semantics). These are the drained composition of a container's
/// pending `Stage::Map` chain, applied exactly once per touched element.
// grblint: allow(dyn-semiring-in-hot-kernel) — fused maps arrive from the
// type-erased pending queue and run once per touched element (build or
// merge pass), never inside the semiring flop loop.
pub type FusedMap<'a, T> = &'a (dyn Fn(usize, &T) -> Option<T> + Sync);

/// `y = A ⊕.⊗ x` (pull). `is_terminal`, when given, allows each row's
/// accumulation to stop early once the add-monoid annihilator is reached.
// grblint: allow(span-at-kernel-boundary) — thin forwarder; the span
// opens in `spmv_fused`.
pub fn spmv<A, X, Z, FM, FA, FT>(
    ctx: &Context,
    a: &Csr<A>,
    x: &SparseVec<X>,
    mul: FM,
    add: FA,
    is_terminal: Option<FT>,
) -> SparseVec<Z>
where
    A: Clone + Send + Sync,
    X: Clone + Send + Sync,
    Z: Clone + Send + Sync,
    FM: Fn(&A, &X) -> Z + Sync,
    FA: Fn(Z, Z) -> Z + Sync,
    FT: Fn(&Z) -> bool + Sync,
{
    spmv_fused(ctx, a, x, mul, add, is_terminal, None, None)
}

/// [`spmv`] with fused element maps: `pre` rewrites each input-vector
/// entry as the densification table is built (a dropped entry is simply
/// never scattered, so annihilated inputs cost nothing in the row loop);
/// `post` rewrites each output entry before assembly.
#[allow(clippy::too_many_arguments)]
pub fn spmv_fused<A, X, Z, FM, FA, FT>(
    ctx: &Context,
    a: &Csr<A>,
    x: &SparseVec<X>,
    mul: FM,
    add: FA,
    is_terminal: Option<FT>,
    pre: Option<FusedMap<'_, X>>,
    post: Option<FusedMap<'_, Z>>,
) -> SparseVec<Z>
where
    A: Clone + Send + Sync,
    X: Clone + Send + Sync,
    Z: Clone + Send + Sync,
    FM: Fn(&A, &X) -> Z + Sync,
    FA: Fn(Z, Z) -> Z + Sync,
    FT: Fn(&Z) -> bool + Sync,
{
    assert_eq!(a.ncols(), x.len(), "spmv: dimension mismatch");
    let mut sp = graphblas_obs::kernel_span(graphblas_obs::Kernel::SpMv, ctx.id());
    if sp.active() {
        sp.io(
            a.nnz() as u64,
            (a.nnz() + x.nnz()) as u64,
            0,
            ((a.nnz() + x.nnz()) * std::mem::size_of::<usize>()) as u64,
        );
    }
    let nrows = a.nrows();
    if nrows == 0 {
        return SparseVec::empty(0);
    }
    // Dense sorted frontier ⇒ entry j lives at position j; skip the
    // densification table entirely. Sparse frontier ⇒ check a
    // generation-stamped position table out of the thread's workspace
    // cache instead of allocating `vec![None; n]` per call. A fused pre
    // map forces the table path: the map may drop or rewrite entries, so
    // positions are no longer the identity.
    let dense = pre.is_none() && x.nnz() == x.len() && x.is_sorted();
    if graphblas_obs::events::on() {
        graphblas_obs::events::decision_kernel_path(
            "spmv",
            ctx.id(),
            if dense { "dense-frontier" } else { "sparse-frontier" },
            x.nnz() as u64,
            x.len() as u64,
        );
    }
    let mut fused_vals: Vec<X> = Vec::new();
    let table_ws: Option<workspace::Checkout<MarkTable>> = if dense {
        None
    } else {
        let mut t = workspace::checkout::<MarkTable>(x.len());
        if let Some(f) = pre {
            // Apply the input chain once per entry at scatter time;
            // entries the chain drops are never marked, so the row loop
            // skips them for free.
            fused_vals.reserve(x.nnz());
            for (j, v) in x.iter() {
                if let Some(fv) = f(j, v) {
                    t.set(j, fused_vals.len());
                    fused_vals.push(fv);
                }
            }
        } else {
            for (p, &j) in x.indices().iter().enumerate() {
                t.set(j, p);
            }
        }
        Some(t)
    };
    let lookup = match (table_ws.as_deref(), pre.is_some()) {
        (None, _) => XLookup::Dense(x.values()),
        (Some(t), true) => XLookup::Table(t, &fused_vals),
        (Some(t), false) => XLookup::Table(t, x.values()),
    };
    let y = spmv_rows(ctx, a, &lookup, &mul, &add, is_terminal.as_ref(), post);
    if sp.active() {
        sp.io(0, 0, y.nnz() as u64, 0);
    }
    y
}

/// `y = A ⊕.⊗ x` (pull) over a bitmap-format frontier. Identical row loop
/// to [`spmv`], but entry lookup is a word-indexed bit test — no
/// densification table needs to be built or checked out.
// grblint: allow(span-at-kernel-boundary) — thin forwarder; the span
// opens in `spmv_bitmap_fused`.
pub fn spmv_bitmap<A, X, Z, FM, FA, FT>(
    ctx: &Context,
    a: &Csr<A>,
    x: &BitmapVec<X>,
    mul: FM,
    add: FA,
    is_terminal: Option<FT>,
) -> SparseVec<Z>
where
    A: Clone + Send + Sync,
    X: Clone + Send + Sync,
    Z: Clone + Send + Sync,
    FM: Fn(&A, &X) -> Z + Sync,
    FA: Fn(Z, Z) -> Z + Sync,
    FT: Fn(&Z) -> bool + Sync,
{
    spmv_bitmap_fused(ctx, a, x, mul, add, is_terminal, None, None)
}

/// [`spmv_bitmap`] with fused element maps. With a `pre` chain the
/// bit-test lookup is replaced by a position table holding the rewritten
/// values (built in one pass over the bitmap, still without materializing
/// an intermediate vector); without one the bitmap is probed directly.
#[allow(clippy::too_many_arguments)]
pub fn spmv_bitmap_fused<A, X, Z, FM, FA, FT>(
    ctx: &Context,
    a: &Csr<A>,
    x: &BitmapVec<X>,
    mul: FM,
    add: FA,
    is_terminal: Option<FT>,
    pre: Option<FusedMap<'_, X>>,
    post: Option<FusedMap<'_, Z>>,
) -> SparseVec<Z>
where
    A: Clone + Send + Sync,
    X: Clone + Send + Sync,
    Z: Clone + Send + Sync,
    FM: Fn(&A, &X) -> Z + Sync,
    FA: Fn(Z, Z) -> Z + Sync,
    FT: Fn(&Z) -> bool + Sync,
{
    assert_eq!(a.ncols(), x.len(), "spmv: dimension mismatch");
    let mut sp = graphblas_obs::kernel_span(graphblas_obs::Kernel::SpMv, ctx.id());
    if sp.active() {
        sp.io(
            a.nnz() as u64,
            (a.nnz() + x.nnz()) as u64,
            0,
            ((a.nnz() + x.nnz()) * std::mem::size_of::<usize>()) as u64,
        );
    }
    let nrows = a.nrows();
    if nrows == 0 {
        return SparseVec::empty(0);
    }
    if graphblas_obs::events::on() {
        graphblas_obs::events::decision_kernel_path(
            "spmv",
            ctx.id(),
            "bitmap-frontier",
            x.nnz() as u64,
            x.len() as u64,
        );
    }
    let mut fused_vals: Vec<X> = Vec::new();
    let table_ws: Option<workspace::Checkout<MarkTable>> = if let Some(f) = pre {
        let mut t = workspace::checkout::<MarkTable>(x.len());
        fused_vals.reserve(x.nnz());
        for (j, v) in x.iter() {
            if let Some(fv) = f(j, v) {
                t.set(j, fused_vals.len());
                fused_vals.push(fv);
            }
        }
        Some(t)
    } else {
        None
    };
    let lookup = match table_ws.as_deref() {
        Some(t) => XLookup::Table(t, &fused_vals),
        None => XLookup::Bitmap(x),
    };
    let y = spmv_rows(ctx, a, &lookup, &mul, &add, is_terminal.as_ref(), post);
    if sp.active() {
        sp.io(0, 0, y.nnz() as u64, 0);
    }
    y
}

/// Shared pull row loop: nnz-balanced row ranges, per-row dot product with
/// optional terminal early-exit, concatenated sorted assembly. A fused
/// `post` map rewrites (or drops) each row's accumulated value in-register
/// before it is pushed into the output chunk.
fn spmv_rows<A, X, Z, FM, FA, FT>(
    ctx: &Context,
    a: &Csr<A>,
    lookup: &XLookup<'_, X>,
    mul: &FM,
    add: &FA,
    is_terminal: Option<&FT>,
    post: Option<FusedMap<'_, Z>>,
) -> SparseVec<Z>
where
    A: Clone + Send + Sync,
    X: Clone + Send + Sync,
    Z: Clone + Send + Sync,
    FM: Fn(&A, &X) -> Z + Sync,
    FA: Fn(Z, Z) -> Z + Sync,
    FT: Fn(&Z) -> bool + Sync,
{
    let nrows = a.nrows();
    let k = ctx
        .effective_threads()
        .min(a.nnz().max(1).div_ceil(ctx.chunk_size()).max(1))
        .min(nrows)
        .max(1);
    let ranges = partition::prefix_balanced_ranges(a.indptr(), k);
    let pull = graphblas_obs::timeline::phase("mxv.pull");
    let chunks: Vec<(Vec<usize>, Vec<Z>)> = parallel_map_ranges(ranges, |rows: Range<usize>| {
        let _task = graphblas_obs::timeline::phase("mxv.pull.task");
        let mut idx = Vec::new();
        let mut vals = Vec::new();
        for i in rows {
            let (cols, avs) = a.row(i);
            let mut acc: Option<Z> = None;
            for (&j, av) in cols.iter().zip(avs) {
                if let Some(xv) = lookup.get(j) {
                    let prod = mul(av, xv);
                    acc = Some(match acc {
                        None => prod,
                        Some(cur) => add(cur, prod),
                    });
                    if let (Some(t), Some(cur)) = (is_terminal, acc.as_ref()) {
                        if t(cur) {
                            break;
                        }
                    }
                }
            }
            let acc = match (acc, post) {
                (Some(v), Some(p)) => p(i, &v),
                (acc, _) => acc,
            };
            if let Some(v) = acc {
                idx.push(i);
                vals.push(v);
            }
        }
        (idx, vals)
    });
    drop(pull);
    let mut indices = Vec::new();
    let mut values = Vec::new();
    for (idx, vals) in chunks {
        indices.extend(idx);
        values.extend(vals);
    }
    SparseVec::from_kernel_parts(nrows, indices, values, true)
}

/// `yᵀ = xᵀ ⊕.⊗ A` (push). Each task scatters a chunk of `x`'s nonzeros
/// through their matrix rows into a dense accumulator; per-task partial
/// results are then union-merged with the add operator.
// grblint: allow(span-at-kernel-boundary) — thin forwarder; the span
// opens in `vxm_fused`.
pub fn vxm<X, A, Z, FM, FA>(
    ctx: &Context,
    x: &SparseVec<X>,
    a: &Csr<A>,
    mul: FM,
    add: FA,
) -> SparseVec<Z>
where
    X: Clone + Send + Sync,
    A: Clone + Send + Sync,
    Z: Clone + Send + Sync + 'static,
    FM: Fn(&X, &A) -> Z + Sync,
    FA: Fn(Z, Z) -> Z + Sync,
{
    vxm_fused(ctx, x, a, mul, add, None, None, None)
}

/// [`vxm`] with fused element maps and an optional mask prefilter. `pre`
/// rewrites each frontier entry once as it is read (a dropped entry never
/// scatters its matrix row); `post` rewrites each merged output entry;
/// `allowed` is a column predicate — typically a mask bitset test — that
/// stops disallowed columns from ever entering the accumulators, so a
/// masked `vxm` does not pay for entries the merge would discard.
#[allow(clippy::too_many_arguments)]
pub fn vxm_fused<X, A, Z, FM, FA>(
    ctx: &Context,
    x: &SparseVec<X>,
    a: &Csr<A>,
    mul: FM,
    add: FA,
    pre: Option<FusedMap<'_, X>>,
    post: Option<FusedMap<'_, Z>>,
    // grblint: allow(dyn-semiring-in-hot-kernel) — the mask prefilter is
    // one bit test per scattered column, not a semiring operator.
    allowed: Option<&(dyn Fn(usize) -> bool + Sync)>,
) -> SparseVec<Z>
where
    X: Clone + Send + Sync,
    A: Clone + Send + Sync,
    Z: Clone + Send + Sync + 'static,
    FM: Fn(&X, &A) -> Z + Sync,
    FA: Fn(Z, Z) -> Z + Sync,
{
    assert_eq!(a.nrows(), x.len(), "vxm: dimension mismatch");
    let mut sp = graphblas_obs::kernel_span(graphblas_obs::Kernel::VxM, ctx.id());
    let ncols = a.ncols();
    let nnz = x.nnz();
    if nnz == 0 || ncols == 0 {
        return SparseVec::empty(ncols);
    }
    if sp.active() {
        let flops: u64 = x.iter().map(|(i, _)| a.row_nnz(i) as u64).sum();
        sp.io(
            flops,
            (a.nnz() + nnz) as u64,
            0,
            ((a.nnz() + nnz) * std::mem::size_of::<usize>()) as u64,
        );
    }
    if graphblas_obs::events::on() && allowed.is_some() {
        graphblas_obs::events::decision_kernel_path(
            "vxm",
            ctx.id(),
            "masked-scatter",
            nnz as u64,
            ncols as u64,
        );
    }
    // Weight chunks of x's nonzeros by the matrix rows they touch.
    let weights: Vec<usize> = {
        let mut w = Vec::with_capacity(nnz + 1);
        w.push(0usize);
        let mut acc = 0usize;
        for (i, _) in x.iter() {
            acc += a.row_nnz(i).max(1);
            w.push(acc);
        }
        w
    };
    let k = ctx
        .effective_threads()
        .min(weights[nnz].div_ceil(ctx.chunk_size()).max(1))
        .min(nnz)
        .max(1);
    let ranges = partition::prefix_balanced_ranges(&weights, k);
    let xi = x.indices();
    let xv = x.values();
    let push = graphblas_obs::timeline::phase("mxv.push");
    let partials: Vec<SparseVec<Z>> = parallel_map_ranges(ranges, |entries: Range<usize>| {
        let _task = graphblas_obs::timeline::phase("mxv.push.task");
        let mut acc = workspace::checkout::<DenseAcc<Z>>(ncols);
        for e in entries {
            let i = xi[e];
            let owned;
            let xval: &X = match pre {
                Some(f) => match f(i, &xv[e]) {
                    Some(v) => {
                        owned = v;
                        &owned
                    }
                    None => continue,
                },
                None => &xv[e],
            };
            let (cols, avs) = a.row(i);
            for (&j, av) in cols.iter().zip(avs) {
                if let Some(alw) = allowed {
                    if !alw(j) {
                        continue;
                    }
                }
                let prod = mul(xval, av);
                acc.upsert(j, prod, &add);
            }
        }
        acc.sort_touched();
        let mut idx = Vec::with_capacity(acc.touched_len());
        let mut values = Vec::with_capacity(acc.touched_len());
        acc.drain_pass(|j, v| {
            idx.push(j);
            values.push(v);
        });
        SparseVec::from_kernel_parts(ncols, idx, values, true)
    });
    drop(push);
    let _merge = graphblas_obs::timeline::phase("mxv.merge");
    let merged = crate::ewise::svec_kmerge(ctx, partials, |a, b| add(a.clone(), b.clone()));
    let y = match post {
        Some(p) => merged.filter_map_with_index(|j, v| p(j, v)),
        None => merged,
    };
    if sp.active() {
        sp.io(0, 0, y.nnz() as u64, 0);
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphblas_exec::global_context;

    fn matrix() -> Csr<i64> {
        // [[1, _, 2],
        //  [_, 3, _],
        //  [4, _, 5]]
        Csr::from_parts(
            3,
            3,
            vec![0, 2, 3, 5],
            vec![0, 2, 1, 0, 2],
            vec![1, 2, 3, 4, 5],
        )
        .unwrap()
    }

    #[test]
    fn spmv_dense_input() {
        let ctx = global_context();
        let a = matrix();
        let x = SparseVec::from_parts(3, vec![0, 1, 2], vec![1i64, 1, 1]).unwrap();
        let y = spmv(&ctx, &a, &x, |a, x| a * x, |p, q| p + q, None::<fn(&i64) -> bool>);
        assert_eq!(y.to_sorted_tuples(), vec![(0, 3), (1, 3), (2, 9)]);
    }

    #[test]
    fn spmv_sparse_input_skips_missing() {
        let ctx = global_context();
        let a = matrix();
        let x = SparseVec::from_parts(3, vec![2], vec![10i64]).unwrap();
        let y = spmv(&ctx, &a, &x, |a, x| a * x, |p, q| p + q, None::<fn(&i64) -> bool>);
        assert_eq!(y.to_sorted_tuples(), vec![(0, 20), (2, 50)]);
    }

    #[test]
    fn spmv_empty_vector_gives_empty_result() {
        let ctx = global_context();
        let a = matrix();
        let x = SparseVec::<i64>::empty(3);
        let y = spmv(&ctx, &a, &x, |a, x| a * x, |p, q| p + q, None::<fn(&i64) -> bool>);
        assert_eq!(y.nnz(), 0);
        assert_eq!(y.len(), 3);
    }

    #[test]
    fn spmv_bitmap_matches_sparse_frontier() {
        let ctx = global_context();
        let a = matrix();
        let x = SparseVec::from_parts(3, vec![0, 2], vec![10i64, 20]).unwrap();
        let xb = BitmapVec::from_svec(&x);
        let sparse = spmv(&ctx, &a, &x, |a, x| a * x, |p, q| p + q, None::<fn(&i64) -> bool>);
        let bitmap =
            spmv_bitmap(&ctx, &a, &xb, |a, x| a * x, |p, q| p + q, None::<fn(&i64) -> bool>);
        assert_eq!(bitmap.to_sorted_tuples(), sparse.to_sorted_tuples());
    }

    #[test]
    fn vxm_matches_transposed_spmv() {
        let ctx = global_context();
        let a = matrix();
        let x = SparseVec::from_parts(3, vec![0, 2], vec![1i64, 2]).unwrap();
        let push = vxm(&ctx, &x, &a, |x, a| x * a, |p, q| p + q);
        let at = crate::transpose::transpose(&ctx, &a);
        let pull = spmv(&ctx, &at, &x, |a, x| a * x, |p, q| p + q, None::<fn(&i64) -> bool>);
        assert_eq!(push.to_sorted_tuples(), pull.to_sorted_tuples());
    }

    #[test]
    fn vxm_min_plus_semiring() {
        let ctx = global_context();
        // Path graph weights: 0 -> 1 (7), 1 -> 2 (2)
        let a = Csr::from_parts(3, 3, vec![0, 1, 2, 2], vec![1, 2], vec![7i64, 2]).unwrap();
        let x = SparseVec::from_parts(3, vec![0], vec![0i64]).unwrap();
        let step1 = vxm(&ctx, &x, &a, |d, w| d + w, |p, q| p.min(q));
        assert_eq!(step1.to_sorted_tuples(), vec![(1, 7)]);
        let step2 = vxm(&ctx, &step1, &a, |d, w| d + w, |p, q| p.min(q));
        assert_eq!(step2.to_sorted_tuples(), vec![(2, 9)]);
    }

    #[test]
    fn spmv_terminal_early_exit_is_correct() {
        let ctx = global_context();
        // Boolean OR.AND semiring: once a row's accumulator is true it
        // cannot change; results must match the non-terminal run.
        let a = Csr::from_parts(
            2,
            4,
            vec![0, 4, 6],
            vec![0, 1, 2, 3, 1, 3],
            vec![true, true, true, true, false, false],
        )
        .unwrap();
        let x = SparseVec::from_parts(4, vec![0, 1, 2, 3], vec![true; 4]).unwrap();
        let and = |a: &bool, b: &bool| *a && *b;
        let or = |p: bool, q: bool| p || q;
        let with_t = spmv(&ctx, &a, &x, and, or, Some(&|z: &bool| *z));
        let without = spmv(&ctx, &a, &x, and, or, None::<fn(&bool) -> bool>);
        assert_eq!(with_t.to_sorted_tuples(), without.to_sorted_tuples());
        assert_eq!(with_t.get(0), Some(&true));
        assert_eq!(with_t.get(1), Some(&false));
    }

    #[test]
    fn spmv_fused_pre_post_match_materialized() {
        let ctx = global_context();
        let a = matrix();
        let x = SparseVec::from_parts(3, vec![0, 1, 2], vec![1i64, 2, 3]).unwrap();
        // pre: double and drop entries > 4; post: +1 and drop odd rows.
        let pre = |_j: usize, v: &i64| -> Option<i64> {
            let d = v * 2;
            (d <= 4).then_some(d)
        };
        let post = |i: usize, v: &i64| -> Option<i64> { (i % 2 == 0).then_some(v + 1) };
        let xm = x.filter_map_with_index(pre);
        let expect = spmv(&ctx, &a, &xm, |a, x| a * x, |p, q| p + q, None::<fn(&i64) -> bool>)
            .filter_map_with_index(post);
        let fused = spmv_fused(
            &ctx,
            &a,
            &x,
            |a, x| a * x,
            |p, q| p + q,
            None::<fn(&i64) -> bool>,
            Some(&pre),
            Some(&post),
        );
        assert_eq!(fused.to_sorted_tuples(), expect.to_sorted_tuples());
    }

    #[test]
    fn spmv_bitmap_fused_matches_sparse_fused() {
        let ctx = global_context();
        let a = matrix();
        let x = SparseVec::from_parts(3, vec![0, 2], vec![10i64, 20]).unwrap();
        let xb = BitmapVec::from_svec(&x);
        let pre = |_j: usize, v: &i64| -> Option<i64> { (*v < 15).then_some(v + 1) };
        let sparse = spmv_fused(
            &ctx,
            &a,
            &x,
            |a, x| a * x,
            |p, q| p + q,
            None::<fn(&i64) -> bool>,
            Some(&pre),
            None,
        );
        let bitmap = spmv_bitmap_fused(
            &ctx,
            &a,
            &xb,
            |a, x| a * x,
            |p, q| p + q,
            None::<fn(&i64) -> bool>,
            Some(&pre),
            None,
        );
        assert_eq!(bitmap.to_sorted_tuples(), sparse.to_sorted_tuples());
    }

    #[test]
    fn vxm_fused_pre_post_match_materialized() {
        let ctx = global_context();
        let a = matrix();
        let x = SparseVec::from_parts(3, vec![0, 1, 2], vec![1i64, 2, 3]).unwrap();
        let pre = |_j: usize, v: &i64| -> Option<i64> { (*v != 2).then_some(v * 10) };
        let post = |_j: usize, v: &i64| -> Option<i64> { (*v > 40).then_some(*v) };
        let xm = x.filter_map_with_index(pre);
        let expect = vxm(&ctx, &xm, &a, |x, a| x * a, |p, q| p + q)
            .filter_map_with_index(post);
        let fused = vxm_fused(
            &ctx,
            &x,
            &a,
            |x, a| x * a,
            |p, q| p + q,
            Some(&pre),
            Some(&post),
            None,
        );
        assert_eq!(fused.to_sorted_tuples(), expect.to_sorted_tuples());
    }

    #[test]
    fn vxm_masked_scatter_prefilters_columns() {
        let ctx = global_context();
        let a = matrix();
        let x = SparseVec::from_parts(3, vec![0, 2], vec![1i64, 2]).unwrap();
        let full = vxm(&ctx, &x, &a, |x, a| x * a, |p, q| p + q);
        // Only even columns allowed: the masked run must equal the full
        // run restricted to those columns.
        let masked = vxm_fused(
            &ctx,
            &x,
            &a,
            |x, a| x * a,
            |p, q| p + q,
            None,
            None,
            Some(&|j: usize| j % 2 == 0),
        );
        let expect: Vec<(usize, i64)> = full
            .to_sorted_tuples()
            .into_iter()
            .filter(|(j, _)| j % 2 == 0)
            .collect();
        assert_eq!(masked.to_sorted_tuples(), expect);
    }

    #[test]
    fn large_random_agreement_between_push_and_pull() {
        use graphblas_exec::rng::prelude::*;
        let ctx = global_context();
        let mut rng = StdRng::seed_from_u64(11);
        let (m, n) = (200, 150);
        let mut rows = Vec::new();
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        for _ in 0..2000 {
            rows.push(rng.gen_range(0..m));
            cols.push(rng.gen_range(0..n));
            vals.push(rng.gen_range(1..10i64));
        }
        let a = crate::coo::Coo::from_parts(m, n, rows, cols, vals)
            .unwrap()
            .to_csr(&ctx, Some(&|a: &i64, b: &i64| a + b))
            .unwrap();
        let xi: Vec<usize> = (0..m).filter(|i| i % 3 == 0).collect();
        let xv: Vec<i64> = xi.iter().map(|&i| (i % 7 + 1) as i64).collect();
        let x = SparseVec::from_parts(m, xi, xv).unwrap();
        let push = vxm(&ctx, &x, &a, |x, a| x * a, |p, q| p + q);
        let at = crate::transpose::transpose(&ctx, &a);
        let pull = spmv(&ctx, &at, &x, |a, x| a * x, |p, q| p + q, None::<fn(&i64) -> bool>);
        assert_eq!(push.to_sorted_tuples(), pull.to_sorted_tuples());
    }
}
