//! Compressed Sparse Column storage (`GrB_CSC_MATRIX`, Table III).
//!
//! A CSC matrix is stored as the CSR representation of its transpose, so
//! every CSR kernel is reusable; only the import/export surface differs.

use graphblas_exec::Context;

use crate::csr::Csr;
use crate::error::FormatError;
use crate::transpose::transpose;

/// A CSC matrix of logical shape `nrows × ncols`, held internally as the
/// CSR of the transpose.
#[derive(Debug, Clone)]
pub struct Csc<T> {
    /// CSR of shape `ncols × nrows`: row `j` of `t` is column `j` of `self`.
    t: Csr<T>,
}

impl<T> Csc<T> {
    /// An empty matrix of the given logical shape.
    pub fn empty(nrows: usize, ncols: usize) -> Self {
        Csc {
            t: Csr::empty(ncols, nrows),
        }
    }

    /// Builds from Table III CSC arrays: `indptr` of length `ncols + 1`,
    /// `indices` holding *row* indices per column, `values` the elements.
    /// Columns may be unsorted.
    pub fn from_parts(
        nrows: usize,
        ncols: usize,
        indptr: Vec<usize>,
        indices: Vec<usize>,
        values: Vec<T>,
    ) -> Result<Self, FormatError> {
        Ok(Csc {
            t: Csr::from_parts(ncols, nrows, indptr, indices, values)?,
        })
    }

    /// Consumes the matrix, returning CSC arrays `(indptr, indices, values)`.
    pub fn into_parts(self) -> (Vec<usize>, Vec<usize>, Vec<T>) {
        self.t.into_parts()
    }

    /// Logical number of rows.
    pub fn nrows(&self) -> usize {
        self.t.ncols()
    }

    /// Logical number of columns.
    pub fn ncols(&self) -> usize {
        self.t.nrows()
    }

    /// Number of stored elements.
    pub fn nnz(&self) -> usize {
        self.t.nnz()
    }

    /// Allocated buffer bytes of this store (see [`Csr::bytes`]).
    pub fn bytes(&self) -> u64 {
        self.t.bytes()
    }

    /// Row indices and values of logical column `j`.
    pub fn col(&self, j: usize) -> (&[usize], &[T]) {
        self.t.row(j)
    }

    /// The internal transpose-CSR (borrow).
    pub fn transposed_csr(&self) -> &Csr<T> {
        &self.t
    }

    /// Wraps an existing transpose-CSR.
    pub fn from_transposed_csr(t: Csr<T>) -> Self {
        Csc { t }
    }

    /// Consumes into the internal transpose-CSR.
    pub fn into_transposed_csr(self) -> Csr<T> {
        self.t
    }

    /// Looks up element `(i, j)`.
    pub fn get(&self, i: usize, j: usize) -> Option<&T> {
        if j >= self.ncols() {
            return None;
        }
        self.t.get(j, i)
    }

    /// Full invariant validation, with [`Csr::check`]'s rigor: validates
    /// the internal transpose-CSR (whose rows are this matrix's columns, so
    /// a reported "column" bound violation is a CSC *row* bound violation).
    pub fn check(&self) -> Result<(), FormatError> {
        self.t.check().map_err(|e| match e {
            FormatError::IndexOutOfBounds { index, bound, .. } => {
                FormatError::IndexOutOfBounds {
                    index,
                    bound,
                    axis: "row",
                }
            }
            other => other,
        })
    }
}

impl<T: Clone + Send + Sync> Csc<T> {
    /// Converts to CSR (a transpose pass).
    pub fn to_csr(&self, ctx: &Context) -> Csr<T> {
        transpose(ctx, &self.t)
    }

    /// Converts from CSR (a transpose pass).
    pub fn from_csr(ctx: &Context, a: &Csr<T>) -> Self {
        Csc {
            t: transpose(ctx, a),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphblas_exec::global_context;

    #[test]
    fn csc_from_parts_and_get() {
        // [[1, _],
        //  [2, 3]]  in CSC: col0 = {0:1, 1:2}, col1 = {1:3}
        let c = Csc::from_parts(2, 2, vec![0, 2, 3], vec![0, 1, 1], vec![1, 2, 3]).unwrap();
        assert_eq!(c.get(0, 0), Some(&1));
        assert_eq!(c.get(1, 0), Some(&2));
        assert_eq!(c.get(1, 1), Some(&3));
        assert_eq!(c.get(0, 1), None);
        assert_eq!(c.nrows(), 2);
        assert_eq!(c.ncols(), 2);
        assert_eq!(c.nnz(), 3);
        assert_eq!(c.col(0).0, &[0, 1]);
    }

    #[test]
    fn csr_csc_roundtrip() {
        let ctx = global_context();
        let a =
            Csr::from_parts(3, 3, vec![0, 2, 2, 4], vec![0, 2, 0, 1], vec![1, 2, 3, 4]).unwrap();
        let c = Csc::from_csr(&ctx, &a);
        for (i, j, v) in a.iter() {
            assert_eq!(c.get(i, j), Some(v));
        }
        let back = c.to_csr(&ctx);
        assert_eq!(a.to_sorted_tuples(), back.to_sorted_tuples());
    }

    #[test]
    fn csc_validation_errors() {
        // Row index out of bounds (nrows = 2).
        assert!(Csc::<i32>::from_parts(2, 2, vec![0, 1, 1], vec![5], vec![1]).is_err());
        // Wrong indptr length for ncols = 2.
        assert!(Csc::<i32>::from_parts(2, 2, vec![0, 1], vec![0], vec![1]).is_err());
    }
}
