//! Sparse matrix-matrix multiplication (Gustavson's algorithm).
//!
//! Row-parallel: row `i` of `C = A ⊕.⊗ B` is the ⊕-combination of rows of
//! `B` selected and ⊗-scaled by row `i` of `A`, accumulated in a per-task
//! sparse accumulator checked out of the thread's workspace cache
//! (`exec::workspace::DenseAcc` — generation-stamped dense table + touched
//! list, so clearing is O(row nnz), not O(ncols), and iterative callers
//! reuse the allocation across kernel invocations).
//!
//! Work is partitioned by *flops* (Σ over a-entries of the touched b-row
//! lengths), not row count — essential for power-law graphs.
//!
//! [`spgemm_masked`] additionally takes an output-structure mask and only
//! accumulates positions the mask allows. With `complement = false` this
//! is the `C⟨M⟩ = A ⊕.⊗ B` pattern that makes masked triangle counting
//! cheap (never materializing A·B outside the mask's structure).

use std::ops::Range;

use graphblas_exec::workspace::{self, BitSet, DenseAcc};
use graphblas_exec::{parallel_map_chunks, parallel_map_ranges, partition, Context};

use crate::csr::Csr;
use crate::util;

/// Flop-weighted row ranges for `A · B`. The per-row flop counts are
/// gathered in parallel chunks; only the prefix sum is sequential.
fn flop_ranges<A: Sync, B: Sync>(ctx: &Context, a: &Csr<A>, b: &Csr<B>) -> Vec<Range<usize>> {
    let nrows = a.nrows();
    if nrows == 0 {
        return Vec::new();
    }
    let chunks = parallel_map_chunks(ctx, nrows, |rows: Range<usize>| {
        rows.map(|i| {
            let (cols, _) = a.row(i);
            let row_flops: usize = cols.iter().map(|&k| b.row_nnz(k)).sum();
            row_flops + 1 // keep ranges nonempty even for all-empty rows
        })
        .collect::<Vec<usize>>()
    });
    let mut flops = Vec::with_capacity(nrows + 1);
    flops.push(0usize);
    let mut acc = 0usize;
    for (_, counts) in chunks {
        for c in counts {
            acc += c;
            flops.push(acc);
        }
    }
    let total = flops[nrows];
    let k = ctx
        .effective_threads()
        .min(total.div_ceil(ctx.chunk_size()).max(1))
        .min(nrows)
        .max(1);
    partition::prefix_balanced_ranges(&flops, k)
}

/// `C = A ⊕.⊗ B`. `add` accumulates in place (`acc ⊕= z`). Output rows are
/// produced unsorted (`rows_sorted == false`), matching the latitude the
/// import/export spec gives and letting `wait(MATERIALIZE)` carry the cost.
pub fn spgemm<A, B, Z, FM, FA>(
    ctx: &Context,
    a: &Csr<A>,
    b: &Csr<B>,
    mul: FM,
    add: FA,
) -> Csr<Z>
where
    A: Clone + Send + Sync,
    B: Clone + Send + Sync,
    Z: Clone + Send + Sync + 'static,
    FM: Fn(&A, &B) -> Z + Sync,
    FA: Fn(&mut Z, Z) + Sync,
{
    assert_eq!(a.ncols(), b.nrows(), "spgemm: inner dimension mismatch");
    let mut sp = graphblas_obs::kernel_span(graphblas_obs::Kernel::SpGemm, ctx.id());
    let (m, n) = (a.nrows(), b.ncols());
    if m == 0 || n == 0 || a.nnz() == 0 || b.nnz() == 0 {
        return Csr::empty(m, n);
    }
    if sp.active() {
        sp.io(
            count_flops(a, b),
            (a.nnz() + b.nnz()) as u64,
            0,
            ((a.nnz() + b.nnz()) * (std::mem::size_of::<usize>() * 2)) as u64,
        );
    }
    let ranges = {
        let _ph = graphblas_obs::timeline::phase("spgemm.symbolic");
        flop_ranges(ctx, a, b)
    };
    let numeric = graphblas_obs::timeline::phase("spgemm.numeric");
    let chunks = parallel_map_ranges(ranges, |rows: Range<usize>| {
        let _task = graphblas_obs::timeline::phase("spgemm.numeric.task");
        let mut spa = workspace::checkout::<DenseAcc<Z>>(n);
        let mut lens = Vec::with_capacity(rows.len());
        let mut idx = Vec::new();
        let mut vals: Vec<Z> = Vec::new();
        for i in rows.clone() {
            spa.begin_pass();
            let (acols, avals) = a.row(i);
            for (&k, av) in acols.iter().zip(avals) {
                let (bcols, bvals) = b.row(k);
                for (&j, bv) in bcols.iter().zip(bvals) {
                    let prod = mul(av, bv);
                    spa.upsert(j, prod, |mut cur, new| {
                        add(&mut cur, new);
                        cur
                    });
                }
            }
            lens.push(spa.touched_len());
            spa.drain_pass(|j, v| {
                idx.push(j);
                vals.push(v);
            });
        }
        (rows, (lens, idx, vals))
    });
    drop(numeric);
    let (indptr, indices, values) = util::stitch_row_chunks(m, chunks);
    let c = Csr::from_kernel_parts(m, n, indptr, indices, values, false);
    if sp.active() {
        sp.io(0, 0, c.nnz() as u64, 0);
    }
    c
}

/// Masked SpGEMM: only positions permitted by the structure of `mask`
/// (filtered by `pred`, complemented when `complement`) are accumulated.
#[allow(clippy::too_many_arguments)] // mirrors the GrB_mxm masked signature
pub fn spgemm_masked<M, A, B, Z, FP, FM, FA>(
    ctx: &Context,
    mask: &Csr<M>,
    complement: bool,
    pred: FP,
    a: &Csr<A>,
    b: &Csr<B>,
    mul: FM,
    add: FA,
) -> Csr<Z>
where
    M: Clone + Send + Sync,
    A: Clone + Send + Sync,
    B: Clone + Send + Sync,
    Z: Clone + Send + Sync + 'static,
    FP: Fn(&M) -> bool + Sync,
    FM: Fn(&A, &B) -> Z + Sync,
    FA: Fn(&mut Z, Z) + Sync,
{
    assert_eq!(a.ncols(), b.nrows(), "spgemm: inner dimension mismatch");
    assert_eq!(mask.nrows(), a.nrows(), "spgemm: mask row mismatch");
    assert_eq!(mask.ncols(), b.ncols(), "spgemm: mask column mismatch");
    let mut sp = graphblas_obs::kernel_span(graphblas_obs::Kernel::SpGemm, ctx.id());
    let (m, n) = (a.nrows(), b.ncols());
    if m == 0 || n == 0 {
        return Csr::empty(m, n);
    }
    if sp.active() {
        sp.io(
            count_flops(a, b),
            (a.nnz() + b.nnz() + mask.nnz()) as u64,
            0,
            ((a.nnz() + b.nnz() + mask.nnz()) * (std::mem::size_of::<usize>() * 2)) as u64,
        );
    }
    let ranges = {
        let _ph = graphblas_obs::timeline::phase("spgemm.symbolic");
        flop_ranges(ctx, a, b)
    };
    let numeric = graphblas_obs::timeline::phase("spgemm.numeric");
    let chunks = parallel_map_ranges(ranges, |rows: Range<usize>| {
        let _task = graphblas_obs::timeline::phase("spgemm.numeric.task");
        let mut spa = workspace::checkout::<DenseAcc<Z>>(n);
        // Word-packed set marking mask-allowed columns for this row: the
        // inner flop loop tests it per product, so the 8-per-byte packing
        // keeps it cache-resident on wide matrices.
        let mut allow = workspace::checkout::<BitSet>(n);
        let mut lens = Vec::with_capacity(rows.len());
        let mut idx = Vec::new();
        let mut vals: Vec<Z> = Vec::new();
        for i in rows.clone() {
            spa.begin_pass();
            allow.begin_pass();
            let (mcols, mvals) = mask.row(i);
            for (&j, mv) in mcols.iter().zip(mvals) {
                if pred(mv) {
                    allow.insert(j);
                }
            }
            let (acols, avals) = a.row(i);
            for (&k, av) in acols.iter().zip(avals) {
                let (bcols, bvals) = b.row(k);
                for (&j, bv) in bcols.iter().zip(bvals) {
                    if allow.contains(j) == complement {
                        continue;
                    }
                    let prod = mul(av, bv);
                    spa.upsert(j, prod, |mut cur, new| {
                        add(&mut cur, new);
                        cur
                    });
                }
            }
            lens.push(spa.touched_len());
            spa.drain_pass(|j, v| {
                idx.push(j);
                vals.push(v);
            });
        }
        (rows, (lens, idx, vals))
    });
    drop(numeric);
    let (indptr, indices, values) = util::stitch_row_chunks(m, chunks);
    let c = Csr::from_kernel_parts(m, n, indptr, indices, values, false);
    if sp.active() {
        sp.io(0, 0, c.nnz() as u64, 0);
    }
    c
}

/// Exact semiring-multiply count for `A · B` (Σ over entries `(i,k)` of A
/// of `nnz(B(k,:))`). Only computed when a telemetry span is live.
fn count_flops<A, B>(a: &Csr<A>, b: &Csr<B>) -> u64 {
    let mut flops = 0u64;
    for i in 0..a.nrows() {
        let (cols, _) = a.row(i);
        for &k in cols {
            flops += b.row_nnz(k) as u64;
        }
    }
    flops
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphblas_exec::global_context;

    fn from_tuples(shape: (usize, usize), t: &[(usize, usize, i64)]) -> Csr<i64> {
        crate::coo::Coo::from_parts(
            shape.0,
            shape.1,
            t.iter().map(|x| x.0).collect(),
            t.iter().map(|x| x.1).collect(),
            t.iter().map(|x| x.2).collect(),
        )
        .unwrap()
        .to_csr(&global_context(), None)
        .unwrap()
    }

    fn dense_mm(a: &Csr<i64>, b: &Csr<i64>) -> Vec<(usize, usize, i64)> {
        let mut out = std::collections::BTreeMap::new();
        for (i, k, av) in a.iter() {
            let (bc, bv) = b.row(k);
            for (&j, bvv) in bc.iter().zip(bv) {
                *out.entry((i, j)).or_insert(0) += av * bvv;
            }
        }
        out.into_iter().map(|((i, j), v)| (i, j, v)).collect()
    }

    #[test]
    fn small_known_product() {
        let ctx = global_context();
        let a = from_tuples((2, 3), &[(0, 0, 1), (0, 1, 2), (1, 2, 3)]);
        let b = from_tuples((3, 2), &[(0, 0, 4), (1, 0, 5), (1, 1, 6), (2, 1, 7)]);
        let c = spgemm(&ctx, &a, &b, |x, y| x * y, |acc, z| *acc += z);
        // C = [[1*4 + 2*5, 2*6], [_, 3*7]]
        assert_eq!(
            c.to_sorted_tuples(),
            vec![(0, 0, 14), (0, 1, 12), (1, 1, 21)]
        );
    }

    #[test]
    fn random_against_reference() {
        use graphblas_exec::rng::prelude::*;
        let ctx = global_context();
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..5 {
            let (m, k, n) = (
                rng.gen_range(1..40),
                rng.gen_range(1..40),
                rng.gen_range(1..40),
            );
            let mk = |rows: usize, cols: usize, rng: &mut StdRng| {
                let nnz = rng.gen_range(0..rows * cols / 2 + 1);
                let mut seen = std::collections::HashSet::new();
                let mut t = Vec::new();
                for _ in 0..nnz {
                    let i = rng.gen_range(0..rows);
                    let j = rng.gen_range(0..cols);
                    if seen.insert((i, j)) {
                        t.push((i, j, rng.gen_range(-5..6)));
                    }
                }
                from_tuples((rows, cols), &t)
            };
            let a = mk(m, k, &mut rng);
            let b = mk(k, n, &mut rng);
            let c = spgemm(&ctx, &a, &b, |x, y| x * y, |acc, z| *acc += z);
            c.check().unwrap();
            let reference: Vec<_> = dense_mm(&a, &b);
            assert_eq!(c.to_sorted_tuples(), reference);
        }
    }

    #[test]
    fn masked_equals_filtered_unmasked() {
        use graphblas_exec::rng::prelude::*;
        let ctx = global_context();
        let mut rng = StdRng::seed_from_u64(5);
        let n = 30;
        let mk = |rng: &mut StdRng| {
            let mut seen = std::collections::HashSet::new();
            let mut t = Vec::new();
            for _ in 0..200 {
                let i = rng.gen_range(0..n);
                let j = rng.gen_range(0..n);
                if seen.insert((i, j)) {
                    t.push((i, j, rng.gen_range(1..5)));
                }
            }
            from_tuples((n, n), &t)
        };
        let a = mk(&mut rng);
        let b = mk(&mut rng);
        let mask = mk(&mut rng);
        let full = spgemm(&ctx, &a, &b, |x, y| x * y, |acc, z| *acc += z);
        let masked = spgemm_masked(
            &ctx,
            &mask,
            false,
            |_| true,
            &a,
            &b,
            |x, y| x * y,
            |acc, z| *acc += z,
        );
        // Reference: restrict the full product to mask structure.
        let mut sorted_full = full.clone();
        sorted_full.sort_rows(&ctx);
        let expect = crate::ewise::ewise_restrict(&ctx, &sorted_full, &mask, false, |_| true);
        assert_eq!(masked.to_sorted_tuples(), expect.to_sorted_tuples());

        // Complemented mask keeps the rest.
        let masked_c = spgemm_masked(
            &ctx,
            &mask,
            true,
            |_| true,
            &a,
            &b,
            |x, y| x * y,
            |acc, z| *acc += z,
        );
        let expect_c = crate::ewise::ewise_restrict(&ctx, &sorted_full, &mask, true, |_| true);
        assert_eq!(masked_c.to_sorted_tuples(), expect_c.to_sorted_tuples());
    }

    #[test]
    fn empty_and_degenerate_shapes() {
        let ctx = global_context();
        let a = Csr::<i64>::empty(0, 3);
        let b = Csr::<i64>::empty(3, 4);
        let c = spgemm(&ctx, &a, &b, |x, y| x * y, |acc, z| *acc += z);
        assert_eq!((c.nrows(), c.ncols(), c.nnz()), (0, 4, 0));
        let a2 = from_tuples((2, 2), &[(0, 0, 1)]);
        let b2 = Csr::<i64>::empty(2, 2);
        let c2 = spgemm(&ctx, &a2, &b2, |x, y| x * y, |acc, z| *acc += z);
        assert_eq!(c2.nnz(), 0);
    }

    #[test]
    fn min_plus_semiring_product() {
        let ctx = global_context();
        // Shortest two-hop paths.
        let a = from_tuples((3, 3), &[(0, 1, 2), (0, 2, 10), (1, 2, 3)]);
        let c = spgemm(
            &ctx,
            &a,
            &a,
            |x, y| x + y,
            |acc, z| {
                if z < *acc {
                    *acc = z;
                }
            },
        );
        // 0 -> 1 -> 2 costs 5.
        assert_eq!(c.get(0, 2), Some(&5));
    }
}
