//! Kronecker product kernel (`GrB_kronecker`).
//!
//! `C = A ⊗ B` has shape `(ma·mb) × (na·nb)`; entry
//! `C(ia·mb + ib, ja·nb + jb) = mul(A(ia,ja), B(ib,jb))`. Work is
//! parallelized over `A`'s rows, weighted by `row_nnz(A) · nnz(B)`.

use std::ops::Range;

use graphblas_exec::{parallel_map_ranges, partition, Context};

use crate::csr::Csr;
use crate::error::FormatError;
use crate::util;

/// Computes the Kronecker product with an arbitrary multiply closure.
pub fn kronecker<A, B, Z, FM>(
    ctx: &Context,
    a: &Csr<A>,
    b: &Csr<B>,
    mul: FM,
) -> Result<Csr<Z>, FormatError>
where
    A: Clone + Send + Sync,
    B: Clone + Send + Sync,
    Z: Clone + Send + Sync,
    FM: Fn(&A, &B) -> Z + Sync,
{
    let (ma, na) = (a.nrows(), a.ncols());
    let (mb, nb) = (b.nrows(), b.ncols());
    let m = ma.checked_mul(mb).ok_or(FormatError::Overflow)?;
    let n = na.checked_mul(nb).ok_or(FormatError::Overflow)?;
    let mut sp = graphblas_obs::kernel_span(graphblas_obs::Kernel::Kron, ctx.id());
    if m == 0 || n == 0 || a.nnz() == 0 || b.nnz() == 0 {
        return Ok(Csr::empty(m, n));
    }
    if sp.active() {
        let out = (a.nnz() * b.nnz()) as u64;
        sp.io(
            out,
            (a.nnz() + b.nnz()) as u64,
            out,
            out * std::mem::size_of::<Z>() as u64,
        );
    }
    // Weight per a-row: its nnz times nnz(B) (each a-entry replicates B).
    let weights: Vec<usize> = {
        let mut w = Vec::with_capacity(ma + 1);
        w.push(0usize);
        let mut acc = 0usize;
        for ia in 0..ma {
            acc += a.row_nnz(ia) * b.nnz() + 1;
            w.push(acc);
        }
        w
    };
    let k = ctx
        .effective_threads()
        .min(weights[ma].div_ceil(ctx.chunk_size()).max(1))
        .min(ma)
        .max(1);
    let ranges = partition::prefix_balanced_ranges(&weights, k);
    let sorted = a.is_rows_sorted() && b.is_rows_sorted();
    let chunks = parallel_map_ranges(ranges, |arows: Range<usize>| {
        // Output rows covered by this chunk: arows.start*mb .. arows.end*mb.
        let mut lens = Vec::with_capacity(arows.len() * mb);
        let mut idx = Vec::new();
        let mut vals: Vec<Z> = Vec::new();
        for ia in arows.clone() {
            let (acols, avals) = a.row(ia);
            for ib in 0..mb {
                let before = idx.len();
                let (bcols, bvals) = b.row(ib);
                for (&ja, av) in acols.iter().zip(avals) {
                    for (&jb, bv) in bcols.iter().zip(bvals) {
                        idx.push(ja * nb + jb);
                        vals.push(mul(av, bv));
                    }
                }
                lens.push(idx.len() - before);
            }
        }
        (arows.start * mb..arows.end * mb, (lens, idx, vals))
    });
    let (indptr, indices, values) = util::stitch_row_chunks(m, chunks);
    Ok(Csr::from_kernel_parts(m, n, indptr, indices, values, sorted))
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphblas_exec::global_context;

    #[test]
    fn kron_2x2_identity_like() {
        let ctx = global_context();
        // A = [[1, 2]], B = I2
        let a = Csr::from_parts(1, 2, vec![0, 2], vec![0, 1], vec![1i64, 2]).unwrap();
        let b = Csr::from_parts(2, 2, vec![0, 1, 2], vec![0, 1], vec![1i64, 1]).unwrap();
        let c = kronecker(&ctx, &a, &b, |x, y| x * y).unwrap();
        assert_eq!((c.nrows(), c.ncols()), (2, 4));
        assert_eq!(
            c.to_sorted_tuples(),
            vec![(0, 0, 1), (0, 2, 2), (1, 1, 1), (1, 3, 2)]
        );
        assert!(c.is_rows_sorted());
        c.check().unwrap();
    }

    #[test]
    fn kron_against_reference() {
        use graphblas_exec::rng::prelude::*;
        let ctx = global_context();
        let mut rng = StdRng::seed_from_u64(17);
        let mk = |rows: usize, cols: usize, rng: &mut StdRng| {
            let mut seen = std::collections::HashSet::new();
            let mut r = Vec::new();
            let mut c = Vec::new();
            let mut v = Vec::new();
            for _ in 0..rows * cols / 3 {
                let i = rng.gen_range(0..rows);
                let j = rng.gen_range(0..cols);
                if seen.insert((i, j)) {
                    r.push(i);
                    c.push(j);
                    v.push(rng.gen_range(1..9i64));
                }
            }
            crate::coo::Coo::from_parts(rows, cols, r, c, v)
                .unwrap()
                .to_csr(&global_context(), None)
                .unwrap()
        };
        let a = mk(5, 7, &mut rng);
        let b = mk(4, 3, &mut rng);
        let c = kronecker(&ctx, &a, &b, |x, y| x * y).unwrap();
        assert_eq!(c.nnz(), a.nnz() * b.nnz());
        for (ia, ja, av) in a.iter() {
            for (ib, jb, bv) in b.iter() {
                assert_eq!(c.get(ia * 4 + ib, ja * 3 + jb), Some(&(av * bv)));
            }
        }
    }

    #[test]
    fn kron_with_empty_operand() {
        let ctx = global_context();
        let a = Csr::<i64>::empty(2, 2);
        let b = Csr::from_parts(1, 1, vec![0, 1], vec![0], vec![5i64]).unwrap();
        let c = kronecker(&ctx, &a, &b, |x, y| x * y).unwrap();
        assert_eq!((c.nrows(), c.ncols(), c.nnz()), (2, 2, 0));
    }
}
