//! Validation errors for non-opaque storage formats.

use std::fmt;

/// Why a set of user-supplied arrays does not form a valid sparse object.
///
/// `graphblas-core` maps these onto the spec's error codes (mostly
/// `GrB_INVALID_VALUE` / `GrB_INDEX_OUT_OF_BOUNDS`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FormatError {
    /// `indptr` is not a monotone array of the required length.
    BadPointers {
        /// The `indptr` length the format requires.
        expected_len: usize,
        /// Which invariant failed.
        detail: &'static str,
    },
    /// `indices`/`values` lengths disagree with each other or with `indptr`.
    LengthMismatch {
        /// The length the format requires.
        expected: usize,
        /// The length actually supplied.
        actual: usize,
        /// Which array (or concept) mismatched.
        what: &'static str,
    },
    /// An index is outside the object's dimensions.
    IndexOutOfBounds {
        /// The offending index value.
        index: usize,
        /// The (exclusive) dimension bound it violated.
        bound: usize,
        /// Which axis: "row", "column", or "vector".
        axis: &'static str,
    },
    /// The same coordinate appears twice and no combiner was supplied
    /// (GraphBLAS 2.0 §IX: a `NULL` dup makes duplicates an error).
    Duplicate {
        /// Row of the duplicated coordinate.
        row: usize,
        /// Column of the duplicated coordinate (0 for vectors).
        col: usize,
    },
    /// The object's dimensions overflow `usize` arithmetic.
    Overflow,
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FormatError::BadPointers { expected_len, detail } => write!(
                f,
                "invalid indptr array (expected length {expected_len}): {detail}"
            ),
            FormatError::LengthMismatch { expected, actual, what } => {
                write!(f, "{what} length mismatch: expected {expected}, got {actual}")
            }
            FormatError::IndexOutOfBounds { index, bound, axis } => {
                write!(f, "{axis} index {index} out of bounds (dimension {bound})")
            }
            FormatError::Duplicate { row, col } => {
                write!(f, "duplicate entry at ({row}, {col}) with no dup combiner")
            }
            FormatError::Overflow => write!(f, "dimension arithmetic overflow"),
        }
    }
}

impl std::error::Error for FormatError {}
