//! Uniform free-function conversion surface between all Table III formats.
//!
//! `graphblas-core`'s import/export machinery (`GrB_Matrix_import` /
//! `GrB_Matrix_export`) dispatches through these, so every format pair is
//! reachable with CSR as the pivot.

use graphblas_exec::Context;

use crate::bitmap::BitmapVec;
use crate::coo::Coo;
use crate::csc::Csc;
use crate::csr::Csr;
use crate::dense::{Dense, Layout};
use crate::dvec::DenseVec;
use crate::error::FormatError;
use crate::svec::SparseVec;
use crate::transpose::transpose;

/// Runs `work` under a [`graphblas_obs::Kernel::Convert`] span, charging
/// `nnz_in` entries and a byte estimate at entry and the result's nnz via
/// `nnz_out` on completion.
fn with_convert_span<R>(
    ctx: &Context,
    nnz_in: usize,
    elem_bytes: usize,
    nnz_out: impl Fn(&R) -> usize,
    work: impl FnOnce() -> R,
) -> R {
    let mut sp = graphblas_obs::kernel_span(graphblas_obs::Kernel::Convert, ctx.id());
    if sp.active() {
        sp.io(
            0,
            nnz_in as u64,
            0,
            (nnz_in * (std::mem::size_of::<usize>() + elem_bytes)) as u64,
        );
    }
    let r = work();
    if sp.active() {
        sp.io(0, 0, nnz_out(&r) as u64, 0);
    }
    r
}

/// COO → CSR; duplicates combined with `dup` or rejected when `None`.
pub fn coo_to_csr<T: Clone + Send + Sync>(
    ctx: &Context,
    coo: &Coo<T>,
    // grblint: allow(dyn-semiring-in-hot-kernel) — the dedup callback
    // runs once per duplicate during canonicalization, not in a semiring
    // flop loop; type erasure costs nothing here.
    dup: Option<&(dyn Fn(&T, &T) -> T + Sync)>,
) -> Result<Csr<T>, FormatError> {
    with_convert_span(
        ctx,
        coo.nnz(),
        std::mem::size_of::<T>(),
        |r: &Result<Csr<T>, FormatError>| r.as_ref().map_or(0, |c| c.nnz()),
        || coo.to_csr(ctx, dup),
    )
}

/// CSR → COO (storage order).
pub fn csr_to_coo<T: Clone + Send + Sync>(a: &Csr<T>) -> Coo<T> {
    Coo::from_csr(a)
}

/// CSR → CSC (one transpose pass).
pub fn csr_to_csc<T: Clone + Send + Sync>(ctx: &Context, a: &Csr<T>) -> Csc<T> {
    with_convert_span(ctx, a.nnz(), std::mem::size_of::<T>(), Csc::nnz, || {
        Csc::from_csr(ctx, a)
    })
}

/// CSC → CSR (one transpose pass).
pub fn csc_to_csr<T: Clone + Send + Sync>(ctx: &Context, a: &Csc<T>) -> Csr<T> {
    with_convert_span(ctx, a.nnz(), std::mem::size_of::<T>(), Csr::nnz, || {
        a.to_csr(ctx)
    })
}

/// Dense (either layout) → CSR.
pub fn dense_to_csr<T: Clone + Send + Sync>(ctx: &Context, d: &Dense<T>) -> Csr<T> {
    with_convert_span(
        ctx,
        d.nrows() * d.ncols(),
        std::mem::size_of::<T>(),
        Csr::nnz,
        || d.to_csr(ctx),
    )
}

/// CSR → dense; requires every element present.
pub fn csr_to_dense<T: Clone + Send + Sync>(
    ctx: &Context,
    a: &Csr<T>,
    layout: Layout,
) -> Result<Dense<T>, FormatError> {
    with_convert_span(
        ctx,
        a.nnz(),
        std::mem::size_of::<T>(),
        |r: &Result<Dense<T>, FormatError>| r.as_ref().map_or(0, |d| d.nrows() * d.ncols()),
        || Dense::from_csr_full(ctx, a, layout),
    )
}

/// Explicit transpose (re-export for API uniformity).
pub fn csr_transpose<T: Clone + Send + Sync>(ctx: &Context, a: &Csr<T>) -> Csr<T> {
    let _ph = graphblas_obs::timeline::phase("convert.transpose");
    transpose(ctx, a)
}

/// Dense vector → sparse vector.
pub fn dvec_to_svec<T: Clone>(d: &DenseVec<T>) -> SparseVec<T> {
    d.to_sparse()
}

/// Sparse vector → bitmap vector (Table III `GxB_BITMAP`).
pub fn svec_to_bitmap<T: Clone>(s: &SparseVec<T>) -> BitmapVec<T> {
    BitmapVec::from_svec(s)
}

/// Bitmap vector → sparse vector (sorted output).
pub fn bitmap_to_svec<T: Clone>(b: &BitmapVec<T>) -> SparseVec<T> {
    b.to_svec()
}

/// Dense vector → bitmap vector (every bit set).
pub fn dvec_to_bitmap<T: Clone>(d: &DenseVec<T>) -> BitmapVec<T> {
    BitmapVec::from_dvec(d)
}

/// Bitmap vector → dense vector; requires every element present.
pub fn bitmap_to_dvec<T: Clone>(b: &BitmapVec<T>) -> Result<DenseVec<T>, FormatError> {
    b.to_dvec()
}

/// Sparse vector → dense vector; requires every element present.
pub fn svec_to_dvec<T: Clone>(s: &SparseVec<T>) -> Result<DenseVec<T>, FormatError> {
    DenseVec::from_sparse_full(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphblas_exec::global_context;
    use graphblas_exec::rng::prelude::*;

    fn random_matrix(rng: &mut StdRng) -> Csr<i64> {
        let (m, n) = (rng.gen_range(1..20usize), rng.gen_range(1..20usize));
        let mut t: Vec<(usize, usize, i64)> = (0..rng.gen_range(0..60usize))
            .map(|_| {
                (
                    rng.gen_range(0..m),
                    rng.gen_range(0..n),
                    rng.gen_range(-100..100i64),
                )
            })
            .collect();
        t.sort_by_key(|&(i, j, _)| (i, j));
        t.dedup_by_key(|&mut (i, j, _)| (i, j));
        let rows = t.iter().map(|x| x.0).collect();
        let cols = t.iter().map(|x| x.1).collect();
        let vals = t.iter().map(|x| x.2).collect();
        Coo::from_parts(m, n, rows, cols, vals)
            .unwrap()
            .to_csr(&global_context(), None)
            .unwrap()
    }

    #[test]
    fn coo_roundtrip() {
        let ctx = global_context();
        let mut rng = StdRng::seed_from_u64(0xC00);
        for _ in 0..32 {
            let a = random_matrix(&mut rng);
            let back = coo_to_csr(&ctx, &csr_to_coo(&a), None).unwrap();
            assert_eq!(a.to_sorted_tuples(), back.to_sorted_tuples());
        }
    }

    #[test]
    fn csc_roundtrip() {
        let ctx = global_context();
        let mut rng = StdRng::seed_from_u64(0xC5C);
        for _ in 0..32 {
            let a = random_matrix(&mut rng);
            let back = csc_to_csr(&ctx, &csr_to_csc(&ctx, &a));
            assert_eq!(a.to_sorted_tuples(), back.to_sorted_tuples());
        }
    }

    #[test]
    fn transpose_involution() {
        let ctx = global_context();
        let mut rng = StdRng::seed_from_u64(0x7A);
        for _ in 0..32 {
            let a = random_matrix(&mut rng);
            let tt = csr_transpose(&ctx, &csr_transpose(&ctx, &a));
            assert_eq!(a.to_sorted_tuples(), tt.to_sorted_tuples());
        }
    }

    #[test]
    fn dense_roundtrip_full_matrices() {
        let ctx = global_context();
        let mut rng = StdRng::seed_from_u64(0xDE);
        for _ in 0..16 {
            let (m, n) = (rng.gen_range(1..8usize), rng.gen_range(1..8usize));
            let values: Vec<i64> = (0..m * n).map(|_| rng.gen_range(-50..50)).collect();
            let d = Dense::from_parts(m, n, Layout::RowMajor, values).unwrap();
            let csr = dense_to_csr(&ctx, &d);
            assert_eq!(csr.nnz(), m * n);
            let back = csr_to_dense(&ctx, &csr, Layout::ColMajor).unwrap();
            for i in 0..m {
                for j in 0..n {
                    assert_eq!(d.get(i, j), back.get(i, j));
                }
            }
        }
    }

    #[test]
    fn vector_roundtrip() {
        let mut rng = StdRng::seed_from_u64(0xEC);
        for _ in 0..16 {
            let values: Vec<i64> = (0..rng.gen_range(0..50usize))
                .map(|_| rng.gen_range(-100..100))
                .collect();
            let d = DenseVec::from_values(values.clone());
            let s = dvec_to_svec(&d);
            assert_eq!(s.nnz(), values.len());
            let back = svec_to_dvec(&s).unwrap();
            assert_eq!(back.values(), &values[..]);
        }
    }
}
