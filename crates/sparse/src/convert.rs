//! Uniform free-function conversion surface between all Table III formats.
//!
//! `graphblas-core`'s import/export machinery (`GrB_Matrix_import` /
//! `GrB_Matrix_export`) dispatches through these, so every format pair is
//! reachable with CSR as the pivot.

use graphblas_exec::Context;

use crate::coo::Coo;
use crate::csc::Csc;
use crate::csr::Csr;
use crate::dense::{Dense, Layout};
use crate::dvec::DenseVec;
use crate::error::FormatError;
use crate::svec::SparseVec;
use crate::transpose::transpose;

/// COO → CSR; duplicates combined with `dup` or rejected when `None`.
pub fn coo_to_csr<T: Clone + Send + Sync>(
    ctx: &Context,
    coo: &Coo<T>,
    dup: Option<&(dyn Fn(&T, &T) -> T + Sync)>,
) -> Result<Csr<T>, FormatError> {
    coo.to_csr(ctx, dup)
}

/// CSR → COO (storage order).
pub fn csr_to_coo<T: Clone + Send + Sync>(a: &Csr<T>) -> Coo<T> {
    Coo::from_csr(a)
}

/// CSR → CSC (one transpose pass).
pub fn csr_to_csc<T: Clone + Send + Sync>(ctx: &Context, a: &Csr<T>) -> Csc<T> {
    Csc::from_csr(ctx, a)
}

/// CSC → CSR (one transpose pass).
pub fn csc_to_csr<T: Clone + Send + Sync>(ctx: &Context, a: &Csc<T>) -> Csr<T> {
    a.to_csr(ctx)
}

/// Dense (either layout) → CSR.
pub fn dense_to_csr<T: Clone + Send + Sync>(ctx: &Context, d: &Dense<T>) -> Csr<T> {
    d.to_csr(ctx)
}

/// CSR → dense; requires every element present.
pub fn csr_to_dense<T: Clone + Send + Sync>(
    ctx: &Context,
    a: &Csr<T>,
    layout: Layout,
) -> Result<Dense<T>, FormatError> {
    Dense::from_csr_full(ctx, a, layout)
}

/// Explicit transpose (re-export for API uniformity).
pub fn csr_transpose<T: Clone + Send + Sync>(ctx: &Context, a: &Csr<T>) -> Csr<T> {
    transpose(ctx, a)
}

/// Dense vector → sparse vector.
pub fn dvec_to_svec<T: Clone>(d: &DenseVec<T>) -> SparseVec<T> {
    d.to_sparse()
}

/// Sparse vector → dense vector; requires every element present.
pub fn svec_to_dvec<T: Clone>(s: &SparseVec<T>) -> Result<DenseVec<T>, FormatError> {
    DenseVec::from_sparse_full(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphblas_exec::global_context;
    use proptest::prelude::*;

    fn arb_matrix() -> impl Strategy<Value = Csr<i64>> {
        (1usize..20, 1usize..20).prop_flat_map(|(m, n)| {
            proptest::collection::vec((0..m, 0..n, -100i64..100), 0..60).prop_map(
                move |mut t| {
                    t.sort_by_key(|&(i, j, _)| (i, j));
                    t.dedup_by_key(|&mut (i, j, _)| (i, j));
                    let rows = t.iter().map(|x| x.0).collect();
                    let cols = t.iter().map(|x| x.1).collect();
                    let vals = t.iter().map(|x| x.2).collect();
                    Coo::from_parts(m, n, rows, cols, vals)
                        .unwrap()
                        .to_csr(&global_context(), None)
                        .unwrap()
                },
            )
        })
    }

    proptest! {
        #[test]
        fn coo_roundtrip(a in arb_matrix()) {
            let ctx = global_context();
            let back = coo_to_csr(&ctx, &csr_to_coo(&a), None).unwrap();
            prop_assert_eq!(a.to_sorted_tuples(), back.to_sorted_tuples());
        }

        #[test]
        fn csc_roundtrip(a in arb_matrix()) {
            let ctx = global_context();
            let back = csc_to_csr(&ctx, &csr_to_csc(&ctx, &a));
            prop_assert_eq!(a.to_sorted_tuples(), back.to_sorted_tuples());
        }

        #[test]
        fn transpose_involution(a in arb_matrix()) {
            let ctx = global_context();
            let tt = csr_transpose(&ctx, &csr_transpose(&ctx, &a));
            prop_assert_eq!(a.to_sorted_tuples(), tt.to_sorted_tuples());
        }

        #[test]
        fn dense_roundtrip_full_matrices(
            (m, n) in (1usize..8, 1usize..8),
            seed in any::<u64>(),
        ) {
            let ctx = global_context();
            use rand::prelude::*;
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let values: Vec<i64> = (0..m * n).map(|_| rng.gen_range(-50..50)).collect();
            let d = Dense::from_parts(m, n, Layout::RowMajor, values).unwrap();
            let csr = dense_to_csr(&ctx, &d);
            prop_assert_eq!(csr.nnz(), m * n);
            let back = csr_to_dense(&ctx, &csr, Layout::ColMajor).unwrap();
            for i in 0..m {
                for j in 0..n {
                    prop_assert_eq!(d.get(i, j), back.get(i, j));
                }
            }
        }

        #[test]
        fn vector_roundtrip(values in proptest::collection::vec(-100i64..100, 0..50)) {
            let d = DenseVec::from_values(values.clone());
            let s = dvec_to_svec(&d);
            prop_assert_eq!(s.nnz(), values.len());
            let back = svec_to_dvec(&s).unwrap();
            prop_assert_eq!(back.values(), &values[..]);
        }
    }
}
