//! Sparse vector storage (`GrB_SPARSE_VECTOR`, Table III) and its kernels.
//!
//! Vectors are the small, latency-sensitive side of GraphBLAS (frontiers,
//! levels, property maps); kernels here are sequential merge walks — the
//! parallel heavy lifting happens in the matrix kernels.

use crate::error::FormatError;
use crate::util;

/// A sparse vector of logical length `n`; `indices` strictly increasing
/// when `sorted`.
#[derive(Debug, Clone)]
pub struct SparseVec<T> {
    n: usize,
    indices: Vec<usize>,
    values: Vec<T>,
    sorted: bool,
}

impl<T> SparseVec<T> {
    /// An empty vector of logical length `n`.
    pub fn empty(n: usize) -> Self {
        SparseVec {
            n,
            indices: Vec::new(),
            values: Vec::new(),
            sorted: true,
        }
    }

    /// Builds from index/value arrays (Table III sparse-vector format).
    /// Indices may be unsorted; duplicates are resolved in [`Self::sort_dedup`].
    pub fn from_parts(n: usize, indices: Vec<usize>, values: Vec<T>) -> Result<Self, FormatError> {
        if indices.len() != values.len() {
            return Err(FormatError::LengthMismatch {
                expected: values.len(),
                actual: indices.len(),
                what: "vector indices",
            });
        }
        if let Some(&bad) = indices.iter().find(|&&i| i >= n) {
            return Err(FormatError::IndexOutOfBounds {
                index: bad,
                bound: n,
                axis: "vector",
            });
        }
        let sorted = util::is_strictly_increasing(&indices);
        Ok(SparseVec {
            n,
            indices,
            values,
            sorted,
        })
    }

    /// Kernel-internal constructor; `sorted` taken on trust (checked in
    /// debug builds).
    pub(crate) fn from_kernel_parts(
        n: usize,
        indices: Vec<usize>,
        values: Vec<T>,
        sorted: bool,
    ) -> Self {
        let v = SparseVec {
            n,
            indices,
            values,
            sorted,
        };
        debug_assert!(
            v.check().is_ok(),
            "kernel produced an invalid sparse vector: {:?}",
            v.check().err()
        );
        v
    }

    /// Logical length (`GrB_Vector_size`).
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the logical length is zero.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of stored elements (`GrB_Vector_nvals`).
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Allocated buffer bytes of this store (capacity, not length).
    pub fn bytes(&self) -> u64 {
        (self.indices.capacity() * std::mem::size_of::<usize>()
            + self.values.capacity() * std::mem::size_of::<T>()) as u64
    }

    /// Stored element indices (ascending when sorted).
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// Stored element values, parallel to `indices`.
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// Mutable access to stored values (structure unchanged).
    pub fn values_mut(&mut self) -> &mut [T] {
        &mut self.values
    }

    pub fn is_sorted(&self) -> bool {
        self.sorted
    }

    pub fn into_parts(self) -> (Vec<usize>, Vec<T>) {
        (self.indices, self.values)
    }

    pub fn iter(&self) -> impl Iterator<Item = (usize, &T)> + '_ {
        self.indices.iter().copied().zip(self.values.iter())
    }

    pub fn get(&self, i: usize) -> Option<&T> {
        if i >= self.n {
            return None;
        }
        if self.sorted {
            self.indices.binary_search(&i).ok().map(|k| &self.values[k])
        } else {
            self.indices.iter().position(|&x| x == i).map(|k| &self.values[k])
        }
    }

    /// Removes the element at `i` if present; returns whether it existed.
    pub fn remove(&mut self, i: usize) -> bool {
        let pos = if self.sorted {
            self.indices.binary_search(&i).ok()
        } else {
            self.indices.iter().position(|&x| x == i)
        };
        match pos {
            Some(k) => {
                self.indices.remove(k);
                self.values.remove(k);
                true
            }
            None => false,
        }
    }

    /// Full invariant validation.
    pub fn check(&self) -> Result<(), FormatError> {
        if self.indices.len() != self.values.len() {
            return Err(FormatError::LengthMismatch {
                expected: self.values.len(),
                actual: self.indices.len(),
                what: "vector indices",
            });
        }
        if let Some(&bad) = self.indices.iter().find(|&&i| i >= self.n) {
            return Err(FormatError::IndexOutOfBounds {
                index: bad,
                bound: self.n,
                axis: "vector",
            });
        }
        if self.sorted && !util::is_strictly_increasing(&self.indices) {
            return Err(FormatError::BadPointers {
                expected_len: self.indices.len(),
                detail: "sorted flag set but indices are not strictly increasing",
            });
        }
        Ok(())
    }
}

impl<T: Clone> SparseVec<T> {
    /// Inserts or overwrites element `i` (`setElement`).
    pub fn set(&mut self, i: usize, v: T) -> Result<(), FormatError> {
        if i >= self.n {
            return Err(FormatError::IndexOutOfBounds {
                index: i,
                bound: self.n,
                axis: "vector",
            });
        }
        if self.sorted {
            match self.indices.binary_search(&i) {
                Ok(k) => self.values[k] = v,
                Err(k) => {
                    self.indices.insert(k, i);
                    self.values.insert(k, v);
                }
            }
        } else {
            match self.indices.iter().position(|&x| x == i) {
                Some(k) => self.values[k] = v,
                None => {
                    self.indices.push(i);
                    self.values.push(v);
                }
            }
        }
        Ok(())
    }

    /// Appends an element without position lookup, possibly creating a
    /// duplicate and losing sortedness. The O(1) fast path behind repeated
    /// `setElement`; a later [`Self::sort_dedup`] with a last-wins combiner
    /// restores canonical form (sorting is stable, so arrival order is
    /// preserved among duplicates).
    pub fn append(&mut self, i: usize, v: T) -> Result<(), FormatError> {
        if i >= self.n {
            return Err(FormatError::IndexOutOfBounds {
                index: i,
                bound: self.n,
                axis: "vector",
            });
        }
        self.indices.push(i);
        self.values.push(v);
        self.sorted = false;
        Ok(())
    }

    /// Sorts by index and resolves duplicates with `dup` (or errors when
    /// `dup` is `None`) — `GrB_Vector_build` semantics.
    pub fn sort_dedup(
        &mut self,
        dup: Option<&dyn Fn(&T, &T) -> T>,
    ) -> Result<(), FormatError> {
        if self.sorted {
            return Ok(());
        }
        util::sort_segment(&mut self.indices, &mut self.values);
        let mut out_idx: Vec<usize> = Vec::with_capacity(self.indices.len());
        let mut out_val: Vec<T> = Vec::with_capacity(self.values.len());
        let mut k = 0usize;
        while k < self.indices.len() {
            let i = self.indices[k];
            let mut acc = self.values[k].clone();
            let mut k2 = k + 1;
            while k2 < self.indices.len() && self.indices[k2] == i {
                match dup {
                    Some(op) => acc = op(&acc, &self.values[k2]),
                    None => return Err(FormatError::Duplicate { row: i, col: 0 }),
                }
                k2 += 1;
            }
            out_idx.push(i);
            out_val.push(acc);
            k = k2;
        }
        self.indices = out_idx;
        self.values = out_val;
        self.sorted = true;
        Ok(())
    }

    /// Densifies into an option table for O(1) random access.
    pub fn to_option_table(&self) -> Vec<Option<T>> {
        let mut out = vec![None; self.n];
        for (i, v) in self.iter() {
            out[i] = Some(v.clone());
        }
        out
    }

    /// Structure-preserving value map with index access (vector `apply`).
    pub fn map_with_index<Z, F>(&self, f: F) -> SparseVec<Z>
    where
        F: Fn(usize, &T) -> Z,
    {
        let values = self.iter().map(|(i, v)| f(i, v)).collect();
        SparseVec::from_kernel_parts(self.n, self.indices.clone(), values, self.sorted)
    }

    /// Combined select + apply (vector `select`, paper §VIII.C).
    pub fn filter_map_with_index<Z, F>(&self, f: F) -> SparseVec<Z>
    where
        F: Fn(usize, &T) -> Option<Z>,
    {
        let mut indices = Vec::new();
        let mut values = Vec::new();
        for (i, v) in self.iter() {
            if let Some(z) = f(i, v) {
                indices.push(i);
                values.push(z);
            }
        }
        SparseVec::from_kernel_parts(self.n, indices, values, self.sorted)
    }

    /// Reduction over stored values; `None` when empty. `is_terminal`
    /// enables monoid-annihilator early exit.
    pub fn reduce<Z, M, A>(
        &self,
        map: M,
        add: A,
        is_terminal: Option<&dyn Fn(&Z) -> bool>,
    ) -> Option<Z>
    where
        M: Fn(&T) -> Z,
        A: Fn(Z, Z) -> Z,
    {
        let mut acc: Option<Z> = None;
        for v in &self.values {
            let z = map(v);
            acc = Some(match acc {
                None => z,
                Some(a) => add(a, z),
            });
            if let (Some(t), Some(a)) = (is_terminal, acc.as_ref()) {
                if t(a) {
                    break;
                }
            }
        }
        acc
    }

    /// Subvector extraction `u(I)` with arbitrary selectors (vector
    /// `extract`).
    pub fn extract(&self, sel: &[usize]) -> Result<SparseVec<T>, FormatError> {
        for &i in sel {
            if i >= self.n {
                return Err(FormatError::IndexOutOfBounds {
                    index: i,
                    bound: self.n,
                    axis: "vector",
                });
            }
        }
        let table = self.to_option_table();
        let mut indices = Vec::new();
        let mut values = Vec::new();
        for (out_i, &src) in sel.iter().enumerate() {
            if let Some(v) = &table[src] {
                indices.push(out_i);
                values.push(v.clone());
            }
        }
        Ok(SparseVec::from_kernel_parts(sel.len(), indices, values, true))
    }

    /// Sorted `(index, value)` pairs — canonical form for comparisons.
    pub fn to_sorted_tuples(&self) -> Vec<(usize, T)> {
        let mut t: Vec<(usize, T)> = self.iter().map(|(i, v)| (i, v.clone())).collect();
        t.sort_by_key(|&(i, _)| i);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v123() -> SparseVec<i64> {
        SparseVec::from_parts(6, vec![1, 3, 5], vec![10, 30, 50]).unwrap()
    }

    #[test]
    fn basic_accessors() {
        let v = v123();
        assert_eq!(v.len(), 6);
        assert_eq!(v.nnz(), 3);
        assert_eq!(v.get(3), Some(&30));
        assert_eq!(v.get(0), None);
        assert_eq!(v.get(99), None);
        assert!(v.is_sorted());
        v.check().unwrap();
    }

    #[test]
    fn set_and_remove() {
        let mut v = v123();
        v.set(2, 20).unwrap();
        assert_eq!(v.get(2), Some(&20));
        assert_eq!(v.nnz(), 4);
        v.set(2, 21).unwrap();
        assert_eq!(v.get(2), Some(&21));
        assert_eq!(v.nnz(), 4);
        assert!(v.remove(2));
        assert!(!v.remove(2));
        assert_eq!(v.nnz(), 3);
        assert!(v.set(6, 0).is_err());
    }

    #[test]
    fn unsorted_input_and_dedup() {
        let mut v = SparseVec::from_parts(5, vec![4, 1, 4], vec![1, 2, 3]).unwrap();
        assert!(!v.is_sorted());
        v.sort_dedup(Some(&|a: &i32, b: &i32| a + b)).unwrap();
        assert_eq!(v.to_sorted_tuples(), vec![(1, 2), (4, 4)]);
        let mut w = SparseVec::from_parts(5, vec![4, 4], vec![1, 2]).unwrap();
        assert!(w.sort_dedup(None).is_err());
    }

    #[test]
    fn map_filter_reduce() {
        let v = v123();
        let m = v.map_with_index(|i, x| x + i as i64);
        assert_eq!(m.to_sorted_tuples(), vec![(1, 11), (3, 33), (5, 55)]);
        let f = v.filter_map_with_index(|_, x| (*x > 10).then_some(*x * 2));
        assert_eq!(f.to_sorted_tuples(), vec![(3, 60), (5, 100)]);
        assert_eq!(v.reduce(|x| *x, |a, b| a + b, None), Some(90));
        assert_eq!(
            SparseVec::<i64>::empty(3).reduce(|x| *x, |a, b| a + b, None),
            None
        );
    }

    #[test]
    fn reduce_terminal_early_exit() {
        let v = SparseVec::from_parts(4, vec![0, 1, 2], vec![false, true, false]).unwrap();
        assert_eq!(
            v.reduce(|x| *x, |a, b| a || b, Some(&|z: &bool| *z)),
            Some(true)
        );
    }

    #[test]
    fn extract_with_repeats() {
        let v = v123();
        let e = v.extract(&[5, 5, 0, 3]).unwrap();
        assert_eq!(e.len(), 4);
        assert_eq!(e.to_sorted_tuples(), vec![(0, 50), (1, 50), (3, 30)]);
        assert!(v.extract(&[6]).is_err());
    }

    #[test]
    fn bounds_validated() {
        assert!(SparseVec::from_parts(3, vec![3], vec![1]).is_err());
        assert!(SparseVec::from_parts(3, vec![0, 1], vec![1]).is_err());
    }
}
