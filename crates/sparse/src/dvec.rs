//! Dense vector storage (`GrB_DENSE_VECTOR`, Table III): every element
//! present, `indices` unused.

use crate::error::FormatError;
use crate::svec::SparseVec;

/// A fully-populated vector.
#[derive(Debug, Clone)]
pub struct DenseVec<T> {
    values: Vec<T>,
}

impl<T> DenseVec<T> {
    /// Wraps a value buffer; element `i` of the vector is `values[i]`.
    pub fn from_values(values: Vec<T>) -> Self {
        DenseVec { values }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the vector has zero length.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The raw value buffer (element `i` at position `i`).
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// Consumes into the raw value buffer.
    pub fn into_values(self) -> Vec<T> {
        self.values
    }

    /// Allocated buffer bytes of this store (capacity, not length).
    pub fn bytes(&self) -> u64 {
        (self.values.capacity() * std::mem::size_of::<T>()) as u64
    }

    /// Looks up element `i`.
    pub fn get(&self, i: usize) -> Option<&T> {
        self.values.get(i)
    }

    /// Full invariant validation, for parity with the other Table III
    /// formats. A dense vector is structurally valid for any buffer (its
    /// length *is* the vector's logical length and `indices` is unused), so
    /// this always succeeds — the method exists so generic verifiers can
    /// treat every format uniformly.
    pub fn check(&self) -> Result<(), FormatError> {
        Ok(())
    }
}

impl<T: Clone> DenseVec<T> {
    /// Converts to sparse form (all indices stored).
    pub fn to_sparse(&self) -> SparseVec<T> {
        SparseVec::from_kernel_parts(
            self.values.len(),
            (0..self.values.len()).collect(),
            self.values.clone(),
            true,
        )
    }

    /// Converts a *fully populated* sparse vector; errors when any element
    /// is missing (same rationale as dense matrix export).
    pub fn from_sparse_full(v: &SparseVec<T>) -> Result<Self, FormatError> {
        if v.nnz() != v.len() {
            return Err(FormatError::LengthMismatch {
                expected: v.len(),
                actual: v.nnz(),
                what: "dense vector export requires every element present; stored-element count",
            });
        }
        let table = v.to_option_table();
        let values = table
            .into_iter()
            // grblint: allow(no-unwrap) — nnz == len was verified above; a
            // valid sparse vector has no duplicate indices.
            .map(|x| x.expect("nnz == len implies all present"))
            .collect();
        Ok(DenseVec { values })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let d = DenseVec::from_values(vec![1, 2, 3]);
        let s = d.to_sparse();
        assert_eq!(s.nnz(), 3);
        assert_eq!(s.get(1), Some(&2));
        let back = DenseVec::from_sparse_full(&s).unwrap();
        assert_eq!(back.values(), &[1, 2, 3]);
    }

    #[test]
    fn partial_vector_cannot_export_dense() {
        let s = SparseVec::from_parts(3, vec![0, 2], vec![1, 3]).unwrap();
        assert!(DenseVec::from_sparse_full(&s).is_err());
    }

    #[test]
    fn empty_vector() {
        let d = DenseVec::<u8>::from_values(vec![]);
        assert!(d.is_empty());
        assert_eq!(d.to_sparse().nnz(), 0);
    }
}
