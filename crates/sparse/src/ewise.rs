//! Element-wise merge kernels: union (eWiseAdd), intersection (eWiseMult),
//! and mask restriction.
//!
//! These are sorted-merge walks over row segments; matrix variants are
//! row-parallel with nnz-balanced chunks. The mask-restriction kernel is
//! the engine behind GraphBLAS write semantics (mask / complement /
//! replace, paper Fig. 3's angle-bracket notation) and the new `select`
//! operation's "functional input mask".
//!
//! All matrix kernels require both inputs to have sorted rows; callers
//! (graphblas-core) sort lazily beforehand.

use std::ops::Range;

use graphblas_exec::{parallel_map_ranges, partition, Context};

use crate::csr::Csr;
use crate::svec::SparseVec;
use crate::util;

fn combined_chunks<A, B>(ctx: &Context, a: &Csr<A>, b: &Csr<B>) -> Vec<Range<usize>> {
    debug_assert_eq!(a.nrows(), b.nrows());
    let nrows = a.nrows();
    if nrows == 0 {
        return Vec::new();
    }
    let combined: Vec<usize> = (0..=nrows)
        .map(|i| a.indptr()[i] + b.indptr()[i])
        .collect();
    let total = combined[nrows];
    let k = ctx
        .effective_threads()
        .min(total.max(1).div_ceil(ctx.chunk_size()).max(1))
        .min(nrows)
        .max(1);
    partition::prefix_balanced_ranges(&combined, k)
}

/// Union merge with distinct handlers for "both present", "only left",
/// "only right" — the fully general eWiseAdd kernel (also used for
/// accumulator application in write semantics).
pub fn ewise_union_general<A, B, Z, FB, FL, FR>(
    ctx: &Context,
    a: &Csr<A>,
    b: &Csr<B>,
    both: FB,
    left: FL,
    right: FR,
) -> Csr<Z>
where
    A: Clone + Send + Sync,
    B: Clone + Send + Sync,
    Z: Clone + Send + Sync,
    FB: Fn(&A, &B) -> Z + Sync,
    FL: Fn(&A) -> Z + Sync,
    FR: Fn(&B) -> Z + Sync,
{
    assert_eq!(a.nrows(), b.nrows(), "ewise: row count mismatch");
    assert_eq!(a.ncols(), b.ncols(), "ewise: column count mismatch");
    assert!(a.is_rows_sorted() && b.is_rows_sorted(), "ewise requires sorted rows");
    let mut sp = graphblas_obs::kernel_span(graphblas_obs::Kernel::EwiseAdd, ctx.id());
    if sp.active() {
        let nnz_in = (a.nnz() + b.nnz()) as u64;
        sp.io(nnz_in, nnz_in, 0, nnz_in * std::mem::size_of::<usize>() as u64);
    }
    let ranges = combined_chunks(ctx, a, b);
    let chunks = parallel_map_ranges(ranges, |rows: Range<usize>| {
        let mut lens = Vec::with_capacity(rows.len());
        let mut idx = Vec::new();
        let mut vals: Vec<Z> = Vec::new();
        for i in rows.clone() {
            let before = idx.len();
            let (ac, av) = a.row(i);
            let (bc, bv) = b.row(i);
            let (mut p, mut q) = (0usize, 0usize);
            while p < ac.len() && q < bc.len() {
                match ac[p].cmp(&bc[q]) {
                    std::cmp::Ordering::Less => {
                        idx.push(ac[p]);
                        vals.push(left(&av[p]));
                        p += 1;
                    }
                    std::cmp::Ordering::Greater => {
                        idx.push(bc[q]);
                        vals.push(right(&bv[q]));
                        q += 1;
                    }
                    std::cmp::Ordering::Equal => {
                        idx.push(ac[p]);
                        vals.push(both(&av[p], &bv[q]));
                        p += 1;
                        q += 1;
                    }
                }
            }
            for k in p..ac.len() {
                idx.push(ac[k]);
                vals.push(left(&av[k]));
            }
            for k in q..bc.len() {
                idx.push(bc[k]);
                vals.push(right(&bv[k]));
            }
            lens.push(idx.len() - before);
        }
        (rows, (lens, idx, vals))
    });
    let (indptr, indices, values) = util::stitch_row_chunks(a.nrows(), chunks);
    let c = Csr::from_kernel_parts(a.nrows(), a.ncols(), indptr, indices, values, true);
    if sp.active() {
        sp.io(0, 0, c.nnz() as u64, 0);
    }
    c
}

/// Same-domain union (`eWiseAdd` with an operator on `T`): pass-through
/// where only one operand is present.
pub fn ewise_union<T, F>(ctx: &Context, a: &Csr<T>, b: &Csr<T>, op: F) -> Csr<T>
where
    T: Clone + Send + Sync,
    F: Fn(&T, &T) -> T + Sync,
{
    let _ph = graphblas_obs::timeline::phase("ewise.union");
    ewise_union_general(ctx, a, b, op, |x: &T| x.clone(), |y: &T| y.clone())
}

/// Intersection merge (`eWiseMult`): output only where both are present.
pub fn ewise_intersect<A, B, Z, F>(ctx: &Context, a: &Csr<A>, b: &Csr<B>, op: F) -> Csr<Z>
where
    A: Clone + Send + Sync,
    B: Clone + Send + Sync,
    Z: Clone + Send + Sync,
    F: Fn(&A, &B) -> Z + Sync,
{
    assert_eq!(a.nrows(), b.nrows(), "ewise: row count mismatch");
    assert_eq!(a.ncols(), b.ncols(), "ewise: column count mismatch");
    assert!(a.is_rows_sorted() && b.is_rows_sorted(), "ewise requires sorted rows");
    let mut sp = graphblas_obs::kernel_span(graphblas_obs::Kernel::EwiseMult, ctx.id());
    if sp.active() {
        let nnz_in = (a.nnz() + b.nnz()) as u64;
        sp.io(nnz_in, nnz_in, 0, nnz_in * std::mem::size_of::<usize>() as u64);
    }
    let ranges = combined_chunks(ctx, a, b);
    let chunks = parallel_map_ranges(ranges, |rows: Range<usize>| {
        let mut lens = Vec::with_capacity(rows.len());
        let mut idx = Vec::new();
        let mut vals: Vec<Z> = Vec::new();
        for i in rows.clone() {
            let before = idx.len();
            let (ac, av) = a.row(i);
            let (bc, bv) = b.row(i);
            let (mut p, mut q) = (0usize, 0usize);
            while p < ac.len() && q < bc.len() {
                match ac[p].cmp(&bc[q]) {
                    std::cmp::Ordering::Less => p += 1,
                    std::cmp::Ordering::Greater => q += 1,
                    std::cmp::Ordering::Equal => {
                        idx.push(ac[p]);
                        vals.push(op(&av[p], &bv[q]));
                        p += 1;
                        q += 1;
                    }
                }
            }
            lens.push(idx.len() - before);
        }
        (rows, (lens, idx, vals))
    });
    let (indptr, indices, values) = util::stitch_row_chunks(a.nrows(), chunks);
    let c = Csr::from_kernel_parts(a.nrows(), a.ncols(), indptr, indices, values, true);
    if sp.active() {
        sp.io(0, 0, c.nnz() as u64, 0);
    }
    c
}

/// Keeps entries of `a` at positions where the mask predicate holds
/// (`complement = false`) or where it does not hold / the mask is absent
/// (`complement = true`). `pred` evaluates a present mask element's
/// truthiness (always `true` for structure-only masks).
pub fn ewise_restrict<A, M, P>(
    ctx: &Context,
    a: &Csr<A>,
    m: &Csr<M>,
    complement: bool,
    pred: P,
) -> Csr<A>
where
    A: Clone + Send + Sync,
    M: Clone + Send + Sync,
    P: Fn(&M) -> bool + Sync,
{
    assert_eq!(a.nrows(), m.nrows(), "mask: row count mismatch");
    assert_eq!(a.ncols(), m.ncols(), "mask: column count mismatch");
    assert!(a.is_rows_sorted() && m.is_rows_sorted(), "mask requires sorted rows");
    let mut sp = graphblas_obs::kernel_span(graphblas_obs::Kernel::Select, ctx.id());
    if sp.active() {
        let nnz_in = (a.nnz() + m.nnz()) as u64;
        sp.io(nnz_in, nnz_in, 0, nnz_in * std::mem::size_of::<usize>() as u64);
    }
    let ranges = combined_chunks(ctx, a, m);
    let chunks = parallel_map_ranges(ranges, |rows: Range<usize>| {
        let mut lens = Vec::with_capacity(rows.len());
        let mut idx = Vec::new();
        let mut vals: Vec<A> = Vec::new();
        for i in rows.clone() {
            let before = idx.len();
            let (ac, av) = a.row(i);
            let (mc, mv) = m.row(i);
            let mut q = 0usize;
            for (p, &j) in ac.iter().enumerate() {
                while q < mc.len() && mc[q] < j {
                    q += 1;
                }
                let masked_in = q < mc.len() && mc[q] == j && pred(&mv[q]);
                if masked_in != complement {
                    idx.push(j);
                    vals.push(av[p].clone());
                }
            }
            lens.push(idx.len() - before);
        }
        (rows, (lens, idx, vals))
    });
    let (indptr, indices, values) = util::stitch_row_chunks(a.nrows(), chunks);
    let c = Csr::from_kernel_parts(a.nrows(), a.ncols(), indptr, indices, values, true);
    if sp.active() {
        sp.io(0, 0, c.nnz() as u64, 0);
    }
    c
}

// ---------------------------------------------------------------------------
// Vector variants (sequential merge walks).
// ---------------------------------------------------------------------------

/// Vector union with distinct handlers (see [`ewise_union_general`]).
pub fn svec_union_general<A, B, Z, FB, FL, FR>(
    a: &SparseVec<A>,
    b: &SparseVec<B>,
    both: FB,
    left: FL,
    right: FR,
) -> SparseVec<Z>
where
    A: Clone,
    B: Clone,
    Z: Clone,
    FB: Fn(&A, &B) -> Z,
    FL: Fn(&A) -> Z,
    FR: Fn(&B) -> Z,
{
    assert_eq!(a.len(), b.len(), "vector ewise: length mismatch");
    assert!(a.is_sorted() && b.is_sorted(), "vector ewise requires sorted input");
    let (ai, av) = (a.indices(), a.values());
    let (bi, bv) = (b.indices(), b.values());
    let mut idx = Vec::with_capacity(ai.len() + bi.len());
    let mut vals = Vec::with_capacity(ai.len() + bi.len());
    let (mut p, mut q) = (0usize, 0usize);
    while p < ai.len() && q < bi.len() {
        match ai[p].cmp(&bi[q]) {
            std::cmp::Ordering::Less => {
                idx.push(ai[p]);
                vals.push(left(&av[p]));
                p += 1;
            }
            std::cmp::Ordering::Greater => {
                idx.push(bi[q]);
                vals.push(right(&bv[q]));
                q += 1;
            }
            std::cmp::Ordering::Equal => {
                idx.push(ai[p]);
                vals.push(both(&av[p], &bv[q]));
                p += 1;
                q += 1;
            }
        }
    }
    for k in p..ai.len() {
        idx.push(ai[k]);
        vals.push(left(&av[k]));
    }
    for k in q..bi.len() {
        idx.push(bi[k]);
        vals.push(right(&bv[k]));
    }
    SparseVec::from_kernel_parts(a.len(), idx, vals, true)
}

/// Same-domain vector union.
pub fn svec_union<T, F>(a: &SparseVec<T>, b: &SparseVec<T>, op: F) -> SparseVec<T>
where
    T: Clone,
    F: Fn(&T, &T) -> T,
{
    svec_union_general(a, b, op, |x: &T| x.clone(), |y: &T| y.clone())
}

/// k-way union merge of sorted sparse vectors over one index space — the
/// fan-in for `vxm`'s per-task partials. The index range is split into
/// balanced chunks (each part's segment located by binary search) and each
/// chunk is heap-merged independently, so the whole fan-in is one parallel
/// pass of O(total nnz · log k) work instead of the O(k·n) of a sequential
/// pairwise reduce.
pub fn svec_kmerge<T, F>(ctx: &Context, parts: Vec<SparseVec<T>>, add: F) -> SparseVec<T>
where
    T: Clone + Send + Sync,
    F: Fn(&T, &T) -> T + Sync,
{
    assert!(!parts.is_empty(), "svec_kmerge: need at least one part");
    let _ph = graphblas_obs::timeline::phase("ewise.kmerge");
    let n = parts[0].len();
    for p in &parts {
        assert_eq!(p.len(), n, "svec_kmerge: length mismatch");
        assert!(p.is_sorted(), "svec_kmerge requires sorted parts");
    }
    let mut parts: Vec<SparseVec<T>> = parts.into_iter().filter(|p| p.nnz() > 0).collect();
    match parts.len() {
        0 => return SparseVec::empty(n),
        1 => return parts.swap_remove(0),
        _ => {}
    }
    let total: usize = parts.iter().map(|p| p.nnz()).sum();
    let k = ctx
        .effective_threads()
        .min(total.div_ceil(ctx.chunk_size()).max(1))
        .min(n.max(1))
        .max(1);
    let ranges = partition::balanced_ranges(n, k);
    let chunks: Vec<(Vec<usize>, Vec<T>)> = parallel_map_ranges(ranges, |r: Range<usize>| {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        // Locate each part's segment for this index range, then heap-merge
        // the segments; equal indices are ⊕-combined as they surface.
        let mut cursor: Vec<(usize, usize)> = Vec::with_capacity(parts.len());
        let mut heap: BinaryHeap<Reverse<(usize, usize)>> =
            BinaryHeap::with_capacity(parts.len());
        for (p, part) in parts.iter().enumerate() {
            let ai = part.indices();
            let lo = ai.partition_point(|&i| i < r.start);
            let hi = ai.partition_point(|&i| i < r.end);
            cursor.push((lo, hi));
            if lo < hi {
                heap.push(Reverse((ai[lo], p)));
            }
        }
        let mut idx = Vec::new();
        let mut vals: Vec<T> = Vec::new();
        while let Some(Reverse((i, p))) = heap.pop() {
            let part = &parts[p];
            let v = &part.values()[cursor[p].0];
            if idx.last() == Some(&i) {
                if let Some(cur) = vals.last_mut() {
                    let merged = add(&*cur, v);
                    *cur = merged;
                }
            } else {
                idx.push(i);
                vals.push(v.clone());
            }
            cursor[p].0 += 1;
            if cursor[p].0 < cursor[p].1 {
                heap.push(Reverse((part.indices()[cursor[p].0], p)));
            }
        }
        (idx, vals)
    });
    let mut indices = Vec::new();
    let mut values = Vec::new();
    for (idx, vals) in chunks {
        indices.extend(idx);
        values.extend(vals);
    }
    SparseVec::from_kernel_parts(n, indices, values, true)
}

/// Vector intersection.
pub fn svec_intersect<A, B, Z, F>(a: &SparseVec<A>, b: &SparseVec<B>, op: F) -> SparseVec<Z>
where
    A: Clone,
    B: Clone,
    Z: Clone,
    F: Fn(&A, &B) -> Z,
{
    assert_eq!(a.len(), b.len(), "vector ewise: length mismatch");
    assert!(a.is_sorted() && b.is_sorted(), "vector ewise requires sorted input");
    let (ai, av) = (a.indices(), a.values());
    let (bi, bv) = (b.indices(), b.values());
    let mut idx = Vec::new();
    let mut vals = Vec::new();
    let (mut p, mut q) = (0usize, 0usize);
    while p < ai.len() && q < bi.len() {
        match ai[p].cmp(&bi[q]) {
            std::cmp::Ordering::Less => p += 1,
            std::cmp::Ordering::Greater => q += 1,
            std::cmp::Ordering::Equal => {
                idx.push(ai[p]);
                vals.push(op(&av[p], &bv[q]));
                p += 1;
                q += 1;
            }
        }
    }
    SparseVec::from_kernel_parts(a.len(), idx, vals, true)
}

/// Vector mask restriction (see [`ewise_restrict`]).
pub fn svec_restrict<A, M, P>(
    a: &SparseVec<A>,
    m: &SparseVec<M>,
    complement: bool,
    pred: P,
) -> SparseVec<A>
where
    A: Clone,
    M: Clone,
    P: Fn(&M) -> bool,
{
    assert_eq!(a.len(), m.len(), "vector mask: length mismatch");
    assert!(a.is_sorted() && m.is_sorted(), "vector mask requires sorted input");
    let (ai, av) = (a.indices(), a.values());
    let (mi, mv) = (m.indices(), m.values());
    let mut idx = Vec::new();
    let mut vals = Vec::new();
    let mut q = 0usize;
    for (p, &i) in ai.iter().enumerate() {
        while q < mi.len() && mi[q] < i {
            q += 1;
        }
        let masked_in = q < mi.len() && mi[q] == i && pred(&mv[q]);
        if masked_in != complement {
            idx.push(i);
            vals.push(av[p].clone());
        }
    }
    SparseVec::from_kernel_parts(a.len(), idx, vals, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphblas_exec::global_context;

    fn m(rows: &[(usize, usize, i64)], shape: (usize, usize)) -> Csr<i64> {
        let coo = crate::coo::Coo::from_parts(
            shape.0,
            shape.1,
            rows.iter().map(|t| t.0).collect(),
            rows.iter().map(|t| t.1).collect(),
            rows.iter().map(|t| t.2).collect(),
        )
        .unwrap();
        coo.to_csr(&global_context(), None).unwrap()
    }

    #[test]
    fn union_is_set_union_with_op_on_overlap() {
        let ctx = global_context();
        let a = m(&[(0, 0, 1), (0, 2, 2), (1, 1, 3)], (2, 3));
        let b = m(&[(0, 2, 10), (1, 0, 20)], (2, 3));
        let c = ewise_union(&ctx, &a, &b, |x, y| x + y);
        assert_eq!(
            c.to_sorted_tuples(),
            vec![(0, 0, 1), (0, 2, 12), (1, 0, 20), (1, 1, 3)]
        );
        c.check().unwrap();
    }

    #[test]
    fn union_general_type_change() {
        let ctx = global_context();
        let a = m(&[(0, 0, 5)], (1, 2));
        let b = m(&[(0, 1, 7)], (1, 2));
        let c: Csr<String> = ewise_union_general(
            &ctx,
            &a,
            &b,
            |x, y| format!("{x}+{y}"),
            |x| format!("L{x}"),
            |y| format!("R{y}"),
        );
        assert_eq!(
            c.to_sorted_tuples(),
            vec![(0, 0, "L5".to_string()), (0, 1, "R7".to_string())]
        );
    }

    #[test]
    fn intersect_is_set_intersection() {
        let ctx = global_context();
        let a = m(&[(0, 0, 1), (0, 2, 2), (1, 1, 3)], (2, 3));
        let b = m(&[(0, 2, 10), (1, 0, 20), (1, 1, 4)], (2, 3));
        let c = ewise_intersect(&ctx, &a, &b, |x, y| x * y);
        assert_eq!(c.to_sorted_tuples(), vec![(0, 2, 20), (1, 1, 12)]);
    }

    #[test]
    fn restrict_structure_and_complement() {
        let ctx = global_context();
        let a = m(&[(0, 0, 1), (0, 1, 2), (1, 1, 3)], (2, 2));
        let mask = m(&[(0, 1, 1), (1, 0, 1)], (2, 2));
        let kept = ewise_restrict(&ctx, &a, &mask, false, |_| true);
        assert_eq!(kept.to_sorted_tuples(), vec![(0, 1, 2)]);
        let comp = ewise_restrict(&ctx, &a, &mask, true, |_| true);
        assert_eq!(comp.to_sorted_tuples(), vec![(0, 0, 1), (1, 1, 3)]);
    }

    #[test]
    fn restrict_value_mask() {
        let ctx = global_context();
        let a = m(&[(0, 0, 1), (0, 1, 2)], (1, 2));
        let mask = m(&[(0, 0, 0), (0, 1, 9)], (1, 2)); // 0 is falsy
        let kept = ewise_restrict(&ctx, &a, &mask, false, |v| *v != 0);
        assert_eq!(kept.to_sorted_tuples(), vec![(0, 1, 2)]);
    }

    #[test]
    fn svec_merges() {
        let a = SparseVec::from_parts(5, vec![0, 2, 4], vec![1, 2, 3]).unwrap();
        let b = SparseVec::from_parts(5, vec![2, 3], vec![10, 20]).unwrap();
        let u = svec_union(&a, &b, |x, y| x + y);
        assert_eq!(u.to_sorted_tuples(), vec![(0, 1), (2, 12), (3, 20), (4, 3)]);
        let i = svec_intersect(&a, &b, |x, y| x * y);
        assert_eq!(i.to_sorted_tuples(), vec![(2, 20)]);
        let mask = SparseVec::from_parts(5, vec![0, 3], vec![true, true]).unwrap();
        let r = svec_restrict(&a, &mask, false, |v| *v);
        assert_eq!(r.to_sorted_tuples(), vec![(0, 1)]);
        let rc = svec_restrict(&a, &mask, true, |v| *v);
        assert_eq!(rc.to_sorted_tuples(), vec![(2, 2), (4, 3)]);
    }

    #[test]
    fn empty_operands() {
        let ctx = global_context();
        let a = Csr::<i64>::empty(3, 3);
        let b = m(&[(1, 1, 5)], (3, 3));
        assert_eq!(ewise_union(&ctx, &a, &b, |x, y| x + y).nnz(), 1);
        assert_eq!(ewise_intersect(&ctx, &a, &b, |x, y| x + y).nnz(), 0);
        let ev = SparseVec::<i64>::empty(4);
        let bv = SparseVec::from_parts(4, vec![1], vec![9]).unwrap();
        assert_eq!(svec_union(&ev, &bv, |x, y| x + y).nnz(), 1);
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn shape_mismatch_panics() {
        let ctx = global_context();
        let a = Csr::<i64>::empty(2, 3);
        let b = Csr::<i64>::empty(2, 4);
        let _ = ewise_union(&ctx, &a, &b, |x, y| x + y);
    }

    #[test]
    fn kmerge_matches_pairwise_reduce() {
        use graphblas_exec::rng::prelude::*;
        let ctx = global_context();
        let mut rng = StdRng::seed_from_u64(41);
        let n = 500;
        for parts_count in [1usize, 2, 3, 7, 16] {
            let parts: Vec<SparseVec<i64>> = (0..parts_count)
                .map(|_| {
                    let idx: Vec<usize> =
                        (0..n).filter(|_| rng.gen_range(0..4) == 0).collect();
                    let vals: Vec<i64> =
                        idx.iter().map(|_| rng.gen_range(-9..10)).collect();
                    SparseVec::from_parts(n, idx, vals).unwrap()
                })
                .collect();
            let expect = parts
                .iter()
                .cloned()
                .reduce(|u, v| svec_union(&u, &v, |a, b| a + b))
                .unwrap();
            let got = svec_kmerge(&ctx, parts, |a, b| a + b);
            assert_eq!(got.to_sorted_tuples(), expect.to_sorted_tuples());
        }
    }

    #[test]
    fn kmerge_empty_and_disjoint_parts() {
        let ctx = global_context();
        let all_empty = vec![SparseVec::<i64>::empty(6), SparseVec::empty(6)];
        let merged = svec_kmerge(&ctx, all_empty, |a, b| a + b);
        assert_eq!(merged.len(), 6);
        assert_eq!(merged.nnz(), 0);
        let disjoint = vec![
            SparseVec::from_parts(6, vec![0, 4], vec![1i64, 2]).unwrap(),
            SparseVec::empty(6),
            SparseVec::from_parts(6, vec![1, 5], vec![3, 4]).unwrap(),
        ];
        let merged = svec_kmerge(&ctx, disjoint, |a, b| a + b);
        assert_eq!(
            merged.to_sorted_tuples(),
            vec![(0, 1), (1, 3), (4, 2), (5, 4)]
        );
    }
}
