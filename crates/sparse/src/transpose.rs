//! Parallel matrix transpose via a two-phase bucket shuffle.
//!
//! Phase 1 partitions source entries into per-destination-chunk buckets in
//! parallel; phase 2 lets each destination chunk counting-sort its bucket
//! contents into its contiguous output slice. Both phases are safe Rust
//! (no shared-slot scatter), and the output rows come out strictly sorted
//! because entries arrive in increasing source-row order.

use std::ops::Range;

use graphblas_exec::{parallel_map_ranges, partition, Context};

use crate::csr::Csr;
use crate::util;

/// Returns `B = Aᵀ` as CSR (with `B.nrows == A.ncols`). Output rows are
/// strictly sorted.
pub fn transpose<T: Clone + Send + Sync>(ctx: &Context, a: &Csr<T>) -> Csr<T> {
    let (m, n, nnz) = (a.nrows(), a.ncols(), a.nnz());
    let mut sp = graphblas_obs::kernel_span(graphblas_obs::Kernel::Transpose, ctx.id());
    if sp.active() {
        sp.io(
            0,
            nnz as u64,
            nnz as u64,
            (nnz * (std::mem::size_of::<usize>() * 2 + std::mem::size_of::<T>())) as u64,
        );
    }
    if n == 0 || nnz == 0 {
        return Csr::empty(n, m);
    }
    let k = ctx
        .effective_threads()
        .min(nnz.div_ceil(ctx.chunk_size()).max(1))
        .min(n)
        .max(1);

    // Destination chunks partition the column space.
    let dst_ranges = partition::balanced_ranges(n, k);
    let mut col_to_chunk = vec![0u32; n];
    for (c, r) in dst_ranges.iter().enumerate() {
        for j in r.clone() {
            col_to_chunk[j] = c as u32;
        }
    }

    // Phase 1: each source chunk routes its entries to destination buckets.
    let src_ranges = partition::prefix_balanced_ranges(a.indptr(), k);
    let buckets: Vec<Vec<Vec<(usize, usize, T)>>> =
        parallel_map_ranges(src_ranges, |rows: Range<usize>| {
            let mut local: Vec<Vec<(usize, usize, T)>> = vec![Vec::new(); dst_ranges.len()];
            for i in rows {
                let (cols, vals) = a.row(i);
                for (&j, v) in cols.iter().zip(vals) {
                    local[col_to_chunk[j] as usize].push((j, i, v.clone()));
                }
            }
            local
        });

    // Phase 2: each destination chunk counting-sorts its share by column.
    let chunk_ids: Vec<usize> = (0..dst_ranges.len()).collect();
    let parts = parallel_map_ranges(
        chunk_ids.iter().map(|&c| c..c + 1).collect(),
        |cr: Range<usize>| {
            let c = cr.start;
            let col_range = dst_ranges[c].clone();
            let base = col_range.start;
            let width = col_range.len();
            let mut counts = vec![0usize; width];
            for src in &buckets {
                for &(j, _, _) in &src[c] {
                    counts[j - base] += 1;
                }
            }
            let mut offsets = counts.clone();
            let total = util::exclusive_prefix_sum(&mut offsets);
            let mut out_idx = vec![0usize; total];
            let mut out_val: Vec<Option<T>> = vec![None; total];
            let mut cursor = offsets;
            // Buckets are visited in source-chunk order and each bucket is
            // in source-row order, so every output row segment is sorted.
            for src in &buckets {
                for (j, i, v) in &src[c] {
                    let p = cursor[j - base];
                    cursor[j - base] += 1;
                    out_idx[p] = *i;
                    out_val[p] = Some(v.clone());
                }
            }
            let out_val: Vec<T> = out_val
                .into_iter()
                // grblint: allow(no-unwrap) — the column-count pass reserved
                // exactly one slot per element, and the cursor fills each once.
                .map(|s| s.expect("every reserved slot is written"))
                .collect();
            (col_range, (counts, out_idx, out_val))
        },
    );

    let (indptr, indices, values) = util::stitch_row_chunks(n, parts);
    Csr::from_kernel_parts(n, m, indptr, indices, values, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphblas_exec::global_context;

    #[test]
    fn transpose_small() {
        // [[1, _, 2],
        //  [_, _, _],
        //  [3, 4, _]]
        let a =
            Csr::from_parts(3, 3, vec![0, 2, 2, 4], vec![0, 2, 0, 1], vec![1, 2, 3, 4]).unwrap();
        let t = transpose(&global_context(), &a);
        assert_eq!(t.nrows(), 3);
        assert_eq!(t.ncols(), 3);
        assert_eq!(
            t.to_sorted_tuples(),
            vec![(0, 0, 1), (0, 2, 3), (1, 2, 4), (2, 0, 2)]
        );
        assert!(t.is_rows_sorted());
        t.check().unwrap();
    }

    #[test]
    fn transpose_rectangular() {
        // 2x4 matrix
        let a = Csr::from_parts(2, 4, vec![0, 2, 4], vec![1, 3, 0, 2], vec![10, 30, 1, 3])
            .unwrap();
        let t = transpose(&global_context(), &a);
        assert_eq!(t.nrows(), 4);
        assert_eq!(t.ncols(), 2);
        for (i, j, v) in a.iter() {
            assert_eq!(t.get(j, i), Some(v));
        }
        assert_eq!(t.nnz(), a.nnz());
    }

    #[test]
    fn transpose_empty_and_degenerate() {
        let ctx = global_context();
        let a = Csr::<i32>::empty(0, 5);
        let t = transpose(&ctx, &a);
        assert_eq!((t.nrows(), t.ncols()), (5, 0));
        let b = Csr::<i32>::empty(7, 0);
        let tb = transpose(&ctx, &b);
        assert_eq!((tb.nrows(), tb.ncols()), (0, 7));
    }

    #[test]
    fn double_transpose_is_identity() {
        use graphblas_exec::rng::prelude::*;
        let ctx = global_context();
        let mut rng = StdRng::seed_from_u64(3);
        let (m, n) = (83, 131);
        let mut indptr = vec![0usize];
        let mut indices = Vec::new();
        let mut values = Vec::new();
        for _ in 0..m {
            let mut cols: Vec<usize> = (0..rng.gen_range(0..16))
                .map(|_| rng.gen_range(0..n))
                .collect();
            cols.sort_unstable();
            cols.dedup();
            for c in cols {
                indices.push(c);
                values.push(rng.gen_range(0..1000u32));
            }
            indptr.push(indices.len());
        }
        let a = Csr::from_parts(m, n, indptr, indices, values).unwrap();
        let tt = transpose(&ctx, &transpose(&ctx, &a));
        assert_eq!(a.to_sorted_tuples(), tt.to_sorted_tuples());
    }
}
