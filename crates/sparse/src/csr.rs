//! Compressed Sparse Row storage — the workhorse format.
//!
//! `GrB_CSR_MATRIX` in the paper's Table III: `indptr` of length
//! `nrows + 1`, and per-row segments of `indices`/`values`. As the table
//! notes, *"the elements of each row are not required to be sorted by
//! column index"* — so [`Csr`] tracks sortedness explicitly and kernels
//! that need ordered rows sort lazily (the `GrB_wait(MATERIALIZE)` path in
//! `graphblas-core` also forces a sort, making materialization observable).

use std::ops::Range;

use graphblas_exec::{parallel_map_ranges, partition, Context};

use crate::error::FormatError;
use crate::util;

/// A CSR matrix. `T` is the stored element type; missing elements are
/// simply absent (GraphBLAS has no implicit zero).
#[derive(Debug, Clone)]
pub struct Csr<T> {
    nrows: usize,
    ncols: usize,
    indptr: Vec<usize>,
    indices: Vec<usize>,
    values: Vec<T>,
    rows_sorted: bool,
}

impl<T> Csr<T> {
    /// An empty matrix of the given shape.
    pub fn empty(nrows: usize, ncols: usize) -> Self {
        Csr {
            nrows,
            ncols,
            indptr: vec![0; nrows + 1],
            indices: Vec::new(),
            values: Vec::new(),
            rows_sorted: true,
        }
    }

    /// Builds from raw arrays, validating every Table III invariant.
    /// Rows may be unsorted; sortedness is detected, not required.
    /// Duplicate column indices within a row are accepted here (import
    /// semantics) — use [`Csr::dedup_sorted_rows`] to resolve or reject them.
    pub fn from_parts(
        nrows: usize,
        ncols: usize,
        indptr: Vec<usize>,
        indices: Vec<usize>,
        values: Vec<T>,
    ) -> Result<Self, FormatError> {
        if indptr.len() != nrows + 1 {
            return Err(FormatError::BadPointers {
                expected_len: nrows + 1,
                detail: "wrong indptr length",
            });
        }
        if indptr[0] != 0 {
            return Err(FormatError::BadPointers {
                expected_len: nrows + 1,
                detail: "indptr must start at 0",
            });
        }
        if !util::is_non_decreasing(&indptr) {
            return Err(FormatError::BadPointers {
                expected_len: nrows + 1,
                detail: "indptr must be non-decreasing",
            });
        }
        // grblint: allow(no-unwrap) — length nrows + 1 was verified above.
        let nnz = *indptr.last().expect("indptr non-empty");
        if indices.len() != nnz {
            return Err(FormatError::LengthMismatch {
                expected: nnz,
                actual: indices.len(),
                what: "indices",
            });
        }
        if values.len() != nnz {
            return Err(FormatError::LengthMismatch {
                expected: nnz,
                actual: values.len(),
                what: "values",
            });
        }
        if let Some(&bad) = indices.iter().find(|&&j| j >= ncols) {
            return Err(FormatError::IndexOutOfBounds {
                index: bad,
                bound: ncols,
                axis: "column",
            });
        }
        let rows_sorted = (0..nrows).all(|i| {
            util::is_strictly_increasing(&indices[indptr[i]..indptr[i + 1]])
        });
        Ok(Csr {
            nrows,
            ncols,
            indptr,
            indices,
            values,
            rows_sorted,
        })
    }

    /// Builds from arrays a kernel just produced. The full Table III
    /// invariant set ([`Csr::check`]) is asserted in debug builds only;
    /// `rows_sorted` is taken on trust in release builds.
    pub(crate) fn from_kernel_parts(
        nrows: usize,
        ncols: usize,
        indptr: Vec<usize>,
        indices: Vec<usize>,
        values: Vec<T>,
        rows_sorted: bool,
    ) -> Self {
        let csr = Csr {
            nrows,
            ncols,
            indptr,
            indices,
            values,
            rows_sorted,
        };
        debug_assert!(
            csr.check().is_ok(),
            "kernel produced an invalid CSR: {:?}",
            csr.check().err()
        );
        csr
    }

    /// Consumes the matrix, returning `(indptr, indices, values)`.
    pub fn into_parts(self) -> (Vec<usize>, Vec<usize>, Vec<T>) {
        (self.indptr, self.indices, self.values)
    }

    pub fn nrows(&self) -> usize {
        self.nrows
    }

    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored elements.
    pub fn nnz(&self) -> usize {
        // grblint: allow(no-unwrap) — structural invariant: every
        // constructor allocates indptr with length nrows + 1 ≥ 1.
        *self.indptr.last().expect("indptr non-empty")
    }

    /// Allocated buffer bytes of this store (capacity, not just length —
    /// the memory-accounting figure `obs::mem` gauges aggregate).
    pub fn bytes(&self) -> u64 {
        (self.indptr.capacity() * std::mem::size_of::<usize>()
            + self.indices.capacity() * std::mem::size_of::<usize>()
            + self.values.capacity() * std::mem::size_of::<T>()) as u64
    }

    pub fn indptr(&self) -> &[usize] {
        &self.indptr
    }

    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    pub fn values(&self) -> &[T] {
        &self.values
    }

    pub fn values_mut(&mut self) -> &mut [T] {
        &mut self.values
    }

    /// Column indices and values of row `i`.
    pub fn row(&self, i: usize) -> (&[usize], &[T]) {
        let r = self.indptr[i]..self.indptr[i + 1];
        (&self.indices[r.clone()], &self.values[r])
    }

    /// Whether every row's column indices are strictly increasing (which
    /// also implies the absence of duplicates).
    pub fn is_rows_sorted(&self) -> bool {
        self.rows_sorted
    }

    /// Number of stored elements in row `i`.
    pub fn row_nnz(&self, i: usize) -> usize {
        self.indptr[i + 1] - self.indptr[i]
    }

    /// Looks up element `(i, j)`; binary search when the row is sorted.
    pub fn get(&self, i: usize, j: usize) -> Option<&T> {
        if i >= self.nrows || j >= self.ncols {
            return None;
        }
        let (cols, vals) = self.row(i);
        if self.rows_sorted {
            cols.binary_search(&j).ok().map(|k| &vals[k])
        } else {
            cols.iter().position(|&c| c == j).map(|k| &vals[k])
        }
    }

    /// Iterates `(row, col, &value)` in storage order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, &T)> + '_ {
        (0..self.nrows).flat_map(move |i| {
            let (cols, vals) = self.row(i);
            cols.iter().zip(vals.iter()).map(move |(&j, v)| (i, j, v))
        })
    }

    /// Full invariant validation (used by tests and `debug_assert`s).
    pub fn check(&self) -> Result<(), FormatError> {
        if self.indptr.len() != self.nrows + 1
            || self.indptr[0] != 0
            || !util::is_non_decreasing(&self.indptr)
        {
            return Err(FormatError::BadPointers {
                expected_len: self.nrows + 1,
                detail: "corrupt indptr",
            });
        }
        let nnz = self.nnz();
        if self.indices.len() != nnz {
            return Err(FormatError::LengthMismatch {
                expected: nnz,
                actual: self.indices.len(),
                what: "indices",
            });
        }
        if self.values.len() != nnz {
            return Err(FormatError::LengthMismatch {
                expected: nnz,
                actual: self.values.len(),
                what: "values",
            });
        }
        if let Some(&bad) = self.indices.iter().find(|&&j| j >= self.ncols) {
            return Err(FormatError::IndexOutOfBounds {
                index: bad,
                bound: self.ncols,
                axis: "column",
            });
        }
        if self.rows_sorted {
            for i in 0..self.nrows {
                let (cols, _) = self.row(i);
                if !util::is_strictly_increasing(cols) {
                    return Err(FormatError::BadPointers {
                        expected_len: self.nrows + 1,
                        detail: "rows_sorted flag set but a row is unsorted",
                    });
                }
            }
        }
        Ok(())
    }

    /// nnz-balanced row ranges for `ctx`'s thread budget.
    fn row_chunks(&self, ctx: &Context) -> Vec<Range<usize>> {
        if self.nrows == 0 {
            return Vec::new();
        }
        let by_grain = self.nnz().max(self.nrows).div_ceil(ctx.chunk_size()).max(1);
        let k = ctx.effective_threads().min(by_grain);
        partition::prefix_balanced_ranges(&self.indptr, k)
    }
}

impl<T: Send> Csr<T> {
    /// Sorts every row's column indices ascending, in parallel. Duplicates
    /// (if any) become adjacent; they are *not* combined here. Returns
    /// `true` when at least one duplicate column index was found (in which
    /// case the matrix is left non-decreasing but not strictly sorted, and
    /// [`Csr::dedup_sorted_rows`] should be called).
    pub fn sort_rows(&mut self, ctx: &Context) -> bool {
        if self.rows_sorted {
            return false;
        }
        let found_dup = std::sync::atomic::AtomicBool::new(false);
        let indptr = &self.indptr;
        // Split the flat arrays into disjoint per-chunk slices so tasks can
        // mutate them without locking.
        let ranges = {
            let by_grain = self.nnz().max(1).div_ceil(ctx.chunk_size()).max(1);
            let k = ctx.effective_threads().min(by_grain);
            partition::prefix_balanced_ranges(indptr, k)
        };
        let mut idx_rest: &mut [usize] = &mut self.indices;
        let mut val_rest: &mut [T] = &mut self.values;
        let mut offset = 0usize;
        let mut jobs: Vec<(Range<usize>, &mut [usize], &mut [T])> = Vec::new();
        for r in ranges {
            let start = indptr[r.start];
            let end = indptr[r.end];
            let (idx_a, idx_b) = idx_rest.split_at_mut(end - offset);
            let (val_a, val_b) = val_rest.split_at_mut(end - offset);
            idx_rest = idx_b;
            val_rest = val_b;
            jobs.push((r, idx_a, val_a));
            offset = end;
            let _ = start;
        }
        graphblas_exec::global_pool().scope(|scope| {
            for (rows, idx, vals) in jobs {
                let indptr = &self.indptr;
                let found_dup = &found_dup;
                scope.spawn(move || {
                    let mut local_dup = false;
                    let base = indptr[rows.start];
                    for i in rows {
                        let lo = indptr[i] - base;
                        let hi = indptr[i + 1] - base;
                        util::sort_segment(&mut idx[lo..hi], &mut vals[lo..hi]);
                        local_dup |= idx[lo..hi].windows(2).any(|w| w[0] == w[1]);
                    }
                    if local_dup {
                        // grblint: allow(relaxed-ordering)
                        // grbsa: protocol(scope-joined) — the scope join
                        // below is the happens-before edge; the flag is
                        // only read after every task has completed.
                        found_dup.store(true, std::sync::atomic::Ordering::Relaxed);
                    }
                });
            }
        });
        // grblint: allow(relaxed-ordering); grbsa: protocol(scope-joined)
        // — see the store above.
        let dups = found_dup.load(std::sync::atomic::Ordering::Relaxed);
        // `rows_sorted` means *strictly* increasing; duplicates invalidate it
        // until `dedup_sorted_rows` resolves them.
        self.rows_sorted = !dups;
        dups
    }
}

impl<T: Clone + Send + Sync> Csr<T> {
    /// Combines adjacent duplicate column entries in sorted rows with `dup`,
    /// or reports the first duplicate when `dup` is `None` (GraphBLAS 2.0
    /// §IX: a null dup makes duplicates an execution error).
    ///
    /// Precondition: rows sorted non-decreasingly (call [`Csr::sort_rows`]
    /// first); strictly-sorted matrices return immediately.
    pub fn dedup_sorted_rows(
        &mut self,
        dup: Option<&(dyn Fn(&T, &T) -> T + Sync)>,
    ) -> Result<(), FormatError> {
        if self.rows_sorted {
            return Ok(());
        }
        let mut out_indptr = Vec::with_capacity(self.nrows + 1);
        out_indptr.push(0usize);
        let mut out_indices: Vec<usize> = Vec::with_capacity(self.indices.len());
        let mut out_values: Vec<T> = Vec::with_capacity(self.values.len());
        for i in 0..self.nrows {
            let (cols, vals) = {
                let r = self.indptr[i]..self.indptr[i + 1];
                (&self.indices[r.clone()], &self.values[r])
            };
            debug_assert!(util::is_non_decreasing(cols), "dedup requires sorted rows");
            let mut k = 0usize;
            while k < cols.len() {
                let j = cols[k];
                let mut acc = vals[k].clone();
                let mut k2 = k + 1;
                while k2 < cols.len() && cols[k2] == j {
                    match dup {
                        Some(op) => acc = op(&acc, &vals[k2]),
                        None => return Err(FormatError::Duplicate { row: i, col: j }),
                    }
                    k2 += 1;
                }
                out_indices.push(j);
                out_values.push(acc);
                k = k2;
            }
            out_indptr.push(out_indices.len());
        }
        self.indptr = out_indptr;
        self.indices = out_indices;
        self.values = out_values;
        self.rows_sorted = true;
        Ok(())
    }

    /// Structure-preserving value map (the `apply` kernel).
    pub fn map<Z, F>(&self, ctx: &Context, f: F) -> Csr<Z>
    where
        Z: Clone + Send + Sync,
        F: Fn(&T) -> Z + Sync,
    {
        self.map_with_index(ctx, |_, _, v| f(v))
    }

    /// Value map with access to the element's `(row, col)` — the kernel
    /// behind index-unary `apply` (paper §VIII.B).
    pub fn map_with_index<Z, F>(&self, ctx: &Context, f: F) -> Csr<Z>
    where
        Z: Clone + Send + Sync,
        F: Fn(usize, usize, &T) -> Z + Sync,
    {
        let mut sp = graphblas_obs::kernel_span(graphblas_obs::Kernel::Apply, ctx.id());
        if sp.active() {
            let nnz = self.nnz() as u64;
            sp.io(0, nnz, nnz, nnz * (size_of::<usize>() + size_of::<T>()) as u64);
        }
        let mut out: Vec<Option<Z>> = vec![None; self.nnz()];
        // Parallel fill: each task owns a disjoint slice of `out`.
        let ranges = self.row_chunks(ctx);
        let mut rest: &mut [Option<Z>] = &mut out;
        let mut jobs = Vec::new();
        let mut offset = 0usize;
        for r in ranges {
            let end = self.indptr[r.end];
            let (a, b) = rest.split_at_mut(end - offset);
            rest = b;
            jobs.push((r, a));
            offset = end;
        }
        graphblas_exec::global_pool().scope(|scope| {
            for (rows, slots) in jobs {
                let f = &f;
                let this = &*self;
                scope.spawn(move || {
                    let base = this.indptr[rows.start];
                    for i in rows {
                        let (cols, vals) = this.row(i);
                        let lo = this.indptr[i] - base;
                        for (k, (&j, v)) in cols.iter().zip(vals).enumerate() {
                            slots[lo + k] = Some(f(i, j, v));
                        }
                    }
                });
            }
        });
        let values: Vec<Z> = out
            .into_iter()
            // grblint: allow(no-unwrap) — the parallel fill above writes
            // every slot: row chunks partition 0..nnz exactly.
            .map(|s| s.expect("all slots filled"))
            .collect();
        Csr::from_kernel_parts(
            self.nrows,
            self.ncols,
            self.indptr.clone(),
            self.indices.clone(),
            values,
            self.rows_sorted,
        )
    }

    /// Combined select + apply: keeps elements where `f` returns `Some`,
    /// storing the mapped value. This is the fused kernel behind the
    /// nonblocking pipeline (paper §III's "fuse operations" latitude).
    pub fn filter_map_with_index<Z, F>(&self, ctx: &Context, f: F) -> Csr<Z>
    where
        Z: Clone + Send + Sync,
        F: Fn(usize, usize, &T) -> Option<Z> + Sync,
    {
        let mut sp = graphblas_obs::kernel_span(graphblas_obs::Kernel::Select, ctx.id());
        if sp.active() {
            let nnz = self.nnz() as u64;
            sp.io(0, nnz, 0, nnz * (size_of::<usize>() + size_of::<T>()) as u64);
        }
        let ranges = self.row_chunks(ctx);
        let chunks = parallel_map_ranges(ranges, |rows: Range<usize>| {
            let mut lens = Vec::with_capacity(rows.len());
            let mut idx = Vec::new();
            let mut vals = Vec::new();
            for i in rows.clone() {
                let before = idx.len();
                let (cols, vs) = self.row(i);
                for (&j, v) in cols.iter().zip(vs) {
                    if let Some(z) = f(i, j, v) {
                        idx.push(j);
                        vals.push(z);
                    }
                }
                lens.push(idx.len() - before);
            }
            (rows, (lens, idx, vals))
        });
        let (indptr, indices, values) = util::stitch_row_chunks(self.nrows, chunks);
        if sp.active() {
            sp.io(0, 0, values.len() as u64, 0);
        }
        Csr::from_kernel_parts(
            self.nrows,
            self.ncols,
            indptr,
            indices,
            values,
            self.rows_sorted,
        )
    }

    /// Per-row reduction: returns one `Option<Z>` per row (`None` for empty
    /// rows) — the kernel behind `reduce` to a vector.
    pub fn reduce_rows<Z, M, A>(&self, ctx: &Context, map: M, add: A) -> Vec<Option<Z>>
    where
        Z: Clone + Send + Sync,
        M: Fn(&T) -> Z + Sync,
        A: Fn(Z, Z) -> Z + Sync,
    {
        let mut out: Vec<Option<Z>> = vec![None; self.nrows];
        let mut rest: &mut [Option<Z>] = &mut out;
        let ranges = self.row_chunks(ctx);
        let mut jobs = Vec::new();
        let mut offset = 0usize;
        for r in ranges {
            let (a, b) = rest.split_at_mut(r.end - offset);
            rest = b;
            jobs.push((r.clone(), a));
            offset = r.end;
        }
        graphblas_exec::global_pool().scope(|scope| {
            for (rows, slots) in jobs {
                let map = &map;
                let add = &add;
                let this = &*self;
                scope.spawn(move || {
                    for i in rows.clone() {
                        let (_, vals) = this.row(i);
                        let mut acc: Option<Z> = None;
                        for v in vals {
                            let z = map(v);
                            acc = Some(match acc {
                                None => z,
                                Some(a) => add(a, z),
                            });
                        }
                        slots[i - rows.start] = acc;
                    }
                });
            }
        });
        out
    }

    /// Whole-matrix reduction; `None` when the matrix stores nothing.
    /// `is_terminal` enables early exit once the accumulator reaches the
    /// monoid's annihilator (e.g. `true` for LOR, `0` for TIMES on floats).
    pub fn reduce_all<Z, M, A>(
        &self,
        ctx: &Context,
        map: M,
        add: A,
        is_terminal: Option<&(dyn Fn(&Z) -> bool + Sync)>,
    ) -> Option<Z>
    where
        Z: Clone + Send + Sync,
        M: Fn(&T) -> Z + Sync,
        A: Fn(Z, Z) -> Z + Sync,
    {
        let ranges = self.row_chunks(ctx);
        let partials = parallel_map_ranges(ranges, |rows: Range<usize>| {
            let lo = self.indptr[rows.start];
            let hi = self.indptr[rows.end];
            let mut acc: Option<Z> = None;
            for v in &self.values[lo..hi] {
                let z = map(v);
                acc = Some(match acc {
                    None => z,
                    Some(a) => add(a, z),
                });
                if let (Some(t), Some(a)) = (is_terminal, acc.as_ref()) {
                    if t(a) {
                        break;
                    }
                }
            }
            acc
        });
        partials.into_iter().flatten().reduce(add)
    }

    /// Extracts `(rows, cols, values)` tuples in storage order — the
    /// `extractTuples` kernel.
    pub fn tuples(&self) -> (Vec<usize>, Vec<usize>, Vec<T>) {
        let mut rows = Vec::with_capacity(self.nnz());
        for i in 0..self.nrows {
            rows.extend(std::iter::repeat_n(i, self.row_nnz(i)));
        }
        (rows, self.indices.clone(), self.values.clone())
    }

    /// Sorted `(row, col, value)` tuples — canonical form for comparisons.
    pub fn to_sorted_tuples(&self) -> Vec<(usize, usize, T)> {
        let mut t: Vec<(usize, usize, T)> = self
            .iter()
            .map(|(i, j, v)| (i, j, v.clone()))
            .collect();
        t.sort_by_key(|&(i, j, _)| (i, j));
        t
    }

    /// Submatrix extraction `A(I, J)` with arbitrary (possibly repeating)
    /// row and column selectors — the `extract` kernel.
    pub fn extract_submatrix(
        &self,
        ctx: &Context,
        sel_rows: &[usize],
        sel_cols: &[usize],
    ) -> Result<Csr<T>, FormatError> {
        for &i in sel_rows {
            if i >= self.nrows {
                return Err(FormatError::IndexOutOfBounds {
                    index: i,
                    bound: self.nrows,
                    axis: "row",
                });
            }
        }
        for &j in sel_cols {
            if j >= self.ncols {
                return Err(FormatError::IndexOutOfBounds {
                    index: j,
                    bound: self.ncols,
                    axis: "column",
                });
            }
        }
        // Map each source column to the (possibly several) output columns
        // that select it.
        let mut col_map: Vec<Vec<usize>> = vec![Vec::new(); self.ncols];
        for (out_j, &j) in sel_cols.iter().enumerate() {
            col_map[j].push(out_j);
        }
        let out_rows = sel_rows.len();
        let ranges = partition::balanced_ranges(
            out_rows,
            ctx.effective_threads().min(out_rows.max(1)),
        );
        let chunks = parallel_map_ranges(ranges, |rows: Range<usize>| {
            let mut lens = Vec::with_capacity(rows.len());
            let mut idx = Vec::new();
            let mut vals: Vec<T> = Vec::new();
            for out_i in rows.clone() {
                let before = idx.len();
                let (cols, vs) = self.row(sel_rows[out_i]);
                for (&j, v) in cols.iter().zip(vs) {
                    for &out_j in &col_map[j] {
                        idx.push(out_j);
                        vals.push(v.clone());
                    }
                }
                let len = idx.len() - before;
                util::sort_segment(&mut idx[before..], &mut vals[before..]);
                lens.push(len);
            }
            (rows, (lens, idx, vals))
        });
        let (indptr, indices, values) = util::stitch_row_chunks(out_rows, chunks);
        Ok(Csr::from_kernel_parts(
            out_rows,
            sel_cols.len(),
            indptr,
            indices,
            values,
            true,
        ))
    }
}

impl<T> Csr<T> {
    /// Row degrees as a plain vector (used by generators and algorithms).
    pub fn row_degrees(&self) -> Vec<usize> {
        self.indptr.windows(2).map(|w| w[1] - w[0]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphblas_exec::global_context;

    fn small() -> Csr<i64> {
        // [[1, _, 2],
        //  [_, _, _],
        //  [3, 4, _]]
        Csr::from_parts(3, 3, vec![0, 2, 2, 4], vec![0, 2, 0, 1], vec![1, 2, 3, 4]).unwrap()
    }

    #[test]
    fn from_parts_validates() {
        assert!(Csr::<i64>::from_parts(2, 2, vec![0, 1], vec![0], vec![1]).is_err());
        assert!(Csr::<i64>::from_parts(2, 2, vec![1, 1, 1], vec![0], vec![1]).is_err());
        assert!(Csr::<i64>::from_parts(2, 2, vec![0, 2, 1], vec![0, 1], vec![1, 2]).is_err());
        assert!(Csr::<i64>::from_parts(2, 2, vec![0, 1, 2], vec![0, 5], vec![1, 2]).is_err());
        assert!(Csr::<i64>::from_parts(2, 2, vec![0, 1, 2], vec![0, 1], vec![1]).is_err());
        assert!(small().check().is_ok());
    }

    #[test]
    fn get_and_iter() {
        let a = small();
        assert_eq!(a.get(0, 0), Some(&1));
        assert_eq!(a.get(0, 1), None);
        assert_eq!(a.get(2, 1), Some(&4));
        assert_eq!(a.get(9, 9), None);
        let tuples: Vec<_> = a.iter().map(|(i, j, v)| (i, j, *v)).collect();
        assert_eq!(tuples, vec![(0, 0, 1), (0, 2, 2), (2, 0, 3), (2, 1, 4)]);
        assert_eq!(a.nnz(), 4);
    }

    #[test]
    fn unsorted_detected_and_sortable() {
        let mut a =
            Csr::from_parts(2, 4, vec![0, 3, 4], vec![2, 0, 1, 3], vec![20, 0, 10, 30]).unwrap();
        assert!(!a.is_rows_sorted());
        assert_eq!(a.get(0, 1), Some(&10));
        a.sort_rows(&global_context());
        assert!(a.is_rows_sorted());
        assert_eq!(a.row(0).0, &[0, 1, 2]);
        assert_eq!(a.row(0).1, &[0, 10, 20]);
        a.check().unwrap();
    }

    #[test]
    fn dedup_combines_or_errors() {
        let mk = || {
            let mut m =
                Csr::from_parts(1, 3, vec![0, 3], vec![2, 1, 1], vec![9, 5, 7]).unwrap();
            let dups = m.sort_rows(&global_context());
            assert!(dups);
            assert!(!m.is_rows_sorted());
            m
        };
        let mut a = mk();
        a.dedup_sorted_rows(Some(&|x: &i32, y: &i32| x + y)).unwrap();
        assert_eq!(a.get(0, 1), Some(&12));
        assert_eq!(a.nnz(), 2);
        let mut b = mk();
        let err = b.dedup_sorted_rows(None).unwrap_err();
        assert!(matches!(err, FormatError::Duplicate { row: 0, col: 1 }));
    }

    #[test]
    fn map_preserves_structure() {
        let a = small();
        let b = a.map(&global_context(), |v| v * 10);
        assert_eq!(b.to_sorted_tuples(), vec![(0, 0, 10), (0, 2, 20), (2, 0, 30), (2, 1, 40)]);
    }

    #[test]
    fn map_with_index_sees_coordinates() {
        let a = small();
        let b = a.map_with_index(&global_context(), |i, j, _| (i * 10 + j) as i64);
        assert_eq!(b.get(2, 1), Some(&21));
        assert_eq!(b.get(0, 2), Some(&2));
    }

    #[test]
    fn filter_map_drops_and_maps() {
        let a = small();
        // Keep strictly-upper-triangular entries, negated (a tiny Fig. 3).
        let b = a.filter_map_with_index(&global_context(), |i, j, v| {
            (j > i).then(|| -*v)
        });
        assert_eq!(b.to_sorted_tuples(), vec![(0, 2, -2)]);
        b.check().unwrap();
    }

    #[test]
    fn reduce_rows_and_all() {
        let a = small();
        let ctx = global_context();
        let sums = a.reduce_rows(&ctx, |v| *v, |x, y| x + y);
        assert_eq!(sums, vec![Some(3), None, Some(7)]);
        assert_eq!(a.reduce_all(&ctx, |v| *v, |x, y| x + y, None), Some(10));
        let empty = Csr::<i64>::empty(4, 4);
        assert_eq!(empty.reduce_all(&ctx, |v| *v, |x, y| x + y, None), None);
    }

    #[test]
    fn reduce_all_terminal_short_circuits() {
        let ctx = global_context();
        let n = 10_000usize;
        let a = Csr::from_parts(
            1,
            n,
            vec![0, n],
            (0..n).collect(),
            vec![false; n],
        )
        .unwrap();
        // LOR over all-false is false; with a true in front, terminal fires.
        let mut vals = vec![false; n];
        vals[1] = true;
        let b = Csr::from_parts(1, n, vec![0, n], (0..n).collect(), vals).unwrap();
        let lor = |x: bool, y: bool| x || y;
        assert_eq!(
            a.reduce_all(&ctx, |v| *v, lor, Some(&|z: &bool| *z)),
            Some(false)
        );
        assert_eq!(
            b.reduce_all(&ctx, |v| *v, lor, Some(&|z: &bool| *z)),
            Some(true)
        );
    }

    #[test]
    fn tuples_roundtrip() {
        let a = small();
        let (r, c, v) = a.tuples();
        assert_eq!(r, vec![0, 0, 2, 2]);
        assert_eq!(c, vec![0, 2, 0, 1]);
        assert_eq!(v, vec![1, 2, 3, 4]);
    }

    #[test]
    fn extract_submatrix_basic() {
        let a = small();
        let b = a
            .extract_submatrix(&global_context(), &[2, 0], &[0, 1])
            .unwrap();
        assert_eq!(b.nrows(), 2);
        assert_eq!(b.ncols(), 2);
        assert_eq!(b.to_sorted_tuples(), vec![(0, 0, 3), (0, 1, 4), (1, 0, 1)]);
    }

    #[test]
    fn extract_submatrix_repeats_and_bounds() {
        let a = small();
        let b = a
            .extract_submatrix(&global_context(), &[0, 0], &[2, 2])
            .unwrap();
        assert_eq!(b.to_sorted_tuples(), vec![(0, 0, 2), (0, 1, 2), (1, 0, 2), (1, 1, 2)]);
        assert!(a.extract_submatrix(&global_context(), &[5], &[0]).is_err());
        assert!(a.extract_submatrix(&global_context(), &[0], &[5]).is_err());
    }

    #[test]
    fn empty_matrix_operations() {
        let ctx = global_context();
        let a = Csr::<f64>::empty(0, 0);
        assert_eq!(a.nnz(), 0);
        a.check().unwrap();
        let b = a.map(&ctx, |v| v + 1.0);
        assert_eq!(b.nnz(), 0);
        let c = Csr::<f64>::empty(5, 7);
        assert_eq!(c.filter_map_with_index(&ctx, |_, _, v| Some(*v)).nnz(), 0);
    }

    #[test]
    fn large_parallel_map_matches_sequential() {
        use graphblas_exec::rng::prelude::*;
        let ctx = global_context();
        let mut rng = StdRng::seed_from_u64(42);
        let nrows = 500;
        let ncols = 300;
        let mut indptr = vec![0usize];
        let mut indices = Vec::new();
        let mut values = Vec::new();
        for _ in 0..nrows {
            let deg = rng.gen_range(0..20);
            let mut cols: Vec<usize> = (0..deg).map(|_| rng.gen_range(0..ncols)).collect();
            cols.sort_unstable();
            cols.dedup();
            for &c in &cols {
                indices.push(c);
                values.push(rng.gen_range(-100i64..100));
            }
            indptr.push(indices.len());
        }
        let a = Csr::from_parts(nrows, ncols, indptr, indices, values).unwrap();
        let b = a.map_with_index(&ctx, |i, j, v| v * 2 + (i + j) as i64);
        for (i, j, v) in a.iter() {
            assert_eq!(b.get(i, j), Some(&(v * 2 + (i + j) as i64)));
        }
        assert_eq!(a.nnz(), b.nnz());
    }
}
