//! Dense matrix storage (`GrB_DENSE_ROW_MATRIX` / `GrB_DENSE_COL_MATRIX`,
//! Table III): every element present, `indptr`/`indices` unused.

use graphblas_exec::{parallel_map_ranges, partition, Context};

use crate::csr::Csr;
use crate::error::FormatError;

/// Element ordering of a dense matrix buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Layout {
    /// Element `(i, j)` lives at `i * ncols + j`.
    RowMajor,
    /// Element `(i, j)` lives at `i + j * nrows`.
    ColMajor,
}

/// A fully-populated matrix.
#[derive(Debug, Clone)]
pub struct Dense<T> {
    nrows: usize,
    ncols: usize,
    layout: Layout,
    values: Vec<T>,
}

impl<T> Dense<T> {
    /// Builds from a value buffer of exactly `nrows * ncols` elements.
    pub fn from_parts(
        nrows: usize,
        ncols: usize,
        layout: Layout,
        values: Vec<T>,
    ) -> Result<Self, FormatError> {
        let dense = Dense {
            nrows,
            ncols,
            layout,
            values,
        };
        dense.check()?;
        Ok(dense)
    }

    /// Allocated buffer bytes of this store (capacity, not length).
    pub fn bytes(&self) -> u64 {
        (self.values.capacity() * std::mem::size_of::<T>()) as u64
    }

    /// Full invariant validation, with [`crate::csr::Csr::check`]'s rigor:
    /// a dense store is valid iff its buffer holds exactly
    /// `nrows * ncols` elements (Table III: every element present,
    /// `indptr`/`indices` unused) and that product does not overflow.
    pub fn check(&self) -> Result<(), FormatError> {
        let expected = self
            .nrows
            .checked_mul(self.ncols)
            .ok_or(FormatError::Overflow)?;
        if self.values.len() != expected {
            return Err(FormatError::LengthMismatch {
                expected,
                actual: self.values.len(),
                what: "dense values",
            });
        }
        Ok(())
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// The buffer layout (row- or column-major).
    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// The raw value buffer in layout order.
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// Consumes into the raw value buffer.
    pub fn into_values(self) -> Vec<T> {
        self.values
    }

    fn offset(&self, i: usize, j: usize) -> usize {
        match self.layout {
            Layout::RowMajor => i * self.ncols + j,
            Layout::ColMajor => i + j * self.nrows,
        }
    }

    /// Looks up element `(i, j)`.
    pub fn get(&self, i: usize, j: usize) -> Option<&T> {
        if i >= self.nrows || j >= self.ncols {
            return None;
        }
        Some(&self.values[self.offset(i, j)])
    }
}

impl<T: Clone + Send + Sync> Dense<T> {
    /// Converts to CSR; every dense element becomes a stored element
    /// (GraphBLAS has no implicit zero to elide).
    pub fn to_csr(&self, ctx: &Context) -> Csr<T> {
        let (m, n) = (self.nrows, self.ncols);
        if m == 0 || n == 0 {
            return Csr::empty(m, n);
        }
        let k = ctx
            .effective_threads()
            .min((m * n).div_ceil(ctx.chunk_size()).max(1))
            .min(m);
        let ranges = partition::balanced_ranges(m, k.max(1));
        let chunks = parallel_map_ranges(ranges, |rows: std::ops::Range<usize>| {
            let mut idx = Vec::with_capacity(rows.len() * n);
            let mut vals = Vec::with_capacity(rows.len() * n);
            let lens = vec![n; rows.len()];
            for i in rows.clone() {
                for j in 0..n {
                    idx.push(j);
                    vals.push(self.values[self.offset(i, j)].clone());
                }
            }
            (rows, (lens, idx, vals))
        });
        let (indptr, indices, values) = crate::util::stitch_row_chunks(m, chunks);
        Csr::from_kernel_parts(m, n, indptr, indices, values, true)
    }

    /// Converts a *fully populated* CSR into dense storage; errors when any
    /// element is missing (exporting a partial matrix to a dense format is
    /// ill-defined because GraphBLAS types have no implicit zero).
    pub fn from_csr_full(ctx: &Context, a: &Csr<T>, layout: Layout) -> Result<Self, FormatError> {
        let expected = a
            .nrows()
            .checked_mul(a.ncols())
            .ok_or(FormatError::Overflow)?;
        if a.nnz() != expected {
            return Err(FormatError::LengthMismatch {
                expected,
                actual: a.nnz(),
                what: "dense export requires every element present; stored-element count",
            });
        }
        let (m, n) = (a.nrows(), a.ncols());
        if expected == 0 {
            return Dense::from_parts(m, n, layout, Vec::new());
        }
        let mut out: Vec<Option<T>> = vec![None; expected];
        // Fill row-parallel; each task owns whole rows, and for both layouts
        // rows touch disjoint positions, so hand out per-row-chunk slices
        // only in row-major; col-major falls back to a sequential fill.
        match layout {
            Layout::RowMajor => {
                let ranges = partition::prefix_balanced_ranges(
                    a.indptr(),
                    ctx.effective_threads().min(m),
                );
                let mut rest: &mut [Option<T>] = &mut out;
                let mut jobs = Vec::new();
                let mut offset = 0usize;
                for r in ranges {
                    let end = r.end * n;
                    let (s, rem) = rest.split_at_mut(end - offset);
                    rest = rem;
                    jobs.push((r, s));
                    offset = end;
                }
                graphblas_exec::global_pool().scope(|scope| {
                    for (rows, slots) in jobs {
                        scope.spawn(move || {
                            let base = rows.start * n;
                            for i in rows {
                                let (cols, vals) = a.row(i);
                                for (&j, v) in cols.iter().zip(vals) {
                                    slots[i * n + j - base] = Some(v.clone());
                                }
                            }
                        });
                    }
                });
            }
            Layout::ColMajor => {
                for (i, j, v) in a.iter() {
                    out[i + j * m] = Some(v.clone());
                }
            }
        }
        let values: Vec<T> = out
            .into_iter()
            .map(|v| {
                // grblint: allow(no-unwrap) — nnz == nrows * ncols was
                // verified above and a valid CSR has no duplicates.
                v.expect("full matrix: from_csr_full verified nnz == nrows * ncols and no duplicates exist in a valid CSR")
            })
            .collect();
        Dense::from_parts(m, n, layout, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphblas_exec::global_context;

    #[test]
    fn row_and_col_major_agree() {
        let rm = Dense::from_parts(2, 3, Layout::RowMajor, vec![1, 2, 3, 4, 5, 6]).unwrap();
        let cm = Dense::from_parts(2, 3, Layout::ColMajor, vec![1, 4, 2, 5, 3, 6]).unwrap();
        for i in 0..2 {
            for j in 0..3 {
                assert_eq!(rm.get(i, j), cm.get(i, j));
            }
        }
        assert_eq!(rm.get(1, 2), Some(&6));
        assert_eq!(rm.get(2, 0), None);
    }

    #[test]
    fn wrong_length_rejected() {
        assert!(Dense::from_parts(2, 3, Layout::RowMajor, vec![1, 2, 3]).is_err());
    }

    #[test]
    fn dense_to_csr_and_back() {
        let ctx = global_context();
        let d = Dense::from_parts(3, 2, Layout::RowMajor, vec![1, 2, 3, 4, 5, 6]).unwrap();
        let csr = d.to_csr(&ctx);
        assert_eq!(csr.nnz(), 6);
        assert_eq!(csr.get(2, 1), Some(&6));
        let back = Dense::from_csr_full(&ctx, &csr, Layout::ColMajor).unwrap();
        for i in 0..3 {
            for j in 0..2 {
                assert_eq!(back.get(i, j), d.get(i, j));
            }
        }
    }

    #[test]
    fn partial_matrix_cannot_export_dense() {
        let ctx = global_context();
        let a = Csr::from_parts(2, 2, vec![0, 1, 1], vec![0], vec![9]).unwrap();
        assert!(Dense::from_csr_full(&ctx, &a, Layout::RowMajor).is_err());
    }

    #[test]
    fn zero_sized_dense() {
        let ctx = global_context();
        let d = Dense::<u8>::from_parts(0, 5, Layout::RowMajor, vec![]).unwrap();
        let csr = d.to_csr(&ctx);
        assert_eq!(csr.nrows(), 0);
        assert_eq!(csr.ncols(), 5);
    }
}
