//! Sparse storage formats and parallel kernels for `graphblas-rs`.
//!
//! The GraphBLAS 2.0 specification deliberately leaves storage opaque; this
//! crate is the implementation-defined substrate behind the opaque
//! `GrB_Matrix` / `GrB_Vector` handles in `graphblas-core`:
//!
//! * [`csr`] / [`csc`] / [`coo`] / [`dense`] — the matrix formats of the
//!   paper's Table III (import/export), each self-validating;
//! * [`svec`] / [`dvec`] — sparse and dense vector formats (Table III);
//! * [`convert`] — pairwise conversions between all formats;
//! * [`transpose`] — parallel counting-sort transpose;
//! * [`spmv`] — row-parallel matrix-vector products over arbitrary
//!   (mul, add) closures, with optional early-exit terminal detection;
//! * [`spgemm`] — Gustavson row-parallel matrix-matrix product with
//!   per-task sparse accumulators, plus a structure-masked variant;
//! * [`ewise`] — union (eWiseAdd) and intersection (eWiseMult) merges;
//! * [`kron`] — Kronecker products.
//!
//! All kernels accept a [`graphblas_exec::Context`] and honour its thread
//! budget. Kernels are generic over plain `Fn` closures: calling them with
//! boxed operator objects reproduces the per-scalar indirect-call cost the
//! paper discusses in §II, while calling them with inline closures yields
//! monomorphized code — `core::ops::registry` pre-instantiates the hot
//! builtin-semiring combinations, and the `kernels` bench measures the
//! static-vs-dyn gap in its in-harness ablation.

// `dyn Fn` operator fields and stage closures are the domain model here;
// aliasing every signature would hide more than it reveals.
#![allow(clippy::type_complexity)]

pub mod bitmap;
pub mod convert;
pub mod coo;
pub mod csc;
pub mod csr;
pub mod dense;
pub mod dvec;
pub mod error;
pub mod ewise;
pub mod kron;
pub mod spgemm;
pub mod spmv;
pub mod svec;
pub mod transpose;
pub mod util;

pub use bitmap::BitmapVec;
pub use coo::Coo;
pub use csc::Csc;
pub use csr::Csr;
pub use dense::{Dense, Layout};
pub use dvec::DenseVec;
pub use error::FormatError;
pub use svec::SparseVec;
