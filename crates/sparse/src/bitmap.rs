//! Bitmap vector storage (`GxB_BITMAP`, Table III): a presence bitmap
//! plus a value slot per logical position.
//!
//! The bitmap format is the middle ground between the sparse index list
//! and a full dense array: O(1) membership tests and updates with no
//! index arrays to merge, at the cost of O(n) storage. Table III
//! prescribes an unordered byte/bit map over *uninitialized* value slots;
//! safe Rust cannot leave slots uninitialized, so values live in
//! `Vec<Option<T>>` — the `None` slots stand in for the paper's
//! uninitialized entries and the invariant "slot is `Some` exactly where
//! the bit is set" is what [`BitmapVec::check`] enforces.
//!
//! The direction-optimizing `mxv`/`vxm` path stores mid-density frontiers
//! (at least 1/4 occupied but not full — see `core`'s format heuristic) in
//! this format: the pull kernel (`spmv_bitmap`) reads them natively with
//! a word-indexed lookup instead of building a densification table, and
//! BFS-style workloads skip the sort/merge cost of sparse assembly.

use crate::dvec::DenseVec;
use crate::error::FormatError;
use crate::svec::SparseVec;

/// Bits per bitmap word.
const WORD_BITS: usize = 64;

/// A bitmap vector of logical length `n`: `words` holds one presence bit
/// per position, `values[i]` is `Some` exactly when bit `i` is set.
#[derive(Debug, Clone)]
pub struct BitmapVec<T> {
    n: usize,
    words: Vec<u64>,
    values: Vec<Option<T>>,
    nnz: usize,
}

impl<T> BitmapVec<T> {
    /// An empty bitmap vector of logical length `n`.
    pub fn empty(n: usize) -> Self {
        BitmapVec {
            n,
            words: vec![0; n.div_ceil(WORD_BITS)],
            values: std::iter::repeat_with(|| None).take(n).collect(),
            nnz: 0,
        }
    }

    /// Logical length (`GrB_Vector_size`).
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the logical length is zero.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of stored elements (`GrB_Vector_nvals`).
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Allocated buffer bytes of this store (capacity, not length).
    pub fn bytes(&self) -> u64 {
        (self.words.capacity() * std::mem::size_of::<u64>()
            + self.values.capacity() * std::mem::size_of::<Option<T>>()) as u64
    }

    /// Whether position `i` holds a stored element.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        i < self.n && self.words[i / WORD_BITS] & (1u64 << (i % WORD_BITS)) != 0
    }

    /// The stored value at position `i`, if present.
    #[inline]
    pub fn get(&self, i: usize) -> Option<&T> {
        if i >= self.n {
            return None;
        }
        self.values[i].as_ref()
    }

    /// Stores `v` at position `i` (insert or overwrite).
    pub fn set(&mut self, i: usize, v: T) {
        let word = i / WORD_BITS;
        let bit = 1u64 << (i % WORD_BITS);
        if self.words[word] & bit == 0 {
            self.words[word] |= bit;
            self.nnz += 1;
        }
        self.values[i] = Some(v);
    }

    /// Removes the element at position `i`, returning it if present.
    pub fn remove(&mut self, i: usize) -> Option<T> {
        let word = i / WORD_BITS;
        let bit = 1u64 << (i % WORD_BITS);
        if self.words[word] & bit == 0 {
            return None;
        }
        self.words[word] &= !bit;
        self.nnz -= 1;
        self.values[i].take()
    }

    /// Stored elements in ascending index order (word-skipping walk:
    /// empty words cost one load each).
    pub fn iter(&self) -> impl Iterator<Item = (usize, &T)> + '_ {
        self.words
            .iter()
            .enumerate()
            .flat_map(move |(w, &bits)| {
                let base = w * WORD_BITS;
                BitIter { bits }.map(move |b| base + b)
            })
            .filter_map(move |i| self.values[i].as_ref().map(|v| (i, v)))
    }

    /// Validates every format invariant: word-array length, the nnz/
    /// popcount agreement, value slots `Some` exactly at set bits, and no
    /// stray bits past the logical length.
    pub fn check(&self) -> Result<(), FormatError> {
        if self.words.len() != self.n.div_ceil(WORD_BITS) {
            return Err(FormatError::LengthMismatch {
                expected: self.n.div_ceil(WORD_BITS),
                actual: self.words.len(),
                what: "bitmap words",
            });
        }
        if self.values.len() != self.n {
            return Err(FormatError::LengthMismatch {
                expected: self.n,
                actual: self.values.len(),
                what: "bitmap values",
            });
        }
        let pop: usize = self.words.iter().map(|w| w.count_ones() as usize).sum();
        if pop != self.nnz {
            return Err(FormatError::LengthMismatch {
                expected: self.nnz,
                actual: pop,
                what: "bitmap nnz vs popcount",
            });
        }
        // Bits past the logical length must be clear (they would corrupt
        // popcounts and iteration otherwise).
        if !self.n.is_multiple_of(WORD_BITS) {
            if let Some(&last) = self.words.last() {
                let valid = (1u64 << (self.n % WORD_BITS)) - 1;
                if last & !valid != 0 {
                    return Err(FormatError::IndexOutOfBounds {
                        index: self.n,
                        bound: self.n,
                        axis: "vector",
                    });
                }
            }
        }
        for (i, v) in self.values.iter().enumerate() {
            if v.is_some() != self.contains(i) {
                return Err(FormatError::LengthMismatch {
                    expected: usize::from(self.contains(i)),
                    actual: usize::from(v.is_some()),
                    what: "bitmap bit/value slot agreement",
                });
            }
        }
        Ok(())
    }
}

/// Yields the set-bit offsets of one word, low to high.
struct BitIter {
    bits: u64,
}

impl Iterator for BitIter {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.bits == 0 {
            return None;
        }
        let b = self.bits.trailing_zeros() as usize;
        self.bits &= self.bits - 1;
        Some(b)
    }
}

impl<T: Clone> BitmapVec<T> {
    /// Sparse → bitmap (`GxB_SPARSE` → `GxB_BITMAP`). One scatter pass;
    /// accepts unsorted input (last write wins on duplicates, matching
    /// sparse-store semantics after dedup).
    pub fn from_svec(s: &SparseVec<T>) -> Self {
        let mut b = BitmapVec::empty(s.len());
        for (i, v) in s.iter() {
            b.set(i, v.clone());
        }
        b
    }

    /// Bitmap → sparse (`GxB_BITMAP` → `GxB_SPARSE`), sorted output.
    pub fn to_svec(&self) -> SparseVec<T> {
        let mut indices = Vec::with_capacity(self.nnz);
        let mut values = Vec::with_capacity(self.nnz);
        for (i, v) in self.iter() {
            indices.push(i);
            values.push(v.clone());
        }
        // grblint: allow(no-unwrap) — iteration yields strictly
        // increasing in-bounds indices by construction.
        SparseVec::from_parts(self.n, indices, values).expect("bitmap iteration is valid")
    }

    /// Full dense vector → bitmap (every bit set).
    pub fn from_dvec(d: &DenseVec<T>) -> Self {
        let mut b = BitmapVec::empty(d.len());
        for (i, v) in d.values().iter().enumerate() {
            b.set(i, v.clone());
        }
        b
    }

    /// Bitmap → dense; requires every element present.
    pub fn to_dvec(&self) -> Result<DenseVec<T>, FormatError> {
        if self.nnz != self.n {
            return Err(FormatError::LengthMismatch {
                expected: self.n,
                actual: self.nnz,
                what: "bitmap to dense requires a full vector",
            });
        }
        let values: Vec<T> = self
            .values
            .iter()
            .filter_map(|v| v.as_ref().cloned())
            .collect();
        Ok(DenseVec::from_values(values))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_remove() {
        let mut b = BitmapVec::<i64>::empty(100);
        assert_eq!(b.nnz(), 0);
        b.set(3, 30);
        b.set(64, 640);
        b.set(99, 990);
        assert_eq!(b.nnz(), 3);
        assert!(b.contains(64));
        assert_eq!(b.get(64), Some(&640));
        assert_eq!(b.get(4), None);
        // Overwrite does not change nnz.
        b.set(3, 31);
        assert_eq!(b.nnz(), 3);
        assert_eq!(b.get(3), Some(&31));
        assert_eq!(b.remove(3), Some(31));
        assert_eq!(b.remove(3), None);
        assert_eq!(b.nnz(), 2);
        b.check().unwrap();
    }

    #[test]
    fn iter_is_sorted_and_complete() {
        let mut b = BitmapVec::<i64>::empty(130);
        for &i in &[129usize, 0, 63, 64, 65, 127, 128] {
            b.set(i, i as i64);
        }
        let got: Vec<(usize, i64)> = b.iter().map(|(i, v)| (i, *v)).collect();
        assert_eq!(
            got,
            vec![(0, 0), (63, 63), (64, 64), (65, 65), (127, 127), (128, 128), (129, 129)]
        );
    }

    #[test]
    fn svec_roundtrip() {
        let s = SparseVec::from_parts(70, vec![1, 63, 64, 69], vec![10i64, 20, 30, 40]).unwrap();
        let b = BitmapVec::from_svec(&s);
        b.check().unwrap();
        assert_eq!(b.nnz(), 4);
        let back = b.to_svec();
        assert_eq!(back.indices(), s.indices());
        assert_eq!(back.values(), s.values());
    }

    #[test]
    fn dvec_roundtrip_and_partial_rejection() {
        let d = DenseVec::from_values(vec![1i64, 2, 3]);
        let b = BitmapVec::from_dvec(&d);
        b.check().unwrap();
        assert_eq!(b.nnz(), 3);
        assert_eq!(b.to_dvec().unwrap().values(), &[1, 2, 3]);
        let mut partial = b.clone();
        partial.remove(1);
        assert!(partial.to_dvec().is_err());
    }

    #[test]
    fn check_catches_corruption() {
        let mut b = BitmapVec::<i64>::empty(10);
        b.set(2, 5);
        b.check().unwrap();
        // Stray bit past the logical length.
        let mut stray = b.clone();
        stray.words[0] |= 1 << 12;
        assert!(stray.check().is_err());
        // nnz out of sync with popcount.
        let mut bad_nnz = b.clone();
        bad_nnz.nnz = 2;
        assert!(bad_nnz.check().is_err());
        // Value slot without its bit.
        let mut orphan = b;
        orphan.values[5] = Some(7);
        assert!(orphan.check().is_err());
    }

    #[test]
    fn empty_and_word_boundary_lengths() {
        for n in [0usize, 1, 63, 64, 65, 128] {
            let b = BitmapVec::<bool>::empty(n);
            b.check().unwrap();
            assert_eq!(b.len(), n);
            assert_eq!(b.nnz(), 0);
            assert_eq!(b.iter().count(), 0);
        }
    }
}
