//! Coordinate (triplet) storage (`GrB_COO_MATRIX`, Table III).
//!
//! Entries carry explicit `(row, col)` coordinates and — per Table III —
//! "are not required to be sorted in any order". COO is the natural input
//! of `GrB_Matrix_build` and the import format closest to edge lists.

use graphblas_exec::Context;

use crate::csr::Csr;
use crate::error::FormatError;
use crate::util;

/// An unordered triplet matrix.
#[derive(Debug, Clone)]
pub struct Coo<T> {
    nrows: usize,
    ncols: usize,
    rows: Vec<usize>,
    cols: Vec<usize>,
    values: Vec<T>,
}

impl<T> Coo<T> {
    /// Builds from triplet arrays, validating lengths and bounds.
    /// Duplicate coordinates are allowed here; they are resolved (or
    /// rejected) during [`Coo::to_csr`].
    pub fn from_parts(
        nrows: usize,
        ncols: usize,
        rows: Vec<usize>,
        cols: Vec<usize>,
        values: Vec<T>,
    ) -> Result<Self, FormatError> {
        let coo = Coo {
            nrows,
            ncols,
            rows,
            cols,
            values,
        };
        coo.check()?;
        Ok(coo)
    }

    /// Logical number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Logical number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of triplets (before any duplicate resolution).
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Allocated buffer bytes of this store (capacity, not length).
    pub fn bytes(&self) -> u64 {
        (self.rows.capacity() * std::mem::size_of::<usize>()
            + self.cols.capacity() * std::mem::size_of::<usize>()
            + self.values.capacity() * std::mem::size_of::<T>()) as u64
    }

    /// Row index of each triplet.
    pub fn rows(&self) -> &[usize] {
        &self.rows
    }

    /// Column index of each triplet.
    pub fn cols(&self) -> &[usize] {
        &self.cols
    }

    /// Value of each triplet.
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// Consumes into `(rows, cols, values)`.
    pub fn into_parts(self) -> (Vec<usize>, Vec<usize>, Vec<T>) {
        (self.rows, self.cols, self.values)
    }

    /// Appends a triplet, possibly duplicating a coordinate. The O(1) fast
    /// path behind repeated `setElement`; `to_csr` with a last-wins
    /// combiner restores canonical form (its sorting is stable).
    pub fn push(&mut self, i: usize, j: usize, v: T) -> Result<(), FormatError> {
        if i >= self.nrows {
            return Err(FormatError::IndexOutOfBounds {
                index: i,
                bound: self.nrows,
                axis: "row",
            });
        }
        if j >= self.ncols {
            return Err(FormatError::IndexOutOfBounds {
                index: j,
                bound: self.ncols,
                axis: "column",
            });
        }
        self.rows.push(i);
        self.cols.push(j);
        self.values.push(v);
        Ok(())
    }

    /// Full invariant validation, with [`crate::csr::Csr::check`]'s rigor:
    /// the three triplet arrays agree in length and every coordinate is in
    /// bounds. (Duplicates are legal in COO — Table III imposes no order —
    /// so they are *not* an invariant violation here; they are resolved or
    /// rejected at [`Coo::to_csr`] time.)
    pub fn check(&self) -> Result<(), FormatError> {
        if self.rows.len() != self.values.len() {
            return Err(FormatError::LengthMismatch {
                expected: self.values.len(),
                actual: self.rows.len(),
                what: "row indices",
            });
        }
        if self.cols.len() != self.values.len() {
            return Err(FormatError::LengthMismatch {
                expected: self.values.len(),
                actual: self.cols.len(),
                what: "column indices",
            });
        }
        if let Some(&bad) = self.rows.iter().find(|&&i| i >= self.nrows) {
            return Err(FormatError::IndexOutOfBounds {
                index: bad,
                bound: self.nrows,
                axis: "row",
            });
        }
        if let Some(&bad) = self.cols.iter().find(|&&j| j >= self.ncols) {
            return Err(FormatError::IndexOutOfBounds {
                index: bad,
                bound: self.ncols,
                axis: "column",
            });
        }
        Ok(())
    }
}

impl<T: Clone + Send + Sync> Coo<T> {
    /// Converts to CSR. Duplicate coordinates are combined with `dup`, or
    /// rejected with [`FormatError::Duplicate`] when `dup` is `None` —
    /// GraphBLAS 2.0's optional-dup `build` semantics (§IX).
    pub fn to_csr(
        &self,
        ctx: &Context,
        dup: Option<&(dyn Fn(&T, &T) -> T + Sync)>,
    ) -> Result<Csr<T>, FormatError> {
        let nnz = self.nnz();
        // Counting sort by row.
        let mut counts = vec![0usize; self.nrows + 1];
        for &i in &self.rows {
            counts[i] += 1;
        }
        let total = util::exclusive_prefix_sum(&mut counts[..]);
        debug_assert_eq!(total, nnz);
        let mut indptr = counts; // now exclusive offsets, length nrows + 1
        indptr[self.nrows] = nnz;
        // Rebuild: counts currently holds start offsets shifted; recompute a
        // proper indptr and an independent cursor.
        let mut cursor: Vec<usize> = indptr[..self.nrows].to_vec();
        let mut indices = vec![0usize; nnz];
        let mut values: Vec<Option<T>> = vec![None; nnz];
        for k in 0..nnz {
            let i = self.rows[k];
            let p = cursor[i];
            cursor[i] += 1;
            indices[p] = self.cols[k];
            values[p] = Some(self.values[k].clone());
        }
        let values: Vec<T> = values
            .into_iter()
            // grblint: allow(no-unwrap) — the counting-sort cursor writes
            // each of the nnz slots exactly once.
            .map(|v| v.expect("every slot written"))
            .collect();
        let mut csr = Csr::from_kernel_parts(self.nrows, self.ncols, indptr, indices, values, false);
        let had_dups = csr.sort_rows(ctx);
        if had_dups {
            csr.dedup_sorted_rows(dup)?;
        }
        Ok(csr)
    }

    /// Converts from CSR (storage order, hence sorted by `(row, col)` when
    /// the CSR's rows are sorted).
    pub fn from_csr(a: &Csr<T>) -> Self {
        let (rows, cols, values) = a.tuples();
        let coo = Coo {
            nrows: a.nrows(),
            ncols: a.ncols(),
            rows,
            cols,
            values,
        };
        debug_assert!(
            coo.check().is_ok(),
            "CSR→COO conversion produced an invalid triplet store: {:?}",
            coo.check().err()
        );
        coo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphblas_exec::global_context;

    #[test]
    fn unsorted_coo_to_csr() {
        let ctx = global_context();
        let coo = Coo::from_parts(
            3,
            3,
            vec![2, 0, 2, 0],
            vec![1, 2, 0, 0],
            vec![4, 2, 3, 1],
        )
        .unwrap();
        let csr = coo.to_csr(&ctx, None).unwrap();
        assert_eq!(
            csr.to_sorted_tuples(),
            vec![(0, 0, 1), (0, 2, 2), (2, 0, 3), (2, 1, 4)]
        );
        assert!(csr.is_rows_sorted());
    }

    #[test]
    fn duplicates_combined_with_dup() {
        let ctx = global_context();
        let coo =
            Coo::from_parts(2, 2, vec![0, 0, 0], vec![1, 1, 0], vec![5, 6, 1]).unwrap();
        let csr = coo.to_csr(&ctx, Some(&|a: &i32, b: &i32| a + b)).unwrap();
        assert_eq!(csr.get(0, 1), Some(&11));
        assert_eq!(csr.nnz(), 2);
    }

    #[test]
    fn duplicates_error_without_dup() {
        let ctx = global_context();
        let coo = Coo::from_parts(2, 2, vec![1, 1], vec![0, 0], vec![5, 6]).unwrap();
        let err = coo.to_csr(&ctx, None).unwrap_err();
        assert!(matches!(err, FormatError::Duplicate { row: 1, col: 0 }));
    }

    #[test]
    fn bounds_validated() {
        assert!(Coo::from_parts(2, 2, vec![2], vec![0], vec![1]).is_err());
        assert!(Coo::from_parts(2, 2, vec![0], vec![2], vec![1]).is_err());
        assert!(Coo::from_parts(2, 2, vec![0, 1], vec![0], vec![1, 2]).is_err());
        assert!(Coo::from_parts(2, 2, vec![0], vec![0, 1], vec![1]).is_err());
    }

    #[test]
    fn csr_coo_roundtrip() {
        let ctx = global_context();
        let a =
            Csr::from_parts(3, 4, vec![0, 2, 2, 3], vec![1, 3, 0], vec![7, 8, 9]).unwrap();
        let coo = Coo::from_csr(&a);
        assert_eq!(coo.nnz(), 3);
        let back = coo.to_csr(&ctx, None).unwrap();
        assert_eq!(a.to_sorted_tuples(), back.to_sorted_tuples());
    }

    #[test]
    fn empty_coo() {
        let ctx = global_context();
        let coo = Coo::<f32>::from_parts(4, 4, vec![], vec![], vec![]).unwrap();
        let csr = coo.to_csr(&ctx, None).unwrap();
        assert_eq!(csr.nnz(), 0);
        assert_eq!(csr.nrows(), 4);
    }
}
