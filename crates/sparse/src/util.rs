//! Shared helpers: row-segment sorting, prefix sums, chunk stitching.

use std::ops::Range;

/// In-place exclusive prefix sum; returns the total.
///
/// `counts[i]` becomes the sum of the original `counts[..i]`.
pub fn exclusive_prefix_sum(counts: &mut [usize]) -> usize {
    let mut acc = 0usize;
    for c in counts.iter_mut() {
        let v = *c;
        *c = acc;
        acc += v;
    }
    acc
}

/// Sorts `indices[range]` and `values[range]` jointly by index, ascending.
/// Small segments use insertion sort; larger ones an argsort + permute.
pub fn sort_segment<T>(indices: &mut [usize], values: &mut [T]) {
    debug_assert_eq!(indices.len(), values.len());
    let n = indices.len();
    if n <= 1 {
        return;
    }
    if n <= 24 {
        // Insertion sort, moving both arrays together.
        for i in 1..n {
            let mut j = i;
            while j > 0 && indices[j - 1] > indices[j] {
                indices.swap(j - 1, j);
                values.swap(j - 1, j);
                j -= 1;
            }
        }
        return;
    }
    let mut perm: Vec<usize> = (0..n).collect();
    // Stable: callers rely on equal keys keeping arrival order so that
    // "last write wins" duplicate resolution is well-defined.
    perm.sort_by_key(|&i| indices[i]);
    apply_permutation(&perm, indices, values);
}

/// Applies permutation `perm` (new position `i` takes old `perm[i]`) to both
/// slices in O(n) time and O(1) extra space per cycle.
pub fn apply_permutation<T>(perm: &[usize], indices: &mut [usize], values: &mut [T]) {
    let n = perm.len();
    debug_assert_eq!(indices.len(), n);
    debug_assert_eq!(values.len(), n);
    let mut visited = vec![false; n];
    for start in 0..n {
        if visited[start] {
            continue;
        }
        // Follow the cycle containing `start`: after `swap(j, perm[j])` the
        // element destined for position `j` is in place and the displaced
        // element continues at `perm[j]`.
        let mut j = start;
        loop {
            visited[j] = true;
            let k = perm[j];
            if k == start {
                break;
            }
            indices.swap(j, k);
            values.swap(j, k);
            j = k;
        }
    }
}

/// Returns true when the slice is strictly increasing.
pub fn is_strictly_increasing(s: &[usize]) -> bool {
    s.windows(2).all(|w| w[0] < w[1])
}

/// Returns true when the slice is non-decreasing.
pub fn is_non_decreasing(s: &[usize]) -> bool {
    s.windows(2).all(|w| w[0] <= w[1])
}

/// Per-chunk output rows produced by a parallel kernel: the lengths of each
/// produced row, plus the concatenated indices and values for the chunk.
pub type RowChunk<T> = (Vec<usize>, Vec<usize>, Vec<T>);

/// Concatenates per-chunk row outputs (covering `0..nrows` in order) into
/// CSR arrays `(indptr, indices, values)`.
pub fn stitch_row_chunks<T>(
    nrows: usize,
    chunks: Vec<(Range<usize>, RowChunk<T>)>,
) -> (Vec<usize>, Vec<usize>, Vec<T>) {
    let total: usize = chunks.iter().map(|(_, (_, idx, _))| idx.len()).sum();
    let mut indptr = Vec::with_capacity(nrows + 1);
    indptr.push(0usize);
    let mut indices = Vec::with_capacity(total);
    let mut values: Vec<T> = Vec::with_capacity(total);
    for (range, (lens, idx, vals)) in chunks {
        debug_assert_eq!(range.len(), lens.len());
        // grblint: allow(no-unwrap) — indptr is seeded with a leading 0 above.
        let mut acc = *indptr.last().expect("indptr starts non-empty");
        for len in lens {
            acc += len;
            indptr.push(acc);
        }
        indices.extend(idx);
        values.extend(vals);
    }
    debug_assert_eq!(indptr.len(), nrows + 1);
    debug_assert_eq!(*indptr.last().unwrap(), indices.len());
    (indptr, indices, values)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_sum_basic() {
        let mut c = vec![3, 0, 2, 5];
        let total = exclusive_prefix_sum(&mut c);
        assert_eq!(total, 10);
        assert_eq!(c, vec![0, 3, 3, 5]);
    }

    #[test]
    fn prefix_sum_empty() {
        let mut c: Vec<usize> = vec![];
        assert_eq!(exclusive_prefix_sum(&mut c), 0);
    }

    #[test]
    fn sort_segment_small() {
        let mut idx = vec![3, 1, 2];
        let mut val = vec!["c", "a", "b"];
        sort_segment(&mut idx, &mut val);
        assert_eq!(idx, vec![1, 2, 3]);
        assert_eq!(val, vec!["a", "b", "c"]);
    }

    #[test]
    fn sort_segment_large_random() {
        use graphblas_exec::rng::prelude::*;
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            let n = rng.gen_range(0..200);
            let mut idx: Vec<usize> = (0..n).map(|_| rng.gen_range(0..1000)).collect();
            // Make keys unique so the value pairing is checkable.
            idx.sort_unstable();
            idx.dedup();
            let mut idx_shuffled = idx.clone();
            idx_shuffled.shuffle(&mut rng);
            let mut vals: Vec<usize> = idx_shuffled.iter().map(|&k| k * 10).collect();
            let mut keys = idx_shuffled.clone();
            sort_segment(&mut keys, &mut vals);
            assert_eq!(keys, idx);
            for (k, v) in keys.iter().zip(&vals) {
                assert_eq!(*v, k * 10);
            }
        }
    }

    #[test]
    fn monotonicity_checks() {
        assert!(is_strictly_increasing(&[1, 2, 5]));
        assert!(!is_strictly_increasing(&[1, 1, 5]));
        assert!(is_non_decreasing(&[1, 1, 5]));
        assert!(!is_non_decreasing(&[2, 1]));
        assert!(is_strictly_increasing(&[]));
        assert!(is_strictly_increasing(&[9]));
    }

    #[test]
    fn stitch_concatenates() {
        let chunks = vec![
            (0..2, (vec![1, 0], vec![4], vec![40])),
            (2..3, (vec![2], vec![1, 2], vec![10, 20])),
        ];
        let (indptr, indices, values) = stitch_row_chunks(3, chunks);
        assert_eq!(indptr, vec![0, 1, 1, 3]);
        assert_eq!(indices, vec![4, 1, 2]);
        assert_eq!(values, vec![40, 10, 20]);
    }
}
