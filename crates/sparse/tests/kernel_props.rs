//! Randomized property tests for the sparse kernels against naive
//! references — structure-level guarantees every higher layer depends on.
//! Inputs come from the deterministic `graphblas_exec::rng` generator, so
//! every run exercises the same (broad) case set.

use std::collections::BTreeMap;

use graphblas_exec::global_context;
use graphblas_exec::rng::prelude::*;
use graphblas_sparse::{ewise, kron, spgemm, spmv, transpose, Coo, Csr, SparseVec};

const CASES: usize = 64;

type Entries = BTreeMap<(usize, usize), i64>;

fn csr(shape: (usize, usize), entries: &Entries) -> Csr<i64> {
    Coo::from_parts(
        shape.0,
        shape.1,
        entries.keys().map(|k| k.0).collect(),
        entries.keys().map(|k| k.1).collect(),
        entries.values().copied().collect(),
    )
    .unwrap()
    .to_csr(&global_context(), None)
    .unwrap()
}

fn entries(m: &Csr<i64>) -> Entries {
    m.to_sorted_tuples()
        .into_iter()
        .map(|(i, j, v)| ((i, j), v))
        .collect()
}

fn random_entries(rng: &mut StdRng, rows: usize, cols: usize) -> Entries {
    (0..rng.gen_range(0..50usize))
        .map(|_| {
            (
                (rng.gen_range(0..rows), rng.gen_range(0..cols)),
                rng.gen_range(-20..20i64),
            )
        })
        .collect()
}

#[test]
fn spgemm_matches_reference() {
    let ctx = global_context();
    let mut rng = StdRng::seed_from_u64(0x5139);
    for _ in 0..CASES {
        let a = random_entries(&mut rng, 14, 10);
        let b = random_entries(&mut rng, 10, 12);
        let am = csr((14, 10), &a);
        let bm = csr((10, 12), &b);
        let c = spgemm::spgemm(&ctx, &am, &bm, |x, y| x * y, |acc, z| *acc += z);
        c.check().unwrap();
        let mut expect: Entries = BTreeMap::new();
        for (&(i, k), &av) in &a {
            for (&(k2, j), &bv) in &b {
                if k == k2 {
                    *expect.entry((i, j)).or_insert(0) += av * bv;
                }
            }
        }
        assert_eq!(entries(&c), expect);
    }
}

#[test]
fn spgemm_masked_is_restricted_spgemm() {
    let ctx = global_context();
    let mut rng = StdRng::seed_from_u64(0x5140);
    for _ in 0..CASES {
        let a = random_entries(&mut rng, 10, 10);
        let b = random_entries(&mut rng, 10, 10);
        let m = random_entries(&mut rng, 10, 10);
        let complement = rng.gen_bool(0.5);
        let am = csr((10, 10), &a);
        let bm = csr((10, 10), &b);
        let mm = csr((10, 10), &m);
        let masked = spgemm::spgemm_masked(
            &ctx,
            &mm,
            complement,
            |_| true,
            &am,
            &bm,
            |x, y| x * y,
            |acc, z| *acc += z,
        );
        let mut full = spgemm::spgemm(&ctx, &am, &bm, |x, y| x * y, |acc, z| *acc += z);
        full.sort_rows(&ctx);
        let expect = ewise::ewise_restrict(&ctx, &full, &mm, complement, |_| true);
        assert_eq!(entries(&masked), entries(&expect));
    }
}

#[test]
fn transpose_is_involutive_and_entrywise() {
    let ctx = global_context();
    let mut rng = StdRng::seed_from_u64(0x7149);
    for _ in 0..CASES {
        let a = random_entries(&mut rng, 9, 17);
        let am = csr((9, 17), &a);
        let t = transpose::transpose(&ctx, &am);
        t.check().unwrap();
        for (&(i, j), &v) in &a {
            assert_eq!(t.get(j, i), Some(&v));
        }
        let tt = transpose::transpose(&ctx, &t);
        assert_eq!(entries(&tt), a);
    }
}

#[test]
fn union_intersect_difference_partition() {
    let ctx = global_context();
    let mut rng = StdRng::seed_from_u64(0x0412);
    for _ in 0..CASES {
        let a = random_entries(&mut rng, 12, 12);
        let b = random_entries(&mut rng, 12, 12);
        let am = csr((12, 12), &a);
        let bm = csr((12, 12), &b);
        // |A ∪ B| = |A| + |B| - |A ∩ B|
        let u = ewise::ewise_union(&ctx, &am, &bm, |x, y| x + y);
        let i = ewise::ewise_intersect(&ctx, &am, &bm, |x: &i64, y: &i64| x * y);
        assert_eq!(u.nnz() + i.nnz(), am.nnz() + bm.nnz());
        // restrict(A, B) ⊎ restrict(A, ¬B) = A
        let inb = ewise::ewise_restrict(&ctx, &am, &bm, false, |_| true);
        let notb = ewise::ewise_restrict(&ctx, &am, &bm, true, |_| true);
        assert_eq!(inb.nnz() + notb.nnz(), am.nnz());
        let mut merged = entries(&inb);
        merged.extend(entries(&notb));
        assert_eq!(merged, a);
    }
}

#[test]
fn union_is_commutative_for_commutative_ops() {
    let ctx = global_context();
    let mut rng = StdRng::seed_from_u64(0xC033);
    for _ in 0..CASES {
        let a = random_entries(&mut rng, 8, 8);
        let b = random_entries(&mut rng, 8, 8);
        let am = csr((8, 8), &a);
        let bm = csr((8, 8), &b);
        let ab = ewise::ewise_union(&ctx, &am, &bm, |x, y| x + y);
        let ba = ewise::ewise_union(&ctx, &bm, &am, |x, y| x + y);
        assert_eq!(entries(&ab), entries(&ba));
    }
}

#[test]
fn spmv_and_vxm_agree_via_transpose() {
    let ctx = global_context();
    let mut rng = StdRng::seed_from_u64(0x593D);
    for _ in 0..CASES {
        let a = random_entries(&mut rng, 11, 8);
        let x: BTreeMap<usize, i64> = (0..rng.gen_range(0..11usize))
            .map(|_| (rng.gen_range(0..11usize), rng.gen_range(-9..9i64)))
            .collect();
        let am = csr((11, 8), &a);
        let xv = SparseVec::from_parts(
            11,
            x.keys().copied().collect(),
            x.values().copied().collect(),
        )
        .unwrap();
        let push = spmv::vxm(&ctx, &xv, &am, |x, a| x * a, |p, q| p + q);
        let at = transpose::transpose(&ctx, &am);
        let pull = spmv::spmv(&ctx, &at, &xv, |a, x| a * x, |p, q| p + q, None::<fn(&i64) -> bool>);
        assert_eq!(push.to_sorted_tuples(), pull.to_sorted_tuples());
    }
}

#[test]
fn kron_entry_count_and_values() {
    let ctx = global_context();
    let mut rng = StdRng::seed_from_u64(0x1209);
    for _ in 0..CASES {
        let a = random_entries(&mut rng, 4, 5);
        let b = random_entries(&mut rng, 3, 4);
        let am = csr((4, 5), &a);
        let bm = csr((3, 4), &b);
        let c = kron::kronecker(&ctx, &am, &bm, |x, y| x * y).unwrap();
        assert_eq!(c.nnz(), am.nnz() * bm.nnz());
        for (&(ia, ja), &av) in &a {
            for (&(ib, jb), &bv) in &b {
                assert_eq!(c.get(ia * 3 + ib, ja * 4 + jb), Some(&(av * bv)));
            }
        }
    }
}

#[test]
fn extract_submatrix_agrees_with_pointwise() {
    let ctx = global_context();
    let mut rng = StdRng::seed_from_u64(0xE874);
    for _ in 0..CASES {
        let a = random_entries(&mut rng, 10, 10);
        let rows: Vec<usize> = (0..rng.gen_range(1..6usize))
            .map(|_| rng.gen_range(0..10))
            .collect();
        let cols: Vec<usize> = (0..rng.gen_range(1..6usize))
            .map(|_| rng.gen_range(0..10))
            .collect();
        let am = csr((10, 10), &a);
        let sub = am.extract_submatrix(&ctx, &rows, &cols).unwrap();
        sub.check().unwrap();
        for (oi, &si) in rows.iter().enumerate() {
            for (oj, &sj) in cols.iter().enumerate() {
                assert_eq!(sub.get(oi, oj), a.get(&(si, sj)));
            }
        }
    }
}

#[test]
fn filter_map_conserves_selected_entries() {
    let ctx = global_context();
    let mut rng = StdRng::seed_from_u64(0xF117);
    for _ in 0..CASES {
        let a = random_entries(&mut rng, 10, 10);
        let threshold = rng.gen_range(-10..10i64);
        let am = csr((10, 10), &a);
        let kept = am.filter_map_with_index(&ctx, |_, _, v| (*v > threshold).then_some(*v));
        kept.check().unwrap();
        let expect: Entries = a
            .iter()
            .filter(|(_, &v)| v > threshold)
            .map(|(&k, &v)| (k, v))
            .collect();
        assert_eq!(entries(&kept), expect);
    }
}

#[test]
fn coo_roundtrip_with_duplicate_summing() {
    let ctx = global_context();
    let mut rng = StdRng::seed_from_u64(0xC002);
    for _ in 0..CASES {
        let triples: Vec<(usize, usize, i64)> = (0..rng.gen_range(0..40usize))
            .map(|_| {
                (
                    rng.gen_range(0..6usize),
                    rng.gen_range(0..6usize),
                    rng.gen_range(-9..9i64),
                )
            })
            .collect();
        let coo = Coo::from_parts(
            6,
            6,
            triples.iter().map(|t| t.0).collect(),
            triples.iter().map(|t| t.1).collect(),
            triples.iter().map(|t| t.2).collect(),
        )
        .unwrap();
        let m = coo.to_csr(&ctx, Some(&|a: &i64, b: &i64| a + b)).unwrap();
        let mut expect: Entries = BTreeMap::new();
        for &(i, j, v) in &triples {
            *expect.entry((i, j)).or_insert(0) += v;
        }
        assert_eq!(entries(&m), expect);
    }
}
