//! Property tests for the sparse kernels against naive references —
//! structure-level guarantees every higher layer depends on.

use std::collections::BTreeMap;

use graphblas_exec::global_context;
use graphblas_sparse::{ewise, kron, spgemm, spmv, transpose, Coo, Csr, SparseVec};
use proptest::prelude::*;

type Entries = BTreeMap<(usize, usize), i64>;

fn csr(shape: (usize, usize), entries: &Entries) -> Csr<i64> {
    Coo::from_parts(
        shape.0,
        shape.1,
        entries.keys().map(|k| k.0).collect(),
        entries.keys().map(|k| k.1).collect(),
        entries.values().copied().collect(),
    )
    .unwrap()
    .to_csr(&global_context(), None)
    .unwrap()
}

fn entries(m: &Csr<i64>) -> Entries {
    m.to_sorted_tuples()
        .into_iter()
        .map(|(i, j, v)| ((i, j), v))
        .collect()
}

fn arb(rows: usize, cols: usize) -> impl Strategy<Value = Entries> {
    proptest::collection::btree_map((0..rows, 0..cols), -20i64..20, 0..50)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn spgemm_matches_reference(a in arb(14, 10), b in arb(10, 12)) {
        let ctx = global_context();
        let am = csr((14, 10), &a);
        let bm = csr((10, 12), &b);
        let c = spgemm::spgemm(&ctx, &am, &bm, |x, y| x * y, |acc, z| *acc += z);
        c.check().unwrap();
        let mut expect: Entries = BTreeMap::new();
        for (&(i, k), &av) in &a {
            for (&(k2, j), &bv) in &b {
                if k == k2 {
                    *expect.entry((i, j)).or_insert(0) += av * bv;
                }
            }
        }
        prop_assert_eq!(entries(&c), expect);
    }

    #[test]
    fn spgemm_masked_is_restricted_spgemm(
        a in arb(10, 10),
        b in arb(10, 10),
        m in arb(10, 10),
        complement in any::<bool>(),
    ) {
        let ctx = global_context();
        let am = csr((10, 10), &a);
        let bm = csr((10, 10), &b);
        let mm = csr((10, 10), &m);
        let masked = spgemm::spgemm_masked(
            &ctx, &mm, complement, |_| true, &am, &bm,
            |x, y| x * y, |acc, z| *acc += z,
        );
        let mut full = spgemm::spgemm(&ctx, &am, &bm, |x, y| x * y, |acc, z| *acc += z);
        full.sort_rows(&ctx);
        let expect = ewise::ewise_restrict(&ctx, &full, &mm, complement, |_| true);
        prop_assert_eq!(entries(&masked), entries(&expect));
    }

    #[test]
    fn transpose_is_involutive_and_entrywise(a in arb(9, 17)) {
        let ctx = global_context();
        let am = csr((9, 17), &a);
        let t = transpose::transpose(&ctx, &am);
        t.check().unwrap();
        for (&(i, j), &v) in &a {
            prop_assert_eq!(t.get(j, i), Some(&v));
        }
        let tt = transpose::transpose(&ctx, &t);
        prop_assert_eq!(entries(&tt), a);
    }

    #[test]
    fn union_intersect_difference_partition(
        a in arb(12, 12),
        b in arb(12, 12),
    ) {
        let ctx = global_context();
        let am = csr((12, 12), &a);
        let bm = csr((12, 12), &b);
        // |A ∪ B| = |A| + |B| - |A ∩ B|
        let u = ewise::ewise_union(&ctx, &am, &bm, |x, y| x + y);
        let i = ewise::ewise_intersect(&ctx, &am, &bm, |x: &i64, y: &i64| x * y);
        prop_assert_eq!(u.nnz() + i.nnz(), am.nnz() + bm.nnz());
        // restrict(A, B) ⊎ restrict(A, ¬B) = A
        let inb = ewise::ewise_restrict(&ctx, &am, &bm, false, |_| true);
        let notb = ewise::ewise_restrict(&ctx, &am, &bm, true, |_| true);
        prop_assert_eq!(inb.nnz() + notb.nnz(), am.nnz());
        let mut merged = entries(&inb);
        merged.extend(entries(&notb));
        prop_assert_eq!(merged, a);
    }

    #[test]
    fn union_is_commutative_for_commutative_ops(a in arb(8, 8), b in arb(8, 8)) {
        let ctx = global_context();
        let am = csr((8, 8), &a);
        let bm = csr((8, 8), &b);
        let ab = ewise::ewise_union(&ctx, &am, &bm, |x, y| x + y);
        let ba = ewise::ewise_union(&ctx, &bm, &am, |x, y| x + y);
        prop_assert_eq!(entries(&ab), entries(&ba));
    }

    #[test]
    fn spmv_and_vxm_agree_via_transpose(
        a in arb(11, 8),
        x in proptest::collection::btree_map(0usize..11, -9i64..9, 0..11),
    ) {
        let ctx = global_context();
        let am = csr((11, 8), &a);
        let xv = SparseVec::from_parts(
            11,
            x.keys().copied().collect(),
            x.values().copied().collect(),
        ).unwrap();
        let push = spmv::vxm(&ctx, &xv, &am, |x, a| x * a, |p, q| p + q);
        let at = transpose::transpose(&ctx, &am);
        let pull = spmv::spmv(&ctx, &at, &xv, |a, x| a * x, |p, q| p + q, None);
        prop_assert_eq!(push.to_sorted_tuples(), pull.to_sorted_tuples());
    }

    #[test]
    fn kron_entry_count_and_values(a in arb(4, 5), b in arb(3, 4)) {
        let ctx = global_context();
        let am = csr((4, 5), &a);
        let bm = csr((3, 4), &b);
        let c = kron::kronecker(&ctx, &am, &bm, |x, y| x * y).unwrap();
        prop_assert_eq!(c.nnz(), am.nnz() * bm.nnz());
        for (&(ia, ja), &av) in &a {
            for (&(ib, jb), &bv) in &b {
                prop_assert_eq!(c.get(ia * 3 + ib, ja * 4 + jb), Some(&(av * bv)));
            }
        }
    }

    #[test]
    fn extract_submatrix_agrees_with_pointwise(
        a in arb(10, 10),
        rows in proptest::collection::vec(0usize..10, 1..6),
        cols in proptest::collection::vec(0usize..10, 1..6),
    ) {
        let ctx = global_context();
        let am = csr((10, 10), &a);
        let sub = am.extract_submatrix(&ctx, &rows, &cols).unwrap();
        sub.check().unwrap();
        for (oi, &si) in rows.iter().enumerate() {
            for (oj, &sj) in cols.iter().enumerate() {
                prop_assert_eq!(sub.get(oi, oj), a.get(&(si, sj)));
            }
        }
    }

    #[test]
    fn filter_map_conserves_selected_entries(a in arb(10, 10), threshold in -10i64..10) {
        let ctx = global_context();
        let am = csr((10, 10), &a);
        let kept = am.filter_map_with_index(&ctx, |_, _, v| (*v > threshold).then(|| *v));
        kept.check().unwrap();
        let expect: Entries = a.iter()
            .filter(|(_, &v)| v > threshold)
            .map(|(&k, &v)| (k, v))
            .collect();
        prop_assert_eq!(entries(&kept), expect);
    }

    #[test]
    fn coo_roundtrip_with_duplicate_summing(
        triples in proptest::collection::vec((0usize..6, 0usize..6, -9i64..9), 0..40),
    ) {
        let ctx = global_context();
        let coo = Coo::from_parts(
            6, 6,
            triples.iter().map(|t| t.0).collect(),
            triples.iter().map(|t| t.1).collect(),
            triples.iter().map(|t| t.2).collect(),
        ).unwrap();
        let m = coo.to_csr(&ctx, Some(&|a: &i64, b: &i64| a + b)).unwrap();
        let mut expect: Entries = BTreeMap::new();
        for &(i, j, v) in &triples {
            *expect.entry((i, j)).or_insert(0) += v;
        }
        prop_assert_eq!(entries(&m), expect);
    }
}
