//! Thin wrappers over `std::sync` locks with a `parking_lot`-style API
//! (guard-returning `lock()` / `read()` / `write()`, no poison plumbing).
//!
//! The workspace builds offline with no external crates; these shims keep
//! call sites as terse as the `parking_lot` API they replace. Poisoning is
//! deliberately ignored: a panic inside a GraphBLAS kernel already
//! propagates through the pool's scope machinery, and the §V error model —
//! not lock poisoning — is how object state is invalidated.

use std::sync::{self, TryLockError};

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex whose `lock` returns the guard directly, recovering from
/// poisoning (the protected data is handed back as-is).
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// A readers-writer lock with guard-returning `read` / `write`.
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        let held = m.lock();
        assert!(m.try_lock().is_none());
        drop(held);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn poison_is_recovered() {
        let m = std::sync::Arc::new(Mutex::new(7));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }
}
