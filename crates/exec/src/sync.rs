//! Thin wrappers over `std::sync` locks with a `parking_lot`-style API
//! (guard-returning `lock()` / `read()` / `write()`, no poison plumbing),
//! plus the two blocking-coordination primitives the pool and kernels
//! need: an MPMC [`Channel`] and a [`WaitGroup`].
//!
//! The workspace builds offline with no external crates; these shims keep
//! call sites as terse as the `parking_lot` API they replace. Poisoning is
//! deliberately ignored: a panic inside a GraphBLAS kernel already
//! propagates through the pool's scope machinery, and the §V error model —
//! not lock poisoning — is how object state is invalidated.
//!
//! Everything in this module is model-checked: `graphblas-check` provides
//! a schedule-controlled mirror of this exact API (`check::sync`), and its
//! test suite explores thousands of interleavings of the channel,
//! wait-group, and pool park/wake protocols. Keep the algorithms here in
//! lockstep with the models in `crates/check/tests/`.
//!
//! Atomics audit (grbsa): this module intentionally contains **no
//! atomics** — earlier revisions tracked the pool's parked count with a
//! relaxed counter, but it now lives under the channel mutex, so every
//! cross-thread protocol here is lock/condvar based and there is nothing
//! for the `Ordering` audit to classify. `grbsa` also treats this file as
//! a synchronization primitive (its lock wrappers are the things other
//! code acquires), so it contributes no lock-order events of its own.

use std::collections::VecDeque;
use std::sync::{self, TryLockError};

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex whose `lock` returns the guard directly, recovering from
/// poisoning (the protected data is handed back as-is).
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// A readers-writer lock with guard-returning `read` / `write`.
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// A condition variable whose `wait` recovers from poisoning, pairing with
/// this module's [`Mutex`].
pub struct Condvar(sync::Condvar);

impl Condvar {
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Atomically releases `guard` and blocks until notified. Spurious
    /// wakeups are possible — always re-check the predicate in a loop.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        self.0.wait(guard).unwrap_or_else(|e| e.into_inner())
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

struct ChannelState<T> {
    queue: VecDeque<T>,
    closed: bool,
}

/// A multi-producer multi-consumer FIFO channel (`Mutex<VecDeque>` +
/// [`Condvar`]), the protocol the pool's job queue instantiates.
///
/// Closing wakes every blocked receiver; receivers drain remaining items
/// before observing `None`. Sends after close are rejected, not queued.
pub struct Channel<T> {
    state: Mutex<ChannelState<T>>,
    available: Condvar,
}

impl<T> Channel<T> {
    pub fn new() -> Self {
        Channel {
            state: Mutex::new(ChannelState {
                queue: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
        }
    }

    /// Enqueues `item`; returns `false` (dropping the item) when the
    /// channel is closed. Notifies one blocked receiver *after* releasing
    /// the lock — the wake decision is made while the state is locked, so
    /// no receiver that observed an empty queue can be missed.
    pub fn send(&self, item: T) -> bool {
        let mut st = self.state.lock();
        if st.closed {
            return false;
        }
        st.queue.push_back(item);
        drop(st);
        self.available.notify_one();
        true
    }

    /// Blocks until an item is available (`Some`) or the channel is closed
    /// *and* drained (`None`).
    pub fn recv(&self) -> Option<T> {
        let mut st = self.state.lock();
        loop {
            if let Some(item) = st.queue.pop_front() {
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = self.available.wait(st);
        }
    }

    /// Non-blocking receive: `Some` when an item was ready.
    pub fn try_recv(&self) -> Option<T> {
        self.state.lock().queue.pop_front()
    }

    /// Closes the channel and wakes every blocked receiver. Items already
    /// queued remain receivable.
    pub fn close(&self) {
        let mut st = self.state.lock();
        st.closed = true;
        drop(st);
        self.available.notify_all();
    }

    /// Whether the channel has been closed.
    pub fn is_closed(&self) -> bool {
        self.state.lock().closed
    }

    /// Number of currently queued items.
    pub fn len(&self) -> usize {
        self.state.lock().queue.len()
    }

    /// Whether no items are currently queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Default for Channel<T> {
    fn default() -> Self {
        Channel::new()
    }
}

/// Counts outstanding tasks and blocks waiters until the count returns to
/// zero — the completion protocol behind [`crate::pool::ThreadPool::scope`].
///
/// `add` before handing work out, `done` when each unit finishes, `wait`
/// to block until all are done. Unlike Go's WaitGroup, `add` after the
/// count has reached zero is allowed (the scope may spawn in waves).
#[derive(Default)]
pub struct WaitGroup {
    count: Mutex<usize>,
    all_done: Condvar,
}

impl WaitGroup {
    pub fn new() -> Self {
        WaitGroup {
            count: Mutex::new(0),
            all_done: Condvar::new(),
        }
    }

    /// Registers `n` more outstanding units of work.
    pub fn add(&self, n: usize) {
        *self.count.lock() += n;
    }

    /// Marks one unit of work finished, waking waiters when the count hits
    /// zero. Panics if the count would go negative (a protocol violation).
    pub fn done(&self) {
        let mut count = self.count.lock();
        assert!(*count > 0, "WaitGroup::done called more times than add");
        *count -= 1;
        if *count == 0 {
            drop(count);
            self.all_done.notify_all();
        }
    }

    /// Blocks until the outstanding count is zero. Returns immediately when
    /// nothing is outstanding.
    pub fn wait(&self) {
        let mut count = self.count.lock();
        while *count > 0 {
            count = self.all_done.wait(count);
        }
    }

    /// The current outstanding count (racy; diagnostic use only).
    pub fn outstanding(&self) -> usize {
        *self.count.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        let held = m.lock();
        assert!(m.try_lock().is_none());
        drop(held);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn channel_fifo_and_close_semantics() {
        let ch = Channel::new();
        assert!(ch.send(1));
        assert!(ch.send(2));
        assert_eq!(ch.len(), 2);
        assert_eq!(ch.recv(), Some(1));
        assert_eq!(ch.try_recv(), Some(2));
        assert_eq!(ch.try_recv(), None);
        ch.send(3);
        ch.close();
        assert!(!ch.send(4)); // rejected after close
        assert_eq!(ch.recv(), Some(3)); // drains queued items
        assert_eq!(ch.recv(), None);
        assert!(ch.is_closed());
    }

    #[test]
    fn channel_crosses_threads() {
        let ch = std::sync::Arc::new(Channel::new());
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let ch = ch.clone();
                std::thread::spawn(move || {
                    let mut got = 0usize;
                    while ch.recv().is_some() {
                        got += 1;
                    }
                    got
                })
            })
            .collect();
        for i in 0..100 {
            assert!(ch.send(i));
        }
        ch.close();
        let total: usize = consumers.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn waitgroup_blocks_until_done() {
        let wg = std::sync::Arc::new(WaitGroup::new());
        let hits = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        wg.add(8);
        for _ in 0..8 {
            let (wg, hits) = (wg.clone(), hits.clone());
            std::thread::spawn(move || {
                hits.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                wg.done();
            });
        }
        wg.wait();
        assert_eq!(hits.load(std::sync::atomic::Ordering::SeqCst), 8);
        assert_eq!(wg.outstanding(), 0);
        wg.wait(); // idempotent on an idle group
    }

    #[test]
    #[should_panic(expected = "WaitGroup::done")]
    fn waitgroup_underflow_panics() {
        WaitGroup::new().done();
    }

    #[test]
    fn poison_is_recovered() {
        let m = std::sync::Arc::new(Mutex::new(7));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }
}
