//! Data-parallel helpers built on the pool and a context's thread budget.
//!
//! All kernels in `graphblas-sparse` funnel through these three functions,
//! so a context's `nthreads` clamp (paper §IV) is honoured uniformly, and
//! small problems short-circuit to sequential execution based on the
//! context's `chunk_size`.

use std::ops::Range;

use crate::context::Context;
use crate::pool::global_pool;

/// Decides how many tasks to use for `n` items in `ctx`.
fn task_count(ctx: &Context, n: usize) -> usize {
    if n == 0 {
        return 0;
    }
    let by_grain = n.div_ceil(ctx.chunk_size());
    ctx.effective_threads().min(by_grain).max(1)
}

/// Runs `f` over the given ranges, in parallel when more than one range is
/// supplied, collecting the per-range results in order.
pub fn parallel_map_ranges<R, F>(ranges: Vec<Range<usize>>, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    match ranges.len() {
        0 => Vec::new(),
        1 => {
            vec![f(ranges.into_iter().next().expect("one range"))]
        }
        _ => {
            let mut out: Vec<Option<R>> = ranges.iter().map(|_| None).collect();
            global_pool().scope(|scope| {
                for (slot, range) in out.iter_mut().zip(ranges) {
                    let f = &f;
                    scope.spawn(move || {
                        *slot = Some(f(range));
                    });
                }
            });
            out.into_iter()
                .map(|r| r.expect("scope guarantees completion"))
                .collect()
        }
    }
}

/// Parallel for over `0..n`: splits into count-balanced ranges sized by the
/// context's thread budget and chunk size, runs `f` on each.
pub fn parallel_for<F>(ctx: &Context, n: usize, f: F)
where
    F: Fn(Range<usize>) + Sync,
{
    let k = task_count(ctx, n);
    if k <= 1 {
        if n > 0 {
            f(0..n);
        }
        return;
    }
    let ranges = crate::partition::balanced_ranges(n, k);
    parallel_map_ranges(ranges, f);
}

/// Parallel map over `0..n` in count-balanced chunks; results are returned
/// in chunk order together with the chunk's range.
pub fn parallel_map_chunks<R, F>(ctx: &Context, n: usize, f: F) -> Vec<(Range<usize>, R)>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    let k = task_count(ctx, n);
    if k == 0 {
        return Vec::new();
    }
    let ranges = crate::partition::balanced_ranges(n, k);
    parallel_map_ranges(ranges, |r| (r.clone(), f(r)))
        .into_iter()
        .collect()
}

/// Parallel reduction over `0..n`: each chunk is mapped with `map`, then the
/// per-chunk results are folded left-to-right with `combine` (so a
/// non-commutative but associative combine is safe).
pub fn parallel_reduce<R, M, C>(ctx: &Context, n: usize, identity: R, map: M, combine: C) -> R
where
    R: Send,
    M: Fn(Range<usize>) -> R + Sync,
    C: Fn(R, R) -> R,
{
    let k = task_count(ctx, n);
    if k == 0 {
        return identity;
    }
    if k == 1 {
        return combine(identity, map(0..n));
    }
    let ranges = crate::partition::balanced_ranges(n, k);
    let parts = parallel_map_ranges(ranges, map);
    parts.into_iter().fold(identity, combine)
}

/// Parallel for over weighted items: `prefix` is a non-decreasing array of
/// length `n + 1` (e.g. CSR `indptr`); each task receives a range of items
/// with roughly equal total weight.
pub fn parallel_for_weighted<F>(ctx: &Context, prefix: &[usize], f: F)
where
    F: Fn(Range<usize>) + Sync,
{
    let n = prefix.len().saturating_sub(1);
    if n == 0 {
        return;
    }
    let total = prefix[n] - prefix[0];
    let by_grain = total.div_ceil(ctx.chunk_size()).max(1);
    let k = ctx.effective_threads().min(by_grain).min(n).max(1);
    if k == 1 {
        f(0..n);
        return;
    }
    let ranges = crate::partition::prefix_balanced_ranges(prefix, k);
    parallel_map_ranges(ranges, f);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{global_context, Context, ContextOptions, Mode};
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn tiny_chunks_ctx(nthreads: usize) -> Context {
        Context::new(
            &global_context(),
            Mode::Blocking,
            ContextOptions {
                nthreads: Some(nthreads),
                chunk_size: Some(1),
                ..Default::default()
            },
        )
    }

    #[test]
    fn parallel_for_visits_every_index_once() {
        let ctx = tiny_chunks_ctx(4);
        let n = 10_000;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        parallel_for(&ctx, n, |range| {
            for i in range {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_for_zero_items() {
        let ctx = tiny_chunks_ctx(4);
        parallel_for(&ctx, 0, |_| panic!("must not be called"));
    }

    #[test]
    fn small_problem_runs_sequentially() {
        let ctx = Context::new(
            &global_context(),
            Mode::Blocking,
            ContextOptions {
                nthreads: Some(8),
                chunk_size: Some(1_000_000),
                ..Default::default()
            },
        );
        let count = AtomicUsize::new(0);
        parallel_map_chunks(&ctx, 100, |r| {
            count.fetch_add(1, Ordering::Relaxed);
            r.len()
        });
        assert_eq!(count.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn reduce_sums_correctly() {
        let ctx = tiny_chunks_ctx(7);
        let n = 12_345usize;
        let total = parallel_reduce(
            &ctx,
            n,
            0u64,
            |range| range.map(|i| i as u64).sum::<u64>(),
            |a, b| a + b,
        );
        assert_eq!(total, (n as u64 - 1) * n as u64 / 2);
    }

    #[test]
    fn reduce_preserves_chunk_order() {
        let ctx = tiny_chunks_ctx(5);
        let n = 1000usize;
        let digits = parallel_reduce(
            &ctx,
            n,
            Vec::new(),
            |range| range.collect::<Vec<_>>(),
            |mut a, b| {
                a.extend(b);
                a
            },
        );
        assert_eq!(digits, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn weighted_covers_all_items() {
        let ctx = tiny_chunks_ctx(4);
        // Quadratic weights.
        let prefix: Vec<usize> = (0..=257).map(|i| i * i).collect();
        let hits: Vec<AtomicUsize> = (0..257).map(|_| AtomicUsize::new(0)).collect();
        parallel_for_weighted(&ctx, &prefix, |range| {
            for i in range {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn map_chunks_returns_ordered_ranges() {
        let ctx = tiny_chunks_ctx(3);
        let out = parallel_map_chunks(&ctx, 30, |r| r.len());
        let mut next = 0;
        for (range, len) in &out {
            assert_eq!(range.start, next);
            assert_eq!(range.len(), *len);
            next = range.end;
        }
        assert_eq!(next, 30);
    }
}
