//! Hierarchical execution contexts (`GrB_Context`, paper §IV).
//!
//! GraphBLAS 1.X had a single program-wide context fixed by `GrB_init`.
//! GraphBLAS 2.0 generalizes it: contexts form a tree rooted at the
//! `GrB_init` context, every container belongs to a context, and each
//! context carries the execution mode plus implementation-defined resource
//! information. Here the resource information is a **thread budget**: the
//! number of pool workers a kernel running in the context may use, clamped
//! by every ancestor so a nested context can never exceed its parent —
//! the hierarchical resource discipline the paper motivates with
//! MPI × OpenMP nesting.
//!
//! The contents of the C API's `void *exec` argument are
//! implementation-defined; our definition is [`ContextOptions`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::sync::RwLock;

/// Execution mode established by `GrB_init` / `GrB_Context_new`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Every method call returns with its computation complete.
    Blocking,
    /// Method calls may return early; computations on an output object can
    /// be deferred until the object is read or forced with `wait`.
    NonBlocking,
}

/// Implementation-defined context configuration (the paper's `void *exec`).
#[derive(Debug, Clone, Default)]
pub struct ContextOptions {
    /// Maximum number of worker threads kernels may use in this context.
    /// `None` inherits the parent's (ultimately the pool size).
    pub nthreads: Option<usize>,
    /// Minimum number of work items per parallel task; guards against
    /// oversubscribing tiny problems. `None` inherits.
    pub chunk_size: Option<usize>,
    /// Optional human-readable label used in diagnostics.
    pub name: Option<String>,
}

struct ContextInner {
    id: u64,
    parent: Option<Context>,
    mode: Mode,
    nthreads: Option<usize>,
    chunk_size: Option<usize>,
    name: Option<String>,
}

static NEXT_CONTEXT_ID: AtomicU64 = AtomicU64::new(1);

/// An opaque handle to an execution context. Cheap to clone; clones share
/// identity (as `GrB_Context` handles do in C).
#[derive(Clone)]
pub struct Context {
    inner: Arc<ContextInner>,
}

impl std::fmt::Debug for Context {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut d = f.debug_struct("Context");
        d.field("id", &self.inner.id);
        if let Some(name) = &self.inner.name {
            d.field("name", name);
        }
        d.field("mode", &self.inner.mode)
            .field("parent", &self.inner.parent.as_ref().map(|p| p.id()))
            .field("nthreads", &self.inner.nthreads)
            .field("chunk_size", &self.inner.chunk_size)
            .finish()
    }
}

impl Context {
    fn make(parent: Option<Context>, mode: Mode, opts: ContextOptions) -> Context {
        let ctx = Context {
            inner: Arc::new(ContextInner {
                // grblint: allow(relaxed-ordering); grbsa: protocol(id-alloc)
                // — unique-id allocation; only atomicity matters, no
                // ordering is inferred.
                id: NEXT_CONTEXT_ID.fetch_add(1, Ordering::Relaxed),
                parent,
                mode,
                nthreads: opts.nthreads,
                chunk_size: opts.chunk_size,
                name: opts.name,
            }),
        };
        if graphblas_obs::enabled() {
            ctx.register_with_obs();
        }
        ctx
    }

    /// Makes this context visible to the telemetry registry so spans can be
    /// attributed to it by id and burble lines can print its name.
    /// Idempotent; a no-op cost-wise beyond one mutex acquisition.
    fn register_with_obs(&self) {
        graphblas_obs::register_context(
            self.inner.id,
            self.inner.parent.as_ref().map_or(0, |p| p.id()),
            self.inner.name.as_deref(),
        );
    }

    /// Creates a context nested in `parent` (the analogue of
    /// `GrB_Context_new(&ctx, mode, parent, exec)`). Pass the
    /// [`global_context`] to nest directly under the top level, mirroring
    /// the C API's `GrB_NULL` parent.
    pub fn new(parent: &Context, mode: Mode, opts: ContextOptions) -> Context {
        Context::make(Some(parent.clone()), mode, opts)
    }

    /// Stable identity for diagnostics.
    pub fn id(&self) -> u64 {
        self.inner.id
    }

    /// The execution mode of this context.
    pub fn mode(&self) -> Mode {
        self.inner.mode
    }

    /// The parent context, if any (`None` only for root contexts).
    pub fn parent(&self) -> Option<&Context> {
        self.inner.parent.as_ref()
    }

    /// Optional label supplied at creation.
    pub fn name(&self) -> Option<&str> {
        self.inner.name.as_deref()
    }

    /// The thread budget effective in this context: its own request clamped
    /// by every ancestor, defaulting to the global pool size. Always ≥ 1.
    pub fn effective_threads(&self) -> usize {
        let pool_size = crate::pool::global_pool().size();
        let mut limit = pool_size;
        let mut cur = Some(self);
        while let Some(ctx) = cur {
            if let Some(n) = ctx.inner.nthreads {
                limit = limit.min(n.max(1));
            }
            cur = ctx.inner.parent.as_ref();
        }
        limit.max(1)
    }

    /// Minimum items per parallel task; inherited from the nearest ancestor
    /// that sets it, defaulting to 1024.
    pub fn chunk_size(&self) -> usize {
        let mut cur = Some(self);
        while let Some(ctx) = cur {
            if let Some(c) = ctx.inner.chunk_size {
                return c.max(1);
            }
            cur = ctx.inner.parent.as_ref();
        }
        1024
    }

    /// Whether two handles denote the same context object.
    pub fn same(&self, other: &Context) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Whether `self` is `other` or a descendant of it.
    pub fn is_within(&self, other: &Context) -> bool {
        let mut cur = Some(self);
        while let Some(ctx) = cur {
            if ctx.same(other) {
                return true;
            }
            cur = ctx.inner.parent.as_ref();
        }
        false
    }

    /// `GrB_get`-style introspection: the telemetry attributed to this
    /// context — its own spans plus the rollup over all descendants.
    ///
    /// Contexts created while telemetry was off are registered here on
    /// demand (with their ancestry chain), so `stats()` always returns
    /// `Some` for a live handle; the totals are simply zero until spans
    /// run under the context with telemetry enabled.
    pub fn stats(&self) -> Option<graphblas_obs::ContextStats> {
        // Register ancestors first so parent links resolve in the registry.
        let mut chain: Vec<&Context> = Vec::new();
        let mut cur = Some(self);
        while let Some(ctx) = cur {
            chain.push(ctx);
            cur = ctx.inner.parent.as_ref();
        }
        for ctx in chain.into_iter().rev() {
            ctx.register_with_obs();
        }
        graphblas_obs::ctxreg::context_stats(self.inner.id)
    }

    /// `GrB_explain`-style decision provenance: the last `last_n` reason-
    /// coded runtime decisions attributed to this context or any
    /// descendant, plus per-reason counts over that scope. Registers the
    /// ancestry chain on demand (like [`Context::stats`]) so subtree
    /// membership resolves even for contexts created with telemetry off.
    pub fn explain(&self, last_n: usize) -> graphblas_obs::Explain {
        let mut chain: Vec<&Context> = Vec::new();
        let mut cur = Some(self);
        while let Some(ctx) = cur {
            chain.push(ctx);
            cur = ctx.inner.parent.as_ref();
        }
        for ctx in chain.into_iter().rev() {
            ctx.register_with_obs();
        }
        graphblas_obs::events::explain_for_subtree(self.inner.id, last_n)
    }
}

static GLOBAL_CONTEXT: RwLock<Option<Context>> = RwLock::new(None);

/// Establishes the top-level context (`GrB_init`). Returns `false` when the
/// library was already initialized — the call is then a no-op, matching the
/// spec's "call `GrB_init` exactly once" rule without aborting the process.
pub fn init(mode: Mode) -> bool {
    let mut slot = GLOBAL_CONTEXT.write();
    if slot.is_some() {
        return false;
    }
    *slot = Some(Context::make(
        None,
        mode,
        ContextOptions {
            name: Some("GrB_GLOBAL".to_string()),
            ..ContextOptions::default()
        },
    ));
    true
}

/// Whether [`init`] (or the lazy path of [`global_context`]) has run.
pub fn is_initialized() -> bool {
    GLOBAL_CONTEXT.read().is_some()
}

/// Returns the top-level context, lazily initializing in blocking mode when
/// the program never called [`init`] explicitly.
pub fn global_context() -> Context {
    if let Some(ctx) = GLOBAL_CONTEXT.read().as_ref() {
        return ctx.clone();
    }
    init(Mode::Blocking);
    GLOBAL_CONTEXT
        .read()
        .as_ref()
        .expect("global context must exist after init")
        .clone()
}

/// Tears down the top-level context (`GrB_finalize`). Existing object
/// handles keep their context alive via `Arc`, but new objects created after
/// a subsequent [`init`] join the fresh tree.
pub fn finalize() {
    *GLOBAL_CONTEXT.write() = None;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_clamps_thread_budget() {
        let root = global_context();
        let wide = Context::new(
            &root,
            Mode::Blocking,
            ContextOptions {
                nthreads: Some(64),
                ..Default::default()
            },
        );
        let narrow = Context::new(
            &wide,
            Mode::Blocking,
            ContextOptions {
                nthreads: Some(2),
                ..Default::default()
            },
        );
        let inner = Context::new(&narrow, Mode::Blocking, ContextOptions::default());
        assert!(wide.effective_threads() <= 64);
        assert_eq!(narrow.effective_threads().min(2), narrow.effective_threads());
        // A child without its own budget inherits the clamp.
        assert!(inner.effective_threads() <= 2);
    }

    #[test]
    fn child_cannot_exceed_parent() {
        let root = global_context();
        let narrow = Context::new(
            &root,
            Mode::Blocking,
            ContextOptions {
                nthreads: Some(1),
                ..Default::default()
            },
        );
        let greedy = Context::new(
            &narrow,
            Mode::Blocking,
            ContextOptions {
                nthreads: Some(1000),
                ..Default::default()
            },
        );
        assert_eq!(greedy.effective_threads(), 1);
    }

    #[test]
    fn identity_and_ancestry() {
        let root = global_context();
        let a = Context::new(&root, Mode::NonBlocking, ContextOptions::default());
        let b = Context::new(&a, Mode::Blocking, ContextOptions::default());
        assert!(a.same(&a.clone()));
        assert!(!a.same(&b));
        assert!(b.is_within(&a));
        assert!(b.is_within(&root));
        assert!(!a.is_within(&b));
        assert_eq!(b.parent().unwrap().id(), a.id());
    }

    #[test]
    fn modes_are_carried() {
        let root = global_context();
        let nb = Context::new(&root, Mode::NonBlocking, ContextOptions::default());
        assert_eq!(nb.mode(), Mode::NonBlocking);
    }

    #[test]
    fn chunk_size_inherits() {
        let root = global_context();
        let a = Context::new(
            &root,
            Mode::Blocking,
            ContextOptions {
                chunk_size: Some(7),
                ..Default::default()
            },
        );
        let b = Context::new(&a, Mode::Blocking, ContextOptions::default());
        assert_eq!(b.chunk_size(), 7);
        assert_eq!(root.chunk_size(), 1024);
    }

    #[test]
    fn global_context_is_lazy_and_stable() {
        let a = global_context();
        let b = global_context();
        assert!(a.same(&b));
        assert!(is_initialized());
    }

    #[test]
    fn debug_includes_name() {
        let root = global_context();
        let named = Context::new(
            &root,
            Mode::Blocking,
            ContextOptions {
                name: Some("solver-phase".to_string()),
                ..Default::default()
            },
        );
        let dbg = format!("{named:?}");
        assert!(dbg.contains("solver-phase"), "Debug output was: {dbg}");
        let anon = Context::new(&root, Mode::Blocking, ContextOptions::default());
        assert!(!format!("{anon:?}").contains("name"));
    }

    #[test]
    fn stats_registers_lazily_and_attributes_spans() {
        let _g = crate::obs_test_guard();
        let root = global_context();
        let ctx = Context::new(
            &root,
            Mode::Blocking,
            ContextOptions {
                name: Some("stats-test".to_string()),
                ..Default::default()
            },
        );
        // Registration may have been skipped at creation (telemetry off);
        // stats() must self-register and return a (possibly zero) row.
        let before = ctx.stats().expect("stats row after lazy registration");
        assert_eq!(before.name.as_deref(), Some("stats-test"));

        graphblas_obs::set_enabled(true);
        drop(graphblas_obs::span_ctx("unit-work", ctx.id()));
        graphblas_obs::set_enabled(false);

        let after = ctx.stats().unwrap();
        assert_eq!(after.own.spans, before.own.spans + 1);
        // The span must also roll up into the root context.
        let root_stats = root.stats().unwrap();
        assert!(root_stats.rolled.spans >= after.own.spans);
    }
}
