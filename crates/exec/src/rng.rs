//! A deterministic, seedable PRNG with a `rand`-flavoured API.
//!
//! The build environment has no registry access, so the workspace cannot
//! depend on the `rand` crate; generators, benches, and randomized tests
//! use this hand-rolled replacement instead. The generator is xoshiro256++
//! (Blackman & Vigna) seeded through SplitMix64 — not cryptographic, but
//! high-quality and fast, which is all synthetic graph generation and
//! property-style testing need.
//!
//! The API mirrors the `rand` subset the workspace used: construct with
//! [`StdRng::seed_from_u64`], draw with [`StdRng::gen_range`] /
//! [`StdRng::gen`] / [`StdRng::gen_bool`], shuffle slices through the
//! [`SliceRandom`] trait. `use graphblas_exec::rng::prelude::*` brings the
//! traits into scope the way `rand::prelude::*` did.

use std::ops::{Range, RangeInclusive};

/// Re-exports matching the shape of `rand::prelude`.
pub mod prelude {
    pub use super::{SampleRange, SliceRandom, StandardValue, StdRng};
}

/// xoshiro256++ generator. Deterministic for a given seed across
/// platforms and runs.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// Seeds the full 256-bit state from one `u64` via SplitMix64, per the
    /// xoshiro authors' recommendation.
    pub fn seed_from_u64(seed: u64) -> StdRng {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw from a range (`a..b` or `a..=b`), integer or float.
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// A value from the type's "standard" distribution: floats uniform in
    /// `[0, 1)`, integers uniform over the full domain, fair bools.
    #[allow(clippy::should_implement_trait)]
    pub fn gen<T: StandardValue>(&mut self) -> T {
        T::standard(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

/// Types drawable from the standard distribution via [`StdRng::gen`].
pub trait StandardValue: Sized {
    fn standard(rng: &mut StdRng) -> Self;
}

impl StandardValue for f64 {
    fn standard(rng: &mut StdRng) -> f64 {
        rng.next_f64()
    }
}

impl StandardValue for f32 {
    fn standard(rng: &mut StdRng) -> f32 {
        rng.next_f64() as f32
    }
}

impl StandardValue for bool {
    fn standard(rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {
        $(impl StandardValue for $t {
            fn standard(rng: &mut StdRng) -> $t {
                rng.next_u64() as $t
            }
        })*
    };
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges [`StdRng::gen_range`] accepts.
pub trait SampleRange<T> {
    fn sample_from(self, rng: &mut StdRng) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {
        $(
            impl SampleRange<$t> for Range<$t> {
                fn sample_from(self, rng: &mut StdRng) -> $t {
                    assert!(self.start < self.end, "gen_range: empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128 % span) as i128;
                    (self.start as i128 + off) as $t
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_from(self, rng: &mut StdRng) -> $t {
                    let (lo, hi) = self.into_inner();
                    assert!(lo <= hi, "gen_range: empty range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let off = (rng.next_u64() as u128 % span) as i128;
                    (lo as i128 + off) as $t
                }
            }
        )*
    };
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {
        $(
            impl SampleRange<$t> for Range<$t> {
                fn sample_from(self, rng: &mut StdRng) -> $t {
                    assert!(self.start < self.end, "gen_range: empty range");
                    self.start + (rng.next_f64() as $t) * (self.end - self.start)
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_from(self, rng: &mut StdRng) -> $t {
                    let (lo, hi) = self.into_inner();
                    assert!(lo <= hi, "gen_range: empty range");
                    lo + (rng.next_f64() as $t) * (hi - lo)
                }
            }
        )*
    };
}

impl_float_range!(f32, f64);

/// In-place Fisher–Yates shuffling, mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    fn shuffle(&mut self, rng: &mut StdRng);
}

impl<T> SliceRandom for [T] {
    fn shuffle(&mut self, rng: &mut StdRng) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..2000 {
            let x = rng.gen_range(0..10usize);
            assert!(x < 10);
            let y = rng.gen_range(-5..6i64);
            assert!((-5..6).contains(&y));
            let z = rng.gen_range(0.001..=1.0f64);
            assert!((0.001..=1.0).contains(&z));
            let w = rng.gen_range(3..=3u32);
            assert_eq!(w, 3);
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let xs: Vec<f64> = (0..4000).map(|_| rng.gen::<f64>()).collect();
        assert!(xs.iter().all(|&x| (0.0..1.0).contains(&x)));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean} far from 0.5");
        assert!(xs.iter().any(|&x| x < 0.1) && xs.iter().any(|&x| x > 0.9));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.2)).count();
        assert!((1600..2400).contains(&hits), "p=0.2 gave {hits}/10000");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        assert_ne!(v, (0..100).collect::<Vec<_>>());
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }
}
